// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (§7): one benchmark per artifact, each running the
// corresponding experiment end-to-end on the simulated testbed and
// reporting the headline values as benchmark metrics. Run with
//
//	go test -bench=. -benchmem
//
// Wall-clock cost is dominated by virtual-time simulation; the figures'
// key values appear as custom metrics (paper-vs-measured is recorded in
// EXPERIMENTS.md). Ablation benchmarks at the bottom quantify the design
// choices called out in DESIGN.md §4.
package repro

import (
	"testing"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/experiments"
	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/uisim"
)

const benchSeed = 42

// runExperiment executes a registered experiment b.N times and reports the
// selected key values as benchmark metrics.
func runExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		last = exp.Run(benchSeed, experiments.Params{})
	}
	for _, k := range metricKeys {
		v, ok := last.Values[k]
		if !ok {
			b.Fatalf("experiment %s did not produce key %q", id, k)
		}
		b.ReportMetric(v, k)
	}
}

// --- §7.1: Table 3 and Fig. 6 ---

func BenchmarkTable3Accuracy(b *testing.B) {
	runExperiment(b, "table3", "latency_err_ms", "mapping_ul", "mapping_dl", "cpu_overhead")
}

func BenchmarkFig6ErrorRatio(b *testing.B) {
	runExperiment(b, "table3", "post_ratio", "pull_ratio", "yt_init_ratio", "yt_rebuf_ratio", "web_ratio")
}

// --- §7.2: Fig. 7, 8/9 ---

func BenchmarkFig7PostBreakdown(b *testing.B) {
	runExperiment(b, "fig7",
		"3g_photos_netshare", "lte_photos_netshare",
		"3g_status_netshare", "3g_photos_network_s", "lte_photos_network_s")
}

func BenchmarkFig8RLCBreakdown(b *testing.B) {
	runExperiment(b, "fig8",
		"pdu_ratio_3g_over_lte", "rlc_tx_ratio_3g_over_lte", "3g_rlc_tx_s", "lte_rlc_tx_s")
}

// --- §7.3: Fig. 10-13 ---

func BenchmarkFig10BackgroundData(b *testing.B) {
	runExperiment(b, "fig10", "freq_0_total_kb", "freq_3_total_kb", "none_daily_kb")
}

func BenchmarkFig11BackgroundEnergy(b *testing.B) {
	runExperiment(b, "fig11", "freq_0_total_j", "freq_3_total_j", "none_daily_j")
}

func BenchmarkFig12RefreshData(b *testing.B) {
	runExperiment(b, "fig12", "saving_2h_vs_1h", "ratio_2h_vs_4h")
}

func BenchmarkFig13RefreshEnergy(b *testing.B) {
	runExperiment(b, "fig13", "saving_2h_vs_1h")
}

// --- §7.4: Fig. 14-16 ---

func BenchmarkFig14UpdateCDF(b *testing.B) {
	runExperiment(b, "fig14", "wv_over_lv_lte", "lv_lte_stddev_s", "wv_lte_stddev_s")
}

func BenchmarkFig15UpdateBreakdown(b *testing.B) {
	runExperiment(b, "fig15", "device_reduction_lte", "network_reduction_lte")
}

func BenchmarkFig16UpdateData(b *testing.B) {
	runExperiment(b, "fig16", "wv_dl_overhead_lte")
}

// --- §7.5: Fig. 17-20 ---

func BenchmarkFig17ThrottleCDF(b *testing.B) {
	runExperiment(b, "fig17",
		"init_multiplier_3g", "init_multiplier_lte",
		"3g_capped_rebuf_mean", "lte_capped_rebuf_mean")
}

func BenchmarkFig18ShapeVsPolice(b *testing.B) {
	runExperiment(b, "fig18",
		"3g_retransmissions", "lte_retransmissions",
		"3g_throughput_var", "lte_throughput_var")
}

func BenchmarkFig19RebufferVsRate(b *testing.B) {
	runExperiment(b, "fig19", "3g_100k", "lte_100k", "3g_500k", "lte_500k")
}

func BenchmarkFig20InitLoadVsRate(b *testing.B) {
	runExperiment(b, "fig20", "3g_100k", "lte_100k", "3g_500k", "lte_500k")
}

// --- §7.6, §7.7 ---

func BenchmarkSec76AdsImpact(b *testing.B) {
	runExperiment(b, "sec7.6", "lte_total_ratio_with_ads")
}

func BenchmarkSec77RRCSimplify(b *testing.B) {
	runExperiment(b, "sec7.7", "reduction", "default3g_mean_s", "simplified3g_mean_s")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationCalibration quantifies the §5.1 measurement calibration
// on a deliberately heavy layout tree (~1000 views, parse time ~60 ms —
// think a fully loaded news feed): the uncalibrated polling measurement
// blows through the paper's 40 ms error bound, the calibrated one does not.
func BenchmarkAblationCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bed := testbed.MustNew(testbed.Options{Seed: benchSeed, Profile: radio.ProfileLTE(), DisableQxDM: true})
		bed.Facebook.Connect()
		bed.K.RunUntil(2 * time.Second)
		// Inflate the tree so one parse pass costs ~60 ms.
		filler := uisim.NewView(uisim.ClassView, "filler", "deep feed")
		for j := 0; j < 1000; j++ {
			filler.AddChild(uisim.NewView(uisim.ClassTextView, "story", ""))
		}
		bed.Facebook.Screen.Root().AddChild(filler)
		log := &qoe.BehaviorLog{}
		c := controller.New(bed.K, bed.Facebook.Screen, log)
		d := controller.NewFacebookDriver(c, false)

		const reps = 10
		entries := make([]qoe.BehaviorEntry, reps)
		screenAts := make([]simtime.Time, reps)
		for j := range screenAts {
			screenAts[j] = -1
		}
		var run func(i int)
		run = func(i int) {
			if i >= reps {
				return
			}
			stamp, err := d.UploadPost(facebook.PostStatus, i, func(e qoe.BehaviorEntry) {
				entries[i] = e
				bed.K.After(2*time.Second, func() { run(i + 1) })
			})
			if err != nil {
				return
			}
			bed.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
				for _, v := range r.FindAll(uisim.Signature{ID: facebook.IDFeedItem}) {
					if v.Shown() && contains(v.Text(), stamp) {
						return true
					}
				}
				return false
			}, func(at simtime.Time) { screenAts[i] = at })
		}
		run(0)
		bed.K.RunUntil(bed.K.Now() + 3*time.Minute)

		var rawErr, calErr, n float64
		for j := 0; j < reps; j++ {
			if !entries[j].Observed || screenAts[j] < 0 {
				continue
			}
			truth := time.Duration(screenAts[j] - entries[j].Start).Seconds()
			rawErr += abs(entries[j].RawLatency().Seconds() - truth)
			calErr += abs(analyzer.Calibrate(entries[j]).Calibrated.Seconds() - truth)
			n++
		}
		if n > 0 {
			b.ReportMetric(rawErr/n*1000, "raw_err_ms")
			b.ReportMetric(calErr/n*1000, "calibrated_err_ms")
		}
	}
}

// BenchmarkAblationMappingAnchor splits the long-jump mapping ratio into
// its two mechanisms: packets mapped by simple cursor continuity versus
// packets that needed the time-anchored resync. The gap between the
// anchored ratio and the cursor-only ratio is how much mapping the resync
// recovers after QxDM capture loss.
func BenchmarkAblationMappingAnchor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Build one 3G photo-upload session.
		bed := testbed.MustNew(testbed.Options{Seed: benchSeed, Profile: radio.Profile3G()})
		bed.Facebook.Connect()
		bed.K.RunUntil(3 * time.Second)
		log := &qoe.BehaviorLog{}
		c := controller.New(bed.K, bed.Facebook.Screen, log)
		d := controller.NewFacebookDriver(c, false)
		d.UploadPost(facebook.PostPhotos, 0, nil)
		bed.K.RunUntil(bed.K.Now() + 3*time.Minute)
		cl := analyzer.NewCrossLayer(bed.Session(log))
		b.ReportMetric(cl.ULMap.Ratio(), "anchored_ul_ratio")

		// Diagnosis pass: "ok" counts natural-cursor hits, "resync" the
		// packets only the anchored search could place.
		var ul []analyzer.MappedPacket
		for _, rec := range bed.Capture.Records() {
			p, err := rec.Packet()
			if err == nil && p.Src.Addr == testbed.DeviceAddr {
				ul = append(ul, analyzer.MappedPacket{At: rec.At, Data: rec.Data})
			}
		}
		var ulPDUs []qxdm.PDURecord
		for _, p := range bed.QxDM.Log().PDUs {
			if p.Dir == radio.Uplink {
				ulPDUs = append(ulPDUs, p)
			}
		}
		reasons := analyzer.DiagnoseMap(ul, ulPDUs)
		total := 0
		for _, v := range reasons {
			total += v
		}
		if total > 0 {
			b.ReportMetric(float64(reasons["ok"])/float64(total), "cursor_only_ul_ratio")
			b.ReportMetric(float64(reasons["resync"])/float64(total), "resync_ul_ratio")
		}
	}
}

// BenchmarkAblationPollInterval quantifies the polling-cadence tradeoff:
// parse CPU vs measurement resolution for a fixed wait.
func BenchmarkAblationPollInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, interval := range []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond} {
			k := simtime.NewKernel(benchSeed)
			root := uisim.NewView(uisim.ClassView, "root", "")
			s := uisim.NewScreen(k, root)
			bar := uisim.NewView(uisim.ClassProgressBar, "bar", "")
			root.AddChild(bar)
			in := uisim.NewInstrumentation(k, s)
			in.SetPollInterval(interval)
			k.After(1500*time.Millisecond, func() { bar.SetVisible(false) })
			var res uisim.WaitResult
			in.WaitUntil(func(sn *uisim.Snapshot) bool {
				return !sn.VisibleMatch(uisim.Signature{ID: "bar"})
			}, 10*time.Second, func(r uisim.WaitResult) { res = r })
			k.Run()
			_ = res
			switch interval {
			case 0:
				b.ReportMetric(in.ParseCPU().Seconds()*1000, "continuous_cpu_ms")
			case 200 * time.Millisecond:
				b.ReportMetric(in.ParseCPU().Seconds()*1000, "coarse_cpu_ms")
			}
		}
	}
}

// BenchmarkRLCSegmentation measures raw substrate throughput: PDU
// segmentation and ARQ for a 1 MB uplink transfer on 3G (micro-benchmark
// for the radio engine itself).
func BenchmarkRLCSegmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := simtime.NewKernel(benchSeed)
		prof := radio.Profile3G()
		bearer := radio.NewBearer(k, prof)
		for j := 0; j < 700; j++ { // ~1MB in 1400B packets
			bearer.SendUplink(make([]byte, 1400), nil)
		}
		k.Run()
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
