// Observability-layer benchmarks: the cost of a standard testbed run with
// no obs sink attached (the default — instrumentation reduced to nil checks)
// versus with the trace bus and metrics registry live. TestWriteBenchJSON
// (gated on the BENCH_JSON env var, wired to `make bench`) records the
// numbers in a JSON file so the repo accumulates a perf trajectory.
package repro

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/testbed"
)

// obsBenchRun is the standard workload: a fixed-seed Facebook
// pull-to-update session, exercising UI input, app logic, DNS, TCP, and the
// radio bearer — every instrumented layer.
func obsBenchRun(trace, metrics bool) {
	b := testbed.MustNew(testbed.Options{Seed: benchSeed, Trace: trace, Metrics: metrics})
	b.Facebook.Connect()
	b.K.RunUntil(3 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)
	const reps = 3
	var run func(i int)
	run = func(i int) {
		if i >= reps {
			return
		}
		d.PullToUpdate(func(qoe.BehaviorEntry) {
			b.K.After(5*time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + reps*time.Minute)
	b.CloseObs()
}

func BenchmarkTestbedRunNoSink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obsBenchRun(false, false)
	}
}

func BenchmarkTestbedRunWithSink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obsBenchRun(true, true)
	}
}

// benchRecord is one measured configuration in BENCH_PR2.json.
type benchRecord struct {
	NsOp     int64 `json:"ns_op"`
	AllocsOp int64 `json:"allocs_op"`
	BytesOp  int64 `json:"bytes_op"`
}

func record(r testing.BenchmarkResult) benchRecord {
	return benchRecord{NsOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), BytesOp: r.AllocedBytesPerOp()}
}

func pctOver(base, v int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(v-base) / float64(base)
}

// TestWriteBenchJSON measures the no-sink and with-sink configurations and
// writes the file named by BENCH_JSON (skipped when unset). The no-sink
// configuration is benchmarked twice; the A/A delta is the wall-clock noise
// floor, which bounds the cost of the detached (nil-check-only)
// instrumentation — the <2% overhead budget.
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set")
	}
	bench := func(trace, metrics bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obsBenchRun(trace, metrics)
			}
		})
	}
	// Interleaved best-of-N: each round measures all three configurations
	// back to back, so slow machine phases hit them equally; the per-config
	// minimum then discards scheduler and frequency-scaling noise.
	// (Allocation counts are deterministic and need no such care.)
	var noSink, noSinkRepeat, withSink testing.BenchmarkResult
	for i := 0; i < 5; i++ {
		a, b, c := bench(false, false), bench(false, false), bench(true, true)
		if i == 0 || a.NsPerOp() < noSink.NsPerOp() {
			noSink = a
		}
		if i == 0 || b.NsPerOp() < noSinkRepeat.NsPerOp() {
			noSinkRepeat = b
		}
		if i == 0 || c.NsPerOp() < withSink.NsPerOp() {
			withSink = c
		}
	}

	doc := struct {
		Workload          string      `json:"workload"`
		NoSink            benchRecord `json:"no_sink"`
		NoSinkRepeat      benchRecord `json:"no_sink_repeat"`
		WithSink          benchRecord `json:"with_sink"`
		NoSinkNoisePct    float64     `json:"no_sink_aa_noise_pct"`
		WithSinkTimePct   float64     `json:"with_sink_time_overhead_pct"`
		WithSinkAllocsPct float64     `json:"with_sink_allocs_overhead_pct"`
	}{
		Workload:          "facebook pull-to-update x3, LTE, seed 42",
		NoSink:            record(noSink),
		NoSinkRepeat:      record(noSinkRepeat),
		WithSink:          record(withSink),
		NoSinkNoisePct:    pctOver(noSink.NsPerOp(), noSinkRepeat.NsPerOp()),
		WithSinkTimePct:   pctOver(noSink.NsPerOp(), withSink.NsPerOp()),
		WithSinkAllocsPct: pctOver(noSink.AllocsPerOp(), withSink.AllocsPerOp()),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: no-sink %v ns/op, A/A noise %.2f%%, with-sink overhead %.2f%%",
		out, doc.NoSink.NsOp, doc.NoSinkNoisePct, doc.WithSinkTimePct)
	if noise := doc.NoSinkNoisePct; noise > 2 || noise < -2 {
		t.Logf("warning: A/A noise floor above the 2%% budget on this machine")
	}
}
