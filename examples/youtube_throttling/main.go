// youtube_throttling reproduces the §7.5 study interactively: what happens
// to video QoE when the carrier throttles an over-quota subscriber, and why
// the throttling *mechanism* matters — 3G shapes (queues) excess traffic
// while LTE polices (drops) it.
//
// The tool plays the same videos under both mechanisms and prints the two
// §7.5 QoE metrics measured purely from UI events, plus the transport-layer
// evidence (TCP retransmissions) behind Finding 7.
package main

import (
	"fmt"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/radio"
	"repro/internal/testbed"
)

const throttleBps = 128e3

func main() {
	fmt.Printf("Carrier throttling at %.0f kbps: 3G shaping vs LTE policing\n\n", throttleBps/1000)
	fmt.Println("network  throttled  video  init loading  rebuffer ratio  TCP retx")
	for _, prof := range []func() *radio.Profile{radio.Profile3G, radio.ProfileLTE} {
		for _, throttled := range []bool{false, true} {
			run(prof(), throttled)
		}
	}
	fmt.Println("\nFinding 6: throttling multiplies initial loading and pushes the")
	fmt.Println("rebuffering ratio from ~0 to over 50%. Finding 7: policing (LTE)")
	fmt.Println("drops packets and forces TCP retransmissions; shaping (3G) does not.")
}

func run(prof *radio.Profile, throttled bool) {
	bed := testbed.MustNew(testbed.Options{Seed: 21, Profile: prof, DisableQxDM: true})
	bed.YouTube.Connect()
	bed.K.RunUntil(2 * time.Second)
	if throttled {
		bed.Throttle(throttleBps)
	}
	log := &qoe.BehaviorLog{}
	ctl := controller.New(bed.K, bed.YouTube.Screen, log)
	ctl.Timeout = time.Hour
	ctl.Instrumentation().SetPollInterval(150 * time.Millisecond)
	driver := &controller.YouTubeDriver{C: ctl}

	done := false
	var stats controller.WatchStats
	driver.SearchAndPlay("m", 2, func(s controller.WatchStats) { stats, done = s, true })
	bed.K.RunUntil(bed.K.Now() + 45*time.Minute)
	if !done {
		fmt.Printf("%-7s  %-9v  m2     (did not finish)\n", prof.Name, throttled)
		return
	}
	retx := 0
	for _, f := range analyzer.ExtractFlows(bed.Session(log).Packets, testbed.DeviceAddr).Flows {
		retx += f.Retransmissions
	}
	fmt.Printf("%-7s  %-9v  m2     %8.1f s    %10.1f %%    %6d\n",
		prof.Name, throttled,
		stats.InitialLoading.RawLatency().Seconds(), 100*stats.RebufferRatio(), retx)
}
