// browser_rrc reproduces the §7.7 design study interactively: how much of a
// web page load is RRC state machine overhead? It loads the same pages with
// idle think time between them under the default 3-state 3G machine, a
// simplified direct-promotion machine, and LTE — and uses the cross-layer
// analyzer to show the promotions that landed inside each QoE window.
package main

import (
	"fmt"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/radio"
	"repro/internal/testbed"
)

func main() {
	fmt.Println("Web page load time vs RRC state machine design (20 s think time)")
	fmt.Println()
	var baseline float64
	for _, mk := range []func() *radio.Profile{radio.Profile3G, radio.ProfileSimplified3G, radio.ProfileLTE} {
		prof := mk()
		mean, promos := run(prof)
		note := ""
		if prof.Name == "C1-3G" {
			baseline = mean
		} else if baseline > 0 {
			note = fmt.Sprintf("  (%+.1f%% vs default 3G)", 100*(mean/baseline-1))
		}
		fmt.Printf("%-18s  mean load %5.2f s   promotions in QoE windows: %d%s\n",
			prof.Name, mean, promos, note)
	}
	fmt.Println("\n§7.7: removing the FACH intermediate state cuts page loads ~23%,")
	fmt.Println("because every load after an idle gap pays a shorter promotion.")
}

func run(prof *radio.Profile) (meanLoad float64, promotions int) {
	bed := testbed.MustNew(testbed.Options{Seed: 5, Profile: prof})
	log := &qoe.BehaviorLog{}
	ctl := controller.New(bed.K, bed.Browser.Screen, log)
	driver := &controller.BrowserDriver{C: ctl}

	urls := make([]string, 8)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/news-%d", serversim.WebHostBase, i)
	}
	var entries []qoe.BehaviorEntry
	driver.LoadPages(urls, 20*time.Second, func(es []qoe.BehaviorEntry) { entries = es })
	bed.K.RunUntil(20 * time.Minute)

	sess := bed.Session(log)
	var sum float64
	n := 0
	for _, e := range entries {
		if !e.Observed {
			continue
		}
		sum += analyzer.Calibrate(e).Calibrated.Seconds()
		n++
		for _, tr := range analyzer.TransitionsIn(sess.Radio, e.Start, e.End) {
			if tr.Promotion {
				promotions++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), promotions
}
