// facebook_background reproduces the §7.3 study interactively: how much
// mobile data and radio energy does the Facebook app burn in the background,
// and how does the "refresh interval" setting change the bill?
//
// A friend (the paper's device A) posts every 30 minutes; the app under
// test sits backgrounded for 8 simulated hours per configuration. Output is
// the per-configuration data/energy table of Fig. 12/13.
package main

import (
	"fmt"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/testbed"
)

func main() {
	const horizon = 8 * time.Hour
	fmt.Println("Facebook background traffic vs refresh interval")
	fmt.Printf("(friend posts every 30 min; %v window; LTE)\n\n", horizon)
	fmt.Println("refresh    data (KB)   energy (J)   tail share")

	for _, interval := range []time.Duration{30 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour} {
		cfg := facebook.Config{
			Variant:         serversim.VariantListView,
			RefreshInterval: interval,
			Subscribe:       true,
		}
		bed := testbed.MustNew(testbed.Options{Seed: 99, Profile: radio.ProfileLTE(), Facebook: cfg})
		bed.Facebook.Connect()
		bed.K.RunUntil(7 * time.Minute) // de-phase friend posts from refreshes
		n := 0
		bed.K.Ticker(30*time.Minute, func() {
			n++
			bed.Servers.Facebook.InjectFriendPost(fmt.Sprintf("f%d", n), 4000)
		})
		bed.K.RunUntil(horizon)

		sess := bed.Session(nil)
		flows := analyzer.ExtractFlows(sess.Packets, sess.DeviceAddr)
		ul, dl := flows.HostBytes(serversim.FacebookHost)
		rep := power.Analyze(sess.Profile, sess.Radio, 0, horizon)
		fmt.Printf("%-9v  %8.0f    %8.1f     %4.0f%%\n",
			interval, float64(ul+dl)/1024, rep.ActiveJ(), 100*rep.TailJ/rep.ActiveJ())
	}
	fmt.Println("\nFinding 4: stretching the default 1h interval to 2h cuts both data")
	fmt.Println("and energy by ~20-27% while delaying only non-time-sensitive content.")
}
