// Quickstart: measure the user-perceived latency of posting a Facebook
// status, a check-in, and two photos on LTE — the §7.2 workload in ~40
// lines of API use.
//
// The flow is the canonical QoE Doctor loop:
//
//  1. Build a testbed (device + radio + servers) and connect the app.
//  2. Drive it with the QoE-aware UI controller (see-interact-wait).
//  3. Feed the collected logs to the multi-layer analyzer.
package main

import (
	"fmt"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/radio"
	"repro/internal/testbed"
)

func main() {
	// 1. The lab: an LTE device with tcpdump and QxDM attached.
	bed := testbed.MustNew(testbed.Options{Seed: 7, Profile: radio.ProfileLTE()})
	bed.Facebook.Connect()
	bed.K.RunUntil(3 * time.Second)

	// 2. Replay one post of each kind via the UI controller.
	log := &qoe.BehaviorLog{}
	ctl := controller.New(bed.K, bed.Facebook.Screen, log)
	driver := controller.NewFacebookDriver(ctl, false)

	kinds := []string{facebook.PostStatus, facebook.PostCheckin, facebook.PostPhotos}
	var next func(i int)
	next = func(i int) {
		if i >= len(kinds) {
			return
		}
		driver.UploadPost(kinds[i], i, func(qoe.BehaviorEntry) {
			bed.K.After(2*time.Second, func() { next(i + 1) })
		})
	}
	next(0)
	bed.K.RunUntil(bed.K.Now() + 5*time.Minute)

	// 3. Analyze: calibrated latency plus the device/network split.
	app := analyzer.AnalyzeApp(log)
	cross := analyzer.NewCrossLayer(bed.Session(log))
	fmt.Println("action                latency   device    network   (network on critical path?)")
	for _, l := range app.Latencies {
		split := cross.SplitDeviceNetwork(l)
		onPath := "no — local echo"
		if split.Network > split.Device {
			onPath = "yes — upload dominates"
		}
		fmt.Printf("%-20s  %6.2fs   %6.2fs   %6.2fs   %s\n",
			l.Entry.Action, l.Calibrated.Seconds(),
			split.Device.Seconds(), split.Network.Seconds(), onPath)
	}
	fmt.Printf("\nIP-to-RLC mapping: uplink %.1f%%, downlink %.1f%%\n",
		100*cross.ULMap.Ratio(), 100*cross.DLMap.Ratio())
}
