// Sweep and kernel hot-path benchmarks for the PR 3 optimization pass.
// TestWriteBenchPR3JSON (gated on the BENCH_PR3_JSON env var, wired to
// `make bench`) measures the BENCH_PR2 Facebook workload on the pooled
// kernel, the kernel micro-costs, and the full experiment sweep serial vs
// parallel, and records everything against the checked-in BENCH_PR2.json
// baseline.
package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/simtime"
	"repro/internal/sweep"
)

// BenchmarkSweepFastSerial and BenchmarkSweepFastParallel sweep a fast
// subset of real experiments (two seeds) so `go test -bench` shows the
// worker-pool overhead without the full minute-long registry run.
func benchSweepCells() []sweep.Cell {
	var exps []experiments.Experiment
	for _, id := range []string{"fig10", "fig12", "sec7.7"} {
		if e, ok := experiments.Lookup(id); ok {
			exps = append(exps, e)
		}
	}
	return sweep.Grid(exps, []int64{42, 43})
}

func BenchmarkSweepFastSerial(b *testing.B) {
	cells := benchSweepCells()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep.Run(cells, sweep.Options{Workers: 1})
	}
}

func BenchmarkSweepFastParallel(b *testing.B) {
	cells := benchSweepCells()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweep.Run(cells, sweep.Options{Workers: 4})
	}
}

// pr2Baseline reads the checked-in BENCH_PR2.json to compare against.
func pr2Baseline(t *testing.T) (benchRecord, bool) {
	data, err := os.ReadFile("BENCH_PR2.json")
	if err != nil {
		t.Logf("no BENCH_PR2.json baseline: %v", err)
		return benchRecord{}, false
	}
	var doc struct {
		NoSink benchRecord `json:"no_sink"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Logf("unparsable BENCH_PR2.json: %v", err)
		return benchRecord{}, false
	}
	return doc.NoSink, true
}

// TestWriteBenchPR3JSON writes the file named by BENCH_PR3_JSON (skipped
// when unset). Wall-clock numbers use the interleaved best-of-N scheme of
// TestWriteBenchJSON; allocation counts are deterministic. The sweep section
// records the host core count alongside the speedup — on a single-core
// machine the parallel sweep cannot beat serial, and the honest number is
// the point of the record.
func TestWriteBenchPR3JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR3_JSON")
	if out == "" {
		t.Skip("BENCH_PR3_JSON not set")
	}

	// Facebook workload (the BENCH_PR2 comparison surface).
	workload := func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				obsBenchRun(false, false)
			}
		})
	}
	var noSink, noSinkRepeat testing.BenchmarkResult
	for i := 0; i < 5; i++ {
		a, b := workload(), workload()
		if i == 0 || a.NsPerOp() < noSink.NsPerOp() {
			noSink = a
		}
		if i == 0 || b.NsPerOp() < noSinkRepeat.NsPerOp() {
			noSinkRepeat = b
		}
	}

	// Kernel micro-costs on the pooled heap.
	scheduleFire := testing.Benchmark(func(b *testing.B) {
		k := simtime.NewKernel(1)
		fn := func() {}
		const batch = 64
		b.ReportAllocs()
		for i := 0; i < b.N; i += batch {
			for j := 0; j < batch; j++ {
				k.After(time.Duration(j)*time.Microsecond, fn)
			}
			k.Run()
		}
	})
	cancelChurn := testing.Benchmark(func(b *testing.B) {
		k := simtime.NewKernel(1)
		fn := func() {}
		var timer simtime.Event
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			timer.Cancel()
			timer = k.After(time.Second, fn)
			if i%64 == 63 {
				k.After(time.Microsecond, fn)
				k.RunUntil(k.Now() + time.Millisecond)
			}
		}
	})

	// Full-registry sweep, serial vs parallel-4, byte-compared.
	cells := sweep.Grid(experiments.Registry(), []int64{42})
	t0 := time.Now()
	serialRes := sweep.Run(cells, sweep.Options{Workers: 1})
	serialMs := time.Since(t0).Milliseconds()
	t0 = time.Now()
	parallelRes := sweep.Run(cells, sweep.Options{Workers: 4})
	parallelMs := time.Since(t0).Milliseconds()
	identical := sweep.Render(serialRes, false) == sweep.Render(parallelRes, false)

	base, haveBase := pr2Baseline(t)
	doc := struct {
		Workload       string      `json:"workload"`
		BaselineFile   string      `json:"baseline_file"`
		NoSink         benchRecord `json:"no_sink"`
		NoSinkRepeat   benchRecord `json:"no_sink_repeat"`
		NoSinkNoisePct float64     `json:"no_sink_aa_noise_pct"`
		VsPR2AllocsPct float64     `json:"vs_pr2_allocs_pct"`
		VsPR2BytesPct  float64     `json:"vs_pr2_bytes_pct"`
		VsPR2NsPct     float64     `json:"vs_pr2_ns_pct"`
		Kernel         struct {
			ScheduleFire benchRecord `json:"schedule_fire"`
			CancelChurn  benchRecord `json:"cancel_churn"`
		} `json:"kernel"`
		Sweep struct {
			Cells            int     `json:"cells"`
			Cores            int     `json:"cores"`
			SerialMs         int64   `json:"serial_ms"`
			Parallel4Ms      int64   `json:"parallel4_ms"`
			SpeedupX         float64 `json:"speedup_x"`
			OutputsIdentical bool    `json:"outputs_identical"`
		} `json:"sweep"`
	}{
		Workload:       "facebook pull-to-update x3, LTE, seed 42",
		BaselineFile:   "BENCH_PR2.json",
		NoSink:         record(noSink),
		NoSinkRepeat:   record(noSinkRepeat),
		NoSinkNoisePct: pctOver(noSink.NsPerOp(), noSinkRepeat.NsPerOp()),
	}
	if haveBase {
		doc.VsPR2AllocsPct = pctOver(base.AllocsOp, noSink.AllocsPerOp())
		doc.VsPR2BytesPct = pctOver(base.BytesOp, noSink.AllocedBytesPerOp())
		doc.VsPR2NsPct = pctOver(base.NsOp, noSink.NsPerOp())
	}
	doc.Kernel.ScheduleFire = record(scheduleFire)
	doc.Kernel.CancelChurn = record(cancelChurn)
	doc.Sweep.Cells = len(cells)
	doc.Sweep.Cores = runtime.NumCPU()
	doc.Sweep.SerialMs = serialMs
	doc.Sweep.Parallel4Ms = parallelMs
	if parallelMs > 0 {
		doc.Sweep.SpeedupX = float64(serialMs) / float64(parallelMs)
	}
	doc.Sweep.OutputsIdentical = identical

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d allocs/op (%.1f%% vs PR2), sweep %dms serial / %dms parallel on %d cores",
		out, noSink.AllocsPerOp(), doc.VsPR2AllocsPct, serialMs, parallelMs, doc.Sweep.Cores)
	if !identical {
		t.Error("parallel sweep output differs from serial")
	}
	if haveBase && doc.VsPR2AllocsPct > -25 {
		t.Errorf("allocs/op only %.1f%% vs PR2 baseline, want <= -25%%", doc.VsPR2AllocsPct)
	}
}
