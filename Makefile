GO ?= go

.PHONY: build test test-short verify bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

# Full verification: static checks plus the race-enabled suite. The
# simulation is single-goroutine by design, so -race is cheap and mostly
# guards the test harnesses themselves.
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
