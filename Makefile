GO ?= go

.PHONY: build test test-short verify bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

# Full verification: static checks plus the race-enabled suite. The
# simulation is single-goroutine by design, so -race is cheap and mostly
# guards the test harnesses themselves.
verify: build
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...

# Benchmarks: every paper-figure benchmark plus the obs-layer overhead
# measurement, which records its numbers in BENCH_PR2.json.
bench:
	$(GO) test -bench=. -benchmem
	BENCH_JSON=BENCH_PR2.json $(GO) test -run TestWriteBenchJSON -v .
