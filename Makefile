GO ?= go

.PHONY: build test test-short verify cover chaos bench bench-analyzer bench-compare bench-fleet bench-fleet-compare bench-remedy bench-remedy-compare bench-qoestore bench-qoemon bench-all analyzer-golden sweep sweep-golden

build:
	$(GO) build ./...
	$(GO) build -o bin/qoeexp ./cmd/qoeexp
	$(GO) build -o bin/qoedoctor ./cmd/qoedoctor
	$(GO) build -o bin/qoefleet ./cmd/qoefleet
	$(GO) build -o bin/qoeserve ./cmd/qoeserve
	$(GO) build -o bin/traceview ./cmd/traceview

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

# Full verification: static checks plus the race-enabled suite, then the
# qoestore chaos drills. Each simulation kernel is single-goroutine by
# design, but the sweep engine runs whole testbeds on concurrent goroutines,
# so -race exercises real concurrency (internal/sweep's parallel-vs-serial
# golden runs under it).
verify: build
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) cover
	$(MAKE) chaos
	$(MAKE) sharded-golden
	$(MAKE) bench-remedy-compare

# The sharded fleet's determinism contract, pinned at both extremes of
# runtime parallelism: the multi-cell mobility golden must render
# byte-identically at GOMAXPROCS=1 and GOMAXPROCS=4 (the test also sweeps
# shard worker counts internally).
sharded-golden:
	GOMAXPROCS=1 $(GO) test -run TestShardedFleetGolden -count=1 ./internal/fleet/
	GOMAXPROCS=4 $(GO) test -run TestShardedFleetGolden -count=1 ./internal/fleet/

# Coverage floor for the monitoring-critical packages: the SLO engine and
# the durable store must each keep >= 80% statement coverage — an alert
# pipeline nobody tests is worse than no alert pipeline.
COVER_FLOOR ?= 80
cover:
	@set -e; for pkg in ./internal/qoemon/ ./internal/qoestore/; do \
		line=$$($(GO) test -cover $$pkg | tail -1); echo "$$line"; \
		pct=$$(echo "$$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$pkg"; exit 1; fi; \
		if [ "$$(awk -v p=$$pct -v f=$(COVER_FLOOR) 'BEGIN{print (p>=f)?1:0}')" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is under the $(COVER_FLOOR)% floor"; exit 1; fi; \
	done

# Crash/overload drills for the durable QoE store: simulated SIGKILLs with
# zero acked-event loss, torn and corrupt WAL tails, slow-consumer
# backpressure, and degraded-mode sampling — run twice under the race
# detector to vary goroutine interleavings.
chaos:
	$(GO) test -race -run 'TestChaos' -count=2 ./internal/qoestore/

# Benchmarks: every paper-figure benchmark plus the PR 3 perf record —
# kernel micro-costs, the Facebook-workload allocation profile compared
# against the checked-in BENCH_PR2.json baseline, and the full sweep serial
# vs parallel. Writes BENCH_PR3.json (BENCH_PR2.json stays as the baseline).
bench:
	$(GO) test -bench=. -benchmem
	BENCH_PR3_JSON=BENCH_PR3.json $(GO) test -run TestWriteBenchPR3JSON -v .

# PR 4 analyzer performance record: the linear-vs-indexed long-jump mapper
# and the serial-vs-parallel cross-layer engine on the mapping-heavy 3G
# browsing workload. Writes BENCH_PR4.json and fails if the indexed mapper
# falls under the 3x speedup floor.
bench-analyzer:
	BENCH_PR4_JSON=$(CURDIR)/BENCH_PR4.json $(GO) test -run TestWriteBenchPR4JSON -v ./internal/core/analyzer/

# Compare a fresh measurement against the checked-in BENCH_PR4.json
# baseline; fails on >20% ns/op regression in the indexed mapper or the
# parallel engine.
bench-compare:
	BENCH_PR4_BASELINE=$(CURDIR)/BENCH_PR4.json $(GO) test -run TestBenchComparePR4 -v ./internal/core/analyzer/

# PR 5 fleet scaling record: ns/op and allocs/op per simulated UE at
# N=1/8/64 on a shared cell. Writes BENCH_PR5.json and fails if the per-UE
# cost at N=64 exceeds 2x the N=1 per-UE cost.
# PR 8 sharded record: the 16-cell, 1024-UE fleet, serial and parallel shard
# workers. Writes BENCH_PR8.json; fails if sharded per-UE-virtual-second
# cost exceeds 2x the single-UE baseline, or (on >= 4 cores) if parallel
# workers deliver < 2x speedup over workers=1.
bench-fleet:
	BENCH_PR5_JSON=$(CURDIR)/BENCH_PR5.json $(GO) test -run TestWriteBenchPR5JSON -v ./internal/fleet/
	BENCH_PR8_JSON=$(CURDIR)/BENCH_PR8.json $(GO) test -run TestWriteBenchPR8JSON -v -timeout 40m ./internal/fleet/

# Compare a fresh sharded measurement against the checked-in BENCH_PR8.json
# baseline; fails on >20% per-UE-virtual-second regression.
bench-fleet-compare:
	BENCH_PR8_BASELINE=$(CURDIR)/BENCH_PR8.json $(GO) test -run TestBenchComparePR8 -v -timeout 20m ./internal/fleet/

# PR 10 remediation control-plane record: observe-mode controller overhead
# on a 16-UE fleet (the full fold + diagnosis pipeline with actuation off;
# budget 5%) and the remediated 40kbps-throttled storm at N=256 and N=1024
# with interventions per wall second. Writes BENCH_PR10.json.
bench-remedy:
	BENCH_PR10_JSON=$(CURDIR)/BENCH_PR10.json $(GO) test -run TestWriteBenchPR10JSON -v -timeout 40m ./internal/fleet/

# Compare a fresh N=256 remediated storm against the checked-in
# BENCH_PR10.json baseline; fails on >20% per-UE-virtual-second regression
# or any drift in the deterministic intervention count.
bench-remedy-compare:
	BENCH_PR10_BASELINE=$(CURDIR)/BENCH_PR10.json $(GO) test -run TestBenchComparePR10 -v -timeout 20m ./internal/fleet/

# PR 6 resilience record for the durable QoE store: sustained ingest
# throughput with and without fsync, and query latency under hot concurrent
# ingest. Writes BENCH_PR6.json and fails if NoSync ingest drops under 50k
# events/s or the hot p99 query exceeds 50ms.
bench-qoestore:
	BENCH_PR6_JSON=$(CURDIR)/BENCH_PR6.json $(GO) test -run TestWriteBenchPR6JSON -v ./internal/qoestore/

# PR 7 monitoring record: one full SLO evaluation pass over 10k series keys
# and the Prometheus text encode of a ~300-instrument registry. Writes
# BENCH_PR7.json and fails if evaluation drops under 100k series/s or one
# encode exceeds 10ms.
bench-qoemon:
	BENCH_PR7_JSON=$(CURDIR)/BENCH_PR7.json $(GO) test -run TestWriteBenchPR7JSON -v ./internal/qoemon/

# Every per-PR benchmark record in one pass.
bench-all: bench bench-analyzer bench-fleet bench-remedy bench-qoestore bench-qoemon

# Serial-vs-parallel analyzer equivalence over the whole experiment
# registry (the default test run covers a fast subset).
analyzer-golden:
	ANALYZER_GOLDEN_FULL=1 $(GO) test -run TestAnalyzerEngineGolden -v ./internal/experiments/

# Run the full experiment sweep on all cores.
sweep: build
	./bin/qoeexp -all -parallel 0

# Opt-in full `-all -seed 42` determinism golden (serial vs parallel bytes).
sweep-golden:
	SWEEP_FULL=1 $(GO) test -run TestFullSweepGolden -v ./internal/sweep/
