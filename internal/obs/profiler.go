package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profiler aggregates wall-clock cost per kernel callback site, for finding
// simulation hot paths. Unlike the trace bus it measures real time, so its
// output is NOT deterministic and never feeds an export that must be
// byte-stable — it is a human-facing report. A nil *Profiler absorbs
// observations for free.
type Profiler struct {
	sites map[string]*SiteStats
}

// SiteStats is the accumulated cost of one callback site (a function or
// closure creation site, identified by its symbol name).
type SiteStats struct {
	Site  string
	Count uint64
	Wall  time.Duration
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{sites: make(map[string]*SiteStats)}
}

// Observe records one callback dispatch.
func (p *Profiler) Observe(site string, wall time.Duration) {
	if p == nil {
		return
	}
	s, ok := p.sites[site]
	if !ok {
		s = &SiteStats{Site: site}
		p.sites[site] = s
	}
	s.Count++
	s.Wall += wall
}

// Sites returns all sites sorted by cumulative wall time, descending.
func (p *Profiler) Sites() []SiteStats {
	if p == nil {
		return nil
	}
	out := make([]SiteStats, 0, len(p.sites))
	for _, s := range p.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Report renders the top callback sites as a plain-text table. n <= 0 means
// all sites.
func (p *Profiler) Report(n int) string {
	if p == nil {
		return ""
	}
	sites := p.Sites()
	if n > 0 && len(sites) > n {
		sites = sites[:n]
	}
	var b strings.Builder
	var total time.Duration
	var events uint64
	for _, s := range p.Sites() {
		total += s.Wall
		events += s.Count
	}
	fmt.Fprintf(&b, "kernel profile: %d events, %v wall across %d sites\n", events, total, len(p.sites))
	fmt.Fprintf(&b, "%12s %10s %8s  %s\n", "wall", "events", "share", "callback site")
	for _, s := range sites {
		share := 0.0
		if total > 0 {
			share = float64(s.Wall) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%12v %10d %7.1f%%  %s\n", s.Wall, s.Count, share, s.Site)
	}
	return b.String()
}
