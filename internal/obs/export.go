package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace_event export. The output loads in chrome://tracing and
// Perfetto: one process, one track ("thread") per layer, spans as complete
// ("X") events, instants as "i", counter samples as "C". Timestamps are
// virtual-time microseconds with nanosecond precision in the fraction.
//
// The writer emits JSON by hand from ordered data only — no maps — so a
// fixed-seed run exports byte-identical files every time.

// chromeTID maps a layer to its track, ordered top-of-stack first so the
// viewer shows UI above app above transport above radio above kernel.
func chromeTID(l Layer) int {
	switch l {
	case LayerUI:
		return 1
	case LayerApp:
		return 2
	case LayerTransport:
		return 3
	case LayerRadio:
		return 4
	default: // LayerKernel
		return 5
	}
}

// WriteChromeTrace writes events as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	writeThreadMeta(bw, 1, true)
	writeProcessEvents(bw, 1, events)
	bw.WriteString("]}\n")
	return bw.Flush()
}

// Process is one exported trace process: a fleet exports one per UE so the
// viewer groups each device's layer tracks under its own heading.
type Process struct {
	Pid    int
	Name   string
	Events []TraceEvent
}

// WriteChromeTraceMulti writes several processes' events into one Chrome
// trace_event JSON file — the multi-UE export. Ordering is the caller's
// (fleet exports UEs in index order), so fixed-seed fleets export
// byte-identical files.
func WriteChromeTraceMulti(w io.Writer, procs []Process) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	for pi, p := range procs {
		if pi > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`,
			p.Pid, strconv.Quote(p.Name))
		fmt.Fprintf(bw, `,{"name":"process_sort_index","ph":"M","pid":%d,"args":{"sort_index":%d}}`,
			p.Pid, p.Pid)
		writeThreadMeta(bw, p.Pid, false)
		writeProcessEvents(bw, p.Pid, p.Events)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeThreadMeta emits one process's per-layer track metadata, fixed
// order. When first is set the leading comma of the first object is
// omitted (the metadata opens the traceEvents array).
func writeThreadMeta(bw *bufio.Writer, pid int, first bool) {
	for i := Layer(0); i < numLayers; i++ {
		if i > 0 || !first {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pid, chromeTID(i), strconv.Quote(i.String()))
		fmt.Fprintf(bw, `,{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
			pid, chromeTID(i), chromeTID(i))
	}
}

// writeProcessEvents emits one process's events, each preceded by a comma.
func writeProcessEvents(bw *bufio.Writer, pid int, events []TraceEvent) {
	for i := range events {
		ev := &events[i]
		bw.WriteByte(',')
		switch ev.Kind {
		case KindSpan:
			fmt.Fprintf(bw, `{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s`,
				strconv.Quote(ev.Name), pid, chromeTID(ev.Layer), micros(ev.Start), micros(ev.End-ev.Start))
			writeArgs(bw, ev)
		case KindInstant:
			fmt.Fprintf(bw, `{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s`,
				strconv.Quote(ev.Name), pid, chromeTID(ev.Layer), micros(ev.Start))
			writeArgs(bw, ev)
		case KindCounter:
			fmt.Fprintf(bw, `{"name":%s,"ph":"C","pid":%d,"tid":%d,"ts":%s,"args":{"value":%s}}`,
				strconv.Quote(ev.Name), pid, chromeTID(ev.Layer), micros(ev.Start),
				strconv.FormatFloat(ev.Value, 'f', -1, 64))
		}
	}
}

// writeArgs closes a span/instant object, appending the correlation ID and
// attrs as args.
func writeArgs(bw *bufio.Writer, ev *TraceEvent) {
	bw.WriteString(`,"args":{"id":`)
	bw.WriteString(strconv.FormatUint(ev.ID, 10))
	for _, a := range ev.Attrs {
		bw.WriteByte(',')
		bw.WriteString(strconv.Quote(a.Key))
		bw.WriteByte(':')
		bw.WriteString(strconv.Quote(a.Val))
	}
	bw.WriteString("}}")
}

// micros renders a virtual duration as microseconds with 3 decimals
// (nanosecond precision), the unit trace_event expects for ts/dur.
func micros(d interface{ Nanoseconds() int64 }) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteCSV writes events as flat CSV: one row per event, attrs flattened
// into a trailing "k=v;..." column.
func WriteCSV(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("kind,layer,name,start_ns,end_ns,id,value,attrs\n")
	kinds := [...]string{"span", "instant", "counter"}
	for i := range events {
		ev := &events[i]
		attrs := ""
		for j, a := range ev.Attrs {
			if j > 0 {
				attrs += ";"
			}
			attrs += a.Key + "=" + a.Val
		}
		fmt.Fprintf(bw, "%s,%s,%s,%d,%d,%d,%s,%s\n",
			kinds[ev.Kind], ev.Layer, csvQuote(ev.Name),
			ev.Start.Nanoseconds(), ev.End.Nanoseconds(), ev.ID,
			strconv.FormatFloat(ev.Value, 'f', -1, 64), csvQuote(attrs))
	}
	return bw.Flush()
}

// csvQuote quotes a field when it contains CSV metacharacters.
func csvQuote(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}
