package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace_event export. The output loads in chrome://tracing and
// Perfetto: one process, one track ("thread") per layer, spans as complete
// ("X") events, instants as "i", counter samples as "C". Timestamps are
// virtual-time microseconds with nanosecond precision in the fraction.
//
// The writer emits JSON by hand from ordered data only — no maps — so a
// fixed-seed run exports byte-identical files every time.

// chromeTID maps a layer to its track, ordered top-of-stack first so the
// viewer shows UI above app above transport above radio above kernel.
func chromeTID(l Layer) int {
	switch l {
	case LayerUI:
		return 1
	case LayerApp:
		return 2
	case LayerTransport:
		return 3
	case LayerRadio:
		return 4
	default: // LayerKernel
		return 5
	}
}

// WriteChromeTrace writes events as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	// Track-name metadata, fixed order.
	for i := Layer(0); i < numLayers; i++ {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			chromeTID(i), strconv.Quote(i.String()))
		fmt.Fprintf(bw, `,{"name":"thread_sort_index","ph":"M","pid":1,"tid":%d,"args":{"sort_index":%d}}`,
			chromeTID(i), chromeTID(i))
	}
	for i := range events {
		ev := &events[i]
		bw.WriteByte(',')
		switch ev.Kind {
		case KindSpan:
			fmt.Fprintf(bw, `{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s`,
				strconv.Quote(ev.Name), chromeTID(ev.Layer), micros(ev.Start), micros(ev.End-ev.Start))
			writeArgs(bw, ev)
		case KindInstant:
			fmt.Fprintf(bw, `{"name":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s`,
				strconv.Quote(ev.Name), chromeTID(ev.Layer), micros(ev.Start))
			writeArgs(bw, ev)
		case KindCounter:
			fmt.Fprintf(bw, `{"name":%s,"ph":"C","pid":1,"tid":%d,"ts":%s,"args":{"value":%s}}`,
				strconv.Quote(ev.Name), chromeTID(ev.Layer), micros(ev.Start),
				strconv.FormatFloat(ev.Value, 'f', -1, 64))
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeArgs closes a span/instant object, appending the correlation ID and
// attrs as args.
func writeArgs(bw *bufio.Writer, ev *TraceEvent) {
	bw.WriteString(`,"args":{"id":`)
	bw.WriteString(strconv.FormatUint(ev.ID, 10))
	for _, a := range ev.Attrs {
		bw.WriteByte(',')
		bw.WriteString(strconv.Quote(a.Key))
		bw.WriteByte(':')
		bw.WriteString(strconv.Quote(a.Val))
	}
	bw.WriteString("}}")
}

// micros renders a virtual duration as microseconds with 3 decimals
// (nanosecond precision), the unit trace_event expects for ts/dur.
func micros(d interface{ Nanoseconds() int64 }) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// WriteCSV writes events as flat CSV: one row per event, attrs flattened
// into a trailing "k=v;..." column.
func WriteCSV(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("kind,layer,name,start_ns,end_ns,id,value,attrs\n")
	kinds := [...]string{"span", "instant", "counter"}
	for i := range events {
		ev := &events[i]
		attrs := ""
		for j, a := range ev.Attrs {
			if j > 0 {
				attrs += ";"
			}
			attrs += a.Key + "=" + a.Val
		}
		fmt.Fprintf(bw, "%s,%s,%s,%d,%d,%d,%s,%s\n",
			kinds[ev.Kind], ev.Layer, csvQuote(ev.Name),
			ev.Start.Nanoseconds(), ev.End.Nanoseconds(), ev.ID,
			strconv.FormatFloat(ev.Value, 'f', -1, 64), csvQuote(attrs))
	}
	return bw.Flush()
}

// csvQuote quotes a field when it contains CSV metacharacters.
func csvQuote(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}
