// Package promcheck is a strict parser for the Prometheus text exposition
// format (version 0.0.4), used by tests to validate that /metricz output
// actually parses under the grammar rather than merely looking plausible.
// It checks line syntax (comments, samples, label sets, values), metric
// name and label grammar, # TYPE declarations, and the structural
// invariants of exposed histograms (cumulative buckets, trailing +Inf).
package promcheck

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed metric sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one declared metric family.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// Parse reads a complete exposition and returns the families in
// declaration order, or an error naming the first offending line.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var fams []Family
	byName := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: bare comment %q", lineNo, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := byName[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				byName[name] = len(fams)
				fams = append(fams, Family{Name: name, Type: typ})
			case "HELP":
				if len(fields) < 3 {
					return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
				}
			default:
				// Free-form comment: legal, ignored.
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(byName, fams, s.Name)
		if fam < 0 {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE declaration", lineNo, s.Name)
		}
		fams[fam].Samples = append(fams[fam].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if err := checkFamily(f); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// familyOf resolves a sample name to its family index, stripping the
// histogram/summary suffixes.
func familyOf(byName map[string]int, fams []Family, name string) int {
	if i, ok := byName[name]; ok {
		return i
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if i, ok := byName[base]; ok && (fams[i].Type == "histogram" || fams[i].Type == "summary") {
			return i
		}
	}
	return -1
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		nameEnd = sp
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q needs `value [timestamp]` after the name", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels parses `k1="v1",k2="v2"` into dst.
func parseLabels(body string, dst map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		key := body[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("label %q value is not quoted", key)
		}
		val, rest, err := unquoteLabel(body)
		if err != nil {
			return err
		}
		if _, dup := dst[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		dst[key] = val
		body = strings.TrimPrefix(rest, ",")
	}
	return nil
}

// unquoteLabel consumes a quoted label value honoring \" \\ \n escapes.
func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value in %q", s)
}

// parseValue accepts Go float syntax plus Prometheus's +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// checkFamily enforces per-type structure: counters must not be negative,
// histograms must expose cumulative buckets ending in +Inf with matching
// _count.
func checkFamily(f Family) error {
	switch f.Type {
	case "counter":
		for _, s := range f.Samples {
			if s.Value < 0 {
				return fmt.Errorf("counter %s has negative value %v", s.Name, s.Value)
			}
		}
	case "histogram":
		var buckets []Sample
		var count *Sample
		for i := range f.Samples {
			s := f.Samples[i]
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				buckets = append(buckets, s)
			case strings.HasSuffix(s.Name, "_count"):
				count = &f.Samples[i]
			}
		}
		if len(buckets) == 0 {
			return fmt.Errorf("histogram %s exposes no _bucket series", f.Name)
		}
		prev := math.Inf(-1)
		var prevCount float64
		for _, b := range buckets {
			leRaw, ok := b.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s bucket lacks an le label", f.Name)
			}
			le, err := parseValue(leRaw)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leRaw)
			}
			if le <= prev {
				return fmt.Errorf("histogram %s buckets not in ascending le order", f.Name)
			}
			if b.Value < prevCount {
				return fmt.Errorf("histogram %s buckets not cumulative at le=%q", f.Name, leRaw)
			}
			prev, prevCount = le, b.Value
		}
		last := buckets[len(buckets)-1]
		if !math.IsInf(prev, 1) {
			return fmt.Errorf("histogram %s lacks the +Inf bucket", f.Name)
		}
		if count != nil && count.Value != last.Value {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", f.Name, last.Value, count.Value)
		}
	}
	return nil
}
