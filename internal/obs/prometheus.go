package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE comment per family, counters suffixed
// _total, histograms expanded into cumulative _bucket{le="..."} series plus
// _sum and _count, and a final +Inf bucket. Metric names are sanitized to
// the [a-zA-Z_:][a-zA-Z0-9_:]* grammar. Output order follows the snapshot's
// stable name order, so identical registry state renders byte-identically —
// the same determinism contract as WriteNDJSON.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, e := range s.Entries {
		name := PromName(e.Name)
		switch e.Kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				name += "_total"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(e.Value)); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			for _, b := range e.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.LE), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				name, e.Count, name, promFloat(e.Value), name, e.Count); err != nil {
				return err
			}
		default: // gauge
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(e.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromName sanitizes an internal metric name to the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid rune becomes an underscore and a
// leading digit gets one prepended.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, with infinities spelled +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
