package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing count. A nil *Counter (the
// detached state) absorbs all updates for free.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int) {
	if c != nil && n > 0 {
		c.v += uint64(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins measurement.
type Gauge struct {
	v   float64
	set bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Value returns the last set value (zero before the first Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// DefBuckets is the default histogram bucketing: exponential-ish upper
// bounds suited to millisecond-scale latencies.
var DefBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// Histogram accumulates observations into cumulative buckets. Buckets are
// defined by ascending upper bounds; observations above the last bound land
// only in the implicit overflow bucket (Count minus the last cumulative
// bucket count).
type Histogram struct {
	bounds []float64
	counts []uint64 // per-bound, non-cumulative
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.counts) {
		h.counts[i]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile returns the value at rank q in [0,1], linearly interpolated
// within the bucket where the cumulative count crosses q*n. Observations in
// the overflow bucket (above the last bound) answer the last bound — the
// histogram cannot see past it. The first bucket interpolates from zero,
// matching Prometheus's histogram_quantile convention, so Quantile is the
// shared quantile primitive for burn-rate math and /statz summaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum uint64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	// Rank lands in the overflow bucket: everything we know is that the
	// value exceeds the last bound.
	return h.bounds[len(h.bounds)-1]
}

// CumulativeBuckets returns (bound, cumulative count) pairs in bound order.
func (h *Histogram) CumulativeBuckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.bounds))
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		out[i] = Bucket{LE: b, Count: cum}
	}
	return out
}

// Registry is a by-name collection of metrics. Like the trace bus it is
// single-goroutine and nil-safe: a nil *Registry hands out nil instruments
// that absorb updates for free.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFns   map[string]func() float64
	counterFns map[string]func() uint64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFns:   make(map[string]func() float64),
		counterFns: make(map[string]func() uint64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Call sites
// resolve their instruments once (at construction) and hold the pointer, so
// the map lookup stays off hot paths.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge evaluated lazily at Snapshot time — the
// zero-hot-path-cost way to expose values a component already tracks
// (kernel event counts, qdisc drop totals, outage counts).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gaugeFns[name] = fn
}

// CounterFunc registers a monotonic counter evaluated lazily at Snapshot
// time. It is the bridge for concurrent components (the qoestore ingest
// path, emitters) whose own counters are atomics: the registry itself
// stays single-registration-time mutable and Snapshot only reads, so a
// CounterFunc over an atomic value is safe to snapshot while the
// component is hot.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.counterFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given bounds
// (DefBuckets when none) on first use.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
		r.hists[name] = h
	}
	return h
}

// Bucket is one cumulative histogram bucket: Count observations were <= LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Entry is one metric in a snapshot.
type Entry struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter" | "gauge" | "histogram"
	Value   float64  `json:"value"`
	Count   uint64   `json:"count,omitempty"`   // histograms: observation count
	Buckets []Bucket `json:"buckets,omitempty"` // histograms: cumulative buckets
}

// Snapshot is a stable-ordered (by name) point-in-time copy of a registry.
type Snapshot struct {
	Entries []Entry
}

// Snapshot evaluates gauge funcs and freezes every metric, sorted by name
// so repeated snapshots of identical state render byte-identically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Entries = append(s.Entries, Entry{Name: name, Kind: "counter", Value: float64(c.v)})
	}
	for name, g := range r.gauges {
		s.Entries = append(s.Entries, Entry{Name: name, Kind: "gauge", Value: g.v})
	}
	for name, fn := range r.gaugeFns {
		s.Entries = append(s.Entries, Entry{Name: name, Kind: "gauge", Value: fn()})
	}
	for name, fn := range r.counterFns {
		s.Entries = append(s.Entries, Entry{Name: name, Kind: "counter", Value: float64(fn())})
	}
	for name, h := range r.hists {
		s.Entries = append(s.Entries, Entry{
			Name: name, Kind: "histogram", Value: h.sum, Count: h.n,
			Buckets: h.CumulativeBuckets(),
		})
	}
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Name < s.Entries[j].Name })
	return s
}

// Get returns the entry with the given name, if present.
func (s Snapshot) Get(name string) (Entry, bool) {
	for _, e := range s.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// WriteNDJSON writes one JSON object per metric, in snapshot (name) order.
func (s Snapshot) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Rows renders the snapshot as table rows (name, kind, value, count) for
// callers with their own table formatter.
func (s Snapshot) Rows() [][4]string {
	rows := make([][4]string, 0, len(s.Entries))
	for _, e := range s.Entries {
		count := ""
		if e.Kind == "histogram" {
			count = fmt.Sprintf("%d", e.Count)
		}
		rows = append(rows, [4]string{e.Name, e.Kind, trimFloat(e.Value), count})
	}
	return rows
}

// trimFloat formats v compactly without scientific notation surprises.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
