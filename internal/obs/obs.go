// Package obs is the cross-layer observability substrate: a trace bus of
// virtual-time-stamped spans and instants emitted by every layer of the
// simulated stack (kernel, radio, transport, app, UI), a metrics registry of
// counters/gauges/histograms, exporters (Chrome trace_event JSON, CSV,
// NDJSON), and a wall-clock kernel profiler.
//
// Design rules:
//
//   - Zero cost when detached. Every entry point is nil-receiver-safe, so
//     instrumented code can hold a nil *Trace or nil *Counter and call into
//     it unconditionally; hot paths additionally guard with an explicit nil
//     check before building event payloads.
//   - Deterministic. All trace timestamps are virtual time, correlation IDs
//     come from a plain counter, and exports iterate in emission or sorted
//     order — a fixed-seed run produces byte-identical exports every time.
//   - Leaf package. obs imports only the standard library, so every layer
//     (including the simtime kernel) can depend on it without cycles.
//     Timestamps are time.Duration, which is the same type as simtime.Time.
package obs

import "time"

// Layer identifies which layer of the stack emitted a trace event. The five
// layers mirror the paper's cross-layer analysis: user-visible UI on top,
// the radio link at the bottom, with the discrete-event kernel underneath
// everything.
type Layer uint8

const (
	LayerKernel Layer = iota
	LayerRadio
	LayerTransport
	LayerApp
	LayerUI
	numLayers
)

func (l Layer) String() string {
	switch l {
	case LayerKernel:
		return "kernel"
	case LayerRadio:
		return "radio"
	case LayerTransport:
		return "transport"
	case LayerApp:
		return "app"
	case LayerUI:
		return "ui"
	}
	return "unknown"
}

// EventKind distinguishes spans (Start < End possible), point-in-time
// instants, and counter samples (time series of a value).
type EventKind uint8

const (
	KindSpan EventKind = iota
	KindInstant
	KindCounter
)

// Attr is one ordered key/value annotation on a trace event. A slice of
// Attrs (rather than a map) keeps exports byte-deterministic.
type Attr struct {
	Key, Val string
}

// TraceEvent is one record on the trace bus. Start and End are virtual
// timestamps (durations since the simulation epoch); for instants and
// counter samples End == Start. ID is the cross-layer correlation ID:
// events from different layers that belong to the same user action carry
// the same ID, so a rebuffer span can be walked down to the TCP
// retransmissions and RLC activity beneath it.
type TraceEvent struct {
	Kind  EventKind
	Layer Layer
	Name  string
	Start time.Duration
	End   time.Duration
	ID    uint64
	Value float64 // counter samples only
	Attrs []Attr
}

// Trace is the bus collecting TraceEvents from all layers. It is not safe
// for concurrent use; like the simulation itself it lives on the kernel
// goroutine. The zero value is unusable — a nil *Trace is the "no sink
// attached" state and every method on it is a no-op.
type Trace struct {
	now    func() time.Duration
	events []TraceEvent
	nextID uint64
	scope  uint64
}

// NewTrace creates an empty trace bus. Bind must be called (the testbed
// does it) before events carry meaningful timestamps.
func NewTrace() *Trace { return &Trace{} }

// Bind installs the virtual-time source, normally a kernel's Now.
func (t *Trace) Bind(now func() time.Duration) {
	if t == nil {
		return
	}
	t.now = now
}

// Now returns the bound virtual time (zero before Bind).
func (t *Trace) Now() time.Duration {
	if t == nil || t.now == nil {
		return 0
	}
	return t.now()
}

// NewID allocates a fresh correlation ID (never 0).
func (t *Trace) NewID() uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	return t.nextID
}

// SetScope sets the current correlation scope: the ID of the user action
// (or other causal context) in progress. Layers without a natural flow
// identity — radio, kernel, freshly created TCP connections — stamp their
// events with the current scope. User actions in the simulated scenarios
// are sequential, so a single global scope is exact, and it is updated only
// from UI input injection, keeping it deterministic.
func (t *Trace) SetScope(id uint64) {
	if t == nil {
		return
	}
	t.scope = id
}

// Scope returns the current correlation scope (0 when none).
func (t *Trace) Scope() uint64 {
	if t == nil {
		return 0
	}
	return t.scope
}

// Emit appends a raw event to the bus.
func (t *Trace) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.events = append(t.events, ev)
}

// Instant records a point-in-time event.
func (t *Trace) Instant(layer Layer, name string, id uint64, attrs ...Attr) {
	if t == nil {
		return
	}
	now := t.Now()
	t.events = append(t.events, TraceEvent{
		Kind: KindInstant, Layer: layer, Name: name, Start: now, End: now, ID: id, Attrs: attrs,
	})
}

// CounterSample records one sample of a named time-series value (rendered
// as a counter track in the Chrome trace viewer).
func (t *Trace) CounterSample(layer Layer, name string, v float64) {
	if t == nil {
		return
	}
	now := t.Now()
	t.events = append(t.events, TraceEvent{
		Kind: KindCounter, Layer: layer, Name: name, Start: now, End: now, Value: v,
	})
}

// Events returns every event emitted so far, in emission order.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of events on the bus.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Span is an in-progress span handle returned by Start. The zero value is
// inert: all methods no-op, so detached code paths can unconditionally End
// spans they never opened. Spans are value types — store them in struct
// fields or locals; closures capture the local by reference, which is what
// asynchronous End sites need.
type Span struct {
	t     *Trace
	layer Layer
	name  string
	id    uint64
	start time.Duration
	attrs []Attr
}

// Start opens a span at the current virtual time. id is the correlation ID
// (pass t.Scope() to join the current user action, or t.NewID() for an
// independent root). On a nil Trace it returns an inert Span.
func (t *Trace) Start(layer Layer, name string, id uint64, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, layer: layer, name: name, id: id, start: t.Now(), attrs: attrs}
}

// Active reports whether the span is open (started on a live trace and not
// yet ended).
func (s *Span) Active() bool { return s != nil && s.t != nil }

// Attr appends an annotation to the span.
func (s *Span) Attr(key, val string) {
	if s == nil || s.t == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, val})
}

// StartTime returns the span's opening virtual time (zero for inert spans).
func (s *Span) StartTime() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// End closes the span at the current virtual time and emits it. Ending an
// inert or already-ended span is a no-op, and the span becomes inert after
// the first End.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	s.t = nil
	t.events = append(t.events, TraceEvent{
		Kind: KindSpan, Layer: s.layer, Name: s.name,
		Start: s.start, End: t.Now(), ID: s.id, Attrs: s.attrs,
	})
}

// EndAt closes the span at an explicit virtual time (for monitors that
// learn about a state change after the fact).
func (s *Span) EndAt(at time.Duration) {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	s.t = nil
	t.events = append(t.events, TraceEvent{
		Kind: KindSpan, Layer: s.layer, Name: s.name,
		Start: s.start, End: at, ID: s.id, Attrs: s.attrs,
	})
}
