package obs

import "runtime"

// RegisterRuntimeMetrics wires the Go runtime's health signals into r as
// lazily-evaluated gauges: goroutine count, heap occupancy, cumulative GC
// pause time and cycle count. They are sampled only at Snapshot time
// (ReadMemStats stops the world briefly, so this belongs on a scrape path,
// never a simulation hot path) and exist for the service processes —
// qoeserve's /metricz and the optional -debug-addr listener — not for the
// deterministic simulation, whose registries must stay wall-clock-free.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.GaugeFunc("go_heap_objects", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapObjects)
	})
	r.GaugeFunc("go_gc_pause_total_seconds", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	})
	r.GaugeFunc("go_gc_cycles", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
}
