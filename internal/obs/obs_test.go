package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := &Histogram{bounds: []float64{10, 20, 50}, counts: make([]uint64, 3)}
	for _, v := range []float64{1, 10, 11, 20, 49, 50, 51, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	if h.Sum() != 1192 {
		t.Fatalf("Sum = %v, want 1192", h.Sum())
	}
	// Bounds are inclusive upper edges: <=10 catches {1, 10}, <=20 adds
	// {11, 20}, <=50 adds {49, 50}; {51, 1000} land only in the implicit
	// overflow bucket.
	want := []Bucket{{LE: 10, Count: 2}, {LE: 20, Count: 4}, {LE: 50, Count: 6}}
	got := h.CumulativeBuckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if overflow := h.Count() - got[len(got)-1].Count; overflow != 2 {
		t.Errorf("overflow = %d, want 2", overflow)
	}
}

func TestRegistryDefaultBucketsAscending(t *testing.T) {
	for i := 1; i < len(DefBuckets); i++ {
		if DefBuckets[i] <= DefBuckets[i-1] {
			t.Fatalf("DefBuckets not strictly ascending at %d: %v", i, DefBuckets)
		}
	}
}

func TestRegistrySnapshotOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Add(3)
	r.Histogram("mid_hist", 1, 10).Observe(5)
	r.Gauge("alpha").Set(1.5)
	r.GaugeFunc("beta_fn", func() float64 { return 42 })
	// Create-or-get: the same instrument comes back.
	if r.Counter("zebra") != r.Counter("zebra") {
		t.Fatal("Counter not idempotent")
	}
	r.Counter("zebra").Inc()

	s := r.Snapshot()
	var names []string
	for _, e := range s.Entries {
		names = append(names, e.Name)
	}
	want := []string{"alpha", "beta_fn", "mid_hist", "zebra"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	if e, ok := s.Get("zebra"); !ok || e.Value != 4 || e.Kind != "counter" {
		t.Fatalf("zebra = %+v, ok=%v", e, ok)
	}
	if e, _ := s.Get("beta_fn"); e.Value != 42 || e.Kind != "gauge" {
		t.Fatalf("beta_fn = %+v", e)
	}
	if e, _ := s.Get("mid_hist"); e.Kind != "histogram" || e.Count != 1 || len(e.Buckets) != 2 {
		t.Fatalf("mid_hist = %+v", e)
	}

	var buf bytes.Buffer
	if err := s.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("NDJSON line %d invalid: %s", i, line)
		}
	}
}

func TestNilSafety(t *testing.T) {
	// Every detached instrument absorbs calls without panicking.
	var tr *Trace
	tr.Bind(nil)
	tr.SetScope(7)
	tr.Instant(LayerApp, "x", 1)
	tr.CounterSample(LayerKernel, "q", 1)
	tr.Emit(TraceEvent{})
	sp := tr.Start(LayerUI, "click", tr.NewID())
	sp.Attr("k", "v")
	sp.End()
	sp.EndAt(time.Second)
	if tr.Len() != 0 || tr.Events() != nil || tr.Scope() != 0 || tr.NewID() != 0 || tr.Now() != 0 {
		t.Fatal("nil Trace leaked state")
	}
	if sp.Active() {
		t.Fatal("span from nil trace is active")
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.CumulativeBuckets() != nil {
		t.Fatal("nil instruments leaked state")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil Registry handed out live instruments")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	if len(r.Snapshot().Entries) != 0 {
		t.Fatal("nil Registry snapshot not empty")
	}

	var p *Profiler
	p.Observe("site", time.Millisecond)
	if p.Sites() != nil || p.Report(5) != "" {
		t.Fatal("nil Profiler leaked state")
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTrace()
	var now time.Duration
	tr.Bind(func() time.Duration { return now })

	id := tr.NewID()
	sp := tr.Start(LayerApp, "load", id, Attr{"url", "u"})
	if !sp.Active() {
		t.Fatal("span not active after Start")
	}
	now = 250 * time.Millisecond
	sp.Attr("done", "yes")
	sp.End()
	if sp.Active() {
		t.Fatal("span still active after End")
	}
	sp.End() // idempotent
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (double End emitted twice?)", tr.Len())
	}
	ev := tr.Events()[0]
	if ev.Kind != KindSpan || ev.Name != "load" || ev.ID != id ||
		ev.Start != 0 || ev.End != 250*time.Millisecond || len(ev.Attrs) != 2 {
		t.Fatalf("event = %+v", ev)
	}

	sp2 := tr.Start(LayerRadio, "rrc:DCH", tr.Scope())
	sp2.EndAt(time.Second)
	if got := tr.Events()[1].End; got != time.Second {
		t.Fatalf("EndAt end = %v", got)
	}
}

func TestScopeCorrelation(t *testing.T) {
	tr := NewTrace()
	id := tr.NewID()
	tr.SetScope(id)
	tr.Instant(LayerTransport, "tcp:retx", tr.Scope())
	sp := tr.Start(LayerUI, "click", tr.Scope())
	sp.End()
	evs := tr.Events()
	if evs[0].ID != id || evs[1].ID != id {
		t.Fatalf("scope not propagated: %d, %d != %d", evs[0].ID, evs[1].ID, id)
	}
}

func TestWriteChromeTraceValidAndDeterministic(t *testing.T) {
	tr := NewTrace()
	var now time.Duration
	tr.Bind(func() time.Duration { return now })
	sp := tr.Start(LayerUI, `quoted "name"`, tr.NewID(), Attr{"k", `v"w`})
	now = 1500 * time.Nanosecond
	sp.End()
	tr.Instant(LayerTransport, "tcp:retx", 2, Attr{"seq", "9"})
	tr.CounterSample(LayerKernel, "queue_depth", 3.25)

	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, tr.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated export differs")
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, a.String())
	}
	// 5 layers x 2 metadata records + 3 events.
	if len(doc.TraceEvents) != 13 {
		t.Fatalf("traceEvents = %d, want 13", len(doc.TraceEvents))
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
	}
	if byPh["M"] != 10 || byPh["X"] != 1 || byPh["i"] != 1 || byPh["C"] != 1 {
		t.Fatalf("phase counts = %v", byPh)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if ev.Name != `quoted "name"` || ev.Tid != 1 || ev.Dur != 1.5 {
				t.Fatalf("span event = %+v", ev)
			}
			if ev.Args["k"] != `v"w` || ev.Args["id"] != float64(1) {
				t.Fatalf("span args = %v", ev.Args)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tr := NewTrace()
	tr.Instant(LayerApp, "with,comma", 4, Attr{"a", "1"}, Attr{"b", "2"})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "kind,layer,name,start_ns,end_ns,id,value,attrs" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `instant,app,"with,comma",0,0,4,0,a=1;b=2` {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestProfiler(t *testing.T) {
	p := NewProfiler()
	p.Observe("a", 2*time.Millisecond)
	p.Observe("b", 5*time.Millisecond)
	p.Observe("a", time.Millisecond)
	sites := p.Sites()
	if len(sites) != 2 || sites[0].Site != "b" || sites[1].Site != "a" {
		t.Fatalf("sites = %+v (want wall-descending)", sites)
	}
	if sites[1].Count != 2 || sites[1].Wall != 3*time.Millisecond {
		t.Fatalf("site a = %+v", sites[1])
	}
	if rep := p.Report(1); !strings.Contains(rep, "b") {
		t.Fatalf("report = %q", rep)
	}
}
