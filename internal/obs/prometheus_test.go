package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/obs/promcheck"
)

// TestHistogramQuantileAgainstExactSamples is the satellite property test:
// for random sample sets, the bucket-interpolated quantile must land within
// one bucket width of the exact order-statistic quantile.
func TestHistogramQuantileAgainstExactSamples(t *testing.T) {
	bounds := []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000}
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%200) + 1
		h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
		samples := make([]float64, count)
		for i := range samples {
			samples[i] = math.Exp(rng.Float64()*6.5) - 0.5 // ~0.5 .. ~660
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			got := h.Quantile(q)
			rank := int(math.Ceil(q*float64(count))) - 1
			if rank < 0 {
				rank = 0
			}
			exact := samples[rank]
			// The histogram cannot resolve beyond its bucket: got must fall
			// inside (or at the edge of) the bucket containing the exact value.
			lo, hi := bucketOf(bounds, exact)
			if exact > bounds[len(bounds)-1] {
				// Overflow: the histogram answers the last bound.
				if got != bounds[len(bounds)-1] {
					t.Logf("q=%v overflow: got %v, want last bound %v", q, got, bounds[len(bounds)-1])
					return false
				}
				continue
			}
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Logf("q=%v: interpolated %v outside exact value %v's bucket [%v,%v] (n=%d)", q, got, exact, lo, hi, count)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// bucketOf returns the [lo, hi] bounds of the bucket holding v.
func bucketOf(bounds []float64, v float64) (lo, hi float64) {
	lo = 0
	for _, b := range bounds {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return lo, math.Inf(1)
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(5)
	q := h.Quantile(0.5)
	if q <= 1 || q > 10 {
		t.Fatalf("single observation at 5: q50 = %v, want within (1,10]", q)
	}
	// Every observation above the last bound: quantile saturates at it.
	h2 := r.Histogram("over", 1, 2)
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want last bound 2", got)
	}
	// Clamping out-of-range q.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q outside [0,1] not clamped")
	}
}

// TestWritePrometheusParses validates the exposition against the strict
// test-side grammar parser, covering all three kinds plus name sanitizing.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_acked").Add(42)
	r.Counter("already_total").Inc()
	r.Gauge("queue_fill").Set(0.75)
	r.GaugeFunc("kernel-events.live", func() float64 { return 17 }) // needs sanitizing
	r.CounterFunc("retx", func() uint64 { return 9 })
	h := r.Histogram("latency_ms", 1, 5, 25)
	for _, v := range []float64{0.5, 3, 4, 30} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promcheck.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	byName := map[string]promcheck.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["events_acked_total"]; !ok || f.Type != "counter" || f.Samples[0].Value != 42 {
		t.Fatalf("events_acked_total family wrong: %+v", byName)
	}
	if _, ok := byName["already_total_total"]; ok {
		t.Fatal("_total suffix was doubled")
	}
	if f, ok := byName["already_total"]; !ok || f.Type != "counter" {
		t.Fatal("counter already ending in _total renamed")
	}
	if f, ok := byName["kernel_events_live"]; !ok || f.Samples[0].Value != 17 {
		t.Fatalf("sanitized gauge missing: %s", buf.String())
	}
	hist, ok := byName["latency_ms"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("histogram family missing:\n%s", buf.String())
	}
	// 3 finite buckets + +Inf + _sum + _count.
	if len(hist.Samples) != 6 {
		t.Fatalf("histogram has %d samples, want 6: %+v", len(hist.Samples), hist.Samples)
	}

	// Determinism: a second snapshot of identical state renders identically.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WritePrometheus is not byte-deterministic")
	}
}

func TestPromNameGrammar(t *testing.T) {
	cases := map[string]string{
		"ok_name":        "ok_name",
		"with-dash.dots": "with_dash_dots",
		"9leading":       "_9leading",
		"":               "_",
		"colons:fine":    "colons:fine",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromcheckRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		"# TYPE x bogus\nx 1\n",
		"# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\n", // le order
		"# TYPE m counter\nm -4\n",
		"undeclared_sample 3\n",
	}
	for _, in := range bad {
		if _, err := promcheck.Parse(strings.NewReader(in)); err == nil {
			t.Errorf("promcheck accepted invalid exposition:\n%s", in)
		}
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(nil) // nil-safe
	s := r.Snapshot()
	for _, name := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_total_seconds", "go_gc_cycles", "go_heap_objects"} {
		e, ok := s.Get(name)
		if !ok {
			t.Fatalf("runtime metric %s missing", name)
		}
		if name == "go_goroutines" && e.Value < 1 {
			t.Fatalf("goroutines = %v, want >= 1", e.Value)
		}
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := promcheck.Parse(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("runtime metrics exposition invalid: %v", err)
	}
}
