// Package sweep runs grids of (experiment, seed) cells across a bounded
// worker pool. Each cell builds its own testbeds (and therefore its own
// simtime.Kernel and rand sources), so cells share no mutable state and the
// per-cell output is deterministic regardless of scheduling. Results are
// collected by cell index, which makes the rendered parallel output
// byte-identical to a serial run of the same grid.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Cell is one unit of sweep work: a registered experiment at one seed.
// Params carries the scenario knobs handed to the experiment (the zero
// value reproduces the paper-exact defaults).
type Cell struct {
	Exp    experiments.Experiment
	Seed   int64
	Params experiments.Params
}

// Result is the outcome of one cell. Exactly one of Res and Err is set: a
// panicking cell is captured (with its stack) instead of killing the sweep.
type Result struct {
	Cell
	Index   int // position in the input grid
	Res     *experiments.Result
	Err     error
	Elapsed time.Duration // host wall-clock time spent on the cell
}

// Options tunes a sweep run.
type Options struct {
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// Metrics, when set, gets progress gauges: sweep_cells_total,
	// sweep_cells_done, sweep_cells_failed, sweep_cells_running.
	Metrics *obs.Registry
	// OnDone, when set, is invoked once per finished cell, serialized (never
	// concurrently), in completion order — not grid order.
	OnDone func(Result)
}

// Grid expands experiments × seeds into cells, seed-major: all experiments
// at the first seed (in the given, i.e. paper, order), then the next seed.
func Grid(exps []experiments.Experiment, seeds []int64) []Cell {
	cells := make([]Cell, 0, len(exps)*len(seeds))
	for _, seed := range seeds {
		for _, e := range exps {
			cells = append(cells, Cell{Exp: e, Seed: seed})
		}
	}
	return cells
}

// ParseSeeds parses a seed-grid spec: a single seed ("42"), an inclusive
// range ("42..49"), or a comma-separated list ("1,5,9"). Range and list
// forms may be mixed ("1,10..12").
func ParseSeeds(spec string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("sweep: empty seed in %q", spec)
		}
		if lo, hi, ok := strings.Cut(part, ".."); ok {
			a, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad seed range start %q", lo)
			}
			b, err := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad seed range end %q", hi)
			}
			if b < a {
				return nil, fmt.Errorf("sweep: descending seed range %q", part)
			}
			if b-a >= 10000 {
				return nil, fmt.Errorf("sweep: seed range %q too large", part)
			}
			for s := a; s <= b; s++ {
				seeds = append(seeds, s)
			}
			continue
		}
		s, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad seed %q", part)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sweep: no seeds in %q", spec)
	}
	return seeds, nil
}

// Run executes every cell and returns results in grid order. Work is dealt
// to opts.Workers goroutines from a shared index, so cells start in grid
// order but may finish in any order; the returned slice is always indexed
// by cell position.
func Run(cells []Cell, opts Options) []Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]Result, len(cells))
	var next, done, failed, running atomic.Int64
	if opts.Metrics != nil {
		total := float64(len(cells))
		opts.Metrics.GaugeFunc("sweep_cells_total", func() float64 { return total })
		opts.Metrics.GaugeFunc("sweep_cells_done", func() float64 { return float64(done.Load()) })
		opts.Metrics.GaugeFunc("sweep_cells_failed", func() float64 { return float64(failed.Load()) })
		opts.Metrics.GaugeFunc("sweep_cells_running", func() float64 { return float64(running.Load()) })
	}
	var doneMu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				running.Add(1)
				results[i] = runCell(i, cells[i])
				running.Add(-1)
				if results[i].Err != nil {
					failed.Add(1)
				}
				done.Add(1)
				if opts.OnDone != nil {
					doneMu.Lock()
					opts.OnDone(results[i])
					doneMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// runCell executes one cell, converting a panic into a captured error so one
// bad experiment cannot take down the whole sweep.
func runCell(i int, c Cell) (r Result) {
	r = Result{Cell: c, Index: i}
	start := time.Now()
	defer func() {
		r.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			r.Res = nil
			r.Err = fmt.Errorf("sweep: %s (seed %d) panicked: %v\n%s",
				c.Exp.ID, c.Seed, p, debug.Stack())
		}
	}()
	r.Res = c.Exp.Run(c.Seed, c.Params)
	return r
}

// Failed counts results carrying an error.
func Failed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Err != nil {
			n++
		}
	}
	return n
}

// Render formats results in grid order. With showSeed false the output is
// exactly the historical serial `-all` format — each result's Render
// followed by a blank line — so a parallel sweep at one seed is
// byte-identical to the old serial loop. With showSeed true a seed banner
// precedes each seed's block.
func Render(results []Result, showSeed bool) string {
	var b strings.Builder
	s := Stream{w: &b, showSeed: showSeed, pending: map[int]Result{}}
	for _, r := range results {
		s.Push(r)
	}
	return b.String()
}

// Stream renders sweep results incrementally, in grid order, while the
// sweep is still running: results pushed out of order are buffered until
// every earlier cell has been emitted, so the concatenated output is
// byte-identical to Render over the full result slice. Feed it from
// Options.OnDone (which serializes calls); Stream itself is not
// goroutine-safe.
type Stream struct {
	w        io.Writer
	showSeed bool

	next     int
	pending  map[int]Result
	lastSeed int64
	started  bool
	err      error
}

// NewStream returns a Stream writing to w, with the same showSeed semantics
// as Render.
func NewStream(w io.Writer, showSeed bool) *Stream {
	return &Stream{w: w, showSeed: showSeed, pending: make(map[int]Result)}
}

// Push accepts one finished cell, in any order, and flushes the contiguous
// prefix of grid-ordered results that is now complete.
func (s *Stream) Push(r Result) {
	s.pending[r.Index] = r
	for {
		head, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		s.emit(head)
	}
}

// Err returns the first write error, if any.
func (s *Stream) Err() error { return s.err }

func (s *Stream) emit(r Result) {
	write := func(err error) {
		if s.err == nil {
			s.err = err
		}
	}
	if s.showSeed && (!s.started || r.Seed != s.lastSeed) {
		_, err := fmt.Fprintf(s.w, "##### seed %d #####\n\n", r.Seed)
		write(err)
	}
	s.started, s.lastSeed = true, r.Seed
	if r.Err != nil {
		_, err := fmt.Fprintf(s.w, "=== %s: FAILED ===\n%v\n", r.Exp.ID, r.Err)
		write(err)
	} else {
		_, err := io.WriteString(s.w, r.Res.Render())
		write(err)
	}
	_, err := io.WriteString(s.w, "\n")
	write(err)
}
