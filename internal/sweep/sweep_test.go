package sweep

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		spec string
		want []int64
		err  bool
	}{
		{spec: "42", want: []int64{42}},
		{spec: "42..45", want: []int64{42, 43, 44, 45}},
		{spec: "1,5,9", want: []int64{1, 5, 9}},
		{spec: "1,10..12", want: []int64{1, 10, 11, 12}},
		{spec: "-3..-1", want: []int64{-3, -2, -1}},
		{spec: "", err: true},
		{spec: "abc", err: true},
		{spec: "5..2", err: true},
		{spec: "1,,2", err: true},
		{spec: "1..999999", err: true},
	}
	for _, c := range cases {
		got, err := ParseSeeds(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseSeeds(%q): want error, got %v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSeeds(%q): %v", c.spec, err)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("ParseSeeds(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

// fakeExp builds a synthetic experiment whose Run records the seed.
func fakeExp(id string) experiments.Experiment {
	return experiments.Experiment{
		ID: id,
		Run: func(seed int64, _ experiments.Params, _ ...analyzer.Option) *experiments.Result {
			r := &experiments.Result{ID: id, Title: id}
			r.Set("seed", float64(seed))
			return r
		},
	}
}

func TestGridIsSeedMajor(t *testing.T) {
	cells := Grid([]experiments.Experiment{fakeExp("a"), fakeExp("b")}, []int64{1, 2})
	want := []string{"a/1", "b/1", "a/2", "b/2"}
	for i, c := range cells {
		if got := fmt.Sprintf("%s/%d", c.Exp.ID, c.Seed); got != want[i] {
			t.Fatalf("cell %d = %s, want %s", i, got, want[i])
		}
	}
}

// TestRunOrderingUnderParallelism: results come back in grid order with the
// right payloads even when completion order is scrambled.
func TestRunOrderingUnderParallelism(t *testing.T) {
	var exps []experiments.Experiment
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("exp%d", i)
		delay := time.Duration(5-i) * time.Millisecond // later cells finish first
		e := experiments.Experiment{ID: id, Run: func(seed int64, _ experiments.Params, _ ...analyzer.Option) *experiments.Result {
			time.Sleep(delay)
			r := &experiments.Result{ID: id, Title: id}
			r.Set("seed", float64(seed))
			return r
		}}
		exps = append(exps, e)
	}
	cells := Grid(exps, []int64{7, 8})
	results := Run(cells, Options{Workers: 4})
	if len(results) != len(cells) {
		t.Fatalf("got %d results, want %d", len(results), len(cells))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("results[%d].Index = %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("cell %d failed: %v", i, r.Err)
		}
		if r.Res.ID != cells[i].Exp.ID || r.Res.Values["seed"] != float64(cells[i].Seed) {
			t.Fatalf("cell %d: got %s/%v, want %s/%d",
				i, r.Res.ID, r.Res.Values["seed"], cells[i].Exp.ID, cells[i].Seed)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	boom := experiments.Experiment{ID: "boom", Run: func(seed int64, _ experiments.Params, _ ...analyzer.Option) *experiments.Result {
		panic("kaboom")
	}}
	cells := Grid([]experiments.Experiment{fakeExp("ok"), boom, fakeExp("ok2")}, []int64{1})
	results := Run(cells, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy cells failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if Failed(results) != 1 {
		t.Fatalf("Failed = %d, want 1", Failed(results))
	}
	out := Render(results, false)
	if !strings.Contains(out, "boom: FAILED") {
		t.Fatalf("Render missing failure marker:\n%s", out)
	}
}

func TestProgressMetricsAndOnDone(t *testing.T) {
	reg := obs.NewRegistry()
	cells := Grid([]experiments.Experiment{fakeExp("a"), fakeExp("b")}, []int64{1, 2, 3})
	var seen []int
	results := Run(cells, Options{
		Workers: 3,
		Metrics: reg,
		OnDone:  func(r Result) { seen = append(seen, r.Index) }, // serialized
	})
	if len(seen) != len(cells) {
		t.Fatalf("OnDone fired %d times, want %d", len(seen), len(cells))
	}
	snap := reg.Snapshot()
	if e, ok := snap.Get("sweep_cells_done"); !ok || e.Value != float64(len(cells)) {
		t.Fatalf("sweep_cells_done = %v (ok=%v), want %d", e.Value, ok, len(cells))
	}
	if e, ok := snap.Get("sweep_cells_failed"); !ok || e.Value != 0 {
		t.Fatalf("sweep_cells_failed = %v (ok=%v), want 0", e.Value, ok)
	}
	_ = results
}

// fastIDs is a subset of real experiments quick enough to sweep in every
// test run (and under -race, where this test doubles as the concurrency
// audit for the whole testbed stack).
var fastIDs = []string{"fig10", "fig12", "sec7.7", "faults"}

func fastExps(t *testing.T) []experiments.Experiment {
	t.Helper()
	var exps []experiments.Experiment
	for _, id := range fastIDs {
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
		exps = append(exps, e)
	}
	return exps
}

// TestParallelMatchesSerial is the determinism golden: a parallel sweep of
// real experiments renders byte-identically to the serial sweep.
func TestParallelMatchesSerial(t *testing.T) {
	cells := Grid(fastExps(t), []int64{42, 43})
	serial := Render(Run(cells, Options{Workers: 1}), true)
	parallel := Render(Run(cells, Options{Workers: 4}), true)
	if serial != parallel {
		t.Fatal("parallel sweep output differs from serial")
	}
	if !strings.Contains(serial, "##### seed 43 #####") {
		t.Fatal("multi-seed render missing seed banner")
	}
}

// TestFullSweepGolden runs the complete registry (the `-all -seed 42`
// surface) serial vs parallel. ~1 min of work, so it is opt-in: set
// SWEEP_FULL=1 (make sweep-golden does).
func TestFullSweepGolden(t *testing.T) {
	if os.Getenv("SWEEP_FULL") == "" {
		t.Skip("set SWEEP_FULL=1 to run the full -all golden sweep")
	}
	cells := Grid(experiments.Registry(), []int64{42})
	serial := Render(Run(cells, Options{Workers: 1}), false)
	parallel := Render(Run(cells, Options{Workers: 4}), false)
	if serial != parallel {
		t.Fatal("full parallel sweep output differs from serial")
	}
}

// Stream must emit Render's exact bytes regardless of push order, flushing
// each result as soon as its grid-order predecessors are all in.
func TestStreamMatchesRender(t *testing.T) {
	cells := Grid([]experiments.Experiment{fakeExp("a"), fakeExp("b"), fakeExp("c")}, []int64{1, 2})
	results := Run(cells, Options{Workers: 2})
	for _, showSeed := range []bool{false, true} {
		want := Render(results, showSeed)
		perm := rand.New(rand.NewSource(5)).Perm(len(results))
		var buf strings.Builder
		st := NewStream(&buf, showSeed)
		for _, i := range perm {
			before := buf.Len()
			st.Push(results[i])
			// Pushing index 0 must flush immediately; later pushes flush
			// exactly when they complete a grid-order prefix.
			if i == 0 && buf.Len() == before {
				t.Fatal("pushing the first grid cell emitted nothing")
			}
		}
		if st.Err() != nil {
			t.Fatalf("stream error: %v", st.Err())
		}
		if got := buf.String(); got != want {
			t.Fatalf("showSeed=%v: stream output diverges from Render:\n got %q\nwant %q", showSeed, got, want)
		}
	}
}

// A streaming sweep (Push from OnDone) produces Render's bytes too — the
// incremental path the qoeexp CLI uses.
func TestStreamFromOnDone(t *testing.T) {
	cells := Grid([]experiments.Experiment{fakeExp("x"), fakeExp("y")}, []int64{7, 8, 9})
	var buf strings.Builder
	st := NewStream(&buf, true)
	results := Run(cells, Options{Workers: 3, OnDone: st.Push})
	if got, want := buf.String(), Render(results, true); got != want {
		t.Fatalf("streamed sweep output diverges:\n got %q\nwant %q", got, want)
	}
}
