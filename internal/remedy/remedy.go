// Package remedy is the root-cause-aware QoE remediation engine: a
// deterministic controller that watches per-UE QoE signals sampled at
// control ticks, diagnoses the responsible layer from analyzer-style
// evidence (link-layer loss, handover activity, RRC churn versus a clean
// path), and emits typed Actions — switch a flow to an edge server/path,
// step the ABR ladder, retune RRC inactivity timers.
//
// The package is a pure decision engine: signals in, actions out. It never
// touches the simulation directly — internal/fleet adapts live UE state
// into Signals, runs Decide at kernel-safe control points, and actuates
// the returned Actions. Everything here is integer/float arithmetic over
// the inputs with no clocks, maps-in-iteration, or randomness, so the
// controller is byte-deterministic wherever its caller is.
package remedy

import (
	"fmt"
	"time"
)

// ActionKind enumerates the actuator catalog.
type ActionKind int

const (
	// ActionServerSwitch re-homes the UE's flows onto the edge replica
	// cluster: repoint DNS, flush the resolver cache, reset connection
	// pools, and resume in-flight streams over the shorter path.
	ActionServerSwitch ActionKind = iota
	// ActionABRStepDown moves the video player one rung down the ABR
	// ladder (lower bitrate), resuming the stream mid-playback.
	ActionABRStepDown
	// ActionABRStepUp moves one rung back up after a sustained healthy
	// streak.
	ActionABRStepUp
	// ActionRRCRetune scales the RRC demotion (inactivity) timers by
	// Action.Scale, trading idle energy for fewer promotion delays when
	// the state machine is thrashing.
	ActionRRCRetune
)

func (k ActionKind) String() string {
	switch k {
	case ActionServerSwitch:
		return "server-switch"
	case ActionABRStepDown:
		return "abr-step-down"
	case ActionABRStepUp:
		return "abr-step-up"
	case ActionRRCRetune:
		return "rrc-retune"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Layer is the diagnosed root-cause layer behind an action, mirroring the
// analyzer's attribution split.
type Layer int

const (
	LayerApp Layer = iota
	LayerRadio
	LayerTransport
	LayerServer
)

func (l Layer) String() string {
	switch l {
	case LayerApp:
		return "app"
	case LayerRadio:
		return "radio"
	case LayerTransport:
		return "transport"
	case LayerServer:
		return "server"
	}
	return fmt.Sprintf("Layer(%d)", int(l))
}

// Action is one typed remediation the controller wants applied to a UE.
type Action struct {
	UE   int
	Kind ActionKind
	// Scale parameterizes ActionRRCRetune (demotion-timer multiplier).
	Scale float64
	// Diagnosis is the layer the controller blames; Note is a short
	// human-readable evidence summary for reports.
	Diagnosis Layer
	Note      string
}

// Signal is one control-tick snapshot of a UE's live QoE state. Counter
// fields are cumulative since the start of the run; the controller keeps
// the previous snapshot per UE and works on deltas.
type Signal struct {
	UE int
	At time.Duration

	// Video player state.
	VideoActive  bool // a playback is in progress
	VideoStalled bool // currently rebuffering
	VideoStalls  int  // cumulative rebuffer stalls
	VideoRung    int  // current ABR ladder rung (0 = native quality)

	// Browser state.
	PageLoadAge  time.Duration // age of the in-flight page load (0 = none)
	LoadFailures int           // cumulative abandoned loads

	// Radio/transport evidence.
	RRCTransitions int     // cumulative RRC state changes
	RadioDrops     int     // cumulative link-layer (fault-chain) drops
	Handovers      int     // cumulative connected-mode handovers
	ServerSwitched bool    // already re-homed onto the edge cluster
	DemotionScale  float64 // current RRC demotion-timer scale (0 or 1 = untouched)
}

// Config tunes the controller. Zero values select the noted defaults.
type Config struct {
	Interval        time.Duration // control period (default 2s)
	Cooldown        time.Duration // min gap between actions on one UE (default 10s)
	MaxActionsPerUE int           // intervention budget per UE (default 4)
	// PageStallAfter marks a page load as stalled once it has been in
	// flight this long (default 6s).
	PageStallAfter time.Duration
	// RRCThrashPerTick: this many RRC transitions inside one control
	// interval reads as state-machine thrash (default 6).
	RRCThrashPerTick int
	// RetuneScale is the demotion-timer multiplier ActionRRCRetune applies
	// (default 2).
	RetuneScale float64
	// RecoverTicks healthy ticks in a row step the ABR ladder back up
	// (default 8).
	RecoverTicks int
	// MaxRung bounds how far down the ladder the controller will step
	// (default 2, the bottom rung of the standard 3-rung ladder).
	MaxRung int
	// Observe runs the full diagnosis pipeline but suppresses every
	// action — the no-op controller used to prove the control plane
	// itself is byte-invisible.
	Observe bool
	// Actuator gates (all enabled by default).
	DisableServerSwitch bool
	DisableABR          bool
	DisableRRCRetune    bool
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.MaxActionsPerUE <= 0 {
		c.MaxActionsPerUE = 4
	}
	if c.PageStallAfter <= 0 {
		c.PageStallAfter = 6 * time.Second
	}
	if c.RRCThrashPerTick <= 0 {
		c.RRCThrashPerTick = 6
	}
	if c.RetuneScale <= 0 {
		c.RetuneScale = 2
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 8
	}
	if c.MaxRung <= 0 {
		c.MaxRung = 2
	}
	return c
}

// Burn-rate fold windows (in control ticks): the controller alerts when
// the short window is mostly bad AND the long window shows sustained
// badness — the two-window SLO burn pattern, sized for a 2s tick.
const (
	burnShortTicks = 3
	burnLongTicks  = 15
)

// ueState is the controller's per-UE memory. States live in a flat slice
// indexed by UE so concurrent shards touching disjoint UEs never share a
// map header.
type ueState struct {
	prev     Signal
	havePrev bool
	// badRing is a ring buffer of per-tick badness bits (1 = tick was
	// bad) covering the long window; shortBad/longBad are running sums.
	badRing  [burnLongTicks]uint8
	ringPos  int
	ringLen  int
	healthy  int // consecutive healthy ticks
	actions  int
	lastAct  time.Duration
	acted    bool // any action issued yet (lastAct == 0 is ambiguous)
	retuned  bool
	switched bool
}

// Controller folds per-UE signals into remediation decisions. One
// controller serves a whole fleet; its state is a flat per-UE slice so
// shards may call Decide concurrently for disjoint UEs.
type Controller struct {
	cfg Config
	ues []ueState
}

// NewController builds a controller for numUEs devices.
func NewController(cfg Config, numUEs int) *Controller {
	return &Controller{cfg: cfg.withDefaults(), ues: make([]ueState, numUEs)}
}

// Config returns the resolved (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Decide folds one UE's control-tick signal and returns the action to
// apply, or nil. It must be called with monotonically non-decreasing
// Signal.At per UE; calls for distinct UEs may run concurrently.
func (c *Controller) Decide(sig Signal) *Action {
	if sig.UE < 0 || sig.UE >= len(c.ues) {
		return nil
	}
	st := &c.ues[sig.UE]
	prev, havePrev := st.prev, st.havePrev
	st.prev, st.havePrev = sig, true
	if !havePrev {
		return nil // first tick only establishes the baseline
	}

	// Tick badness: an ongoing rebuffer, a new stall since last tick, a
	// page load past the stall threshold, or a freshly failed load.
	bad := sig.VideoStalled ||
		sig.VideoStalls > prev.VideoStalls ||
		sig.PageLoadAge >= c.cfg.PageStallAfter ||
		sig.LoadFailures > prev.LoadFailures
	c.fold(st, bad)
	if bad {
		st.healthy = 0
	} else {
		st.healthy++
	}

	if c.cfg.Observe {
		return nil
	}
	if st.actions >= c.cfg.MaxActionsPerUE {
		return nil
	}
	if st.acted && sig.At-st.lastAct < c.cfg.Cooldown {
		return nil
	}

	// Recovery path: a sustained healthy streak steps the ladder back up.
	if !bad && st.healthy >= c.cfg.RecoverTicks && sig.VideoRung > 0 &&
		sig.VideoActive && !c.cfg.DisableABR {
		return c.issue(st, sig, Action{
			UE: sig.UE, Kind: ActionABRStepUp, Diagnosis: LayerApp,
			Note: fmt.Sprintf("healthy %d ticks at rung %d", st.healthy, sig.VideoRung),
		})
	}

	if !c.burning(st) {
		return nil
	}

	// Diagnose the responsible layer from the evidence deltas over the
	// short burn window's worth of history (prev tick vs now).
	dRRC := sig.RRCTransitions - prev.RRCTransitions
	dDrops := sig.RadioDrops - prev.RadioDrops
	dHO := sig.Handovers - prev.Handovers

	// RRC thrash: the state machine is churning hard while QoE burns —
	// promotions are eating the latency budget. Stretch the demotion
	// timers once.
	if dRRC >= c.cfg.RRCThrashPerTick && !st.retuned && !c.cfg.DisableRRCRetune &&
		(sig.DemotionScale == 0 || sig.DemotionScale == 1) {
		st.retuned = true
		return c.issue(st, sig, Action{
			UE: sig.UE, Kind: ActionRRCRetune, Scale: c.cfg.RetuneScale,
			Diagnosis: LayerRadio,
			Note:      fmt.Sprintf("%d RRC transitions in one tick", dRRC),
		})
	}

	// Link-layer loss or handover churn while the video burns: the radio
	// layer cannot carry the current bitrate — step the ladder down.
	if (dDrops > 0 || dHO > 0) && sig.VideoActive && !c.cfg.DisableABR &&
		sig.VideoRung < c.cfg.MaxRung {
		return c.issue(st, sig, Action{
			UE: sig.UE, Kind: ActionABRStepDown, Diagnosis: LayerRadio,
			Note: fmt.Sprintf("%d radio drops, %d handovers this tick", dDrops, dHO),
		})
	}

	// No radio evidence but QoE still burning: blame the server/path and
	// re-home onto the edge replicas (once).
	if !sig.ServerSwitched && !st.switched && !c.cfg.DisableServerSwitch {
		st.switched = true
		return c.issue(st, sig, Action{
			UE: sig.UE, Kind: ActionServerSwitch, Diagnosis: LayerServer,
			Note: "sustained stall with clean radio",
		})
	}

	// Already on the edge and still burning: the bottleneck must be the
	// shared air interface even without loss evidence (a throttled or
	// contended cell serves bytes too slowly without dropping them) —
	// step the ladder down as the last resort.
	if sig.VideoActive && !c.cfg.DisableABR && sig.VideoRung < c.cfg.MaxRung {
		return c.issue(st, sig, Action{
			UE: sig.UE, Kind: ActionABRStepDown, Diagnosis: LayerTransport,
			Note: "burning after server switch; stepping ladder",
		})
	}
	return nil
}

// issue charges the per-UE budget and stamps the cooldown clock.
func (c *Controller) issue(st *ueState, sig Signal, a Action) *Action {
	st.actions++
	st.lastAct = sig.At
	st.acted = true
	return &a
}

// fold pushes one badness bit into the two burn windows.
func (c *Controller) fold(st *ueState, bad bool) {
	var bit uint8
	if bad {
		bit = 1
	}
	st.badRing[st.ringPos] = bit
	st.ringPos = (st.ringPos + 1) % burnLongTicks
	if st.ringLen < burnLongTicks {
		st.ringLen++
	}
}

// burning reports whether both burn windows are alight: at least 2 of the
// last 3 ticks bad (fast burn) and at least a quarter of the long window
// bad (sustained burn).
func (c *Controller) burning(st *ueState) bool {
	if st.ringLen < burnShortTicks {
		return false
	}
	short, long := 0, 0
	for i := 0; i < st.ringLen; i++ {
		idx := (st.ringPos - 1 - i + 2*burnLongTicks) % burnLongTicks
		v := int(st.badRing[idx])
		if i < burnShortTicks {
			short += v
		}
		long += v
	}
	return short >= 2 && long*4 >= st.ringLen
}
