package remedy

import (
	"testing"
	"time"
)

const tick = 2 * time.Second

// feed pushes n signals derived from base (with At advanced per tick),
// mutating via fn before each Decide, and returns the actions issued.
func feed(c *Controller, n int, start time.Duration, fn func(i int) Signal) []Action {
	var out []Action
	for i := 0; i < n; i++ {
		sig := fn(i)
		sig.At = start + time.Duration(i)*tick
		if a := c.Decide(sig); a != nil {
			out = append(out, *a)
		}
	}
	return out
}

func TestFirstTickEstablishesBaseline(t *testing.T) {
	c := NewController(Config{}, 1)
	if a := c.Decide(Signal{UE: 0, At: tick, VideoStalled: true, VideoActive: true}); a != nil {
		t.Fatalf("first tick must not act, got %v", a.Kind)
	}
}

func TestObserveNeverActs(t *testing.T) {
	c := NewController(Config{Observe: true}, 1)
	acts := feed(c, 20, tick, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoStalled: true, RadioDrops: i * 5}
	})
	if len(acts) != 0 {
		t.Fatalf("observe mode issued %d actions", len(acts))
	}
}

func TestRadioEvidenceStepsLadderDown(t *testing.T) {
	c := NewController(Config{}, 1)
	acts := feed(c, 6, tick, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoStalled: true, RadioDrops: i * 3}
	})
	if len(acts) != 1 {
		t.Fatalf("want 1 action, got %d", len(acts))
	}
	if acts[0].Kind != ActionABRStepDown || acts[0].Diagnosis != LayerRadio {
		t.Fatalf("want radio-diagnosed ABR step down, got %v/%v", acts[0].Kind, acts[0].Diagnosis)
	}
}

func TestCleanRadioSwitchesServer(t *testing.T) {
	c := NewController(Config{}, 1)
	acts := feed(c, 6, tick, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoStalled: true}
	})
	if len(acts) != 1 || acts[0].Kind != ActionServerSwitch || acts[0].Diagnosis != LayerServer {
		t.Fatalf("want server switch on clean radio, got %v", acts)
	}
}

func TestPageStallSwitchesServer(t *testing.T) {
	c := NewController(Config{}, 1)
	acts := feed(c, 6, tick, func(i int) Signal {
		return Signal{UE: 0, PageLoadAge: 10 * time.Second}
	})
	if len(acts) != 1 || acts[0].Kind != ActionServerSwitch {
		t.Fatalf("want server switch on page stall, got %v", acts)
	}
}

func TestRRCThrashRetunesOnce(t *testing.T) {
	c := NewController(Config{Cooldown: time.Millisecond}, 1)
	acts := feed(c, 12, tick, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoStalled: true, RRCTransitions: i * 10}
	})
	if len(acts) == 0 || acts[0].Kind != ActionRRCRetune {
		t.Fatalf("want RRC retune first, got %v", acts)
	}
	if acts[0].Scale != 2 {
		t.Fatalf("want default retune scale 2, got %v", acts[0].Scale)
	}
	for _, a := range acts[1:] {
		if a.Kind == ActionRRCRetune {
			t.Fatalf("RRC retune issued twice")
		}
	}
}

func TestCooldownAndBudget(t *testing.T) {
	c := NewController(Config{Cooldown: 10 * time.Second, MaxActionsPerUE: 2}, 1)
	acts := feed(c, 60, tick, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoStalled: true, RadioDrops: i, ServerSwitched: true}
	})
	if len(acts) != 2 {
		t.Fatalf("budget 2: got %d actions", len(acts))
	}
	if gap := acts[1].UE; gap != 0 {
		t.Fatalf("unexpected UE %d", gap)
	}
}

func TestHealthyStreakStepsBackUp(t *testing.T) {
	c := NewController(Config{Cooldown: time.Millisecond, RecoverTicks: 4, MaxActionsPerUE: 10}, 1)
	// Burn first so the ladder is down one rung.
	feed(c, 6, tick, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoStalled: true, RadioDrops: i * 2}
	})
	// Then a clean streak at rung 1.
	acts := feed(c, 8, 100*time.Second, func(i int) Signal {
		return Signal{UE: 0, VideoActive: true, VideoRung: 1}
	})
	found := false
	for _, a := range acts {
		if a.Kind == ActionABRStepUp {
			found = true
		}
	}
	if !found {
		t.Fatalf("healthy streak never stepped ladder up: %v", acts)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Action {
		c := NewController(Config{Cooldown: 4 * time.Second}, 3)
		var out []Action
		for i := 0; i < 40; i++ {
			for ue := 0; ue < 3; ue++ {
				sig := Signal{
					UE: ue, At: time.Duration(i+1) * tick,
					VideoActive:  true,
					VideoStalled: (i+ue)%3 != 0,
					RadioDrops:   i * (ue + 1),
					VideoRung:    0,
				}
				if a := c.Decide(sig); a != nil {
					out = append(out, *a)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay divergence: %d vs %d actions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatalf("scenario produced no actions")
	}
}
