package qoemon

import (
	"encoding/json"
	"net/http"
)

// Mount registers the monitoring endpoints on mux:
//
//	GET /slo     → {"window_ns":..., "slos":[Status...]}        every series
//	GET /alerts  → {"window_ns":..., "alerts":[Status...]}      active only
//	GET /attrib  → [AttribEntry...]                             layer shares
//
// Every response is recomputed from the store on each request (the monitor
// is stateless), so the bodies are byte-identical for identical store
// contents — the property qoewatch and the determinism tests rely on.
func (m *Monitor) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		ev := m.Evaluate()
		writeJSON(w, map[string]any{
			"window_ns": ev.Window,
			"slos":      ev.Statuses,
		})
	})
	mux.HandleFunc("GET /alerts", func(w http.ResponseWriter, r *http.Request) {
		ev := m.Evaluate()
		alerts := ev.Alerts
		if state := r.URL.Query().Get("state"); state != "" {
			filtered := make([]Status, 0, len(alerts))
			for _, a := range alerts {
				if a.State.String() == state {
					filtered = append(filtered, a)
				}
			}
			alerts = filtered
		}
		writeJSON(w, map[string]any{
			"window_ns": ev.Window,
			"alerts":    alerts,
		})
	})
	mux.HandleFunc("GET /attrib", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.AttribSummary())
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
