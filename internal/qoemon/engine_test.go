package qoemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/qoestore"
)

func openStore(t *testing.T, dir string, window time.Duration) *qoestore.Store {
	t.Helper()
	s, err := qoestore.Open(dir, qoestore.Config{Window: window, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fastPairs is a test ladder scaled to minute windows: page when burn ≥ 10
// over 1m+3m, warn at ≥ 2 over 3m+6m.
func fastPairs() []BurnPair {
	return []BurnPair{
		{Short: time.Minute, Long: 3 * time.Minute, Rate: 10, Sev: SevPage},
		{Short: 3 * time.Minute, Long: 6 * time.Minute, Rate: 2, Sev: SevWarn},
	}
}

func testSLO(pairs []BurnPair) SLO {
	return SLO{Name: "rebuff", Metric: "rebuffer_ratio", Quantile: 0.95, Threshold: 0.02, Pairs: pairs}
}

// ingestWindows writes count events of the given value into each listed
// window index (minute windows).
var ingestSerial int

func ingestWindows(t *testing.T, s *qoestore.Store, cell string, value float64, count int, windows ...int64) {
	t.Helper()
	var evs []qoestore.Event
	for _, w := range windows {
		for i := 0; i < count; i++ {
			evs = append(evs, qoestore.Event{
				At:   time.Duration(w)*time.Minute + time.Duration(i+1)*time.Second,
				Cell: cell, Workload: "yt", Metric: "rebuffer_ratio", Value: value,
			})
		}
	}
	// Each call is its own emitter source: emitters restart sequence
	// numbers at 1, and the store's per-source dedup would otherwise drop
	// every batch after the first.
	ingestSerial++
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: fmt.Sprintf("test-%s-%d", cell, ingestSerial)})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		em.Emit(ev)
	}
	em.Close()
}

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("rebuffer_ratio p95 < 0.02")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Metric != "rebuffer_ratio" || slo.Quantile != 0.95 || slo.Threshold != 0.02 {
		t.Fatalf("parsed %+v", slo)
	}
	if slo.Name != "rebuffer_ratio_p95" {
		t.Fatalf("default name %q", slo.Name)
	}
	if math.Abs(slo.Budget()-0.05) > 1e-12 {
		t.Fatalf("budget %v", slo.Budget())
	}

	named, err := ParseSLO("slow_pages: pageload_s p99.9<8")
	if err != nil {
		t.Fatal(err)
	}
	if named.Name != "slow_pages" || named.Metric != "pageload_s" ||
		math.Abs(named.Quantile-0.999) > 1e-12 || named.Threshold != 8 {
		t.Fatalf("parsed %+v", named)
	}

	for _, bad := range []string{
		"", "rebuffer_ratio", "rebuffer_ratio p95", "rebuffer_ratio q95 < 1",
		"rebuffer_ratio p0 < 1", "rebuffer_ratio p100 < 1", "m p95 < x",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

// TestBurnRateStateMachine drives one series through ok → page → ok and
// checks the transitions, the hysteresis, and the final burn readings.
func TestBurnRateStateMachine(t *testing.T) {
	s := openStore(t, t.TempDir(), time.Minute)
	defer s.Close()
	// Windows 0..5 healthy, 6..8 fully bad, 9..12 healthy again.
	ingestWindows(t, s, "cellA", 0.001, 10, 0, 1, 2, 3, 4, 5)
	ingestWindows(t, s, "cellA", 0.50, 10, 6, 7, 8)
	ingestWindows(t, s, "cellA", 0.001, 10, 9, 10, 11, 12)

	m, err := New(s, Config{SLOs: []SLO{testSLO(fastPairs())}, ClearAfter: 2, BaselineMinHistory: 100})
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Evaluate()
	if len(ev.Statuses) != 1 {
		t.Fatalf("statuses = %+v", ev.Statuses)
	}
	st := ev.Statuses[0]
	// Timeline: window 6 is all-bad → short burn 1/0.05 = 20 ≥ 10 and long
	// burn (windows 4..6: 1/3 bad) ≈ 6.7 < 10 — but the warn pair (3m+6m)
	// fires first as bad mass accumulates; window 7 pushes the page pair
	// over on both sides. The exact ladder matters less than the shape:
	// up to page while bad, back down after ≥2 calm windows.
	var states []string
	for _, tr := range st.Transitions {
		states = append(states, tr.From.String()+">"+tr.To.String())
	}
	if st.State != SevOK {
		t.Fatalf("final state %v after recovery, transitions %v", st.State, states)
	}
	joined := strings.Join(states, " ")
	if !strings.Contains(joined, ">page") {
		t.Fatalf("never paged: %v", joined)
	}
	if st.Transitions[len(st.Transitions)-1].To != SevOK {
		t.Fatalf("last transition %v", st.Transitions)
	}
	// Hysteresis: the step-down happens no earlier than 2 calm windows
	// after the last bad one (window 8), i.e. at window ≥ 10.
	down := st.Transitions[len(st.Transitions)-1]
	if down.Index < 10 {
		t.Fatalf("stepped down at window %d, before hysteresis elapsed", down.Index)
	}
	// Latest window readings are present for both pairs.
	if len(st.Burns) != 2 || st.Burns[0].Firing || st.Burns[1].Firing {
		t.Fatalf("latest burns = %+v", st.Burns)
	}
}

// TestPageEntersImmediately: a single fully-bad window trips a one-window
// ladder with no warm-up — step-up has no hysteresis.
func TestPageEntersImmediately(t *testing.T) {
	s := openStore(t, t.TempDir(), time.Minute)
	defer s.Close()
	ingestWindows(t, s, "cellA", 0.5, 5, 0)
	pairs := []BurnPair{{Short: time.Minute, Long: time.Minute, Rate: 14.4, Sev: SevPage}}
	m, err := New(s, Config{SLOs: []SLO{testSLO(pairs)}, BaselineMinHistory: 100})
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Evaluate()
	if len(ev.Alerts) != 1 || ev.Alerts[0].State != SevPage {
		t.Fatalf("alerts = %+v", ev.Alerts)
	}
	if ev.Alerts[0].SinceIndex != 0 {
		t.Fatalf("page since window %d, want 0", ev.Alerts[0].SinceIndex)
	}
}

// TestBaselineRegressionWarns: burn pairs that cannot fire, a flat history,
// then a 10× regression in the latest window — the MAD check alone must
// raise warn.
func TestBaselineRegressionWarns(t *testing.T) {
	s := openStore(t, t.TempDir(), time.Minute)
	defer s.Close()
	for w := int64(0); w < 8; w++ {
		ingestWindows(t, s, "cellA", 0.004+float64(w%2)*0.0005, 5, w)
	}
	ingestWindows(t, s, "cellA", 0.015, 5, 8) // regressed but below SLO threshold
	// Threshold 0.02: nothing is ever "bad", so burn rates stay 0.
	m, err := New(s, Config{SLOs: []SLO{testSLO(fastPairs())}, BaselineMinHistory: 4})
	if err != nil {
		t.Fatal(err)
	}
	ev := m.Evaluate()
	if len(ev.Alerts) != 1 || ev.Alerts[0].State != SevWarn {
		t.Fatalf("alerts = %+v", ev.Alerts)
	}
	base := ev.Alerts[0].Baseline
	if !base.Regressed || base.Current <= base.Limit || base.History < 4 {
		t.Fatalf("baseline = %+v", base)
	}
}

// TestEvaluateDeterministicAcrossRestart: the full evaluation (and the
// HTTP bodies built from it) must be byte-identical after a store restart
// replays the WAL.
func TestEvaluateDeterministicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, time.Minute)
	ingestWindows(t, s, "cellA", 0.001, 10, 0, 1, 2)
	ingestWindows(t, s, "cellA", 0.5, 10, 3, 4)
	ingestWindows(t, s, "cellB", 0.002, 4, 0, 1, 2, 3, 4)

	cfg := Config{SLOs: []SLO{testSLO(fastPairs())}, BaselineMinHistory: 100}
	bodies := func(st *qoestore.Store) map[string]string {
		m, err := New(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		m.Mount(mux)
		out := map[string]string{}
		for _, path := range []string{"/slo", "/alerts", "/attrib"} {
			rr := httptest.NewRecorder()
			mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
			if rr.Code != 200 {
				t.Fatalf("%s = %d", path, rr.Code)
			}
			out[path] = rr.Body.String()
		}
		return out
	}

	first := bodies(s)
	again := bodies(s)
	for path := range first {
		if first[path] != again[path] {
			t.Fatalf("%s differs between evaluations on the same store", path)
		}
	}
	s.Close()

	replayed := openStore(t, dir, time.Minute)
	defer replayed.Close()
	after := bodies(replayed)
	for path := range first {
		if first[path] != after[path] {
			t.Fatalf("%s differs after WAL replay:\nbefore: %s\nafter:  %s", path, first[path], after[path])
		}
	}
}

// TestMountAlertFilter: /alerts?state=page filters, and alert JSON decodes
// back into Status (qoewatch's consumption path).
func TestMountAlertFilter(t *testing.T) {
	s := openStore(t, t.TempDir(), time.Minute)
	defer s.Close()
	ingestWindows(t, s, "cellA", 0.5, 5, 0)
	pairs := []BurnPair{{Short: time.Minute, Long: time.Minute, Rate: 14.4, Sev: SevPage}}
	m, err := New(s, Config{SLOs: []SLO{testSLO(pairs)}, BaselineMinHistory: 100})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	m.Mount(mux)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/alerts?state=page", nil))
	var resp struct {
		Alerts []Status `json:"alerts"`
	}
	if err := json.NewDecoder(bytes.NewReader(rr.Body.Bytes())).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Alerts) != 1 || resp.Alerts[0].State != SevPage || resp.Alerts[0].SLO != "rebuff" {
		t.Fatalf("filtered alerts = %+v", resp.Alerts)
	}
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/alerts?state=warn", nil))
	if err := json.NewDecoder(bytes.NewReader(rr.Body.Bytes())).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Alerts) != 0 {
		t.Fatalf("warn filter returned %+v", resp.Alerts)
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	s := openStore(t, t.TempDir(), time.Minute)
	defer s.Close()
	if _, err := New(nil, Config{SLOs: []SLO{testSLO(nil)}}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(s, Config{}); err == nil {
		t.Fatal("empty SLO set accepted")
	}
	dup := []SLO{testSLO(nil), testSLO(nil)}
	if _, err := New(s, Config{SLOs: dup}); err == nil {
		t.Fatal("duplicate SLO names accepted")
	}
	bad := testSLO(nil)
	bad.Quantile = 1.5
	if _, err := New(s, Config{SLOs: []SLO{bad}}); err == nil {
		t.Fatal("quantile 1.5 accepted")
	}
}

func TestMedianAndBaseline(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Fatalf("median(nil) = %v", m)
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	// Below min history: never regresses.
	st := baseline([]float64{1, 2}, 100, 5, 6)
	if st.Regressed {
		t.Fatalf("regressed with %d history", st.History)
	}
	// Flat nonzero history: 20%% headroom.
	st = baseline([]float64{1, 1, 1, 1, 1, 1}, 1.1, 5, 6)
	if st.Regressed {
		t.Fatalf("+10%% over flat history regressed: %+v", st)
	}
	st = baseline([]float64{1, 1, 1, 1, 1, 1}, 1.3, 5, 6)
	if !st.Regressed {
		t.Fatalf("+30%% over flat history did not regress: %+v", st)
	}
	// All-zero history: any increase regresses.
	st = baseline([]float64{0, 0, 0, 0, 0, 0}, 0.01, 5, 6)
	if !st.Regressed {
		t.Fatalf("nonzero over zero history did not regress: %+v", st)
	}
}
