// Package qoemon is the continuous-monitoring layer over qoestore: a
// deterministic SLO/burn-rate engine with multi-window alerting, baseline
// regression detection, and per-alert cross-layer attribution.
//
// QoE Doctor diagnoses one session after the fact; qoemon turns the same
// analysis into an always-on service objective. An SLO declares a bound on
// a QoE metric's distribution ("rebuffer_ratio p95 < 0.02"), evaluated per
// (cell, workload, cohort) series against the store's retained windows.
// Alerting follows the SRE multi-window burn-rate recipe: a fast pair
// (5m/1h at 14.4× budget burn) pages, a slow pair (6h/3d at 1×) warns, and
// an explicit hysteresis fold keeps flapping series from paging twice.
//
// Everything is a pure function of store contents: evaluation folds over
// SeriesCounts (sorted keys, ascending windows, virtual timestamps), so
// the same seed and event stream produce byte-identical /slo, /alerts and
// /attrib responses across reruns and across restarts (the WAL replay
// rebuilds identical windows).
package qoemon

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Severity is an alert level: ok < warn < page.
type Severity int

// Severity levels in escalation order.
const (
	SevOK Severity = iota
	SevWarn
	SevPage
)

func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevPage:
		return "page"
	default:
		return "ok"
	}
}

// MarshalJSON renders the severity as its string name so API payloads read
// "page", not 2.
func (s Severity) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON accepts the string names (qoewatch round-trips alerts).
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "ok":
		*s = SevOK
	case "warn":
		*s = SevWarn
	case "page":
		*s = SevPage
	default:
		return fmt.Errorf("qoemon: unknown severity %s", b)
	}
	return nil
}

// BurnPair is one multi-window burn-rate rule: fire at the given severity
// when the error-budget burn rate exceeds Rate over BOTH the short and the
// long window. The long window keeps one bad blip from firing; the short
// window makes the alert reset quickly once the problem stops.
type BurnPair struct {
	Short time.Duration `json:"short_ns"`
	Long  time.Duration `json:"long_ns"`
	Rate  float64       `json:"rate"`
	Sev   Severity      `json:"severity"`
}

// DefaultPairs is the standard SRE fast/slow ladder: 14.4× burn over 5m+1h
// pages (budget gone in ~2 days), 1× over 6h+3d warns (budget on track to
// exhaust exactly at the 3d horizon).
func DefaultPairs() []BurnPair {
	return []BurnPair{
		{Short: 5 * time.Minute, Long: time.Hour, Rate: 14.4, Sev: SevPage},
		{Short: 6 * time.Hour, Long: 72 * time.Hour, Rate: 1, Sev: SevWarn},
	}
}

// SLO is one declarative objective: "Quantile of Metric stays below
// Threshold", evaluated independently per (cell, workload, cohort) series.
// An observation above Threshold spends error budget; the budget fraction
// is 1-Quantile.
type SLO struct {
	// Name labels alerts; defaults to "<metric>_p<quantile>" in ParseSLO.
	Name string `json:"name"`
	// Metric is the qoestore metric the objective binds (e.g.
	// "rebuffer_ratio").
	Metric string `json:"metric"`
	// Quantile is the objective quantile in (0,1), e.g. 0.95 for p95.
	Quantile float64 `json:"quantile"`
	// Threshold bounds the quantile: metric pQ < Threshold.
	Threshold float64 `json:"threshold"`
	// Pairs overrides the burn-rate ladder; nil means DefaultPairs.
	Pairs []BurnPair `json:"pairs,omitempty"`
}

// Budget is the error-budget fraction: the share of observations allowed
// above Threshold while still meeting the objective.
func (s SLO) Budget() float64 { return 1 - s.Quantile }

func (s SLO) pairs() []BurnPair {
	if len(s.Pairs) > 0 {
		return s.Pairs
	}
	return DefaultPairs()
}

func (s SLO) validate() error {
	if s.Metric == "" {
		return fmt.Errorf("qoemon: SLO %q has no metric", s.Name)
	}
	if s.Quantile <= 0 || s.Quantile >= 1 {
		return fmt.Errorf("qoemon: SLO %q quantile %g outside (0,1)", s.Name, s.Quantile)
	}
	for _, p := range s.pairs() {
		if p.Short <= 0 || p.Long < p.Short || p.Rate <= 0 {
			return fmt.Errorf("qoemon: SLO %q has a malformed burn pair %+v", s.Name, p)
		}
	}
	return nil
}

// ParseSLO parses the declarative one-line form used by qoeserve's -slo
// flag:
//
//	[name:] <metric> p<quantile> < <threshold>
//
// e.g. "rebuffer_ratio p95 < 0.02" or "slow_pages: pageload_s p99 < 8".
// The quantile may be fractional ("p99.9"). Whitespace is free-form.
func ParseSLO(spec string) (SLO, error) {
	var slo SLO
	s := strings.TrimSpace(spec)
	if i := strings.Index(s, ":"); i >= 0 {
		slo.Name = strings.TrimSpace(s[:i])
		s = s[i+1:]
	}
	fields := strings.Fields(s)
	// Tolerate "p95<0.02" glued forms by re-splitting on '<'.
	joined := strings.Join(fields, " ")
	parts := strings.SplitN(joined, "<", 2)
	if len(parts) != 2 {
		return slo, fmt.Errorf("qoemon: SLO %q: want \"<metric> p<q> < <threshold>\"", spec)
	}
	left := strings.Fields(strings.TrimSpace(parts[0]))
	if len(left) != 2 || !strings.HasPrefix(left[1], "p") {
		return slo, fmt.Errorf("qoemon: SLO %q: want \"<metric> p<q> < <threshold>\"", spec)
	}
	slo.Metric = left[0]
	pct, err := strconv.ParseFloat(left[1][1:], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return slo, fmt.Errorf("qoemon: SLO %q: bad quantile %q", spec, left[1])
	}
	slo.Quantile = pct / 100
	slo.Threshold, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return slo, fmt.Errorf("qoemon: SLO %q: bad threshold %q", spec, parts[1])
	}
	if slo.Name == "" {
		slo.Name = fmt.Sprintf("%s_p%s", slo.Metric,
			strconv.FormatFloat(pct, 'f', -1, 64))
	}
	return slo, slo.validate()
}
