package qoemon

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/qoestore"
)

// seedSeries ingests `keys` distinct series (unique cells) with `windows`
// aggregation windows each, directly via Store.Ingest — one event per
// (series, window) keeps the fixture cheap at 10k keys.
func seedSeries(tb testing.TB, s *qoestore.Store, keys, windows int) {
	tb.Helper()
	const batch = 4096
	evs := make([]qoestore.Event, 0, batch)
	seq := uint64(0)
	flush := func() {
		if len(evs) == 0 {
			return
		}
		if _, err := s.Ingest(evs); err != nil {
			tb.Fatal(err)
		}
		evs = evs[:0]
	}
	for k := 0; k < keys; k++ {
		for w := 0; w < windows; w++ {
			seq++
			evs = append(evs, qoestore.Event{
				Source: "bench", Seq: seq,
				At:       time.Duration(w)*time.Minute + time.Second,
				Cell:     fmt.Sprintf("cell-%05d", k),
				Workload: "youtube", Metric: "rebuffer_ratio",
				// Alternate good/bad series so the state machine does real work.
				Value: float64(k%2) * 0.5,
			})
			if len(evs) == batch {
				flush()
			}
		}
	}
	flush()
}

func benchMonitor(tb testing.TB, s *qoestore.Store) *Monitor {
	tb.Helper()
	m, err := New(s, Config{SLOs: []SLO{testSLO(fastPairs())}})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// BenchmarkEvaluate10kSeries: one full deterministic evaluation pass over
// 10k SLO series keys with 8 retained windows each.
func BenchmarkEvaluate10kSeries(b *testing.B) {
	s := openBenchStore(b)
	defer s.Close()
	seedSeries(b, s, 10_000, 8)
	m := benchMonitor(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := m.Evaluate()
		if len(ev.Statuses) != 10_000 {
			b.Fatalf("evaluated %d series, want 10000", len(ev.Statuses))
		}
	}
	b.StopTimer()
	b.ReportMetric(10_000*float64(b.N)/b.Elapsed().Seconds(), "series/s")
}

// BenchmarkPrometheusEncode: the /metricz?format=prometheus encode cost for
// a registry shaped like a live qoeserve (counters, gauges, histograms).
func BenchmarkPrometheusEncode(b *testing.B) {
	reg := benchRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Snapshot().WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func openBenchStore(tb testing.TB) *qoestore.Store {
	tb.Helper()
	s, err := qoestore.Open(tb.TempDir(), qoestore.Config{Window: time.Minute, NoSync: true, Retain: 16})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// benchRegistry builds a registry of ~300 instruments — the shape of a
// collector serving a mid-size fleet.
func benchRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	for i := 0; i < 100; i++ {
		reg.Counter(fmt.Sprintf("bench_counter_%03d", i)).Add(i * 7)
		reg.Gauge(fmt.Sprintf("bench_gauge_%03d", i)).Set(float64(i) * 1.5)
		h := reg.Histogram(fmt.Sprintf("bench_hist_%03d", i), 0.01, 0.1, 1, 10)
		for j := 0; j < 16; j++ {
			h.Observe(float64(j) * 0.9)
		}
	}
	return reg
}

// TestWriteBenchPR7JSON measures the monitoring hot paths — a full SLO
// evaluation over 10k series keys and the Prometheus text encode of a
// ~300-instrument registry — and writes the record to the file named by
// BENCH_PR7_JSON (skipped when unset; `make bench-qoemon` sets it). It
// fails if evaluation cannot sustain 100k series/s or one Prometheus
// encode exceeds 10ms: the monitor shares a process with ingest, so a
// slow evaluation pass would stall the collector it watches.
func TestWriteBenchPR7JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR7_JSON")
	if out == "" {
		t.Skip("BENCH_PR7_JSON not set")
	}

	const keys, windows = 10_000, 8
	s := openBenchStore(t)
	defer s.Close()
	seedSeries(t, s, keys, windows)
	m := benchMonitor(t, s)

	// Best-of-3 full passes discards warm-up noise.
	var evalBest time.Duration
	var statuses int
	for round := 0; round < 3; round++ {
		start := time.Now()
		ev := m.Evaluate()
		el := time.Since(start)
		statuses = len(ev.Statuses)
		if round == 0 || el < evalBest {
			evalBest = el
		}
	}
	if statuses != keys {
		t.Fatalf("evaluated %d series, want %d", statuses, keys)
	}
	seriesPerS := float64(keys) / evalBest.Seconds()

	reg := benchRegistry()
	var encBest time.Duration
	var encBytes int
	for round := 0; round < 5; round++ {
		var n countWriter
		start := time.Now()
		if err := reg.Snapshot().WritePrometheus(&n); err != nil {
			t.Fatal(err)
		}
		el := time.Since(start)
		encBytes = n.n
		if round == 0 || el < encBest {
			encBest = el
		}
	}

	doc := struct {
		Workload    string  `json:"workload"`
		SeriesKeys  int     `json:"series_keys"`
		Windows     int     `json:"windows_per_series"`
		EvalMs      float64 `json:"eval_ms"`
		SeriesPerS  float64 `json:"series_per_sec"`
		PromEncUs   float64 `json:"prometheus_encode_us"`
		PromEncByte int     `json:"prometheus_encode_bytes"`
	}{
		Workload:   fmt.Sprintf("%d series x %d windows full SLO evaluation; Prometheus encode of a %d-instrument registry", keys, windows, 300),
		SeriesKeys: keys, Windows: windows,
		EvalMs:      float64(evalBest.Microseconds()) / 1e3,
		SeriesPerS:  seriesPerS,
		PromEncUs:   float64(encBest.Nanoseconds()) / 1e3,
		PromEncByte: encBytes,
	}

	if seriesPerS < 100_000 {
		t.Errorf("evaluation = %.0f series/s, floor is 100k", seriesPerS)
	}
	if encBest > 10*time.Millisecond {
		t.Errorf("prometheus encode = %v, budget is 10ms", encBest)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: eval %.1fms (%.0f series/s), prometheus encode %.0fus / %d bytes",
		out, doc.EvalMs, seriesPerS, doc.PromEncUs, encBytes)
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
