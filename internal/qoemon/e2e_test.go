package qoemon_test

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/apps/youtube"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/qoemon"
	"repro/internal/qoestore"
)

// lossyScenario is the acceptance scenario: one clean UE and one UE behind
// a Gilbert–Elliott burst-loss channel, both streaming video in the same
// cell. The lossy UE's cohort separates its series so the clean cohort
// proves the negative (no alert without the fault).
func lossyScenario() fleet.Scenario {
	ge := faults.GEForMeanLoss(0.12, 8)
	ues := fleet.UniformUEs(2)
	ues[1].Cohort = "lossy"
	ues[1].Faults = &faults.Plan{GE: &ge}
	// A stalled stream is abandoned after 20s so the watch completes and
	// its (terrible) rebuffer ratio reaches the report — matching a real
	// user giving up on a dead video.
	for i := range ues {
		ues[i].YouTube = youtube.Config{StallTimeout: 20 * time.Second}
	}
	return fleet.Scenario{
		Seed:     42,
		UEs:      ues,
		Workload: fleet.YouTubeWorkload{Videos: 2},
	}
}

// runPipeline executes the scenario, streams the report into a fresh store
// at dir, and returns the store (caller closes).
func runPipeline(t *testing.T, dir string) *qoestore.Store {
	t.Helper()
	f, err := fleet.Build(lossyScenario(), fleet.WithHorizon(150*time.Second), fleet.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(300 * time.Second)
	f.CloseObs()
	report := f.Report()

	s, err := qoestore.Open(dir, qoestore.Config{Window: 30 * time.Second, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "fleet"})
	if err != nil {
		t.Fatal(err)
	}
	if n := fleet.EmitReport(em, f, report); n == 0 {
		t.Fatal("fleet emitted no events")
	}
	em.Close()
	return s
}

func monitorFor(t *testing.T, s *qoestore.Store) *qoemon.Monitor {
	t.Helper()
	slo, err := qoemon.ParseSLO("rebuffer_ratio p95 < 0.02")
	if err != nil {
		t.Fatal(err)
	}
	m, err := qoemon.New(s, qoemon.Config{SLOs: []qoemon.SLO{slo}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGELossFiresRebufferAlertWithRadioAttribution is the acceptance
// criterion end to end: the burst-loss cohort's rebuffer_ratio SLO fires,
// the alert carries a cross-layer breakdown, and that breakdown names the
// radio layer — the fault chain models link-layer loss, and its drop
// instants inside the QoE windows are what pin the stalls on radio rather
// than transport.
func TestGELossFiresRebufferAlertWithRadioAttribution(t *testing.T) {
	s := runPipeline(t, t.TempDir())
	defer s.Close()
	ev := monitorFor(t, s).Evaluate()

	var lossy, clean *qoemon.Status
	for i := range ev.Statuses {
		st := &ev.Statuses[i]
		if st.Key.Cohort == "lossy" {
			lossy = st
		} else {
			clean = st
		}
	}
	if lossy == nil {
		t.Fatalf("no lossy-cohort series evaluated: %+v", ev.Statuses)
	}
	if lossy.State != qoemon.SevPage {
		t.Fatalf("lossy cohort state = %v, want page; status %+v", lossy.State, lossy)
	}
	if clean != nil && clean.State != qoemon.SevOK {
		t.Fatalf("clean cohort state = %v, want ok; status %+v", clean.State, clean)
	}
	if lossy.Attribution == nil {
		t.Fatal("page alert carries no attribution")
	}
	if lossy.Attribution.Top != "radio" {
		t.Fatalf("attribution names %q, want radio: %+v", lossy.Attribution.Top, lossy.Attribution)
	}
	if lossy.Attribution.Incidents == 0 {
		t.Fatalf("attribution built from no incidents: %+v", lossy.Attribution)
	}
}

// TestPipelineDeterministicAcrossRerunsAndRestart: the /alerts and /attrib
// bodies must be byte-identical for (a) two independent simulations of the
// same seed into two fresh stores and (b) the same store after a close and
// WAL-replay reopen.
func TestPipelineDeterministicAcrossRerunsAndRestart(t *testing.T) {
	read := func(s *qoestore.Store) (string, string) {
		mux := http.NewServeMux()
		monitorFor(t, s).Mount(mux)
		get := func(path string) string {
			rr := httptest.NewRecorder()
			mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
			if rr.Code != 200 {
				t.Fatalf("%s = %d", path, rr.Code)
			}
			return rr.Body.String()
		}
		return get("/alerts"), get("/attrib")
	}

	dirA := t.TempDir()
	sA := runPipeline(t, dirA)
	alertsA, attribA := read(sA)

	sB := runPipeline(t, t.TempDir())
	defer sB.Close()
	alertsB, attribB := read(sB)
	if alertsA != alertsB {
		t.Fatalf("/alerts differs between identical reruns:\nA: %s\nB: %s", alertsA, alertsB)
	}
	if attribA != attribB {
		t.Fatalf("/attrib differs between identical reruns:\nA: %s\nB: %s", attribA, attribB)
	}

	sA.Close()
	sA2, err := qoestore.Open(dirA, qoestore.Config{Window: 30 * time.Second, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sA2.Close()
	alertsR, attribR := read(sA2)
	if alertsA != alertsR {
		t.Fatalf("/alerts differs after restart + WAL replay:\nbefore: %s\nafter:  %s", alertsA, alertsR)
	}
	if attribA != attribR {
		t.Fatalf("/attrib differs after restart + WAL replay:\nbefore: %s\nafter:  %s", attribA, attribR)
	}
}
