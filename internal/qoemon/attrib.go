package qoemon

import "sort"

// layerMetrics are the attribution share streams fleet.EmitReport produces:
// four events per QoE incident, each carrying one layer's share of the
// incident's latency.
var layerMetrics = [4]struct{ layer, metric string }{
	{"app", "attrib_app_share"},
	{"radio", "attrib_radio_share"},
	{"transport", "attrib_transport_share"},
	{"server", "attrib_server_share"},
}

// Breakdown is the cross-layer diagnosis attached to an alert: the mean
// share of incident latency each layer owned across the retained history
// of the alert's (cell, workload, cohort) series.
type Breakdown struct {
	App       float64 `json:"app"`
	Radio     float64 `json:"radio"`
	Transport float64 `json:"transport"`
	Server    float64 `json:"server"`
	// Incidents counts the attributed QoE incidents behind the means.
	Incidents uint64 `json:"incidents"`
	// Top names the dominant layer (ties break radio > transport > server
	// > app — actionable-first, matching analyzer.Attribution.Top).
	Top string `json:"top"`
}

func (b *Breakdown) share(layer string) *float64 {
	switch layer {
	case "app":
		return &b.App
	case "radio":
		return &b.Radio
	case "transport":
		return &b.Transport
	default:
		return &b.Server
	}
}

func (b *Breakdown) resolveTop() {
	top, best := "app", b.App
	for _, c := range []struct {
		name  string
		share float64
	}{{"server", b.Server}, {"transport", b.Transport}, {"radio", b.Radio}} {
		if c.share >= best {
			top, best = c.name, c.share
		}
	}
	b.Top = top
}

// cwc is the attribution join key: a series identity minus the metric.
type cwc struct{ cell, workload, cohort string }

// attribIndex aggregates the four attribution streams into one Breakdown
// per (cell, workload, cohort). Deterministic: built from SeriesCounts
// (sorted, stable) with no map-order dependence in the output values.
func (m *Monitor) attribIndex() map[cwc]*Breakdown {
	idx := make(map[cwc]*Breakdown)
	type acc struct{ sum, count float64 }
	sums := make(map[cwc]map[string]acc)
	for _, lm := range layerMetrics {
		for _, ser := range m.store.SeriesCounts(lm.metric, 1) {
			k := cwc{ser.Key.Cell, ser.Key.Workload, ser.Key.Cohort}
			if sums[k] == nil {
				sums[k] = make(map[string]acc)
			}
			a := sums[k][lm.layer]
			for _, w := range ser.Windows {
				a.sum += w.Sum
				a.count += float64(w.Count)
			}
			sums[k][lm.layer] = a
		}
	}
	for k, layers := range sums {
		bd := &Breakdown{}
		for _, lm := range layerMetrics {
			a := layers[lm.layer]
			if a.count > 0 {
				*bd.share(lm.layer) = a.sum / a.count
				if uint64(a.count) > bd.Incidents {
					bd.Incidents = uint64(a.count)
				}
			}
		}
		bd.resolveTop()
		idx[k] = bd
	}
	return idx
}

// AttribEntry is one row of the /attrib feed.
type AttribEntry struct {
	Cell      string    `json:"cell"`
	Workload  string    `json:"workload"`
	Cohort    string    `json:"cohort,omitempty"`
	Breakdown Breakdown `json:"breakdown"`
}

// AttribSummary returns the per-series layer breakdowns, sorted by
// (cell, workload, cohort) — the /attrib endpoint body.
func (m *Monitor) AttribSummary() []AttribEntry {
	idx := m.attribIndex()
	keys := make([]cwc, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sortCWC(keys)
	out := make([]AttribEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, AttribEntry{Cell: k.cell, Workload: k.workload, Cohort: k.cohort, Breakdown: *idx[k]})
	}
	return out
}

func sortCWC(keys []cwc) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.cell != b.cell {
			return a.cell < b.cell
		}
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		return a.cohort < b.cohort
	})
}
