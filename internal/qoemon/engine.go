package qoemon

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/qoestore"
)

// Config tunes the monitor.
type Config struct {
	// SLOs are the objectives to evaluate; at least one is required.
	SLOs []SLO
	// ClearAfter is the hysteresis: how many consecutive windows must
	// evaluate below the current state before the alert steps down
	// (default 2). Step-up is always immediate — paging late is worse than
	// paging twice.
	ClearAfter int
	// BaselineK scales the MAD band of the regression check (default 5).
	BaselineK float64
	// BaselineMinHistory gates the regression check until this many prior
	// windows exist (default 6).
	BaselineMinHistory int
	// Metrics receives evaluation counters and active-alert gauges.
	Metrics *obs.Registry
	// Log receives one structured record per evaluation; nil disables.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.ClearAfter <= 0 {
		c.ClearAfter = 2
	}
	if c.BaselineK <= 0 {
		c.BaselineK = 5
	}
	if c.BaselineMinHistory <= 0 {
		c.BaselineMinHistory = 6
	}
	return c
}

// Monitor evaluates a set of SLOs against a store. It holds no evaluation
// state: every Evaluate is a pure fold over the store's retained windows,
// which is what makes alerting deterministic — the alert history is
// recomputed from the same windows every time, so a restart (WAL replay)
// or a rerun of the same simulation answers byte-identically.
type Monitor struct {
	store *qoestore.Store
	cfg   Config

	// Atomic because Evaluate runs concurrently under the HTTP handlers;
	// exposed through the registry as lazy funcs.
	cEvals atomic.Uint64
	gPage  atomic.Int64
	gWarn  atomic.Int64
}

// New validates the SLO set and builds a monitor over store.
func New(store *qoestore.Store, cfg Config) (*Monitor, error) {
	if store == nil {
		return nil, fmt.Errorf("qoemon: nil store")
	}
	if len(cfg.SLOs) == 0 {
		return nil, fmt.Errorf("qoemon: no SLOs configured")
	}
	seen := map[string]bool{}
	for _, s := range cfg.SLOs {
		if err := s.validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("qoemon: duplicate SLO name %q", s.Name)
		}
		seen[s.Name] = true
	}
	m := &Monitor{store: store, cfg: cfg.withDefaults()}
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("qoemon_evaluations", m.cEvals.Load)
		reg.GaugeFunc("qoemon_active_page", func() float64 { return float64(m.gPage.Load()) })
		reg.GaugeFunc("qoemon_active_warn", func() float64 { return float64(m.gWarn.Load()) })
	}
	return m, nil
}

// SLOs returns the configured objectives (for /slo and qoewatch).
func (m *Monitor) SLOs() []SLO { return m.cfg.SLOs }

// BurnStatus is one burn pair's reading at a series' latest window.
type BurnStatus struct {
	Pair   BurnPair `json:"pair"`
	Short  float64  `json:"short_burn"`
	Long   float64  `json:"long_burn"`
	Firing bool     `json:"firing"`
}

// Transition is one alert state change, stamped in window index and
// virtual time.
type Transition struct {
	Index int64         `json:"window"`
	At    time.Duration `json:"at_ns"`
	From  Severity      `json:"from"`
	To    Severity      `json:"to"`
}

// Status is one (SLO, series) evaluation: the current alert state, when it
// was entered, the latest burn readings, the baseline check, the full
// transition history, and — for active alerts — the cross-layer
// attribution naming the responsible layer.
type Status struct {
	SLO string       `json:"slo"`
	Key qoestore.Key `json:"key"`

	State      Severity      `json:"state"`
	SinceIndex int64         `json:"since_window"`
	Since      time.Duration `json:"since_ns"`

	LatestIndex int64         `json:"latest_window"`
	Latest      time.Duration `json:"latest_ns"`

	Burns       []BurnStatus   `json:"burns"`
	Baseline    BaselineStatus `json:"baseline"`
	Transitions []Transition   `json:"transitions,omitempty"`
	Attribution *Breakdown     `json:"attribution,omitempty"`
}

// Evaluation is one full monitor pass: every (SLO, series) status plus the
// active-alert subset. Field order and slice order are deterministic.
type Evaluation struct {
	Window   time.Duration `json:"window_ns"`
	Statuses []Status      `json:"slos"`
	Alerts   []Status      `json:"alerts"`
}

// Evaluate runs every SLO against the store's current windows.
func (m *Monitor) Evaluate() Evaluation {
	win := m.store.WindowDur()
	ev := Evaluation{Window: win, Statuses: []Status{}, Alerts: []Status{}}
	attribs := m.attribIndex()
	for _, slo := range m.cfg.SLOs {
		for _, ser := range m.store.SeriesCounts(slo.Metric, slo.Threshold) {
			st := m.evalSeries(slo, ser, win)
			if st.State > SevOK {
				st.Attribution = attribs[cwc{ser.Key.Cell, ser.Key.Workload, ser.Key.Cohort}]
				ev.Alerts = append(ev.Alerts, st)
			}
			ev.Statuses = append(ev.Statuses, st)
		}
	}
	m.cEvals.Add(1)
	pages, warns := 0, 0
	for _, a := range ev.Alerts {
		if a.State == SevPage {
			pages++
		} else {
			warns++
		}
	}
	m.gPage.Store(int64(pages))
	m.gWarn.Store(int64(warns))
	if m.cfg.Log != nil {
		m.cfg.Log.Info("evaluate", "slos", len(m.cfg.SLOs),
			"series", len(ev.Statuses), "alerts", len(ev.Alerts),
			"page", pages, "warn", warns)
	}
	return ev
}

// winCount converts a burn window duration to a span of store windows.
func winCount(d, win time.Duration) int64 {
	n := int64((d + win - 1) / win)
	if n < 1 {
		n = 1
	}
	return n
}

// evalSeries folds the alert state machine over one series' windows.
// Burn rates use prefix sums over the (possibly sparse) retained windows;
// a gap with no observations simply contributes nothing to either side of
// the ratio.
func (m *Monitor) evalSeries(slo SLO, ser qoestore.Series, win time.Duration) Status {
	ws := ser.Windows
	n := len(ws)
	st := Status{SLO: slo.Name, Key: ser.Key}
	if n == 0 {
		return st
	}
	cumC := make([]float64, n+1)
	cumB := make([]float64, n+1)
	for i, w := range ws {
		cumC[i+1] = cumC[i] + float64(w.Count)
		cumB[i+1] = cumB[i] + w.Bad
	}
	budget := slo.Budget()
	// burnOver: error-budget burn over the span windows ending at position
	// p — bad fraction divided by budget.
	burnOver := func(p int, span int64) float64 {
		lo := ws[p].Index - span // include windows with Index > lo
		first := sort.Search(p+1, func(i int) bool { return ws[i].Index > lo })
		c := cumC[p+1] - cumC[first]
		if c == 0 {
			return 0
		}
		return (cumB[p+1] - cumB[first]) / c / budget
	}

	pairs := slo.pairs()
	state, calm := SevOK, 0
	sinceIdx := ws[0].Index
	means := make([]float64, 0, n)
	for p := 0; p < n; p++ {
		target := SevOK
		last := p == n-1
		for _, pair := range pairs {
			sb := burnOver(p, winCount(pair.Short, win))
			lb := burnOver(p, winCount(pair.Long, win))
			firing := sb >= pair.Rate && lb >= pair.Rate
			if firing && pair.Sev > target {
				target = pair.Sev
			}
			if last {
				st.Burns = append(st.Burns, BurnStatus{Pair: pair, Short: sb, Long: lb, Firing: firing})
			}
		}
		mean := ws[p].Sum / float64(ws[p].Count)
		base := baseline(means, mean, m.cfg.BaselineK, m.cfg.BaselineMinHistory)
		means = append(means, mean)
		if base.Regressed && target < SevWarn {
			target = SevWarn
		}
		if last {
			st.Baseline = base
		}

		switch {
		case target > state:
			// Step up immediately.
			st.Transitions = append(st.Transitions, Transition{
				Index: ws[p].Index, At: time.Duration(ws[p].Index) * win, From: state, To: target})
			state, sinceIdx, calm = target, ws[p].Index, 0
		case target < state:
			// Step down only after ClearAfter consecutive calmer windows.
			calm++
			if calm >= m.cfg.ClearAfter {
				st.Transitions = append(st.Transitions, Transition{
					Index: ws[p].Index, At: time.Duration(ws[p].Index) * win, From: state, To: target})
				state, sinceIdx, calm = target, ws[p].Index, 0
			}
		default:
			calm = 0
		}
	}
	st.State = state
	st.SinceIndex = sinceIdx
	st.Since = time.Duration(sinceIdx) * win
	st.LatestIndex = ws[n-1].Index
	st.Latest = time.Duration(ws[n-1].Index) * win
	return st
}
