package qoemon

import "sort"

// BaselineStatus reports the regression check for one series at its latest
// window: the current window mean against the median of the historical
// window means, with a MAD (median absolute deviation) band. Median/MAD is
// the robust pair — one past outage in the history shifts a mean-and-stddev
// baseline, but barely moves the median.
type BaselineStatus struct {
	Current   float64 `json:"current"`   // latest window mean
	Median    float64 `json:"median"`    // median of historical window means
	MAD       float64 `json:"mad"`       // median absolute deviation
	Limit     float64 `json:"limit"`     // regression threshold: median + K·MAD
	History   int     `json:"history"`   // historical windows considered
	Regressed bool    `json:"regressed"` // current above the limit
}

func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// baseline evaluates the regression check: history is the ordered list of
// prior window means, current the latest window's mean. k scales the MAD
// band; minHist gates the check until enough history exists (a two-window
// history proves nothing). When MAD is zero (a perfectly flat history) any
// increase beyond the median itself regresses only if it exceeds the
// median by the relative floor — a flat-zero history plus any nonzero
// current is the canonical new-regression shape and must fire.
func baseline(history []float64, current float64, k float64, minHist int) BaselineStatus {
	st := BaselineStatus{Current: current, History: len(history)}
	if len(history) < minHist {
		return st
	}
	st.Median = median(history)
	devs := make([]float64, len(history))
	for i, x := range history {
		d := x - st.Median
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	st.MAD = median(devs)
	band := k * st.MAD
	if band == 0 {
		// Flat history: allow 20% headroom over the median (or any increase
		// at all over an all-zero history).
		band = 0.2 * st.Median
	}
	st.Limit = st.Median + band
	st.Regressed = current > st.Limit
	return st
}
