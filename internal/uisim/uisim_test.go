package uisim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func newScreen(k *simtime.Kernel) (*Screen, *View) {
	root := NewView(ClassView, "root", "")
	return NewScreen(k, root), root
}

func TestViewTreeBasics(t *testing.T) {
	k := simtime.NewKernel(1)
	_, root := newScreen(k)
	list := NewView(ClassListView, "feed", "news feed")
	root.AddChild(list)
	a := NewView(ClassTextView, "item", "")
	b := NewView(ClassTextView, "item", "")
	list.AddChild(a)
	list.PrependChild(b)
	if list.Children()[0] != b || list.Children()[1] != a {
		t.Fatal("PrependChild order wrong")
	}
	if root.Count() != 4 {
		t.Fatalf("Count = %d, want 4", root.Count())
	}
	list.RemoveChild(a)
	if root.Count() != 3 || a.Parent() != nil {
		t.Fatal("RemoveChild failed")
	}
	list.ClearChildren()
	if len(list.Children()) != 0 || b.Parent() != nil {
		t.Fatal("ClearChildren failed")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	k := simtime.NewKernel(1)
	_, root := newScreen(k)
	v := NewView(ClassTextView, "x", "")
	root.AddChild(v)
	defer func() {
		if recover() == nil {
			t.Fatal("attaching an attached view did not panic")
		}
	}()
	root.AddChild(v)
}

func TestSignatureMatching(t *testing.T) {
	v := NewView(ClassButton, "com.facebook:id/post", "post button")
	cases := []struct {
		sig  Signature
		want bool
	}{
		{Signature{Class: ClassButton}, true},
		{Signature{ID: "com.facebook:id/post"}, true},
		{Signature{Desc: "post button"}, true},
		{Signature{Class: ClassButton, ID: "com.facebook:id/post", Desc: "post button"}, true},
		{Signature{}, true},
		{Signature{Class: ClassTextView}, false},
		{Signature{ID: "other"}, false},
	}
	for i, c := range cases {
		if got := v.Matches(c.sig); got != c.want {
			t.Errorf("case %d: Matches(%v) = %v", i, c.sig, got)
		}
	}
}

func TestFindDFSOrder(t *testing.T) {
	k := simtime.NewKernel(1)
	_, root := newScreen(k)
	first := NewView(ClassTextView, "dup", "")
	second := NewView(ClassTextView, "dup", "")
	root.AddChild(first)
	root.AddChild(second)
	if got := root.Find(Signature{ID: "dup"}); got != first {
		t.Fatal("Find did not return first DFS match")
	}
	if all := root.FindAll(Signature{ID: "dup"}); len(all) != 2 {
		t.Fatalf("FindAll found %d, want 2", len(all))
	}
	if root.Find(Signature{ID: "absent"}) != nil {
		t.Fatal("Find invented a view")
	}
}

func TestShownRespectsAncestors(t *testing.T) {
	k := simtime.NewKernel(1)
	_, root := newScreen(k)
	panel := NewView(ClassView, "panel", "")
	label := NewView(ClassTextView, "label", "")
	root.AddChild(panel)
	panel.AddChild(label)
	if !label.Shown() {
		t.Fatal("visible chain not shown")
	}
	panel.SetVisible(false)
	if label.Shown() {
		t.Fatal("child shown under hidden ancestor")
	}
	if !label.Visible() {
		t.Fatal("own visibility should be untouched")
	}
}

func TestDrawHappensAfterMutation(t *testing.T) {
	k := simtime.NewKernel(1)
	s, root := newScreen(k)
	bar := NewView(ClassProgressBar, "bar", "")
	bar.SetVisible(false)
	root.AddChild(bar)
	k.RunUntil(100 * time.Millisecond)

	var screenAt simtime.Time = -1
	s.WatchScreen(func(r *View) bool {
		b := r.Find(Signature{ID: "bar"})
		return b != nil && b.Shown()
	}, func(at simtime.Time) { screenAt = at })

	mutateAt := k.Now()
	bar.SetVisible(true)
	k.RunUntil(time.Second)
	if screenAt < 0 {
		t.Fatal("screen never showed the change")
	}
	lag := time.Duration(screenAt - mutateAt)
	if lag <= 0 || lag > 2*FramePeriod+12*time.Millisecond {
		t.Fatalf("draw lag = %v, want within ~2 frames", lag)
	}
	if s.DrawnVersion() != s.Version() {
		t.Fatal("drawn version lagging after draw")
	}
}

func TestBatchedMutationsOneDraw(t *testing.T) {
	k := simtime.NewKernel(2)
	s, root := newScreen(k)
	draws := 0
	s.OnDraw(func(simtime.Time) { draws++ })
	for i := 0; i < 10; i++ {
		root.AddChild(NewView(ClassTextView, "t", ""))
	}
	k.Run()
	if draws != 1 {
		t.Fatalf("draws = %d, want 1 for a burst of mutations", draws)
	}
}

func TestWatchScreenAlreadyTrue(t *testing.T) {
	k := simtime.NewKernel(1)
	s, root := newScreen(k)
	root.AddChild(NewView(ClassButton, "b", ""))
	k.Run()
	fired := false
	s.WatchScreen(func(r *View) bool { return r.Find(Signature{ID: "b"}) != nil },
		func(simtime.Time) { fired = true })
	if !fired {
		t.Fatal("watcher on already-true condition did not fire immediately")
	}
}

func TestSnapshotReflectsParseStartState(t *testing.T) {
	k := simtime.NewKernel(1)
	s, root := newScreen(k)
	label := NewView(ClassTextView, "label", "")
	label.SetText("before")
	root.AddChild(label)
	in := NewInstrumentation(k, s)
	var got string
	in.Parse(func(snap *Snapshot) { got = snap.Find(Signature{ID: "label"}).Text })
	// Mutate after the parse begins but before it completes.
	label.SetText("after")
	k.Run()
	if got != "before" {
		t.Fatalf("snapshot text = %q, want state at parse start", got)
	}
}

func TestWaitUntilObservesChange(t *testing.T) {
	k := simtime.NewKernel(3)
	s, root := newScreen(k)
	bar := NewView(ClassProgressBar, "bar", "")
	root.AddChild(bar)
	in := NewInstrumentation(k, s)

	var hideAt simtime.Time
	k.After(500*time.Millisecond, func() {
		hideAt = k.Now()
		bar.SetVisible(false)
	})
	var res WaitResult
	in.WaitUntil(func(sn *Snapshot) bool { return !sn.VisibleMatch(Signature{ID: "bar"}) },
		5*time.Second, func(r WaitResult) { res = r })
	k.Run()
	if !res.Observed {
		t.Fatal("change not observed")
	}
	tm := time.Duration(res.At - hideAt)
	// t_m - t_ui = t_offset + t_parsing, bounded by 2 parse times.
	if tm <= 0 || tm > 2*in.ParseTime()+time.Millisecond {
		t.Fatalf("measurement delay = %v, want within 2 parse times (%v)", tm, in.ParseTime())
	}
	if res.Parses < 100 { // ~500ms / ~2.2ms parse
		t.Fatalf("parses = %d, expected continuous polling", res.Parses)
	}
}

func TestWaitUntilTimeout(t *testing.T) {
	k := simtime.NewKernel(4)
	s, _ := newScreen(k)
	in := NewInstrumentation(k, s)
	var res WaitResult
	in.WaitUntil(func(*Snapshot) bool { return false }, 200*time.Millisecond,
		func(r WaitResult) { res = r })
	k.Run()
	if res.Observed {
		t.Fatal("observed impossible condition")
	}
	if res.At < 200*time.Millisecond {
		t.Fatalf("gave up at %v, before the timeout", res.At)
	}
}

func TestConcurrentWaitPanics(t *testing.T) {
	k := simtime.NewKernel(5)
	s, _ := newScreen(k)
	in := NewInstrumentation(k, s)
	in.WaitUntil(func(*Snapshot) bool { return false }, time.Second, func(WaitResult) {})
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent WaitUntil did not panic")
		}
	}()
	in.WaitUntil(func(*Snapshot) bool { return false }, time.Second, func(WaitResult) {})
}

func TestClickDispatch(t *testing.T) {
	k := simtime.NewKernel(6)
	s, root := newScreen(k)
	btn := NewView(ClassButton, "post", "post button")
	clickedAt := simtime.Time(-1)
	btn.OnClick = func() { clickedAt = k.Now() }
	root.AddChild(btn)
	in := NewInstrumentation(k, s)
	start, err := in.Click(Signature{ID: "post"})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if clickedAt < start {
		t.Fatal("click arrived before injection")
	}
	if clickedAt-start > 5*time.Millisecond {
		t.Fatalf("input latency %v too large", clickedAt-start)
	}
}

func TestClickErrors(t *testing.T) {
	k := simtime.NewKernel(7)
	s, root := newScreen(k)
	in := NewInstrumentation(k, s)
	if _, err := in.Click(Signature{ID: "missing"}); err == nil {
		t.Fatal("click on missing view succeeded")
	}
	label := NewView(ClassTextView, "label", "")
	root.AddChild(label)
	if _, err := in.Click(Signature{ID: "label"}); err == nil {
		t.Fatal("click on non-clickable view succeeded")
	}
	hidden := NewView(ClassButton, "hidden", "")
	hidden.OnClick = func() {}
	hidden.SetVisible(false)
	root.AddChild(hidden)
	if _, err := in.Click(Signature{ID: "hidden"}); err == nil {
		t.Fatal("click on hidden view succeeded")
	}
}

func TestScrollAndTextAndEnter(t *testing.T) {
	k := simtime.NewKernel(8)
	s, root := newScreen(k)
	list := NewView(ClassListView, "feed", "")
	gotDy := 0
	list.OnScroll = func(dy int) { gotDy = dy }
	url := NewView(ClassEditText, "url", "")
	entered := false
	url.OnEnter = func() { entered = true }
	root.AddChild(list)
	root.AddChild(url)
	in := NewInstrumentation(k, s)
	if _, err := in.Scroll(Signature{ID: "feed"}, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := in.EnterText(Signature{ID: "url"}, "http://example.com"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.PressEnter(Signature{ID: "url"}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if gotDy != 300 || url.Text() != "http://example.com" || !entered {
		t.Fatalf("dispatch failed: dy=%d text=%q entered=%v", gotDy, url.Text(), entered)
	}
}

func TestParseCostGrowsWithTree(t *testing.T) {
	k := simtime.NewKernel(9)
	s, root := newScreen(k)
	in := NewInstrumentation(k, s)
	small := in.ParseTime()
	for i := 0; i < 200; i++ {
		root.AddChild(NewView(ClassTextView, "t", ""))
	}
	if in.ParseTime() <= small {
		t.Fatal("parse time did not grow with tree size")
	}
}

func TestParseCPUAccumulates(t *testing.T) {
	k := simtime.NewKernel(10)
	s, _ := newScreen(k)
	in := NewInstrumentation(k, s)
	in.WaitUntil(func(*Snapshot) bool { return false }, 100*time.Millisecond, func(WaitResult) {})
	k.Run()
	// Polling spans ~100ms of wall time; the CPU share is cpuFraction of it.
	if got := in.ParseCPU(); got < 3*time.Millisecond || got > 10*time.Millisecond {
		t.Fatalf("ParseCPU = %v, want ~5%% of the 100ms polling window", got)
	}
}

func TestWatchScreenFiresOnlyOnce(t *testing.T) {
	k := simtime.NewKernel(11)
	s, root := newScreen(k)
	bar := NewView(ClassProgressBar, "bar", "")
	bar.SetVisible(false)
	root.AddChild(bar)
	k.Run()
	fired := 0
	s.WatchScreen(func(r *View) bool {
		v := r.Find(Signature{ID: "bar"})
		return v != nil && v.Shown()
	}, func(simtime.Time) { fired++ })
	// Toggle visibility repeatedly: the one-shot watcher fires once.
	for i := 0; i < 3; i++ {
		bar.SetVisible(true)
		k.Run()
		bar.SetVisible(false)
		k.Run()
	}
	if fired != 1 {
		t.Fatalf("watcher fired %d times, want 1", fired)
	}
}

func TestDetachedMutationNoDraw(t *testing.T) {
	k := simtime.NewKernel(12)
	s, _ := newScreen(k)
	draws := 0
	s.OnDraw(func(simtime.Time) { draws++ })
	orphan := NewView(ClassTextView, "orphan", "")
	orphan.SetText("mutating while detached")
	orphan.SetVisible(false)
	k.Run()
	if draws != 0 {
		t.Fatalf("detached mutation caused %d draws", draws)
	}
}

func TestPollIntervalSpacesPolls(t *testing.T) {
	k := simtime.NewKernel(13)
	s, _ := newScreen(k)
	in := NewInstrumentation(k, s)
	in.SetPollInterval(100 * time.Millisecond)
	var res WaitResult
	in.WaitUntil(func(*Snapshot) bool { return false }, time.Second,
		func(r WaitResult) { res = r })
	k.Run()
	// ~1s window at 100ms cadence: about 10-11 polls, far fewer than the
	// hundreds continuous polling would make.
	if res.Parses < 8 || res.Parses > 13 {
		t.Fatalf("parses = %d with 100ms interval over 1s", res.Parses)
	}
}

func TestEnterTextOnHiddenViewFails(t *testing.T) {
	k := simtime.NewKernel(14)
	s, root := newScreen(k)
	box := NewView(ClassEditText, "box", "")
	box.SetVisible(false)
	root.AddChild(box)
	in := NewInstrumentation(k, s)
	if _, err := in.EnterText(Signature{ID: "box"}, "x"); err == nil {
		t.Fatal("typed into a hidden view")
	}
	if _, err := in.Scroll(Signature{ID: "box"}, 10); err == nil {
		t.Fatal("scrolled a hidden, non-scrollable view")
	}
	if _, err := in.PressEnter(Signature{ID: "box"}); err == nil {
		t.Fatal("pressed enter on a hidden view")
	}
}
