package uisim

import (
	"fmt"
	"time"

	"repro/internal/simtime"
)

// Snapshot is a parsed copy of the layout tree: what the UI controller sees
// after one parsing pass. It reflects the tree state at the moment the parse
// started.
type Snapshot struct {
	At    simtime.Time // parse completion time
	Views []SnapView
}

// SnapView is one flattened view in a snapshot.
type SnapView struct {
	Class, ID, Desc, Text string
	Shown                 bool
}

// Find returns the first snapshot view matching sig, or nil.
func (s *Snapshot) Find(sig Signature) *SnapView {
	for i := range s.Views {
		v := &s.Views[i]
		if (sig.Class == "" || v.Class == sig.Class) &&
			(sig.ID == "" || v.ID == sig.ID) &&
			(sig.Desc == "" || v.Desc == sig.Desc) {
			return v
		}
	}
	return nil
}

// VisibleMatch reports whether some view matching sig is shown.
func (s *Snapshot) VisibleMatch(sig Signature) bool {
	for i := range s.Views {
		v := &s.Views[i]
		if v.Shown &&
			(sig.Class == "" || v.Class == sig.Class) &&
			(sig.ID == "" || v.ID == sig.ID) &&
			(sig.Desc == "" || v.Desc == sig.Desc) {
			return true
		}
	}
	return false
}

// VisibleTextMatch reports whether some shown view matching sig has text
// containing substr.
func (s *Snapshot) VisibleTextMatch(sig Signature, substr string) bool {
	for i := range s.Views {
		v := &s.Views[i]
		if v.Shown &&
			(sig.Class == "" || v.Class == sig.Class) &&
			(sig.ID == "" || v.ID == sig.ID) &&
			(sig.Desc == "" || v.Desc == sig.Desc) &&
			contains(v.Text, substr) {
			return true
		}
	}
	return false
}

// ContainsText reports whether any shown view's text contains substr.
func (s *Snapshot) ContainsText(substr string) bool {
	for i := range s.Views {
		v := &s.Views[i]
		if v.Shown && len(substr) > 0 && contains(v.Text, substr) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Instrumentation is the simulation's InstrumentationTestCase: it shares the
// app's process, injects input events, and parses the layout tree. Parsing
// costs CPU time proportional to the tree size; that cost is both modeled in
// virtual time (it delays observations — the t_parsing of Fig. 4) and
// accumulated for the CPU-overhead measurement of Table 3.
type Instrumentation struct {
	k      *simtime.Kernel
	screen *Screen

	// Parse cost model: base + perView * treeSize.
	parseBase    time.Duration
	parsePerView time.Duration
	inputLatency time.Duration

	// cpuFraction is the share of a parse pass's wall time that is real
	// CPU work; the rest is spent waiting on the UI thread to hand over
	// the tree. It feeds the Table 3 CPU-overhead accounting.
	cpuFraction float64

	// pollInterval, when larger than the parse time, spaces WaitUntil
	// polls apart instead of parsing back-to-back. The paper's controller
	// parses continuously; long simulated playbacks use a coarser cadence
	// to bound event counts (documented in EXPERIMENTS.md).
	pollInterval time.Duration

	parseCPU time.Duration
	polling  bool

	// Snapshot recycling: parses are frequent (a WaitUntil polls back to
	// back) and each flattens the whole tree, so snapshots and their Views
	// backing arrays are reused instead of reallocated. visitFn is the one
	// walk visitor, allocated once, appending into visitTarget.
	snapFree    []*Snapshot
	visitTarget *Snapshot
	visitFn     func(*View)
}

// NewInstrumentation attaches an instrumentation to a screen.
func NewInstrumentation(k *simtime.Kernel, screen *Screen) *Instrumentation {
	in := &Instrumentation{
		k:            k,
		screen:       screen,
		parseBase:    2 * time.Millisecond,
		parsePerView: 60 * time.Microsecond,
		inputLatency: 2 * time.Millisecond,
		cpuFraction:  0.05,
	}
	in.visitFn = func(v *View) {
		t := in.visitTarget
		t.Views = append(t.Views, SnapView{
			Class: v.Class, ID: v.ID, Desc: v.Desc, Text: v.text, Shown: v.Shown(),
		})
	}
	return in
}

// Screen returns the instrumented screen.
func (in *Instrumentation) Screen() *Screen { return in.screen }

// ParseCPU returns cumulative CPU time spent parsing the tree.
func (in *Instrumentation) ParseCPU() time.Duration { return in.parseCPU }

// ParseTime returns the current cost of one layout-tree parse.
func (in *Instrumentation) ParseTime() time.Duration {
	return in.parseBase + time.Duration(in.screen.Root().Count())*in.parsePerView
}

// snapshotNow flattens the live tree (state as of now) into a pooled
// snapshot. The caller must hand the snapshot back via releaseSnap once its
// consumer is done with it.
func (in *Instrumentation) snapshotNow() *Snapshot {
	var snap *Snapshot
	if n := len(in.snapFree); n > 0 {
		snap = in.snapFree[n-1]
		in.snapFree[n-1] = nil
		in.snapFree = in.snapFree[:n-1]
		snap.At = 0
		snap.Views = snap.Views[:0]
	} else {
		snap = &Snapshot{}
	}
	in.visitTarget = snap
	in.screen.Root().walk(in.visitFn)
	in.visitTarget = nil
	return snap
}

// releaseSnap returns a snapshot (and its Views capacity) to the pool.
func (in *Instrumentation) releaseSnap(s *Snapshot) {
	in.snapFree = append(in.snapFree, s)
}

// noteAction allocates a correlation ID for a user input, makes it the
// current trace scope (so every layer's events during this action share the
// ID), and arms the screen's input-to-draw attribution.
func (in *Instrumentation) noteAction(name string) {
	tr := in.screen.tr
	if tr == nil {
		return
	}
	id := tr.NewID()
	tr.SetScope(id)
	in.screen.noteInput(name, id)
}

// Parse performs one parsing pass: the result reflects the tree at call
// time and becomes available one ParseTime later, when cb is invoked. The
// snapshot is recycled when cb returns — read what you need inside the
// callback; do not retain the *Snapshot (or subslices of its Views) beyond
// it.
func (in *Instrumentation) Parse(cb func(*Snapshot)) {
	in.screen.parses.Inc()
	snap := in.snapshotNow()
	cost := in.ParseTime()
	in.parseCPU += time.Duration(float64(cost) * in.cpuFraction)
	in.k.After(cost, func() {
		snap.At = in.k.Now()
		cb(snap)
		in.releaseSnap(snap)
	})
}

// WaitResult reports how a WaitUntil ended.
type WaitResult struct {
	Observed bool         // condition became true before the timeout
	At       simtime.Time // parse-completion time of the observing parse (t_m)
	Parses   int          // number of parsing passes performed
}

// WaitUntil polls the layout tree back-to-back (each poll costs one
// ParseTime) until cond holds on a snapshot or the timeout expires. This is
// the wait component of the see-interact-wait paradigm; the returned At is
// the raw measured timestamp t_m = t_ui + t_offset + t_parsing, which the
// analyzer later calibrates by subtracting 3/2 t_parsing.
func (in *Instrumentation) WaitUntil(cond func(*Snapshot) bool, timeout time.Duration, done func(WaitResult)) {
	if in.polling {
		panic("uisim: concurrent WaitUntil on one instrumentation")
	}
	in.polling = true
	deadline := in.k.Now() + timeout
	parses := 0
	var start simtime.Time
	var poll func()
	// One parse callback for the whole wait (instead of a fresh closure per
	// poll): polls are the hottest allocation site in long waits.
	onParse := func(s *Snapshot) {
		if cond(s) {
			in.polling = false
			done(WaitResult{Observed: true, At: s.At, Parses: parses})
			return
		}
		if in.k.Now() >= deadline {
			in.polling = false
			done(WaitResult{Observed: false, At: s.At, Parses: parses})
			return
		}
		if next := start + in.pollInterval; next > in.k.Now() {
			in.k.At(next, poll)
			return
		}
		poll()
	}
	poll = func() {
		parses++
		start = in.k.Now()
		in.Parse(onParse)
	}
	poll()
}

// SetPollInterval spaces WaitUntil polls at least d apart (zero restores
// continuous back-to-back parsing).
func (in *Instrumentation) SetPollInterval(d time.Duration) { in.pollInterval = d }

// Click finds the view matching sig and dispatches a click to it after the
// input-injection latency. It returns the virtual time the click was
// injected (the measurement start time for user-triggered waits) or an
// error if no clickable view matches.
func (in *Instrumentation) Click(sig Signature) (simtime.Time, error) {
	v := in.screen.Root().Find(sig)
	if v == nil || !v.Shown() {
		return 0, fmt.Errorf("uisim: no visible view matches %v", sig)
	}
	if v.OnClick == nil {
		return 0, fmt.Errorf("uisim: view %v not clickable", sig)
	}
	in.noteAction("click")
	at := in.k.Now()
	in.k.After(in.inputLatency, v.OnClick)
	return at, nil
}

// Scroll dispatches a scroll gesture (dy > 0 scrolls content down, i.e. a
// pull-to-refresh style drag when at the top).
func (in *Instrumentation) Scroll(sig Signature, dy int) (simtime.Time, error) {
	v := in.screen.Root().Find(sig)
	if v == nil || !v.Shown() {
		return 0, fmt.Errorf("uisim: no visible view matches %v", sig)
	}
	if v.OnScroll == nil {
		return 0, fmt.Errorf("uisim: view %v not scrollable", sig)
	}
	in.noteAction("scroll")
	at := in.k.Now()
	in.k.After(in.inputLatency, func() { v.OnScroll(dy) })
	return at, nil
}

// EnterText types text into a matching EditText-like view.
func (in *Instrumentation) EnterText(sig Signature, text string) (simtime.Time, error) {
	v := in.screen.Root().Find(sig)
	if v == nil || !v.Shown() {
		return 0, fmt.Errorf("uisim: no visible view matches %v", sig)
	}
	in.noteAction("type")
	at := in.k.Now()
	in.k.After(in.inputLatency, func() {
		v.SetText(text)
		if v.OnText != nil {
			v.OnText(text)
		}
	})
	return at, nil
}

// PressEnter sends the ENTER key to a matching view (URL bars).
func (in *Instrumentation) PressEnter(sig Signature) (simtime.Time, error) {
	v := in.screen.Root().Find(sig)
	if v == nil || !v.Shown() {
		return 0, fmt.Errorf("uisim: no visible view matches %v", sig)
	}
	if v.OnEnter == nil {
		return 0, fmt.Errorf("uisim: view %v has no ENTER handler", sig)
	}
	in.noteAction("enter")
	at := in.k.Now()
	in.k.After(in.inputLatency, v.OnEnter)
	return at, nil
}
