package uisim

import (
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// FramePeriod is the display refresh interval (60 Hz).
const FramePeriod = 16667 * time.Microsecond

// Screen owns a view tree and models the UI thread's draw pipeline: tree
// mutations mark the screen dirty, and the change becomes visible at the
// next frame boundary plus a jittered draw latency. The gap between the
// tree-mutation time and the on-screen time is the paper's t_screen - t_ui.
type Screen struct {
	k    *simtime.Kernel
	root *View

	dirty     bool
	drawEv    simtime.Event
	version   uint64 // bumped on every mutation
	drawnVer  uint64 // version visible on screen
	baseDraw  time.Duration
	jitterMax time.Duration

	watchers []*screenWatcher
	onDraw   []func(at simtime.Time)

	// appCPU accumulates the app's modeled CPU busy time, used for the
	// Table 3 overhead measurement.
	appCPU time.Duration

	// Observability: the pending-input fields attribute the next draw commit
	// to the user input that caused it (the paper's t_screen - t_ui gap).
	tr        *obs.Trace
	reg       *obs.Registry
	draws     *obs.Counter
	parses    *obs.Counter
	drawHist  *obs.Histogram
	inputName string
	inputID   uint64
	inputAt   simtime.Time
	inputSet  bool
}

type screenWatcher struct {
	cond  func(root *View) bool
	fn    func(at simtime.Time)
	fired bool
}

// NewScreen creates a screen with a root view and the default draw-latency
// model (one frame boundary + up to ~8ms of jitter).
func NewScreen(k *simtime.Kernel, root *View) *Screen {
	s := &Screen{k: k, root: root, baseDraw: 4 * time.Millisecond, jitterMax: 8 * time.Millisecond}
	root.setScreen(s)
	return s
}

// Kernel returns the driving kernel.
func (s *Screen) Kernel() *simtime.Kernel { return s.k }

// Root returns the root view.
func (s *Screen) Root() *View { return s.root }

// Version returns the tree mutation counter.
func (s *Screen) Version() uint64 { return s.version }

// DrawnVersion returns the version currently visible on screen.
func (s *Screen) DrawnVersion() uint64 { return s.drawnVer }

// SetObs attaches a trace bus and metrics registry. Apps and the
// instrumentation layer built over this screen read them back via Obs, so
// one testbed call wires the whole UI side.
func (s *Screen) SetObs(tr *obs.Trace, reg *obs.Registry) {
	s.tr = tr
	s.reg = reg
	s.draws = reg.Counter("ui_draws")
	s.parses = reg.Counter("ui_parses")
	s.drawHist = reg.Histogram("ui_input_to_draw_ms")
}

// Obs returns the attached trace and registry (nil when detached).
func (s *Screen) Obs() (*obs.Trace, *obs.Registry) { return s.tr, s.reg }

// noteInput records a pending user input so the next draw commit can be
// attributed to it.
func (s *Screen) noteInput(name string, id uint64) {
	s.inputName, s.inputID, s.inputAt, s.inputSet = name, id, s.k.Now(), true
}

// AddAppCPU records modeled app CPU time (the app calls this from its
// event handlers).
func (s *Screen) AddAppCPU(d time.Duration) { s.appCPU += d }

// AppCPU returns the accumulated app CPU time.
func (s *Screen) AppCPU() time.Duration { return s.appCPU }

// invalidate marks the tree changed and schedules a draw at the next frame
// boundary (if one is not already pending).
func (s *Screen) invalidate() {
	s.version++
	if s.dirty {
		return
	}
	s.dirty = true
	now := s.k.Now()
	// Next 60Hz frame boundary after now.
	next := (now/FramePeriod + 1) * FramePeriod
	jitter := time.Duration(0)
	if s.jitterMax > 0 {
		jitter = time.Duration(s.k.Rand().Int63n(int64(s.jitterMax)))
	}
	s.drawEv = s.k.At(next+s.baseDraw+jitter, s.draw)
}

// draw commits pending changes to the screen.
func (s *Screen) draw() {
	s.dirty = false
	s.drawEv = simtime.Event{}
	s.drawnVer = s.version
	now := s.k.Now()
	s.draws.Inc()
	if s.inputSet {
		s.inputSet = false
		if s.tr != nil {
			s.tr.Emit(obs.TraceEvent{
				Kind: obs.KindSpan, Layer: obs.LayerUI, Name: "ui:" + s.inputName,
				Start: time.Duration(s.inputAt), End: time.Duration(now), ID: s.inputID,
			})
		}
		s.drawHist.Observe(float64(now-s.inputAt) / float64(time.Millisecond))
	}
	for _, fn := range s.onDraw {
		fn(now)
	}
	for _, w := range s.watchers {
		if !w.fired && w.cond(s.root) {
			w.fired = true
			w.fn(now)
		}
	}
}

// OnDraw registers a listener invoked at every draw commit.
func (s *Screen) OnDraw(fn func(at simtime.Time)) { s.onDraw = append(s.onDraw, fn) }

// WatchScreen registers a one-shot watcher fired at the first draw where
// cond holds over the live tree. This models the 60fps screen recording the
// paper uses as latency ground truth (t_screen).
func (s *Screen) WatchScreen(cond func(root *View) bool, fn func(at simtime.Time)) {
	s.watchers = append(s.watchers, &screenWatcher{cond: cond, fn: fn})
	// The condition may already hold on-screen.
	if !s.dirty && cond(s.root) {
		w := s.watchers[len(s.watchers)-1]
		w.fired = true
		fn(s.k.Now())
	}
}
