// Package uisim simulates the slice of the Android UI framework that QoE
// Doctor interacts with: a live view hierarchy ("UI layout tree"), input
// event dispatch, and a frame-based drawing model that separates the moment
// the tree changes (t_ui) from the moment the change is visible on screen
// (t_screen) — the distinction behind the paper's accuracy analysis (Fig. 4
// and Fig. 6).
//
// Apps build trees out of View nodes and mutate them in response to input
// and network events. The Instrumentation type plays the role of Android's
// InstrumentationTestCase API: it runs in the same process as the app,
// injects input events, and parses the layout tree.
package uisim

import "fmt"

// Common Android view class names used by the simulated apps.
const (
	ClassView        = "android.view.View"
	ClassButton      = "android.widget.Button"
	ClassTextView    = "android.widget.TextView"
	ClassEditText    = "android.widget.EditText"
	ClassListView    = "android.widget.ListView"
	ClassWebView     = "android.webkit.WebView"
	ClassProgressBar = "android.widget.ProgressBar"
	ClassScrollView  = "android.widget.ScrollView"
	ClassImageView   = "android.widget.ImageView"
	ClassVideoView   = "android.widget.VideoView"
)

// View is one node of the layout tree. Mutations must go through the setter
// methods so the owning screen can track invalidation.
type View struct {
	Class string // Android class name
	ID    string // resource id, e.g. "com.facebook.katana:id/feed_list"
	Desc  string // developer content description
	text  string
	vis   bool

	children []*View
	parent   *View
	screen   *Screen

	// Input handlers, set by the app.
	OnClick  func()
	OnScroll func(dy int)
	OnText   func(s string)
	OnEnter  func()
}

// NewView constructs a detached visible view.
func NewView(class, id, desc string) *View {
	return &View{Class: class, ID: id, Desc: desc, vis: true}
}

// Text returns the view's current text.
func (v *View) Text() string { return v.text }

// Visible reports the view's own visibility flag (not ancestors').
func (v *View) Visible() bool { return v.vis }

// Shown reports whether the view and all its ancestors are visible.
func (v *View) Shown() bool {
	for n := v; n != nil; n = n.parent {
		if !n.vis {
			return false
		}
	}
	return true
}

// SetText mutates the view's text and invalidates the screen.
func (v *View) SetText(s string) {
	if v.text == s {
		return
	}
	v.text = s
	v.invalidate()
}

// SetVisible mutates visibility and invalidates the screen.
func (v *View) SetVisible(on bool) {
	if v.vis == on {
		return
	}
	v.vis = on
	v.invalidate()
}

// AddChild appends a child view.
func (v *View) AddChild(c *View) {
	v.insertChild(len(v.children), c)
}

// PrependChild inserts a child at the front (new list items).
func (v *View) PrependChild(c *View) {
	v.insertChild(0, c)
}

func (v *View) insertChild(i int, c *View) {
	if c.parent != nil {
		panic(fmt.Sprintf("uisim: view %s already attached", c.ID))
	}
	v.children = append(v.children, nil)
	copy(v.children[i+1:], v.children[i:])
	v.children[i] = c
	c.parent = v
	c.setScreen(v.screen)
	v.invalidate()
}

// RemoveChild detaches a child view.
func (v *View) RemoveChild(c *View) {
	for i, x := range v.children {
		if x == c {
			v.children = append(v.children[:i], v.children[i+1:]...)
			c.parent = nil
			c.setScreen(nil)
			v.invalidate()
			return
		}
	}
}

// ClearChildren detaches all children.
func (v *View) ClearChildren() {
	for _, c := range v.children {
		c.parent = nil
		c.setScreen(nil)
	}
	v.children = nil
	v.invalidate()
}

// Children returns the child slice (callers must not mutate it).
func (v *View) Children() []*View { return v.children }

// Parent returns the parent view, nil for roots.
func (v *View) Parent() *View { return v.parent }

func (v *View) setScreen(s *Screen) {
	v.screen = s
	for _, c := range v.children {
		c.setScreen(s)
	}
}

func (v *View) invalidate() {
	if v.screen != nil {
		v.screen.invalidate()
	}
}

// Count returns the number of views in this subtree (parse cost model).
func (v *View) Count() int {
	n := 1
	for _, c := range v.children {
		n += c.Count()
	}
	return n
}

// Signature identifies a view the way the paper's View signature does
// (§4.1): class name, view ID, and developer description — and explicitly
// not screen coordinates, so replays work across devices. Empty fields are
// wildcards.
type Signature struct {
	Class string
	ID    string
	Desc  string
}

func (s Signature) String() string {
	return fmt.Sprintf("{class=%q id=%q desc=%q}", s.Class, s.ID, s.Desc)
}

// Matches reports whether the view matches the signature.
func (v *View) Matches(s Signature) bool {
	if s.Class != "" && v.Class != s.Class {
		return false
	}
	if s.ID != "" && v.ID != s.ID {
		return false
	}
	if s.Desc != "" && v.Desc != s.Desc {
		return false
	}
	return true
}

// Find returns the first view in DFS order matching sig, or nil.
func (v *View) Find(sig Signature) *View {
	if v.Matches(sig) {
		return v
	}
	for _, c := range v.children {
		if m := c.Find(sig); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every view matching sig in DFS order.
func (v *View) FindAll(sig Signature) []*View {
	var out []*View
	v.walk(func(n *View) {
		if n.Matches(sig) {
			out = append(out, n)
		}
	})
	return out
}

func (v *View) walk(fn func(*View)) {
	fn(v)
	for _, c := range v.children {
		c.walk(fn)
	}
}
