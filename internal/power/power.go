// Package power estimates the device's network energy consumption from RRC
// state residency, the way QoE Doctor does with Monsoon-measured state power
// levels (§5.3): energy = sum over states of (time in state x state power).
// Tail energy — the energy burnt in high-power states after the last data
// transfer, waiting for demotion timers — is accounted separately, following
// the definition in prior work [34] cited by the paper.
package power

import (
	"time"

	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Report is an energy breakdown over an analysis window.
type Report struct {
	Window time.Duration
	// TotalJ is the physical total including the base-state floor.
	TotalJ float64
	// BaseJ is the energy spent in the base (idle/PCH) state. The paper's
	// "network energy" figures exclude this floor.
	BaseJ float64
	// TailJ is high-power energy after the last data transfer of each
	// high-power period (demotion-timer waste).
	TailJ float64
	// NonTailJ is the remaining high-power (active transfer) energy.
	NonTailJ float64
	// PerState maps each RRC state to joules spent in it.
	PerState map[radio.State]float64
	// PerStateTime maps each RRC state to residency time.
	PerStateTime map[radio.State]time.Duration
}

// ActiveJ is the network energy the paper reports: everything above the
// idle floor (tail + non-tail).
func (r Report) ActiveJ() float64 { return r.TailJ + r.NonTailJ }

// Analyze integrates radio power over [start, end] using the profile's
// per-state power levels and the QxDM transition log. PDU timestamps from
// the same log identify the last data transfer in each high-power period,
// splitting tail from non-tail energy.
func Analyze(prof *radio.Profile, log *qxdm.Log, start, end simtime.Time) Report {
	r := Report{
		Window:       time.Duration(end - start),
		PerState:     make(map[radio.State]float64),
		PerStateTime: make(map[radio.State]time.Duration),
	}
	if end <= start {
		return r
	}

	type interval struct {
		from, to simtime.Time
		state    radio.State
	}
	var ivs []interval
	cur := prof.Base
	t := start
	for _, tr := range log.Transitions {
		if tr.At <= start {
			cur = tr.To
			continue
		}
		if tr.At >= end {
			break
		}
		ivs = append(ivs, interval{t, tr.At, cur})
		cur = tr.To
		t = tr.At
	}
	ivs = append(ivs, interval{t, end, cur})

	// Index of PDU timestamps for tail detection.
	pduTimes := make([]simtime.Time, 0, len(log.PDUs))
	for _, p := range log.PDUs {
		pduTimes = append(pduTimes, p.At)
	}

	// lastPDUBefore returns the latest PDU timestamp in (from, to], or -1.
	lastPDUIn := func(from, to simtime.Time) simtime.Time {
		// PDU log is time-ordered; binary search for the upper bound.
		lo, hi := 0, len(pduTimes)
		for lo < hi {
			mid := (lo + hi) / 2
			if pduTimes[mid] <= to {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			return -1
		}
		if t := pduTimes[lo-1]; t > from {
			return t
		}
		return -1
	}

	energy := func(st radio.State, d time.Duration) float64 {
		return prof.States[st].PowerMW / 1000 * d.Seconds()
	}

	// Group consecutive non-base intervals into high-power periods.
	i := 0
	for i < len(ivs) {
		iv := ivs[i]
		d := time.Duration(iv.to - iv.from)
		r.PerStateTime[iv.state] += d
		e := energy(iv.state, d)
		r.PerState[iv.state] += e
		r.TotalJ += e
		if iv.state == prof.Base {
			r.BaseJ += e
			i++
			continue
		}
		// Extend the high-power period.
		j := i
		for j+1 < len(ivs) && ivs[j+1].state != prof.Base {
			j++
			d := time.Duration(ivs[j].to - ivs[j].from)
			r.PerStateTime[ivs[j].state] += d
			e := energy(ivs[j].state, d)
			r.PerState[ivs[j].state] += e
			r.TotalJ += e
		}
		periodStart, periodEnd := ivs[i].from, ivs[j].to
		last := lastPDUIn(periodStart, periodEnd)
		if last < 0 {
			last = periodStart // no data: the whole period is tail
		}
		// Tail = energy after the last PDU; walk the intervals again.
		for m := i; m <= j; m++ {
			from, to := ivs[m].from, ivs[m].to
			if to <= last {
				r.NonTailJ += energy(ivs[m].state, time.Duration(to-from))
				continue
			}
			if from < last {
				r.NonTailJ += energy(ivs[m].state, time.Duration(last-from))
				from = last
			}
			r.TailJ += energy(ivs[m].state, time.Duration(to-from))
		}
		i = j + 1
	}
	return r
}
