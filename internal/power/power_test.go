package power

import (
	"math"
	"testing"
	"time"

	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

func sec(s float64) simtime.Time { return simtime.Time(s * float64(time.Second)) }

func TestIdleBaselineEnergy(t *testing.T) {
	prof := radio.Profile3G()
	log := &qxdm.Log{}
	// 100 s entirely in PCH at 20 mW = 2 J.
	r := Analyze(prof, log, 0, sec(100))
	if math.Abs(r.TotalJ-2.0) > 1e-9 {
		t.Fatalf("TotalJ = %v, want 2.0", r.TotalJ)
	}
	if r.TailJ != 0 {
		t.Fatalf("TailJ = %v, want 0 with no transitions", r.TailJ)
	}
	if math.Abs(r.BaseJ-2.0) > 1e-9 {
		t.Fatalf("BaseJ = %v, want the whole idle window", r.BaseJ)
	}
	if r.ActiveJ() != 0 {
		t.Fatalf("ActiveJ = %v, want 0 when idle", r.ActiveJ())
	}
}

func TestHighPowerPeriodWithTail(t *testing.T) {
	prof := radio.Profile3G()
	log := &qxdm.Log{
		Transitions: []qxdm.TransitionRecord{
			{At: sec(10), From: radio.StatePCH, To: radio.StateDCH, Promotion: true},
			{At: sec(20), From: radio.StateDCH, To: radio.StateFACH},
			{At: sec(32), From: radio.StateFACH, To: radio.StatePCH},
		},
		PDUs: []qxdm.PDURecord{
			{At: sec(12), Dir: radio.Uplink, Seq: 0, Size: 40},
			{At: sec(15), Dir: radio.Uplink, Seq: 1, Size: 40},
		},
	}
	r := Analyze(prof, log, 0, sec(40))
	// Residency: PCH 0-10 and 32-40 (18 s), DCH 10-20 (10 s), FACH 20-32 (12 s).
	wantTotal := 18*0.020 + 10*0.800 + 12*0.460
	if math.Abs(r.TotalJ-wantTotal) > 1e-9 {
		t.Fatalf("TotalJ = %v, want %v", r.TotalJ, wantTotal)
	}
	// Tail: after the last PDU at 15 s -> DCH 15-20 (5 s) + FACH 20-32 (12 s).
	wantTail := 5*0.800 + 12*0.460
	if math.Abs(r.TailJ-wantTail) > 1e-9 {
		t.Fatalf("TailJ = %v, want %v", r.TailJ, wantTail)
	}
	if math.Abs(r.TailJ+r.NonTailJ+r.BaseJ-r.TotalJ) > 1e-9 {
		t.Fatal("tail + non-tail + base != total")
	}
	if got := r.PerStateTime[radio.StateDCH]; got != 10*time.Second {
		t.Fatalf("DCH residency = %v, want 10s", got)
	}
}

func TestPromotionWithoutDataIsAllTail(t *testing.T) {
	prof := radio.ProfileLTE()
	log := &qxdm.Log{
		Transitions: []qxdm.TransitionRecord{
			{At: sec(5), From: radio.StateLTEIdle, To: radio.StateLTECRX, Promotion: true},
			{At: sec(6), From: radio.StateLTECRX, To: radio.StateLTEShortDRX},
			{At: sec(7), From: radio.StateLTEShortDRX, To: radio.StateLTELongDRX},
			{At: sec(16.6), From: radio.StateLTELongDRX, To: radio.StateLTEIdle},
		},
	}
	r := Analyze(prof, log, 0, sec(20))
	wantTail := 1*1.210 + 1*0.700 + 9.6*0.600
	if math.Abs(r.TailJ-wantTail) > 1e-6 {
		t.Fatalf("TailJ = %v, want %v", r.TailJ, wantTail)
	}
}

func TestWindowClipping(t *testing.T) {
	prof := radio.Profile3G()
	log := &qxdm.Log{
		Transitions: []qxdm.TransitionRecord{
			{At: sec(1), From: radio.StatePCH, To: radio.StateDCH, Promotion: true},
		},
		PDUs: []qxdm.PDURecord{{At: sec(2)}},
	}
	// Window starts after the transition: the whole window is DCH.
	r := Analyze(prof, log, sec(5), sec(10))
	want := 5 * 0.800
	if math.Abs(r.TotalJ-want) > 1e-9 {
		t.Fatalf("TotalJ = %v, want %v", r.TotalJ, want)
	}
}

func TestEmptyWindow(t *testing.T) {
	r := Analyze(radio.Profile3G(), &qxdm.Log{}, sec(10), sec(10))
	if r.TotalJ != 0 {
		t.Fatalf("TotalJ = %v for empty window", r.TotalJ)
	}
}

func TestEndToEndEnergyFromSimulatedTraffic(t *testing.T) {
	prof := radio.ProfileLTE()
	k := simtime.NewKernel(5)
	b := radio.NewBearer(k, prof)
	m := qxdm.Attach(b)
	b.SendUplink(make([]byte, 20000), nil)
	k.RunUntil(60 * time.Second)
	r := Analyze(prof, m.Log(), 0, k.Now())
	if r.TotalJ <= 0 {
		t.Fatal("no energy computed")
	}
	// The transfer takes well under a second; the ~11.6s tail dominates.
	if r.TailJ <= r.NonTailJ {
		t.Fatalf("tail (%v J) should dominate a single short transfer (non-tail %v J)", r.TailJ, r.NonTailJ)
	}
	// Sanity: 60 s window, total bounded by 60 s at full CRX power.
	if r.TotalJ > 60*1.210 {
		t.Fatalf("TotalJ = %v exceeds physical bound", r.TotalJ)
	}
	// More traffic => more energy.
	k2 := simtime.NewKernel(5)
	b2 := radio.NewBearer(k2, prof)
	m2 := qxdm.Attach(b2)
	for i := 0; i < 10; i++ {
		off := simtime.Time(i) * 5 * time.Second
		k2.At(off, func() { b2.SendUplink(make([]byte, 20000), nil) })
	}
	k2.RunUntil(60 * time.Second)
	r2 := Analyze(prof, m2.Log(), 0, k2.Now())
	if r2.TotalJ <= r.TotalJ {
		t.Fatalf("10 transfers (%v J) not more energy than 1 (%v J)", r2.TotalJ, r.TotalJ)
	}
}
