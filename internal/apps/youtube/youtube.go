// Package youtube models the YouTube Android app: keyword search, a results
// list, and a progressive-download video player whose buffering behaviour
// produces the two §7.5 QoE metrics — initial loading time (progress bar
// from clicking a result until playback starts) and rebuffering ratio
// (progress bar reappearing mid-playback). Pre-roll ads (§7.6) preload the
// main video while the ad plays and expose a skip button after 5 seconds.
package youtube

import (
	"encoding/json"
	"net/netip"
	"strconv"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/uisim"
)

// View IDs for signature-based control.
const (
	IDSearchBox      = "com.google.android.youtube:id/search_edit"
	IDResultsList    = "com.google.android.youtube:id/results_list"
	IDResultItem     = "com.google.android.youtube:id/result_item"
	IDPlayerView     = "com.google.android.youtube:id/player_view"
	IDPlayerProgress = "com.google.android.youtube:id/player_progress"
	IDSkipAd         = "com.google.android.youtube:id/skip_ad_button"
)

// Player tuning.
const (
	// startBufferSeconds is how much media the 2014 YouTube app buffers
	// before starting playback; on an unthrottled link it fills in well
	// under a second, but at a 128 kbps throttle it is what turns a ~2 s
	// initial loading time into tens of seconds (Fig. 17/20).
	startBufferSeconds  = 15.0
	resumeBufferSeconds = 5.0 // stall ends with this much buffered ahead
	adSkippableAfter    = 5 * time.Second
	// adPreloadLead: the app requests the main video this long before the
	// ad finishes (§7.6's partial preload — the main video's own loading
	// shrinks, but the total time to content roughly doubles on cellular).
	adPreloadLead = 6 * time.Second
)

// Connection retry tuning: failed DNS lookups are retried with capped
// exponential backoff instead of crashing the app model.
const (
	connectRetryBase = 500 * time.Millisecond
	connectRetryCap  = 8 * time.Second
	connectRetryMax  = 5 // attempts before giving up
)

// qualityLadder is the ABR ladder as bitrate fractions of the catalog's
// native encoding: rung 0 is native, each lower rung re-encodes at a
// fraction (the YouTube QoE evaluation tooling's quality-switch metric
// counts movements on this ladder). The server serves any requested
// bitrate, so the ladder is a pure client policy.
var qualityLadder = []float64{1.0, 0.6, 0.35}

// minLadderBps floors a re-encoded rung so degenerate catalogs stay
// playable.
const minLadderBps = 50_000

// Config selects app behaviour.
type Config struct {
	// AdsEnabled plays pre-roll ads on videos that carry one.
	AdsEnabled bool
	// PreloadDuringAd starts fetching the main video adPreloadLead before
	// the ad ends. The 2014 app did this only on unmetered (WiFi)
	// networks; on cellular the main video is requested when the ad
	// finishes, which is why §7.6 finds the total loading time roughly
	// doubled there.
	PreloadDuringAd bool
	// StallTimeout abandons playback when a single rebuffering stall lasts
	// this long (the user giving up on a dead stream). Zero means wait
	// forever, the pre-fault-injection behaviour.
	StallTimeout time.Duration
}

// PlaybackStats summarizes one finished playback, as ground truth for tests
// (QoE Doctor itself derives these numbers from UI events).
type PlaybackStats struct {
	VideoID        string
	InitialLoading time.Duration // click -> main playback start (includes ad time if any)
	MainLoading    time.Duration // ad end (or click) -> main playback start
	AdLoading      time.Duration // click -> ad playback start (when an ad ran)
	PlayTime       time.Duration
	StallTime      time.Duration
	Stalls         int
	AdPlayed       bool
	Done           bool
	// Abandoned reports that playback was given up after a stall exceeded
	// Config.StallTimeout; the stats up to that point are still valid.
	Abandoned bool
	// QualitySwitches counts mid-playback ABR ladder movements (both
	// directions) during this playback.
	QualitySwitches int
}

// RebufferRatio is stall/(play+stall) after initial loading (§4.2.2).
func (s PlaybackStats) RebufferRatio() float64 {
	total := s.PlayTime + s.StallTime
	if total <= 0 {
		return 0
	}
	return s.StallTime.Seconds() / total.Seconds()
}

// stream is one progressive download in flight.
type stream struct {
	info     serversim.VideoInfo
	haveInfo bool
	buffered int // bytes received
	total    int
	ended    bool
	// fixedTotal marks a resumed/re-encoded stream whose total was
	// computed client-side (credit + remainder); the server header must
	// not overwrite it with the full-video size.
	fixedTotal bool
	onChunk    func()
	onHeader   func()
}

// App is the device-side YouTube model.
type App struct {
	k        *simtime.Kernel
	stack    *netsim.Stack
	resolver *netsim.Resolver
	cfg      Config

	Screen *uisim.Screen

	searchBox *uisim.View
	results   *uisim.View
	player    *uisim.View
	progress  *uisim.View
	skipBtn   *uisim.View

	conn          *netsim.MsgConn
	connected     bool
	connectFailed bool
	onConnect     []func()
	streams       map[string]*stream

	// Player state.
	current     *stream
	ad          *stream
	clickAt     simtime.Time
	playing     bool
	stalled     bool
	playedBytes float64
	lastTick    simtime.Time
	dryEv       simtime.Event
	stats       PlaybackStats
	onDone      func(PlaybackStats)

	playStart  simtime.Time
	stallStart simtime.Time
	stallWatch simtime.Event // StallTimeout watchdog, armed while stalled
	adTimerEv  simtime.Event
	skipEv     simtime.Event
	adStartAt  simtime.Time
	adEndAt    simtime.Time
	// mainInfo and mainRequested defer the main video's stream request
	// until near the end of the pre-roll ad.
	mainInfo      serversim.VideoInfo
	mainRequested bool

	// ABR state. rung indexes qualityLadder (sticky across playbacks);
	// nativeInfo is the catalog entry of the current main video (info on
	// a.current carries the re-encoded bitrate after a switch); posBaseS
	// is the playback position consumed by earlier stream segments, so
	// byte accounting restarts cleanly at each mid-stream resume.
	rung        int
	nativeInfo  serversim.VideoInfo
	posBaseS    float64
	totalStalls int // cumulative across playbacks, for runtime controllers

	// expectChunksFor names the stream whose chunks are currently arriving
	// (the server serializes one YTPlay response at a time per connection).
	expectChunksFor string

	// Observability. obsScope is the correlation ID of the user action that
	// started the current playback; the three spans cover the whole playback,
	// the initial-loading phase, and the rebuffer stall in progress.
	tr        *obs.Trace
	playbacks *obs.Counter
	stallsCtr *obs.Counter
	loadHist  *obs.Histogram
	obsScope  uint64
	playSpan  obs.Span
	loadSpan  obs.Span
	rebufSpan obs.Span
}

// SetObs attaches a trace bus and metrics registry to the app and its
// screen.
func (a *App) SetObs(tr *obs.Trace, reg *obs.Registry) {
	a.tr = tr
	a.playbacks = reg.Counter("yt_playbacks")
	a.stallsCtr = reg.Counter("yt_stalls")
	a.loadHist = reg.Histogram("yt_initial_loading_ms")
	a.Screen.SetObs(tr, reg)
}

// New builds the app UI and network client.
func New(k *simtime.Kernel, stack *netsim.Stack, resolver *netsim.Resolver, cfg Config) *App {
	a := &App{k: k, stack: stack, resolver: resolver, cfg: cfg, streams: make(map[string]*stream)}
	root := uisim.NewView(uisim.ClassView, "com.google.android.youtube:id/root", "youtube root")
	a.Screen = uisim.NewScreen(k, root)

	a.searchBox = uisim.NewView(uisim.ClassEditText, IDSearchBox, "search box")
	a.searchBox.OnEnter = func() { a.Search(a.searchBox.Text()) }
	root.AddChild(a.searchBox)

	a.results = uisim.NewView(uisim.ClassListView, IDResultsList, "search results")
	root.AddChild(a.results)

	a.player = uisim.NewView(uisim.ClassVideoView, IDPlayerView, "video player")
	a.player.SetVisible(false)
	root.AddChild(a.player)

	a.progress = uisim.NewView(uisim.ClassProgressBar, IDPlayerProgress, "player spinner")
	a.progress.SetVisible(false)
	root.AddChild(a.progress)

	a.skipBtn = uisim.NewView(uisim.ClassButton, IDSkipAd, "skip ad")
	a.skipBtn.SetVisible(false)
	a.skipBtn.OnClick = a.skipAd
	root.AddChild(a.skipBtn)
	return a
}

// Connect opens the media connection. DNS failures are retried with capped
// exponential backoff; after connectRetryMax attempts the app gives up
// (ConnectFailed reports it) rather than hanging or crashing.
func (a *App) Connect() { a.connectAttempt(0) }

// ConnectFailed reports that connection setup was abandoned after exhausting
// retries.
func (a *App) ConnectFailed() bool { return a.connectFailed }

func (a *App) connectAttempt(try int) {
	a.resolver.Resolve(serversim.YouTubeHost, func(addr netip.Addr, ok bool) {
		if !ok {
			if try+1 >= connectRetryMax {
				a.connectFailed = true
				return
			}
			delay := connectRetryBase << try
			if delay > connectRetryCap {
				delay = connectRetryCap
			}
			a.k.After(delay, func() { a.connectAttempt(try + 1) })
			return
		}
		c := a.stack.Dial(netsim.Endpoint{Addr: addr, Port: 443})
		a.conn = netsim.NewMsgConn(c)
		a.conn.OnMessage(a.onMessage)
		c.OnEstablished(func() {
			a.connected = true
			for _, fn := range a.onConnect {
				fn()
			}
			a.onConnect = nil
		})
	})
}

func (a *App) whenConnected(fn func()) {
	if a.connected {
		fn()
		return
	}
	a.onConnect = append(a.onConnect, fn)
}

// OnPlaybackDone registers the completion callback.
func (a *App) OnPlaybackDone(fn func(PlaybackStats)) { a.onDone = fn }

// Search issues a keyword search; results populate the results list.
func (a *App) Search(keyword string) {
	req, _ := json.Marshal(struct {
		Keyword string `json:"keyword"`
	}{keyword})
	a.whenConnected(func() { a.conn.Send(serversim.YTSearch, req) })
}

// playReq is the YTPlay request body. BitrateBps and FromS are omitted
// for a plain native-quality request, keeping the wire bytes identical to
// the pre-ABR protocol.
type playReq struct {
	ID         string  `json:"id"`
	BitrateBps int     `json:"bitrate_bps,omitempty"`
	FromS      float64 `json:"from_s,omitempty"`
}

// requestStream requests a media stream; bps > 0 asks the server to
// re-encode at that bitrate (0 = the catalog's native encoding).
func (a *App) requestStream(id string, bps int) *stream {
	st := &stream{}
	a.streams[id] = st
	a.sendPlay(id, bps, 0)
	return st
}

func (a *App) sendPlay(id string, bps int, fromS float64) {
	req, _ := json.Marshal(playReq{ID: id, BitrateBps: bps, FromS: fromS})
	a.whenConnected(func() { a.conn.Send(serversim.YTPlay, req) })
}

// rungBps maps a ladder rung onto a concrete bitrate for the video
// described by v: 0 for the native encoding (so plain requests stay
// byte-identical), a re-encoded rate rounded down to 1 kbps otherwise —
// the same rounding the server applies, keeping both sides' remainder
// arithmetic identical.
func rungBps(v serversim.VideoInfo, rung int) int {
	if rung <= 0 {
		return 0
	}
	if rung >= len(qualityLadder) {
		rung = len(qualityLadder) - 1
	}
	bps := int(float64(v.BitrateBps)*qualityLadder[rung]/1000) * 1000
	if bps < minLadderBps {
		bps = minLadderBps
	}
	return bps
}

// PlayVideo is the result-item click path: show the player and spinner,
// start streaming (ad first when present and enabled).
func (a *App) PlayVideo(v serversim.VideoInfo) {
	// End any spans left open by an interrupted previous playback.
	a.rebufSpan.End()
	a.loadSpan.End()
	a.playSpan.End()
	a.playbacks.Inc()
	if a.tr != nil {
		a.obsScope = a.tr.Scope()
		if a.obsScope == 0 {
			a.obsScope = a.tr.NewID() // driven directly, not via UI input
		}
		a.playSpan = a.tr.Start(obs.LayerApp, "yt:playback", a.obsScope,
			obs.Attr{Key: "video", Val: v.ID})
		a.loadSpan = a.tr.Start(obs.LayerApp, "yt:initial-loading", a.obsScope)
	}
	a.clickAt = a.k.Now()
	a.stats = PlaybackStats{VideoID: v.ID}
	a.player.SetVisible(true)
	a.progress.SetVisible(true)
	a.playing, a.stalled = false, false
	a.playedBytes = 0
	a.posBaseS = 0
	a.adStartAt, a.adEndAt = 0, 0
	a.streams = make(map[string]*stream)
	a.current = nil
	a.mainRequested = false

	// With a pre-roll ad, the main video is requested only near the end of
	// the ad (adPreloadLead before it finishes, or when it is skipped) —
	// the app does not fetch two streams at once.
	if a.cfg.AdsEnabled && v.AdID != "" {
		a.stats.AdPlayed = true
		a.mainInfo = v
		a.mainRequested = false
		a.ad = a.requestStream(v.AdID, 0)
		a.ad.onHeader = func() { a.maybeStartAd() }
		a.ad.onChunk = func() { a.maybeStartAd() }
		return
	}
	a.startMainRequest(v)
}

// startMainRequest opens the main video's stream (idempotent). A sticky
// ABR rung below native carries over: the stream starts at the reduced
// bitrate.
func (a *App) startMainRequest(v serversim.VideoInfo) {
	if a.mainRequested && a.current != nil {
		return
	}
	a.mainRequested = true
	a.nativeInfo = v
	a.current = a.requestStream(v.ID, rungBps(v, a.rung))
	a.current.onHeader = func() { a.maybeStartMain() }
	a.current.onChunk = func() { a.onMainChunk() }
}

// --- ad phase ---

// maybeStartAd begins ad playback once enough of the ad is buffered. Ads
// are short; playback is modeled stall-free once started.
func (a *App) maybeStartAd() {
	if a.ad == nil || !a.ad.haveInfo || a.adStarted() {
		return
	}
	need := int(startBufferSeconds * float64(a.ad.info.BitrateBps) / 8)
	if a.ad.buffered < need && !a.ad.ended {
		return
	}
	// Ad starts: spinner off, skip button after 5s, ad ends after duration.
	a.adStartAt = a.k.Now()
	a.stats.AdLoading = time.Duration(a.adStartAt - a.clickAt)
	a.progress.SetVisible(false)
	a.skipEv = a.k.After(adSkippableAfter, func() { a.skipBtn.SetVisible(true) })
	adLen := time.Duration(a.ad.info.DurationS) * time.Second
	a.adTimerEv = a.k.After(adLen, a.finishAd)
	if a.cfg.PreloadDuringAd {
		// Unmetered network: kick off the main video before the ad ends.
		lead := adLen - adPreloadLead
		if lead < 0 {
			lead = 0
		}
		v := a.mainInfo
		a.k.After(lead, func() {
			if a.stats.VideoID == v.ID && !a.mainRequested {
				a.startMainRequest(v)
			}
		})
	}
}

func (a *App) adStarted() bool { return a.adStartAt > 0 }

// skipAd is the skip-button click path.
func (a *App) skipAd() {
	a.finishAd()
}

// finishAd ends the ad phase and hands over to the main video.
func (a *App) finishAd() {
	if a.ad == nil {
		return
	}
	a.adTimerEv.Cancel()
	a.adTimerEv = simtime.Event{}
	a.skipEv.Cancel()
	a.skipEv = simtime.Event{}
	a.skipBtn.SetVisible(false)
	a.ad = nil
	a.adStartAt = 0
	a.adEndAt = a.k.Now()
	// Main video may have partially preloaded during the ad; otherwise
	// (e.g. an early skip) request it now and spin.
	a.progress.SetVisible(true)
	if !a.mainRequested {
		a.startMainRequest(a.mainInfo)
	}
	a.maybeStartMain()
}

// --- main video phase ---

// maybeStartMain begins playback once the ad is done and the start buffer
// is reached.
func (a *App) maybeStartMain() {
	if a.playing || a.current == nil || !a.current.haveInfo || a.ad != nil || a.adStartAt > 0 {
		return
	}
	need := int(startBufferSeconds * float64(a.current.info.BitrateBps) / 8)
	if a.current.buffered < need && !a.current.ended {
		return
	}
	// Initial loading complete.
	a.playing = true
	a.progress.SetVisible(false)
	a.loadSpan.End()
	a.stats.InitialLoading = time.Duration(a.k.Now() - a.clickAt)
	a.loadHist.Observe(float64(a.stats.InitialLoading) / float64(time.Millisecond))
	if a.stats.AdPlayed {
		a.stats.MainLoading = time.Duration(a.k.Now() - a.adEndAt)
	} else {
		a.stats.MainLoading = a.stats.InitialLoading
	}
	a.playStart = a.k.Now()
	a.lastTick = a.k.Now()
	a.scheduleDry()
}

// onMainChunk handles media arrival for the main video.
func (a *App) onMainChunk() {
	if a.ad != nil || a.adStartAt > 0 {
		return // preloading during the ad
	}
	if !a.playing && !a.stalled {
		a.maybeStartMain()
		return
	}
	if a.stalled {
		ahead := float64(a.current.buffered) - a.playedBytes
		need := resumeBufferSeconds * float64(a.current.info.BitrateBps) / 8
		if ahead >= need || a.current.ended {
			// Stall over.
			a.stalled = false
			a.playing = true
			a.rebufSpan.End()
			a.stats.StallTime += time.Duration(a.k.Now() - a.stallStart)
			a.progress.SetVisible(false)
			a.cancelStallWatch()
			a.lastTick = a.k.Now()
			a.scheduleDry()
		}
		return
	}
	a.scheduleDry()
}

// advance accounts for media consumed since the last tick.
func (a *App) advance() {
	if !a.playing {
		return
	}
	elapsed := time.Duration(a.k.Now() - a.lastTick).Seconds()
	a.lastTick = a.k.Now()
	a.playedBytes += elapsed * float64(a.current.info.BitrateBps) / 8
	if a.playedBytes > float64(a.current.total) {
		a.playedBytes = float64(a.current.total)
	}
}

// scheduleDry (re)schedules the next buffer-exhaustion or end-of-video
// event.
func (a *App) scheduleDry() {
	a.dryEv.Cancel()
	a.dryEv = simtime.Event{}
	a.advance()
	rate := float64(a.current.info.BitrateBps) / 8
	remainingPlayable := float64(a.current.buffered) - a.playedBytes
	untilEnd := float64(a.current.total) - a.playedBytes
	if untilEnd <= 0.5 {
		a.finishPlayback()
		return
	}
	horizon := remainingPlayable
	if untilEnd < horizon {
		horizon = untilEnd
	}
	delay := simtime.Time(horizon / rate * float64(time.Second))
	if delay < 0 {
		delay = 0
	}
	a.dryEv = a.k.After(delay, a.onDry)
}

// onDry fires when the buffer runs out (or the video finishes).
func (a *App) onDry() {
	a.dryEv = simtime.Event{}
	a.advance()
	if a.playedBytes >= float64(a.current.total)-0.5 {
		a.finishPlayback()
		return
	}
	// Buffer exhausted: rebuffering stall.
	a.playing = false
	a.stalled = true
	a.stats.Stalls++
	a.totalStalls++
	a.stallsCtr.Inc()
	if a.tr != nil {
		a.rebufSpan = a.tr.Start(obs.LayerApp, "yt:rebuffer", a.obsScope)
	}
	a.stallStart = a.k.Now()
	a.progress.SetVisible(true)
	if a.current.ended {
		// Nothing more will arrive; treat as done (truncated stream).
		a.stalled = false
		a.finishPlayback()
		return
	}
	if a.cfg.StallTimeout > 0 {
		a.stallWatch = a.k.After(a.cfg.StallTimeout, a.abandonPlayback)
	}
}

func (a *App) cancelStallWatch() {
	a.stallWatch.Cancel()
	a.stallWatch = simtime.Event{}
}

// abandonPlayback is the StallTimeout watchdog path: the stream is dead
// (e.g. a long bearer outage) and the user gives up. Stats collected so far
// are reported with Abandoned set.
func (a *App) abandonPlayback() {
	a.stallWatch = simtime.Event{}
	if a.current == nil || !a.stalled {
		return
	}
	a.stats.StallTime += time.Duration(a.k.Now() - a.stallStart)
	a.stalled = false
	a.stats.Abandoned = true
	a.finishPlayback()
}

// finishPlayback ends the session and reports stats.
func (a *App) finishPlayback() {
	if a.current == nil {
		return
	}
	a.advance()
	a.playing = false
	a.rebufSpan.End()
	a.loadSpan.End() // truncated streams can finish before playback started
	a.stats.PlayTime = time.Duration(a.k.Now()-a.playStart) - a.stats.StallTime
	a.stats.Done = !a.stats.Abandoned
	if a.playSpan.Active() {
		a.playSpan.Attr("stalls", strconv.Itoa(a.stats.Stalls))
		a.playSpan.Attr("abandoned", strconv.FormatBool(a.stats.Abandoned))
		a.playSpan.End()
	}
	a.player.SetVisible(false)
	a.progress.SetVisible(false)
	a.cancelStallWatch()
	a.dryEv.Cancel()
	a.dryEv = simtime.Event{}
	st := a.stats
	a.current = nil
	if a.onDone != nil {
		a.onDone(st)
	}
}

// --- runtime control (ABR ladder, path switching) ---

// QualityRung returns the current ABR ladder rung (0 = native quality).
func (a *App) QualityRung() int { return a.rung }

// Active reports whether a playback (ad or main video) is in progress.
func (a *App) Active() bool { return a.current != nil || a.ad != nil }

// Stalled reports whether the player is currently rebuffering.
func (a *App) Stalled() bool { return a.stalled }

// TotalStalls returns the cumulative rebuffer count across playbacks —
// the always-on stall signal runtime controllers poll.
func (a *App) TotalStalls() int { return a.totalStalls }

// AdPhase reports whether a pre-roll ad is loading or playing. Runtime
// control keeps its hands off the short, stall-free ad phase.
func (a *App) AdPhase() bool { return a.ad != nil || a.adStartAt > 0 }

// StepQuality moves the ABR ladder by delta rungs (positive = lower
// bitrate) and resumes the current stream mid-playback at the new rate:
// the media connection is torn down (the server has already committed the
// old-bitrate remainder to it), re-dialed, and the remaining duration
// re-requested at the new bitrate, with the buffered-ahead media credited
// at the new rate so playback continues seamlessly. Returns false when no
// switch happened (no active main video, ad phase, or ladder end).
func (a *App) StepQuality(delta int) bool {
	if delta == 0 || a.current == nil || a.AdPhase() {
		return false
	}
	r := a.rung + delta
	if r < 0 {
		r = 0
	}
	if max := len(qualityLadder) - 1; r > max {
		r = max
	}
	if r == a.rung {
		return false
	}
	a.rung = r
	a.stats.QualitySwitches++
	a.reconnectAndResume()
	return true
}

// Repath tears down the media connection and re-dials — after a DNS
// repoint this lands on the new server — resuming any in-flight stream at
// the current rung from where its buffer ends. Returns false when the app
// has no connection to move or is inside an ad phase.
func (a *App) Repath() bool {
	if a.conn == nil || a.AdPhase() {
		return false
	}
	a.reconnectAndResume()
	return true
}

// reconnectAndResume aborts the media connection, re-resolves and
// re-dials, and re-requests the current stream's remainder.
func (a *App) reconnectAndResume() {
	if a.conn != nil {
		a.conn.Conn.Abort()
	}
	a.conn = nil
	a.connected = false
	a.connectFailed = false
	a.onConnect = nil
	a.Connect()
	if a.current != nil {
		a.resumeCurrent()
	}
}

// resumeCurrent replaces the in-flight main stream with a resumed segment
// at the current rung's bitrate: position and buffered-ahead media are
// converted to seconds (bitrate-independent), the retained buffer is
// credited in new-bitrate bytes, and the server is asked for the
// remaining duration from where the buffer ends. Client and server
// compute the remainder with the same expression, so the byte counts
// agree exactly.
func (a *App) resumeCurrent() {
	old := a.current
	v := a.nativeInfo
	durS := float64(v.DurationS)

	var segPlayedS, aheadS float64
	if old.haveInfo && old.info.BitrateBps > 0 {
		oldBps := float64(old.info.BitrateBps)
		segPlayedS = a.playedBytes * 8 / oldBps
		aheadS = (float64(old.buffered) - a.playedBytes) * 8 / oldBps
		if aheadS < 0 {
			aheadS = 0
		}
	}
	posS := a.posBaseS + segPlayedS
	fromS := posS + aheadS
	if fromS > durS {
		fromS = durS
	}

	bps := rungBps(v, a.rung)
	if bps == 0 {
		bps = v.BitrateBps
	}
	credit := int(aheadS * float64(bps) / 8)
	remain := int((durS - fromS) * float64(bps) / 8)
	if remain < 0 {
		remain = 0
	}

	st := &stream{
		info:       v,
		haveInfo:   true,
		buffered:   credit,
		total:      credit + remain,
		fixedTotal: true,
	}
	st.info.BitrateBps = bps
	st.onHeader = func() { a.maybeStartMain() }
	st.onChunk = func() { a.onMainChunk() }
	if remain == 0 {
		st.ended = true
	}
	a.streams[v.ID] = st
	a.current = st
	a.posBaseS = posS
	a.playedBytes = 0
	a.lastTick = a.k.Now()
	if remain > 0 {
		a.sendPlay(v.ID, bps, fromS)
	}
	if a.playing {
		a.scheduleDry()
	}
}

// --- network ---

func (a *App) onMessage(kind byte, payload []byte) {
	switch kind {
	case serversim.YTSearchResults:
		var results []serversim.VideoInfo
		if err := json.Unmarshal(payload, &results); err != nil {
			return
		}
		a.results.ClearChildren()
		for _, v := range results {
			v := v
			item := uisim.NewView(uisim.ClassTextView, IDResultItem, v.ID)
			item.SetText(v.Title)
			item.OnClick = func() { a.PlayVideo(v) }
			a.results.AddChild(item)
		}
	case serversim.YTVideoHeader:
		var v serversim.VideoInfo
		if err := json.Unmarshal(payload, &v); err != nil {
			return
		}
		if st, ok := a.streams[v.ID]; ok {
			st.info = v
			st.haveInfo = true
			if !st.fixedTotal {
				st.total = v.TotalBytes()
			}
			if st.onHeader != nil {
				st.onHeader()
			}
		}
		a.expectChunksFor = v.ID
	case serversim.YTChunk:
		if st, ok := a.streams[a.expectChunksFor]; ok {
			st.buffered += len(payload)
			if st.onChunk != nil {
				st.onChunk()
			}
		}
	case serversim.YTEnd:
		var req struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(payload, &req); err != nil {
			return
		}
		if st, ok := a.streams[req.ID]; ok {
			st.ended = true
			if st.onChunk != nil {
				st.onChunk()
			}
		}
	}
}
