package youtube_test

import (
	"testing"
	"time"

	"repro/internal/apps/youtube"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/uisim"
)

func newBed(t *testing.T, seed int64, cfg youtube.Config, prof *radio.Profile) *testbed.Bed {
	t.Helper()
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: prof, YouTube: cfg, DisableQxDM: true})
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)
	return b
}

// watch plays a video to completion and returns its stats.
func watch(t *testing.T, b *testbed.Bed, id string, maxSim time.Duration) youtube.PlaybackStats {
	t.Helper()
	v, err := b.Servers.YouTube.Video(id)
	if err != nil {
		t.Fatal(err)
	}
	var stats youtube.PlaybackStats
	done := false
	b.YouTube.OnPlaybackDone(func(s youtube.PlaybackStats) { stats, done = s, true })
	b.YouTube.PlayVideo(v)
	b.K.RunUntil(b.K.Now() + maxSim)
	if !done {
		t.Fatalf("video %s (%ds) did not finish within %v", id, v.DurationS, maxSim)
	}
	return stats
}

func TestSearchPopulatesResults(t *testing.T) {
	b := newBed(t, 1, youtube.Config{}, nil)
	in := uisim.NewInstrumentation(b.K, b.YouTube.Screen)
	if _, err := in.EnterText(uisim.Signature{ID: youtube.IDSearchBox}, "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.PressEnter(uisim.Signature{ID: youtube.IDSearchBox}); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(b.K.Now() + 10*time.Second)
	results := b.YouTube.Screen.Root().FindAll(uisim.Signature{ID: youtube.IDResultItem})
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
	if results[0].Desc != "c0" {
		t.Fatalf("first result desc = %q, want video id", results[0].Desc)
	}
}

func TestUnthrottledPlaybackNoStalls(t *testing.T) {
	b := newBed(t, 2, youtube.Config{}, nil)
	st := watch(t, b, "a1", 10*time.Minute)
	if !st.Done {
		t.Fatal("not done")
	}
	if st.Stalls != 0 {
		t.Fatalf("stalls = %d on unthrottled LTE", st.Stalls)
	}
	if st.RebufferRatio() > 0.01 {
		t.Fatalf("rebuffer ratio = %v, want ~0", st.RebufferRatio())
	}
	if st.InitialLoading <= 0 || st.InitialLoading > 10*time.Second {
		t.Fatalf("initial loading = %v", st.InitialLoading)
	}
	if st.AdPlayed {
		t.Fatal("ad played with ads disabled")
	}
}

func TestThrottledPolicerCausesRebuffering(t *testing.T) {
	b := newBed(t, 3, youtube.Config{}, nil)
	b.Throttle(200e3) // LTE -> policer at 200 kbps, below video bitrate
	st := watch(t, b, "a1", 60*time.Minute)
	if st.Stalls == 0 {
		t.Fatal("no stalls under a 200kbps policer")
	}
	if st.RebufferRatio() < 0.1 {
		t.Fatalf("rebuffer ratio = %v, want substantial", st.RebufferRatio())
	}
}

func TestThrottlingInflatesInitialLoading(t *testing.T) {
	free := watch(t, newBed(t, 4, youtube.Config{}, nil), "b2", 10*time.Minute)
	bThr := newBed(t, 4, youtube.Config{}, nil)
	bThr.Throttle(200e3)
	capped := watch(t, bThr, "b2", 60*time.Minute)
	if capped.InitialLoading < 3*free.InitialLoading {
		t.Fatalf("throttled initial loading %v not >> unthrottled %v",
			capped.InitialLoading, free.InitialLoading)
	}
}

func TestProgressBarTracksStalls(t *testing.T) {
	b := newBed(t, 5, youtube.Config{}, nil)
	b.Throttle(200e3)
	shows, hides := 0, 0
	wasShown := false
	b.YouTube.Screen.OnDraw(func(simtime.Time) {
		bar := b.YouTube.Screen.Root().Find(uisim.Signature{ID: youtube.IDPlayerProgress})
		if bar.Shown() && !wasShown {
			shows++
		}
		if !bar.Shown() && wasShown {
			hides++
		}
		wasShown = bar.Shown()
	})
	st := watch(t, b, "a1", 60*time.Minute)
	// One initial-loading cycle plus one per stall.
	if shows < 1+st.Stalls || hides < st.Stalls {
		t.Fatalf("progress bar cycles (show=%d hide=%d) inconsistent with %d stalls",
			shows, hides, st.Stalls)
	}
}

func TestAdPreloadsMainVideoOnWiFi(t *testing.T) {
	// Pick a video that carries an ad (AdEvery=3 -> digits 0,3,6,9). With
	// preload enabled (WiFi behaviour), the main video buffers during the
	// ad and starts with no further spinner.
	prof := radio.ProfileWiFi()
	withAds := newBed(t, 6, youtube.Config{AdsEnabled: true, PreloadDuringAd: true}, prof)
	stAd := watch(t, withAds, "d3", 20*time.Minute)
	if !stAd.AdPlayed {
		t.Fatal("ad did not play")
	}
	noAds := newBed(t, 6, youtube.Config{}, radio.ProfileWiFi())
	stNo := watch(t, noAds, "d3", 20*time.Minute)
	if stNo.AdPlayed {
		t.Fatal("unexpected ad")
	}
	if stAd.MainLoading >= stNo.InitialLoading {
		t.Fatalf("preloaded main loading (%v) not shorter than cold (%v)",
			stAd.MainLoading, stNo.InitialLoading)
	}
	// Time-to-content (click to main playback) is still longer with an ad.
	if stAd.InitialLoading <= stNo.InitialLoading {
		t.Fatalf("time to content with ad (%v) not longer than without (%v)",
			stAd.InitialLoading, stNo.InitialLoading)
	}
}

func TestAdCellularDefersMainFetch(t *testing.T) {
	// §7.6 cellular behaviour: no preload — the main video is requested
	// when the ad ends, so the user sees a second loading spinner and the
	// total spinner time roughly doubles.
	b := newBed(t, 16, youtube.Config{AdsEnabled: true}, nil)
	st := watch(t, b, "d3", 20*time.Minute)
	if !st.AdPlayed {
		t.Fatal("ad did not play")
	}
	if st.MainLoading <= 0 {
		t.Fatal("main video loaded instantly despite deferred fetch")
	}
	if st.AdLoading <= 0 {
		t.Fatal("ad loading not measured")
	}
}

func TestSkipAdButton(t *testing.T) {
	b := newBed(t, 7, youtube.Config{AdsEnabled: true}, nil)
	v, err := b.Servers.YouTube.Video("d3")
	if err != nil {
		t.Fatal(err)
	}
	in := uisim.NewInstrumentation(b.K, b.YouTube.Screen)
	var stats youtube.PlaybackStats
	done := false
	b.YouTube.OnPlaybackDone(func(s youtube.PlaybackStats) { stats, done = s, true })
	b.YouTube.PlayVideo(v)
	// Wait for the skip button, click it.
	clicked := false
	stop := b.K.Ticker(200*time.Millisecond, func() {
		if clicked {
			return
		}
		if _, err := in.Click(uisim.Signature{ID: youtube.IDSkipAd}); err == nil {
			clicked = true
		}
	})
	b.K.RunUntil(b.K.Now() + 20*time.Minute)
	stop()
	if !clicked {
		t.Fatal("skip button never clickable")
	}
	if !done {
		t.Fatal("playback did not finish")
	}
	if !stats.AdPlayed {
		t.Fatal("ad stats missing")
	}
	adInfo, _ := b.Servers.YouTube.Video(v.AdID)
	// Skipping must beat watching the whole ad: total initial loading stays
	// below ad duration + main loading headroom.
	if stats.InitialLoading > time.Duration(adInfo.DurationS)*time.Second {
		t.Fatalf("initial loading %v suggests the full %ds ad played despite skip",
			stats.InitialLoading, adInfo.DurationS)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	b := newBed(t, 8, youtube.Config{}, nil)
	v1, err1 := b.Servers.YouTube.Video("q5")
	v2, err2 := b.Servers.YouTube.Video("q5")
	if err1 != nil || err2 != nil || v1 != v2 {
		t.Fatalf("catalog not deterministic: %+v vs %+v", v1, v2)
	}
	if _, err := b.Servers.YouTube.Video("zz9"); err == nil {
		t.Fatal("accepted bogus id")
	}
	if got := len(b.Servers.YouTube.Search("q")); got != 10 {
		t.Fatalf("search size %d", got)
	}
	if b.Servers.YouTube.Search("Q") != nil {
		t.Fatal("uppercase keyword should be empty")
	}
}

func Test3GSlowerInitialLoadingThanLTE(t *testing.T) {
	lte := watch(t, newBed(t, 9, youtube.Config{}, radio.ProfileLTE()), "e4", 20*time.Minute)
	g3 := watch(t, newBed(t, 9, youtube.Config{}, radio.Profile3G()), "e4", 20*time.Minute)
	if g3.InitialLoading <= lte.InitialLoading {
		t.Fatalf("3G initial loading (%v) not slower than LTE (%v)",
			g3.InitialLoading, lte.InitialLoading)
	}
}
