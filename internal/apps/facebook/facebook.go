// Package facebook models the Facebook Android app as QoE Doctor sees it:
// a news feed rendered either as a ListView (app 5.0.0.26.31) or a WebView
// (app 1.8.3), a post composer, pull-to-update, background feed refresh with
// a configurable "refresh interval", and push-notification-driven updates.
//
// The model reproduces the behaviours behind the paper's findings:
//
//   - Posting a status or check-in puts a local copy on the feed
//     immediately, taking the network off the critical path (Finding 1).
//   - Posting photos uploads ~380 KB and only shows the item after the
//     server acknowledges (Finding 2's workload).
//   - Background recommendation traffic continues even with no friend
//     activity, controlled by the refresh interval (Findings 3-4).
//   - The WebView feed downloads >77% more bytes and costs far more device
//     CPU per update than the ListView feed (Finding 5).
package facebook

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/uisim"
)

// View IDs matching the real app's resource names closely enough for
// signature-based control.
const (
	IDFeedList     = "com.facebook.katana:id/news_feed_list"
	IDFeedWeb      = "com.facebook.katana:id/news_feed_web"
	IDFeedItem     = "com.facebook.katana:id/feed_item"
	IDFeedProgress = "com.facebook.katana:id/feed_progress"
	IDComposerText = "com.facebook.katana:id/status_text"
	IDPostButton   = "com.facebook.katana:id/post_button"
)

// Post kinds.
const (
	PostStatus  = "status"
	PostCheckin = "checkin"
	PostPhotos  = "photos"
)

// Upload payload sizes (§7.2 workload: posting 2 photos moves ~270 IP
// packets ≈ 380 KB; status and check-in are small).
const (
	UploadBytesStatus  = 2_200
	UploadBytesCheckin = 3_400
	UploadBytesPhotos  = 380_000
)

// Connection/fetch retry tuning. DNS failures and unanswered feed fetches
// are retried with capped exponential backoff instead of hanging forever.
const (
	connectRetryBase = 500 * time.Millisecond
	connectRetryCap  = 8 * time.Second
	connectRetryMax  = 5 // attempts before giving up
	fetchRetryMax    = 3 // feed-fetch attempts before giving up
)

// Config selects the app version's behaviour.
type Config struct {
	// Variant is serversim.VariantListView or serversim.VariantWebView.
	Variant string
	// RefreshInterval controls background recommendation refreshes (the
	// §7.3 settings item). Zero disables background refresh.
	RefreshInterval time.Duration
	// SelfUpdateOnNotify: app 5.0 refreshes the feed by itself when a
	// friend-post notification arrives; app 1.8.3 needs a pull gesture.
	SelfUpdateOnNotify bool
	// Subscribe opens the push-notification channel on connect.
	Subscribe bool
	// FetchTimeout bounds a foreground feed fetch; an unanswered fetch is
	// re-sent with doubling timeouts up to fetchRetryMax attempts, then
	// abandoned (spinner hidden, FetchFailures incremented). Zero means
	// wait forever, the pre-fault-injection behaviour.
	FetchTimeout time.Duration
}

// DefaultConfig is the modern (ListView) app with the 1-hour default
// refresh interval the paper calls out.
func DefaultConfig() Config {
	return Config{
		Variant:            serversim.VariantListView,
		RefreshInterval:    time.Hour,
		SelfUpdateOnNotify: true,
		Subscribe:          true,
		FetchTimeout:       15 * time.Second,
	}
}

// App is the device-side Facebook model.
type App struct {
	k        *simtime.Kernel
	stack    *netsim.Stack
	resolver *netsim.Resolver
	cfg      Config

	Screen *uisim.Screen

	feed     *uisim.View // ListView or WebView
	progress *uisim.View
	composer *uisim.View
	postBtn  *uisim.View

	conn      *netsim.MsgConn
	connected bool
	onConnect []func()

	nextPost   int
	updating   bool
	stopBg     func()
	webContent string // WebView variant: rendered HTML text blob
	ackWaiters []ackWaiter

	connectFailed bool
	fetchWatch    simtime.Event // FetchTimeout watchdog for the active fetch
	fetchTries    int
	// FetchFailures counts foreground feed fetches abandoned after
	// exhausting retries (exposed for tests and reports).
	FetchFailures int

	// Observability.
	tr           *obs.Trace
	posts        *obs.Counter
	fetches      *obs.Counter
	fetchRetries *obs.Counter
	fetchFails   *obs.Counter
	fetchSpan    obs.Span
}

// SetObs attaches a trace bus and metrics registry to the app and its
// screen.
func (a *App) SetObs(tr *obs.Trace, reg *obs.Registry) {
	a.tr = tr
	a.posts = reg.Counter("fb_posts")
	a.fetches = reg.Counter("fb_fetches")
	a.fetchRetries = reg.Counter("fb_fetch_retries")
	a.fetchFails = reg.Counter("fb_fetch_failures")
	a.Screen.SetObs(tr, reg)
}

// actionScope returns the current correlation scope, allocating a fresh ID
// when no user action is in scope (programmatic or background activity).
func (a *App) actionScope() uint64 {
	id := a.tr.Scope()
	if id == 0 {
		id = a.tr.NewID()
	}
	return id
}

// ackWaiter tracks a photo upload awaiting its FBUploadAck.
type ackWaiter struct {
	id string
	fn func()
}

// New builds the app UI and network client. Call Connect to go online.
func New(k *simtime.Kernel, stack *netsim.Stack, resolver *netsim.Resolver, cfg Config) *App {
	a := &App{k: k, stack: stack, resolver: resolver, cfg: cfg}
	root := uisim.NewView(uisim.ClassView, "com.facebook.katana:id/root", "facebook root")
	a.Screen = uisim.NewScreen(k, root)

	a.progress = uisim.NewView(uisim.ClassProgressBar, IDFeedProgress, "feed loading spinner")
	a.progress.SetVisible(false)
	root.AddChild(a.progress)

	if cfg.Variant == serversim.VariantWebView {
		a.feed = uisim.NewView(uisim.ClassWebView, IDFeedWeb, "news feed web view")
	} else {
		a.feed = uisim.NewView(uisim.ClassListView, IDFeedList, "news feed list")
	}
	a.feed.OnScroll = func(dy int) {
		if dy > 0 {
			a.PullToUpdate()
		}
	}
	root.AddChild(a.feed)

	a.composer = uisim.NewView(uisim.ClassEditText, IDComposerText, "status composer")
	root.AddChild(a.composer)
	a.postBtn = uisim.NewView(uisim.ClassButton, IDPostButton, "post")
	a.postBtn.OnClick = a.onPostClicked
	root.AddChild(a.postBtn)
	return a
}

// Connect resolves the API host, opens the persistent connection, and
// starts background services per the config. DNS failures are retried with
// capped exponential backoff; after connectRetryMax attempts the app gives
// up (ConnectFailed reports it) rather than hanging or crashing.
func (a *App) Connect() {
	a.connectAttempt(0)
	if a.cfg.RefreshInterval > 0 {
		a.stopBg = a.k.Ticker(a.cfg.RefreshInterval, a.backgroundRefresh)
	}
}

// ConnectFailed reports that connection setup was abandoned after exhausting
// retries.
func (a *App) ConnectFailed() bool { return a.connectFailed }

func (a *App) connectAttempt(try int) {
	a.resolver.Resolve(serversim.FacebookHost, func(addr netip.Addr, ok bool) {
		if !ok {
			if try+1 >= connectRetryMax {
				a.connectFailed = true
				return
			}
			delay := connectRetryBase << try
			if delay > connectRetryCap {
				delay = connectRetryCap
			}
			a.k.After(delay, func() { a.connectAttempt(try + 1) })
			return
		}
		c := a.stack.Dial(netsim.Endpoint{Addr: addr, Port: 443})
		a.conn = netsim.NewMsgConn(c)
		a.conn.OnMessage(a.onMessage)
		c.OnEstablished(func() {
			a.connected = true
			if a.cfg.Subscribe {
				a.conn.Send(serversim.FBSubscribe, serversim.EncodeMeta(serversim.FBMeta{}, 200))
			}
			for _, fn := range a.onConnect {
				fn()
			}
			a.onConnect = nil
		})
	})
}

// Close stops background activity.
func (a *App) Close() {
	if a.stopBg != nil {
		a.stopBg()
		a.stopBg = nil
	}
}

// whenConnected runs fn now or once the connection is up.
func (a *App) whenConnected(fn func()) {
	if a.connected {
		fn()
		return
	}
	a.onConnect = append(a.onConnect, fn)
}

// ComposePost stages a post of the given kind; the composer text carries
// the stamp string the controller watches for. Clicking the post button
// then uploads it.
func (a *App) ComposePost(kind, stamp string) {
	a.composer.SetText(kind + "|" + stamp)
}

// onPostClicked implements the post-button code path.
func (a *App) onPostClicked() {
	text := a.composer.Text()
	kind, stamp := PostStatus, text
	for i := 0; i < len(text); i++ {
		if text[i] == '|' {
			kind, stamp = text[:i], text[i+1:]
			break
		}
	}
	a.nextPost++
	id := fmt.Sprintf("self-%d", a.nextPost)

	a.posts.Inc()
	var sp obs.Span
	if a.tr != nil {
		// The span ends when the post becomes visible on the feed: at local
		// echo for status/check-in, at server ack for photos (Findings 1-2).
		sp = a.tr.Start(obs.LayerApp, "fb:post", a.actionScope(),
			obs.Attr{Key: "kind", Val: kind})
	}
	prep, upload := a.prepCost(kind)
	// Preparation CPU plus streaming/encoding work proportional to the
	// upload size (photos keep the app busy during the transfer).
	a.Screen.AddAppCPU(prep + time.Duration(upload)*300*time.Nanosecond)
	a.k.After(prep, func() {
		meta := serversim.FBMeta{PostID: id, Kind: kind, Stamp: stamp}
		switch kind {
		case PostPhotos:
			// Item appears only after the server acknowledges the upload.
			a.whenConnected(func() {
				a.awaitAck(id, func() {
					a.addFeedItem("me: " + stamp)
					sp.End()
				})
				a.conn.Send(serversim.FBUpload, serversim.EncodeMeta(meta, upload))
			})
		default:
			// Local echo: the feed shows the post immediately; the upload
			// proceeds asynchronously (Finding 1).
			a.addFeedItem("me: " + stamp)
			sp.End()
			a.whenConnected(func() {
				a.conn.Send(serversim.FBUpload, serversim.EncodeMeta(meta, upload))
			})
		}
	})
}

// prepCost returns the device-side preparation time and upload size for a
// post kind. Photos pay image re-encoding.
func (a *App) prepCost(kind string) (time.Duration, int) {
	jitter := func(base time.Duration, spread time.Duration) time.Duration {
		return base + time.Duration(a.k.Rand().Int63n(int64(spread)))
	}
	switch kind {
	case PostCheckin:
		return jitter(900*time.Millisecond, 200*time.Millisecond), UploadBytesCheckin
	case PostPhotos:
		return jitter(1000*time.Millisecond, 300*time.Millisecond), UploadBytesPhotos
	default:
		return jitter(700*time.Millisecond, 150*time.Millisecond), UploadBytesStatus
	}
}

func (a *App) awaitAck(id string, fn func()) {
	a.ackWaiters = append(a.ackWaiters, ackWaiter{id, fn})
}

// PullToUpdate refreshes the news feed: the loading spinner appears, a feed
// fetch goes out, and the feed list updates when the response has been
// processed. Device-side processing cost differs sharply between variants.
// On an impaired network an unanswered fetch is retried with doubling
// timeouts (see Config.FetchTimeout) rather than spinning forever.
func (a *App) PullToUpdate() {
	if a.updating {
		return
	}
	a.updating = true
	a.fetches.Inc()
	if a.tr != nil {
		a.fetchSpan = a.tr.Start(obs.LayerApp, "fb:fetch", a.actionScope())
	}
	a.fetchTries = 0
	a.progress.SetVisible(true)
	a.sendFetch()
}

func (a *App) sendFetch() {
	a.fetchTries++
	a.whenConnected(func() {
		a.conn.Send(serversim.FBFeedFetch,
			serversim.EncodeMeta(serversim.FBMeta{Variant: a.cfg.Variant}, 1_600))
	})
	if a.cfg.FetchTimeout <= 0 {
		return
	}
	timeout := a.cfg.FetchTimeout << (a.fetchTries - 1)
	a.fetchWatch = a.k.After(timeout, func() {
		a.fetchWatch = simtime.Event{}
		if !a.updating {
			return
		}
		if a.fetchTries < fetchRetryMax {
			a.fetchRetries.Inc()
			a.sendFetch()
			return
		}
		// Give up: hide the spinner so UI automation is not stuck forever.
		a.FetchFailures++
		a.fetchFails.Inc()
		a.fetchSpan.Attr("failed", "true")
		a.fetchSpan.End()
		a.updating = false
		a.progress.SetVisible(false)
	})
}

func (a *App) cancelFetchWatch() {
	a.fetchWatch.Cancel()
	a.fetchWatch = simtime.Event{}
}

// backgroundRefresh fetches non-time-sensitive recommendations (§7.3); it
// causes network traffic and radio activity but no foreground UI change.
func (a *App) backgroundRefresh() {
	a.whenConnected(func() {
		a.conn.Send(serversim.FBFeedFetch,
			serversim.EncodeMeta(serversim.FBMeta{Variant: a.cfg.Variant, Recommnd: true}, 1_200))
	})
}

func (a *App) onMessage(kind byte, payload []byte) {
	meta, _ := serversim.DecodeMeta(payload)
	switch kind {
	case serversim.FBUploadAck:
		for i, w := range a.ackWaiters {
			if w.id == meta.PostID {
				a.ackWaiters = append(a.ackWaiters[:i], a.ackWaiters[i+1:]...)
				w.fn()
				break
			}
		}
	case serversim.FBFeedData:
		if meta.Recommnd {
			return // background data, no UI effect
		}
		a.cancelFetchWatch()
		proc := a.updateCost(len(payload))
		a.Screen.AddAppCPU(proc)
		a.k.After(proc, func() {
			a.applyFeedUpdate(fmt.Sprintf("feed update #%d", meta.FeedSeq))
			a.fetchSpan.End()
			a.progress.SetVisible(false)
			a.updating = false
		})
	case serversim.FBNotify:
		// A friend posted. Fetch the content (time-sensitive traffic);
		// depending on the app version, also refresh the visible feed.
		a.whenConnected(func() {
			a.conn.Send(serversim.FBFetchPost,
				serversim.EncodeMeta(serversim.FBMeta{PostID: meta.PostID}, 400))
		})
	case serversim.FBPostContent:
		proc := a.updateCost(len(payload)) / 2
		a.Screen.AddAppCPU(proc)
		a.k.After(proc, func() {
			a.addFeedItem("friend: " + meta.PostID)
		})
		if a.cfg.SelfUpdateOnNotify {
			a.PullToUpdate()
		}
	}
}

// updateCost models the device CPU needed to apply a feed payload. The
// WebView variant pays iterated HTML/CSS parsing and layout; the ListView
// variant deserializes a compact feed (Finding 5's device-latency gap).
func (a *App) updateCost(payloadLen int) time.Duration {
	jit := func(base, spread time.Duration) time.Duration {
		return base + time.Duration(a.k.Rand().Int63n(int64(spread)))
	}
	perKB := time.Duration(payloadLen/1024) * time.Millisecond
	if a.cfg.Variant == serversim.VariantWebView {
		return jit(500*time.Millisecond, 450*time.Millisecond) + 12*perKB
	}
	return jit(110*time.Millisecond, 60*time.Millisecond) + 2*perKB
}

// addFeedItem prepends a post to the visible feed.
func (a *App) addFeedItem(text string) {
	if a.cfg.Variant == serversim.VariantWebView {
		a.webContent = text + "\n" + a.webContent
		a.feed.SetText(a.webContent)
		return
	}
	item := uisim.NewView(uisim.ClassTextView, IDFeedItem, "feed story")
	item.SetText(text)
	a.feed.PrependChild(item)
}

// applyFeedUpdate replaces/extends the feed after a fetch.
func (a *App) applyFeedUpdate(text string) {
	a.addFeedItem(text)
}

// FeedSize returns the number of visible feed stories (tests).
func (a *App) FeedSize() int {
	if a.cfg.Variant == serversim.VariantWebView {
		n := 0
		for _, c := range a.webContent {
			if c == '\n' {
				n++
			}
		}
		return n
	}
	return len(a.feed.Children())
}
