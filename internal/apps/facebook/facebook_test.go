package facebook_test

import (
	"testing"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/uisim"
)

func newBed(t *testing.T, cfg facebook.Config) *testbed.Bed {
	t.Helper()
	b := testbed.MustNew(testbed.Options{Seed: 11, Profile: radio.ProfileLTE(), Facebook: cfg})
	b.Facebook.Connect()
	b.K.RunUntil(2 * time.Second) // connect + subscribe
	return b
}

// feedShows reports whether the feed contains text (works for both
// variants by scanning the app's screen tree).
func feedShows(b *testbed.Bed, substr string) bool {
	found := false
	var walk func(v *uisim.View)
	walk = func(v *uisim.View) {
		if contains(v.Text(), substr) {
			found = true
		}
		for _, c := range v.Children() {
			walk(c)
		}
	}
	walk(b.Facebook.Screen.Root())
	return found
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestStatusPostLocalEcho(t *testing.T) {
	b := newBed(t, facebook.DefaultConfig())
	in := uisim.NewInstrumentation(b.K, b.Facebook.Screen)
	b.Facebook.ComposePost(facebook.PostStatus, "stamp-123")
	start := b.K.Now()
	if _, err := in.Click(uisim.Signature{ID: facebook.IDPostButton}); err != nil {
		t.Fatal(err)
	}
	var shownAt simtime.Time = -1
	b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: "com.facebook.katana:id/feed_item"})
		return v != nil && contains(v.Text(), "stamp-123")
	}, func(at simtime.Time) { shownAt = at })
	b.K.RunUntil(start + 10*time.Second)
	if shownAt < 0 {
		t.Fatal("status never appeared in feed")
	}
	latency := time.Duration(shownAt - start)
	// Local echo: ~0.7-0.9s device prep + draw, well under any network RTT
	// with promotion + upload + server processing.
	if latency > 1500*time.Millisecond {
		t.Fatalf("status post took %v; local echo should not wait for the network", latency)
	}
}

func TestPhotoPostWaitsForServerAck(t *testing.T) {
	b := newBed(t, facebook.DefaultConfig())
	in := uisim.NewInstrumentation(b.K, b.Facebook.Screen)
	b.Facebook.ComposePost(facebook.PostPhotos, "photo-stamp")
	start := b.K.Now()
	if _, err := in.Click(uisim.Signature{ID: facebook.IDPostButton}); err != nil {
		t.Fatal(err)
	}
	var shownAt simtime.Time = -1
	b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: "com.facebook.katana:id/feed_item"})
		return v != nil && contains(v.Text(), "photo-stamp")
	}, func(at simtime.Time) { shownAt = at })
	b.K.RunUntil(start + 60*time.Second)
	if shownAt < 0 {
		t.Fatal("photo post never appeared")
	}
	latency := time.Duration(shownAt - start)
	// 380KB upload + prep + server processing: must be well beyond the
	// local-echo regime.
	if latency < 2*time.Second {
		t.Fatalf("photo post appeared after %v; should wait for upload+ack", latency)
	}
	// And the upload bytes must actually be on the wire.
	var upBytes int
	for _, r := range b.Capture.Records() {
		if !r.Inbound {
			upBytes += len(r.Data)
		}
	}
	if upBytes < facebook.UploadBytesPhotos {
		t.Fatalf("uplink bytes = %d, want >= %d", upBytes, facebook.UploadBytesPhotos)
	}
}

func TestPullToUpdateCycle(t *testing.T) {
	b := newBed(t, facebook.DefaultConfig())
	in := uisim.NewInstrumentation(b.K, b.Facebook.Screen)
	var barShown, barHidden simtime.Time = -1, -1
	b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: facebook.IDFeedProgress})
		return v != nil && v.Shown()
	}, func(at simtime.Time) { barShown = at })

	if _, err := in.Scroll(uisim.Signature{ID: facebook.IDFeedList}, 200); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(b.K.Now() + 500*time.Millisecond)
	b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: facebook.IDFeedProgress})
		return v != nil && !v.Shown()
	}, func(at simtime.Time) { barHidden = at })
	b.K.RunUntil(b.K.Now() + 20*time.Second)

	if barShown < 0 || barHidden < 0 {
		t.Fatalf("progress bar cycle incomplete: shown=%v hidden=%v", barShown, barHidden)
	}
	if barHidden <= barShown {
		t.Fatal("progress bar hidden before shown")
	}
	if b.Facebook.FeedSize() == 0 {
		t.Fatal("feed not updated")
	}
}

func TestWebViewUpdateSlowerAndHeavier(t *testing.T) {
	run := func(variant string) (time.Duration, int) {
		cfg := facebook.DefaultConfig()
		cfg.Variant = variant
		b := newBed(t, cfg)
		feedSig := uisim.Signature{ID: facebook.IDFeedList}
		if variant == serversim.VariantWebView {
			feedSig = uisim.Signature{ID: facebook.IDFeedWeb}
		}
		in := uisim.NewInstrumentation(b.K, b.Facebook.Screen)
		capBefore := devBytesIn(b)
		start := b.K.Now()
		if _, err := in.Scroll(feedSig, 200); err != nil {
			t.Fatal(err)
		}
		var doneAt simtime.Time = -1
		b.K.RunUntil(start + 400*time.Millisecond)
		b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
			v := r.Find(uisim.Signature{ID: facebook.IDFeedProgress})
			return v != nil && !v.Shown()
		}, func(at simtime.Time) { doneAt = at })
		b.K.RunUntil(start + 30*time.Second)
		if doneAt < 0 {
			t.Fatalf("%s update never finished", variant)
		}
		return time.Duration(doneAt - start), devBytesIn(b) - capBefore
	}
	lvTime, lvBytes := run(serversim.VariantListView)
	wvTime, wvBytes := run(serversim.VariantWebView)
	if wvTime <= lvTime {
		t.Fatalf("WebView update (%v) not slower than ListView (%v)", wvTime, lvTime)
	}
	if float64(wvBytes) < 1.5*float64(lvBytes) {
		t.Fatalf("WebView downlink (%d) not substantially heavier than ListView (%d)", wvBytes, lvBytes)
	}
}

func devBytesIn(b *testbed.Bed) int {
	n := 0
	for _, r := range b.Capture.Records() {
		if r.Inbound {
			n += len(r.Data)
		}
	}
	return n
}

func TestNotificationDrivenUpdate(t *testing.T) {
	b := newBed(t, facebook.DefaultConfig())
	if b.Servers.Facebook.Subscribers() != 1 {
		t.Fatalf("subscribers = %d, want 1", b.Servers.Facebook.Subscribers())
	}
	b.Servers.Facebook.InjectFriendPost("friend-1", 4000)
	b.K.RunUntil(b.K.Now() + 30*time.Second)
	if !feedShows(b, "friend-1") {
		t.Fatal("friend post never reached the feed")
	}
}

func TestBackgroundRefreshScalesWithInterval(t *testing.T) {
	traffic := func(interval time.Duration) int {
		cfg := facebook.DefaultConfig()
		cfg.RefreshInterval = interval
		b := testbed.MustNew(testbed.Options{Seed: 3, Profile: radio.ProfileLTE(), Facebook: cfg, DisableQxDM: true})
		b.Facebook.Connect()
		b.K.RunUntil(4 * time.Hour)
		total := 0
		for _, r := range b.Capture.Records() {
			total += len(r.Data)
		}
		return total
	}
	t30 := traffic(30 * time.Minute)
	t60 := traffic(60 * time.Minute)
	t120 := traffic(120 * time.Minute)
	if !(t30 > t60 && t60 > t120) {
		t.Fatalf("background traffic not monotonic in interval: 30m=%d 1h=%d 2h=%d", t30, t60, t120)
	}
}

func TestNoRefreshNoTimerTraffic(t *testing.T) {
	cfg := facebook.DefaultConfig()
	cfg.RefreshInterval = 0
	b := testbed.MustNew(testbed.Options{Seed: 4, Facebook: cfg, DisableQxDM: true})
	b.Facebook.Connect()
	b.K.RunUntil(30 * time.Second)
	base := len(b.Capture.Records())
	b.K.RunUntil(4 * time.Hour)
	if got := len(b.Capture.Records()); got != base {
		t.Fatalf("idle app generated %d extra packets", got-base)
	}
}

func TestCloseStopsBackgroundRefresh(t *testing.T) {
	cfg := facebook.DefaultConfig()
	cfg.RefreshInterval = 10 * time.Minute
	b := testbed.MustNew(testbed.Options{Seed: 5, Facebook: cfg, DisableQxDM: true})
	b.Facebook.Connect()
	b.K.RunUntil(30 * time.Minute)
	b.Facebook.Close()
	b.K.RunUntil(31 * time.Minute) // drain the exchange in flight at Close
	base := len(b.Capture.Records())
	b.K.RunUntil(2 * time.Hour)
	if got := len(b.Capture.Records()); got != base {
		t.Fatalf("refresh continued after Close: %d extra packets", got-base)
	}
}

func TestFacebookTrafficTargetsFacebookServer(t *testing.T) {
	b := newBed(t, facebook.DefaultConfig())
	b.Facebook.PullToUpdate()
	b.K.RunUntil(b.K.Now() + 10*time.Second)
	for _, r := range b.Capture.Records() {
		p, err := r.Packet()
		if err != nil {
			t.Fatal(err)
		}
		if p.Proto != netsim.ProtoTCP {
			continue
		}
		peer := p.Dst.Addr
		if r.Inbound {
			peer = p.Src.Addr
		}
		if peer != serversim.FacebookAddr {
			t.Fatalf("unexpected peer %v in Facebook-only run", peer)
		}
	}
}
