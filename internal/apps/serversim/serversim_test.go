package serversim

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/simtime"
)

func TestEncodeDecodeMeta(t *testing.T) {
	meta := FBMeta{PostID: "p1", Kind: "photos", Stamp: "ts-1", Size: 12345}
	payload := EncodeMeta(meta, 5000)
	if len(payload) != 5000 {
		t.Fatalf("payload length = %d, want padded to 5000", len(payload))
	}
	got, ok := DecodeMeta(payload)
	if !ok || got != meta {
		t.Fatalf("roundtrip: %+v (ok=%v)", got, ok)
	}
}

func TestEncodeMetaSmallTotal(t *testing.T) {
	// total smaller than the header: payload grows to fit.
	payload := EncodeMeta(FBMeta{PostID: "x"}, 1)
	if _, ok := DecodeMeta(payload); !ok {
		t.Fatal("meta lost when total < header size")
	}
}

func TestDecodeMetaGarbage(t *testing.T) {
	if _, ok := DecodeMeta([]byte{0}); ok {
		t.Fatal("accepted 1-byte payload")
	}
	if _, ok := DecodeMeta([]byte{0, 5, 'x'}); ok {
		t.Fatal("accepted truncated header")
	}
}

func TestVideoCatalogProperties(t *testing.T) {
	srv := &YouTubeServer{AdEvery: 3}
	for kw := byte('a'); kw <= 'z'; kw++ {
		vids := srv.Search(string(kw))
		if len(vids) != 10 {
			t.Fatalf("keyword %c: %d videos", kw, len(vids))
		}
		for _, v := range vids {
			if v.DurationS < 45 || v.DurationS > 151 {
				t.Fatalf("video %s duration %d out of range", v.ID, v.DurationS)
			}
			if v.BitrateBps < 250_000 || v.BitrateBps > 400_000 {
				t.Fatalf("video %s bitrate %d out of range", v.ID, v.BitrateBps)
			}
			if v.TotalBytes() != v.DurationS*v.BitrateBps/8 {
				t.Fatalf("TotalBytes inconsistent for %s", v.ID)
			}
		}
	}
	// Ad assignment: digits divisible by 3.
	v, _ := srv.Video("m3")
	if v.AdID != "ad-m3" {
		t.Fatalf("m3 AdID = %q", v.AdID)
	}
	v, _ = srv.Video("m4")
	if v.AdID != "" {
		t.Fatalf("m4 AdID = %q, want none", v.AdID)
	}
	ad, err := srv.Video("ad-m3")
	if err != nil || !ad.IsAd || ad.DurationS < 15 || ad.DurationS > 30 {
		t.Fatalf("ad spec wrong: %+v err=%v", ad, err)
	}
}

func TestClusterInstallServesDNS(t *testing.T) {
	k := simtime.NewKernel(1)
	n := netsim.NewNetwork(k, radio.ProfileWiFi(), netip.MustParseAddr("10.20.0.2"), 5*time.Millisecond)
	c := Install(n)
	if c.Facebook == nil || c.YouTube == nil || c.Web == nil || c.DNS == nil {
		t.Fatal("cluster incomplete")
	}
	r := netsim.NewResolver(n.Device, netsim.Endpoint{Addr: DNSAddr, Port: netsim.DNSPort})
	for _, host := range []string{FacebookHost, YouTubeHost, WebHostBase} {
		resolved := false
		r.Resolve(host, func(a netip.Addr, ok bool) { resolved = ok })
		k.Run()
		if !resolved {
			t.Fatalf("host %s not in zone", host)
		}
	}
}

func TestWebPageSpecRanges(t *testing.T) {
	srv := &WebServer{}
	seen := map[int]bool{}
	for _, p := range []string{"/a", "/b", "/c", "/d", "/e"} {
		spec := srv.Page(p)
		if spec.HTMLBytes < 25_000 || spec.HTMLBytes >= 60_000 {
			t.Fatalf("%s HTML %d out of range", p, spec.HTMLBytes)
		}
		if len(spec.Resources) < 4 || len(spec.Resources) > 9 {
			t.Fatalf("%s resources %d out of range", p, len(spec.Resources))
		}
		for _, r := range spec.Resources {
			if r < 8_000 || r >= 48_000 {
				t.Fatalf("%s resource %d out of range", p, r)
			}
		}
		seen[spec.TotalBytes()] = true
	}
	if len(seen) < 3 {
		t.Fatal("page sizes suspiciously uniform")
	}
}
