package serversim

import (
	"encoding/json"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Facebook wire protocol message kinds. The payload sizes (not the bytes)
// carry the semantics; metadata rides in a small JSON header so the client
// can identify posts.
const (
	// Client -> server.
	FBUpload    = 1 // JSON meta + filler payload (the post content)
	FBFeedFetch = 2 // JSON meta {variant}
	FBSubscribe = 3 // opens the push-notification channel
	FBFetchPost = 4 // JSON meta {post id}

	// Server -> client.
	FBUploadAck   = 11 // JSON meta echoing the post id
	FBFeedData    = 12 // JSON meta + feed filler (size depends on variant)
	FBNotify      = 13 // JSON meta {post id, size}: a friend posted
	FBPostContent = 14 // JSON meta + post filler
)

// Feed variants: the 2014 redesign the paper studies in §7.4.
const (
	VariantListView = "listview"
	VariantWebView  = "webview"
)

// Facebook server tuning. Sizes are calibrated to the paper's measurements:
// the WebView feed carries >77% more downlink bytes than the ListView feed
// (Fig. 16), and one background recommendation refresh is ~8 KB so that the
// default 1-hour refresh interval accumulates the ~200 KB/day observed in
// §7.3.
const (
	FeedBytesListView   = 11_000
	FeedBytesWebView    = 24_000
	RecommendationBytes = 8_000
	NotifyBytes         = 300
	PostContentBytes    = 14_000
	UploadAckBytes      = 600
	// PhotoAckBytes: after a photo upload the server returns the rendered
	// photo story — the §7.2 trace pattern of "uploading then downloading
	// two large chunks of data".
	PhotoAckBytes = 60_000
)

// FBMeta is the JSON header prefixed to protocol payloads.
type FBMeta struct {
	PostID   string `json:"post_id,omitempty"`
	Kind     string `json:"kind,omitempty"` // status | checkin | photos
	Variant  string `json:"variant,omitempty"`
	Size     int    `json:"size,omitempty"`
	Stamp    string `json:"stamp,omitempty"` // client timestamp string in the post
	FeedSeq  int    `json:"feed_seq,omitempty"`
	Recommnd bool   `json:"recommend,omitempty"`
}

// EncodeMeta frames meta as a length-prefixed JSON header followed by
// padding filler up to total bytes.
func EncodeMeta(meta FBMeta, total int) []byte {
	hdr, err := json.Marshal(meta)
	if err != nil {
		panic("serversim: meta marshal: " + err.Error())
	}
	out := make([]byte, 2, max(total, len(hdr)+2))
	out[0] = byte(len(hdr) >> 8)
	out[1] = byte(len(hdr))
	out = append(out, hdr...)
	// LCG filler: aperiodic padding so RLC PDU head bytes stay diverse
	// (byte-periodic filler would let the long-jump mapper alias).
	x := uint32(len(hdr))*2654435761 + uint32(total)
	for len(out) < total {
		x = x*1664525 + 1013904223
		out = append(out, byte(x>>24))
	}
	return out
}

// DecodeMeta parses a payload produced by EncodeMeta.
func DecodeMeta(payload []byte) (FBMeta, bool) {
	var m FBMeta
	if len(payload) < 2 {
		return m, false
	}
	n := int(payload[0])<<8 | int(payload[1])
	if len(payload) < 2+n {
		return m, false
	}
	if err := json.Unmarshal(payload[2:2+n], &m); err != nil {
		return m, false
	}
	return m, true
}

// FacebookServer is the API + feed + push-notification endpoint.
type FacebookServer struct {
	stack *netsim.Stack
	k     *simtime.Kernel

	// Server-side processing delays before replying.
	StatusProcDelay time.Duration
	PhotoProcDelay  time.Duration
	FeedProcDelay   time.Duration

	subscribers []*netsim.MsgConn
	feedSeq     int
	// pendingPosts maps post ids to their content size for FBFetchPost.
	pendingPosts map[string]int
}

// NewFacebookServer installs the Facebook protocol on a server stack.
func NewFacebookServer(s *netsim.Stack) *FacebookServer {
	srv := &FacebookServer{
		stack:           s,
		k:               s.Kernel(),
		StatusProcDelay: 120 * time.Millisecond,
		PhotoProcDelay:  900 * time.Millisecond,
		FeedProcDelay:   150 * time.Millisecond,
		pendingPosts:    make(map[string]int),
	}
	s.Listen(443, srv.accept)
	return srv
}

func (srv *FacebookServer) accept(c *netsim.Conn) {
	mc := netsim.NewMsgConn(c)
	mc.OnMessage(func(kind byte, payload []byte) { srv.handle(mc, kind, payload) })
}

func (srv *FacebookServer) handle(mc *netsim.MsgConn, kind byte, payload []byte) {
	meta, _ := DecodeMeta(payload)
	switch kind {
	case FBUpload:
		delay, ackSize := srv.StatusProcDelay, UploadAckBytes
		if meta.Kind == "photos" {
			delay, ackSize = srv.PhotoProcDelay, PhotoAckBytes
		}
		srv.k.After(delay, func() {
			mc.Send(FBUploadAck, EncodeMeta(FBMeta{PostID: meta.PostID, Stamp: meta.Stamp}, ackSize))
		})
	case FBFeedFetch:
		size := FeedBytesListView
		if meta.Variant == VariantWebView {
			size = FeedBytesWebView
		}
		if meta.Recommnd {
			size = RecommendationBytes
		}
		srv.feedSeq++
		seq := srv.feedSeq
		srv.k.After(srv.FeedProcDelay, func() {
			mc.Send(FBFeedData, EncodeMeta(FBMeta{Variant: meta.Variant, FeedSeq: seq}, size))
		})
	case FBSubscribe:
		srv.subscribers = append(srv.subscribers, mc)
	case FBFetchPost:
		size, ok := srv.pendingPosts[meta.PostID]
		if !ok {
			size = PostContentBytes
		}
		srv.k.After(srv.FeedProcDelay, func() {
			mc.Send(FBPostContent, EncodeMeta(FBMeta{PostID: meta.PostID, Size: size}, size))
		})
	}
}

// InjectFriendPost simulates a friend (the paper's device A) posting: every
// subscriber gets a push notification carrying the post id; clients then
// fetch the content. size is the post content size in bytes.
func (srv *FacebookServer) InjectFriendPost(id string, size int) {
	srv.pendingPosts[id] = size
	for _, mc := range srv.subscribers {
		mc.Send(FBNotify, EncodeMeta(FBMeta{PostID: id, Size: size}, NotifyBytes))
	}
}

// Subscribers reports the number of push-channel subscribers (tests).
func (srv *FacebookServer) Subscribers() int { return len(srv.subscribers) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
