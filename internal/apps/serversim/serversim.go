// Package serversim implements the server side of the simulated world: a
// Facebook-like API/feed/notification service, a YouTube-like search and
// media-streaming service, generic web servers, and the DNS zone tying
// hostnames to all of them. The device apps in internal/apps/* speak these
// wire protocols over simulated TCP; QoE Doctor itself never sees any of
// this code — it only observes the UI tree, tcpdump, and QxDM logs, exactly
// like the real tool.
package serversim

import (
	"net/netip"

	"repro/internal/netsim"
)

// Canonical server addresses and hostnames for the simulated internet.
var (
	DNSAddr      = netip.MustParseAddr("8.8.8.8")
	FacebookAddr = netip.MustParseAddr("31.13.70.36")
	YouTubeAddr  = netip.MustParseAddr("74.125.65.91")
	WebAddr      = netip.MustParseAddr("93.184.216.34")

	// Edge replicas: alternate servers a runtime controller can repoint
	// traffic to (CDN failover). Installed only by InstallEdge.
	EdgeYouTubeAddr = netip.MustParseAddr("173.194.55.11")
	EdgeWebAddr     = netip.MustParseAddr("93.184.216.35")
)

// Hostnames served by the DNS zone.
const (
	FacebookHost = "api.facebook.com"
	YouTubeHost  = "r1---sn.googlevideo.com"
	WebHostBase  = "www.example.com" // page paths select content
)

// Cluster bundles all installed servers.
type Cluster struct {
	Facebook *FacebookServer
	Web      *WebServer
	YouTube  *YouTubeServer
	DNS      *netsim.DNSServer

	// Edge replicas, present only when InstallEdge was called. They serve
	// the same deterministic catalogs as the primaries, so a mid-stream
	// server switch is seamless.
	EdgeYouTube *YouTubeServer
	EdgeWeb     *WebServer
}

// Install creates all servers on the network and returns the cluster.
func Install(n *netsim.Network) *Cluster {
	c := &Cluster{}
	dnsStack := n.MustAddServer(DNSAddr)
	c.DNS = netsim.AttachDNSServer(dnsStack, map[string]netip.Addr{
		FacebookHost: FacebookAddr,
		YouTubeHost:  YouTubeAddr,
		WebHostBase:  WebAddr,
	})
	c.Facebook = NewFacebookServer(n.MustAddServer(FacebookAddr))
	c.YouTube = NewYouTubeServer(n.MustAddServer(YouTubeAddr))
	c.Web = NewWebServer(n.MustAddServer(WebAddr))
	return c
}

// InstallEdge adds the edge replica servers to the network. The DNS zone is
// left pointing at the primaries; a runtime controller repoints individual
// hostnames (and flushes resolver caches) when it actuates a server switch.
// Installing the replicas schedules no kernel events, so scenarios with and
// without edges diverge only when a switch actually happens.
func InstallEdge(n *netsim.Network, c *Cluster) {
	c.EdgeYouTube = NewYouTubeServer(n.MustAddServer(EdgeYouTubeAddr))
	c.EdgeWeb = NewWebServer(n.MustAddServer(EdgeWebAddr))
}
