package serversim

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// YouTube wire protocol message kinds.
const (
	// Client -> server.
	YTSearch = 1 // JSON {keyword}
	YTPlay   = 2 // JSON {video id}

	// Server -> client.
	YTSearchResults = 11 // JSON []VideoInfo
	YTVideoHeader   = 12 // JSON VideoInfo (precedes the chunk stream)
	YTChunk         = 13 // raw media bytes
	YTEnd           = 14 // JSON {video id}
)

// ytChunkBytes is the media chunk size the server streams.
const ytChunkBytes = 32 * 1024

// VideoInfo describes one catalog entry.
type VideoInfo struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	DurationS  int    `json:"duration_s"`
	BitrateBps int    `json:"bitrate_bps"`
	IsAd       bool   `json:"is_ad,omitempty"`
	// AdID, when set, is the pre-roll ad played before this video.
	AdID string `json:"ad_id,omitempty"`
}

// TotalBytes is the full media size of the video.
func (v VideoInfo) TotalBytes() int {
	return v.DurationS * v.BitrateBps / 8
}

type ytRequest struct {
	Keyword string `json:"keyword,omitempty"`
	ID      string `json:"id,omitempty"`
	// BitrateBps, when > 0, asks for a re-encode at that rate instead of
	// the catalog's native encoding (the client's ABR ladder request).
	BitrateBps int `json:"bitrate_bps,omitempty"`
	// FromS, when > 0, resumes mid-video: only the remainder from that
	// position is served. Combined with BitrateBps this is the
	// quality-switch resume path.
	FromS float64 `json:"from_s,omitempty"`
}

// YouTubeServer serves a deterministic catalog: ten videos per keyword
// letter ("a0".."z9"), the dataset shape of §7.5 scaled down so simulated
// playback stays tractable (documented in DESIGN.md). A fraction of videos
// carry a pre-roll ad.
type YouTubeServer struct {
	stack *netsim.Stack
	k     *simtime.Kernel

	// SearchProcDelay is server think-time for a search.
	SearchProcDelay time.Duration
	// AdEvery: every n-th video of a keyword has a pre-roll ad (0 = none).
	AdEvery int
}

// NewYouTubeServer installs the YouTube protocol on a server stack.
func NewYouTubeServer(s *netsim.Stack) *YouTubeServer {
	srv := &YouTubeServer{
		stack:           s,
		k:               s.Kernel(),
		SearchProcDelay: 180 * time.Millisecond,
		AdEvery:         3,
	}
	s.Listen(443, srv.accept)
	return srv
}

// Video returns the catalog entry for an id ("c7", or "ad-c7" for its ad).
// Deterministic: duration 45-150 s, bitrate 250-400 kbps; ads are 15-30 s.
func (srv *YouTubeServer) Video(id string) (VideoInfo, error) {
	h := fnv.New32a()
	h.Write([]byte(id))
	x := h.Sum32()
	if len(id) > 3 && id[:3] == "ad-" {
		return VideoInfo{
			ID:         id,
			Title:      "ad for " + id[3:],
			DurationS:  15 + int(x%16),
			BitrateBps: 300_000,
			IsAd:       true,
		}, nil
	}
	if len(id) != 2 || id[0] < 'a' || id[0] > 'z' || id[1] < '0' || id[1] > '9' {
		return VideoInfo{}, fmt.Errorf("serversim: unknown video %q", id)
	}
	v := VideoInfo{
		ID:         id,
		Title:      "video " + id,
		DurationS:  45 + int(x%106),
		BitrateBps: 250_000 + int(x%150_000)/1000*1000,
	}
	if srv.AdEvery > 0 && int(id[1]-'0')%srv.AdEvery == 0 {
		v.AdID = "ad-" + id
	}
	return v, nil
}

// Search returns the 10 catalog entries for a one-letter keyword.
func (srv *YouTubeServer) Search(keyword string) []VideoInfo {
	if len(keyword) == 0 || keyword[0] < 'a' || keyword[0] > 'z' {
		return nil
	}
	out := make([]VideoInfo, 0, 10)
	for i := 0; i < 10; i++ {
		v, err := srv.Video(fmt.Sprintf("%c%d", keyword[0], i))
		if err == nil {
			out = append(out, v)
		}
	}
	return out
}

func (srv *YouTubeServer) accept(c *netsim.Conn) {
	mc := netsim.NewMsgConn(c)
	mc.OnMessage(func(kind byte, payload []byte) { srv.handle(mc, kind, payload) })
}

func (srv *YouTubeServer) handle(mc *netsim.MsgConn, kind byte, payload []byte) {
	var req ytRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return
	}
	switch kind {
	case YTSearch:
		results := srv.Search(req.Keyword)
		data, _ := json.Marshal(results)
		srv.k.After(srv.SearchProcDelay, func() { mc.Send(YTSearchResults, data) })
	case YTPlay:
		v, err := srv.Video(req.ID)
		if err != nil {
			return
		}
		if req.BitrateBps > 0 {
			v.BitrateBps = req.BitrateBps
		}
		total := v.TotalBytes()
		if req.BitrateBps > 0 || req.FromS > 0 {
			// Re-encode / resume: serve only the remaining duration at the
			// (possibly re-encoded) bitrate. The expression mirrors the
			// client's remainder arithmetic exactly.
			remainS := float64(v.DurationS) - req.FromS
			if remainS < 0 {
				remainS = 0
			}
			total = int(remainS * float64(v.BitrateBps) / 8)
		}
		hdr, _ := json.Marshal(v)
		mc.Send(YTVideoHeader, hdr)
		for off := 0; off < total; off += ytChunkBytes {
			n := ytChunkBytes
			if off+n > total {
				n = total - off
			}
			mc.SendFiller(YTChunk, n)
		}
		end, _ := json.Marshal(ytRequest{ID: v.ID})
		mc.Send(YTEnd, end)
	}
}
