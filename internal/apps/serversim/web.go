package serversim

import (
	"encoding/json"
	"hash/fnv"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Web wire protocol message kinds (a minimal HTTP stand-in over MsgConn).
const (
	// Client -> server.
	WebGetPage = 1 // JSON {path}
	WebGetRes  = 2 // JSON {path, index}

	// Server -> client.
	WebPageData = 11 // JSON PageSpec header + HTML filler
	WebResData  = 12 // resource filler bytes
)

// PageSpec describes a page's deterministic shape: HTML size and the sizes
// of its sub-resources (images, CSS, JS).
type PageSpec struct {
	Path      string `json:"path"`
	HTMLBytes int    `json:"html_bytes"`
	Resources []int  `json:"resources"` // byte sizes
}

// TotalBytes is the page's full transfer size.
func (p PageSpec) TotalBytes() int {
	t := p.HTMLBytes
	for _, r := range p.Resources {
		t += r
	}
	return t
}

type webRequest struct {
	Path  string `json:"path"`
	Index int    `json:"index,omitempty"`
}

// WebServer serves deterministic synthetic pages: 25-60 KB of HTML plus 4-9
// resources of 8-48 KB, derived from the path hash.
type WebServer struct {
	stack *netsim.Stack
	k     *simtime.Kernel

	// ProcDelay is server think-time per request.
	ProcDelay time.Duration
}

// NewWebServer installs the web protocol on a server stack (port 80).
func NewWebServer(s *netsim.Stack) *WebServer {
	srv := &WebServer{stack: s, k: s.Kernel(), ProcDelay: 60 * time.Millisecond}
	s.Listen(80, srv.accept)
	return srv
}

// Page returns the deterministic spec for a path.
func (srv *WebServer) Page(path string) PageSpec {
	h := fnv.New64a()
	h.Write([]byte(path))
	x := h.Sum64()
	spec := PageSpec{
		Path:      path,
		HTMLBytes: 25_000 + int(x%35_000),
	}
	nres := 4 + int(x>>8%6)
	for i := 0; i < nres; i++ {
		spec.Resources = append(spec.Resources, 8_000+int((x>>(8+4*i))%40_000))
	}
	return spec
}

func (srv *WebServer) accept(c *netsim.Conn) {
	mc := netsim.NewMsgConn(c)
	mc.OnMessage(func(kind byte, payload []byte) { srv.handle(mc, kind, payload) })
}

func (srv *WebServer) handle(mc *netsim.MsgConn, kind byte, payload []byte) {
	var req webRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return
	}
	spec := srv.Page(req.Path)
	switch kind {
	case WebGetPage:
		hdr, _ := json.Marshal(spec)
		body := make([]byte, 2+len(hdr), 2+len(hdr)+spec.HTMLBytes)
		body[0] = byte(len(hdr) >> 8)
		body[1] = byte(len(hdr))
		copy(body[2:], hdr)
		x := uint32(spec.HTMLBytes) * 2246822519
		for len(body) < 2+len(hdr)+spec.HTMLBytes {
			x = x*1664525 + 1013904223
			body = append(body, byte(x>>24))
		}
		srv.k.After(srv.ProcDelay, func() { mc.Send(WebPageData, body) })
	case WebGetRes:
		if req.Index < 0 || req.Index >= len(spec.Resources) {
			return
		}
		srv.k.After(srv.ProcDelay, func() { mc.SendFiller(WebResData, spec.Resources[req.Index]) })
	}
}

// DecodePageSpec extracts the PageSpec header from a WebPageData payload.
func DecodePageSpec(payload []byte) (PageSpec, bool) {
	var spec PageSpec
	if len(payload) < 2 {
		return spec, false
	}
	n := int(payload[0])<<8 | int(payload[1])
	if len(payload) < 2+n {
		return spec, false
	}
	if err := json.Unmarshal(payload[2:2+n], &spec); err != nil {
		return spec, false
	}
	return spec, true
}
