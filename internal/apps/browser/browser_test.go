package browser_test

import (
	"testing"
	"time"

	"repro/internal/apps/browser"
	"repro/internal/apps/serversim"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/uisim"
)

func newBed(t *testing.T, seed int64, prof *radio.Profile, bp browser.Profile) *testbed.Bed {
	t.Helper()
	return testbed.MustNew(testbed.Options{Seed: seed, Profile: prof, Browser: bp, DisableQxDM: true})
}

// loadPage drives a page load via the URL bar and returns the load time.
func loadPage(t *testing.T, b *testbed.Bed, url string, budget time.Duration) time.Duration {
	t.Helper()
	in := uisim.NewInstrumentation(b.K, b.Browser.Screen)
	if _, err := in.EnterText(uisim.Signature{ID: browser.IDURLBar}, url); err != nil {
		t.Fatal(err)
	}
	var doneAt simtime.Time = -1
	done := false
	b.Browser.OnLoaded(func(u string, at simtime.Time) { doneAt, done = at, true })
	start, err := in.PressEnter(uisim.Signature{ID: browser.IDURLBar})
	if err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(b.K.Now() + budget)
	if !done {
		t.Fatalf("page %q did not load within %v", url, budget)
	}
	return time.Duration(doneAt - start)
}

func TestPageLoadCompletes(t *testing.T) {
	b := newBed(t, 1, nil, browser.Chrome())
	d := loadPage(t, b, serversim.WebHostBase+"/index.html", 2*time.Minute)
	if d <= 0 || d > 30*time.Second {
		t.Fatalf("page load time = %v", d)
	}
	// All page bytes actually crossed the wire.
	spec := b.Servers.Web.Page("/index.html")
	var in int
	for _, r := range b.Capture.Records() {
		if r.Inbound {
			in += len(r.Data)
		}
	}
	if in < spec.TotalBytes() {
		t.Fatalf("downlink bytes %d < page total %d", in, spec.TotalBytes())
	}
}

func TestProgressBarCycle(t *testing.T) {
	b := newBed(t, 2, nil, browser.Chrome())
	var shownAt, hiddenAt simtime.Time = -1, -1
	b.Browser.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: browser.IDProgress})
		return v != nil && v.Shown()
	}, func(at simtime.Time) { shownAt = at })
	in := uisim.NewInstrumentation(b.K, b.Browser.Screen)
	in.EnterText(uisim.Signature{ID: browser.IDURLBar}, serversim.WebHostBase+"/a")
	in.PressEnter(uisim.Signature{ID: browser.IDURLBar})
	b.K.RunUntil(500 * time.Millisecond)
	b.Browser.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: browser.IDProgress})
		return v != nil && !v.Shown()
	}, func(at simtime.Time) { hiddenAt = at })
	b.K.RunUntil(2 * time.Minute)
	if shownAt < 0 || hiddenAt <= shownAt {
		t.Fatalf("progress bar cycle wrong: shown=%v hidden=%v", shownAt, hiddenAt)
	}
}

func TestPageSpecDeterministic(t *testing.T) {
	b := newBed(t, 3, nil, browser.Chrome())
	p1 := b.Servers.Web.Page("/same")
	p2 := b.Servers.Web.Page("/same")
	if p1.HTMLBytes != p2.HTMLBytes || len(p1.Resources) != len(p2.Resources) {
		t.Fatal("page spec not deterministic")
	}
	q := b.Servers.Web.Page("/other")
	if p1.HTMLBytes == q.HTMLBytes && p1.TotalBytes() == q.TotalBytes() {
		t.Fatal("distinct paths produced identical specs (suspicious)")
	}
	if p1.HTMLBytes < 25_000 || p1.HTMLBytes > 60_000 || len(p1.Resources) < 4 {
		t.Fatalf("spec out of documented range: %+v", p1)
	}
}

func TestStockBrowserSlowerThanChrome(t *testing.T) {
	chrome := loadPage(t, newBed(t, 4, nil, browser.Chrome()), serversim.WebHostBase+"/bench", 2*time.Minute)
	stock := loadPage(t, newBed(t, 4, nil, browser.Stock()), serversim.WebHostBase+"/bench", 2*time.Minute)
	if stock <= chrome {
		t.Fatalf("stock browser (%v) not slower than chrome (%v)", stock, chrome)
	}
}

func TestSimplified3GFasterPageLoads(t *testing.T) {
	// Load pages with 20s think time between them: the default 3G machine
	// demotes to FACH and pays extra promotions (§7.7).
	run := func(prof *radio.Profile) time.Duration {
		b := newBed(t, 5, prof, browser.Chrome())
		var total time.Duration
		for i, p := range []string{"/p1", "/p2", "/p3"} {
			_ = i
			total += loadPage(t, b, serversim.WebHostBase+p, 5*time.Minute)
			b.K.RunUntil(b.K.Now() + 20*time.Second)
		}
		return total
	}
	def := run(radio.Profile3G())
	simp := run(radio.ProfileSimplified3G())
	if simp >= def {
		t.Fatalf("simplified 3G (%v) not faster than default (%v)", simp, def)
	}
}

func TestURLSplit(t *testing.T) {
	// Exercised indirectly; a bare-host load must still work.
	b := newBed(t, 6, nil, browser.Firefox())
	d := loadPage(t, b, "http://"+serversim.WebHostBase, 2*time.Minute)
	if d <= 0 {
		t.Fatalf("bare-host load time = %v", d)
	}
}

func TestUnknownHostAbortsLoad(t *testing.T) {
	b := newBed(t, 7, nil, browser.Chrome())
	in := uisim.NewInstrumentation(b.K, b.Browser.Screen)
	in.EnterText(uisim.Signature{ID: browser.IDURLBar}, "nonexistent.example/x")
	in.PressEnter(uisim.Signature{ID: browser.IDURLBar})
	b.K.RunUntil(time.Minute)
	bar := b.Browser.Screen.Root().Find(uisim.Signature{ID: browser.IDProgress})
	if bar.Shown() {
		t.Fatal("progress bar stuck after DNS failure")
	}
}
