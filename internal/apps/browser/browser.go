// Package browser models the three web browsing apps of §4.2.3 (Chrome,
// Firefox, and the stock "Internet" browser): a URL bar whose ENTER key
// starts a page load, a progress bar that disappears when the page — HTML
// plus all sub-resources — has loaded, and per-browser differences in
// connection parallelism and parsing speed.
package browser

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/uisim"
)

// View IDs for signature-based control.
const (
	IDURLBar   = "com.android.browser:id/url_bar"
	IDProgress = "com.android.browser:id/load_progress"
	IDPageView = "com.android.browser:id/page_view"
)

// Page-load retry tuning: failed or timed-out loads are retried with capped
// exponential backoff on a fresh connection pool.
const (
	loadRetryBase = time.Second
	loadRetryCap  = 8 * time.Second
	loadRetryMax  = 3 // attempts before giving up
)

// Profile captures per-browser behaviour differences.
type Profile struct {
	Name          string
	ParallelConns int
	ParseBase     time.Duration // HTML parse fixed cost
	ParsePerKB    time.Duration // HTML parse per-KB cost
	RenderDelay   time.Duration // final layout/paint before "loaded"
	// LoadTimeout bounds one page-load attempt. A load that has not
	// finished in time is retried on a fresh connection pool (stale
	// connections are reset), up to loadRetryMax attempts. Zero means wait
	// forever, the pre-fault-injection behaviour.
	LoadTimeout time.Duration
}

// The three browsers studied by the paper.
func Chrome() Profile {
	return Profile{Name: "chrome", ParallelConns: 4, ParseBase: 60 * time.Millisecond, ParsePerKB: 800 * time.Microsecond, RenderDelay: 50 * time.Millisecond}
}
func Firefox() Profile {
	return Profile{Name: "firefox", ParallelConns: 4, ParseBase: 80 * time.Millisecond, ParsePerKB: time.Millisecond, RenderDelay: 60 * time.Millisecond}
}
func Stock() Profile {
	return Profile{Name: "internet", ParallelConns: 2, ParseBase: 110 * time.Millisecond, ParsePerKB: 1300 * time.Microsecond, RenderDelay: 80 * time.Millisecond}
}

// App is the device-side browser model.
type App struct {
	k        *simtime.Kernel
	stack    *netsim.Stack
	resolver *netsim.Resolver
	prof     Profile

	Screen *uisim.Screen

	urlBar   *uisim.View
	progress *uisim.View
	page     *uisim.View

	conns   []*netsim.MsgConn
	pending map[string]*pageLoad // keyed by host (one active load)

	onLoaded func(url string, at simtime.Time)

	loadWatch     simtime.Event // LoadTimeout watchdog for the active load
	loadTries     int
	loadStartedAt simtime.Time // when the current LoadPage was issued
	// LoadFailures counts page loads abandoned after exhausting retries.
	LoadFailures int

	// Observability. loadSpan covers one user-requested page load end to
	// end, including retries.
	tr        *obs.Trace
	pageloads *obs.Counter
	loadFails *obs.Counter
	loadSpan  obs.Span
}

// SetObs attaches a trace bus and metrics registry to the app and its
// screen.
func (a *App) SetObs(tr *obs.Trace, reg *obs.Registry) {
	a.tr = tr
	a.pageloads = reg.Counter("web_pageloads")
	a.loadFails = reg.Counter("web_load_failures")
	a.Screen.SetObs(tr, reg)
}

type pageLoad struct {
	url     string
	spec    serversim.PageSpec
	resLeft int
	nextRes int
	active  bool
	// Visual progress, feeding the Speed Index frame recording.
	htmlParsed bool
	resDone    int
	rendered   bool
}

// completeness estimates the page's visual completeness in [0, 1]: the
// parsed HTML paints the first quarter, each sub-resource a share of the
// rest, and the final render pass completes the frame.
func (l *pageLoad) completeness() float64 {
	if l.rendered {
		return 1
	}
	c := 0.0
	if l.htmlParsed {
		c = 0.25
	}
	if n := len(l.spec.Resources); n > 0 {
		c += 0.65 * float64(l.resDone) / float64(n)
	}
	return c
}

// New builds the browser UI for a profile.
func New(k *simtime.Kernel, stack *netsim.Stack, resolver *netsim.Resolver, prof Profile) *App {
	a := &App{k: k, stack: stack, resolver: resolver, prof: prof, pending: map[string]*pageLoad{}}
	root := uisim.NewView(uisim.ClassView, "com.android.browser:id/root", prof.Name+" root")
	a.Screen = uisim.NewScreen(k, root)

	a.urlBar = uisim.NewView(uisim.ClassEditText, IDURLBar, "url bar")
	a.urlBar.OnEnter = func() { a.LoadPage(a.urlBar.Text()) }
	root.AddChild(a.urlBar)

	a.progress = uisim.NewView(uisim.ClassProgressBar, IDProgress, "page load progress")
	a.progress.SetVisible(false)
	root.AddChild(a.progress)

	a.page = uisim.NewView(uisim.ClassWebView, IDPageView, "page content")
	root.AddChild(a.page)
	return a
}

// OnLoaded registers a page-load completion callback (tests; QoE Doctor
// observes the progress bar instead).
func (a *App) OnLoaded(fn func(url string, at simtime.Time)) { a.onLoaded = fn }

// LoadPage starts loading url ("host/path"). The progress bar shows until
// the HTML and every sub-resource have arrived and rendered. DNS failures
// and load timeouts (Profile.LoadTimeout) are retried with capped
// exponential backoff on a fresh connection pool; after loadRetryMax
// attempts the load is abandoned and the progress bar hidden.
func (a *App) LoadPage(url string) {
	a.loadSpan.End() // defensively close a span from an interrupted load
	a.pageloads.Inc()
	if a.tr != nil {
		id := a.tr.Scope()
		if id == 0 {
			id = a.tr.NewID()
		}
		a.loadSpan = a.tr.Start(obs.LayerApp, "web:pageload", id,
			obs.Attr{Key: "url", Val: url})
	}
	a.loadTries = 0
	a.loadStartedAt = a.k.Now()
	a.startLoad(url)
}

// ActiveLoadAge returns how long the current page load has been running, or
// 0 when no load is active — the stalled-pageload signal runtime
// controllers poll.
func (a *App) ActiveLoadAge(now simtime.Time) time.Duration {
	if a.activeLoad() == nil {
		return 0
	}
	return time.Duration(now - a.loadStartedAt)
}

// ResetConns aborts the connection pool; the next load dials fresh
// connections (exported for runtime path actuation).
func (a *App) ResetConns() { a.resetConns() }

// Repath restarts the active page load on a fresh connection pool with a
// fresh DNS resolution — after a DNS repoint this lands on the new server.
// The load span stays open across the restart, so QoE accounting charges
// the whole wait to the one user action. Returns false when no load is
// active. The retry budget is reset: the controller's intervention should
// not burn the user-visible retry attempts.
func (a *App) Repath() bool {
	load := a.activeLoad()
	if load == nil {
		return false
	}
	a.cancelLoadWatch()
	load.active = false
	host, _ := splitURL(load.url)
	delete(a.pending, host)
	a.resetConns()
	a.loadTries = 0
	a.startLoad(load.url)
	return true
}

func (a *App) startLoad(url string) {
	a.loadTries++
	host, path := splitURL(url)
	a.progress.SetVisible(true)
	load := &pageLoad{url: url, active: true}
	a.pending[host] = load
	a.resolver.Resolve(host, func(addr netip.Addr, ok bool) {
		if !ok {
			load.active = false
			delete(a.pending, host)
			a.retryOrAbandon(url, host)
			return
		}
		if !load.active {
			return // the load watchdog already gave up on this attempt
		}
		a.ensureConns(addr)
		req, _ := json.Marshal(struct {
			Path string `json:"path"`
		}{path})
		a.conns[0].Send(serversim.WebGetPage, req)
	})
	if a.prof.LoadTimeout > 0 {
		a.loadWatch = a.k.After(a.prof.LoadTimeout, func() {
			a.loadWatch = simtime.Event{}
			if !load.active {
				return
			}
			// Attempt timed out: kill the stale connections (in-flight
			// responses on them must not corrupt the next attempt's
			// bookkeeping) and retry from scratch.
			load.active = false
			delete(a.pending, host)
			a.resetConns()
			a.retryOrAbandon(url, host)
		})
	}
}

// retryOrAbandon schedules the next load attempt, or gives up after
// loadRetryMax tries.
func (a *App) retryOrAbandon(url, host string) {
	a.cancelLoadWatch()
	if a.loadTries < loadRetryMax {
		delay := loadRetryBase << (a.loadTries - 1)
		if delay > loadRetryCap {
			delay = loadRetryCap
		}
		a.k.After(delay, func() { a.startLoad(url) })
		return
	}
	a.LoadFailures++
	a.loadFails.Inc()
	a.loadSpan.Attr("failed", "true")
	a.loadSpan.End()
	a.progress.SetVisible(false)
}

func (a *App) cancelLoadWatch() {
	a.loadWatch.Cancel()
	a.loadWatch = simtime.Event{}
}

// resetConns aborts the connection pool; the next load dials fresh ones.
func (a *App) resetConns() {
	for _, mc := range a.conns {
		mc.Conn.Abort()
	}
	a.conns = nil
}

// ensureConns opens the browser's connection pool to the server on first
// use (kept alive across page loads, like real browsers).
func (a *App) ensureConns(addr netip.Addr) {
	if len(a.conns) > 0 {
		return
	}
	for i := 0; i < a.prof.ParallelConns; i++ {
		c := a.stack.Dial(netsim.Endpoint{Addr: addr, Port: 80})
		mc := netsim.NewMsgConn(c)
		mc.OnMessage(a.onMessage)
		a.conns = append(a.conns, mc)
	}
}

func (a *App) onMessage(kind byte, payload []byte) {
	switch kind {
	case serversim.WebPageData:
		spec, ok := serversim.DecodePageSpec(payload)
		if !ok {
			return
		}
		load := a.activeLoad()
		if load == nil {
			return
		}
		load.spec = spec
		load.resLeft = len(spec.Resources)
		parse := a.prof.ParseBase + time.Duration(spec.HTMLBytes/1024)*a.prof.ParsePerKB
		a.Screen.AddAppCPU(parse)
		a.k.After(parse, func() {
			load.htmlParsed = true
			a.page.SetText("loaded html for " + load.url)
			if load.resLeft == 0 {
				a.finishLoad(load)
				return
			}
			// Kick one fetch per connection; each completion pulls the next.
			n := len(a.conns)
			if n > load.resLeft {
				n = load.resLeft
			}
			for i := 0; i < n; i++ {
				a.fetchNextRes(load, i)
			}
		})
	case serversim.WebResData:
		load := a.activeLoad()
		if load == nil {
			return
		}
		load.resLeft--
		load.resDone++
		// Each arrived resource paints: update the page view so the change
		// reaches the screen (and any Speed Index recorder) as a frame.
		a.page.SetText(fmt.Sprintf("%s: %d resources painted", load.url, load.resDone))
		if load.nextRes < len(load.spec.Resources) {
			a.fetchNextRes(load, load.nextRes%len(a.conns))
		} else if load.resLeft == 0 {
			a.finishLoad(load)
		}
	}
}

func (a *App) fetchNextRes(load *pageLoad, connIdx int) {
	if load.nextRes >= len(load.spec.Resources) {
		return
	}
	idx := load.nextRes
	load.nextRes++
	_, path := splitURL(load.url)
	req, _ := json.Marshal(struct {
		Path  string `json:"path"`
		Index int    `json:"index"`
	}{path, idx})
	a.conns[connIdx%len(a.conns)].Send(serversim.WebGetRes, req)
}

func (a *App) finishLoad(load *pageLoad) {
	load.active = false
	a.cancelLoadWatch()
	a.Screen.AddAppCPU(a.prof.RenderDelay)
	a.k.After(a.prof.RenderDelay, func() {
		load.rendered = true
		a.page.SetText("rendered " + load.url)
		a.loadSpan.End()
		a.progress.SetVisible(false)
		if a.onLoaded != nil {
			a.onLoaded(load.url, a.k.Now())
		}
	})
}

// Completeness reports the visual completeness of what is on screen: 1 when
// no load is active, the active load's paint progress otherwise. It is the
// screen-content signal a Speed Index frame recorder samples.
func (a *App) Completeness() float64 {
	if l := a.activeLoad(); l != nil {
		return l.completeness()
	}
	// A finished load may still be waiting for its final render pass.
	for _, l := range a.pending {
		if !l.active && !l.rendered {
			return l.completeness()
		}
	}
	return 1
}

func (a *App) activeLoad() *pageLoad {
	for _, l := range a.pending {
		if l.active {
			return l
		}
	}
	return nil
}

// splitURL splits "host/path..." into host and "/path...". A bare host gets
// path "/".
func splitURL(url string) (host, path string) {
	url = strings.TrimPrefix(url, "http://")
	url = strings.TrimPrefix(url, "https://")
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[:i], url[i:]
	}
	return url, "/"
}
