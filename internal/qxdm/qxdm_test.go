package qxdm

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/radio"
	"repro/internal/simtime"
)

func fixture(t *testing.T, prof *radio.Profile, payloadBytes int) *Log {
	t.Helper()
	k := simtime.NewKernel(42)
	b := radio.NewBearer(k, prof)
	m := Attach(b)
	b.SendUplink(make([]byte, payloadBytes), nil)
	b.SendDownlink(make([]byte, payloadBytes), nil)
	k.Run()
	return m.Log()
}

func TestMonitorLogsPDUsAndTransitions(t *testing.T) {
	l := fixture(t, radio.Profile3G(), 4000)
	if len(l.PDUs) == 0 {
		t.Fatal("no PDUs logged")
	}
	if len(l.Transitions) == 0 {
		t.Fatal("no transitions logged")
	}
	if len(l.Statuses) == 0 {
		t.Fatal("no STATUS PDUs logged")
	}
	if l.Profile != "C1-3G" {
		t.Fatalf("profile = %q", l.Profile)
	}
	// Timestamps nondecreasing.
	for i := 1; i < len(l.PDUs); i++ {
		if l.PDUs[i].At < l.PDUs[i-1].At {
			t.Fatal("PDU log out of time order")
		}
	}
	// Both directions present.
	var ul, dl int
	for _, p := range l.PDUs {
		if p.Dir == radio.Uplink {
			ul++
		} else {
			dl++
		}
	}
	if ul == 0 || dl == 0 {
		t.Fatalf("directions missing: ul=%d dl=%d", ul, dl)
	}
}

func TestCaptureLossRates(t *testing.T) {
	prof := radio.Profile3G()
	prof.CaptureLossDL = 0.10
	prof.CaptureLossUL = 0
	k := simtime.NewKernel(7)
	b := radio.NewBearer(k, prof)
	m := Attach(b)
	for i := 0; i < 200; i++ {
		b.SendDownlink(make([]byte, 4800), nil) // 10 PDUs each
	}
	k.Run()
	l := m.Log()
	if l.Missed[radio.Uplink] != 0 {
		t.Fatalf("uplink misses at 0 loss: %d", l.Missed[radio.Uplink])
	}
	missedDL := l.Missed[radio.Downlink]
	total := missedDL + countDir(l, radio.Downlink)
	frac := float64(missedDL) / float64(total)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("downlink capture loss = %.3f over %d PDUs, want ~0.10", frac, total)
	}
}

func countDir(l *Log, d radio.Direction) int {
	n := 0
	for _, p := range l.PDUs {
		if p.Dir == d {
			n++
		}
	}
	return n
}

func TestLogFileRoundtrip(t *testing.T) {
	l := fixture(t, radio.ProfileLTE(), 3000)
	path := filepath.Join(t.TempDir(), "qxdm.json")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PDUs) != len(l.PDUs) || len(got.Transitions) != len(l.Transitions) ||
		len(got.Statuses) != len(l.Statuses) || got.Profile != l.Profile {
		t.Fatal("roundtrip lost records")
	}
	a, b := got.PDUs[0], l.PDUs[0]
	if a.At != b.At || a.Seq != b.Seq || a.Size != b.Size || a.Head != b.Head {
		t.Fatalf("first PDU mismatch: %+v vs %+v", a, b)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestSetEnabledAndReset(t *testing.T) {
	prof := radio.ProfileWiFi()
	k := simtime.NewKernel(1)
	b := radio.NewBearer(k, prof)
	m := Attach(b)
	b.SendUplink(make([]byte, 1000), nil)
	k.Run()
	if len(m.Log().PDUs) == 0 {
		t.Fatal("nothing logged while enabled")
	}
	m.SetEnabled(false)
	before := len(m.Log().PDUs)
	b.SendUplink(make([]byte, 1000), nil)
	k.Run()
	if len(m.Log().PDUs) != before {
		t.Fatal("logged while disabled")
	}
	m.Reset()
	if len(m.Log().PDUs) != 0 || m.Log().Profile != "WiFi" {
		t.Fatal("Reset wrong")
	}
}

func TestPDURecordsPreserveLIAndPoll(t *testing.T) {
	prof := radio.Profile3G()
	prof.PDULossProb = 0
	prof.CaptureLossUL = 0
	k := simtime.NewKernel(1)
	b := radio.NewBearer(k, prof)
	m := Attach(b)
	b.SendUplink(make([]byte, 100), nil) // 3 PDUs: 40+40+20, LI on last
	k.Run()
	l := m.Log()
	if len(l.PDUs) != 3 {
		t.Fatalf("got %d PDUs", len(l.PDUs))
	}
	last := l.PDUs[2]
	if len(last.LI) != 1 || last.LI[0] != 20 {
		t.Fatalf("LI not preserved: %+v", last)
	}
	if !last.Poll {
		t.Fatal("final PDU poll bit not preserved")
	}
}
