// Package qxdm simulates the Qualcomm eXtensible Diagnostic Monitor used by
// QoE Doctor to collect radio-link-layer data (§4.3.3). Like the real tool,
// it logs RRC state transitions and RLC PDUs — and like the real tool it has
// two limitations the analyzer must cope with: only the first 2 payload
// bytes of each PDU are recorded, and a small fraction of PDUs are missed
// entirely (which is why the paper's IP-to-RLC mapping reaches 99.52% on the
// uplink and 88.83% on the downlink, not 100%).
package qxdm

import (
	"encoding/json"
	"io"
	"os"

	"repro/internal/radio"
	"repro/internal/simtime"
)

// PDURecord is what QxDM logs per data PDU.
type PDURecord struct {
	At   simtime.Time    `json:"at"`
	Dir  radio.Direction `json:"dir"`
	Seq  uint32          `json:"seq"`
	Size int             `json:"size"`
	Head [2]byte         `json:"head"` // first 2 payload bytes only
	LI   []int           `json:"li,omitempty"`
	Poll bool            `json:"poll,omitempty"`
	Retx bool            `json:"retx,omitempty"`
}

// StatusRecord is one logged ARQ STATUS PDU.
type StatusRecord struct {
	At     simtime.Time    `json:"at"`
	Dir    radio.Direction `json:"dir"` // direction of the data flow acknowledged
	AckSeq uint32          `json:"ack"`
	Nack   []uint32        `json:"nack,omitempty"`
}

// TransitionRecord is one logged RRC state change.
type TransitionRecord struct {
	At        simtime.Time `json:"at"`
	From      radio.State  `json:"from"`
	To        radio.State  `json:"to"`
	Promotion bool         `json:"promotion"`
}

// HandoverRecord is one logged serving-cell change (connected-mode
// handover or idle-mode reselection).
type HandoverRecord struct {
	At          simtime.Time `json:"at"`
	From        int          `json:"from"`
	To          int          `json:"to"`
	Reselection bool         `json:"reselection,omitempty"`
	// InterruptionNs is the data-plane stall in nanoseconds (0 for
	// reselections).
	InterruptionNs int64 `json:"interruption_ns,omitempty"`
}

// Log is a complete QxDM session log.
type Log struct {
	Profile     string             `json:"profile"`
	Transitions []TransitionRecord `json:"transitions"`
	PDUs        []PDURecord        `json:"pdus"`
	Statuses    []StatusRecord     `json:"statuses"`
	Handovers   []HandoverRecord   `json:"handovers,omitempty"`
	// Missed counts PDUs the monitor failed to capture, by direction
	// (ground truth the analyzer does not get to see; exported for tests).
	Missed [2]int `json:"missed"`
}

// Monitor implements radio.Monitor, recording into a Log with per-direction
// capture-loss probabilities.
type Monitor struct {
	k       *simtime.Kernel
	log     *Log
	lossUL  float64
	lossDL  float64
	enabled bool
}

// Attach creates a monitor wired to the bearer, with capture-loss rates
// taken from the bearer's profile.
func Attach(b *radio.Bearer) *Monitor {
	prof := b.Profile()
	m := &Monitor{
		k:       b.Kernel(),
		log:     &Log{Profile: prof.Name},
		lossUL:  prof.CaptureLossUL,
		lossDL:  prof.CaptureLossDL,
		enabled: true,
	}
	b.Attach(m)
	return m
}

// SetEnabled pauses or resumes logging.
func (m *Monitor) SetEnabled(on bool) { m.enabled = on }

// Log returns the accumulated log.
func (m *Monitor) Log() *Log { return m.log }

// Reset starts a fresh log (between experiment repetitions).
func (m *Monitor) Reset() {
	m.log = &Log{Profile: m.log.Profile}
}

// RRCTransition implements radio.Monitor.
func (m *Monitor) RRCTransition(tr radio.Transition) {
	if !m.enabled {
		return
	}
	m.log.Transitions = append(m.log.Transitions, TransitionRecord{
		At: tr.At, From: tr.From, To: tr.To, Promotion: tr.Promotion,
	})
}

// DataPDU implements radio.Monitor, applying capture loss and the 2-byte
// payload truncation.
func (m *Monitor) DataPDU(p *radio.PDU) {
	if !m.enabled {
		return
	}
	loss := m.lossUL
	if p.Dir == radio.Downlink {
		loss = m.lossDL
	}
	if loss > 0 && m.k.Rand().Float64() < loss {
		m.log.Missed[p.Dir]++
		return
	}
	m.log.PDUs = append(m.log.PDUs, PDURecord{
		At: p.SentAt, Dir: p.Dir, Seq: p.Seq, Size: p.Size, Head: p.Head,
		LI: append([]int(nil), p.LI...), Poll: p.Poll, Retx: p.Retx,
	})
}

// Handover implements radio.HandoverMonitor, logging serving-cell changes
// the way QxDM logs RRC signaling.
func (m *Monitor) Handover(ev radio.HandoverEvent) {
	if !m.enabled {
		return
	}
	m.log.Handovers = append(m.log.Handovers, HandoverRecord{
		At: ev.At, From: ev.From, To: ev.To,
		Reselection:    ev.Reselection,
		InterruptionNs: int64(ev.Interruption),
	})
}

// StatusPDU implements radio.Monitor.
func (m *Monitor) StatusPDU(st radio.StatusPDU) {
	if !m.enabled {
		return
	}
	m.log.Statuses = append(m.log.Statuses, StatusRecord{
		At: st.At, Dir: st.Dir, AckSeq: st.AckSeq,
		Nack: append([]uint32(nil), st.Nack...),
	})
}

// Write serializes the log as JSON.
func (l *Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(l)
}

// WriteFile writes the log to path.
func (l *Log) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a log written by Write.
func Read(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, err
	}
	return &l, nil
}

// ReadFile reads a log from path.
func ReadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
