package qoestore

import "math"

// The histogram grid is log-scale and scheme-fixed: every histogram, fine
// or coarse, buckets values over [histMin, histMax) with bin edges at
// histMin * growth^i. Fixing the grid (rather than per-histogram bounds)
// makes coarsening a pure fold — a coarse bin covers an aligned group of
// fine bins — so histograms written under different overload modes merge
// without resampling error beyond bin width.
const (
	histMin = 1e-4 // 0.1 ms / 0.0001 of a ratio: everything below lands in bin 0
	histMax = 1e5  // everything at or above lands in the last bin

	// FineBins is the normal-mode resolution: ~±17% relative error per bin
	// over nine decades. CoarseFold is the degraded-mode fold factor:
	// coarse histograms carry FineBins/CoarseFold bins (~±91% per bin),
	// one quarter of the memory and merge cost.
	FineBins   = 64
	CoarseFold = 4
)

// decades spanned by the grid, used to derive the per-bin growth factor.
var histDecades = math.Log10(histMax / histMin)

// hist is a fixed-bin log-scale histogram on the shared grid. fold is 1
// for fine histograms and CoarseFold for coarse ones; counts has
// FineBins/fold entries.
type hist struct {
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
	fold   int
}

func newHist(fold int) *hist {
	if fold < 1 {
		fold = 1
	}
	return &hist{counts: make([]uint64, FineBins/fold), fold: fold, min: math.Inf(1), max: math.Inf(-1)}
}

// binOf maps a value to a fine-grid bin index.
func binOf(v float64) int {
	if v <= histMin {
		return 0
	}
	i := int(math.Log10(v/histMin) / histDecades * FineBins)
	if i >= FineBins {
		return FineBins - 1
	}
	return i
}

// binEdge returns the lower edge of fine-grid bin i.
func binEdge(i int) float64 { return histMin * math.Pow(10, histDecades*float64(i)/FineBins) }

// binMid returns the geometric midpoint of fine-grid bins [lo, hi] — the
// representative value reported for quantiles landing in that range.
func binMid(lo, hi int) float64 {
	return math.Sqrt(binEdge(lo) * binEdge(hi+1))
}

// observe records one value (weight w, for replaying merged bins).
func (h *hist) observe(v float64, w uint64) {
	if w == 0 {
		return
	}
	h.counts[binOf(v)/h.fold] += w
	h.n += w
	h.sum += v * float64(w)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// mergeInto folds this histogram into dst. dst's fold must be >= h's fold
// (you can only lose resolution); binAt verifies grid alignment.
func (h *hist) mergeInto(dst *hist) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		fine := i * h.fold // first fine bin covered by source bin i
		dst.counts[fine/dst.fold] += c
	}
	dst.n += h.n
	dst.sum += h.sum
	if h.min < dst.min {
		dst.min = h.min
	}
	if h.max > dst.max {
		dst.max = h.max
	}
}

// quantile returns the value at rank q in [0,1]: the geometric midpoint of
// the bin where the cumulative count crosses q*n, clamped to the observed
// min/max so degenerate single-value histograms answer exactly.
func (h *hist) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := binMid(i*h.fold, (i+1)*h.fold-1)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// mean returns the exact running mean (the sum is tracked outside the
// bins, so it has no quantization error).
func (h *hist) mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// fracAbove returns the fraction of observations strictly above v,
// log-interpolated within the bin containing v and clamped by the observed
// min/max so degenerate histograms (all samples equal, or v outside the
// observed range) answer exactly. This is the burn-rate primitive: an SLO's
// bad fraction is fracAbove(threshold).
func (h *hist) fracAbove(v float64) float64 {
	if h.n == 0 || v >= h.max {
		return 0
	}
	if v < h.min {
		return 1
	}
	cb := binOf(v) / h.fold
	var above uint64
	for i := cb + 1; i < len(h.counts); i++ {
		above += h.counts[i]
	}
	// Split the containing bin at v's log-scale position across its span.
	lo, hi := binEdge(cb*h.fold), binEdge((cb+1)*h.fold)
	frac := 1.0
	if hi > lo && v > lo {
		p := math.Log(v/lo) / math.Log(hi/lo)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		frac = 1 - p
	}
	return (float64(above) + frac*float64(h.counts[cb])) / float64(h.n)
}
