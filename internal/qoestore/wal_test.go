package qoestore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func ev(source string, seq uint64, at time.Duration, metric string, v float64) Event {
	return Event{Source: source, Seq: seq, At: at, Cell: "c0", Workload: "browse", Metric: metric, Value: v}
}

func TestEventCodecRoundTrip(t *testing.T) {
	events := []Event{
		ev("fleet-1/ue0", 1, 90*time.Second, "pageload_s", 1.25),
		{Source: "s", Seq: 18446744073709551615, At: 0, Metric: "m", Value: -3.5},
		{Source: "s2", Seq: 7, At: time.Hour, Cell: "pf", Workload: "youtube", Cohort: "edge", Metric: "rebuffer_ratio", Value: 0.031},
	}
	for _, want := range events {
		got, err := decodeEvent(want.encode(nil))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestEventDecodeRejectsTrailingGarbage(t *testing.T) {
	e := ev("s", 1, 0, "m", 1)
	if _, err := decodeEvent(append(e.encode(nil), 0xff)); err == nil {
		t.Fatal("decode accepted trailing garbage")
	}
	if _, err := decodeEvent(e.encode(nil)[:3]); err == nil {
		t.Fatal("decode accepted truncated payload")
	}
}

// replayAll recovers the WAL in dir, collecting every replayed event.
func replayAll(t *testing.T, dir string) ([]Event, *RecoveryStats) {
	t.Helper()
	var got []Event
	w, st, err := openWAL(dir, 0, false, func(e Event) { got = append(got, e) })
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return got, st
}

func TestWALAppendRecover(t *testing.T) {
	dir := t.TempDir()
	w, st, err := openWAL(dir, 0, false, func(Event) { t.Fatal("fresh dir replayed an event") })
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || st.Records != 0 {
		t.Fatalf("fresh dir stats = %+v", st)
	}
	batch := []Event{ev("a", 1, time.Second, "m", 1), ev("a", 2, 2*time.Second, "m", 2)}
	if err := w.append(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, dir)
	if st.Records != 2 || st.TornBytes != 0 || st.CorruptSegments != 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
	if len(got) != 2 || got[0] != batch[0] || got[1] != batch[1] {
		t.Fatalf("replayed %+v, want %+v", got, batch)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 0, false, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]Event{ev("a", 1, 0, "m", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a partial frame: a plausible length header
	// with only half the payload behind it.
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	got, st := replayAll(t, dir)
	if len(got) != 1 || st.Records != 1 {
		t.Fatalf("replayed %d events (stats %+v), want 1", len(got), st)
	}
	if st.TornBytes != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(torn))
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("segment not truncated: %d -> %d", before.Size(), after.Size())
	}

	// Recovery is idempotent: a crash immediately after the repair (or
	// during it, since truncation is the only write) recovers identically.
	got2, st2 := replayAll(t, dir)
	if len(got2) != 1 || st2.TornBytes != 0 {
		t.Fatalf("second recovery: %d events, stats %+v", len(got2), st2)
	}
}

func TestWALTornTailMidFrame(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 0, false, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]Event{ev("a", 1, 0, "m", 1), ev("a", 2, 0, "m", 2)}); err != nil {
		t.Fatal(err)
	}
	size := w.size
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Cut the file 3 bytes short: the second frame loses its CRC'd tail.
	path := filepath.Join(dir, segmentName(1))
	if err := os.Truncate(path, size-3); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("replayed %+v, want only seq 1", got)
	}
	if st.TornBytes == 0 {
		t.Fatal("expected torn bytes from the cut frame")
	}
}

func TestWALMidSegmentCorruptionSkipsToNextSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment cap so every append rotates into a new segment.
	w, _, err := openWAL(dir, 1, false, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.append([]Event{ev("a", seq, 0, "m", float64(seq))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the first segment: its record is lost, but
	// recovery must keep replaying the later segments.
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, dir)
	if st.CorruptSegments != 1 {
		t.Fatalf("CorruptSegments = %d, want 1 (stats %+v)", st.CorruptSegments, st)
	}
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("replayed %+v, want seqs 2,3", got)
	}
}

func TestWALEmptySegmentRecovers(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 0, false, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]Event{ev("a", 1, 0, "m", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// A crash between segment creation and header write leaves a 0-byte
	// final segment.
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []Event
	w2, st, err := openWAL(dir, 0, false, func(e Event) { got = append(got, e) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || st.Segments != 2 {
		t.Fatalf("replayed %d events over %d segments, want 1 over 2", len(got), st.Segments)
	}
	// The empty segment must be appendable after its header is repaired.
	if err := w2.append([]Event{ev("a", 2, 0, "m", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}
	got2, _ := replayAll(t, dir)
	if len(got2) != 2 {
		t.Fatalf("after repair+append replayed %d events, want 2", len(got2))
	}
}

func TestWALValidFrameBadPayloadSkipped(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 0, false, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]Event{ev("a", 1, 0, "m", 1)}); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a frame whose CRC is fine but whose payload is not an
	// event (a foreign or future record type).
	payload := []byte("not an event")
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		t.Fatal(err)
	}
	w.size += int64(len(frame))
	if err := w.append([]Event{ev("a", 2, 0, "m", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, dir)
	if len(got) != 2 || st.Invalid != 1 {
		t.Fatalf("replayed %d events, Invalid=%d; want 2 and 1", len(got), st.Invalid)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir, 256, false, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 50; seq++ {
		if err := w.append([]Event{ev("src", seq, time.Duration(seq)*time.Second, "m", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	got, _ := replayAll(t, dir)
	if len(got) != 50 {
		t.Fatalf("replayed %d events across segments, want 50", len(got))
	}
}
