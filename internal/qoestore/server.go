package qoestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ServerConfig tunes the HTTP front end.
type ServerConfig struct {
	// MaxConcurrentQueries bounds in-flight /query requests; excess load
	// is shed with 503 instead of piling onto the store lock (default 16).
	MaxConcurrentQueries int
	// QueryTimeout bounds one query's wall time (default 2s).
	QueryTimeout time.Duration
	// Metrics receives the server's shed/timeout counters and is served
	// at /metricz (falls back to the store's registry view when nil).
	Metrics *obs.Registry
	// Log receives one structured record per ingest and query request
	// (source, seq span, cell, status); nil disables request logging.
	Log *slog.Logger
}

// Server is the HTTP/JSON API over a Store:
//
//	POST /ingest      {"events":[...]}            → IngestReceipt | 429
//	GET  /query?metric=...&cell=...&q=0.5,0.99    → QueryResult   | 503
//	GET  /healthz                                 → 200 (process liveness)
//	GET  /readyz                                  → 200 after recovery, 503 when closed/overloaded
//	GET  /statz                                   → recovery + robustness counters
//	GET  /metricz                                 → obs registry snapshot (NDJSON)
type Server struct {
	store *Store
	cfg   ServerConfig
	mux   *http.ServeMux
	sem   chan struct{}

	cShed       atomic.Uint64 // queries shed by the concurrency guard
	cTimeout    atomic.Uint64 // queries that hit the timeout
	cQueries    atomic.Uint64
	cIngests    atomic.Uint64
	cRetryAfter atomic.Uint64 // 429 responses issued
}

// NewServer wraps store with the HTTP API.
func NewServer(store *Store, cfg ServerConfig) *Server {
	if cfg.MaxConcurrentQueries <= 0 {
		cfg.MaxConcurrentQueries = 16
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	s := &Server{store: store, cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrentQueries)}
	if m := cfg.Metrics; m != nil {
		m.CounterFunc("qoeserve_queries", s.cQueries.Load)
		m.CounterFunc("qoeserve_queries_shed", s.cShed.Load)
		m.CounterFunc("qoeserve_queries_timeout", s.cTimeout.Load)
		m.CounterFunc("qoeserve_ingest_requests", s.cIngests.Load)
		m.CounterFunc("qoeserve_backpressure_429", s.cRetryAfter.Load)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, 200, map[string]string{"status": "ok"}) })
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statz", s.handleStats)
	mux.HandleFunc("GET /metricz", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the root handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// ingestBody is the /ingest request payload.
type ingestBody struct {
	Events []Event `json:"events"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.cIngests.Add(1)
	var body ingestBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad ingest body: %w", err))
		return
	}
	if len(body.Events) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("ingest body has no events"))
		return
	}
	rec, err := s.store.Ingest(body.Events)
	status := http.StatusOK
	switch {
	case errors.Is(err, ErrBackpressure):
		s.cRetryAfter.Add(1)
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.store.QueueFill())))
		writeErr(w, status, err)
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
		writeErr(w, status, err)
	case err != nil:
		status = http.StatusBadRequest
		writeErr(w, status, err)
	default:
		writeJSON(w, status, rec)
	}
	if s.cfg.Log != nil {
		first, last := body.Events[0], body.Events[len(body.Events)-1]
		s.cfg.Log.Info("ingest",
			"source", first.Source, "first_seq", first.Seq, "last_seq", last.Seq,
			"cell", first.Cell, "events", len(body.Events), "status", status,
			"accepted", rec.Accepted, "dups", rec.Dups, "shed", rec.Shed)
	}
}

// retryAfterSeconds scales the 429 Retry-After hint with queue depth: a
// barely-full queue asks for 1s, a saturated one for up to 5s, so a fleet
// of emitters spreads its retries instead of hammering a drowning store in
// lockstep. Emitters honor the hint as their backoff floor.
func retryAfterSeconds(fill float64) int {
	if fill < 0 {
		fill = 0
	}
	if fill > 1 {
		fill = 1
	}
	return 1 + int(fill*4)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Add(1)
	// Load-shedding guard: queries must stay cheap while ingest is hot,
	// so excess concurrency is refused immediately rather than queued.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.cShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, errors.New("query load shed, retry"))
		return
	}

	q, err := parseQuery(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	type out struct {
		res QueryResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := s.store.Run(q)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			writeErr(w, http.StatusBadRequest, o.err)
			return
		}
		writeJSON(w, http.StatusOK, o.res)
		if s.cfg.Log != nil {
			s.cfg.Log.Info("query", "metric", q.Metric, "cell", q.Cell,
				"workload", q.Workload, "count", o.res.Count, "status", http.StatusOK)
		}
	case <-time.After(s.cfg.QueryTimeout):
		s.cTimeout.Add(1)
		writeErr(w, http.StatusGatewayTimeout, errors.New("query timed out"))
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, r.Context().Err())
	}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	// Open returns only after recovery, so an existing store is ready
	// unless it has been closed or its WAL is failing.
	st := s.store.Stats()
	if s.store.closedNow() {
		writeErr(w, http.StatusServiceUnavailable, ErrClosed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ready",
		"degraded":   s.store.Degraded(),
		"wal_errors": st.WALErrors,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"recovery": s.store.Recovery(),
		"store":    s.store.Stats(),
		"server": map[string]uint64{
			"queries":          s.cQueries.Load(),
			"queries_shed":     s.cShed.Load(),
			"queries_timeout":  s.cTimeout.Load(),
			"ingest_requests":  s.cIngests.Load(),
			"backpressure_429": s.cRetryAfter.Load(),
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.cfg.Metrics
	if m == nil {
		m = s.store.cfg.Metrics
	}
	if m == nil {
		writeErr(w, http.StatusNotFound, errors.New("no metrics registry attached"))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = m.Snapshot().WriteNDJSON(w)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.Snapshot().WritePrometheus(w)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (ndjson | prometheus)", format))
	}
}

// closedNow reports the intake state for readiness.
func (s *Store) closedNow() bool {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	return s.closed
}

// parseQuery maps URL parameters onto a Query.
func parseQuery(r *http.Request) (Query, error) {
	v := r.URL.Query()
	q := Query{
		Metric:   v.Get("metric"),
		Cell:     v.Get("cell"),
		Workload: v.Get("workload"),
		Cohort:   v.Get("cohort"),
	}
	if q.Metric == "" {
		return q, errors.New("missing ?metric=")
	}
	parseDur := func(name string) (time.Duration, error) {
		raw := v.Get(name)
		if raw == "" {
			return 0, nil
		}
		if ns, err := strconv.ParseInt(raw, 10, 64); err == nil {
			return time.Duration(ns), nil
		}
		d, err := time.ParseDuration(raw)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q (want ns or a duration like 5m)", name, raw)
		}
		return d, nil
	}
	var err error
	if q.From, err = parseDur("from"); err != nil {
		return q, err
	}
	if q.To, err = parseDur("to"); err != nil {
		return q, err
	}
	if raw := v.Get("q"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || f < 0 || f > 1 {
				return q, fmt.Errorf("bad quantile %q (want 0..1)", part)
			}
			q.Quantiles = append(q.Quantiles, f)
		}
	} else {
		q.Quantiles = []float64{0.5, 0.95, 0.99}
	}
	return q, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
