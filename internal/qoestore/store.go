package qoestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrBackpressure is returned by Ingest when the bounded ingest queue is
// full: the caller should back off and retry (the HTTP layer maps it to
// 429). Nothing from the rejected batch was accepted.
var ErrBackpressure = errors.New("qoestore: ingest queue full, back off and retry")

// ErrClosed is returned by Ingest after Close (or a chaos kill). Queries
// keep answering from the frozen in-memory state.
var ErrClosed = errors.New("qoestore: store is closed")

// Config tunes a Store. The zero value of every field selects a sensible
// default.
type Config struct {
	// Window is the event-time width of one aggregation window (default
	// 1 minute of virtual time).
	Window time.Duration
	// Retain bounds how many windows are kept (default 240). Older
	// windows are evicted oldest-first — this, plus the bounded queue, is
	// the store's memory ceiling under overload.
	Retain int
	// QueueDepth bounds the ingest queue in batches (default 256). A full
	// queue rejects with ErrBackpressure.
	QueueDepth int
	// DegradeHigh and DegradeLow are load watermarks with hysteresis,
	// measured as (commit group + queued batches) / QueueDepth: at or
	// above High the store enters degraded mode (sampled ingest, coarse
	// bins for new histograms); at or below Low it returns to normal.
	// Defaults 0.75 / 0.25.
	DegradeHigh, DegradeLow float64
	// SampleK is the degraded-mode sampling rate: 1 of every K events is
	// kept (default 4). Sampling happens before the WAL, so shed events
	// are never acknowledged as durable — the receipt reports them.
	SampleK int
	// MaxSegmentBytes rotates WAL segments (default 4 MiB).
	MaxSegmentBytes int64
	// NoSync skips the per-batch fsync (benchmarks; forfeits crash
	// safety, which is the point of having a flag to measure it).
	NoSync bool
	// Metrics receives the store's drop/shed/recovery counters and
	// queue-depth gauges. Nil detaches them for free (obs nil-safety).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Retain <= 0 {
		c.Retain = 240
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DegradeHigh <= 0 || c.DegradeHigh > 1 {
		c.DegradeHigh = 0.75
	}
	if c.DegradeLow <= 0 || c.DegradeLow >= c.DegradeHigh {
		c.DegradeLow = c.DegradeHigh / 3
	}
	if c.SampleK <= 1 {
		c.SampleK = 4
	}
	return c
}

// ingestAck is the writer's per-batch receipt.
type ingestAck struct {
	err  error
	dups int // events skipped as duplicates (already applied)
	shed int // events shed by degraded-mode sampling (not durable)
}

type ingestReq struct {
	events []Event
	done   chan ingestAck
}

// StoreStats are the store's cumulative robustness counters, also
// published through the obs registry as qoestore_* metrics.
type StoreStats struct {
	Acked     uint64 `json:"acked"`    // events durably applied
	Dups      uint64 `json:"dups"`     // events deduplicated (live or replay)
	Rejected  uint64 `json:"rejected"` // events rejected with backpressure
	Shed      uint64 `json:"shed"`     // events sampled out under overload
	Evicted   uint64 `json:"evicted"`  // windows evicted by retention
	Degraded  uint64 `json:"degraded"` // transitions into degraded mode
	WALErrors uint64 `json:"wal_errors"`
}

// Store is the WAL-backed windowed aggregation engine. Ingest may be
// called from any goroutine; a single writer goroutine owns the WAL and
// serializes application, and queries take a short lock over the window
// index.
type Store struct {
	cfg      Config
	recovery RecoveryStats

	// qmu serializes enqueue against Close so a send never races the
	// channel close; closed is checked under its read lock.
	qmu    sync.RWMutex
	reqs   chan *ingestReq
	closed bool
	killed atomic.Bool
	wg     sync.WaitGroup

	wal *wal // owned by the writer goroutine until it exits

	// mu guards the aggregation state below (writer applies, queries read).
	mu       sync.Mutex
	windows  map[int64]*window
	winOrder []int64 // ascending window indexes, for range scans + eviction
	lastSeq  map[string]uint64
	degraded bool
	sampleN  uint64

	cAcked, cDup, cRejected, cShed  atomic.Uint64
	cEvicted, cDegraded, cWALErrors atomic.Uint64
}

// window is one event-time window's keyed histograms.
type window struct {
	hists map[Key]*hist
}

// Open recovers the WAL in dir (truncating a torn tail, replaying all
// acked events idempotently) and starts the ingest writer. The returned
// store is ready: recovery completes before Open returns.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		reqs:    make(chan *ingestReq, cfg.QueueDepth),
		windows: make(map[int64]*window),
		lastSeq: make(map[string]uint64),
	}

	w, st, err := openWAL(dir, cfg.MaxSegmentBytes, cfg.NoSync, func(ev Event) {
		// Recovery runs before the writer starts; apply without the lock
		// contention-free. Dedup here is what makes replay idempotent
		// when retried batches were logged twice.
		if s.apply(ev, false) {
			st := &s.recovery
			st.Applied++
		} else {
			s.recovery.Dups++
		}
	})
	if err != nil {
		return nil, err
	}
	s.wal = w
	st.Applied, st.Dups = s.recovery.Applied, s.recovery.Dups
	s.recovery = *st
	s.cDup.Add(uint64(st.Dups))

	if m := cfg.Metrics; m != nil {
		m.CounterFunc("qoestore_events_acked", s.cAcked.Load)
		m.CounterFunc("qoestore_events_dup", s.cDup.Load)
		m.CounterFunc("qoestore_events_rejected", s.cRejected.Load)
		m.CounterFunc("qoestore_events_shed", s.cShed.Load)
		m.CounterFunc("qoestore_windows_evicted", s.cEvicted.Load)
		m.CounterFunc("qoestore_degraded_transitions", s.cDegraded.Load)
		m.CounterFunc("qoestore_wal_errors", s.cWALErrors.Load)
		m.CounterFunc("qoestore_recovered_records", func() uint64 { return uint64(s.recovery.Records) })
		m.GaugeFunc("qoestore_ingest_queue", func() float64 { return float64(len(s.reqs)) })
		m.GaugeFunc("qoestore_windows", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.windows))
		})
		m.GaugeFunc("qoestore_degraded", func() float64 {
			if s.Degraded() {
				return 1
			}
			return 0
		})
	}

	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Recovery returns what opening the WAL found and repaired.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Stats returns the cumulative robustness counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Acked:     s.cAcked.Load(),
		Dups:      s.cDup.Load(),
		Rejected:  s.cRejected.Load(),
		Shed:      s.cShed.Load(),
		Evicted:   s.cEvicted.Load(),
		Degraded:  s.cDegraded.Load(),
		WALErrors: s.cWALErrors.Load(),
	}
}

// IngestReceipt acknowledges a durable batch.
type IngestReceipt struct {
	Accepted int `json:"accepted"` // newly applied and durable
	Dups     int `json:"dups"`     // deduplicated (seen before; still durable)
	Shed     int `json:"shed"`     // sampled out under overload (not durable)
}

// Ingest submits a batch. It returns only after the batch is durable
// (WAL-appended and fsynced) and applied — or immediately with
// ErrBackpressure when the bounded queue is full, in which case nothing
// was accepted. The receipt reports how many events were deduplicated or
// shed by degraded-mode sampling, so emitters can account for loss.
func (s *Store) Ingest(events []Event) (IngestReceipt, error) {
	for i := range events {
		if err := events[i].validate(); err != nil {
			return IngestReceipt{}, err
		}
	}
	req := &ingestReq{events: events, done: make(chan ingestAck, 1)}

	s.qmu.RLock()
	if s.closed {
		s.qmu.RUnlock()
		return IngestReceipt{}, ErrClosed
	}
	select {
	case s.reqs <- req:
		s.qmu.RUnlock()
	default:
		s.qmu.RUnlock()
		s.cRejected.Add(uint64(len(events)))
		return IngestReceipt{}, ErrBackpressure
	}

	ack := <-req.done
	if ack.err != nil {
		return IngestReceipt{}, ack.err
	}
	return IngestReceipt{Accepted: len(events) - ack.dups - ack.shed, Dups: ack.dups, Shed: ack.shed}, nil
}

// writer is the single goroutine owning the WAL: it drains the queue in
// group-commit batches (one fsync covers every request in the group),
// applies events, and acks.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.reqs {
		batch := []*ingestReq{req}
	drain:
		for len(batch) < 64 {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if s.killed.Load() {
			// Simulated hard kill: queued work is abandoned un-acked,
			// exactly as a SIGKILL would leave callers hanging.
			s.fail(batch, ErrClosed)
			continue
		}
		// Instantaneous load: the group in hand plus what queued behind it,
		// over the queue's capacity. Including the group means a backlog
		// being drained still reads as load even at the moment the channel
		// itself is briefly empty.
		load := float64(len(batch)+len(s.reqs)) / float64(cap(s.reqs))
		s.commit(batch, load)
	}
}

// commit makes one group durable and applies it.
func (s *Store) commit(batch []*ingestReq, load float64) {
	s.mu.Lock()
	s.updateMode(load)
	degraded := s.degraded
	sampleK := uint64(s.cfg.SampleK)

	// Degraded-mode sampling happens before the WAL: shed events are
	// neither durable nor acknowledged as applied, and the receipt says
	// so — bounded, explicit loss instead of an unbounded queue.
	acks := make([]ingestAck, len(batch))
	var toLog []Event
	for bi, req := range batch {
		for _, ev := range req.events {
			if degraded {
				s.sampleN++
				if s.sampleN%sampleK != 0 {
					acks[bi].shed++
					s.cShed.Add(1)
					continue
				}
			}
			toLog = append(toLog, ev)
		}
	}
	s.mu.Unlock()

	if err := s.wal.append(toLog); err != nil {
		s.cWALErrors.Add(1)
		s.fail(batch, fmt.Errorf("qoestore: wal append: %w", err))
		return
	}

	s.mu.Lock()
	li := 0
	for bi, req := range batch {
		kept := len(req.events) - acks[bi].shed
		for ; kept > 0; kept-- {
			if s.apply(toLog[li], degraded) {
				s.cAcked.Add(1)
			} else {
				acks[bi].dups++
				s.cDup.Add(1)
			}
			li++
		}
	}
	s.mu.Unlock()
	for bi, req := range batch {
		req.done <- acks[bi]
	}
}

// fail acks every request in the group with err.
func (s *Store) fail(batch []*ingestReq, err error) {
	for _, req := range batch {
		req.done <- ingestAck{err: err}
	}
}

// updateMode flips degraded mode on load watermarks with hysteresis.
// Caller holds mu.
func (s *Store) updateMode(fill float64) {
	switch {
	case !s.degraded && fill >= s.cfg.DegradeHigh:
		s.degraded = true
		s.cDegraded.Add(1)
	case s.degraded && fill <= s.cfg.DegradeLow:
		s.degraded = false
	}
}

// apply merges one event into its window histogram, returning false for
// duplicates. Caller holds mu (or is the single-threaded recovery path).
func (s *Store) apply(ev Event, coarse bool) bool {
	if last, ok := s.lastSeq[ev.Source]; ok && ev.Seq <= last {
		return false
	}
	s.lastSeq[ev.Source] = ev.Seq

	idx := int64(ev.At / s.cfg.Window)
	w := s.windows[idx]
	if w == nil {
		w = &window{hists: make(map[Key]*hist)}
		s.windows[idx] = w
		pos := sort.Search(len(s.winOrder), func(i int) bool { return s.winOrder[i] >= idx })
		s.winOrder = append(s.winOrder, 0)
		copy(s.winOrder[pos+1:], s.winOrder[pos:])
		s.winOrder[pos] = idx
		s.evictLocked()
	}
	h := w.hists[ev.key()]
	if h == nil {
		fold := 1
		if coarse {
			fold = CoarseFold
		}
		h = newHist(fold)
		w.hists[ev.key()] = h
	}
	h.observe(ev.Value, 1)
	return true
}

// evictLocked drops the oldest windows beyond the retention bound.
func (s *Store) evictLocked() {
	for len(s.winOrder) > s.cfg.Retain {
		idx := s.winOrder[0]
		s.winOrder = s.winOrder[1:]
		delete(s.windows, idx)
		s.cEvicted.Add(1)
	}
}

// Query describes one aggregate lookup. Empty dimension filters match
// everything; a zero To means "end of time".
type Query struct {
	Metric    string        `json:"metric"`
	Cell      string        `json:"cell,omitempty"`
	Workload  string        `json:"workload,omitempty"`
	Cohort    string        `json:"cohort,omitempty"`
	From      time.Duration `json:"from_ns,omitempty"`
	To        time.Duration `json:"to_ns,omitempty"`
	Quantiles []float64     `json:"quantiles,omitempty"`
}

// QueryResult is the merged aggregate over every matching histogram.
type QueryResult struct {
	Metric    string   `json:"metric"`
	Count     uint64   `json:"count"`
	Mean      float64  `json:"mean"`
	Min       float64  `json:"min"`
	Max       float64  `json:"max"`
	Quantiles []QuantV `json:"quantiles,omitempty"`
	// Windows counts the retained windows that contributed events.
	Windows int `json:"windows"`
	// Degraded reports that at least one contributing histogram was
	// recorded under overload at coarse resolution, so quantiles carry
	// wider error bars.
	Degraded bool `json:"degraded"`
}

// QuantV is one quantile answer.
type QuantV struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

// Run answers the query from the in-memory window index. It holds the
// store lock for one linear scan over retained windows — the query path
// stays cheap while ingest is hot, and the HTTP layer adds a concurrency
// guard and timeout on top.
func (s *Store) Run(q Query) (QueryResult, error) {
	if q.Metric == "" {
		return QueryResult{}, fmt.Errorf("qoestore: query needs a metric")
	}
	to := q.To
	if to <= 0 {
		to = time.Duration(1<<63 - 1)
	}
	merged := newHist(CoarseFold) // coarsest common resolution
	fine := newHist(1)
	res := QueryResult{Metric: q.Metric}

	s.mu.Lock()
	lo := int64(q.From / s.cfg.Window)
	hi := int64(to / s.cfg.Window)
	from := sort.Search(len(s.winOrder), func(i int) bool { return s.winOrder[i] >= lo })
	for _, idx := range s.winOrder[from:] {
		if idx > hi {
			break
		}
		contributed := false
		for k, h := range s.windows[idx].hists {
			if k.Metric != q.Metric {
				continue
			}
			if q.Cell != "" && k.Cell != q.Cell {
				continue
			}
			if q.Workload != "" && k.Workload != q.Workload {
				continue
			}
			if q.Cohort != "" && k.Cohort != q.Cohort {
				continue
			}
			contributed = true
			if h.fold > 1 {
				res.Degraded = true
				h.mergeInto(merged)
			} else {
				h.mergeInto(fine)
			}
		}
		if contributed {
			res.Windows++
		}
	}
	s.mu.Unlock()

	// Merge at the finest resolution the data allows: only fall to the
	// coarse grid when degraded-mode histograms actually contributed.
	total := fine
	if merged.n > 0 {
		fine.mergeInto(merged)
		total = merged
	}
	res.Count = total.n
	res.Mean = total.mean()
	if total.n > 0 {
		res.Min, res.Max = total.min, total.max
	}
	for _, quant := range q.Quantiles {
		res.Quantiles = append(res.Quantiles, QuantV{Q: quant, V: total.quantile(quant)})
	}
	return res, nil
}

// WinAgg is one retained window's aggregate for one series key: the
// observation count, exact sum, and the (interpolated) count of
// observations above the threshold passed to SeriesCounts.
type WinAgg struct {
	Index    int64   `json:"index"` // window index: virtual time / WindowDur
	Count    uint64  `json:"count"`
	Sum      float64 `json:"sum"`
	Bad      float64 `json:"bad"`
	Degraded bool    `json:"degraded,omitempty"`
}

// Series is one key's ordered window history.
type Series struct {
	Key     Key
	Windows []WinAgg // ascending by Index
}

// SeriesCounts returns, for every retained series key carrying metric, the
// per-window observation counts with the fraction above threshold already
// resolved into a bad count — the windowed input the qoemon burn-rate
// engine folds over. Output is deterministic: keys sort by
// (cell, workload, cohort) and windows ascend by index, so two stores with
// identical contents (a rerun, or a WAL replay after restart) answer
// byte-identically.
func (s *Store) SeriesCounts(metric string, threshold float64) []Series {
	s.mu.Lock()
	byKey := make(map[Key]*Series)
	for _, idx := range s.winOrder {
		for k, h := range s.windows[idx].hists {
			if k.Metric != metric || h.n == 0 {
				continue
			}
			ser := byKey[k]
			if ser == nil {
				ser = &Series{Key: k}
				byKey[k] = ser
			}
			ser.Windows = append(ser.Windows, WinAgg{
				Index: idx, Count: h.n, Sum: h.sum,
				Bad:      h.fracAbove(threshold) * float64(h.n),
				Degraded: h.fold > 1,
			})
		}
	}
	s.mu.Unlock()

	out := make([]Series, 0, len(byKey))
	for _, ser := range byKey {
		out = append(out, *ser)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Cohort < b.Cohort
	})
	return out
}

// Metrics returns the distinct metric names present in retained windows,
// sorted — the discovery call behind wildcard SLOs and /attrib.
func (s *Store) Metrics() []string {
	s.mu.Lock()
	seen := make(map[string]bool)
	for _, w := range s.windows {
		for k := range w.hists {
			seen[k.Metric] = true
		}
	}
	s.mu.Unlock()
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// WindowDur is the store's configured aggregation window width.
func (s *Store) WindowDur() time.Duration { return s.cfg.Window }

// QueueFill is the instantaneous ingest queue occupancy in [0,1]; the HTTP
// layer scales its Retry-After hint with it.
func (s *Store) QueueFill() float64 {
	return float64(len(s.reqs)) / float64(cap(s.reqs))
}

// Degraded reports whether the store is currently shedding load.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// shutdown closes the intake; the writer drains what remains (or abandons
// it when killed) and the WAL is released.
func (s *Store) shutdown() bool {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return false
	}
	s.closed = true
	close(s.reqs)
	s.qmu.Unlock()
	s.wg.Wait()
	return true
}

// Close drains queued ingests, syncs the WAL, and stops the writer.
// Ingests submitted after Close fail with ErrClosed.
func (s *Store) Close() error {
	if !s.shutdown() {
		return nil
	}
	return s.wal.close()
}

// kill is the chaos hook: a simulated SIGKILL. Queued-but-uncommitted
// work is abandoned (callers get ErrClosed instead of hanging forever,
// the one place the simulation is kinder than the real signal) and the
// WAL file descriptor is dropped without a final sync — exactly the
// on-disk state a hard-killed process leaves, including a torn tail if
// one was mid-write.
func (s *Store) kill() {
	s.killed.Store(true)
	if !s.shutdown() {
		return
	}
	s.wal.abort()
}
