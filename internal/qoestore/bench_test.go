package qoestore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// benchBatch builds one ingest batch of n events for source src starting at
// sequence seq+1, spread over distinct windows so aggregation state is live.
func benchBatch(src string, seq uint64, n int) []Event {
	batch := make([]Event, n)
	for i := range batch {
		s := seq + uint64(i) + 1
		batch[i] = Event{
			Source: src, Seq: s, At: time.Duration(s) * 100 * time.Millisecond,
			Cell: "rr", Workload: "browse", Metric: "pageload_s",
			Value: 0.1 + float64(s%100)/10,
		}
	}
	return batch
}

func benchIngest(b *testing.B, nosync bool) {
	s := openBenchStore(b, Config{NoSync: nosync, Retain: 64})
	defer s.Close()
	b.ReportAllocs()
	const batchSize = 256
	seq := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(benchBatch("bench", seq, batchSize)); err != nil {
			b.Fatal(err)
		}
		seq += batchSize
	}
	b.StopTimer()
	evs := float64(b.N) * batchSize
	b.ReportMetric(evs/b.Elapsed().Seconds(), "events/s")
}

func openBenchStore(tb testing.TB, cfg Config) *Store {
	tb.Helper()
	s, err := Open(tb.TempDir(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func BenchmarkIngestSync(b *testing.B)   { benchIngest(b, false) }
func BenchmarkIngestNoSync(b *testing.B) { benchIngest(b, true) }

// BenchmarkQueryHot measures query latency while a background goroutine
// keeps the ingest path busy — the serving profile qoeserve actually runs.
func BenchmarkQueryHot(b *testing.B) {
	s := openBenchStore(b, Config{NoSync: true, Retain: 64})
	defer s.Close()
	if _, err := s.Ingest(benchBatch("seed", 0, 4096)); err != nil {
		b.Fatal(err)
	}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		seq := uint64(4096)
		for !stop.Load() {
			s.Ingest(benchBatch("seed", seq, 256)) //nolint:errcheck
			seq += 256
		}
	}()
	q := Query{Metric: "pageload_s", Quantiles: []float64{0.5, 0.95, 0.99}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	<-done
}

type ingestRecord struct {
	Mode        string  `json:"mode"`
	Events      int     `json:"events"`
	BatchSize   int     `json:"batch_size"`
	EventsPerS  float64 `json:"events_per_sec"`
	MicrosBatch float64 `json:"us_per_batch"`
}

type queryRecord struct {
	Queries int     `json:"queries"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
}

// TestWriteBenchPR6JSON measures sustained ingest throughput (fsync'd and
// NoSync) and query latency under hot concurrent ingest, writing the record
// to the file named by BENCH_PR6_JSON (skipped when unset; `make
// bench-qoestore` sets it). It fails if NoSync ingest cannot sustain 50k
// events/s or the hot p99 query exceeds 50ms — the overload machinery is
// pointless if the baseline is already slow.
func TestWriteBenchPR6JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR6_JSON")
	if out == "" {
		t.Skip("BENCH_PR6_JSON not set")
	}

	const batchSize, batches = 256, 400
	measureIngest := func(mode string, nosync bool) ingestRecord {
		var best ingestRecord
		// Best-of-3 discards fsync scheduling noise.
		for round := 0; round < 3; round++ {
			s := openBenchStore(t, Config{NoSync: nosync, Retain: 64})
			seq := uint64(0)
			start := time.Now()
			for i := 0; i < batches; i++ {
				if _, err := s.Ingest(benchBatch("bench", seq, batchSize)); err != nil {
					t.Fatal(err)
				}
				seq += batchSize
			}
			el := time.Since(start)
			s.Close()
			r := ingestRecord{
				Mode: mode, Events: batches * batchSize, BatchSize: batchSize,
				EventsPerS:  float64(batches*batchSize) / el.Seconds(),
				MicrosBatch: float64(el.Microseconds()) / batches,
			}
			if round == 0 || r.EventsPerS > best.EventsPerS {
				best = r
			}
		}
		return best
	}

	measureQuery := func() queryRecord {
		s := openBenchStore(t, Config{NoSync: true, Retain: 64})
		defer s.Close()
		if _, err := s.Ingest(benchBatch("seed", 0, 4096)); err != nil {
			t.Fatal(err)
		}
		var stop atomic.Bool
		done := make(chan struct{})
		go func() {
			defer close(done)
			seq := uint64(4096)
			for !stop.Load() {
				s.Ingest(benchBatch("seed", seq, 256)) //nolint:errcheck
				seq += 256
			}
		}()
		const n = 2000
		q := Query{Metric: "pageload_s", Quantiles: []float64{0.5, 0.95, 0.99}}
		lat := make([]time.Duration, n)
		for i := range lat {
			start := time.Now()
			if _, err := s.Run(q); err != nil {
				t.Fatal(err)
			}
			lat[i] = time.Since(start)
		}
		stop.Store(true)
		<-done
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return queryRecord{
			Queries: n,
			P50us:   float64(lat[n/2].Nanoseconds()) / 1e3,
			P99us:   float64(lat[n*99/100].Nanoseconds()) / 1e3,
		}
	}

	doc := struct {
		Workload string         `json:"workload"`
		Ingest   []ingestRecord `json:"ingest"`
		Query    queryRecord    `json:"query_under_hot_ingest"`
	}{Workload: fmt.Sprintf("%d batches x %d events, 64 retained 1-minute windows; queries race a continuous 256-event ingest loop", batches, batchSize)}
	doc.Ingest = append(doc.Ingest, measureIngest("fsync", false), measureIngest("nosync", true))
	doc.Query = measureQuery()

	if doc.Ingest[1].EventsPerS < 50_000 {
		t.Errorf("NoSync ingest = %.0f events/s, floor is 50k", doc.Ingest[1].EventsPerS)
	}
	if doc.Query.P99us > 50_000 {
		t.Errorf("hot p99 query = %.0fus, budget is 50ms", doc.Query.P99us)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: ingest fsync %.0f ev/s, nosync %.0f ev/s, hot query p99 %.0fus",
		out, doc.Ingest[0].EventsPerS, doc.Ingest[1].EventsPerS, doc.Query.P99us)
}
