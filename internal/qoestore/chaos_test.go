package qoestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosKillZeroAckedLoss is the headline crash-safety property: events
// acknowledged before a simulated SIGKILL are all present after recovery.
// Several goroutines ingest concurrently while the main goroutine pulls the
// plug mid-stream; whatever was acked must survive, whatever was in flight
// may or may not (at-least-once).
func TestChaosKillZeroAckedLoss(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{QueueDepth: 8})

	const workers = 4
	acked := make([]uint64, workers) // highest acked seq per source, atomically
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			source := fmt.Sprintf("src%d", w)
			for seq := uint64(1); ; seq++ {
				_, err := s.Ingest([]Event{{
					Source: source, Seq: seq, At: time.Duration(seq) * time.Second,
					Metric: "m" + source, Value: 1,
				}})
				switch {
				case err == nil:
					atomic.StoreUint64(&acked[w], seq)
				case errors.Is(err, ErrClosed):
					return
				case errors.Is(err, ErrBackpressure):
					seq-- // not accepted; retry the same seq
				default:
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Let the workers build up real WAL traffic, then kill mid-ingest.
	for {
		if s.Stats().Acked >= 200 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.kill()
	wg.Wait()

	s2 := openStore(t, dir, Config{})
	defer s2.Close()
	for w := 0; w < workers; w++ {
		want := atomic.LoadUint64(&acked[w])
		res, err := s2.Run(Query{Metric: fmt.Sprintf("msrc%d", w)})
		if err != nil {
			t.Fatal(err)
		}
		// Seqs are ingested one per batch in order, so the recovered count
		// must cover at least every acked seq. More is fine: a batch that
		// reached the WAL just before the kill was delivered but never
		// acked (at-least-once, not exactly-once delivery).
		if res.Count < want {
			t.Fatalf("worker %d: acked up to seq %d but recovered only %d events — acked data lost", w, want, res.Count)
		}
	}
}

// TestChaosBackToBackCrashes kills the store repeatedly, recovering in
// between; acked counts must only grow, and recovery must stay clean.
func TestChaosBackToBackCrashes(t *testing.T) {
	dir := t.TempDir()
	var total uint64
	seq := uint64(0)
	for round := 0; round < 5; round++ {
		s := openStore(t, dir, Config{})
		res, err := s.Run(Query{Metric: "m"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count < total {
			t.Fatalf("round %d: recovered %d events, had acked %d", round, res.Count, total)
		}
		for i := 0; i < 20; i++ {
			seq++
			if _, err := s.Ingest([]Event{ev("s", seq, time.Duration(seq)*time.Second, "m", 1)}); err != nil {
				t.Fatal(err)
			}
			total++
		}
		s.kill()
	}
	s := openStore(t, dir, Config{})
	defer s.Close()
	res, _ := s.Run(Query{Metric: "m"})
	if res.Count != total {
		t.Fatalf("final recovery count = %d, want %d", res.Count, total)
	}
}

// TestChaosSlowConsumerBackpressure wedges the writer (by holding the store
// lock it needs to commit) so the bounded queue fills; further ingests must
// fail fast with ErrBackpressure, not block or grow memory.
func TestChaosSlowConsumerBackpressure(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{QueueDepth: 4})
	defer s.Close()

	s.mu.Lock() // the writer's commit path needs mu: consumer is now stuck
	// Keep feeding fire-and-forget batches until the channel is observably
	// full. The writer wedges after its first drain, so once full the queue
	// can only stay full while mu is held.
	seq := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for len(s.reqs) < cap(s.reqs) && time.Now().Before(deadline) {
		seq++
		go s.Ingest([]Event{ev("blocked", seq, 0, "m", 1)}) //nolint:errcheck
		time.Sleep(time.Millisecond)
	}
	if len(s.reqs) < cap(s.reqs) {
		s.mu.Unlock()
		t.Fatal("queue never filled behind the wedged writer")
	}
	_, err := s.Ingest([]Event{ev("probe", 1, 0, "m", 1)})
	rejected := s.Stats().Rejected
	s.mu.Unlock()

	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("full queue pushed back with %v, want ErrBackpressure", err)
	}
	if rejected == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

// TestChaosOverloadEntersAndLeavesDegradedMode drives the load past the
// high watermark (writer wedged, queue full), then lets it drain: the
// degraded transition must be counted, and the store must return to normal
// once load falls below the low watermark.
func TestChaosOverloadEntersAndLeavesDegradedMode(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{QueueDepth: 4, DegradeHigh: 0.5, DegradeLow: 0.25})
	defer s.Close()

	// Wedge the writer deterministically: hold the lock its commit path
	// needs, hand it exactly one request, and wait until that request is
	// off the queue — the writer is now stuck in commit and cannot drain.
	s.mu.Lock()
	bait := &ingestReq{events: []Event{ev("burst", 1, 0, "m", 1)}, done: make(chan ingestAck, 1)}
	s.reqs <- bait
	deadline := time.Now().Add(10 * time.Second)
	for len(s.reqs) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.reqs) > 0 {
		s.mu.Unlock()
		t.Fatal("writer never took the bait request")
	}
	// Pile a burst behind the wedge. The queue (depth 4) must fill with all
	// four: the writer cannot consume, so the fill is deterministic, and on
	// release they drain as one commit group with load 4/4 > DegradeHigh.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				_, err := s.Ingest([]Event{ev("burst", uint64(i+2), 0, "m", 1)})
				if !errors.Is(err, ErrBackpressure) {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	for len(s.reqs) < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.reqs) < 4 {
		s.mu.Unlock()
		t.Fatalf("queue never filled behind the wedged writer: %d of 4", len(s.reqs))
	}
	s.mu.Unlock()
	<-bait.done
	wg.Wait()

	if s.Stats().Degraded == 0 {
		t.Fatal("overload burst did not count a degraded transition")
	}
	// The burst is drained; one small commit (load 1/4 <= DegradeLow)
	// flips the store back to normal.
	if _, err := s.Ingest([]Event{ev("after", 1, 0, "m", 1)}); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("store did not recover from degraded mode once load fell")
	}
}

// TestChaosDegradedModeSampledCoarseIngest pins the degraded-mode contract
// with deterministic watermarks (every commit's load of 1/4 = 0.25 sits at
// or above DegradeHigh=0.2 and above DegradeLow=0.1, so the store degrades
// on the first commit and stays there): shed events are reported in the
// receipt and counters — never silently lost — and what survives lands in
// coarse histograms that queries flag.
func TestChaosDegradedModeSampledCoarseIngest(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{QueueDepth: 4, DegradeHigh: 0.2, DegradeLow: 0.1, SampleK: 2})
	defer s.Close()

	var batch []Event
	for i := 0; i < 100; i++ {
		batch = append(batch, ev("deg", uint64(i+1), time.Hour, "deg_m", 1))
	}
	rec, err := s.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Shed != 50 || rec.Accepted != 50 {
		t.Fatalf("degraded receipt = %+v, want 50 shed / 50 accepted", rec)
	}
	if got := s.Stats().Shed; got != 50 {
		t.Fatalf("shed counter = %d, want 50", got)
	}
	if !s.Degraded() {
		t.Fatal("store not in degraded mode")
	}

	res, err := s.Run(Query{Metric: "deg_m", Quantiles: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 {
		t.Fatalf("degraded count = %d, want the 50 kept", res.Count)
	}
	if !res.Degraded {
		t.Fatal("query over coarse histograms did not flag Degraded")
	}
	if res.Quantiles[0].V != 1 {
		// Single-value distribution: min/max clamping answers exactly even
		// on coarse bins.
		t.Fatalf("degraded p50 = %v, want 1", res.Quantiles[0].V)
	}
}

// TestChaosKillDuringDoubleLoggedBatch forces the duplicate-on-replay path:
// the same events get WAL-logged twice (emitter re-send after a missed
// ack), and recovery must apply them once.
func TestChaosKillDuringDoubleLoggedBatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{})
	batch := []Event{ev("s", 1, time.Second, "m", 5), ev("s", 2, 2*time.Second, "m", 7)}
	if _, err := s.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	// Re-send: dedup rejects the apply, but the WAL honestly logs the
	// arrival (dedup state is rebuilt from the log itself).
	if rec, err := s.Ingest(batch); err != nil || rec.Dups != 2 {
		t.Fatalf("re-send receipt = %+v, %v", rec, err)
	}
	s.kill()

	s2 := openStore(t, dir, Config{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Records != 4 || rec.Applied != 2 || rec.Dups != 2 {
		t.Fatalf("recovery = %+v, want 4 records, 2 applied, 2 dups", rec)
	}
	res, _ := s2.Run(Query{Metric: "m"})
	if res.Count != 2 || res.Mean != 6 {
		t.Fatalf("recovered aggregate = %+v, want count 2 mean 6", res)
	}
}

// TestChaosConcurrentCloseAndIngest races Close against in-flight Ingest
// calls; under -race this is the send-on-closed-channel regression guard.
func TestChaosConcurrentCloseAndIngest(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := openStore(t, t.TempDir(), Config{QueueDepth: 2, NoSync: true})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seq := uint64(1); seq < 50; seq++ {
					_, err := s.Ingest([]Event{{Source: fmt.Sprintf("s%d", w), Seq: seq, Metric: "m", Value: 1}})
					if errors.Is(err, ErrClosed) {
						return
					}
				}
			}(w)
		}
		s.Close() //nolint:errcheck
		wg.Wait()
	}
}
