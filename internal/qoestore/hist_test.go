package qoestore

import (
	"math"
	"testing"
)

func TestBinOfMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []float64{0, 1e-9, 1e-4, 1e-3, 0.05, 1, 30, 1e4, 1e5, 1e9} {
		b := binOf(v)
		if b < 0 || b >= FineBins {
			t.Fatalf("binOf(%v) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("binOf not monotone at %v: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestHistQuantileRelativeError(t *testing.T) {
	h := newHist(1)
	// Log-uniform values over three decades.
	n := 3000
	for i := 0; i < n; i++ {
		v := 0.01 * math.Pow(10, 3*float64(i)/float64(n))
		h.observe(v, 1)
	}
	if h.n != uint64(n) {
		t.Fatalf("n = %d", h.n)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := 0.01 * math.Pow(10, 3*q)
		got := h.quantile(q)
		// Fine bins are 10^(9/64) ≈ 1.38 wide; the geometric-midpoint
		// answer is within one bin of exact.
		if got < exact/1.4 || got > exact*1.4 {
			t.Fatalf("q%v = %v, want within a bin of %v", q, got, exact)
		}
	}
	if h.quantile(0) < h.min || h.quantile(1) > h.max {
		t.Fatal("quantile escaped observed [min, max]")
	}
}

func TestHistMeanExact(t *testing.T) {
	h := newHist(CoarseFold)
	sum := 0.0
	for i := 1; i <= 10; i++ {
		h.observe(float64(i), 1)
		sum += float64(i)
	}
	if got := h.mean(); math.Abs(got-sum/10) > 1e-12 {
		t.Fatalf("mean = %v, want %v (tracked outside the bins)", got, sum/10)
	}
}

// TestHistFineCoarseMergeAligned is the degradation invariant: folding a
// fine histogram into the coarse grid gives bin-for-bin the same result as
// having observed the values coarse in the first place.
func TestHistFineCoarseMergeAligned(t *testing.T) {
	fine := newHist(1)
	direct := newHist(CoarseFold)
	for i := 0; i < 500; i++ {
		v := 0.001 * math.Pow(10, 6*float64(i)/500)
		fine.observe(v, 1)
		direct.observe(v, 1)
	}
	merged := newHist(CoarseFold)
	fine.mergeInto(merged)
	if merged.n != direct.n || merged.sum != direct.sum {
		t.Fatalf("merged n/sum = %d/%v, direct = %d/%v", merged.n, merged.sum, direct.n, direct.sum)
	}
	for i := range merged.counts {
		if merged.counts[i] != direct.counts[i] {
			t.Fatalf("coarse bin %d: merged %d, direct %d — fold misaligned", i, merged.counts[i], direct.counts[i])
		}
	}
}

func TestHistEmptyAndSingleValue(t *testing.T) {
	h := newHist(1)
	if h.quantile(0.5) != 0 || h.mean() != 0 {
		t.Fatal("empty histogram must answer zero")
	}
	h.observe(42, 1)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.quantile(q); got != 42 {
			t.Fatalf("single-value q%v = %v, want exactly 42 (min/max clamp)", q, got)
		}
	}
}
