package qoestore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeIngestor scripts an Ingestor: fail the first failN calls, then accept.
type fakeIngestor struct {
	mu      sync.Mutex
	failN   int
	err     error
	calls   int
	batches [][]Event
}

func (f *fakeIngestor) Ingest(events []Event) (IngestReceipt, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failN {
		return IngestReceipt{}, f.err
	}
	cp := make([]Event, len(events))
	copy(cp, events)
	f.batches = append(f.batches, cp)
	return IngestReceipt{Accepted: len(events)}, nil
}

func (f *fakeIngestor) events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Event
	for _, b := range f.batches {
		out = append(out, b...)
	}
	return out
}

func TestEmitterAssignsSourceAndSeq(t *testing.T) {
	dst := &fakeIngestor{}
	em, err := NewEmitter(dst, EmitterConfig{Source: "fleet-1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		em.Emit(Event{Metric: "m", Value: float64(i)})
	}
	em.Close()

	got := dst.events()
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.Source != "fleet-1" || e.Seq != uint64(i+1) {
			t.Fatalf("event %d = %q/%d, want fleet-1/%d", i, e.Source, e.Seq, i+1)
		}
	}
	st := em.Stats()
	if st.Delivered != 10 || st.DroppedQ != 0 || st.DroppedRe != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmitterValidation(t *testing.T) {
	if _, err := NewEmitter(&fakeIngestor{}, EmitterConfig{}); err == nil {
		t.Fatal("emitter accepted empty source")
	}
	if _, err := NewEmitter(nil, EmitterConfig{Source: "s"}); err == nil {
		t.Fatal("emitter accepted nil ingestor")
	}
}

// TestEmitterReconnectStorm scripts an unreachable collector that comes
// back: the emitter must retry with capped exponential backoff (recorded
// via the injected sleeper), deliver everything on reconnect, and drop
// nothing.
func TestEmitterReconnectStorm(t *testing.T) {
	dst := &fakeIngestor{failN: 5, err: errors.New("connection refused")}
	var mu sync.Mutex
	var delays []time.Duration
	em, err := NewEmitter(dst, EmitterConfig{
		Source: "s", MaxRetries: 10,
		BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond,
		Sleep: func(d time.Duration) { mu.Lock(); delays = append(delays, d); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		em.Emit(Event{Metric: "m", Value: 1})
	}
	em.Close()

	if got := len(dst.events()); got != 20 {
		t.Fatalf("delivered %d events after reconnect, want 20", got)
	}
	st := em.Stats()
	if st.Retries == 0 || st.DroppedRe != 0 {
		t.Fatalf("stats = %+v, want retries > 0 and no drops", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	// Jitter is 50%..150% of the nominal delay; nominal grows 10,20,40 and
	// caps at 40ms. Every recorded delay must respect the jittered cap.
	for i, d := range delays {
		if d < 5*time.Millisecond || d > 60*time.Millisecond {
			t.Fatalf("delay %d = %v outside jittered [5ms, 60ms]", i, d)
		}
	}
	// The first retry's nominal 10ms means it can never exceed 15ms — the
	// exponential must start at the base, not the cap.
	if delays[0] > 15*time.Millisecond {
		t.Fatalf("first backoff = %v, want <= 15ms", delays[0])
	}
}

// TestEmitterDropsAfterRetryBudget gives up on a dead collector: the batch
// is dropped and accounted, and the emitter keeps serving later batches.
func TestEmitterDropsAfterRetryBudget(t *testing.T) {
	dst := &fakeIngestor{failN: 3, err: errors.New("down")}
	em, err := NewEmitter(dst, EmitterConfig{
		Source: "s", MaxRetries: 3, Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	em.Emit(Event{Metric: "m", Value: 1}) // first batch burns the 3 attempts
	em.Close()

	st := em.Stats()
	if st.DroppedRe != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 1 dropped after retries", st)
	}
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", st.Retries)
	}
}

// TestEmitterPermanentErrorSkipsRetries: a 4xx-style rejection is dropped
// immediately — retrying a rejected payload cannot help.
func TestEmitterPermanentErrorSkipsRetries(t *testing.T) {
	dst := &fakeIngestor{failN: 1000, err: fmt.Errorf("%w: HTTP 400", ErrPermanent)}
	slept := 0
	em, err := NewEmitter(dst, EmitterConfig{
		Source: "s", MaxRetries: 50, Sleep: func(time.Duration) { slept++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	em.Emit(Event{Metric: "m", Value: 1})
	em.Close()
	if st := em.Stats(); st.DroppedRe != 1 {
		t.Fatalf("stats = %+v, want immediate drop", st)
	}
	if slept != 0 {
		t.Fatalf("emitter slept %d times on a permanent error", slept)
	}
}

// TestEmitterBoundedQueueDropsOldest: a wedged flusher must not buffer
// without bound; the oldest events fall off and are counted.
func TestEmitterBoundedQueueDropsOldest(t *testing.T) {
	block := make(chan struct{})
	dst := &blockingIngestor{release: block}
	em, err := NewEmitter(dst, EmitterConfig{Source: "s", QueueDepth: 8, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The flusher wedges on the first event; everything else queues.
	for i := 0; i < 40; i++ {
		em.Emit(Event{Metric: "m", Value: float64(i)})
	}
	if p := em.Pending(); p > 8 {
		t.Fatalf("queue grew to %d, bound is 8", p)
	}
	st := em.Stats()
	if st.DroppedQ == 0 {
		t.Fatal("no queue drops recorded despite overflow")
	}
	close(block)
	em.Close()
	if got := em.Stats(); got.Delivered+got.DroppedQ != got.Enqueued {
		t.Fatalf("accounting leak: %+v", got)
	}
}

// blockingIngestor wedges every Ingest until released.
type blockingIngestor struct {
	release <-chan struct{}
	mu      sync.Mutex
	n       int
}

func (b *blockingIngestor) Ingest(events []Event) (IngestReceipt, error) {
	<-b.release
	b.mu.Lock()
	b.n += len(events)
	b.mu.Unlock()
	return IngestReceipt{Accepted: len(events)}, nil
}

// TestEmitterIntoStore is the end-to-end pair: emitter → real store, with
// duplicate re-sends on the wire handled by the store's dedup.
func TestEmitterIntoStore(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	defer s.Close()
	em, err := NewEmitter(s, EmitterConfig{Source: "fleet-7"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		em.Emit(Event{At: time.Duration(i) * time.Second, Metric: "pageload_s", Value: 1.5})
	}
	em.Close()
	res, err := s.Run(Query{Metric: "pageload_s", Quantiles: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 {
		t.Fatalf("store holds %d events, want 50", res.Count)
	}
	if st := em.Stats(); st.Delivered != 50 {
		t.Fatalf("emitter stats = %+v", st)
	}
}
