package qoestore

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config, scfg ServerConfig) (*Store, *httptest.Server) {
	t.Helper()
	s, ts, _ := newTestServerAPI(t, cfg, scfg)
	return s, ts
}

func newTestServerAPI(t *testing.T, cfg Config, scfg ServerConfig) (*Store, *httptest.Server, *Server) {
	t.Helper()
	s := openStore(t, t.TempDir(), cfg)
	t.Cleanup(func() { s.Close() })
	api := NewServer(s, scfg)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return s, ts, api
}

func postIngest(t *testing.T, url string, events []Event) *http.Response {
	t.Helper()
	body, _ := json.Marshal(ingestBody{Events: events})
	resp, err := http.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerIngestQueryRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{}, ServerConfig{})

	var events []Event
	for i := 1; i <= 20; i++ {
		events = append(events, ev("web", uint64(i), time.Duration(i)*time.Second, "pageload_s", 2.0))
	}
	resp := postIngest(t, ts.URL, events)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	var rec IngestReceipt
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 20 {
		t.Fatalf("receipt = %+v", rec)
	}

	qr, err := http.Get(ts.URL + "/query?metric=pageload_s&cell=c0&q=0.5,0.95")
	if err != nil {
		t.Fatal(err)
	}
	defer qr.Body.Close()
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", qr.StatusCode)
	}
	var res QueryResult
	if err := json.NewDecoder(qr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Count != 20 || len(res.Quantiles) != 2 {
		t.Fatalf("query result = %+v", res)
	}
	if res.Quantiles[0].V != 2 {
		t.Fatalf("p50 = %v, want exactly 2 (single-value clamp)", res.Quantiles[0].V)
	}
}

func TestServerIngestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{}, ServerConfig{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"events": [`, http.StatusBadRequest},
		{"no events", `{"events": []}`, http.StatusBadRequest},
		{"invalid event", `{"events": [{"source":"s","seq":0,"metric":"m"}]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// GET on a POST-only route.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest = %d, want 405", resp.StatusCode)
	}
}

func TestServerBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 2}, ServerConfig{})

	// Wedge the writer and fill the queue; the next HTTP ingest must get
	// 429 with a Retry-After hint.
	s.mu.Lock()
	seq := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for len(s.reqs) < cap(s.reqs) && time.Now().Before(deadline) {
		seq++
		go s.Ingest([]Event{ev("fill", seq, 0, "m", 1)}) //nolint:errcheck
		time.Sleep(time.Millisecond)
	}
	if len(s.reqs) < cap(s.reqs) {
		s.mu.Unlock()
		t.Fatal("queue never filled")
	}
	resp := postIngest(t, ts.URL, []Event{ev("probe", 1, 0, "m", 1)})
	s.mu.Unlock()
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestServerQueryErrorsAndDefaults(t *testing.T) {
	_, ts := newTestServer(t, Config{}, ServerConfig{})
	for path, want := range map[string]int{
		"/query":                            http.StatusBadRequest, // no metric
		"/query?metric=m&q=1.5":             http.StatusBadRequest, // quantile > 1
		"/query?metric=m&q=abc":             http.StatusBadRequest,
		"/query?metric=m&from=notaduration": http.StatusBadRequest,
		"/query?metric=m&from=5m&to=10m":    http.StatusOK,
		"/query?metric=m":                   http.StatusOK, // default quantiles
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestServerQueryLoadShed wedges the store lock with one in-flight query;
// with a concurrency bound of 1, a second query must be shed with 503
// instead of queueing behind it.
func TestServerQueryLoadShed(t *testing.T) {
	s, ts, api := newTestServerAPI(t, Config{}, ServerConfig{MaxConcurrentQueries: 1, QueryTimeout: 30 * time.Second})

	s.mu.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/query?metric=m")
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the first query holds the semaphore (blocked on s.mu).
	deadline := time.Now().Add(10 * time.Second)
	for len(api.sem) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/query?metric=m")
	if err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	code := resp.StatusCode
	resp.Body.Close()
	s.mu.Unlock()
	wg.Wait()

	if code != http.StatusServiceUnavailable {
		t.Fatalf("second query = %d, want 503 shed", code)
	}
}

// TestServerQueryTimeout wedges the store lock so the query cannot finish;
// the handler must give up at its deadline with 504.
func TestServerQueryTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{}, ServerConfig{QueryTimeout: 30 * time.Millisecond})
	s.mu.Lock()
	resp, err := http.Get(ts.URL + "/query?metric=m")
	if err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	code := resp.StatusCode
	resp.Body.Close()
	s.mu.Unlock()
	if code != http.StatusGatewayTimeout {
		t.Fatalf("wedged query = %d, want 504", code)
	}
}

func TestServerHealthReadyStatsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Metrics: reg}, ServerConfig{Metrics: reg})

	for _, path := range []string{"/healthz", "/readyz", "/statz", "/metricz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	// After close, liveness stays 200 but readiness flips to 503.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	h, _ := http.Get(ts.URL + "/healthz")
	h.Body.Close()
	r, _ := http.Get(ts.URL + "/readyz")
	r.Body.Close()
	if h.StatusCode != http.StatusOK || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after close: healthz=%d readyz=%d, want 200/503", h.StatusCode, r.StatusCode)
	}
}

func TestServerMetricsExposesRobustnessCounters(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Metrics: reg}, ServerConfig{Metrics: reg})

	resp := postIngest(t, ts.URL, []Event{ev("s", 1, 0, "m", 1)})
	resp.Body.Close()

	snap := reg.Snapshot()
	for _, name := range []string{
		"qoestore_events_acked", "qoestore_events_rejected", "qoestore_events_shed",
		"qoestore_degraded_transitions", "qoeserve_ingest_requests", "qoeserve_queries_shed",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("metric %s not registered", name)
		}
	}
	if e, _ := snap.Get("qoestore_events_acked"); e.Value != 1 {
		t.Fatalf("acked = %v, want 1", e.Value)
	}
}
