// Package qoestore is the streaming QoE analytics service behind ROADMAP
// item 2: an append-only, WAL-backed ingest path fed live by running
// fleets, time-windowed keyed aggregation (fixed-bin log-scale histograms
// for p50/p95/p99 pageload, rebuffer ratio, RRC energy per
// cell/workload/cohort), and an HTTP/JSON query API.
//
// Robustness is the design driver at every layer:
//
//   - Crash safety. Every ingest batch is CRC-framed into a segmented WAL
//     and fsynced before it is acknowledged; recovery truncates a torn
//     tail and replays idempotently (per-source sequence numbers dedup
//     re-sent batches), so acked events survive a hard kill exactly once.
//   - Backpressure, not collapse. The ingest queue is bounded; a full
//     queue rejects with ErrBackpressure (HTTP 429) instead of buffering
//     without bound, and emitters retry with capped exponential backoff
//     plus jitter, accounting explicitly for what they drop.
//   - Graceful degradation. Past a queue-fill watermark the store sheds
//     load predictably — sampled ingest and coarser histogram bins — and
//     every drop/shed/eviction is counted in the obs metrics registry,
//     so overload is visible, bounded, and reversible.
package qoestore

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Event is one QoE measurement from a fleet UE (or any other emitter).
// Source+Seq give at-least-once delivery exactly-once application: a
// source's sequence numbers are strictly increasing, so replayed or
// re-sent events are deduplicated by comparing against the highest
// sequence already applied for that source.
type Event struct {
	// Source identifies the emitting stream (e.g. "qoefleet-417/ue3").
	// Sequence numbers are scoped to it.
	Source string `json:"source"`
	// Seq is the per-source sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// At is the event's virtual timestamp within its run (event time, not
	// arrival time); windows are keyed by it.
	At time.Duration `json:"at_ns"`

	// Cell, Workload, and Cohort are the aggregation dimensions.
	Cell     string `json:"cell,omitempty"`
	Workload string `json:"workload,omitempty"`
	Cohort   string `json:"cohort,omitempty"`

	// Metric names the measurement ("pageload_s", "rebuffer_ratio", ...);
	// Value is its magnitude.
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// Key is the aggregation identity of an event: one histogram exists per
// (cell, workload, cohort, metric) per time window.
type Key struct {
	Cell, Workload, Cohort, Metric string
}

// key extracts the event's aggregation key.
func (e *Event) key() Key {
	return Key{Cell: e.Cell, Workload: e.Workload, Cohort: e.Cohort, Metric: e.Metric}
}

// validate rejects events that cannot be applied.
func (e *Event) validate() error {
	if e.Source == "" {
		return fmt.Errorf("qoestore: event has empty source")
	}
	if e.Seq == 0 {
		return fmt.Errorf("qoestore: event from %q has zero sequence number", e.Source)
	}
	if e.Metric == "" {
		return fmt.Errorf("qoestore: event %s/%d has empty metric", e.Source, e.Seq)
	}
	if e.At < 0 {
		return fmt.Errorf("qoestore: event %s/%d has negative timestamp", e.Source, e.Seq)
	}
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Errorf("qoestore: event %s/%d has non-finite value", e.Source, e.Seq)
	}
	return nil
}

// appendString writes a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encode appends the event's compact binary form (the WAL payload).
func (e *Event) encode(b []byte) []byte {
	b = appendString(b, e.Source)
	b = binary.AppendUvarint(b, e.Seq)
	b = binary.AppendVarint(b, int64(e.At))
	b = appendString(b, e.Cell)
	b = appendString(b, e.Workload)
	b = appendString(b, e.Cohort)
	b = appendString(b, e.Metric)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Value))
}

// decodeString reads a uvarint-length-prefixed string.
func decodeString(b []byte) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, fmt.Errorf("qoestore: truncated string field")
	}
	return string(b[w : w+int(n)]), b[w+int(n):], nil
}

// decodeEvent parses one binary-encoded event, requiring the payload to be
// consumed exactly (a trailing-garbage guard on top of the frame CRC).
func decodeEvent(b []byte) (Event, error) {
	var e Event
	var err error
	if e.Source, b, err = decodeString(b); err != nil {
		return e, err
	}
	var w int
	if e.Seq, w = binary.Uvarint(b); w <= 0 {
		return e, fmt.Errorf("qoestore: truncated seq")
	}
	b = b[w:]
	var at int64
	if at, w = binary.Varint(b); w <= 0 {
		return e, fmt.Errorf("qoestore: truncated timestamp")
	}
	e.At = time.Duration(at)
	b = b[w:]
	if e.Cell, b, err = decodeString(b); err != nil {
		return e, err
	}
	if e.Workload, b, err = decodeString(b); err != nil {
		return e, err
	}
	if e.Cohort, b, err = decodeString(b); err != nil {
		return e, err
	}
	if e.Metric, b, err = decodeString(b); err != nil {
		return e, err
	}
	if len(b) != 8 {
		return e, fmt.Errorf("qoestore: bad value field length %d", len(b))
	}
	e.Value = math.Float64frombits(binary.LittleEndian.Uint64(b))
	return e, nil
}
