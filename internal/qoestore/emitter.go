package qoestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Ingestor is the destination of an Emitter: a local Store, an HTTP client
// pointed at qoeserve, or a test double. It must be safe for calls from the
// emitter's single flusher goroutine.
type Ingestor interface {
	Ingest(events []Event) (IngestReceipt, error)
}

// EmitterConfig tunes the fleet-side emitter.
type EmitterConfig struct {
	// Source stamps every event and scopes sequence numbers; required.
	Source string
	// QueueDepth bounds buffered events; when the queue is full the oldest
	// pending events are dropped (and counted) rather than blocking the
	// simulation (default 4096).
	QueueDepth int
	// BatchSize caps events per Ingest call (default 256).
	BatchSize int
	// MaxRetries bounds attempts per batch before it is dropped with
	// accounting (default 8).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the capped exponential retry delay
	// (defaults 50ms and 5s); each delay gets ±50% jitter so a fleet of
	// emitters reconnecting at once does not resynchronize into a storm.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Metrics receives emitted/dropped/retry counters when non-nil.
	Metrics *obs.Registry
	// Sleep is the retry delay function; nil means time.Sleep. Tests inject
	// a recorder to run reconnect storms without wall-clock waits.
	Sleep func(time.Duration)
	// Rand seeds backoff jitter; nil derives a fixed-seed source so reruns
	// of a simulation emit identical retry schedules.
	Rand *rand.Rand
}

func (c EmitterConfig) withDefaults() EmitterConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
	return c
}

// EmitterStats is a point-in-time view of an emitter's accounting.
type EmitterStats struct {
	Enqueued  uint64 `json:"enqueued"`        // events accepted into the queue
	Delivered uint64 `json:"delivered"`       // events acked by the ingestor
	DroppedQ  uint64 `json:"dropped_queue"`   // evicted from a full queue
	DroppedRe uint64 `json:"dropped_retries"` // gave up after MaxRetries
	Shed      uint64 `json:"shed_remote"`     // acked but shed by a degraded store
	Retries   uint64 `json:"retries"`
}

// Emitter buffers QoE events on a bounded queue and ships them to an
// Ingestor from a single flusher goroutine. Delivery is at-least-once: a
// batch that fails mid-flight is retried whole, and the store's per-source
// sequence numbers (assigned here, monotonically) make the retry idempotent.
// The emitter never blocks its producer: when the queue is full the oldest
// pending events are dropped and counted, because a stalled collector must
// degrade telemetry, not the system being measured.
type Emitter struct {
	cfg  EmitterConfig
	dst  Ingestor
	next uint64 // next sequence number to assign

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Event
	closed bool

	wg   sync.WaitGroup
	stat struct {
		enq, delivered, dropQ, dropR, shed, retries atomic.Uint64
	}
}

// NewEmitter starts an emitter shipping to dst.
func NewEmitter(dst Ingestor, cfg EmitterConfig) (*Emitter, error) {
	if cfg.Source == "" {
		return nil, errors.New("qoestore: emitter needs a Source")
	}
	if dst == nil {
		return nil, errors.New("qoestore: emitter needs an Ingestor")
	}
	e := &Emitter{cfg: cfg.withDefaults(), dst: dst, next: 1}
	e.cond = sync.NewCond(&e.mu)
	if m := e.cfg.Metrics; m != nil {
		p := "qoeemit_" + e.cfg.Source + "_"
		m.CounterFunc(p+"enqueued", e.stat.enq.Load)
		m.CounterFunc(p+"delivered", e.stat.delivered.Load)
		m.CounterFunc(p+"dropped_queue", e.stat.dropQ.Load)
		m.CounterFunc(p+"dropped_retries", e.stat.dropR.Load)
		m.CounterFunc(p+"retries", e.stat.retries.Load)
	}
	e.wg.Add(1)
	go e.flusher()
	return e, nil
}

// Emit queues one event. The Source and Seq fields are assigned here; the
// caller fills At, Cell, Workload, Cohort, Metric, Value. Emit never blocks:
// on a full queue it evicts the oldest pending event (returning false) so
// the newest data survives a slow or unreachable collector.
func (e *Emitter) Emit(ev Event) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	ev.Source = e.cfg.Source
	ev.Seq = e.next
	e.next++
	ok := true
	if len(e.queue) >= e.cfg.QueueDepth {
		e.queue = e.queue[1:]
		e.stat.dropQ.Add(1)
		ok = false
	}
	e.queue = append(e.queue, ev)
	e.stat.enq.Add(1)
	e.cond.Signal()
	return ok
}

// flusher is the single consumer: it drains batches off the queue and
// pushes them through the ingestor with capped exponential backoff.
func (e *Emitter) flusher() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		n := len(e.queue)
		if n > e.cfg.BatchSize {
			n = e.cfg.BatchSize
		}
		batch := make([]Event, n)
		copy(batch, e.queue)
		e.queue = e.queue[n:]
		e.mu.Unlock()

		e.push(batch)
	}
}

// ErrPermanent wraps ingest failures that retrying cannot fix (a rejected
// payload, a closed store); the emitter drops such batches immediately.
var ErrPermanent = errors.New("qoestore: permanent ingest error")

// BackpressureError is a backpressure rejection carrying the server's
// Retry-After hint. It unwraps to ErrBackpressure, so errors.Is checks keep
// working; the emitter additionally extracts RetryAfter as the floor for
// its next backoff delay — the server knows its queue depth, the emitter
// does not.
type BackpressureError struct {
	RetryAfter time.Duration
}

func (b *BackpressureError) Error() string {
	return fmt.Sprintf("%v (server asks retry after %v)", ErrBackpressure, b.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrBackpressure) true.
func (b *BackpressureError) Unwrap() error { return ErrBackpressure }

// push delivers one batch, retrying with capped exponential backoff plus
// jitter until it lands or MaxRetries is exhausted (then the batch is
// dropped with accounting — at-least-once, not at-all-costs). A server
// Retry-After hint floors the computed delay: backing off faster than the
// collector asked for only re-earns the same 429.
func (e *Emitter) push(batch []Event) {
	for attempt := 0; ; attempt++ {
		rec, err := e.dst.Ingest(batch)
		if err == nil {
			e.stat.delivered.Add(uint64(rec.Accepted + rec.Dups))
			e.stat.shed.Add(uint64(rec.Shed))
			return
		}
		if errors.Is(err, ErrPermanent) || attempt+1 >= e.cfg.MaxRetries {
			e.stat.dropR.Add(uint64(len(batch)))
			return
		}
		e.stat.retries.Add(1)
		delay := e.backoff(attempt)
		var bp *BackpressureError
		if errors.As(err, &bp) && bp.RetryAfter > delay {
			delay = bp.RetryAfter
		}
		e.cfg.Sleep(delay)
	}
}

// backoff returns the delay before retry number attempt (0-based):
// Base*2^attempt capped at MaxBackoff, jittered to 50–150%.
func (e *Emitter) backoff(attempt int) time.Duration {
	d := e.cfg.BaseBackoff << uint(attempt)
	if d <= 0 || d > e.cfg.MaxBackoff {
		d = e.cfg.MaxBackoff
	}
	e.mu.Lock()
	j := 0.5 + e.cfg.Rand.Float64()
	e.mu.Unlock()
	return time.Duration(float64(d) * j)
}

// Close stops intake and flushes the remaining queue (each batch still
// subject to the retry budget), then returns.
func (e *Emitter) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// Stats returns a point-in-time copy of the accounting counters.
func (e *Emitter) Stats() EmitterStats {
	return EmitterStats{
		Enqueued:  e.stat.enq.Load(),
		Delivered: e.stat.delivered.Load(),
		DroppedQ:  e.stat.dropQ.Load(),
		DroppedRe: e.stat.dropR.Load(),
		Shed:      e.stat.shed.Load(),
		Retries:   e.stat.retries.Load(),
	}
}

// Pending returns the number of events waiting in the queue.
func (e *Emitter) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// HTTPIngestor ships batches to a qoeserve /ingest endpoint. A 429 maps to
// ErrBackpressure so the emitter's backoff kicks in; 5xx and transport
// errors are likewise retryable; a 4xx other than 429 is a permanent error
// reported as such (retrying a rejected payload cannot help).
type HTTPIngestor struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8711".
	BaseURL string
	// Client defaults to a client with a 5s timeout.
	Client *http.Client
}

// Ingest implements Ingestor over POST /ingest.
func (h *HTTPIngestor) Ingest(events []Event) (IngestReceipt, error) {
	var rec IngestReceipt
	body, err := json.Marshal(ingestBody{Events: events})
	if err != nil {
		return rec, err
	}
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Post(h.BaseURL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return rec, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		err = json.NewDecoder(resp.Body).Decode(&rec)
		return rec, err
	case resp.StatusCode == http.StatusTooManyRequests:
		// Honor the server's Retry-After: it scales the hint with its queue
		// depth, and the emitter uses it as the backoff floor.
		var after time.Duration
		if raw := resp.Header.Get("Retry-After"); raw != "" {
			if secs, err := strconv.Atoi(strings.TrimSpace(raw)); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return rec, &BackpressureError{RetryAfter: after}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return rec, fmt.Errorf("%w: ingest HTTP %d: %s", ErrPermanent, resp.StatusCode, bytes.TrimSpace(msg))
		}
		return rec, fmt.Errorf("qoestore: ingest HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
}
