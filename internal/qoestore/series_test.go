package qoestore

import (
	"bytes"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/promcheck"
)

func openSeriesStore(t *testing.T, window time.Duration) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Config{Window: window, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSeriesCounts checks the windowed per-key scan the burn-rate engine
// folds over: keys sorted, windows ascending, bad counts exact when values
// fall in clearly separated bins.
func TestSeriesCounts(t *testing.T) {
	s := openSeriesStore(t, time.Minute)
	var evs []Event
	seq := uint64(0)
	add := func(at time.Duration, cell string, v float64) {
		seq++
		evs = append(evs, Event{Source: "t", Seq: seq, At: at, Cell: cell, Workload: "yt", Metric: "rebuffer_ratio", Value: v})
	}
	// cellA: window 0 all good (0.001), window 1 all bad (0.5).
	add(10*time.Second, "cellA", 0.001)
	add(20*time.Second, "cellA", 0.001)
	add(70*time.Second, "cellA", 0.5)
	add(80*time.Second, "cellA", 0.5)
	add(85*time.Second, "cellA", 0.5)
	// cellB: one good event in window 0.
	add(30*time.Second, "cellB", 0.002)
	// Unrelated metric must not appear.
	evs = append(evs, Event{Source: "t", Seq: 1000, At: time.Second, Cell: "cellA", Metric: "pageload_s", Value: 9})
	if _, err := s.Ingest(evs); err != nil {
		t.Fatal(err)
	}

	series := s.SeriesCounts("rebuffer_ratio", 0.02)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2: %+v", len(series), series)
	}
	if series[0].Key.Cell != "cellA" || series[1].Key.Cell != "cellB" {
		t.Fatalf("series not sorted by key: %+v", series)
	}
	a := series[0]
	if len(a.Windows) != 2 || a.Windows[0].Index != 0 || a.Windows[1].Index != 1 {
		t.Fatalf("cellA windows = %+v", a.Windows)
	}
	if a.Windows[0].Count != 2 || a.Windows[0].Bad != 0 {
		t.Fatalf("cellA window 0 = %+v, want 2 good", a.Windows[0])
	}
	if a.Windows[1].Count != 3 || a.Windows[1].Bad != 3 {
		t.Fatalf("cellA window 1 = %+v, want 3 bad", a.Windows[1])
	}
	if got := a.Windows[1].Sum; math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("cellA window 1 sum = %v, want 1.5", got)
	}

	// Determinism: the scan answers identically on repeat.
	if !reflect.DeepEqual(series, s.SeriesCounts("rebuffer_ratio", 0.02)) {
		t.Fatal("SeriesCounts not deterministic")
	}

	if got := s.Metrics(); !reflect.DeepEqual(got, []string{"pageload_s", "rebuffer_ratio"}) {
		t.Fatalf("Metrics() = %v", got)
	}
}

func TestFracAbove(t *testing.T) {
	h := newHist(1)
	for i := 0; i < 10; i++ {
		h.observe(0.001, 1)
	}
	if got := h.fracAbove(0.02); got != 0 {
		t.Fatalf("all below threshold: fracAbove = %v, want 0", got)
	}
	if got := h.fracAbove(0.0001); got != 1 {
		t.Fatalf("all above threshold: fracAbove = %v, want 1", got)
	}
	// Exactly at the common value: nothing is strictly above.
	if got := h.fracAbove(0.001); got != 0 {
		t.Fatalf("threshold at max: fracAbove = %v, want 0", got)
	}
	h2 := newHist(1)
	h2.observe(0.001, 5)
	h2.observe(10, 5)
	if got := h2.fracAbove(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("half above: fracAbove = %v, want 0.5", got)
	}
	// Empty histogram.
	if got := newHist(1).fracAbove(1); got != 0 {
		t.Fatalf("empty fracAbove = %v", got)
	}
	// Coarse histograms answer too (wider error bars, same contract).
	hc := newHist(CoarseFold)
	hc.observe(0.001, 4)
	hc.observe(10, 4)
	if got := hc.fracAbove(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("coarse half above: fracAbove = %v, want 0.5", got)
	}
}

func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	cases := []struct {
		fill float64
		want int
	}{{0, 1}, {0.2, 1}, {0.5, 3}, {1, 5}, {2, 5}, {-1, 1}}
	for _, c := range cases {
		if got := retryAfterSeconds(c.fill); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.fill, got, c.want)
		}
	}
}

// TestMetricsPrometheusEndpoint validates /metricz?format=prometheus under
// the text-format grammar (acceptance criterion) and rejects bad formats.
func TestMetricsPrometheusEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Config{NoSync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest([]Event{{Source: "t", Seq: 1, Metric: "pageload_s", Value: 2}}); err != nil {
		t.Fatal(err)
	}
	reg.Histogram("req_ms", 1, 10, 100).Observe(4)
	srv := NewServer(s, ServerConfig{Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metricz?format=prometheus", nil))
	if rr.Code != 200 {
		t.Fatalf("prometheus metricz = %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := promcheck.Parse(bytes.NewReader(rr.Body.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, rr.Body.String())
	}
	found := map[string]bool{}
	for _, f := range fams {
		found[f.Name] = true
	}
	for _, want := range []string{"qoestore_events_acked_total", "req_ms"} {
		if !found[want] {
			t.Fatalf("family %s missing from exposition:\n%s", want, rr.Body.String())
		}
	}

	// Unknown format is a 400, default stays NDJSON.
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metricz?format=xml", nil))
	if rr.Code != 400 {
		t.Fatalf("bad format = %d, want 400", rr.Code)
	}
	rr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metricz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Header().Get("Content-Type"), "ndjson") {
		t.Fatalf("default metricz = %d %q", rr.Code, rr.Header().Get("Content-Type"))
	}
}

// fakeBackpressure returns BackpressureError with a hint for the first N
// calls, then succeeds.
type fakeBackpressure struct {
	fails int
	hint  time.Duration
	calls int
}

func (f *fakeBackpressure) Ingest(events []Event) (IngestReceipt, error) {
	f.calls++
	if f.calls <= f.fails {
		return IngestReceipt{}, &BackpressureError{RetryAfter: f.hint}
	}
	return IngestReceipt{Accepted: len(events)}, nil
}

// TestEmitterHonorsRetryAfter: the server hint must floor the backoff delay
// (the emitter's own first-attempt backoff is far below 3s).
func TestEmitterHonorsRetryAfter(t *testing.T) {
	dst := &fakeBackpressure{fails: 2, hint: 3 * time.Second}
	var slept []time.Duration
	em, err := NewEmitter(dst, EmitterConfig{
		Source: "t",
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	em.Emit(Event{Metric: "m", Value: 1})
	em.Close()
	if st := em.Stats(); st.Delivered != 1 {
		t.Fatalf("stats = %+v, want 1 delivered", st)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d < 3*time.Second {
			t.Fatalf("sleep %d = %v, below the 3s Retry-After floor", i, d)
		}
	}
}

// TestHTTPIngestorParsesRetryAfter drives the real header path end to end:
// a 429 with Retry-After 4 must surface as a BackpressureError carrying 4s
// and still satisfy errors.Is(err, ErrBackpressure).
func TestHTTPIngestorParsesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "4")
		http.Error(w, "full", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	ing := &HTTPIngestor{BaseURL: ts.URL}
	_, err := ing.Ingest([]Event{{Source: "t", Seq: 1, Metric: "m", Value: 1}})
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("err = %v, want BackpressureError", err)
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("err = %v does not unwrap to ErrBackpressure", err)
	}
	if bp.RetryAfter != 4*time.Second {
		t.Fatalf("RetryAfter = %v, want 4s", bp.RetryAfter)
	}
}
