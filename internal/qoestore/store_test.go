package qoestore

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

func openStore(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestStoreIngestQuery(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{Window: time.Minute})
	defer s.Close()

	var batch []Event
	for i := 1; i <= 100; i++ {
		batch = append(batch, ev("src", uint64(i), time.Duration(i)*time.Second, "pageload_s", float64(i)/10))
	}
	rec, err := s.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 100 || rec.Dups != 0 || rec.Shed != 0 {
		t.Fatalf("receipt = %+v", rec)
	}

	res, err := s.Run(Query{Metric: "pageload_s", Quantiles: []float64{0.5, 0.99}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 {
		t.Fatalf("count = %d, want 100", res.Count)
	}
	if math.Abs(res.Mean-5.05) > 1e-9 {
		t.Fatalf("mean = %v, want 5.05", res.Mean)
	}
	if res.Min != 0.1 || res.Max != 10 {
		t.Fatalf("min/max = %v/%v", res.Min, res.Max)
	}
	// Values 0.1..10 span two decades; the fine grid's ~±17% per-bin error
	// bounds the quantile answers.
	for _, q := range res.Quantiles {
		exact := float64(int(math.Ceil(q.Q*100))) / 10
		if q.V < exact*0.8 || q.V > exact*1.25 {
			t.Fatalf("q%v = %v, want within a bin of %v", q.Q, q.V, exact)
		}
	}
	// Events 1s..100s at 1-minute windows span windows 0 and 1.
	if res.Windows != 2 {
		t.Fatalf("windows = %d, want 2", res.Windows)
	}
	if res.Degraded {
		t.Fatal("normal-mode ingest reported degraded data")
	}
}

func TestStoreQueryFilters(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	defer s.Close()

	mk := func(seq uint64, cell, cohort string, v float64) Event {
		return Event{Source: "s", Seq: seq, At: time.Second, Cell: cell, Workload: "browse", Cohort: cohort, Metric: "m", Value: v}
	}
	if _, err := s.Ingest([]Event{
		mk(1, "rr", "premium", 1), mk(2, "rr", "edge", 2), mk(3, "pf", "premium", 3),
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    Query
		want uint64
	}{
		{Query{Metric: "m"}, 3},
		{Query{Metric: "m", Cell: "rr"}, 2},
		{Query{Metric: "m", Cohort: "premium"}, 2},
		{Query{Metric: "m", Cell: "pf", Cohort: "premium"}, 1},
		{Query{Metric: "m", Cell: "nope"}, 0},
		{Query{Metric: "other"}, 0},
	}
	for _, c := range cases {
		res, err := s.Run(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != c.want {
			t.Fatalf("query %+v count = %d, want %d", c.q, res.Count, c.want)
		}
	}
	if _, err := s.Run(Query{}); err == nil {
		t.Fatal("metric-less query accepted")
	}
}

func TestStoreQueryTimeRange(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{Window: time.Minute})
	defer s.Close()
	var batch []Event
	for i := 1; i <= 10; i++ {
		batch = append(batch, ev("s", uint64(i), time.Duration(i)*time.Minute, "m", 1))
	}
	if _, err := s.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Query{Metric: "m", From: 3 * time.Minute, To: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Fatalf("ranged count = %d, want 3 (minutes 3,4,5)", res.Count)
	}
}

func TestStoreDuplicateIngestDedups(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	defer s.Close()
	batch := []Event{ev("s", 1, time.Second, "m", 1), ev("s", 2, time.Second, "m", 2)}
	if _, err := s.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	// An emitter that never saw the first ack re-sends the whole batch.
	rec, err := s.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accepted != 0 || rec.Dups != 2 {
		t.Fatalf("duplicate receipt = %+v, want all dups", rec)
	}
	res, _ := s.Run(Query{Metric: "m"})
	if res.Count != 2 {
		t.Fatalf("count after duplicate batch = %d, want 2", res.Count)
	}
}

func TestStoreRejectsInvalidEvents(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	defer s.Close()
	bad := []Event{
		{Seq: 1, Metric: "m", Value: 1},                        // no source
		{Source: "s", Metric: "m", Value: 1},                   // seq 0
		{Source: "s", Seq: 1, Value: 1},                        // no metric
		{Source: "s", Seq: 1, Metric: "m", At: -time.Second},   // negative time
		{Source: "s", Seq: 1, Metric: "m", Value: math.NaN()},  // NaN
		{Source: "s", Seq: 1, Metric: "m", Value: math.Inf(1)}, // Inf
	}
	for _, e := range bad {
		if _, err := s.Ingest([]Event{e}); err == nil {
			t.Fatalf("invalid event accepted: %+v", e)
		}
	}
	if _, err := s.Run(Query{Metric: "m"}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRetentionBoundsMemory(t *testing.T) {
	reg := obs.NewRegistry()
	s := openStore(t, t.TempDir(), Config{Window: time.Minute, Retain: 5, Metrics: reg})
	defer s.Close()

	for i := 1; i <= 50; i++ {
		if _, err := s.Ingest([]Event{ev("s", uint64(i), time.Duration(i)*time.Minute, "m", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	nw := len(s.windows)
	s.mu.Unlock()
	if nw > 5 {
		t.Fatalf("%d windows retained, want <= 5", nw)
	}
	if got := s.Stats().Evicted; got != 45 {
		t.Fatalf("evicted = %d, want 45", got)
	}
	// Only the newest windows answer.
	res, _ := s.Run(Query{Metric: "m"})
	if res.Count != 5 {
		t.Fatalf("count = %d, want 5 retained", res.Count)
	}
	if e, ok := reg.Snapshot().Get("qoestore_windows_evicted"); !ok || e.Value != 45 {
		t.Fatalf("registry eviction counter = %+v, %v", e, ok)
	}
}

func TestStoreCloseIdempotentAndRejectsIngest(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	if _, err := s.Ingest([]Event{ev("s", 1, 0, "m", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]Event{ev("s", 2, 0, "m", 2)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close = %v, want ErrClosed", err)
	}
	// Queries still answer from the frozen state.
	res, err := s.Run(Query{Metric: "m"})
	if err != nil || res.Count != 1 {
		t.Fatalf("query after close = %+v, %v", res, err)
	}
}

func TestStoreRestartPreservesState(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{})
	if _, err := s.Ingest([]Event{ev("a", 1, time.Second, "m", 1), ev("b", 1, time.Second, "m", 3)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Config{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Records != 2 || rec.Applied != 2 || rec.Dups != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	res, _ := s2.Run(Query{Metric: "m"})
	if res.Count != 2 || res.Mean != 2 {
		t.Fatalf("recovered query = %+v", res)
	}
	// Sequence state also recovered: the old events are dups now.
	r, err := s2.Ingest([]Event{ev("a", 1, time.Second, "m", 1)})
	if err != nil || r.Dups != 1 {
		t.Fatalf("re-ingest after restart = %+v, %v", r, err)
	}
}
