package qoestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// WAL framing. Each segment file starts with an 8-byte magic; each record
// is [u32 payload length][u32 CRC-32C of payload][payload]. A record is
// valid only if the full frame is present and the CRC matches; recovery
// stops a segment at the first invalid frame, and for the final segment
// truncates the file back to the last valid frame (a torn tail is the
// expected shape of a crash mid-append).
const (
	walMagic      = "QOESWAL1"
	walHeaderLen  = len(walMagic)
	walFrameMax   = 1 << 20 // sanity bound on a single record
	segmentPrefix = "wal-"
	segmentSuffix = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DefaultMaxSegmentBytes rotates segments at 4 MiB — small enough that
// retention/archival tooling has units to work with, large enough that
// rotation cost is noise.
const DefaultMaxSegmentBytes = 4 << 20

// wal is the segmented append-only log. Not safe for concurrent use; the
// store's single writer goroutine owns it.
type wal struct {
	dir     string
	maxSeg  int64
	nosync  bool
	f       *os.File
	size    int64
	index   int
	scratch []byte
}

// segmentName formats the on-disk name for segment i.
func segmentName(i int) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, i, segmentSuffix)
}

// segmentIndex parses a segment file name; ok is false for foreign files.
func segmentIndex(name string) (int, bool) {
	var i int
	_, err := fmt.Sscanf(name, segmentPrefix+"%08d"+segmentSuffix, &i)
	return i, err == nil
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if i, ok := segmentIndex(ent.Name()); ok {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// RecoveryStats summarizes what WAL recovery found and repaired.
type RecoveryStats struct {
	Segments int // segment files scanned
	Records  int // valid records replayed
	Applied  int // records applied (Records minus duplicates)
	Dups     int // records skipped as already-applied duplicates
	// TornBytes counts bytes truncated off the final segment's torn tail.
	TornBytes int64
	// CorruptSegments counts non-final segments whose replay stopped early
	// at a corrupt frame (their tail records are lost but later segments
	// still replay).
	CorruptSegments int
	// Invalid counts records whose frames were intact but whose payloads
	// failed validation (skipped, not fatal).
	Invalid int
}

// recoverSegment replays one segment file, calling apply for every valid
// record. It returns the offset just past the last valid frame and whether
// the segment ended cleanly (false means a torn or corrupt frame stopped
// the scan).
func recoverSegment(path string, apply func(Event)) (validEnd int64, clean bool, stats struct{ records, invalid int }, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, stats, err
	}
	if len(data) < walHeaderLen || string(data[:walHeaderLen]) != walMagic {
		// Empty or headerless file: everything in it is torn tail.
		return 0, len(data) == 0, stats, nil
	}
	off := int64(walHeaderLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, true, stats, nil
		}
		if len(rest) < 8 {
			return off, false, stats, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > walFrameMax || uint64(len(rest)-8) < uint64(n) {
			return off, false, stats, nil
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, false, stats, nil
		}
		ev, derr := decodeEvent(payload)
		if derr != nil || ev.validate() != nil {
			// The frame survived its CRC but the payload is nonsense (a
			// foreign or future record format). Skip it rather than lose
			// the rest of the segment.
			stats.invalid++
		} else {
			stats.records++
			apply(ev)
		}
		off += int64(8 + n)
	}
}

// openWAL scans dir, replays every segment through apply, repairs the
// final segment's torn tail, and returns a WAL positioned to append after
// the last valid record.
func openWAL(dir string, maxSeg int64, nosync bool, apply func(Event)) (*wal, *RecoveryStats, error) {
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	st := &RecoveryStats{Segments: len(segs)}
	w := &wal{dir: dir, maxSeg: maxSeg, nosync: nosync}

	for i, seg := range segs {
		path := filepath.Join(dir, segmentName(seg))
		validEnd, clean, s, err := recoverSegment(path, apply)
		if err != nil {
			return nil, nil, fmt.Errorf("qoestore: recovering %s: %w", path, err)
		}
		st.Records += s.records
		st.Invalid += s.invalid
		if !clean {
			if i == len(segs)-1 {
				// Torn tail on the final segment: the crash interrupted an
				// append mid-frame. Truncate back to the last valid frame.
				info, err := os.Stat(path)
				if err != nil {
					return nil, nil, err
				}
				st.TornBytes += info.Size() - validEnd
				if err := os.Truncate(path, validEnd); err != nil {
					return nil, nil, fmt.Errorf("qoestore: truncating torn tail of %s: %w", path, err)
				}
			} else {
				// Corruption mid-way through an older segment: its tail is
				// lost, but later segments are independent — keep going.
				st.CorruptSegments++
			}
		}
	}

	// Open the final segment for appending (creating the first one on a
	// fresh directory).
	w.index = 1
	if len(segs) > 0 {
		w.index = segs[len(segs)-1]
	}
	if err := w.openSegment(); err != nil {
		return nil, nil, err
	}
	return w, st, nil
}

// openSegment opens (or creates) the current segment for appending.
func (w *wal) openSegment() error {
	path := filepath.Join(w.dir, segmentName(w.index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, info.Size()
	if w.size < int64(walHeaderLen) {
		// Fresh or previously-empty segment: (re)write the header. An
		// empty segment file left by a crash between create and header
		// write recovers to this same path.
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return err
		}
		w.size = int64(walHeaderLen)
	}
	if _, err := f.Seek(w.size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	return nil
}

// rotate finalizes the current segment and starts the next one.
func (w *wal) rotate() error {
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.index++
	return w.openSegment()
}

// append frames and writes a batch of events, then syncs once. The batch
// is durable — and may be acknowledged — only after append returns nil.
func (w *wal) append(events []Event) error {
	if w.f == nil {
		return errors.New("qoestore: wal is closed")
	}
	if len(events) == 0 {
		return nil
	}
	buf := w.scratch[:0]
	for i := range events {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
		buf = events[i].encode(buf)
		payload := buf[start+8:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	}
	w.scratch = buf[:0]
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.size += int64(len(buf))
	if err := w.sync(); err != nil {
		return err
	}
	if w.size >= w.maxSeg {
		return w.rotate()
	}
	return nil
}

// sync flushes the OS buffers unless the WAL was opened nosync (benchmarks
// and tests that model durability elsewhere).
func (w *wal) sync() error {
	if w.nosync || w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// close syncs and closes the active segment.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// abort closes the active segment file descriptor without syncing — the
// simulated hard-kill used by chaos tests.
func (w *wal) abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}
