package cliconfig

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sample() Scenario {
	return Scenario{
		Seed:        9,
		Horizon:     Duration(12 * time.Minute),
		UEs:         16,
		Policy:      "pf",
		Workload:    "youtube",
		Network:     "lte",
		Gains:       "0.5:1.5",
		Cells:       4,
		MobilityMps: 20,
		X2Latency:   Duration(10 * time.Millisecond),
		Workers:     2,
		ThrottleBps: 280e3,
		LossRate:    0.02,
		Remedy: &Remedy{
			Interval:         Duration(2 * time.Second),
			ActionLatency:    Duration(100 * time.Millisecond),
			Cooldown:         Duration(10 * time.Second),
			MaxActionsPerUE:  4,
			EnergyPerActionJ: 0.15,
			DisableRRCRetune: true,
			Cells:            []int{0, 2},
		},
		Analyzer: "parallel",
	}
}

// TestRoundTrip: a fully-populated scenario survives encode → decode
// byte-exactly, and durations render as human-readable strings.
func TestRoundTrip(t *testing.T) {
	in := sample()
	b, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"horizon": "12m0s"`) {
		t.Fatalf("horizon not encoded as a duration string:\n%s", b)
	}
	var out Scenario
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", in, out)
	}
}

// TestLoadFileAndStdin: Load reads a file path, "-" reads stdin, "" is the
// zero scenario, and unknown fields are rejected loudly.
func TestLoadFileAndStdin(t *testing.T) {
	b, err := json.Marshal(sample())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	fromFile, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	fromStdin, err := Load("-", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, fromStdin) || !reflect.DeepEqual(fromFile, sample()) {
		t.Fatalf("file/stdin loads diverged: %+v vs %+v", fromFile, fromStdin)
	}

	zero, err := Load("", nil)
	if err != nil || !reflect.DeepEqual(zero, Scenario{}) {
		t.Fatalf("Load(\"\") = %+v, %v", zero, err)
	}

	if _, err := Load("-", strings.NewReader(`{"uez": 4}`)); err == nil {
		t.Fatal("unknown field accepted silently")
	}
	if _, err := Load("-", strings.NewReader(`{"horizon": true}`)); err == nil {
		t.Fatal("bad duration type accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json"), nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDurationForms: durations decode from strings and from bare
// nanosecond numbers.
func TestDurationForms(t *testing.T) {
	var s Scenario
	if err := json.Unmarshal([]byte(`{"horizon": "90s"}`), &s); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.Horizon) != 90*time.Second {
		t.Fatalf("horizon = %v", time.Duration(s.Horizon))
	}
	if err := json.Unmarshal([]byte(`{"x2_latency": 5000000}`), &s); err != nil {
		t.Fatal(err)
	}
	if time.Duration(s.X2Latency) != 5*time.Millisecond {
		t.Fatalf("x2 = %v", time.Duration(s.X2Latency))
	}
}

// TestPeekPath: every flag spelling the flag package accepts is found, and
// scanning stops at the terminator.
func TestPeekPath(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-config", "a.json"}, "a.json"},
		{[]string{"--config", "a.json"}, "a.json"},
		{[]string{"-config=a.json"}, "a.json"},
		{[]string{"--config=-"}, "-"},
		{[]string{"-ues", "8", "-config", "b.json", "-seed", "1"}, "b.json"},
		{[]string{"-ues", "8"}, ""},
		{[]string{"--", "-config", "a.json"}, ""},
		{nil, ""},
	}
	for _, c := range cases {
		if got := PeekPath(c.args); got != c.want {
			t.Errorf("PeekPath(%q) = %q, want %q", c.args, got, c.want)
		}
	}
}

// TestParamsMapping: the scenario maps onto experiment Params field for
// field, including the remedy spec.
func TestParamsMapping(t *testing.T) {
	p := sample().Params()
	if p.Horizon != 12*time.Minute || p.UEs != 16 || p.Cells != 4 ||
		p.SpeedMps != 20 || p.LossRate != 0.02 || p.ThrottleBps != 280e3 {
		t.Fatalf("params = %+v", p)
	}
	if p.Remedy == nil || !p.Remedy.DisableRRCRetune || p.Remedy.Interval != 2*time.Second {
		t.Fatalf("remedy spec = %+v", p.Remedy)
	}
	zero := Scenario{}.Params()
	if zero.Remedy != nil {
		t.Fatal("zero scenario produced a remedy spec")
	}
}
