// Package cliconfig is the shared scenario configuration behind the
// qoefleet and qoeexp command lines. Both tools grew flag sprawl naming the
// same knobs (seed, horizon, population, topology, impairment,
// remediation); this package gives them one JSON-serializable struct,
// loadable with `-config file.json` (`-config -` reads stdin), with
// command-line flags overriding whatever the file set — the file provides
// the flag defaults, so standard flag parsing implements the precedence.
package cliconfig

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("2s", "150ms"). Decoding accepts either a duration string or a bare
// number of nanoseconds.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	case string:
		dur, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("cliconfig: bad duration %q: %w", x, err)
		}
		*d = Duration(dur)
		return nil
	}
	return fmt.Errorf("cliconfig: duration must be a string or number, got %T", v)
}

// Remedy configures the fleet's remediation controller from a config file.
// Field semantics match fleet.RemedySpec (zero values mean the spec's
// defaults).
type Remedy struct {
	Interval            Duration `json:"interval,omitempty"`
	ActionLatency       Duration `json:"action_latency,omitempty"`
	Cooldown            Duration `json:"cooldown,omitempty"`
	MaxActionsPerUE     int      `json:"max_actions_per_ue,omitempty"`
	EnergyPerActionJ    float64  `json:"energy_per_action_j,omitempty"`
	EdgeDelay           Duration `json:"edge_delay,omitempty"`
	Observe             bool     `json:"observe,omitempty"`
	DisableServerSwitch bool     `json:"disable_server_switch,omitempty"`
	DisableABR          bool     `json:"disable_abr,omitempty"`
	DisableRRCRetune    bool     `json:"disable_rrc_retune,omitempty"`
	Cells               []int    `json:"cells,omitempty"`
}

// Spec converts to the fleet's remedy specification.
func (r *Remedy) Spec() *fleet.RemedySpec {
	if r == nil {
		return nil
	}
	return &fleet.RemedySpec{
		Interval:            time.Duration(r.Interval),
		ActionLatency:       time.Duration(r.ActionLatency),
		Cooldown:            time.Duration(r.Cooldown),
		MaxActionsPerUE:     r.MaxActionsPerUE,
		EnergyPerActionJ:    r.EnergyPerActionJ,
		EdgeDelay:           time.Duration(r.EdgeDelay),
		Observe:             r.Observe,
		DisableServerSwitch: r.DisableServerSwitch,
		DisableABR:          r.DisableABR,
		DisableRRCRetune:    r.DisableRRCRetune,
		Cells:               r.Cells,
	}
}

// Scenario is the shared CLI scenario configuration. Zero values mean "not
// set" — each tool applies its own defaults after loading, and registers
// its flags with the loaded values as defaults so explicit flags win.
type Scenario struct {
	Seed    int64    `json:"seed,omitempty"`
	Horizon Duration `json:"horizon,omitempty"`

	// Fleet shape.
	UEs      int    `json:"ues,omitempty"`
	Policy   string `json:"policy,omitempty"`   // rr | pf
	Workload string `json:"workload,omitempty"` // youtube | browse | facebook
	Network  string `json:"network,omitempty"`  // lte | 3g | 3g-simple | wifi
	Gains    string `json:"gains,omitempty"`    // lo:hi link-quality spread

	// Topology and mobility.
	Cells       int      `json:"cells,omitempty"`
	MobilityMps float64  `json:"mobility_mps,omitempty"`
	X2Latency   Duration `json:"x2_latency,omitempty"`
	Workers     int      `json:"workers,omitempty"`

	// Impairment.
	ThrottleBps float64 `json:"throttle_bps,omitempty"`
	LossRate    float64 `json:"loss_rate,omitempty"`

	// Remediation control plane (nil = controller-free).
	Remedy *Remedy `json:"remedy,omitempty"`

	// Tooling.
	Analyzer string `json:"analyzer,omitempty"` // parallel | serial
}

// Params maps the scenario onto the experiment-package knobs.
func (s Scenario) Params() experiments.Params {
	return experiments.Params{
		Horizon:     time.Duration(s.Horizon),
		UEs:         s.UEs,
		Cells:       s.Cells,
		SpeedMps:    s.MobilityMps,
		LossRate:    s.LossRate,
		ThrottleBps: s.ThrottleBps,
		Remedy:      s.Remedy.Spec(),
	}
}

// PeekPath pre-scans a raw argument list for the -config flag (all the
// forms the flag package accepts) so the file can be loaded before flags
// are registered — the loaded values become the flag defaults, which is
// what makes explicit flags override the file.
func PeekPath(args []string) string {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			return ""
		}
		if !strings.HasPrefix(a, "-") {
			continue
		}
		name := strings.TrimLeft(a, "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			if name[:eq] == "config" {
				return name[eq+1:]
			}
			continue
		}
		if name == "config" && i+1 < len(args) {
			return args[i+1]
		}
	}
	return ""
}

// Load reads a scenario config from path; "-" reads stdin, "" returns the
// zero scenario. Unknown fields are rejected — a typo in a config file
// must not silently become a no-op.
func Load(path string, stdin io.Reader) (Scenario, error) {
	var s Scenario
	if path == "" {
		return s, nil
	}
	var r io.Reader
	if path == "-" {
		r = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return s, fmt.Errorf("cliconfig: %w", err)
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("cliconfig: parsing %s: %w", path, err)
	}
	return s, nil
}
