package pcap

import (
	"bytes"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/simtime"
)

func capFixture(t *testing.T) *Capture {
	t.Helper()
	k := simtime.NewKernel(1)
	n := netsim.NewNetwork(k, radio.ProfileWiFi(), netip.MustParseAddr("10.0.0.2"), 5*time.Millisecond)
	c := NewCapture()
	c.Attach(n.Device)
	srv := n.MustAddServer(netip.MustParseAddr("93.184.216.34"))
	srv.Listen(80, func(conn *netsim.Conn) {
		conn.OnReceive(func(d []byte) { conn.Send(bytes.Repeat([]byte{0x55}, 9000)) })
	})
	conn := n.Device.Dial(netsim.Endpoint{Addr: netip.MustParseAddr("93.184.216.34"), Port: 80})
	conn.Send([]byte("GET / HTTP/1.1"))
	k.Run()
	return c
}

func TestCaptureRecordsTraffic(t *testing.T) {
	c := capFixture(t)
	if c.Len() < 6 { // SYN, SYN-ACK, ACK, request, data, ACKs...
		t.Fatalf("captured only %d frames", c.Len())
	}
	var in, out int
	for _, r := range c.Records() {
		if r.Inbound {
			in++
		} else {
			out++
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("directions missing: in=%d out=%d", in, out)
	}
	// Timestamps nondecreasing.
	for i := 1; i < c.Len(); i++ {
		if c.Records()[i].At < c.Records()[i-1].At {
			t.Fatal("records out of time order")
		}
	}
}

func TestRecordLazyDecode(t *testing.T) {
	c := capFixture(t)
	r := &c.Records()[0]
	p1, err := r.Packet()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := r.Packet()
	if p1 != p2 {
		t.Fatal("decode not cached")
	}
	if p1.Proto != netsim.ProtoTCP {
		t.Fatalf("first packet proto = %v, want TCP (SYN)", p1.Proto)
	}
	if p1.Flags&netsim.FlagSYN == 0 {
		t.Fatal("first captured frame is not the SYN")
	}
}

func TestPcapFileRoundtrip(t *testing.T) {
	c := capFixture(t)
	path := filepath.Join(t.TempDir(), "trace.pcap")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != c.Len() {
		t.Fatalf("read %d records, wrote %d", len(got), c.Len())
	}
	for i, r := range got {
		orig := c.Records()[i]
		if !bytes.Equal(r.Data, orig.Data) {
			t.Fatalf("record %d data mismatch", i)
		}
		// Timestamps quantized to microseconds by the format.
		if d := r.At - orig.At; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("record %d time skew %v", i, d)
		}
		if _, err := r.Packet(); err != nil {
			t.Fatalf("record %d undecodable after roundtrip: %v", i, err)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a pcap file at all......"))); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func TestSetEnabledPausesCapture(t *testing.T) {
	k := simtime.NewKernel(2)
	s := netsim.NewStack(k, netip.MustParseAddr("10.0.0.2"))
	s.SetOutput(func(*netsim.Packet) {})
	c := NewCapture()
	c.Attach(s)
	send := func() {
		s.SendUDP(netsim.Endpoint{Addr: s.Addr(), Port: 1}, netsim.Endpoint{Addr: netip.MustParseAddr("1.1.1.1"), Port: 2}, []byte("x"))
	}
	send()
	c.SetEnabled(false)
	send()
	send()
	c.SetEnabled(true)
	send()
	if c.Len() != 2 {
		t.Fatalf("captured %d, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear records")
	}
}

func TestDNSDecodeFromCapture(t *testing.T) {
	k := simtime.NewKernel(3)
	n := netsim.NewNetwork(k, radio.ProfileWiFi(), netip.MustParseAddr("10.0.0.2"), 5*time.Millisecond)
	c := NewCapture()
	c.Attach(n.Device)
	dnsAddr := netip.MustParseAddr("8.8.8.8")
	dns := n.MustAddServer(dnsAddr)
	netsim.AttachDNSServer(dns, map[string]netip.Addr{"api.facebook.com": netip.MustParseAddr("31.13.70.36")})
	r := netsim.NewResolver(n.Device, netsim.Endpoint{Addr: dnsAddr, Port: netsim.DNSPort})
	r.Resolve("api.facebook.com", func(netip.Addr, bool) {})
	k.Run()

	var query, resp *netsim.DNSMessage
	for i := range c.Records() {
		if m := c.Records()[i].DNS(); m != nil {
			if m.Response {
				resp = m
			} else {
				query = m
			}
		}
	}
	if query == nil || resp == nil {
		t.Fatal("DNS query/response not decodable from capture")
	}
	if query.Name != "api.facebook.com" || resp.Answer != netip.MustParseAddr("31.13.70.36") {
		t.Fatalf("bad DNS decode: q=%+v r=%+v", query, resp)
	}
}
