// Package pcap is the simulation's tcpdump: it captures the wire frames
// crossing a host's IP layer with virtual timestamps, and reads/writes them
// in the standard libpcap file format (LINKTYPE_RAW, so real tcpdump and
// Wireshark can open the traces).
//
// Decoding follows the gopacket layering idiom: a captured Record lazily
// decodes into typed layers (IPv4/TCP/UDP via netsim.Unmarshal, DNS via
// netsim.UnmarshalDNS) only when the analyzer asks.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Record is one captured frame.
type Record struct {
	At      simtime.Time
	Inbound bool // true when the packet arrived at the capturing host
	Data    []byte

	decoded *netsim.Packet
	decErr  error
}

// Packet lazily decodes the record's wire bytes. The result is cached.
func (r *Record) Packet() (*netsim.Packet, error) {
	if r.decoded == nil && r.decErr == nil {
		r.decoded, r.decErr = netsim.Unmarshal(r.Data)
	}
	return r.decoded, r.decErr
}

// DNS decodes the record as a DNS message, returning nil if the record is
// not a well-formed UDP/53 DNS packet.
func (r *Record) DNS() *netsim.DNSMessage {
	p, err := r.Packet()
	if err != nil || p.Proto != netsim.ProtoUDP {
		return nil
	}
	if p.Src.Port != netsim.DNSPort && p.Dst.Port != netsim.DNSPort {
		return nil
	}
	m, err := netsim.UnmarshalDNS(p.Payload)
	if err != nil {
		return nil
	}
	return m
}

// Capture accumulates records from a host stack, like tcpdump -i any on the
// device.
type Capture struct {
	records []Record
	enabled bool
}

// NewCapture returns an empty, enabled capture.
func NewCapture() *Capture { return &Capture{enabled: true} }

// Attach installs the capture on a stack. One capture may observe multiple
// stacks, though QoE Doctor only ever captures on the device.
func (c *Capture) Attach(s *netsim.Stack) {
	s.AttachCapture(func(at simtime.Time, pkt *netsim.Packet, inbound bool) {
		if !c.enabled {
			return
		}
		c.records = append(c.records, Record{At: at, Inbound: inbound, Data: pkt.Marshal()})
	})
}

// SetEnabled pauses or resumes capturing (tcpdump start/stop between
// experiment repetitions).
func (c *Capture) SetEnabled(on bool) { c.enabled = on }

// Reset discards all captured records.
func (c *Capture) Reset() { c.records = nil }

// Records returns the captured records in time order.
func (c *Capture) Records() []Record { return c.records }

// Len returns the number of captured frames.
func (c *Capture) Len() int { return len(c.records) }

// libpcap file format constants.
const (
	pcapMagic   = 0xa1b2c3d4 // microsecond-resolution, native byte order
	pcapVersion = 0x0002_0004
	linktypeRaw = 101 // raw IPv4/IPv6
	snapLen     = 65535
)

// Write emits the capture in libpcap format.
func (c *Capture) Write(w io.Writer) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linktypeRaw)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, r := range c.records {
		usec := int64(r.At) / 1000
		binary.LittleEndian.PutUint32(rec[0:], uint32(usec/1e6))
		binary.LittleEndian.PutUint32(rec[4:], uint32(usec%1e6))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(r.Data)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes the capture to path in libpcap format.
func (c *Capture) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Read parses a libpcap stream written by Write. Direction information is
// not stored in the file format; inbound/outbound is reconstructed by the
// caller (the analyzer infers it from the device address).
func Read(r io.Reader) ([]Record, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != pcapMagic {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linktypeRaw {
		return nil, fmt.Errorf("pcap: unsupported linktype %d", lt)
	}
	var out []Record
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("pcap: reading record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:])
		usec := binary.LittleEndian.Uint32(rec[4:])
		capLen := binary.LittleEndian.Uint32(rec[8:])
		if capLen > snapLen {
			return nil, fmt.Errorf("pcap: absurd capture length %d", capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap: reading frame: %w", err)
		}
		at := simtime.Time(sec)*1e9 + simtime.Time(usec)*1e3
		out = append(out, Record{At: at, Data: data})
	}
}

// ReadFile reads a libpcap file from path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
