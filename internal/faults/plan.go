package faults

import (
	"time"

	"repro/internal/simtime"
)

// Direction selects which side of the carrier path a chain impairs. The two
// directions get independent RNG streams derived from one plan seed, so an
// uplink impairment never perturbs the downlink drop sequence.
type Direction int

const (
	Uplink Direction = iota
	Downlink
)

// Outage is one scheduled bearer outage (coverage gap, handover blackout).
type Outage struct {
	Start    time.Duration // virtual time at which the bearer goes down
	Duration time.Duration
}

// Plan declares a full impairment scenario. The zero value is a perfect
// network. All randomness is derived from the seed passed to Build — which
// the testbed takes from Options.Seed — so two runs of the same plan with the
// same seed produce byte-identical fault sequences.
type Plan struct {
	// LossProb drops packets i.i.d. with this probability.
	LossProb float64
	// GE enables Gilbert–Elliott burst loss (nil = disabled).
	GE *GEParams
	// DupProb delivers packets twice with this probability.
	DupProb float64
	// CorruptProb corrupts (and therefore drops, at the receiver's
	// checksum) packets with this probability.
	CorruptProb float64
	// ReorderProb holds a packet back ReorderDelay with this probability,
	// letting later packets overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration // default 30ms when ReorderProb > 0
	// JitterMax adds a uniform [0, JitterMax] FIFO-preserving delay per
	// packet (rate jitter).
	JitterMax time.Duration
	// Outages schedules bearer outages, injected into the radio layer.
	Outages []Outage
}

// Empty reports whether the plan impairs nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (p.LossProb <= 0 && p.GE == nil && p.DupProb <= 0 &&
		p.CorruptProb <= 0 && p.ReorderProb <= 0 && p.JitterMax <= 0 &&
		len(p.Outages) == 0)
}

// stage seed derivation: one stream per (plan seed, direction, stage slot).
func stageSeed(seed int64, dir Direction, slot int64) int64 {
	return seed*1000003 + int64(dir)*101 + slot
}

// Build constructs the impairment chain for one direction, deterministically
// seeded from seed. A nil or empty plan yields an empty chain (pure
// pass-through). The chain's downstream defaults to PassQdisc; compose it
// with a throttle via SetNext.
func (p *Plan) Build(k *simtime.Kernel, dir Direction, seed int64) *Chain {
	var stages []Stage
	if p != nil {
		if p.GE != nil {
			stages = append(stages, NewGilbertElliott(stageSeed(seed, dir, 1), *p.GE))
		}
		if p.LossProb > 0 {
			stages = append(stages, NewIIDLoss(stageSeed(seed, dir, 2), p.LossProb))
		}
		if p.CorruptProb > 0 {
			stages = append(stages, NewCorrupter(stageSeed(seed, dir, 3), p.CorruptProb))
		}
		if p.DupProb > 0 {
			stages = append(stages, NewDuplicator(stageSeed(seed, dir, 4), p.DupProb))
		}
		if p.ReorderProb > 0 {
			d := p.ReorderDelay
			if d <= 0 {
				d = 30 * time.Millisecond
			}
			stages = append(stages, NewReorderer(k, stageSeed(seed, dir, 5), p.ReorderProb, d))
		}
		if p.JitterMax > 0 {
			stages = append(stages, NewJitter(k, stageSeed(seed, dir, 6), p.JitterMax))
		}
	}
	return NewChain(stages...)
}
