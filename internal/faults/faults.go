// Package faults is the testbed's network-impairment subsystem: a set of
// composable, deterministic fault injectors that plug into the carrier Qdisc
// slot of internal/netsim, plus scheduled bearer outages injected into
// internal/radio.
//
// QoE Doctor's purpose is diagnosing QoE problems, so the testbed must be
// able to *create* the pathologies the analyzer explains: random and bursty
// packet loss (Gilbert–Elliott), reordering, duplication, corruption, rate
// jitter, and coverage gaps. Every injector draws from its own seeded RNG —
// independent of the kernel RNG, so adding or removing an impairment never
// perturbs the rest of the simulation — and the same seed always yields the
// same fault sequence, keeping impaired runs bit-for-bit reproducible.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Stage is one impairment applied to a packet on its way through a Chain.
// Apply either forwards the packet downstream (possibly later, or more than
// once for a duplicator) by calling forward, or drops it by calling drop
// (and never calling forward).
type Stage interface {
	Apply(wireLen int, forward func(), drop func())
	// Name labels the stage in stats output.
	Name() string
}

// Chain composes stages in order in front of a downstream qdisc (the
// carrier throttle, or a pass-through). It implements netsim.Qdisc, so it
// slots directly into Network.ULQdisc / Network.DLQdisc.
type Chain struct {
	stages []Stage
	next   netsim.Qdisc

	// tr/drops are the optional observability hooks (SetObs): every
	// stage-level drop emits a radio-layer trace instant and bumps the
	// counter. The fault chain models link-layer impairment, so its drops
	// are radio-loss ground truth — the analyzer's attribution pass counts
	// them inside QoE windows to pin loss-induced stalls on the radio layer
	// instead of guessing "transport" from TCP retransmissions alone.
	tr    *obs.Trace
	drops *obs.Counter
	label string
}

// NewChain builds a chain over the given stages with a pass-through
// downstream.
func NewChain(stages ...Stage) *Chain {
	return &Chain{stages: stages, next: netsim.PassQdisc{}}
}

// SetNext installs the downstream qdisc the chain feeds into (e.g. a
// Shaper or Policer). nil restores the pass-through.
func (c *Chain) SetNext(q netsim.Qdisc) {
	if q == nil {
		q = netsim.PassQdisc{}
	}
	c.next = q
}

// Enqueue implements netsim.Qdisc.
func (c *Chain) Enqueue(wireLen int, deliver func(), drop func()) {
	c.apply(0, wireLen, deliver, drop)
}

// SetObs attaches drop instrumentation: a radio-layer "fault:drop" trace
// instant per dropped packet (under the current correlation scope, so
// drops land inside the user action that suffered them) plus a
// fault_<label>_drops counter. Nil sinks detach for free.
func (c *Chain) SetObs(tr *obs.Trace, reg *obs.Registry, label string) {
	c.tr = tr
	c.label = label
	c.drops = reg.Counter("fault_" + label + "_drops")
}

func (c *Chain) apply(i, wireLen int, deliver, drop func()) {
	if i >= len(c.stages) {
		c.next.Enqueue(wireLen, deliver, drop)
		return
	}
	c.stages[i].Apply(wireLen, func() { c.apply(i+1, wireLen, deliver, drop) }, func() {
		c.drops.Inc()
		if c.tr != nil {
			c.tr.Instant(obs.LayerRadio, "fault:drop", c.tr.Scope(),
				obs.Attr{Key: "chain", Val: c.label},
				obs.Attr{Key: "len", Val: fmt.Sprintf("%d", wireLen)})
		}
		if drop != nil {
			drop()
		}
	})
}

// Stats summarizes per-stage drop/duplicate counts for reports and tests.
func (c *Chain) Stats() string {
	parts := make([]string, 0, len(c.stages))
	for _, s := range c.stages {
		parts = append(parts, s.Name())
	}
	return strings.Join(parts, ", ")
}

// Dropped sums packets dropped across all loss-like stages.
func (c *Chain) Dropped() int {
	n := 0
	for _, s := range c.stages {
		if d, ok := s.(interface{ dropped() int }); ok {
			n += d.dropped()
		}
	}
	return n
}

// ---- individual impairments ----

// IIDLoss drops each packet independently with probability P.
type IIDLoss struct {
	rng   *rand.Rand
	P     float64
	Drops int
}

// NewIIDLoss builds an i.i.d. loss stage.
func NewIIDLoss(seed int64, p float64) *IIDLoss {
	return &IIDLoss{rng: rand.New(rand.NewSource(seed)), P: p}
}

// Apply implements Stage.
func (l *IIDLoss) Apply(wireLen int, forward, drop func()) {
	if l.rng.Float64() < l.P {
		l.Drops++
		drop()
		return
	}
	forward()
}

func (l *IIDLoss) Name() string { return fmt.Sprintf("iid-loss(p=%g,drops=%d)", l.P, l.Drops) }
func (l *IIDLoss) dropped() int { return l.Drops }

// GEParams parameterizes a Gilbert–Elliott burst-loss channel: a two-state
// Markov chain (good/bad) advanced per packet, with a per-state loss
// probability. The stationary bad-state share is PGoodBad/(PGoodBad+PBadGood)
// and the mean burst length 1/PBadGood packets.
type GEParams struct {
	PGoodBad float64 // P(good -> bad) per packet
	PBadGood float64 // P(bad -> good) per packet
	LossGood float64 // loss probability in the good state (often ~0)
	LossBad  float64 // loss probability in the bad state (often ~1)
}

// GEForMeanLoss returns parameters tuned so the long-run loss rate is
// approximately mean, arranged in bursts of avgBurst packets (the ERRANT-
// style "realistic RAN" configuration: bursty rather than i.i.d.).
func GEForMeanLoss(mean float64, avgBurst float64) GEParams {
	if avgBurst < 1 {
		avgBurst = 1
	}
	pBG := 1 / avgBurst
	// Stationary bad share = mean/LossBad with LossBad = 1, LossGood = 0:
	// pGB/(pGB+pBG) = mean  =>  pGB = pBG*mean/(1-mean).
	if mean >= 1 {
		mean = 0.999
	}
	pGB := pBG * mean / (1 - mean)
	return GEParams{PGoodBad: pGB, PBadGood: pBG, LossGood: 0, LossBad: 1}
}

// GilbertElliott is the burst-loss stage.
type GilbertElliott struct {
	rng   *rand.Rand
	p     GEParams
	bad   bool
	Drops int
}

// NewGilbertElliott builds a GE stage starting in the good state.
func NewGilbertElliott(seed int64, p GEParams) *GilbertElliott {
	return &GilbertElliott{rng: rand.New(rand.NewSource(seed)), p: p}
}

// Apply implements Stage.
func (g *GilbertElliott) Apply(wireLen int, forward, drop func()) {
	if g.bad {
		if g.rng.Float64() < g.p.PBadGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.p.PGoodBad {
		g.bad = true
	}
	loss := g.p.LossGood
	if g.bad {
		loss = g.p.LossBad
	}
	if g.rng.Float64() < loss {
		g.Drops++
		drop()
		return
	}
	forward()
}

func (g *GilbertElliott) Name() string { return fmt.Sprintf("ge-loss(drops=%d)", g.Drops) }
func (g *GilbertElliott) dropped() int { return g.Drops }

// Corrupter flips bits with probability P per packet. A corrupted IP packet
// fails its checksum at the receiver and is discarded, so at the qdisc
// vantage point corruption manifests as loss; it is counted separately so
// reports can distinguish the two causes.
type Corrupter struct {
	rng       *rand.Rand
	P         float64
	Corrupted int
}

// NewCorrupter builds a corruption stage.
func NewCorrupter(seed int64, p float64) *Corrupter {
	return &Corrupter{rng: rand.New(rand.NewSource(seed)), P: p}
}

// Apply implements Stage.
func (c *Corrupter) Apply(wireLen int, forward, drop func()) {
	if c.rng.Float64() < c.P {
		c.Corrupted++
		drop()
		return
	}
	forward()
}

func (c *Corrupter) Name() string { return fmt.Sprintf("corrupt(p=%g,n=%d)", c.P, c.Corrupted) }
func (c *Corrupter) dropped() int { return c.Corrupted }

// Duplicator forwards each packet a second time with probability P (e.g.
// spurious link-layer retransmissions surfacing as IP duplicates).
type Duplicator struct {
	rng  *rand.Rand
	P    float64
	Dups int
}

// NewDuplicator builds a duplication stage.
func NewDuplicator(seed int64, p float64) *Duplicator {
	return &Duplicator{rng: rand.New(rand.NewSource(seed)), P: p}
}

// Apply implements Stage.
func (d *Duplicator) Apply(wireLen int, forward, drop func()) {
	forward()
	if d.rng.Float64() < d.P {
		d.Dups++
		forward()
	}
}

func (d *Duplicator) Name() string { return fmt.Sprintf("dup(p=%g,n=%d)", d.P, d.Dups) }

// Reorderer holds a packet back for Delay with probability P, letting
// later packets overtake it — out-of-order delivery that exercises TCP's
// dup-ACK machinery without any actual loss.
type Reorderer struct {
	k         *simtime.Kernel
	rng       *rand.Rand
	P         float64
	Delay     time.Duration
	Reordered int
}

// NewReorderer builds a reordering stage driven by kernel k.
func NewReorderer(k *simtime.Kernel, seed int64, p float64, delay time.Duration) *Reorderer {
	return &Reorderer{k: k, rng: rand.New(rand.NewSource(seed)), P: p, Delay: delay}
}

// Apply implements Stage.
func (r *Reorderer) Apply(wireLen int, forward, drop func()) {
	if r.rng.Float64() < r.P {
		r.Reordered++
		r.k.After(r.Delay, forward)
		return
	}
	forward()
}

func (r *Reorderer) Name() string { return fmt.Sprintf("reorder(p=%g,n=%d)", r.P, r.Reordered) }

// Jitter adds a uniform random delay in [0, Max] per packet while
// preserving FIFO order — the qdisc-level stand-in for a time-varying
// service rate (rate jitter): inter-packet spacing varies but the stream
// never reorders.
type Jitter struct {
	k   *simtime.Kernel
	rng *rand.Rand
	Max time.Duration
	// lastOut is the release time of the previous packet, enforcing FIFO.
	lastOut simtime.Time
}

// NewJitter builds a FIFO-preserving delay-jitter stage.
func NewJitter(k *simtime.Kernel, seed int64, max time.Duration) *Jitter {
	return &Jitter{k: k, rng: rand.New(rand.NewSource(seed)), Max: max}
}

// Apply implements Stage.
func (j *Jitter) Apply(wireLen int, forward, drop func()) {
	d := time.Duration(0)
	if j.Max > 0 {
		d = time.Duration(j.rng.Int63n(int64(j.Max) + 1))
	}
	out := j.k.Now() + d
	if out < j.lastOut {
		out = j.lastOut
	}
	j.lastOut = out
	j.k.At(out, forward)
}

func (j *Jitter) Name() string { return fmt.Sprintf("jitter(max=%v)", j.Max) }
