package faults

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// driveLoss pushes n packets through a chain and records the drop pattern.
func driveLoss(c *Chain, n int) []bool {
	drops := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		c.Enqueue(1400, func() {}, func() { drops[i] = true })
	}
	return drops
}

// TestGEDeterminism: the same seed must yield the exact same drop sequence —
// the property the whole reproducibility story rests on.
func TestGEDeterminism(t *testing.T) {
	const n = 20_000
	p := GEForMeanLoss(0.02, 4)
	a := driveLoss(NewChain(NewGilbertElliott(42, p)), n)
	b := driveLoss(NewChain(NewGilbertElliott(42, p)), n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
	c := driveLoss(NewChain(NewGilbertElliott(43, p)), n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop sequences")
	}
}

// TestGEMeanLossAndBurstiness: GEForMeanLoss hits the requested long-run
// rate and arranges the losses in bursts of roughly the requested length.
func TestGEMeanLossAndBurstiness(t *testing.T) {
	const n = 500_000
	drops := driveLoss(NewChain(NewGilbertElliott(7, GEForMeanLoss(0.02, 4))), n)

	lost, bursts, run := 0, 0, 0
	var burstSum int
	for _, d := range drops {
		if d {
			lost++
			run++
		} else if run > 0 {
			bursts++
			burstSum += run
			run = 0
		}
	}
	rate := float64(lost) / n
	if rate < 0.015 || rate > 0.025 {
		t.Fatalf("long-run loss rate %.4f, want ~0.02", rate)
	}
	mean := float64(burstSum) / float64(bursts)
	if mean < 3 || mean > 5 {
		t.Fatalf("mean burst length %.2f, want ~4", mean)
	}
}

func TestIIDLossRate(t *testing.T) {
	const n = 200_000
	drops := driveLoss(NewChain(NewIIDLoss(3, 0.05)), n)
	lost := 0
	for _, d := range drops {
		if d {
			lost++
		}
	}
	if rate := float64(lost) / n; rate < 0.045 || rate > 0.055 {
		t.Fatalf("iid loss rate %.4f, want ~0.05", rate)
	}
}

// TestChainAccounting: every packet either delivers or drops, exactly once,
// and Dropped() agrees with the drop callbacks.
func TestChainAccounting(t *testing.T) {
	c := NewChain(NewGilbertElliott(5, GEForMeanLoss(0.1, 2)), NewIIDLoss(6, 0.1))
	const n = 50_000
	delivered, dropped := 0, 0
	for i := 0; i < n; i++ {
		c.Enqueue(1400, func() { delivered++ }, func() { dropped++ })
	}
	if delivered+dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, dropped, n)
	}
	if c.Dropped() != dropped {
		t.Fatalf("Dropped() = %d, drop callbacks = %d", c.Dropped(), dropped)
	}
	if dropped == 0 {
		t.Fatal("no drops at 10%+10% loss")
	}
}

func TestDuplicator(t *testing.T) {
	c := NewChain(NewDuplicator(1, 1.0))
	n := 0
	for i := 0; i < 100; i++ {
		c.Enqueue(100, func() { n++ }, nil)
	}
	if n != 200 {
		t.Fatalf("p=1 duplicator delivered %d copies of 100 packets, want 200", n)
	}
}

// TestJitterPreservesFIFO: jittered packets come out in order, each within
// [0, Max] of its enqueue (plus any FIFO hold-back).
func TestJitterPreservesFIFO(t *testing.T) {
	k := simtime.NewKernel(1)
	c := NewChain(NewJitter(k, 9, 50*time.Millisecond))
	const n = 200
	var out []int
	for i := 0; i < n; i++ {
		i := i
		k.At(simtime.Time(i)*simtime.Time(time.Millisecond), func() {
			c.Enqueue(1400, func() { out = append(out, i) }, nil)
		})
	}
	k.Run()
	if len(out) != n {
		t.Fatalf("delivered %d of %d", len(out), n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("reordered at position %d: got packet %d", i, v)
		}
	}
}

// TestReordererOvertakes: a held-back packet is overtaken by the next one.
func TestReordererOvertakes(t *testing.T) {
	k := simtime.NewKernel(1)
	r := NewReorderer(k, 2, 0.3, 30*time.Millisecond)
	c := NewChain(r)
	const n = 500
	var out []int
	for i := 0; i < n; i++ {
		i := i
		k.At(simtime.Time(i)*simtime.Time(time.Millisecond), func() {
			c.Enqueue(1400, func() { out = append(out, i) }, nil)
		})
	}
	k.Run()
	if len(out) != n {
		t.Fatalf("delivered %d of %d (reorderer must never drop)", len(out), n)
	}
	inversions := 0
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no out-of-order deliveries at p=0.3")
	}
	if r.Reordered == 0 {
		t.Fatal("reorder counter never incremented")
	}
}

// TestPlanBuildDirectionsIndependent: UL and DL chains from one seed use
// distinct RNG streams.
func TestPlanBuildDirectionsIndependent(t *testing.T) {
	k := simtime.NewKernel(1)
	p := &Plan{GE: &GEParams{PGoodBad: 0.05, PBadGood: 0.25, LossBad: 1}}
	ul := driveLoss(p.Build(k, Uplink, 99), 10_000)
	dl := driveLoss(p.Build(k, Downlink, 99), 10_000)
	same := true
	for i := range ul {
		if ul[i] != dl[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("uplink and downlink chains share a drop sequence")
	}
}

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if !(&Plan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (&Plan{LossProb: 0.1}).Empty() {
		t.Fatal("lossy plan reported empty")
	}
	if (&Plan{Outages: []Outage{{Duration: time.Second}}}).Empty() {
		t.Fatal("plan with outage reported empty")
	}
	k := simtime.NewKernel(1)
	c := (&Plan{}).Build(k, Downlink, 1)
	delivered := 0
	c.Enqueue(100, func() { delivered++ }, nil)
	if delivered != 1 || c.Dropped() != 0 {
		t.Fatal("empty chain is not a pass-through")
	}
}
