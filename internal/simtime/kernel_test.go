package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(3*time.Second, func() { order = append(order, 3) })
	k.After(1*time.Second, func() { order = append(order, 1) })
	k.After(2*time.Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.After(time.Second, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double cancel is a no-op.
	e.Cancel()
}

func TestCancelFromEarlierEvent(t *testing.T) {
	k := NewKernel(1)
	fired := false
	later := k.After(2*time.Second, func() { fired = true })
	k.After(1*time.Second, func() { later.Cancel() })
	k.Run()
	if fired {
		t.Fatal("event canceled by earlier event still fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(time.Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(500*time.Millisecond, func() {})
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		k.At(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	// Clock advances to target even when the queue drains first.
	k.RunUntil(10 * time.Second)
	if k.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", k.Now())
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(time.Millisecond, recurse)
		}
	}
	k.After(time.Millisecond, recurse)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v, want 100ms", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*time.Second, func() {
			count++
			if count == 5 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5 after Stop", count)
	}
	if k.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", k.Pending())
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	stop := k.Ticker(time.Second, func() { ticks++ })
	k.RunUntil(5500 * time.Millisecond)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	stop()
	k.RunUntil(20 * time.Second)
	if ticks != 5 {
		t.Fatalf("ticker fired after stop: %d", ticks)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	var stop func()
	stop = k.Ticker(time.Second, func() {
		ticks++
		if ticks == 3 {
			stop()
		}
	})
	k.RunUntil(time.Minute)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestDeterministicRNG(t *testing.T) {
	a := NewKernel(42).Rand()
	b := NewKernel(42).Rand()
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestProcessedCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 7; i++ {
		k.At(time.Second, func() {})
	}
	canceled := k.At(2*time.Second, func() {})
	canceled.Cancel()
	k.Run()
	if k.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", k.Processed())
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the clock ends at the maximum delay.
func TestQuickOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k := NewKernel(seed)
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		var max Time
		var fireTimes []Time
		for i := 0; i < count; i++ {
			d := Time(rng.Int63n(int64(time.Hour)))
			if d > max {
				max = d
			}
			k.At(d, func() { fireTimes = append(fireTimes, k.Now()) })
		}
		k.Run()
		if len(fireTimes) != count {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(-time.Second, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Fatalf("fired=%v now=%v, want true/0", fired, k.Now())
	}
}
