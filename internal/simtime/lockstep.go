package simtime

import (
	"fmt"
	"runtime"
	"sync"
)

// Lockstep advances a set of independent kernels in parallel under
// conservative-lookahead synchronization: virtual time is cut into epochs
// of fixed width (the minimum latency of any cross-kernel interaction, so
// nothing that happens inside an epoch on one kernel can affect another
// kernel within the same epoch), every kernel runs its epoch to completion,
// and a serial barrier callback exchanges cross-kernel state between
// epochs.
//
// Determinism: each kernel is single-threaded and owns its RNG, epochs are
// barrier-aligned, and the barrier runs serially on the coordinating
// goroutine — so which worker executes which kernel, and how many workers
// exist, changes wall-clock interleaving only. A Lockstep run is
// byte-identical at any worker count and GOMAXPROCS.
type Lockstep struct {
	kernels []*Kernel
	workers int

	work chan lockstepJob
	done chan struct{}
	wg   sync.WaitGroup
}

type lockstepJob struct {
	k     *Kernel
	until Time
}

// NewLockstep builds a coordinator over the kernels. workers <= 0 selects
// min(len(kernels), GOMAXPROCS); workers == 1 runs fully serial on the
// calling goroutine (no goroutines spawned, handy under the race detector
// and for bisecting).
func NewLockstep(kernels []*Kernel, workers int) *Lockstep {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(kernels) {
		workers = len(kernels)
	}
	if workers < 1 {
		workers = 1
	}
	return &Lockstep{kernels: kernels, workers: workers}
}

// Workers returns the effective worker count.
func (l *Lockstep) Workers() int { return l.workers }

// Run advances every kernel to exactly `until` in lockstep epochs of the
// given window, invoking barrier (may be nil) after each epoch with the
// epoch's end time. The final barrier (at `until`) also fires. window must
// be positive; it is the safe lookahead — the minimum virtual-time latency
// of any cross-kernel influence.
func (l *Lockstep) Run(until, window Time, barrier func(end Time)) {
	if window <= 0 {
		panic(fmt.Sprintf("simtime: lockstep window must be positive, got %v", window))
	}
	if len(l.kernels) == 0 {
		return
	}
	start := l.kernels[0].Now()
	for _, k := range l.kernels[1:] {
		if k.Now() != start {
			panic("simtime: lockstep kernels out of sync")
		}
	}
	if l.workers > 1 && l.work == nil {
		l.start()
	}
	for t := start; t < until; {
		t += window
		if t > until {
			t = until
		}
		l.epoch(t)
		if barrier != nil {
			barrier(t)
		}
	}
}

// Close tears down the worker pool (idempotent; Run can be called again —
// workers are respawned on demand).
func (l *Lockstep) Close() {
	if l.work != nil {
		close(l.work)
		l.wg.Wait()
		l.work, l.done = nil, nil
	}
}

func (l *Lockstep) start() {
	l.work = make(chan lockstepJob)
	l.done = make(chan struct{}, len(l.kernels))
	for i := 0; i < l.workers; i++ {
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			for j := range l.work {
				j.k.RunUntil(j.until)
				l.done <- struct{}{}
			}
		}()
	}
}

// epoch runs every kernel to exactly `end`. The done-channel receives give
// the coordinator a happens-before edge from each kernel's execution, so
// the barrier (and the next epoch's dispatch) reads consistent state.
func (l *Lockstep) epoch(end Time) {
	if l.workers <= 1 {
		for _, k := range l.kernels {
			k.RunUntil(end)
		}
		return
	}
	go func() {
		for _, k := range l.kernels {
			l.work <- lockstepJob{k: k, until: end}
		}
	}()
	for range l.kernels {
		<-l.done
	}
}
