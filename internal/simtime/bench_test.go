package simtime

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the steady-state schedule+dispatch cycle:
// after warm-up every iteration should reuse pooled shells and allocate
// nothing.
func BenchmarkScheduleFire(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	const batch = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			k.After(time.Duration(j)*time.Microsecond, fn)
		}
		k.Run()
	}
}

// BenchmarkCancelChurn models the TCP RTO pattern: a timer is re-armed
// (cancel + schedule) far more often than it fires, exercising lazy deletion
// and compaction.
func BenchmarkCancelChurn(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	var timer Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		timer.Cancel()
		timer = k.After(time.Second, fn)
		if i%64 == 63 {
			// Let a short horizon fire so the queue drains periodically.
			k.After(time.Microsecond, fn)
			k.RunUntil(k.Now() + time.Millisecond)
		}
	}
}

// BenchmarkSameInstantBurst measures dense same-timestamp runs (zero-delay
// event cascades are common in the RLC and TCP paths).
func BenchmarkSameInstantBurst(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	const batch = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i += batch {
		at := k.Now() + time.Millisecond
		for j := 0; j < batch; j++ {
			k.At(at, fn)
		}
		k.Run()
	}
}
