package simtime

import (
	"testing"
	"time"
)

// TestCancelThenRescheduleReuse: a canceled event's shell is collected and
// recycled for a later schedule, and both the cancellation and the reuse
// behave correctly.
func TestCancelThenRescheduleReuse(t *testing.T) {
	k := NewKernel(1)
	canceledFired := false
	ev := k.After(time.Second, func() { canceledFired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false right after Cancel")
	}
	if ev.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	// Drain: collects the dead shell into the free list.
	k.Run()
	if canceledFired {
		t.Fatal("canceled event fired")
	}
	if len(k.free) == 0 {
		t.Fatal("canceled shell was not recycled")
	}
	shell := k.free[len(k.free)-1]
	fired := false
	ev2 := k.After(time.Second, func() { fired = true })
	if ev2.e != shell {
		t.Fatal("reschedule did not reuse the pooled shell")
	}
	// The stale handle to the canceled occupant must not affect the reuse.
	ev.Cancel()
	if ev.Canceled() {
		t.Fatal("stale handle reports Canceled for the new occupant")
	}
	k.Run()
	if !fired {
		t.Fatal("rescheduled event did not fire")
	}
}

// TestStaleCancelAfterFire: canceling an event that already fired must not
// cancel the unrelated event now occupying the recycled shell.
func TestStaleCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	old := k.After(time.Second, func() {})
	k.Run()
	if old.Pending() {
		t.Fatal("fired event still pending")
	}
	fired := false
	ev := k.After(time.Second, func() { fired = true })
	if ev.e != old.e {
		t.Fatal("expected the fired shell to be reused")
	}
	old.Cancel() // stale: different generation
	if !ev.Pending() {
		t.Fatal("stale Cancel killed the recycled shell's new occupant")
	}
	k.Run()
	if !fired {
		t.Fatal("event did not fire after stale Cancel")
	}
}

// TestSelfCancelInsideCallback: an event canceling its own handle from
// within its callback is a no-op (the shell is already recycled).
func TestSelfCancelInsideCallback(t *testing.T) {
	k := NewKernel(1)
	var ev Event
	fired := false
	ev = k.After(time.Second, func() {
		ev.Cancel() // stale by the time the callback runs
		fired = true
	})
	later := false
	k.After(2*time.Second, func() { later = true })
	k.Run()
	if !fired || !later {
		t.Fatalf("fired=%v later=%v, want both true", fired, later)
	}
}

// TestFIFOTieBreakAcrossPooledEvents: same-instant FIFO ordering holds when
// the scheduled events are recycled shells with mixed original sequence
// numbers.
func TestFIFOTieBreakAcrossPooledEvents(t *testing.T) {
	k := NewKernel(1)
	// Populate the free list with shells whose prior seq values are
	// decreasing relative to their eventual reuse order.
	for i := 0; i < 8; i++ {
		k.After(time.Duration(8-i)*time.Millisecond, func() {})
	}
	k.Run()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending schedule order", order)
		}
	}
}

// TestMassCancelCompaction: canceling most of a large queue triggers heap
// compaction without disturbing the survivors' order or Pending accounting.
func TestMassCancelCompaction(t *testing.T) {
	k := NewKernel(1)
	const n = 1000
	evs := make([]Event, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		evs[i] = k.At(Time(i+1)*time.Millisecond, func() { fired = append(fired, i) })
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			evs[i].Cancel()
		}
	}
	if got := k.Pending(); got != n/10 {
		t.Fatalf("Pending() = %d after mass cancel, want %d", got, n/10)
	}
	k.Run()
	if len(fired) != n/10 {
		t.Fatalf("fired %d events, want %d", len(fired), n/10)
	}
	for j, i := range fired {
		if i != j*10 {
			t.Fatalf("fired[%d] = %d, want %d", j, i, j*10)
		}
	}
}

// TestTickerStopInsideReschedulingCallback: stopping a ticker from within a
// callback that also schedules other work must suppress the pending tick
// without touching the other work.
func TestTickerStopInsideReschedulingCallback(t *testing.T) {
	k := NewKernel(1)
	ticks, extras := 0, 0
	var stop func()
	stop = k.Ticker(time.Second, func() {
		ticks++
		k.After(100*time.Millisecond, func() { extras++ })
		if ticks == 3 {
			stop()
		}
	})
	k.RunUntil(time.Minute)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if extras != 3 {
		t.Fatalf("extras = %d, want 3 (side work must survive stop)", extras)
	}
}

// TestTickerStaleStopAfterPoolReuse: calling a ticker's stop long after its
// event shells were recycled for unrelated schedules must not cancel those
// unrelated events.
func TestTickerStaleStopAfterPoolReuse(t *testing.T) {
	k := NewKernel(1)
	stop := k.Ticker(time.Second, func() {})
	k.RunUntil(3500 * time.Millisecond)
	stop()
	// Recycle shells through many unrelated schedules, several still queued.
	fired := 0
	for i := 0; i < 16; i++ {
		k.After(time.Duration(i+1)*time.Second, func() { fired++ })
	}
	stop() // stale second stop: must be a pure no-op
	k.Run()
	if fired != 16 {
		t.Fatalf("fired = %d, want 16 (stale ticker stop canceled live work)", fired)
	}
}
