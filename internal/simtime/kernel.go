// Package simtime provides a deterministic discrete-event simulation kernel.
//
// All QoE Doctor substrates (radio, network, UI) run on virtual time managed
// by a Kernel: events are scheduled at absolute virtual times and executed in
// order, with FIFO tie-breaking for events scheduled at the same instant.
// Nothing in the simulation reads the wall clock, so a 16-hour background
// traffic study executes in milliseconds and every run with the same seed is
// bit-for-bit reproducible.
package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Time is a virtual timestamp, measured as a duration since the simulation
// epoch (t = 0). It intentionally reuses time.Duration so callers can write
// literals like 5*time.Second.
type Time = time.Duration

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	when   Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once popped or canceled
	dead   bool
	kernel *Kernel
}

// When returns the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel must only be called from the
// kernel goroutine (i.e. from within event callbacks or between Run calls).
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.index >= 0 {
		heap.Remove(&e.kernel.queue, e.index)
	}
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e != nil && e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: the simulation model is expected to be driven from one
// goroutine, with concurrency expressed as interleaved events rather than
// OS-level parallelism.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// processed counts fired events, exposed for tests and budget guards.
	processed uint64

	// trace, when attached, receives kernel-layer spans for each Run /
	// RunUntil plus periodic queue-depth counter samples (all virtual-time
	// stamped, so attaching a trace never perturbs determinism).
	trace *obs.Trace
	// prof, when attached, aggregates wall-clock time per callback site.
	prof      *obs.Profiler
	siteNames map[uintptr]string
}

// queueSampleEvery is the dispatch interval between queue-depth samples on
// an attached trace: frequent enough to see backlog build-up, sparse enough
// that million-event runs stay exportable.
const queueSampleEvery = 1024

// NewKernel returns a kernel at virtual time zero with a deterministic RNG
// derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All model-level
// randomness must come from here to keep runs reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed returns the number of events fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetTrace attaches a trace bus and binds it to this kernel's virtual clock.
// Pass nil to detach.
func (k *Kernel) SetTrace(tr *obs.Trace) {
	k.trace = tr
	tr.Bind(func() time.Duration { return k.now })
}

// SetProfiler attaches a wall-clock callback profiler. Pass nil to detach.
func (k *Kernel) SetProfiler(p *obs.Profiler) {
	k.prof = p
	if p != nil && k.siteNames == nil {
		k.siteNames = make(map[uintptr]string)
	}
}

// siteName resolves a callback to its defining function's symbol name,
// cached per code pointer since the same closures fire millions of times.
func (k *Kernel) siteName(fn func()) string {
	pc := reflect.ValueOf(fn).Pointer()
	if name, ok := k.siteNames[pc]; ok {
		return name
	}
	name := "unknown"
	if f := runtime.FuncForPC(pc); f != nil {
		name = f.Name()
	}
	k.siteNames[pc] = name
	return name
}

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a model bug, and silently clamping would hide causality
// violations.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{when: t, seq: k.seq, fn: fn, kernel: k}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn delay after the current virtual time.
func (k *Kernel) After(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Pending returns the number of events currently queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// step fires the next event. It reports false when the queue is empty.
func (k *Kernel) step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	if e.dead {
		return true
	}
	k.now = e.when
	e.dead = true
	k.processed++
	if k.trace != nil && k.processed%queueSampleEvery == 0 {
		k.trace.CounterSample(obs.LayerKernel, "queue_depth", float64(len(k.queue)))
	}
	if k.prof != nil {
		site := k.siteName(e.fn)
		t0 := time.Now()
		e.fn()
		k.prof.Observe(site, time.Since(t0))
		return true
	}
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	sp, before := k.beginRunSpan()
	k.stopped = false
	for !k.stopped && k.step() {
	}
	k.endRunSpan(sp, before)
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if the queue drained earlier). Events scheduled later stay
// queued.
func (k *Kernel) RunUntil(t Time) {
	sp, before := k.beginRunSpan()
	k.stopped = false
	for !k.stopped {
		if len(k.queue) == 0 || k.queue[0].when > t {
			break
		}
		k.step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
	k.endRunSpan(sp, before)
}

// beginRunSpan opens a kernel-layer span covering one Run/RunUntil call when
// a trace is attached; the two-value return keeps the detached path free of
// any obs work beyond a nil check.
func (k *Kernel) beginRunSpan() (obs.Span, uint64) {
	if k.trace == nil {
		return obs.Span{}, 0
	}
	return k.trace.Start(obs.LayerKernel, "kernel:run", k.trace.Scope()), k.processed
}

func (k *Kernel) endRunSpan(sp obs.Span, before uint64) {
	if !sp.Active() {
		return
	}
	sp.Attr("events", strconv.FormatUint(k.processed-before, 10))
	sp.End()
}

// RunFor is shorthand for RunUntil(Now()+d).
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now.
func (k *Kernel) Ticker(period time.Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = k.After(period, tick)
		}
	}
	ev = k.After(period, tick)
	return func() {
		stopped = true
		ev.Cancel()
	}
}
