// Package simtime provides a deterministic discrete-event simulation kernel.
//
// All QoE Doctor substrates (radio, network, UI) run on virtual time managed
// by a Kernel: events are scheduled at absolute virtual times and executed in
// order, with FIFO tie-breaking for events scheduled at the same instant.
// Nothing in the simulation reads the wall clock, so a 16-hour background
// traffic study executes in milliseconds and every run with the same seed is
// bit-for-bit reproducible.
//
// The scheduler is built for sweep throughput: the priority queue is an
// inlined 4-ary min-heap specialized to events (no container/heap interface
// dispatch), events are recycled through a per-kernel free list so
// steady-state scheduling allocates nothing, and cancellation is lazy (a
// canceled event is marked dead and collected when it surfaces, instead of
// paying an O(n) sift to extract it from the middle of the heap). Each
// Kernel is fully self-contained — no package-level state — so independent
// kernels can run on separate goroutines concurrently, which is what the
// sweep engine (internal/sweep) does.
package simtime

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Time is a virtual timestamp, measured as a duration since the simulation
// epoch (t = 0). It intentionally reuses time.Duration so callers can write
// literals like 5*time.Second.
type Time = time.Duration

// event is the pooled, kernel-internal representation of one scheduled
// callback. Events are recycled through the kernel's free list the moment
// they fire or their cancellation is collected; gen distinguishes the
// current occupant from earlier schedules that reused the same object, so a
// stale handle can never touch a recycled event.
type event struct {
	when   Time
	seq    uint64
	gen    uint64
	fn     func()
	dead   bool
	kernel *Kernel
}

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel it before it fires. It is a small value
// type: the zero Event is inert (all methods no-op), and a handle kept
// around after its event fired or was canceled stays safely inert even
// though the kernel has recycled the underlying object for a later
// schedule — the generation check makes a stale Cancel a no-op rather than
// a cancellation of an unrelated event.
type Event struct {
	e   *event
	gen uint64
}

// When returns the virtual time the event is scheduled for (zero for inert
// or stale handles).
func (ev Event) When() Time {
	if ev.e == nil || ev.e.gen != ev.gen {
		return 0
	}
	return ev.e.when
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or zero Event is a no-op. Cancel must only be called
// from the kernel goroutine (i.e. from within event callbacks or between
// Run calls).
func (ev Event) Cancel() {
	e := ev.e
	if e == nil || e.gen != ev.gen || e.dead {
		return
	}
	e.dead = true
	e.fn = nil // release the closure now; the shell is collected lazily
	k := e.kernel
	k.live--
	k.deadInQueue++
	k.maybeCompact()
}

// Canceled reports whether Cancel was called before the event fired. Once
// the kernel has collected the canceled event the handle reads as stale and
// Canceled reverts to false; use it right after Cancel, not as long-term
// state.
func (ev Event) Canceled() bool {
	return ev.e != nil && ev.e.gen == ev.gen && ev.e.dead
}

// Pending reports whether this handle's event is still queued to fire.
func (ev Event) Pending() bool {
	return ev.e != nil && ev.e.gen == ev.gen && !ev.e.dead
}

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: one simulation model is expected to be driven from one
// goroutine, with concurrency expressed as interleaved events rather than
// OS-level parallelism. Distinct kernels share nothing and may run in
// parallel with each other.
type Kernel struct {
	now Time
	// queue is a 4-ary min-heap on (when, seq). 4-ary beats binary here:
	// sift-down does more comparisons per level but the tree is half as
	// deep, and the hot mix is push-heavy (every push sifts up through a
	// shallower tree, and most pops happen near the front of dense
	// same-instant runs).
	queue []*event
	free  []*event // recycled event shells
	// live counts queued events that have not been canceled; deadInQueue
	// counts canceled shells awaiting lazy collection.
	live        int
	deadInQueue int
	seq         uint64
	rng         *rand.Rand
	stopped     bool
	// processed counts fired events, exposed for tests and budget guards.
	processed uint64

	// Control hook state: ctlFn, when set, runs between events at every
	// multiple of ctlEvery during RunUntil (ctlNext is the next firing
	// time). Hooks are not queued events — firing one does not advance the
	// processed counter, draw from the RNG, or perturb event tie-breaking.
	ctlEvery Time
	ctlNext  Time
	ctlFn    func(now Time)

	// trace, when attached, receives kernel-layer spans for each Run /
	// RunUntil plus periodic queue-depth counter samples (all virtual-time
	// stamped, so attaching a trace never perturbs determinism).
	trace *obs.Trace
	// prof, when attached, aggregates wall-clock time per callback site.
	prof      *obs.Profiler
	siteNames map[uintptr]string
}

// queueSampleEvery is the dispatch interval between queue-depth samples on
// an attached trace: frequent enough to see backlog build-up, sparse enough
// that million-event runs stay exportable.
const queueSampleEvery = 1024

// heapArity is the fan-out of the event heap.
const heapArity = 4

// NewKernel returns a kernel at virtual time zero with a deterministic RNG
// derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All model-level
// randomness must come from here to keep runs reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Processed returns the number of events fired so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetTrace attaches a trace bus and binds it to this kernel's virtual clock.
// Pass nil to detach.
func (k *Kernel) SetTrace(tr *obs.Trace) {
	k.trace = tr
	tr.Bind(func() time.Duration { return k.now })
}

// SetProfiler attaches a wall-clock callback profiler. Pass nil to detach.
func (k *Kernel) SetProfiler(p *obs.Profiler) {
	k.prof = p
	if p != nil && k.siteNames == nil {
		k.siteNames = make(map[uintptr]string)
	}
}

// siteName resolves a callback to its defining function's symbol name,
// cached per code pointer since the same closures fire millions of times.
func (k *Kernel) siteName(fn func()) string {
	pc := reflect.ValueOf(fn).Pointer()
	if name, ok := k.siteNames[pc]; ok {
		return name
	}
	name := "unknown"
	if f := runtime.FuncForPC(pc); f != nil {
		name = f.Name()
	}
	k.siteNames[pc] = name
	return name
}

// alloc takes an event shell from the free list, or mints one.
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{kernel: k}
}

// recycle retires an event shell to the free list. Bumping gen invalidates
// every outstanding handle to the old schedule.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	k.free = append(k.free, e)
}

// before is the heap ordering: earliest time first, FIFO (schedule order)
// among events at the same instant.
func (e *event) before(o *event) bool {
	return e.when < o.when || (e.when == o.when && e.seq < o.seq)
}

// push inserts e, sifting up through the 4-ary heap.
func (k *Kernel) push(e *event) {
	k.queue = append(k.queue, e)
	q := k.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !e.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
}

// popTop removes and returns the minimum event.
func (k *Kernel) popTop() *event {
	q := k.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	if n > 0 {
		k.siftDown(0, last)
	}
	return top
}

// siftDown places e at index i, pulling smaller children up.
func (k *Kernel) siftDown(i int, e *event) {
	q := k.queue
	n := len(q)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		m := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q[c].before(q[m]) {
				m = c
			}
		}
		if !q[m].before(e) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = e
}

// peekLive returns the earliest live event, collecting any canceled shells
// that have surfaced at the top of the heap. Returns nil when nothing is
// left to fire.
func (k *Kernel) peekLive() *event {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if !e.dead {
			return e
		}
		k.popTop()
		k.deadInQueue--
		k.recycle(e)
	}
	return nil
}

// maybeCompact rebuilds the heap without its dead shells once more than
// half the queue is cancellations. Cancel-heavy workloads (TCP re-arms its
// RTO timer on every ACK) would otherwise carry a long tail of dead entries
// until their original deadlines surfaced.
func (k *Kernel) maybeCompact() {
	if len(k.queue) < 64 || k.deadInQueue*2 < len(k.queue) {
		return
	}
	q := k.queue
	kept := q[:0]
	for _, e := range q {
		if e.dead {
			k.recycle(e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	k.queue = kept
	k.deadInQueue = 0
	if len(kept) > 1 {
		for i := (len(kept) - 2) / heapArity; i >= 0; i-- {
			k.siftDown(i, kept[i])
		}
	}
}

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a model bug, and silently clamping would hide causality
// violations.
func (k *Kernel) At(t Time, fn func()) Event {
	if t < k.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, k.now))
	}
	e := k.alloc()
	e.when, e.seq, e.fn, e.dead = t, k.seq, fn, false
	k.seq++
	k.live++
	k.push(e)
	return Event{e: e, gen: e.gen}
}

// After schedules fn delay after the current virtual time.
func (k *Kernel) After(delay time.Duration, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// SetControlHook installs fn to run at every multiple of interval (first
// firing one interval from now) while RunUntil advances virtual time. The
// hook is the kernel-safe point for runtime control: it executes between
// events — before any event scheduled at the same instant — with the clock
// set to the firing time, and it may schedule or cancel events. Unlike a
// Ticker, a hook is not itself an event: it does not advance the processed
// counter, draw from the kernel RNG, or take part in event tie-breaking,
// so an inert hook leaves a run byte-identical to one without it. One hook
// per kernel; pass nil fn to remove it. Run (run-to-drain) ignores the
// hook — without a horizon a periodic hook would never stop firing.
func (k *Kernel) SetControlHook(interval Time, fn func(now Time)) {
	if fn == nil {
		k.ctlFn = nil
		return
	}
	if interval <= 0 {
		panic("simtime: control hook interval must be positive")
	}
	k.ctlEvery = interval
	k.ctlNext = k.now + interval
	k.ctlFn = fn
}

// Pending returns the number of live (not canceled) events currently queued.
func (k *Kernel) Pending() int { return k.live }

// step fires the next live event. It reports false when nothing is left.
func (k *Kernel) step() bool {
	e := k.peekLive()
	if e == nil {
		return false
	}
	k.popTop()
	k.now = e.when
	fn := e.fn
	k.live--
	k.processed++
	// Recycle before running the callback: handles to this event go stale
	// now, so a callback (or anything it triggers) canceling "itself" is
	// inert, and the shell is immediately reusable for events the callback
	// schedules.
	k.recycle(e)
	if k.trace != nil && k.processed%queueSampleEvery == 0 {
		k.trace.CounterSample(obs.LayerKernel, "queue_depth", float64(k.live))
	}
	if k.prof != nil {
		site := k.siteName(fn)
		t0 := time.Now()
		fn()
		k.prof.Observe(site, time.Since(t0))
		return true
	}
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	sp, before := k.beginRunSpan()
	k.stopped = false
	for !k.stopped && k.step() {
	}
	k.endRunSpan(sp, before)
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if the queue drained earlier). Events scheduled later stay
// queued.
func (k *Kernel) RunUntil(t Time) {
	sp, before := k.beginRunSpan()
	k.stopped = false
	for !k.stopped {
		e := k.peekLive()
		if k.ctlFn != nil && k.ctlNext <= t && (e == nil || k.ctlNext <= e.when) {
			// The control hook fires before events at its own instant; it
			// may schedule new events, so re-peek on the next iteration.
			k.now = k.ctlNext
			at := k.ctlNext
			k.ctlNext += k.ctlEvery
			k.ctlFn(at)
			continue
		}
		if e == nil || e.when > t {
			break
		}
		k.step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
	k.endRunSpan(sp, before)
}

// beginRunSpan opens a kernel-layer span covering one Run/RunUntil call when
// a trace is attached; the two-value return keeps the detached path free of
// any obs work beyond a nil check.
func (k *Kernel) beginRunSpan() (obs.Span, uint64) {
	if k.trace == nil {
		return obs.Span{}, 0
	}
	return k.trace.Start(obs.LayerKernel, "kernel:run", k.trace.Scope()), k.processed
}

func (k *Kernel) endRunSpan(sp obs.Span, before uint64) {
	if !sp.Active() {
		return
	}
	sp.Attr("events", strconv.FormatUint(k.processed-before, 10))
	sp.End()
}

// RunFor is shorthand for RunUntil(Now()+d).
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now. Stopping from within fn
// is safe: the pending reschedule is suppressed, and the stop function stays
// inert afterwards even once the ticker's event shells have been recycled
// for unrelated schedules.
func (k *Kernel) Ticker(period time.Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic("simtime: ticker period must be positive")
	}
	var ev Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			ev = k.After(period, tick)
		}
	}
	ev = k.After(period, tick)
	return func() {
		stopped = true
		ev.Cancel()
	}
}
