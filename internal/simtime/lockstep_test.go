package simtime

import (
	"testing"
	"time"
)

// lockstepRun builds n kernels, each self-scheduling a recurring event that
// mixes its RNG into a running digest, and advances them with the given
// worker count. Returns the per-kernel digests and final times.
func lockstepRun(n, workers int, until, window Time) ([]uint64, []Time, int) {
	kernels := make([]*Kernel, n)
	digests := make([]uint64, n)
	for i := range kernels {
		k := NewKernel(int64(100 + i))
		kernels[i] = k
		i := i
		// Periods differ per kernel so epochs cut each stream differently.
		period := Time(time.Millisecond) * Time(i+1)
		var tick func()
		tick = func() {
			digests[i] = digests[i]*6364136223846793005 + uint64(k.Rand().Intn(1<<30)) + uint64(k.Now())
			k.After(time.Duration(period), tick)
		}
		k.After(time.Duration(period), tick)
	}
	ls := NewLockstep(kernels, workers)
	defer ls.Close()
	barriers := 0
	ls.Run(until, window, func(end Time) { barriers++ })

	times := make([]Time, n)
	for i, k := range kernels {
		times[i] = k.Now()
	}
	return digests, times, barriers
}

func TestLockstepDeterministicAcrossWorkerCounts(t *testing.T) {
	const until, window = Time(200 * time.Millisecond), Time(10 * time.Millisecond)
	base, times, barriers := lockstepRun(4, 1, until, window)
	if barriers != 20 {
		t.Fatalf("barriers = %d, want 20 (200ms / 10ms epochs)", barriers)
	}
	for i, at := range times {
		if at != until {
			t.Fatalf("kernel %d stopped at %v, want %v", i, at, until)
		}
	}
	for _, workers := range []int{2, 4, 16} {
		got, times, barriers := lockstepRun(4, workers, until, window)
		if barriers != 20 {
			t.Fatalf("workers=%d: barriers = %d, want 20", workers, barriers)
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: kernel %d digest %x != serial %x", workers, i, got[i], base[i])
			}
			if times[i] != until {
				t.Fatalf("workers=%d: kernel %d stopped at %v", workers, i, times[i])
			}
		}
	}
}

func TestLockstepRaggedFinalEpoch(t *testing.T) {
	// until is not a multiple of window: the last epoch is clamped.
	_, times, barriers := lockstepRun(3, 2, Time(25*time.Millisecond), Time(10*time.Millisecond))
	if barriers != 3 {
		t.Fatalf("barriers = %d, want 3 (10, 20, 25ms)", barriers)
	}
	for i, at := range times {
		if at != Time(25*time.Millisecond) {
			t.Fatalf("kernel %d stopped at %v", i, at)
		}
	}
}

func TestLockstepReusableAfterClose(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	ls := NewLockstep(kernels, 2)
	ls.Run(Time(10*time.Millisecond), Time(5*time.Millisecond), nil)
	ls.Close()
	ls.Run(Time(20*time.Millisecond), Time(5*time.Millisecond), nil)
	ls.Close()
	for i, k := range kernels {
		if k.Now() != Time(20*time.Millisecond) {
			t.Fatalf("kernel %d at %v after reuse", i, k.Now())
		}
	}
}

func TestLockstepPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	ls := NewLockstep([]*Kernel{NewKernel(1)}, 1)
	mustPanic("zero window", func() { ls.Run(Time(time.Second), 0, nil) })

	a, b := NewKernel(1), NewKernel(2)
	a.RunUntil(Time(time.Millisecond))
	mustPanic("out-of-sync kernels", func() {
		NewLockstep([]*Kernel{a, b}, 1).Run(Time(time.Second), Time(time.Millisecond), nil)
	})
}
