package simtime

import (
	"testing"
	"time"
)

// TestControlHookFiresBetweenEvents: the hook runs at every multiple of its
// interval with the clock set to the firing time, before any event at the
// same instant, and never touches the processed-event counter.
func TestControlHookFiresBetweenEvents(t *testing.T) {
	k := NewKernel(1)
	var trail []string
	k.At(2*time.Second, func() { trail = append(trail, "ev@2s") })
	k.At(3*time.Second, func() { trail = append(trail, "ev@3s") })
	var hookTimes []Time
	k.SetControlHook(Time(time.Second), func(now Time) {
		if k.Now() != now {
			t.Fatalf("clock %v != hook time %v", k.Now(), now)
		}
		hookTimes = append(hookTimes, now)
		trail = append(trail, "hook@"+time.Duration(now).String())
	})
	k.RunUntil(Time(3 * time.Second))

	wantTrail := []string{"hook@1s", "hook@2s", "ev@2s", "hook@3s", "ev@3s"}
	if len(trail) != len(wantTrail) {
		t.Fatalf("trail = %v, want %v", trail, wantTrail)
	}
	for i := range trail {
		if trail[i] != wantTrail[i] {
			t.Fatalf("trail = %v, want %v", trail, wantTrail)
		}
	}
	if k.Processed() != 2 {
		t.Fatalf("processed = %d, want 2 (hook firings are not events)", k.Processed())
	}

	// The hook keeps firing on later RunUntil calls from where it left off.
	k.RunUntil(Time(5 * time.Second))
	if len(hookTimes) != 5 || hookTimes[4] != Time(5*time.Second) {
		t.Fatalf("hook times after second run = %v", hookTimes)
	}
}

// TestControlHookScheduling: a hook may schedule events; they run at their
// own time like any other event.
func TestControlHookScheduling(t *testing.T) {
	k := NewKernel(1)
	fired := map[time.Duration]bool{}
	k.SetControlHook(Time(2*time.Second), func(now Time) {
		if now == Time(2*time.Second) {
			k.After(500*time.Millisecond, func() { fired[time.Duration(k.Now())] = true })
		}
	})
	k.RunUntil(Time(4 * time.Second))
	if !fired[2500*time.Millisecond] {
		t.Fatalf("hook-scheduled event did not fire: %v", fired)
	}
	if k.Now() != Time(4*time.Second) {
		t.Fatalf("clock = %v, want 4s", k.Now())
	}
}

// TestControlHookRemoveAndPanic: nil removes the hook; a non-positive
// interval panics.
func TestControlHookRemoveAndPanic(t *testing.T) {
	k := NewKernel(1)
	calls := 0
	k.SetControlHook(Time(time.Second), func(Time) { calls++ })
	k.RunUntil(Time(2 * time.Second))
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	k.SetControlHook(0, nil)
	k.RunUntil(Time(10 * time.Second))
	if calls != 2 {
		t.Fatalf("hook fired after removal: calls = %d", calls)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("SetControlHook(0, fn) did not panic")
		}
	}()
	k.SetControlHook(0, func(Time) {})
}

// TestControlHookIgnoredByRun: run-to-drain ignores the hook (it would
// otherwise never stop firing).
func TestControlHookIgnoredByRun(t *testing.T) {
	k := NewKernel(1)
	calls := 0
	k.SetControlHook(Time(time.Second), func(Time) { calls++ })
	k.After(3*time.Second, func() {})
	k.Run()
	if calls != 0 {
		t.Fatalf("Run fired the control hook %d times", calls)
	}
}
