package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Curve is one labelled series of (x, y) points for ASCII plotting.
type Curve struct {
	Label  string
	Points [][2]float64
}

// curveMarks assigns each curve a distinct plot character.
var curveMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// PlotXY renders curves on a width x height ASCII grid with axis labels —
// enough to eyeball the CDF shapes the paper's figures show. Y is assumed
// to grow upward; points outside the computed ranges are clamped.
func PlotXY(title, xLabel, yLabel string, curves []Curve, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		for _, p := range c.Points {
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range curves {
		mark := curveMarks[ci%len(curveMarks)]
		for _, p := range c.Points {
			x := int(math.Round((p[0] - minX) / (maxX - minX) * float64(width-1)))
			y := int(math.Round((p[1] - minY) / (maxY - minY) * float64(height-1)))
			x = clampInt(x, 0, width-1)
			y = clampInt(y, 0, height-1)
			grid[height-1-y][x] = mark
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		} else if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g  (%s vs %s)\n",
		strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX, yLabel, xLabel)
	for ci, c := range curves {
		fmt.Fprintf(&b, "%s    %c %s\n", strings.Repeat(" ", pad), curveMarks[ci%len(curveMarks)], c.Label)
	}
	return b.String()
}

// PlotCDFs renders empirical CDFs of the labelled samples as one chart
// (cumulative probability on Y), the shape the paper's Figs. 14 and 17 use.
func PlotCDFs(title, xLabel string, series map[string][]float64, width, height int) string {
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	// Deterministic legend order.
	sortStrings(labels)
	curves := make([]Curve, 0, len(labels))
	for _, l := range labels {
		cdf := NewCDF(series[l])
		curves = append(curves, Curve{Label: l, Points: cdf.Points(width)})
	}
	return PlotXY(title, xLabel, "P(X<=x)", curves, width, height)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
