package metrics

import (
	"strings"
	"testing"
)

func TestPlotXYBasics(t *testing.T) {
	out := PlotXY("demo", "seconds", "ratio", []Curve{
		{Label: "a", Points: [][2]float64{{0, 0}, {1, 0.5}, {2, 1}}},
		{Label: "b", Points: [][2]float64{{0, 1}, {2, 0}}},
	}, 40, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing plot marks:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + 10 grid rows + axis + x labels + 2 legend + trailing.
	if len(lines) < 14 {
		t.Fatalf("unexpected layout (%d lines):\n%s", len(lines), out)
	}
}

func TestPlotXYEmpty(t *testing.T) {
	out := PlotXY("empty", "x", "y", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot output: %q", out)
	}
}

func TestPlotXYDegenerateRanges(t *testing.T) {
	// Single point: ranges collapse; must not panic or divide by zero.
	out := PlotXY("pt", "x", "y", []Curve{{Label: "p", Points: [][2]float64{{5, 5}}}}, 20, 6)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestPlotCDFsDeterministicLegend(t *testing.T) {
	series := map[string][]float64{
		"zeta":  {1, 2, 3},
		"alpha": {2, 3, 4},
	}
	a := PlotCDFs("cdf", "s", series, 40, 8)
	b := PlotCDFs("cdf", "s", series, 40, 8)
	if a != b {
		t.Fatal("plot output not deterministic")
	}
	if strings.Index(a, "alpha") > strings.Index(a, "zeta") {
		t.Fatalf("legend not sorted:\n%s", a)
	}
}

func TestPlotCDFMonotoneShape(t *testing.T) {
	out := PlotCDFs("cdf", "s", map[string][]float64{"x": {1, 2, 3, 4, 5, 6, 7, 8}}, 30, 8)
	// The first grid row (max Y) must contain a mark at/near the right edge
	// and the bottom row one at/near the left: a rising curve.
	lines := strings.Split(out, "\n")
	top, bottom := lines[1], lines[8]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("curve does not span the grid:\n%s", out)
	}
	if strings.Index(bottom, "*") > strings.Index(top, "*") {
		t.Fatalf("CDF not rising:\n%s", out)
	}
}
