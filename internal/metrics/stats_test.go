package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.Min != 7 || s.Max != 7 || s.Median != 7 {
		t.Fatalf("bad single summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("q50 = %v, want 2", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("q100 = %v, want 4", got)
	}
	if got := c.Quantile(0.25); got != 1 {
		t.Fatalf("q25 = %v, want 1", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0][0] != 1 || pts[2][0] != 5 {
		t.Fatalf("endpoints wrong: %v", pts)
	}
	if pts[2][1] != 1 {
		t.Fatalf("last cumulative prob = %v, want 1", pts[2][1])
	}
}

// Property: CDF is monotone nondecreasing and Quantile inverts At.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := c.At(x)
			if p < prev {
				return false
			}
			prev = p
			// Quantile at P(X<=x) must be <= x (smallest v with mass >= p).
			if c.Quantile(p) > x {
				return false
			}
		}
		return c.At(sorted[count-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max] and stddev >= 0.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesBin(t *testing.T) {
	var ts TimeSeries
	ts.Add(100*time.Millisecond, 10)
	ts.Add(900*time.Millisecond, 5)
	ts.Add(1500*time.Millisecond, 7)
	ts.Add(5*time.Second, 99) // outside horizon
	bins := ts.Bin(time.Second, 3*time.Second)
	if len(bins) != 3 {
		t.Fatalf("got %d bins", len(bins))
	}
	if bins[0] != 15 || bins[1] != 7 || bins[2] != 0 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestTimeSeriesBinDegenerate(t *testing.T) {
	var ts TimeSeries
	if got := ts.Bin(0, time.Second); got != nil {
		t.Fatalf("zero width should return nil, got %v", got)
	}
	if got := ts.Bin(time.Second, 0); got != nil {
		t.Fatalf("zero horizon should return nil, got %v", got)
	}
}

func TestSeconds(t *testing.T) {
	got := Seconds([]time.Duration{time.Second, 1500 * time.Millisecond})
	if got[0] != 1 || got[1] != 1.5 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Table 3", Headers: []string{"Item", "Value"}}
	tb.AddRow("CPU overhead", "6.18%")
	out := tb.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "CPU overhead") {
		t.Fatalf("bad table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (title, header, sep, row), got %d:\n%s", len(lines), out)
	}
}
