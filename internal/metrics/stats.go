// Package metrics provides the statistical helpers used by the analyzer and
// the experiment harness: summary statistics, empirical CDFs, time series
// binning, and plain-text table rendering for paper-style output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics of xs. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of sorted (ascending) xs
// using linear interpolation. It panics if xs is unsorted in debug-critical
// paths only implicitly; callers must pass sorted data.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample. The input slice is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Count of values <= x via binary search for the first value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= q, for q in
// (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	// The tiny epsilon guards against q*n rounding just above an integer
	// when q was itself computed as count/n.
	i := int(math.Ceil(q*float64(len(c.sorted))-1e-9)) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (value, cumulative-probability) points
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// Seconds converts a slice of durations to float64 seconds, the unit used in
// all paper figures.
func Seconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// TimeSeries accumulates (t, value) points and supports binning into
// fixed-width intervals, used for throughput-over-time plots (Fig. 18).
type TimeSeries struct {
	T []time.Duration
	V []float64
}

// Add appends a point. Points must be added in nondecreasing time order.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Bin sums values into width-sized bins over [0, horizon) and returns one
// total per bin. Used to turn per-packet byte counts into throughput.
func (ts *TimeSeries) Bin(width, horizon time.Duration) []float64 {
	if width <= 0 || horizon <= 0 {
		return nil
	}
	n := int((horizon + width - 1) / width)
	bins := make([]float64, n)
	for i, t := range ts.T {
		if t < 0 || t >= horizon {
			continue
		}
		bins[t/width] += ts.V[i]
	}
	return bins
}

// Table renders paper-style fixed-width text tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out string
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i < len(widths) {
				s += fmt.Sprintf("%-*s", widths[i]+2, c)
			} else {
				s += c + "  "
			}
		}
		return s + "\n"
	}
	out += line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		for j := 0; j < w; j++ {
			sep[i] += "-"
		}
	}
	out += line(sep)
	for _, r := range t.rows {
		out += line(r)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
