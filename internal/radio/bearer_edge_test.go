package radio

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// Edge-case coverage for the bearer and RLC entity beyond the main suite.

func TestEmptyPacketDeliversNothing(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, ProfileWiFi())
	mon := &recordingMonitor{}
	b.Attach(mon)
	delivered := false
	b.SendUplink(nil, func() { delivered = true })
	k.Run()
	// Zero-byte SDUs occupy no stream bytes; their delivery callback still
	// fires once the stream reaches their (zero-length) end offset.
	if !delivered {
		t.Fatal("zero-byte SDU never delivered")
	}
	for _, p := range mon.pdus {
		if p.Size == 0 {
			t.Fatal("zero-size PDU emitted")
		}
	}
}

func TestInterleavedDirectionsIndependent(t *testing.T) {
	k := simtime.NewKernel(2)
	b := NewBearer(k, Profile3G())
	mon := &recordingMonitor{}
	b.Attach(mon)
	var ulAt, dlAt simtime.Time
	b.SendUplink(make([]byte, 8000), func() { ulAt = k.Now() })
	b.SendDownlink(make([]byte, 8000), func() { dlAt = k.Now() })
	k.Run()
	if ulAt == 0 || dlAt == 0 {
		t.Fatal("one direction starved")
	}
	// Sequence spaces are per direction, both starting at 0.
	seen := map[Direction]bool{}
	for _, p := range mon.pdus {
		if p.Seq == 0 {
			seen[p.Dir] = true
		}
	}
	if !seen[Uplink] || !seen[Downlink] {
		t.Fatal("per-direction sequence spaces not independent")
	}
}

func TestQueuedBytesAccounting(t *testing.T) {
	k := simtime.NewKernel(3)
	b := NewBearer(k, Profile3G())
	b.SendUplink(make([]byte, 4000), nil)
	if q := b.QueuedUplink(); q != 4000 {
		t.Fatalf("queued uplink = %d immediately after send", q)
	}
	k.Run()
	if q := b.QueuedUplink(); q != 0 {
		t.Fatalf("queued uplink = %d after drain", q)
	}
	if q := b.QueuedDownlink(); q != 0 {
		t.Fatalf("queued downlink = %d with no DL traffic", q)
	}
}

func TestBurstAfterIdleRepaysPromotion(t *testing.T) {
	k := simtime.NewKernel(4)
	b := NewBearer(k, Profile3G())
	var first, second simtime.Time
	b.SendUplink(make([]byte, 400), func() { first = k.Now() })
	k.Run()
	// Idle long enough to demote DCH -> FACH -> PCH (5s + 12s).
	k.RunUntil(k.Now() + 30*time.Second)
	start := k.Now()
	b.SendUplink(make([]byte, 400), func() { second = k.Now() })
	k.Run()
	if second-start < 2*time.Second {
		t.Fatalf("second transfer after idle took %v, should repay the 2s PCH promotion",
			second-start)
	}
	if first < 2*time.Second {
		t.Fatalf("first transfer at %v, before initial promotion", first)
	}
}

func TestMultipleMonitorsAllNotified(t *testing.T) {
	k := simtime.NewKernel(5)
	b := NewBearer(k, ProfileWiFi())
	m1, m2 := &recordingMonitor{}, &recordingMonitor{}
	b.Attach(m1)
	b.Attach(m2)
	b.SendUplink(make([]byte, 3000), nil)
	k.Run()
	if len(m1.pdus) == 0 || len(m1.pdus) != len(m2.pdus) {
		t.Fatalf("monitors diverge: %d vs %d", len(m1.pdus), len(m2.pdus))
	}
}

func TestHighLossEventuallyDelivers(t *testing.T) {
	k := simtime.NewKernel(6)
	p := Profile3G()
	p.PDULossProb = 0.3 // brutal air interface
	b := NewBearer(k, p)
	done := 0
	for i := 0; i < 5; i++ {
		b.SendUplink(make([]byte, 2000), func() { done++ })
	}
	k.Run()
	if done != 5 {
		t.Fatalf("delivered %d of 5 under 30%% PDU loss", done)
	}
}
