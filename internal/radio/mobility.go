package radio

import (
	"math"

	"repro/internal/simtime"
)

// Mover is a deterministic random-waypoint mobility model: the UE walks at
// constant speed toward a waypoint drawn uniformly from the topology
// bounds, dwells briefly, and picks the next. The trajectory is a pure
// function of (seed, index) — no shared RNG — so positions are identical
// regardless of which shard or worker evaluates them. PosAt must be called
// with non-decreasing times (it advances internal segment state lazily).
type Mover struct {
	state uint64

	x, y   float64      // position at t0
	t0     simtime.Time // segment start
	tx, ty float64      // current waypoint
	speed  float64      // m/s
	w, h   float64      // roaming bounds
	pause  simtime.Time // dwell at each waypoint
}

// NewMover builds the trajectory for UE index under the given seed,
// starting at (x, y). speed <= 0 yields a static mover that always reports
// the start position.
func NewMover(seed int64, index int, t *Topology, speedMps, x, y float64) *Mover {
	m := &Mover{
		state: moverSeed(seed, index),
		x:     x, y: y,
		speed: speedMps,
		pause: simtime.Time(2 * 1e9), // 2s dwell at each waypoint
	}
	m.w, m.h = t.Bounds()
	m.tx = m.next() * m.w
	m.ty = m.next() * m.h
	return m
}

// moverSeed derives an independent per-UE generator state via splitmix64.
func moverSeed(seed int64, index int) uint64 {
	z := uint64(seed) ^ (uint64(index+1) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}

// next returns the next uniform draw in [0, 1) (xorshift64*).
func (m *Mover) next() float64 {
	m.state ^= m.state >> 12
	m.state ^= m.state << 25
	m.state ^= m.state >> 27
	return float64(m.state*0x2545f4914f6cdd1d>>11) / float64(1<<53)
}

// PosAt returns the position at virtual time t (non-decreasing calls).
func (m *Mover) PosAt(t simtime.Time) (x, y float64) {
	if m.speed <= 0 {
		return m.x, m.y
	}
	for {
		dx, dy := m.tx-m.x, m.ty-m.y
		dist := math.Hypot(dx, dy)
		if dist == 0 {
			m.tx = m.next() * m.w
			m.ty = m.next() * m.h
			continue
		}
		arrive := m.t0 + simtime.Time(dist/m.speed*1e9)
		if t < arrive {
			frac := float64(t-m.t0) / float64(arrive-m.t0)
			return m.x + dx*frac, m.y + dy*frac
		}
		// Waypoint reached: dwell, then head for the next one.
		m.x, m.y, m.t0 = m.tx, m.ty, arrive+m.pause
		if t < m.t0 {
			return m.x, m.y
		}
		m.tx = m.next() * m.w
		m.ty = m.next() * m.h
	}
}
