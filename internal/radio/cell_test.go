package radio

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simtime"
)

// pduLogKey compacts one PDU observation into a comparable string.
func pduLogKey(p *PDU) string {
	return fmt.Sprintf("%d/%s/%d/%v/%v/%d", p.Seq, p.Dir, p.Size, p.Retx, p.Poll, p.SentAt)
}

// driveBearer pushes count payloads down the bearer's downlink and uplink
// and runs the kernel dry, returning the observed PDU log and delivery
// count.
func driveBearer(k *simtime.Kernel, b *Bearer, count, size int) ([]string, int) {
	rec := &recordingMonitor{}
	b.Attach(rec)
	delivered := 0
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < count; i++ {
		b.SendDownlink(payload, func() { delivered++ })
		b.SendUplink(payload[:size/4], func() { delivered++ })
	}
	k.Run()
	var keys []string
	for _, p := range rec.pdus {
		keys = append(keys, pduLogKey(p))
	}
	return keys, delivered
}

// TestSingleBearerCellMatchesStandalone is the core cell-scheduler
// compatibility property: a cell with one attached bearer must produce an
// event-for-event identical PDU schedule to a standalone bearer at the same
// seed — the guarantee the 1-UE fleet/legacy-Bed golden test builds on.
func TestSingleBearerCellMatchesStandalone(t *testing.T) {
	for _, policy := range []SchedPolicy{SchedRoundRobin, SchedPropFair} {
		run := func(withCell bool) ([]string, int) {
			k := simtime.NewKernel(7)
			b := NewBearer(k, ProfileLTE())
			if withCell {
				NewCell(k, policy).Attach(b, 1)
			}
			return driveBearer(k, b, 40, 1400)
		}
		alone, dAlone := run(false)
		celled, dCell := run(true)
		if dAlone != dCell {
			t.Fatalf("policy %v: deliveries %d (standalone) != %d (cell)", policy, dAlone, dCell)
		}
		if len(alone) != len(celled) {
			t.Fatalf("policy %v: PDU count %d != %d", policy, len(alone), len(celled))
		}
		for i := range alone {
			if alone[i] != celled[i] {
				t.Fatalf("policy %v: PDU %d differs:\nstandalone: %s\ncell:       %s",
					policy, i, alone[i], celled[i])
			}
		}
	}
}

// TestCellSerializesContention checks that two bearers on one cell share the
// air interface: the same transfer that takes T alone takes roughly 2T when
// a second bearer pushes the same load, and both finish.
func TestCellSerializesContention(t *testing.T) {
	finishAt := func(n int) simtime.Time {
		k := simtime.NewKernel(3)
		cell := NewCell(k, SchedRoundRobin)
		var done int
		var last simtime.Time
		payload := make([]byte, 1400)
		for i := 0; i < n; i++ {
			b := NewBearer(k, ProfileLTE())
			cell.Attach(b, 1)
			for j := 0; j < 200; j++ {
				b.SendDownlink(payload, func() {
					done++
					if k.Now() > last {
						last = k.Now()
					}
				})
			}
		}
		k.Run()
		if done != n*200 {
			t.Fatalf("delivered %d of %d SDUs", done, n*200)
		}
		return last
	}
	t1 := finishAt(1)
	t2 := finishAt(2)
	// Airtime doubles but fixed costs (RRC promotion, ARQ round trips)
	// overlap across the two UEs, so the stretch lands between 1.2x and 3x.
	if t2 < t1*6/5 {
		t.Fatalf("2-UE completion %v not meaningfully later than 1-UE %v", t2, t1)
	}
	if t2 > t1*3 {
		t.Fatalf("2-UE completion %v more than 3x the 1-UE %v", t2, t1)
	}
}

// TestCellRoundRobinFairness: two equal-gain bearers with equal backlogs
// should see interleaved service and near-equal completion.
func TestCellRoundRobinFairness(t *testing.T) {
	k := simtime.NewKernel(11)
	cell := NewCell(k, SchedRoundRobin)
	recs := [2]*recordingMonitor{{}, {}}
	var finish [2]simtime.Time
	payload := make([]byte, 1400)
	for i := 0; i < 2; i++ {
		b := NewBearer(k, ProfileLTE())
		cell.Attach(b, 1)
		b.Attach(recs[i])
		idx := i
		for j := 0; j < 100; j++ {
			b.SendDownlink(payload, func() {
				if k.Now() > finish[idx] {
					finish[idx] = k.Now()
				}
			})
		}
	}
	k.Run()
	if finish[0] == 0 || finish[1] == 0 {
		t.Fatal("a bearer never completed")
	}
	lo, hi := finish[0], finish[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi-lo) > 0.25*float64(hi) {
		t.Fatalf("round-robin completion skew too large: %v vs %v", finish[0], finish[1])
	}
}

// TestCellPropFairFavorsGoodChannel: under proportional fair, a high-gain
// bearer must finish the same backlog sooner than a low-gain one, and the
// cell must still serve the low-gain bearer to completion.
func TestCellPropFairFavorsGoodChannel(t *testing.T) {
	k := simtime.NewKernel(13)
	cell := NewCell(k, SchedPropFair)
	var finish [2]simtime.Time
	payload := make([]byte, 1400)
	gains := []float64{2.0, 0.5}
	for i := 0; i < 2; i++ {
		b := NewBearer(k, ProfileLTE())
		cell.Attach(b, gains[i])
		idx := i
		for j := 0; j < 100; j++ {
			b.SendDownlink(payload, func() {
				if k.Now() > finish[idx] {
					finish[idx] = k.Now()
				}
			})
		}
	}
	k.Run()
	if finish[0] == 0 || finish[1] == 0 {
		t.Fatal("a bearer never completed")
	}
	if finish[0] >= finish[1] {
		t.Fatalf("high-gain bearer finished at %v, not before low-gain at %v", finish[0], finish[1])
	}
}

// TestCellDeterminism: a contended multi-bearer cell run is bit-identical
// across reruns at the same seed.
func TestCellDeterminism(t *testing.T) {
	run := func() []string {
		k := simtime.NewKernel(17)
		cell := NewCell(k, SchedPropFair)
		var keys []string
		payload := make([]byte, 1000)
		for i := 0; i < 4; i++ {
			b := NewBearer(k, Profile3G())
			cell.Attach(b, 0.5+0.5*float64(i))
			rec := &recordingMonitor{}
			b.Attach(rec)
			for j := 0; j < 50; j++ {
				b.SendDownlink(payload, nil)
			}
			defer func() {
				for _, p := range rec.pdus {
					keys = append(keys, pduLogKey(p))
				}
			}()
		}
		k.Run()
		return keys
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("PDU counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at PDU %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestCellOutageReleasesChannel: a bearer that goes into outage while queued
// must not wedge the channel for its cell mates.
func TestCellOutageReleasesChannel(t *testing.T) {
	k := simtime.NewKernel(19)
	cell := NewCell(k, SchedRoundRobin)
	bOut := NewBearer(k, ProfileLTE())
	bOK := NewBearer(k, ProfileLTE())
	cell.Attach(bOut, 1)
	cell.Attach(bOK, 1)
	bOut.ScheduleOutage(50*time.Millisecond, 2*time.Second)
	payload := make([]byte, 1400)
	outDone, okDone := 0, 0
	for j := 0; j < 50; j++ {
		bOut.SendDownlink(payload, func() { outDone++ })
		bOK.SendDownlink(payload, func() { okDone++ })
	}
	k.Run()
	if okDone != 50 {
		t.Fatalf("healthy bearer delivered %d of 50 during peer outage", okDone)
	}
	if outDone != 50 {
		t.Fatalf("outaged bearer delivered %d of 50 after recovery", outDone)
	}
}

// TestAttachTwicePanics: double cell attachment is a wiring bug.
func TestAttachTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second Attach did not panic")
		}
	}()
	k := simtime.NewKernel(1)
	b := NewBearer(k, ProfileLTE())
	NewCell(k, SchedRoundRobin).Attach(b, 1)
	NewCell(k, SchedRoundRobin).Attach(b, 1)
}
