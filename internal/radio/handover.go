package radio

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// HandoverEvent records one serving-cell change, emitted to radio monitors
// (the QxDM simulator logs them alongside RRC transitions, per §5 of the
// paper's handover analysis).
type HandoverEvent struct {
	At       simtime.Time
	From, To int // topology cell IDs
	// Reselection marks an idle-mode cell reselection: the UE re-camps with
	// no data-plane interruption. False means a connected-mode handover.
	Reselection bool
	// Interruption is the data-plane stall the handover imposed (detach →
	// target attach, including X2 forwarding). Zero for reselections.
	Interruption time.Duration
}

// HandoverMonitor is implemented by radio monitors that also want
// handover/reselection events (optional extension of Monitor).
type HandoverMonitor interface {
	Handover(HandoverEvent)
}

// RoamConfig tunes the Roamer's measurement and handover state machine.
// Zero values select the defaults noted on each field.
type RoamConfig struct {
	Interval time.Duration // measurement report period (default 200ms)
	// Hysteresis is the neighbor/serving gain ratio that arms a handover
	// (A3-style event; default 1.25 ≈ 1dB margin under exponent 2.6).
	Hysteresis float64
	TTT        time.Duration // time-to-trigger the margin must hold (default 480ms)
	// Interruption is the control-plane break on a connected-mode handover;
	// Forwarding is the X2 data-forwarding delay added to it. The data
	// plane stalls for their sum (defaults 50ms and the topology's
	// X2Latency).
	Interruption time.Duration
	Forwarding   time.Duration
	// ReselectHysteresis is the gain ratio for idle-mode reselection
	// (default 1.1 — idle UEs re-camp eagerly, it costs nothing).
	ReselectHysteresis float64
	// DeviceGain is the UE's static link-quality multiplier composed with
	// the position-dependent path gain (default 1).
	DeviceGain float64
}

func (c *RoamConfig) defaults(t *Topology) {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.Hysteresis <= 1 {
		c.Hysteresis = 1.25
	}
	if c.TTT < 0 {
		c.TTT = 0
	} else if c.TTT == 0 {
		c.TTT = 480 * time.Millisecond
	}
	if c.Interruption <= 0 {
		c.Interruption = 50 * time.Millisecond
	}
	if c.Forwarding <= 0 {
		c.Forwarding = t.X2Latency
	}
	if c.ReselectHysteresis <= 1 {
		c.ReselectHysteresis = 1.1
	}
	if c.DeviceGain <= 0 {
		c.DeviceGain = 1
	}
}

// CellChange is one entry of a Roamer's serving-cell history.
type CellChange struct {
	At   simtime.Time
	Cell int
}

// Roamer drives one UE's mobility through a multi-cell topology: it ticks
// a measurement timer, updates the bearer's gain from the serving cell's
// path loss, and runs the handover state machine — A3-style measurement
// events with hysteresis and time-to-trigger in connected mode, instant
// reselection in idle. Handovers detach/attach between this kernel's local
// cell instances, so a Roamer never crosses shard boundaries.
type Roamer struct {
	b     *Bearer
	topo  *Topology
	cells []*Cell // local instance of every topology cell, indexed by site ID
	mover *Mover
	cfg   RoamConfig

	serving   int
	candidate int // armed A3 candidate, -1 when none
	candSince simtime.Time
	inHO      bool

	handovers    int
	reselections int
	history      []CellChange

	tr       *obs.Trace
	hoSpan   obs.Span
	hoCtr    *obs.Counter
	reselCtr *obs.Counter

	stop func()
}

// NewRoamer wires a roamer for bearer b, already attached to
// cells[serving]. cells holds this kernel's local instance of every
// topology site, indexed by site ID.
func NewRoamer(b *Bearer, topo *Topology, cells []*Cell, mover *Mover, serving int, cfg RoamConfig) *Roamer {
	if b.Cell() != cells[serving] {
		panic("radio: roamer bearer not attached to the serving cell")
	}
	cfg.defaults(topo)
	return &Roamer{
		b: b, topo: topo, cells: cells, mover: mover, cfg: cfg,
		serving:   serving,
		candidate: -1,
		history:   []CellChange{{At: 0, Cell: serving}},
	}
}

// SetObs attaches the trace bus and metrics registry (either may be nil).
func (r *Roamer) SetObs(tr *obs.Trace, reg *obs.Registry) {
	r.tr = tr
	r.hoCtr = reg.Counter("handovers")
	r.reselCtr = reg.Counter("reselections")
}

// Start begins the measurement ticker.
func (r *Roamer) Start() {
	if r.stop != nil {
		return
	}
	r.stop = r.b.Kernel().Ticker(r.cfg.Interval, r.tick)
}

// Serving returns the current serving cell ID.
func (r *Roamer) Serving() int { return r.serving }

// Handovers returns the number of connected-mode handovers completed.
func (r *Roamer) Handovers() int { return r.handovers }

// Reselections returns the number of idle-mode reselections.
func (r *Roamer) Reselections() int { return r.reselections }

// History returns the serving-cell timeline (first entry at time 0).
func (r *Roamer) History() []CellChange { return r.history }

// ServingAt returns the serving cell at virtual time t.
func (r *Roamer) ServingAt(t simtime.Time) int {
	cell := r.history[0].Cell
	for _, c := range r.history {
		if c.At > t {
			break
		}
		cell = c.Cell
	}
	return cell
}

// Close stops the ticker and ends any open handover span (call at the end
// of the run, before exporting traces).
func (r *Roamer) Close(at simtime.Time) {
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
	if r.inHO {
		r.hoSpan.EndAt(time.Duration(at))
		r.hoSpan = obs.Span{}
	}
}

// tick is one measurement report: refresh the serving gain from the current
// position, then evaluate reselection (idle) or the A3 handover rule
// (connected).
func (r *Roamer) tick() {
	if r.inHO {
		return
	}
	now := r.b.Kernel().Now()
	x, y := r.mover.PosAt(now)
	gServ := r.topo.Gain(r.serving, x, y)
	r.b.SetGain(gServ * r.cfg.DeviceGain)

	best, gBest := r.topo.Strongest(x, y)
	if best == r.serving {
		r.candidate = -1
		return
	}
	if r.b.RRC().State() == r.b.Profile().Base {
		// Idle: re-camp on the strongest cell past a small margin, no
		// data-plane interruption.
		if gBest >= gServ*r.cfg.ReselectHysteresis {
			r.reselect(now, best, gBest)
		}
		r.candidate = -1
		return
	}
	if gBest < gServ*r.cfg.Hysteresis {
		r.candidate = -1
		return
	}
	if r.candidate != best {
		r.candidate = best
		r.candSince = now
	}
	if now-r.candSince >= simtime.Time(r.cfg.TTT) {
		r.startHandover(best)
	}
}

func (r *Roamer) reselect(now simtime.Time, to int, gain float64) {
	from := r.serving
	r.b.BeginHandover()
	r.b.CompleteHandover(r.cells[to], gain*r.cfg.DeviceGain)
	r.serving = to
	r.reselections++
	r.history = append(r.history, CellChange{At: now, Cell: to})
	r.reselCtr.Inc()
	if r.tr != nil {
		r.tr.Instant(obs.LayerRadio, "rrc:reselect", r.tr.Scope(),
			obs.Attr{Key: "from", Val: strconv.Itoa(from)},
			obs.Attr{Key: "to", Val: strconv.Itoa(to)})
	}
	r.b.emitHandover(HandoverEvent{At: now, From: from, To: to, Reselection: true})
}

func (r *Roamer) startHandover(to int) {
	r.inHO = true
	r.candidate = -1
	if r.tr != nil {
		r.hoSpan = r.tr.Start(obs.LayerRadio, "rrc:handover", r.tr.Scope(),
			obs.Attr{Key: "from", Val: strconv.Itoa(r.serving)},
			obs.Attr{Key: "to", Val: strconv.Itoa(to)})
	}
	r.b.BeginHandover()
	stall := r.cfg.Interruption + r.cfg.Forwarding
	r.b.Kernel().After(stall, func() { r.completeHandover(to, stall) })
}

func (r *Roamer) completeHandover(to int, stall time.Duration) {
	now := r.b.Kernel().Now()
	x, y := r.mover.PosAt(now)
	from := r.serving
	r.b.CompleteHandover(r.cells[to], r.topo.Gain(to, x, y)*r.cfg.DeviceGain)
	r.serving = to
	r.handovers++
	r.history = append(r.history, CellChange{At: now, Cell: to})
	r.hoCtr.Inc()
	if r.tr != nil {
		r.hoSpan.End()
		r.hoSpan = obs.Span{}
	}
	r.b.emitHandover(HandoverEvent{At: now, From: from, To: to, Interruption: stall})
	r.inHO = false
}
