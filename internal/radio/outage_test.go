package radio

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// TestOutageRecoversDelivery: packets sent across a bearer outage are still
// delivered once coverage returns — the RLC AM entities NACK the PDUs lost
// in the gap and retransmit, never deadlocking.
func TestOutageRecoversDelivery(t *testing.T) {
	for _, mk := range []func() *Profile{Profile3G, ProfileLTE} {
		prof := mk()
		k := simtime.NewKernel(1)
		b := NewBearer(k, prof)
		mon := &recordingMonitor{}
		b.Attach(mon)
		b.ScheduleOutage(simtime.Time(2500*time.Millisecond), 2*time.Second)

		// A stream of uplink packets spanning the outage window.
		const n = 20
		delivered := 0
		for i := 0; i < n; i++ {
			at := simtime.Time(i) * simtime.Time(300*time.Millisecond)
			k.At(at, func() {
				b.SendUplink(make([]byte, 1400), func() { delivered++ })
			})
		}
		k.Run()

		if delivered != n {
			t.Fatalf("%s: delivered %d of %d packets across the outage", prof.Name, delivered, n)
		}
		if b.OutageCount() != 1 {
			t.Fatalf("%s: outage count = %d, want 1", prof.Name, b.OutageCount())
		}
		retx := 0
		for _, p := range mon.pdus {
			if p.Retx {
				retx++
			}
		}
		if retx == 0 {
			t.Fatalf("%s: no RLC retransmissions after a 2s outage", prof.Name)
		}
	}
}

// TestOutageDropsRRCToBase: losing the bearer resets the RRC machine to its
// base state, and the next transfer pays a fresh promotion.
func TestOutageDropsRRCToBase(t *testing.T) {
	prof := Profile3G()
	k := simtime.NewKernel(1)
	b := NewBearer(k, prof)

	// Promote via traffic, then hit an outage while still high-power.
	b.SendUplink(make([]byte, 100), nil)
	b.ScheduleOutage(simtime.Time(3*time.Second), 500*time.Millisecond)
	k.RunUntil(simtime.Time(3100 * time.Millisecond))
	if got := b.RRC().State(); got != prof.Base {
		t.Fatalf("state during outage = %v, want base %v", got, prof.Base)
	}
	if !b.InOutage() {
		t.Fatal("InOutage() false inside the scheduled window")
	}
	k.RunUntil(simtime.Time(4 * time.Second))
	if b.InOutage() {
		t.Fatal("InOutage() true after the window ended")
	}
}

// TestOutageDeterminism: two runs of the same impaired schedule produce the
// same PDU log.
func TestOutageDeterminism(t *testing.T) {
	run := func() []simtime.Time {
		k := simtime.NewKernel(9)
		b := NewBearer(k, ProfileLTE())
		mon := &recordingMonitor{}
		b.Attach(mon)
		b.ScheduleOutage(simtime.Time(time.Second), time.Second)
		for i := 0; i < 10; i++ {
			at := simtime.Time(i) * simtime.Time(250*time.Millisecond)
			k.At(at, func() { b.SendDownlink(make([]byte, 1400), nil) })
		}
		k.Run()
		out := make([]simtime.Time, len(mon.pdus))
		for i, p := range mon.pdus {
			out[i] = p.SentAt
		}
		return out
	}
	a, c := run(), run()
	if len(a) != len(c) {
		t.Fatalf("PDU counts differ: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("PDU %d timestamp differs: %v vs %v", i, a[i], c[i])
		}
	}
}
