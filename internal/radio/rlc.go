package radio

import (
	"time"

	"repro/internal/simtime"
)

// Direction distinguishes uplink (device to base station) from downlink.
type Direction int

const (
	Uplink Direction = iota
	Downlink
)

func (d Direction) String() string {
	if d == Uplink {
		return "UL"
	}
	return "DL"
}

// PDU is one RLC protocol data unit as seen over the air. To keep memory
// bounded across million-PDU experiments, a PDU stores only what QxDM logs
// and what the cross-layer mapping consumes: the payload length, the first
// two payload bytes, and the Length Indicators. (QxDM itself only captures 2
// payload bytes per PDU — the limitation that motivates the paper's
// long-jump mapping algorithm.)
type PDU struct {
	Seq  uint32
	Dir  Direction
	Size int     // payload bytes carried
	Head [2]byte // first 2 payload bytes (Head[1] undefined when Size < 2)
	// LI holds Length Indicators: offsets within this PDU's payload at
	// which an SDU (IP packet) ends, in increasing order. An offset equal
	// to Size means an SDU ends exactly at the PDU boundary.
	LI []int
	// Poll is the ARQ poll bit requesting a STATUS report.
	Poll bool
	// Retx marks ARQ retransmissions of a previously lost PDU.
	Retx bool
	// SentAt is when transmission of this PDU finished (the timestamp the
	// diagnostic monitor records).
	SentAt simtime.Time
	// StreamOff is the absolute byte offset of this PDU's payload within
	// the direction's SDU byte stream. It is internal bookkeeping (not
	// available to the analyzer, which must infer the mapping).
	StreamOff uint64
}

// StatusPDU is the ARQ feedback control PDU sent by the receiver in response
// to a poll.
type StatusPDU struct {
	At  simtime.Time // when the sender received it
	Dir Direction    // direction of the *data* flow being acknowledged
	// AckSeq acknowledges all PDUs with Seq < AckSeq except those in Nack.
	AckSeq uint32
	Nack   []uint32
}

// Monitor observes radio-layer events. The qxdm package implements it to
// build diagnostic logs; tests implement it directly.
type Monitor interface {
	// RRCTransition is called on every RRC state change.
	RRCTransition(Transition)
	// DataPDU is called when a data PDU finishes transmission over the air.
	DataPDU(*PDU)
	// StatusPDU is called when the data sender receives ARQ feedback.
	StatusPDU(StatusPDU)
}

// sdu is one upper-layer packet queued for RLC transmission.
type sdu struct {
	bytes   []byte // payload to segment; released after segmentation
	size    int
	end     uint64 // absolute stream offset at which this SDU ends
	deliver func() // invoked when the far side has reassembled the SDU in order
}

// entity is one direction's RLC acknowledged-mode entity: segmentation on
// the sending side and in-order reassembly accounting on the receiving side.
// Both sides live in one struct because the simulation owns both endpoints.
type entity struct {
	b   *Bearer
	dir Direction

	payloadSize int
	pollEvery   int
	maxWindow   int // max unacked PDUs in flight before the sender stalls

	// ch is the shared cell channel this entity transmits on, nil when the
	// bearer is standalone (self-paced, the single-UE default). cellIdx is
	// the bearer's attach order on the cell, used for deterministic
	// tie-breaking; inRing marks membership in the channel's wait ring.
	ch      *cellChannel
	cellIdx int
	inRing  bool
	// txCh is the channel the PDU currently on the air was granted by. It
	// can outlive ch: a handover may detach the bearer mid-flight, and the
	// occupancy must complete (and release) the old cell's channel.
	txCh *cellChannel
	// onAir is the PDU currently transmitting (at most one per entity), and
	// the cached completion/loop closures below keep the per-PDU hot path
	// allocation-free (method values and fresh closures both allocate).
	onAir     *PDU
	pduSentFn func()
	txNextFn  func()
	startFn   func()
	statusFn  func()
	// ewmaBps and ewmaAt are the proportional-fair scheduler's served-rate
	// average (lazily decayed at ewmaAt).
	ewmaBps float64
	ewmaAt  simtime.Time

	// Sender state.
	queue     []*sdu // SDUs not yet fully segmented
	queuedOff uint64 // stream offset covered by queue (total enqueued)
	segOff    uint64 // stream offset segmented into PDUs so far
	nextSeq   uint32
	sincePoll int
	sending   bool
	stalled   bool            // window-full, waiting for STATUS
	lost      map[uint32]*PDU // sent but lost over the air, awaiting NACK
	inFlight  map[uint32]*PDU // sent, not yet acked
	retx      []*PDU          // NACKed PDUs awaiting retransmission
	statusDue bool            // a STATUS is scheduled
	// Receiver state.
	recvSeq    uint32          // next in-order sequence number expected
	heldPDUs   map[uint32]bool // received out of order (ahead of a loss)
	heldSize   map[uint32]int
	delivered  uint64 // in-order payload bytes delivered to the far side
	pendingSDU []*sdu // SDUs awaiting delivery, ordered by end offset
}

func newEntity(b *Bearer, dir Direction) *entity {
	e := &entity{
		b:        b,
		dir:      dir,
		lost:     make(map[uint32]*PDU),
		inFlight: make(map[uint32]*PDU),
		heldPDUs: make(map[uint32]bool),
		heldSize: make(map[uint32]int),
	}
	if dir == Uplink {
		e.payloadSize = b.prof.ULPDUPayload
	} else {
		e.payloadSize = b.prof.DLPDUPayload
	}
	e.pollEvery = b.prof.PollInterval
	// AM transmit window: half the 12-bit sequence space, as in the 3GPP
	// RLC spec. Small enough to stall on persistent feedback loss, large
	// enough not to throttle bulk transfers.
	e.maxWindow = 2048
	e.pduSentFn = func() {
		p := e.onAir
		e.onAir = nil
		e.pduSent(p)
	}
	e.txNextFn = e.txNext
	e.startFn = e.start
	e.statusFn = e.statusArrived
	return e
}

// send enqueues an upper-layer packet for transmission. deliver is invoked
// (in virtual time) when the SDU has been reassembled in order at the far
// side.
func (e *entity) send(payload []byte, deliver func()) {
	if len(payload) == 0 {
		// A zero-byte SDU occupies no stream bytes and would never be
		// covered by the receiver's delivered counter; complete it
		// immediately (real stacks never emit empty PDUs either).
		if deliver != nil {
			e.b.k.After(0, deliver)
		}
		return
	}
	s := &sdu{bytes: payload, size: len(payload), deliver: deliver}
	e.queuedOff += uint64(s.size)
	s.end = e.queuedOff
	e.queue = append(e.queue, s)
	e.pendingSDU = append(e.pendingSDU, s)
	e.kick()
}

// kick starts the transmission loop if it is not already running, honoring
// RRC promotion delay.
func (e *entity) kick() {
	if e.sending || e.stalled {
		return
	}
	if e.b.InOutage() {
		return // resume() re-kicks when the bearer comes back
	}
	if e.b.hoFrozen {
		return // CompleteHandover re-kicks on the target cell
	}
	if !e.hasWork() {
		return
	}
	e.sending = true
	ready := e.b.rrc.OnActivity()
	now := e.b.k.Now()
	if ready < now {
		ready = now
	}
	e.b.k.At(ready, e.startFn)
}

// start begins transmission once the RRC promotion delay has elapsed: on a
// shared cell the entity joins the channel's wait ring and transmits when
// scheduled; standalone it self-paces exactly as before.
func (e *entity) start() {
	if e.b.hoFrozen {
		// A promotion completed inside the handover interruption window;
		// CompleteHandover re-kicks on the target cell.
		e.sending = false
		return
	}
	if e.ch != nil {
		e.ch.activate(e)
		return
	}
	e.txNext()
}

func (e *entity) hasWork() bool {
	return len(e.retx) > 0 || e.segOff < e.queuedOff
}

// bandwidth returns this direction's current data-plane rate, falling back
// to the active-state rate during promotion (the machine has already
// transitioned by the time data flows).
func (e *entity) bandwidth() float64 {
	p := e.b.rrc.Params()
	bw := p.ULBandwidthBps
	if e.dir == Downlink {
		bw = p.DLBandwidthBps
	}
	if bw <= 0 {
		p = e.b.prof.States[e.b.prof.Active]
		bw = p.ULBandwidthBps
		if e.dir == Downlink {
			bw = p.DLBandwidthBps
		}
	}
	return bw
}

// buildPDU segments the next PDU from the queued SDU byte stream.
func (e *entity) buildPDU() *PDU {
	p := &PDU{Seq: e.nextSeq, Dir: e.dir, StreamOff: e.segOff}
	e.nextSeq++
	want := e.payloadSize
	// Walk the SDU queue copying sizes (and the first two bytes).
	for want > 0 && len(e.queue) > 0 {
		s := e.queue[0]
		sduStart := s.end - uint64(s.size)
		offInSDU := int(e.segOff - sduStart) // bytes of s already segmented
		avail := s.size - offInSDU
		take := avail
		if take > want {
			take = want
		}
		if p.Size < 2 && s.bytes != nil {
			for i := 0; i < take && p.Size+i < 2; i++ {
				p.Head[p.Size+i] = s.bytes[offInSDU+i]
			}
		}
		p.Size += take
		want -= take
		e.segOff += uint64(take)
		if e.segOff == s.end {
			p.LI = append(p.LI, p.Size) // SDU ends inside (or at end of) this PDU
			// Payload no longer needed: release it for reuse.
			if rel := e.b.payloadRelease; rel != nil && s.bytes != nil {
				rel(s.bytes)
			}
			s.bytes = nil
			e.queue = e.queue[1:]
		}
	}
	return p
}

// resume restarts the entity after a bearer outage: re-poll for ARQ feedback
// (any STATUS in flight during the outage was lost, and PDUs that finished
// mid-outage need NACKing) and restart the transmission loop.
func (e *entity) resume() {
	if len(e.lost) > 0 || len(e.inFlight) > 0 {
		e.schedStatus()
	}
	e.kick()
}

// txNext transmits one PDU (new or retransmission) and schedules the next.
// It is the standalone (no-cell) pacing loop.
func (e *entity) txNext() {
	if e.b.InOutage() || e.b.hoFrozen {
		// Bearer went down (or froze for a handover) between scheduling and
		// transmission; park the sender — resume()/CompleteHandover restarts
		// it.
		e.sending = false
		return
	}
	p := e.nextPDU()
	if p == nil {
		e.sending = false
		return
	}
	e.transmit(p)
}

// startTx is the cell-scheduler entry point: attempt to start one PDU
// transmission for this entity. It reports whether the channel is now busy;
// a parked entity (outage, drained queue) returns false so the dispatcher
// can move on to the next bearer.
func (e *entity) startTx() bool {
	if e.b.InOutage() || e.b.hoFrozen {
		e.sending = false
		return false
	}
	p := e.nextPDU()
	if p == nil {
		e.sending = false
		return false
	}
	e.transmit(p)
	return true
}

// nextPDU pops the next PDU to send: a pending retransmission first, then a
// fresh segment of the queued SDU stream. Nil when there is nothing to send.
func (e *entity) nextPDU() *PDU {
	if len(e.retx) > 0 {
		p := e.retx[0]
		e.retx = e.retx[1:]
		p.Retx = true
		return p
	}
	if e.segOff < e.queuedOff {
		return e.buildPDU()
	}
	return nil
}

// transmit puts one PDU on the air: refresh the RRC inactivity timer, apply
// the ARQ polling policy, and schedule completion after the airtime.
func (e *entity) transmit(p *PDU) {
	// Refresh the RRC inactivity timer; bandwidth may have changed state.
	e.b.rrc.OnActivity()
	bw := e.bandwidth() * e.b.gain
	if e.ch != nil && e.ch.share != 1 {
		// Capacity fraction left by the same topology cell's bearers on
		// other shards (multiplying by the default share of 1 would be a
		// float no-op, but skipping it keeps intent obvious).
		bw *= e.ch.share
	}
	txTime := e.b.prof.PDUHeaderTime +
		simtime.Time(float64(p.Size)*8/bw*float64(simtime.Time(1e9)))

	e.sincePoll++
	lastOfBurst := len(e.retx) == 0 && e.segOff >= e.queuedOff
	if e.sincePoll >= e.pollEvery || lastOfBurst {
		p.Poll = true
		e.sincePoll = 0
	}

	if e.ch != nil {
		e.ch.airtime += txTime
		e.txCh = e.ch
	}
	e.onAir = p
	e.b.k.After(txTime, e.pduSentFn)
}

// pduSent finishes one PDU's transmission: records it, applies loss, updates
// receiver state, schedules STATUS if polled, and continues the loop.
func (e *entity) pduSent(p *PDU) {
	k := e.b.k
	p.SentAt = k.Now()
	e.b.emitPDU(p)

	dropped := k.Rand().Float64() < e.b.prof.PDULossProb
	if e.b.InOutage() {
		// A PDU whose transmission completes during a bearer outage never
		// reaches the far side — it will be NACKed and retransmitted.
		dropped = true
	}
	e.inFlight[p.Seq] = p
	if dropped {
		e.lost[p.Seq] = p
	} else {
		// Arrives at the receiver after the one-way air latency.
		oneWay := e.b.prof.OTARTT / 2
		k.After(oneWay, func() { e.receive(p) })
	}

	if p.Poll {
		e.schedStatus()
	}

	// The channel that granted this PDU: normally e.ch, but a handover may
	// have detached the bearer mid-flight, in which case the occupancy must
	// complete on the old cell's channel with no further grant.
	ch := e.txCh
	e.txCh = nil
	detached := ch != nil && ch != e.ch

	// Window check: stall if too many unacked PDUs.
	if len(e.inFlight) >= e.maxWindow {
		e.stalled = true
		e.sending = false
		if !e.statusDue {
			e.schedStatus() // make sure feedback is coming
		}
		if ch != nil {
			ch.served(e, p, false)
		}
		return
	}
	if ch != nil {
		more := !detached && e.hasWork()
		if !more {
			e.sending = false
		}
		ch.served(e, p, more)
		return
	}
	if e.b.hoFrozen {
		// Standalone bearer frozen for a handover: park; CompleteHandover
		// re-kicks.
		e.sending = false
		return
	}
	if e.hasWork() {
		k.After(0, e.txNextFn)
	} else {
		e.sending = false
	}
}

// schedStatus schedules the ARQ STATUS report arriving back at the sender
// one OTA RTT after the poll.
func (e *entity) schedStatus() {
	if e.statusDue {
		return
	}
	e.statusDue = true
	k := e.b.k
	rtt := e.b.prof.OTARTT
	if j := e.b.prof.OTAJitter; j > 0 {
		rtt += simtime.Time(k.Rand().Int63n(int64(2*j))) - j
	}
	if rtt < time.Millisecond {
		rtt = time.Millisecond
	}
	k.After(rtt, e.statusFn)
}

// statusArrived processes ARQ feedback at the sender.
func (e *entity) statusArrived() {
	e.statusDue = false
	if e.b.InOutage() {
		// The STATUS PDU was lost in the outage; resume() re-polls once the
		// bearer is back.
		return
	}
	if e.b.hoFrozen {
		// STATUS arrived during the handover interruption window and is
		// lost with it; CompleteHandover re-polls via resume().
		return
	}
	st := StatusPDU{At: e.b.k.Now(), Dir: e.dir, AckSeq: e.nextSeq}
	// NACK everything currently known lost; queue retransmissions.
	for seq, p := range e.lost {
		st.Nack = append(st.Nack, seq)
		e.retx = append(e.retx, p)
		delete(e.lost, seq)
	}
	sortSeqs(st.Nack)
	sortPDUs(e.retx)
	// Ack (drop from flight) everything not nacked.
	for seq := range e.inFlight {
		nacked := false
		for _, n := range st.Nack {
			if n == seq {
				nacked = true
				break
			}
		}
		if !nacked {
			delete(e.inFlight, seq)
		}
	}
	// Retransmissions stay in flight until acked by a later STATUS.
	for _, p := range e.retx {
		e.inFlight[p.Seq] = p
	}
	e.b.emitStatus(st)
	if e.stalled {
		e.stalled = false
	}
	e.kick()
}

// receive handles a data PDU at the receiving side, advancing in-order
// delivery.
func (e *entity) receive(p *PDU) {
	if p.Seq >= e.recvSeq {
		e.heldPDUs[p.Seq] = true
		e.heldSize[p.Seq] = p.Size
	}
	for e.heldPDUs[e.recvSeq] {
		e.delivered += uint64(e.heldSize[e.recvSeq])
		delete(e.heldPDUs, e.recvSeq)
		delete(e.heldSize, e.recvSeq)
		e.recvSeq++
	}
	// Deliver every SDU whose end offset is now covered.
	now := e.b.k.Now()
	for len(e.pendingSDU) > 0 && e.pendingSDU[0].end <= e.delivered {
		s := e.pendingSDU[0]
		e.pendingSDU = e.pendingSDU[1:]
		if s.deliver != nil {
			// Deliver via a zero-delay event to keep callback reentrancy
			// out of the RLC state machine.
			deliver := s.deliver
			e.b.k.At(now, func() { deliver() })
		}
	}
}

func sortSeqs(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortPDUs(ps []*PDU) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Seq < ps[j-1].Seq; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
