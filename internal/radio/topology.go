package radio

import (
	"fmt"
	"math"
	"time"
)

// Site is one base-station position in a Topology.
type Site struct {
	ID   int
	X, Y float64 // meters
}

// Topology is a seeded multi-cell layout: base-station sites on a plane
// plus the path-loss model that maps UE position to per-cell link gain.
// Gains feed the bearer's bandwidth multiplier and drive measurement
// reports, handover decisions, and idle-mode reselection. All methods are
// pure functions of position, so concurrent shards can share one Topology.
type Topology struct {
	Sites []Site

	// SpacingM is the inter-site distance the grid was laid out with.
	SpacingM float64
	// RefDistM is the distance of full nominal gain: closer than this the
	// gain clamps to 1 (no "super-cell" boost at the mast).
	RefDistM float64
	// PathLossExp is the path-loss exponent (free space 2, urban 2.7-3.5).
	PathLossExp float64
	// MinGain floors the gain so a UE at the coverage edge still drains its
	// queue (the stack has no concept of total loss of service here —
	// outages model that).
	MinGain float64
	// X2Latency is the inter-cell coordination latency: the minimum time
	// for any state at one cell to influence another. It is both the
	// handover data-forwarding delay and the safe conservative-lookahead
	// window for sharded simulation.
	X2Latency time.Duration

	width, height float64 // roaming bounds
}

// Defaults for NewGridTopology, exported so scenario specs can surface them.
const (
	DefaultSpacingM    = 500.0
	DefaultRefDistM    = 60.0
	DefaultPathLossExp = 2.6
	DefaultMinGain     = 0.05
	DefaultX2Latency   = 10 * time.Millisecond
)

// NewGridTopology lays out cells on a near-square grid with the given
// inter-site distance (0 = DefaultSpacingM) and default propagation
// parameters. Fields can be adjusted before use.
func NewGridTopology(cells int, spacingM float64) *Topology {
	if cells < 1 {
		panic(fmt.Sprintf("radio: topology needs >= 1 cell, got %d", cells))
	}
	if spacingM <= 0 {
		spacingM = DefaultSpacingM
	}
	cols := int(math.Ceil(math.Sqrt(float64(cells))))
	rows := (cells + cols - 1) / cols
	t := &Topology{
		SpacingM:    spacingM,
		RefDistM:    DefaultRefDistM,
		PathLossExp: DefaultPathLossExp,
		MinGain:     DefaultMinGain,
		X2Latency:   DefaultX2Latency,
		width:       float64(cols) * spacingM,
		height:      float64(rows) * spacingM,
	}
	for i := 0; i < cells; i++ {
		col, row := i%cols, i/cols
		t.Sites = append(t.Sites, Site{
			ID: i,
			X:  (float64(col) + 0.5) * spacingM,
			Y:  (float64(row) + 0.5) * spacingM,
		})
	}
	return t
}

// Cells returns the number of sites.
func (t *Topology) Cells() int { return len(t.Sites) }

// Bounds returns the roaming area movers stay within.
func (t *Topology) Bounds() (w, h float64) { return t.width, t.height }

// Gain returns the link gain (bandwidth multiplier, <= 1) between site and
// a UE at (x, y) under the distance-power-law path-loss model.
func (t *Topology) Gain(site int, x, y float64) float64 {
	s := t.Sites[site]
	d := math.Hypot(x-s.X, y-s.Y)
	if d <= t.RefDistM {
		return 1
	}
	g := math.Pow(t.RefDistM/d, t.PathLossExp)
	if g < t.MinGain {
		return t.MinGain
	}
	return g
}

// Strongest returns the site with the highest gain at (x, y), breaking
// exact ties by lowest ID so the choice is deterministic.
func (t *Topology) Strongest(x, y float64) (site int, gain float64) {
	gain = math.Inf(-1)
	for i := range t.Sites {
		if g := t.Gain(i, x, y); g > gain {
			site, gain = i, g
		}
	}
	return site, gain
}

// HomePos returns a deterministic position near the given site for UE
// placement: u and v in [0, 1) spread UEs over the inner 60% of the cell so
// every UE's strongest cell starts as its home cell.
func (t *Topology) HomePos(site int, u, v float64) (x, y float64) {
	s := t.Sites[site]
	r := 0.3 * t.SpacingM
	return s.X + (2*u-1)*r, s.Y + (2*v-1)*r
}
