package radio

import (
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// Bearer is a full-duplex cellular data bearer for one device: an RRC
// machine shared by both directions plus an uplink and a downlink RLC
// entity. The network stack hands it serialized IP packets; the bearer
// segments them into PDUs, applies promotion delays, ARQ, and loss, and
// invokes the caller's delivery callback when each packet has been
// reassembled in order at the far side.
type Bearer struct {
	k    *simtime.Kernel
	prof *Profile
	rrc  *Machine

	ul, dl *entity

	// cell, when non-nil, is the shared cell whose per-direction schedulers
	// arbitrate this bearer's transmissions against other attached bearers.
	// gain is the bearer's link-quality multiplier (1 = nominal rate); it is
	// always 1 for standalone bearers.
	cell *Cell
	gain float64

	monitors []Monitor

	// payloadRelease, when set, is invoked once per SDU payload as soon as
	// segmentation has copied everything the radio layer keeps (PDU sizes and
	// head bytes) — the point after which the bytes are never read again.
	payloadRelease func([]byte)

	// outageUntil is the end of the current (or most recent) bearer outage;
	// the bearer is down while Now() < outageUntil.
	outageUntil simtime.Time
	outages     int

	// hoFrozen marks the handover interruption window: between BeginHandover
	// and CompleteHandover the data plane is suspended losslessly — queued
	// SDUs and un-ACKed PDUs are retained and forwarded to the target cell,
	// unlike an outage, which loses in-flight data.
	hoFrozen bool

	// tr, when attached, receives a radio-layer span covering each outage
	// (from first onset to actual recovery, merging extensions).
	tr      *obs.Trace
	outSpan obs.Span
}

// NewBearer builds a bearer over prof, driven by kernel k.
func NewBearer(k *simtime.Kernel, prof *Profile) *Bearer {
	b := &Bearer{k: k, prof: prof, rrc: NewMachine(k, prof), gain: 1}
	b.ul = newEntity(b, Uplink)
	b.dl = newEntity(b, Downlink)
	b.rrc.OnTransition(func(tr Transition) {
		for _, m := range b.monitors {
			m.RRCTransition(tr)
		}
	})
	return b
}

// Kernel returns the driving event kernel.
func (b *Bearer) Kernel() *simtime.Kernel { return b.k }

// Profile returns the radio profile in use.
func (b *Bearer) Profile() *Profile { return b.prof }

// RRC returns the bearer's RRC machine (read-mostly; used by the power model
// and tests).
func (b *Bearer) RRC() *Machine { return b.rrc }

// Cell returns the shared cell this bearer is attached to (nil when
// standalone).
func (b *Bearer) Cell() *Cell { return b.cell }

// Gain returns the bearer's link-quality multiplier (1 for standalone
// bearers).
func (b *Bearer) Gain() float64 { return b.gain }

// SetGain updates the bearer's link-quality multiplier as the device moves
// through the cell's coverage. Values <= 0 are clamped to a small positive
// floor so transmissions always terminate.
func (b *Bearer) SetGain(g float64) {
	if g <= 0 {
		g = 0.01
	}
	b.gain = g
}

// BeginHandover starts a handover: the bearer detaches from its serving
// cell and the data plane freezes losslessly (queued SDUs and un-ACKed PDUs
// are retained — the X2 data-forwarding model). RRC state is untouched: an
// intra-technology handover keeps the connection, unlike an outage.
func (b *Bearer) BeginHandover() {
	if b.hoFrozen {
		return
	}
	b.hoFrozen = true
	if b.cell != nil {
		b.cell.Detach(b)
	}
}

// CompleteHandover attaches the bearer to the target cell with the given
// link gain and resumes the data plane: forwarded data drains on the target
// and ARQ re-polls for anything the interruption window lost.
func (b *Bearer) CompleteHandover(target *Cell, gain float64) {
	if !b.hoFrozen {
		panic("radio: CompleteHandover without BeginHandover")
	}
	b.hoFrozen = false
	if target != nil {
		target.Attach(b, gain)
	} else {
		b.gain = 1
	}
	b.ul.resume()
	b.dl.resume()
}

// InHandover reports whether the bearer is inside a handover interruption
// window.
func (b *Bearer) InHandover() bool { return b.hoFrozen }

// Attach registers a radio-layer monitor (e.g. the QxDM simulator).
func (b *Bearer) Attach(m Monitor) { b.monitors = append(b.monitors, m) }

// SetPayloadRelease registers a hook fired when the bearer is done reading a
// packet's payload bytes (segmentation complete). Callers use it to recycle
// marshal buffers; the hook runs at most once per payload.
func (b *Bearer) SetPayloadRelease(fn func([]byte)) { b.payloadRelease = fn }

// SetTrace attaches a trace bus for bearer outage spans.
func (b *Bearer) SetTrace(tr *obs.Trace) { b.tr = tr }

// SendUplink transmits one IP packet from the device toward the network.
// deliver fires when the packet has been fully reassembled at the base
// station, in order.
func (b *Bearer) SendUplink(packet []byte, deliver func()) {
	b.ul.send(packet, deliver)
}

// SendDownlink transmits one IP packet from the network toward the device.
func (b *Bearer) SendDownlink(packet []byte, deliver func()) {
	b.dl.send(packet, deliver)
}

// QueuedUplink reports bytes enqueued but not yet segmented on the uplink
// (used by tests and the traffic source to apply backpressure).
func (b *Bearer) QueuedUplink() int { return int(b.ul.queuedOff - b.ul.segOff) }

// QueuedDownlink is the downlink analogue of QueuedUplink.
func (b *Bearer) QueuedDownlink() int { return int(b.dl.queuedOff - b.dl.segOff) }

// ScheduleOutage schedules a bearer outage (coverage gap / handover blackout)
// covering [start, start+dur). During an outage no PDU can complete
// transmission (those that do are lost over the air, exercising ARQ), STATUS
// feedback is lost, and the RRC machine falls back to its base state — so
// traffic after the outage pays a fresh promotion delay.
func (b *Bearer) ScheduleOutage(start simtime.Time, dur time.Duration) {
	if dur <= 0 {
		return
	}
	b.k.At(start, func() { b.beginOutage(dur) })
}

// InOutage reports whether the bearer is currently down.
func (b *Bearer) InOutage() bool { return b.k.Now() < b.outageUntil }

// OutageCount returns how many distinct outages have started so far.
func (b *Bearer) OutageCount() int { return b.outages }

func (b *Bearer) beginOutage(dur time.Duration) {
	end := b.k.Now() + simtime.Time(dur)
	if end <= b.outageUntil {
		return // fully covered by an outage already in progress
	}
	if !b.InOutage() {
		b.outages++
		if b.tr != nil {
			b.outSpan = b.tr.Start(obs.LayerRadio, "bearer:outage", b.tr.Scope())
		}
	}
	b.outageUntil = end
	b.rrc.ConnectionLost()
	b.k.At(end, b.endOutage)
}

func (b *Bearer) endOutage() {
	if b.InOutage() {
		return // a later, longer outage superseded this one
	}
	b.outSpan.End()
	b.ul.resume()
	b.dl.resume()
}

func (b *Bearer) emitPDU(p *PDU) {
	for _, m := range b.monitors {
		m.DataPDU(p)
	}
}

func (b *Bearer) emitStatus(st StatusPDU) {
	for _, m := range b.monitors {
		m.StatusPDU(st)
	}
}

func (b *Bearer) emitHandover(ev HandoverEvent) {
	for _, m := range b.monitors {
		if hm, ok := m.(HandoverMonitor); ok {
			hm.Handover(ev)
		}
	}
}
