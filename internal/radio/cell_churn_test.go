package radio

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// churnRun drives three PF bearers on cell 0 while bearer 1 hands over to
// cell 1 at 2s and back at 4s (100ms interruption each way). Traffic is one
// payload per bearer per period until 9s; the kernel then drains to 12s.
// Returns per-bearer PDU digests, sent and delivered SDU counts.
func churnRun(t *testing.T, payload, periodMs int) (digests []string, sent, delivered [3]int, mons [3]*recordingMonitor) {
	t.Helper()
	k := simtime.NewKernel(7)
	cell0 := NewCellID(k, SchedPropFair, 0)
	cell1 := NewCellID(k, SchedPropFair, 1)

	var bearers [3]*Bearer
	for i := range bearers {
		b := NewBearer(k, ProfileLTE())
		cell0.Attach(b, 1)
		mons[i] = &recordingMonitor{}
		b.Attach(mons[i])
		bearers[i] = b
	}

	pkt := make([]byte, payload)
	var stops [3]func()
	for i := range bearers {
		i := i
		b := bearers[i]
		stops[i] = k.Ticker(time.Duration(periodMs)*time.Millisecond, func() {
			sent[i]++
			b.SendDownlink(pkt, func() { delivered[i]++ })
		})
	}

	const hoStall = 100 * time.Millisecond
	k.At(simtime.Time(2*time.Second), func() { bearers[1].BeginHandover() })
	k.At(simtime.Time(2*time.Second+simtime.Time(hoStall)), func() {
		bearers[1].CompleteHandover(cell1, 0.9)
	})
	k.At(simtime.Time(4*time.Second), func() { bearers[1].BeginHandover() })
	k.At(simtime.Time(4*time.Second+simtime.Time(hoStall)), func() {
		bearers[1].CompleteHandover(cell0, 1)
	})
	k.At(simtime.Time(9*time.Second), func() {
		for _, stop := range stops {
			stop()
		}
	})
	k.RunUntil(simtime.Time(12 * time.Second))

	for i := range mons {
		var b strings.Builder
		for _, p := range mons[i].pdus {
			b.WriteString(pduLogKey(p))
			b.WriteByte('\n')
		}
		digests = append(digests, b.String())
	}
	return digests, sent, delivered, mons
}

// TestPFChurnLosslessAndStall pins the handover data-plane contract: detach
// mid-run loses no SDUs (X2 forwarding), and the interruption window really
// silences the bearer.
func TestPFChurnLosslessAndStall(t *testing.T) {
	// Light load: everything queued must drain by the 12s horizon.
	_, sent, delivered, mons := churnRun(t, 1200, 50)
	for i := range sent {
		if sent[i] == 0 || delivered[i] != sent[i] {
			t.Fatalf("bearer %d: sent %d delivered %d (handover lost SDUs)", i, sent[i], delivered[i])
		}
	}
	// No bearer-1 PDU finishes inside either interruption window. A PDU
	// already on the air at BeginHandover may complete a few ms in; after
	// that the channel must be silent until CompleteHandover.
	windows := [][2]simtime.Time{
		{simtime.Time(2*time.Second + 20*time.Millisecond), simtime.Time(2*time.Second + 100*time.Millisecond)},
		{simtime.Time(4*time.Second + 20*time.Millisecond), simtime.Time(4*time.Second + 100*time.Millisecond)},
	}
	for _, p := range mons[1].pdus {
		for _, w := range windows {
			if p.SentAt >= w[0] && p.SentAt < w[1] {
				t.Fatalf("bearer 1 PDU seq %d sent at %v inside interruption window [%v, %v)",
					p.Seq, p.SentAt, w[0], w[1])
			}
		}
	}
	// The moved bearer kept transmitting on the target cell between the two
	// handovers.
	between := 0
	for _, p := range mons[1].pdus {
		if p.SentAt > simtime.Time(2200*time.Millisecond) && p.SentAt < simtime.Time(4*time.Second) {
			between++
		}
	}
	if between == 0 {
		t.Fatal("bearer 1 never transmitted on the target cell between handovers")
	}
}

// TestPFChurnDeterministic reruns the churn scenario and requires identical
// PDU logs — attach/detach mid-run must not perturb the deterministic
// scheduling contract.
func TestPFChurnDeterministic(t *testing.T) {
	d1, s1, del1, _ := churnRun(t, 1200, 50)
	d2, s2, del2, _ := churnRun(t, 1200, 50)
	if s1 != s2 || del1 != del2 {
		t.Fatalf("reruns diverged: sent %v/%v delivered %v/%v", s1, s2, del1, del2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("bearer %d PDU log differs between reruns", i)
		}
	}
}

// TestPFChurnFairness saturates the downlink and checks that the two bearers
// that never moved keep near-equal proportional-fair shares through bearer
// 1's departure and return, and that the returning bearer is served promptly
// (its EWMA restarts as a newcomer rather than carrying stale credit).
func TestPFChurnFairness(t *testing.T) {
	_, _, delivered, mons := churnRun(t, 16*1024, 5)
	if delivered[0] == 0 || delivered[2] == 0 {
		t.Fatalf("stationary bearers starved: %v", delivered)
	}
	ratio := float64(delivered[0]) / float64(delivered[2])
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("equal-gain PF shares diverged across churn: %d vs %d (ratio %.3f)",
			delivered[0], delivered[2], ratio)
	}
	// Returning bearer gets a grant soon after re-attach even under
	// saturation.
	reattach := simtime.Time(4*time.Second + 100*time.Millisecond)
	served := false
	for _, p := range mons[1].pdus {
		if p.SentAt >= reattach && p.SentAt < reattach+simtime.Time(200*time.Millisecond) {
			served = true
			break
		}
	}
	if !served {
		t.Fatal("re-attached bearer not served within 200ms under saturation")
	}
}
