package radio

import (
	"errors"
	"time"
)

// Profile bundles everything technology-specific: the RRC state set with
// powers and rates, promotion delays, the demotion chain, and RLC
// segmentation/ARQ parameters. Profiles are treated as immutable once a
// Machine or Bearer is built on them; use Clone before mutating.
type Profile struct {
	Name string
	Tech Tech

	// RRC.
	Base           State // lowest-power state, the machine's initial state
	Active         State // the high-power data-plane state
	States         map[State]StateParams
	PromotionDelay map[State]time.Duration // from-state -> delay to Active
	Demotions      []Demotion

	// RLC segmentation.
	//
	// ULPDUPayload is the fixed uplink PDU payload size (3G: 40 bytes per
	// the RLC spec cited in §2). DLPDUPayload is the nominal downlink PDU
	// payload. For LTE both directions use the flexible (larger) size.
	ULPDUPayload int
	DLPDUPayload int

	// PDUHeaderTime is the per-PDU processing overhead added on top of the
	// serialization time (payload/bandwidth). This is the term that makes
	// 3G's 2.55x PDU count translate into higher RLC transmission delay.
	PDUHeaderTime time.Duration

	// ARQ.
	OTARTT       time.Duration // mean first-hop over-the-air RTT (poll->STATUS)
	OTAJitter    time.Duration // uniform +/- jitter applied per STATUS
	PollInterval int           // set the poll bit every N-th PDU (and on burst end)
	PDULossProb  float64       // per-PDU over-the-air loss probability

	// QxDM capture-loss rates (the monitor occasionally misses PDUs, which
	// is why the paper's downlink mapping ratio is 88.83%, not 100%).
	CaptureLossUL float64
	CaptureLossDL float64
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.States == nil {
		return errors.New("no states")
	}
	if _, ok := p.States[p.Base]; !ok {
		return errors.New("base state has no params")
	}
	if _, ok := p.States[p.Active]; !ok {
		return errors.New("active state has no params")
	}
	if p.States[p.Active].ULBandwidthBps <= 0 || p.States[p.Active].DLBandwidthBps <= 0 {
		return errors.New("active state must have positive bandwidth")
	}
	if p.ULPDUPayload <= 0 || p.DLPDUPayload <= 0 {
		return errors.New("PDU payload sizes must be positive")
	}
	if p.PollInterval <= 0 {
		return errors.New("poll interval must be positive")
	}
	if p.PDULossProb < 0 || p.PDULossProb >= 1 {
		return errors.New("PDU loss probability out of range")
	}
	for from := range p.PromotionDelay {
		if _, ok := p.States[from]; !ok {
			return errors.New("promotion from unknown state")
		}
	}
	for _, d := range p.Demotions {
		if _, ok := p.States[d.From]; !ok {
			return errors.New("demotion from unknown state")
		}
		if _, ok := p.States[d.To]; !ok {
			return errors.New("demotion to unknown state")
		}
		if d.Timer <= 0 {
			return errors.New("demotion timer must be positive")
		}
	}
	return nil
}

// Clone returns a deep copy, so experiments can tweak parameters (e.g. the
// simplified 3G machine of §7.7) without aliasing.
func (p *Profile) Clone() *Profile {
	q := *p
	q.States = make(map[State]StateParams, len(p.States))
	for k, v := range p.States {
		q.States[k] = v
	}
	q.PromotionDelay = make(map[State]time.Duration, len(p.PromotionDelay))
	for k, v := range p.PromotionDelay {
		q.PromotionDelay[k] = v
	}
	q.Demotions = append([]Demotion(nil), p.Demotions...)
	return &q
}

// Profile3G models a UMTS/HSPA network with the three-state DCH/FACH/PCH
// machine. State powers and timer values follow the measurements of Huang
// et al. [22] and Qian et al. [35] as cited by the paper.
func Profile3G() *Profile {
	return &Profile{
		Name:   "C1-3G",
		Tech:   Tech3G,
		Base:   StatePCH,
		Active: StateDCH,
		States: map[State]StateParams{
			StateDCH:  {PowerMW: 800, ULBandwidthBps: 1.2e6, DLBandwidthBps: 3.0e6},
			StateFACH: {PowerMW: 460, ULBandwidthBps: 100e3, DLBandwidthBps: 100e3},
			StatePCH:  {PowerMW: 20},
		},
		PromotionDelay: map[State]time.Duration{
			StatePCH:  2 * time.Second,
			StateFACH: 1500 * time.Millisecond,
		},
		Demotions: []Demotion{
			{From: StateDCH, To: StateFACH, Timer: 5 * time.Second},
			{From: StateFACH, To: StatePCH, Timer: 12 * time.Second},
		},
		ULPDUPayload:  40,  // fixed by the 3G RLC spec for uplink
		DLPDUPayload:  480, // flexible, "usually greater than 40 bytes"
		PDUHeaderTime: 120 * time.Microsecond,
		OTARTT:        70 * time.Millisecond,
		OTAJitter:     20 * time.Millisecond,
		PollInterval:  32,
		PDULossProb:   0.002,
		CaptureLossUL: 0.00014, // tuned to the paper's 99.52% uplink mapping (36 PDUs/packet)
		CaptureLossDL: 0.039,   // tuned to the paper's 88.83% downlink mapping (~3 PDUs/packet)
	}
}

// ProfileLTE models an LTE network with CONNECTED DRX sub-states. The tail
// chain (CRX -> short DRX -> long DRX -> IDLE) totals ~11.6 s as measured by
// Huang et al.
func ProfileLTE() *Profile {
	return &Profile{
		Name:   "C1-LTE",
		Tech:   TechLTE,
		Base:   StateLTEIdle,
		Active: StateLTECRX,
		States: map[State]StateParams{
			StateLTECRX:      {PowerMW: 1210, ULBandwidthBps: 8e6, DLBandwidthBps: 15e6},
			StateLTEShortDRX: {PowerMW: 700},
			StateLTELongDRX:  {PowerMW: 600},
			StateLTEIdle:     {PowerMW: 11},
		},
		PromotionDelay: map[State]time.Duration{
			StateLTEIdle:     260 * time.Millisecond,
			StateLTEShortDRX: 20 * time.Millisecond,
			StateLTELongDRX:  40 * time.Millisecond,
		},
		Demotions: []Demotion{
			{From: StateLTECRX, To: StateLTEShortDRX, Timer: 1 * time.Second},
			{From: StateLTEShortDRX, To: StateLTELongDRX, Timer: 1 * time.Second},
			{From: StateLTELongDRX, To: StateLTEIdle, Timer: 9600 * time.Millisecond},
		},
		// Flexible sizes; the uplink grant per TTI yields ~96B payloads,
		// reproducing the paper's ~2.55x 3G-to-LTE PDU count ratio for the
		// same transfer (Fig. 8).
		ULPDUPayload:  96,
		DLPDUPayload:  1400,
		PDUHeaderTime: 60 * time.Microsecond,
		OTARTT:        25 * time.Millisecond,
		OTAJitter:     8 * time.Millisecond,
		PollInterval:  64,
		PDULossProb:   0.001,
		CaptureLossUL: 0.00014,
		CaptureLossDL: 0.039,
	}
}

// ProfileSimplified3G is the §7.7 design-study machine: FACH is removed and
// PCH promotes directly to DCH with a shorter setup, eliminating the
// FACH->DCH second promotion that inflates web page loads.
func ProfileSimplified3G() *Profile {
	p := Profile3G()
	p.Name = "C1-3G-simplified"
	delete(p.States, StateFACH)
	// Without the intermediate FACH hop the promotion signaling is a
	// single exchange: ~1.2 s instead of 2 s (PCH) / 1.5 s (FACH).
	p.PromotionDelay = map[State]time.Duration{StatePCH: 1200 * time.Millisecond}
	p.Demotions = []Demotion{{From: StateDCH, To: StatePCH, Timer: 5 * time.Second}}
	return p
}

// ProfileWiFi is a degenerate profile used for the WiFi comparison runs: a
// single always-on state with no promotion delays and fast, large PDUs (the
// analyzer simply sees an ideal radio).
func ProfileWiFi() *Profile {
	return &Profile{
		Name:   "WiFi",
		Tech:   TechWiFi,
		Base:   StateWiFiActive,
		Active: StateWiFiActive,
		States: map[State]StateParams{
			StateWiFiActive: {PowerMW: 400, ULBandwidthBps: 20e6, DLBandwidthBps: 40e6},
		},
		PromotionDelay: map[State]time.Duration{},
		Demotions:      nil,
		ULPDUPayload:   1400,
		DLPDUPayload:   1400,
		PDUHeaderTime:  10 * time.Microsecond,
		OTARTT:         3 * time.Millisecond,
		OTAJitter:      1 * time.Millisecond,
		PollInterval:   128,
		PDULossProb:    0.0005,
		CaptureLossUL:  0,
		CaptureLossDL:  0,
	}
}
