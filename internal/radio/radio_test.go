package radio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

// recordingMonitor captures everything for assertions.
type recordingMonitor struct {
	transitions []Transition
	pdus        []*PDU
	statuses    []StatusPDU
}

func (r *recordingMonitor) RRCTransition(t Transition) { r.transitions = append(r.transitions, t) }
func (r *recordingMonitor) DataPDU(p *PDU)             { r.pdus = append(r.pdus, p) }
func (r *recordingMonitor) StatusPDU(s StatusPDU)      { r.statuses = append(r.statuses, s) }

func TestProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{Profile3G(), ProfileLTE(), ProfileSimplified3G(), ProfileWiFi()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileCloneIsDeep(t *testing.T) {
	p := Profile3G()
	q := p.Clone()
	q.States[StateDCH] = StateParams{PowerMW: 1}
	q.PromotionDelay[StatePCH] = time.Hour
	q.Demotions[0].Timer = time.Hour
	if p.States[StateDCH].PowerMW == 1 || p.PromotionDelay[StatePCH] == time.Hour || p.Demotions[0].Timer == time.Hour {
		t.Fatal("Clone aliases the original")
	}
}

func TestInvalidProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine accepted an invalid profile")
		}
	}()
	p := Profile3G()
	p.PollInterval = 0
	NewMachine(simtime.NewKernel(1), p)
}

func TestRRCPromotionAndDemotionChain(t *testing.T) {
	k := simtime.NewKernel(1)
	m := NewMachine(k, Profile3G())
	if m.State() != StatePCH {
		t.Fatalf("initial state = %v, want PCH", m.State())
	}
	var trs []Transition
	m.OnTransition(func(tr Transition) { trs = append(trs, tr) })

	ready := m.OnActivity()
	if ready != 2*time.Second {
		t.Fatalf("PCH promotion ready at %v, want 2s", ready)
	}
	if m.State() != StateDCH {
		t.Fatalf("state after activity = %v, want DCH", m.State())
	}
	// Demotion chain: DCH -5s-> FACH -12s-> PCH.
	k.RunUntil(4 * time.Second)
	if m.State() != StateDCH {
		t.Fatalf("state at 4s = %v, want DCH", m.State())
	}
	k.RunUntil(6 * time.Second)
	if m.State() != StateFACH {
		t.Fatalf("state at 6s = %v, want FACH", m.State())
	}
	k.RunUntil(18 * time.Second)
	if m.State() != StatePCH {
		t.Fatalf("state at 18s = %v, want PCH", m.State())
	}
	if len(trs) != 3 {
		t.Fatalf("got %d transitions, want 3 (promote, 2 demotes)", len(trs))
	}
	if !trs[0].Promotion || trs[1].Promotion || trs[2].Promotion {
		t.Fatalf("promotion flags wrong: %+v", trs)
	}
}

func TestRRCActivityResetsDemotionTimer(t *testing.T) {
	k := simtime.NewKernel(1)
	m := NewMachine(k, Profile3G())
	m.OnActivity()
	// Keep the channel busy every 3s: DCH->FACH timer (5s) must never fire.
	for i := 1; i <= 5; i++ {
		k.RunUntil(simtime.Time(i) * 3 * time.Second)
		m.OnActivity()
	}
	if m.State() != StateDCH {
		t.Fatalf("state = %v, want DCH while active", m.State())
	}
	k.RunUntil(100 * time.Second)
	if m.State() != StatePCH {
		t.Fatalf("state = %v, want PCH after long idle", m.State())
	}
}

func TestFACHPromotionFasterThanPCH(t *testing.T) {
	k := simtime.NewKernel(1)
	m := NewMachine(k, Profile3G())
	m.OnActivity()
	k.RunUntil(7 * time.Second) // DCH (5s) -> FACH
	if m.State() != StateFACH {
		t.Fatalf("state = %v, want FACH", m.State())
	}
	ready := m.OnActivity()
	if got := ready - k.Now(); got != 1500*time.Millisecond {
		t.Fatalf("FACH promotion delay = %v, want 1.5s", got)
	}
}

func TestLTEDRXTailTotal(t *testing.T) {
	k := simtime.NewKernel(1)
	m := NewMachine(k, ProfileLTE())
	m.OnActivity()
	// Tail: 1s CRX + 1s short DRX + 9.6s long DRX = 11.6s to IDLE.
	k.RunUntil(11500 * time.Millisecond)
	if m.State() == StateLTEIdle {
		t.Fatal("reached IDLE before the ~11.6s tail finished")
	}
	k.RunUntil(11700 * time.Millisecond)
	if m.State() != StateLTEIdle {
		t.Fatalf("state = %v, want IDLE after tail", m.State())
	}
}

func TestOnActivityDuringPromotionKeepsReadyTime(t *testing.T) {
	k := simtime.NewKernel(1)
	m := NewMachine(k, Profile3G())
	first := m.OnActivity()
	k.RunUntil(500 * time.Millisecond)
	second := m.OnActivity()
	if second != first {
		t.Fatalf("second activity during promotion got ready=%v, want %v", second, first)
	}
}

// mustDeliver sends a packet over the bearer and runs the kernel until the
// delivery callback fires, returning the delivery time.
func mustDeliver(t *testing.T, k *simtime.Kernel, send func(func())) simtime.Time {
	t.Helper()
	var at simtime.Time = -1
	send(func() { at = k.Now() })
	k.Run()
	if at < 0 {
		t.Fatal("packet never delivered")
	}
	return at
}

func TestBearerDeliversUplinkPacket(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, Profile3G())
	pkt := bytes.Repeat([]byte{0xAB}, 1400)
	at := mustDeliver(t, k, func(cb func()) { b.SendUplink(pkt, cb) })
	// Must include the 2s PCH->DCH promotion.
	if at < 2*time.Second {
		t.Fatalf("delivered at %v, before promotion could finish", at)
	}
	if at > 3*time.Second {
		t.Fatalf("delivered at %v, too slow for one packet", at)
	}
}

func TestBearerSegmentation3GUplink(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, Profile3G())
	mon := &recordingMonitor{}
	b.Attach(mon)
	pkt := make([]byte, 1400)
	for i := range pkt {
		pkt[i] = byte(i)
	}
	b.SendUplink(pkt, nil)
	k.Run()
	var data []*PDU
	for _, p := range mon.pdus {
		if p.Dir == Uplink && !p.Retx {
			data = append(data, p)
		}
	}
	if len(data) != 35 { // 1400/40
		t.Fatalf("got %d PDUs for 1400B at 40B payload, want 35", len(data))
	}
	for i, p := range data {
		if i < len(data)-1 && p.Size != 40 {
			t.Fatalf("PDU %d size = %d, want 40", i, p.Size)
		}
	}
	// First PDU head bytes are the packet's first two bytes.
	if data[0].Head != [2]byte{0, 1} {
		t.Fatalf("first PDU head = %v", data[0].Head)
	}
	// Exactly one LI, at the last PDU's end.
	last := data[len(data)-1]
	if len(last.LI) != 1 || last.LI[0] != last.Size {
		t.Fatalf("last PDU LI = %v (size %d)", last.LI, last.Size)
	}
}

func TestPDUSpanningTwoSDUs(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, Profile3G())
	mon := &recordingMonitor{}
	b.Attach(mon)
	// 50 bytes then 50 bytes: PDU#2 carries tail of pkt1 (10B) + head of
	// pkt2 (30B); its LI must mark offset 10. This is exactly Fig. 5.
	b.SendUplink(bytes.Repeat([]byte{0x11}, 50), nil)
	b.SendUplink(bytes.Repeat([]byte{0x22}, 50), nil)
	k.Run()
	var data []*PDU
	for _, p := range mon.pdus {
		if !p.Retx {
			data = append(data, p)
		}
	}
	if len(data) != 3 {
		t.Fatalf("got %d PDUs, want 3 (40+40+20)", len(data))
	}
	if len(data[1].LI) != 1 || data[1].LI[0] != 10 {
		t.Fatalf("spanning PDU LI = %v, want [10]", data[1].LI)
	}
	if data[1].Head != [2]byte{0x11, 0x11} {
		t.Fatalf("spanning PDU head = %v, want SDU1 tail bytes", data[1].Head)
	}
	if data[2].Head != [2]byte{0x22, 0x22} {
		t.Fatalf("third PDU head = %v", data[2].Head)
	}
	if len(data[2].LI) != 1 || data[2].LI[0] != 20 {
		t.Fatalf("third PDU LI = %v, want [20]", data[2].LI)
	}
}

func TestInOrderDeliveryAcrossPackets(t *testing.T) {
	k := simtime.NewKernel(7)
	p := Profile3G()
	p.PDULossProb = 0.05 // force retransmissions
	b := NewBearer(k, p)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		b.SendUplink(bytes.Repeat([]byte{byte(i)}, 300), func() { order = append(order, i) })
	}
	k.Run()
	if len(order) != 20 {
		t.Fatalf("delivered %d of 20 packets", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestLossTriggersRetransmissionAndStatus(t *testing.T) {
	k := simtime.NewKernel(3)
	p := Profile3G()
	p.PDULossProb = 0.2
	b := NewBearer(k, p)
	mon := &recordingMonitor{}
	b.Attach(mon)
	delivered := false
	b.SendUplink(make([]byte, 4000), func() { delivered = true })
	k.Run()
	if !delivered {
		t.Fatal("packet not delivered despite ARQ")
	}
	retx := 0
	for _, pdu := range mon.pdus {
		if pdu.Retx {
			retx++
		}
	}
	if retx == 0 {
		t.Fatal("no retransmissions at 20% loss over 100 PDUs")
	}
	if len(mon.statuses) == 0 {
		t.Fatal("no STATUS PDUs observed")
	}
	nacked := 0
	for _, st := range mon.statuses {
		nacked += len(st.Nack)
	}
	if nacked == 0 {
		t.Fatal("no NACKs in STATUS PDUs")
	}
}

func TestPollBitCadence(t *testing.T) {
	k := simtime.NewKernel(1)
	p := Profile3G()
	p.PDULossProb = 0
	b := NewBearer(k, p)
	mon := &recordingMonitor{}
	b.Attach(mon)
	b.SendUplink(make([]byte, 40*100), nil) // exactly 100 PDUs
	k.Run()
	polls := 0
	for _, pdu := range mon.pdus {
		if pdu.Poll {
			polls++
		}
	}
	// Every 32nd PDU plus the final one: 32,64,96,100 -> 4 polls.
	if polls != 4 {
		t.Fatalf("polls = %d, want 4", polls)
	}
	if !mon.pdus[len(mon.pdus)-1].Poll {
		t.Fatal("last PDU of burst not polled")
	}
}

func TestLTEUsesFewerPDUsThan3G(t *testing.T) {
	count := func(prof *Profile) int {
		k := simtime.NewKernel(1)
		prof.PDULossProb = 0
		b := NewBearer(k, prof)
		mon := &recordingMonitor{}
		b.Attach(mon)
		for i := 0; i < 100; i++ {
			b.SendUplink(make([]byte, 1400), nil)
		}
		k.Run()
		return len(mon.pdus)
	}
	n3g, nlte := count(Profile3G()), count(ProfileLTE())
	ratio := float64(n3g) / float64(nlte)
	// The paper observes ~2.55x more PDUs on 3G for the same transfer.
	if ratio < 2 {
		t.Fatalf("3G/LTE PDU ratio = %.2f (%d vs %d), want >= 2", ratio, n3g, nlte)
	}
}

func TestDownlinkUsesFlexiblePayload(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, Profile3G())
	mon := &recordingMonitor{}
	b.Attach(mon)
	b.SendDownlink(make([]byte, 1400), nil)
	k.Run()
	if len(mon.pdus) == 0 {
		t.Fatal("no downlink PDUs")
	}
	if mon.pdus[0].Size != 480 {
		t.Fatalf("downlink PDU size = %d, want 480", mon.pdus[0].Size)
	}
	for _, p := range mon.pdus {
		if p.Dir != Downlink {
			t.Fatalf("direction = %v, want DL", p.Dir)
		}
	}
}

func TestWiFiNoPromotionDelay(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, ProfileWiFi())
	at := mustDeliver(t, k, func(cb func()) { b.SendUplink(make([]byte, 1400), cb) })
	if at > 50*time.Millisecond {
		t.Fatalf("WiFi delivery took %v, want < 50ms", at)
	}
}

func TestSimplified3GPromotesFaster(t *testing.T) {
	norm := func(prof *Profile) simtime.Time {
		k := simtime.NewKernel(1)
		b := NewBearer(k, prof)
		var at simtime.Time
		b.SendUplink(make([]byte, 400), func() { at = k.Now() })
		k.Run()
		return at
	}
	if d, s := norm(Profile3G()), norm(ProfileSimplified3G()); s >= d {
		t.Fatalf("simplified 3G (%v) not faster than default (%v)", s, d)
	}
}

// Property: for any packet sizes, total PDU payload equals total packet
// bytes, LIs appear exactly once per SDU, and all packets are delivered.
func TestQuickSegmentationConservesBytes(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		k := simtime.NewKernel(seed)
		p := Profile3G()
		p.PDULossProb = 0
		b := NewBearer(k, p)
		mon := &recordingMonitor{}
		b.Attach(mon)
		total, delivered := 0, 0
		for _, s := range sizes {
			n := int(s%2000) + 1
			total += n
			b.SendUplink(make([]byte, n), func() { delivered++ })
		}
		k.Run()
		sum, lis := 0, 0
		for _, pdu := range mon.pdus {
			sum += pdu.Size
			lis += len(pdu.LI)
		}
		return sum == total && lis == len(sizes) && delivered == len(sizes)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery callbacks fire in send order even under loss.
func TestQuickInOrderUnderLoss(t *testing.T) {
	f := func(seed int64, n uint8, lossPct uint8) bool {
		count := int(n%30) + 1
		k := simtime.NewKernel(seed)
		p := ProfileLTE()
		p.PDULossProb = float64(lossPct%30) / 100
		b := NewBearer(k, p)
		var order []int
		for i := 0; i < count; i++ {
			i := i
			b.SendDownlink(make([]byte, 2000), func() { order = append(order, i) })
		}
		k.Run()
		if len(order) != count {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionLogDuringTransfer(t *testing.T) {
	k := simtime.NewKernel(1)
	b := NewBearer(k, ProfileLTE())
	mon := &recordingMonitor{}
	b.Attach(mon)
	b.SendUplink(make([]byte, 1400), nil)
	k.Run()
	if len(mon.transitions) == 0 {
		t.Fatal("no RRC transitions recorded")
	}
	if mon.transitions[0].From != StateLTEIdle || mon.transitions[0].To != StateLTECRX {
		t.Fatalf("first transition %v -> %v, want IDLE -> CRX",
			mon.transitions[0].From, mon.transitions[0].To)
	}
	// After the full tail the machine must be back at IDLE.
	last := mon.transitions[len(mon.transitions)-1]
	if last.To != StateLTEIdle {
		t.Fatalf("final state %v, want IDLE", last.To)
	}
}
