package radio

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestGridTopologyLayoutAndGain(t *testing.T) {
	topo := NewGridTopology(4, 400)
	if topo.Cells() != 4 {
		t.Fatalf("cells = %d, want 4", topo.Cells())
	}
	w, h := topo.Bounds()
	if w != 800 || h != 800 {
		t.Fatalf("bounds = %vx%v, want 800x800 (2x2 grid, 400m spacing)", w, h)
	}
	for i, s := range topo.Sites {
		if g := topo.Gain(i, s.X, s.Y); g != 1 {
			t.Fatalf("gain at site %d mast = %v, want 1", i, g)
		}
		if best, _ := topo.Strongest(s.X, s.Y); best != i {
			t.Fatalf("strongest at site %d position = %d", i, best)
		}
	}
	// Gain decreases with distance and floors at MinGain.
	s := topo.Sites[0]
	g1 := topo.Gain(0, s.X+100, s.Y)
	g2 := topo.Gain(0, s.X+300, s.Y)
	if !(g1 < 1 && g2 < g1) {
		t.Fatalf("gain not monotone: 100m=%v 300m=%v", g1, g2)
	}
	if g := topo.Gain(0, s.X+1e6, s.Y); g != topo.MinGain {
		t.Fatalf("far gain = %v, want MinGain %v", g, topo.MinGain)
	}
	// HomePos stays inside the home cell's dominance region.
	for i := 0; i < topo.Cells(); i++ {
		x, y := topo.HomePos(i, 0.93, 0.08)
		if best, _ := topo.Strongest(x, y); best != i {
			t.Fatalf("HomePos(%d) strongest = %d", i, best)
		}
	}
}

func TestMoverDeterministicAndBounded(t *testing.T) {
	topo := NewGridTopology(4, 400)
	w, h := topo.Bounds()
	sample := func() []float64 {
		m := NewMover(42, 3, topo, 15, 100, 100)
		var out []float64
		for i := 0; i <= 200; i++ {
			x, y := m.PosAt(simtime.Time(i) * simtime.Time(time.Second))
			out = append(out, x, y)
		}
		return out
	}
	a, b := sample(), sample()
	moved := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory not deterministic at sample %d: %v != %v", i, a[i], b[i])
		}
		if a[i] < -1e-9 || a[i] > w+1e-9 {
			t.Fatalf("position %v outside bounds %vx%v", a[i], w, h)
		}
		if i >= 2 && a[i] != a[i%2] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("mover with speed 15 m/s never moved")
	}
	// Distinct UE indices walk distinct trajectories.
	m2 := NewMover(42, 4, topo, 15, 100, 100)
	x2, y2 := m2.PosAt(simtime.Time(100 * time.Second))
	if x2 == a[200] && y2 == a[201] {
		t.Fatal("two UE indices produced the same trajectory")
	}
	// Zero speed pins the mover.
	still := NewMover(42, 3, topo, 0, 77, 88)
	if x, y := still.PosAt(simtime.Time(time.Hour)); x != 77 || y != 88 {
		t.Fatalf("static mover moved to (%v, %v)", x, y)
	}
}

// hoMonitor records handover events (implements Monitor + HandoverMonitor).
type hoMonitor struct {
	recordingMonitor
	handovers []HandoverEvent
}

func (m *hoMonitor) Handover(ev HandoverEvent) { m.handovers = append(m.handovers, ev) }

// roam builds one kernel hosting both cells of a 2-cell strip plus a
// roaming bearer, drives optional traffic, and returns the roamer and
// monitor after running to the horizon.
func roam(t *testing.T, traffic bool) (*Roamer, *hoMonitor, int) {
	t.Helper()
	k := simtime.NewKernel(9)
	topo := NewGridTopology(2, 300)
	cells := []*Cell{NewCellID(k, SchedPropFair, 0), NewCellID(k, SchedPropFair, 1)}
	b := NewBearer(k, ProfileLTE())
	mon := &hoMonitor{}
	b.Attach(mon)
	x, y := topo.HomePos(0, 0.5, 0.5)
	cells[0].Attach(b, topo.Gain(0, x, y))
	mover := NewMover(9, 0, topo, 25, x, y)
	r := NewRoamer(b, topo, cells, mover, 0, RoamConfig{TTT: 200 * time.Millisecond})
	r.Start()

	delivered := 0
	if traffic {
		payload := make([]byte, 1200)
		stop := k.Ticker(40*time.Millisecond, func() {
			b.SendDownlink(payload, func() { delivered++ })
		})
		defer stop()
	}
	k.RunUntil(simtime.Time(3 * time.Minute))
	r.Close(k.Now())
	return r, mon, delivered
}

func TestRoamerConnectedHandover(t *testing.T) {
	r, mon, delivered := roam(t, true)
	if r.Handovers() == 0 {
		t.Fatal("25 m/s UE completed no handover in 3 minutes on a 2-cell strip")
	}
	if len(mon.handovers) != r.Handovers()+r.Reselections() {
		t.Fatalf("monitor saw %d events, roamer counted %d+%d",
			len(mon.handovers), r.Handovers(), r.Reselections())
	}
	// Connected-mode events carry the interruption; history matches.
	conn := 0
	for _, ev := range mon.handovers {
		if !ev.Reselection {
			conn++
			if ev.Interruption <= 0 {
				t.Fatalf("connected handover with no interruption: %+v", ev)
			}
		}
	}
	if conn != r.Handovers() {
		t.Fatalf("connected events %d != handover count %d", conn, r.Handovers())
	}
	if len(r.History()) != 1+len(mon.handovers) {
		t.Fatalf("history has %d entries, want %d", len(r.History()), 1+len(mon.handovers))
	}
	if got := r.ServingAt(simtime.Time(3 * time.Minute)); got != r.Serving() {
		t.Fatalf("ServingAt(end) = %d, current = %d", got, r.Serving())
	}
	if delivered == 0 {
		t.Fatal("no SDUs delivered across handovers")
	}
}

func TestRoamerIdleReselection(t *testing.T) {
	r, mon, _ := roam(t, false)
	if r.Handovers() != 0 {
		t.Fatalf("idle UE performed %d connected handovers", r.Handovers())
	}
	if r.Reselections() == 0 {
		t.Fatal("idle 25 m/s UE never reselected in 3 minutes")
	}
	for _, ev := range mon.handovers {
		if !ev.Reselection || ev.Interruption != 0 {
			t.Fatalf("idle UE produced a non-reselection event: %+v", ev)
		}
	}
}

// TestRoamerDeterministic pins the mobility determinism contract: two runs
// at the same seed produce identical handover sequences and PDU logs.
func TestRoamerDeterministic(t *testing.T) {
	run := func() ([]HandoverEvent, int, int) {
		_, mon, delivered := roam(t, true)
		return mon.handovers, delivered, len(mon.pdus)
	}
	h1, d1, p1 := run()
	h2, d2, p2 := run()
	if d1 != d2 || p1 != p2 || len(h1) != len(h2) {
		t.Fatalf("reruns diverged: deliveries %d/%d, pdus %d/%d, handovers %d/%d",
			d1, d2, p1, p2, len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("handover %d differs: %+v != %+v", i, h1[i], h2[i])
		}
	}
}
