package radio

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// TraceMonitor bridges radio-layer events onto the obs trace bus: RRC states
// become radio-layer spans (one span per contiguous state residency), RLC
// retransmissions become instants, and PDU/STATUS volumes feed counters. It
// implements Monitor alongside the QxDM simulator, so traces carry the
// ground truth the diagnostic log is derived from.
type TraceMonitor struct {
	tr         *obs.Trace
	stateSpan  obs.Span
	pdus       *obs.Counter
	retx       *obs.Counter
	status     *obs.Counter
	promotions *obs.Counter
	demotions  *obs.Counter
}

// AttachTrace creates a TraceMonitor emitting to tr and reg (either may be
// nil) and attaches it to the bearer. The span for the current RRC state
// opens immediately.
func AttachTrace(b *Bearer, tr *obs.Trace, reg *obs.Registry) *TraceMonitor {
	m := &TraceMonitor{
		tr:         tr,
		pdus:       reg.Counter("rlc_pdus"),
		retx:       reg.Counter("rlc_retx"),
		status:     reg.Counter("rlc_status"),
		promotions: reg.Counter("rrc_promotions"),
		demotions:  reg.Counter("rrc_demotions"),
	}
	if tr != nil {
		m.stateSpan = tr.Start(obs.LayerRadio, "rrc:"+b.RRC().State().String(), tr.Scope())
	}
	b.Attach(m)
	return m
}

// RRCTransition implements Monitor: it closes the span of the state being
// left and opens one for the new state, tagged with the current correlation
// scope (the user action that triggered a promotion).
func (m *TraceMonitor) RRCTransition(t Transition) {
	if t.Promotion {
		m.promotions.Inc()
	} else {
		m.demotions.Inc()
	}
	if m.tr == nil {
		return
	}
	m.stateSpan.EndAt(time.Duration(t.At))
	m.stateSpan = m.tr.Start(obs.LayerRadio, "rrc:"+t.To.String(), m.tr.Scope())
}

// DataPDU implements Monitor.
func (m *TraceMonitor) DataPDU(p *PDU) {
	m.pdus.Inc()
	if p.Retx {
		m.retx.Inc()
		if m.tr != nil {
			m.tr.Instant(obs.LayerRadio, "rlc:retx", m.tr.Scope(),
				obs.Attr{Key: "dir", Val: p.Dir.String()},
				obs.Attr{Key: "seq", Val: strconv.FormatUint(uint64(p.Seq), 10)})
		}
	}
}

// StatusPDU implements Monitor.
func (m *TraceMonitor) StatusPDU(StatusPDU) { m.status.Inc() }

// Close ends the open RRC state span at the given time (normally the end of
// the run). Without it the final state residency would never be emitted.
func (m *TraceMonitor) Close(at simtime.Time) {
	m.stateSpan.EndAt(time.Duration(at))
}
