// Package radio simulates the cellular radio link layer that QoE Doctor
// observes through QxDM: the RRC (Radio Resource Control) state machine for
// 3G and LTE, and the RLC (Radio Link Control) acknowledged-mode data plane
// with PDU segmentation, Length Indicators, and ARQ polling/STATUS feedback.
//
// The model follows §2 of the paper: 3G has DCH/FACH/PCH states, LTE has
// CONNECTED (continuous reception, short DRX, long DRX) and IDLE_CAMPED.
// Devices promote from low-power states on data transfer (paying a promotion
// delay) and demote when inactivity timers expire. The 3G uplink RLC PDU
// payload is fixed at 40 bytes; downlink and LTE PDUs are flexible and
// larger, which is what produces the paper's Finding 2 (3G RLC transmission
// delay dominated by per-PDU processing overhead).
package radio

import (
	"fmt"
	"time"

	"repro/internal/simtime"
)

// Tech identifies the radio access technology of a profile.
type Tech int

const (
	Tech3G Tech = iota
	TechLTE
	TechWiFi // modeled as a degenerate profile with no RRC dynamics
)

func (t Tech) String() string {
	switch t {
	case Tech3G:
		return "3G"
	case TechLTE:
		return "LTE"
	case TechWiFi:
		return "WiFi"
	}
	return fmt.Sprintf("Tech(%d)", int(t))
}

// State is an RRC state. The one enum spans both technologies; a profile
// only ever uses the states of its own technology.
type State int

const (
	// 3G states.
	StatePCH  State = iota // low power, no data-plane radio
	StateFACH              // shared low-bandwidth channel
	StateDCH               // dedicated high-bandwidth channel

	// LTE states.
	StateLTEIdle     // IDLE_CAMPED, low power
	StateLTECRX      // CONNECTED, continuous reception
	StateLTEShortDRX // CONNECTED, short DRX cycle
	StateLTELongDRX  // CONNECTED, long DRX cycle

	// WiFi pseudo-state (always-on, used so the energy model has a row).
	StateWiFiActive
)

var stateNames = map[State]string{
	StatePCH:         "PCH",
	StateFACH:        "FACH",
	StateDCH:         "DCH",
	StateLTEIdle:     "IDLE_CAMPED",
	StateLTECRX:      "CONNECTED_CRX",
	StateLTEShortDRX: "CONNECTED_SHORT_DRX",
	StateLTELongDRX:  "CONNECTED_LONG_DRX",
	StateWiFiActive:  "WIFI_ACTIVE",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// StateParams describes one RRC state's power draw and data-plane rates.
type StateParams struct {
	PowerMW float64 // mean device radio power in this state
	// Data-plane bandwidths. Zero means no data-plane radio in this state
	// (PCH, IDLE): traffic forces a promotion first.
	ULBandwidthBps float64
	DLBandwidthBps float64
}

// Demotion is one step of the inactivity-driven demotion chain.
type Demotion struct {
	From  State
	To    State
	Timer time.Duration // inactivity required before demoting
}

// Transition is one RRC state change, as logged by the QxDM monitor.
type Transition struct {
	At   simtime.Time
	From State
	To   State
	// Promotion reports whether this transition was triggered by data
	// activity (true) rather than a demotion timer (false).
	Promotion bool
}

// Machine is the per-device RRC state machine.
type Machine struct {
	k       *simtime.Kernel
	prof    *Profile
	state   State
	readyAt simtime.Time // when the data plane becomes usable (promotion end)

	// demoteScale multiplies the profile's demotion timers for this
	// machine only (runtime retuning; 0 = untouched). The shared Profile
	// is never mutated — it may be referenced by every UE in a fleet.
	demoteScale float64
	transitions int

	demoteEv  simtime.Event
	listeners []func(Transition)
}

// NewMachine creates an RRC machine in the profile's base (lowest-power)
// state.
func NewMachine(k *simtime.Kernel, prof *Profile) *Machine {
	if err := prof.Validate(); err != nil {
		panic("radio: invalid profile: " + err.Error())
	}
	return &Machine{k: k, prof: prof, state: prof.Base}
}

// Profile returns the machine's radio profile.
func (m *Machine) Profile() *Profile { return m.prof }

// State returns the current RRC state.
func (m *Machine) State() State { return m.state }

// OnTransition registers a listener invoked on every state change.
func (m *Machine) OnTransition(fn func(Transition)) {
	m.listeners = append(m.listeners, fn)
}

func (m *Machine) transition(to State, promotion bool) {
	if to == m.state {
		return
	}
	tr := Transition{At: m.k.Now(), From: m.state, To: to, Promotion: promotion}
	m.state = to
	m.transitions++
	for _, fn := range m.listeners {
		fn(tr)
	}
}

// Transitions returns the cumulative number of state changes — a cheap
// always-on RRC churn signal for runtime controllers when no QxDM monitor
// is attached.
func (m *Machine) Transitions() int { return m.transitions }

// SetDemotionScale retunes this machine's inactivity timers: every
// demotion timer is multiplied by s (> 1 = stay in high-power states
// longer, fewer promotions; < 1 = demote eagerly, save energy). The scale
// applies from the next (re)arming of the demotion chain; a timer already
// pending keeps its original deadline. s <= 0 resets to the profile's
// nominal timers.
func (m *Machine) SetDemotionScale(s float64) {
	if s <= 0 {
		s = 0
	}
	m.demoteScale = s
}

// DemotionScale returns the current demotion-timer scale (0 when never
// retuned; treat 0 and 1 as nominal).
func (m *Machine) DemotionScale() float64 { return m.demoteScale }

// OnActivity notifies the machine of a data transfer. It returns the virtual
// time at which the data plane is usable: now if already in the active
// state, or now plus the promotion delay otherwise. It also (re)arms the
// demotion timer.
func (m *Machine) OnActivity() simtime.Time {
	now := m.k.Now()
	ready := now
	if m.state != m.prof.Active {
		delay := m.prof.PromotionDelay[m.state]
		ready = now + delay
		m.transition(m.prof.Active, true)
		if ready < m.readyAt {
			ready = m.readyAt // promotion already in progress finishes first
		} else {
			m.readyAt = ready
		}
	} else if m.readyAt > now {
		ready = m.readyAt // still finishing a promotion
	}
	m.armDemotion()
	return ready
}

// ConnectionLost drops the machine to its base (lowest-power) state
// immediately — the radio-link-failure path taken on a bearer outage or
// handover gap. Any promotion in progress is abandoned, so traffic after the
// outage pays a fresh promotion delay.
func (m *Machine) ConnectionLost() {
	m.demoteEv.Cancel()
	m.demoteEv = simtime.Event{}
	m.readyAt = m.k.Now()
	m.transition(m.prof.Base, false)
}

// armDemotion restarts the inactivity demotion chain from the current state.
func (m *Machine) armDemotion() {
	m.demoteEv.Cancel()
	m.demoteEv = simtime.Event{}
	m.scheduleNextDemotion()
}

func (m *Machine) scheduleNextDemotion() {
	for _, d := range m.prof.Demotions {
		if d.From == m.state {
			step := d
			if m.demoteScale > 0 && m.demoteScale != 1 {
				step.Timer = time.Duration(float64(step.Timer) * m.demoteScale)
			}
			m.demoteEv = m.k.After(step.Timer, func() {
				m.demoteEv = simtime.Event{}
				m.transition(step.To, false)
				m.scheduleNextDemotion()
			})
			return
		}
	}
}

// Params returns the StateParams of the current state.
func (m *Machine) Params() StateParams { return m.prof.States[m.state] }
