package radio

import (
	"fmt"
	"math"
	"time"

	"repro/internal/simtime"
)

// SchedPolicy selects how a Cell divides each direction's air interface
// among the active bearers.
type SchedPolicy uint8

const (
	// SchedRoundRobin serves active bearers one PDU at a time in rotation —
	// equal transmission opportunities regardless of channel quality.
	SchedRoundRobin SchedPolicy = iota
	// SchedPropFair serves the bearer maximizing instantaneous rate divided
	// by its exponentially-averaged served rate — the classic cellular
	// proportional-fair tradeoff between aggregate throughput and fairness.
	SchedPropFair
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedRoundRobin:
		return "rr"
	case SchedPropFair:
		return "pf"
	}
	return fmt.Sprintf("SchedPolicy(%d)", uint8(p))
}

// ParsePolicy parses a scheduler policy name ("rr" | "pf").
func ParsePolicy(s string) (SchedPolicy, error) {
	switch s {
	case "rr", "round-robin", "":
		return SchedRoundRobin, nil
	case "pf", "proportional-fair":
		return SchedPropFair, nil
	}
	return 0, fmt.Errorf("radio: unknown scheduler policy %q (rr | pf)", s)
}

// pfTau is the proportional-fair averaging window: served-rate EWMAs decay
// with this time constant, so a bearer that has been starved for a few
// hundred milliseconds quickly regains priority.
const pfTau = 500 * time.Millisecond

// Cell is a base-station cell shared by several bearers. Each direction has
// one air-interface channel that serves a single PDU at a time, so when N
// devices are active their RLC transmissions serialize and cross-UE
// contention, queueing delay, and RRC promotion storms emerge naturally
// instead of being modeled. A cell with one attached bearer is
// event-for-event identical to a standalone bearer.
//
// The cell performs no randomization of its own: scheduling decisions are a
// pure function of bearer state and attach order, so fleet runs stay
// deterministic for a fixed seed.
type Cell struct {
	k      *simtime.Kernel
	policy SchedPolicy
	ul, dl cellChannel
	n      int
}

// NewCell creates a cell driven by kernel k.
func NewCell(k *simtime.Kernel, policy SchedPolicy) *Cell {
	c := &Cell{k: k, policy: policy}
	c.ul = cellChannel{cell: c, dir: Uplink}
	c.dl = cellChannel{cell: c, dir: Downlink}
	return c
}

// Policy returns the cell's scheduling policy.
func (c *Cell) Policy() SchedPolicy { return c.policy }

// Bearers returns the number of attached bearers.
func (c *Cell) Bearers() int { return c.n }

// Attach puts a bearer's RLC entities under this cell's schedulers. gain is
// the bearer's link-quality multiplier on its data-plane bandwidth (1 = the
// profile's nominal rate); values <= 0 default to 1. Attach must happen
// before traffic flows and a bearer can be attached to at most one cell.
func (c *Cell) Attach(b *Bearer, gain float64) {
	if b.cell != nil {
		panic("radio: bearer already attached to a cell")
	}
	if gain <= 0 {
		gain = 1
	}
	b.cell = c
	b.gain = gain
	b.ul.ch = &c.ul
	b.dl.ch = &c.dl
	b.ul.cellIdx = c.n
	b.dl.cellIdx = c.n
	c.n++
}

// cellChannel is one direction's shared air interface: a busy flag covering
// the PDU currently on the air plus the ring of entities waiting for a
// transmission opportunity.
type cellChannel struct {
	cell *Cell
	dir  Direction
	busy bool
	ring []*entity
}

// activate adds an entity to the wait ring (if absent) and starts the
// dispatcher when the channel is idle.
func (ch *cellChannel) activate(e *entity) {
	ch.enqueue(e)
	ch.dispatch()
}

func (ch *cellChannel) enqueue(e *entity) {
	if e.inRing {
		return
	}
	e.inRing = true
	ch.ring = append(ch.ring, e)
}

// dispatch grants transmission opportunities until the channel is busy or
// nothing is left to serve. Entities that turn out to have nothing to send
// (outage, drained queue) are dropped from the ring and the next is tried.
func (ch *cellChannel) dispatch() {
	for !ch.busy && len(ch.ring) > 0 {
		e := ch.pick()
		e.inRing = false
		if e.startTx() {
			ch.busy = true
		}
	}
}

// served completes one PDU's air occupancy: update the proportional-fair
// accounting, rotate the entity to the back of the ring when it still has
// work, and hand the channel to the next bearer on a fresh event (the same
// zero-delay hop the standalone pacing loop uses).
func (ch *cellChannel) served(e *entity, p *PDU, more bool) {
	ch.busy = false
	if ch.cell.policy == SchedPropFair {
		e.creditServed(p.Size)
	}
	if more {
		ch.enqueue(e)
	}
	if len(ch.ring) > 0 {
		ch.cell.k.After(0, ch.dispatch)
	}
}

// pick removes and returns the next entity to serve. Round-robin takes the
// ring head (rotation comes from served() re-appending); proportional-fair
// takes the argmax of instantaneous rate over decayed served rate, breaking
// ties by attach order so the choice is deterministic.
func (ch *cellChannel) pick() *entity {
	if ch.cell.policy == SchedRoundRobin || len(ch.ring) == 1 {
		e := ch.ring[0]
		copy(ch.ring, ch.ring[1:])
		ch.ring = ch.ring[:len(ch.ring)-1]
		return e
	}
	now := ch.cell.k.Now()
	best, bestMetric := 0, math.Inf(-1)
	for i, e := range ch.ring {
		inst := e.bandwidth() * e.b.gain
		avg := e.decayedRate(now)
		if avg < 1 {
			avg = 1 // a never-served bearer gets full priority
		}
		m := inst / avg
		if m > bestMetric || (m == bestMetric && e.cellIdx < ch.ring[best].cellIdx) {
			best, bestMetric = i, m
		}
	}
	e := ch.ring[best]
	ch.ring = append(ch.ring[:best], ch.ring[best+1:]...)
	return e
}

// decayedRate returns the entity's served-rate EWMA decayed to now.
func (e *entity) decayedRate(now simtime.Time) float64 {
	if e.ewmaBps == 0 {
		return 0
	}
	dt := float64(now - e.ewmaAt)
	if dt > 0 {
		e.ewmaBps *= math.Exp(-dt / float64(pfTau))
		e.ewmaAt = now
	}
	return e.ewmaBps
}

// creditServed folds one served PDU into the entity's rate average.
func (e *entity) creditServed(size int) {
	now := e.b.k.Now()
	e.decayedRate(now)
	// A PDU of size bytes served "now" contributes its bits spread over the
	// averaging window.
	e.ewmaBps += float64(size) * 8 / pfTau.Seconds()
	e.ewmaAt = now
}
