package radio

import (
	"fmt"
	"math"
	"time"

	"repro/internal/simtime"
)

// SchedPolicy selects how a Cell divides each direction's air interface
// among the active bearers.
type SchedPolicy uint8

const (
	// SchedRoundRobin serves active bearers one PDU at a time in rotation —
	// equal transmission opportunities regardless of channel quality.
	SchedRoundRobin SchedPolicy = iota
	// SchedPropFair serves the bearer maximizing instantaneous rate divided
	// by its exponentially-averaged served rate — the classic cellular
	// proportional-fair tradeoff between aggregate throughput and fairness.
	SchedPropFair
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedRoundRobin:
		return "rr"
	case SchedPropFair:
		return "pf"
	}
	return fmt.Sprintf("SchedPolicy(%d)", uint8(p))
}

// ParsePolicy parses a scheduler policy name ("rr" | "pf").
func ParsePolicy(s string) (SchedPolicy, error) {
	switch s {
	case "rr", "round-robin", "":
		return SchedRoundRobin, nil
	case "pf", "proportional-fair":
		return SchedPropFair, nil
	}
	return 0, fmt.Errorf("radio: unknown scheduler policy %q (rr | pf)", s)
}

// pfTau is the proportional-fair averaging window: served-rate EWMAs decay
// with this time constant, so a bearer that has been starved for a few
// hundred milliseconds quickly regains priority.
const pfTau = 500 * time.Millisecond

// Cell is a base-station cell shared by several bearers. Each direction has
// one air-interface channel that serves a single PDU at a time, so when N
// devices are active their RLC transmissions serialize and cross-UE
// contention, queueing delay, and RRC promotion storms emerge naturally
// instead of being modeled. A cell with one attached bearer is
// event-for-event identical to a standalone bearer.
//
// The cell performs no randomization of its own: scheduling decisions are a
// pure function of bearer state and attach order, so fleet runs stay
// deterministic for a fixed seed.
type Cell struct {
	k      *simtime.Kernel
	policy SchedPolicy
	ul, dl cellChannel
	id     int
	n      int
	// attachSeq numbers attachments monotonically so proportional-fair
	// tie-breaks stay unique and deterministic across detach/re-attach
	// churn (n alone would recycle indices).
	attachSeq int
}

// NewCell creates a cell driven by kernel k.
func NewCell(k *simtime.Kernel, policy SchedPolicy) *Cell {
	return NewCellID(k, policy, 0)
}

// NewCellID creates a cell with an explicit topology cell ID, used by
// multi-cell fleets to label reports and handover events.
func NewCellID(k *simtime.Kernel, policy SchedPolicy, id int) *Cell {
	c := &Cell{k: k, policy: policy, id: id}
	c.ul = cellChannel{cell: c, dir: Uplink, share: 1}
	c.dl = cellChannel{cell: c, dir: Downlink, share: 1}
	// Method values allocate; dispatch runs once per served PDU, so cache
	// the closure for the lifetime of the channel.
	c.ul.dispatchFn = c.ul.dispatch
	c.dl.dispatchFn = c.dl.dispatch
	return c
}

// ID returns the cell's topology ID (0 for standalone cells).
func (c *Cell) ID() int { return c.id }

// Policy returns the cell's scheduling policy.
func (c *Cell) Policy() SchedPolicy { return c.policy }

// Bearers returns the number of attached bearers.
func (c *Cell) Bearers() int { return c.n }

// Attach puts a bearer's RLC entities under this cell's schedulers. gain is
// the bearer's link-quality multiplier on its data-plane bandwidth (1 = the
// profile's nominal rate); values <= 0 default to 1. Attach must happen
// before traffic flows and a bearer can be attached to at most one cell.
func (c *Cell) Attach(b *Bearer, gain float64) {
	if b.cell != nil {
		panic("radio: bearer already attached to a cell")
	}
	if gain <= 0 {
		gain = 1
	}
	b.cell = c
	b.gain = gain
	b.ul.ch = &c.ul
	b.dl.ch = &c.dl
	b.ul.cellIdx = c.attachSeq
	b.dl.cellIdx = c.attachSeq
	c.attachSeq++
	c.n++
	// A freshly attached bearer starts with no served-rate history on this
	// cell: a handed-over UE competes like a newcomer.
	b.ul.ewmaBps, b.ul.ewmaAt = 0, 0
	b.dl.ewmaBps, b.dl.ewmaAt = 0, 0
}

// Detach removes a bearer from this cell's schedulers — the handover
// primitive. Any PDU already on the air completes its occupancy of this
// cell's channel (the entity remembers which channel it was granted), but
// the entity leaves the wait rings immediately and receives no further
// grants. The bearer can then be attached to another cell.
func (c *Cell) Detach(b *Bearer) {
	if b.cell != c {
		panic("radio: bearer not attached to this cell")
	}
	c.ul.remove(b.ul)
	c.dl.remove(b.dl)
	// An entity waiting in the ring (no PDU on the air) is parked here; one
	// mid-transmission parks itself when the occupancy completes. Without
	// this, kick() after re-attach sees sending=true and the entity never
	// transmits again.
	if b.ul.onAir == nil {
		b.ul.sending = false
	}
	if b.dl.onAir == nil {
		b.dl.sending = false
	}
	b.ul.ch = nil
	b.dl.ch = nil
	b.cell = nil
	c.n--
}

// cellChannel is one direction's shared air interface: a busy flag covering
// the PDU currently on the air plus the ring of entities waiting for a
// transmission opportunity.
type cellChannel struct {
	cell *Cell
	dir  Direction
	busy bool
	ring []*entity
	// share scales every bearer's effective rate on this channel; sharded
	// fleets set it at epoch barriers to model airtime consumed by the same
	// topology cell's bearers living on other shards. 1 = full capacity.
	share float64
	// airtime accumulates PDU air occupancy since the last TakeAirtime, the
	// load figure exchanged across shards at each lookahead barrier.
	airtime simtime.Time
	// dispatchFn is the cached dispatch closure (method values allocate).
	dispatchFn func()
}

// remove drops an entity from the wait ring, preserving order.
func (ch *cellChannel) remove(e *entity) {
	if !e.inRing {
		return
	}
	e.inRing = false
	for i, x := range ch.ring {
		if x == e {
			ch.ring = append(ch.ring[:i], ch.ring[i+1:]...)
			return
		}
	}
}

// TakeAirtime returns the per-direction air occupancy accumulated since the
// previous call and resets the accumulators.
func (c *Cell) TakeAirtime() (ul, dl simtime.Time) {
	ul, dl = c.ul.airtime, c.dl.airtime
	c.ul.airtime, c.dl.airtime = 0, 0
	return ul, dl
}

// SetShares sets the per-direction capacity fraction available to this
// cell instance for the next lookahead epoch. Values are clamped to (0, 1].
func (c *Cell) SetShares(ul, dl float64) {
	c.ul.share = clampShare(ul)
	c.dl.share = clampShare(dl)
}

func clampShare(s float64) float64 {
	if s > 1 || s <= 0 {
		return 1
	}
	return s
}

// activate adds an entity to the wait ring (if absent) and starts the
// dispatcher when the channel is idle.
func (ch *cellChannel) activate(e *entity) {
	ch.enqueue(e)
	ch.dispatch()
}

func (ch *cellChannel) enqueue(e *entity) {
	if e.inRing {
		return
	}
	e.inRing = true
	ch.ring = append(ch.ring, e)
}

// dispatch grants transmission opportunities until the channel is busy or
// nothing is left to serve. Entities that turn out to have nothing to send
// (outage, drained queue) are dropped from the ring and the next is tried.
func (ch *cellChannel) dispatch() {
	for !ch.busy && len(ch.ring) > 0 {
		e := ch.pick()
		e.inRing = false
		if e.startTx() {
			ch.busy = true
		}
	}
}

// served completes one PDU's air occupancy: update the proportional-fair
// accounting, rotate the entity to the back of the ring when it still has
// work, and hand the channel to the next bearer on a fresh event (the same
// zero-delay hop the standalone pacing loop uses).
func (ch *cellChannel) served(e *entity, p *PDU, more bool) {
	ch.busy = false
	if ch.cell.policy == SchedPropFair {
		e.creditServed(p.Size)
	}
	if more {
		ch.enqueue(e)
	}
	if len(ch.ring) > 0 {
		ch.cell.k.After(0, ch.dispatchFn)
	}
}

// pick removes and returns the next entity to serve. Round-robin takes the
// ring head (rotation comes from served() re-appending); proportional-fair
// takes the argmax of instantaneous rate over decayed served rate, breaking
// ties by attach order so the choice is deterministic.
func (ch *cellChannel) pick() *entity {
	if ch.cell.policy == SchedRoundRobin || len(ch.ring) == 1 {
		e := ch.ring[0]
		copy(ch.ring, ch.ring[1:])
		ch.ring = ch.ring[:len(ch.ring)-1]
		return e
	}
	now := ch.cell.k.Now()
	best, bestMetric := 0, math.Inf(-1)
	for i, e := range ch.ring {
		inst := e.bandwidth() * e.b.gain
		avg := e.decayedRate(now)
		if avg < 1 {
			avg = 1 // a never-served bearer gets full priority
		}
		m := inst / avg
		if m > bestMetric || (m == bestMetric && e.cellIdx < ch.ring[best].cellIdx) {
			best, bestMetric = i, m
		}
	}
	e := ch.ring[best]
	ch.ring = append(ch.ring[:best], ch.ring[best+1:]...)
	return e
}

// decayedRate returns the entity's served-rate EWMA decayed to now.
func (e *entity) decayedRate(now simtime.Time) float64 {
	if e.ewmaBps == 0 {
		return 0
	}
	dt := float64(now - e.ewmaAt)
	if dt > 0 {
		e.ewmaBps *= math.Exp(-dt / float64(pfTau))
		e.ewmaAt = now
	}
	return e.ewmaBps
}

// creditServed folds one served PDU into the entity's rate average.
func (e *entity) creditServed(size int) {
	now := e.b.k.Now()
	e.decayedRate(now)
	// A PDU of size bytes served "now" contributes its bits spread over the
	// averaging window.
	e.ewmaBps += float64(size) * 8 / pfTau.Seconds()
	e.ewmaAt = now
}
