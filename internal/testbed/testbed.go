// Package testbed assembles the full simulated lab that QoE Doctor runs
// against: a device (UI screens + network stack + cellular bearer), the
// server cluster, and the two data collectors (pcap on the device's IP
// layer, QxDM on the radio). Experiments and examples construct a Bed,
// connect the app under test, and hand the collected logs to the analyzer.
//
// Since the fleet redesign a Bed is a thin N=1 wrapper over internal/fleet:
// Options translates to a one-UE fleet.Scenario, and the Bed embeds the
// resulting fleet.UE, so the two construction paths share one assembly and
// a 1-UE fleet run is byte-identical to the legacy Bed path.
package testbed

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/apps/browser"
	"repro/internal/apps/facebook"
	"repro/internal/apps/youtube"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/radio"
)

// DeviceAddr is the device's address on the simulated carrier network.
var DeviceAddr = netip.MustParseAddr("10.20.0.2")

// Options configures a Bed. It is the flat, single-UE ancestor of
// fleet.Scenario; New translates it to a one-UE scenario.
type Options struct {
	Seed    int64
	Profile *radio.Profile // default: LTE
	// CoreDelay overrides the one-way base-station-to-server latency
	// (zero = technology default).
	CoreDelay time.Duration

	Facebook facebook.Config // zero value = facebook.DefaultConfig()
	YouTube  youtube.Config
	Browser  browser.Profile // zero value = Chrome

	// DisableQxDM skips radio logging (large experiments that only need
	// app/transport data).
	DisableQxDM bool
	// DisablePcap skips packet capture.
	DisablePcap bool

	// Faults injects network impairments (loss, reordering, duplication,
	// corruption, jitter, bearer outages). All fault randomness derives
	// from Seed, so impaired runs stay exactly reproducible. Nil or empty
	// means a perfect network.
	Faults *faults.Plan

	// ThrottleBps installs carrier downlink rate limiting at build time
	// (0 = none) — the declarative form of the deprecated Throttle method.
	ThrottleBps float64

	// Remedy enables the fleet's built-in remediation controller on the
	// single UE (nil = no controller). Drive the bed through Bed.RunTo so
	// the control hooks are armed.
	Remedy *fleet.RemedySpec

	// Trace attaches the cross-layer trace bus (Bed.Trace): every layer
	// emits virtual-time-stamped spans and instants correlated by user
	// action. Off by default — detached instrumentation costs only nil
	// checks.
	Trace bool
	// Metrics attaches the metrics registry (Bed.Metrics).
	Metrics bool
	// Profiler attaches a wall-clock kernel callback profiler
	// (Bed.Profiler). Unlike the trace it measures real time, so its output
	// is not deterministic.
	Profiler bool
}

// Scenario converts the flat options to their one-UE fleet scenario.
func (o Options) Scenario() fleet.Scenario {
	return fleet.Scenario{
		Seed: o.Seed,
		Cell: fleet.CellSpec{Profile: o.Profile, CoreDelay: o.CoreDelay},
		UEs: []fleet.UESpec{{
			Facebook:    o.Facebook,
			YouTube:     o.YouTube,
			Browser:     o.Browser,
			Faults:      o.Faults,
			ThrottleBps: o.ThrottleBps,
			DisableQxDM: o.DisableQxDM,
			DisablePcap: o.DisablePcap,
		}},
		Remedy: o.Remedy,
	}
}

// Bed is one assembled lab instance: a single fleet UE plus its kernel.
// The embedded UE contributes the device fields (K, Net, Servers, apps,
// collectors, obs sinks) and the Session/Analyze/CloseObs/Throttle
// behaviour.
type Bed struct {
	*fleet.UE
	f *fleet.Fleet
}

// New assembles a Bed, reporting malformed options as an error instead of
// panicking mid-assembly.
func New(opts Options) (*Bed, error) {
	f, err := fleet.Build(opts.Scenario(), fleetOptions(opts)...)
	if err != nil {
		return nil, err
	}
	return &Bed{UE: f.UEs[0], f: f}, nil
}

// Fleet returns the underlying one-UE fleet (report aggregation, golden
// comparisons against multi-UE runs).
func (b *Bed) Fleet() *fleet.Fleet { return b.f }

// RunTo advances the bed to horizon through the fleet's control-aware run
// path: any configured remediation controller or OnControl hooks are armed
// before the kernel runs. Equivalent to b.K.RunUntil when no control is
// configured.
func (b *Bed) RunTo(horizon time.Duration) { b.f.RunTo(horizon) }

// OnControl registers a runtime-control hook on the bed's fleet (fired at
// interval multiples during RunTo), giving single-UE experiments the same
// control surface as fleet runs.
func (b *Bed) OnControl(interval time.Duration, fn fleet.ControlHook) {
	b.f.OnControl(interval, fn)
}

// NewScenario assembles a Bed directly from a one-UE fleet scenario — the
// composable form of New for callers already speaking the Scenario API.
func NewScenario(scen fleet.Scenario, opts ...fleet.Option) (*Bed, error) {
	if len(scen.UEs) != 1 {
		return nil, fmt.Errorf("testbed: scenario has %d UEs, want exactly 1 (use fleet.Run)", len(scen.UEs))
	}
	f, err := fleet.Build(scen, opts...)
	if err != nil {
		return nil, err
	}
	return &Bed{UE: f.UEs[0], f: f}, nil
}

// MustNew is New for tests and examples: it panics on error.
func MustNew(opts Options) *Bed {
	b, err := New(opts)
	if err != nil {
		panic(err)
	}
	return b
}

// fleetOptions maps the flat obs toggles to fleet run options.
func fleetOptions(opts Options) []fleet.Option {
	var fo []fleet.Option
	if opts.Trace {
		fo = append(fo, fleet.WithTrace())
	}
	if opts.Metrics {
		fo = append(fo, fleet.WithMetrics())
	}
	if opts.Profiler {
		fo = append(fo, fleet.WithProfiler())
	}
	return fo
}

// compile-time guarantee that the embedded UE keeps satisfying the legacy
// Bed surface: CloseObs and mid-run Throttle promote from fleet.UE
// (build-time throttling is declarative via Options.ThrottleBps).
var _ interface {
	CloseObs()
	Throttle(float64)
} = (*Bed)(nil)
