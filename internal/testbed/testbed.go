// Package testbed assembles the full simulated lab that QoE Doctor runs
// against: a device (UI screens + network stack + cellular bearer), the
// server cluster, and the two data collectors (pcap on the device's IP
// layer, QxDM on the radio). Experiments and examples construct a Bed,
// connect the app under test, and hand the collected logs to the analyzer.
package testbed

import (
	"net/netip"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/core/qoe"

	"repro/internal/apps/browser"
	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/apps/youtube"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// DeviceAddr is the device's address on the simulated carrier network.
var DeviceAddr = netip.MustParseAddr("10.20.0.2")

// Options configures a Bed.
type Options struct {
	Seed    int64
	Profile *radio.Profile // default: LTE
	// CoreDelay overrides the one-way base-station-to-server latency
	// (zero = technology default).
	CoreDelay time.Duration

	Facebook facebook.Config // zero value = facebook.DefaultConfig()
	YouTube  youtube.Config
	Browser  browser.Profile // zero value = Chrome

	// DisableQxDM skips radio logging (large experiments that only need
	// app/transport data).
	DisableQxDM bool
	// DisablePcap skips packet capture.
	DisablePcap bool

	// Faults injects network impairments (loss, reordering, duplication,
	// corruption, jitter, bearer outages). All fault randomness derives
	// from Seed, so impaired runs stay exactly reproducible. Nil or empty
	// means a perfect network.
	Faults *faults.Plan

	// Trace attaches the cross-layer trace bus (Bed.Trace): every layer
	// emits virtual-time-stamped spans and instants correlated by user
	// action. Off by default — detached instrumentation costs only nil
	// checks.
	Trace bool
	// Metrics attaches the metrics registry (Bed.Metrics).
	Metrics bool
	// Profiler attaches a wall-clock kernel callback profiler
	// (Bed.Profiler). Unlike the trace it measures real time, so its output
	// is not deterministic.
	Profiler bool
}

// Bed is one assembled lab instance.
type Bed struct {
	K        *simtime.Kernel
	Net      *netsim.Network
	Servers  *serversim.Cluster
	Resolver *netsim.Resolver

	Capture *pcap.Capture
	QxDM    *qxdm.Monitor

	Facebook *facebook.App
	YouTube  *youtube.App
	Browser  *browser.App

	// FaultUL and FaultDL are the installed impairment chains (nil when
	// Options.Faults was empty). Throttle composes with them: the chain
	// feeds the throttle qdisc.
	FaultUL *faults.Chain
	FaultDL *faults.Chain

	// Trace, Metrics, and Profiler are the attached observability sinks
	// (nil unless requested in Options).
	Trace    *obs.Trace
	Metrics  *obs.Registry
	Profiler *obs.Profiler
	// RadioMon is the radio trace monitor (nil unless Trace or Metrics);
	// CloseObs finalizes its open RRC state span.
	RadioMon *radio.TraceMonitor
}

// defaultCoreDelay returns the one-way core latency per technology,
// matching typical measured first-hop-to-server latencies.
func defaultCoreDelay(tech radio.Tech) time.Duration {
	switch tech {
	case radio.Tech3G:
		return 35 * time.Millisecond
	case radio.TechLTE:
		return 20 * time.Millisecond
	default:
		return 12 * time.Millisecond
	}
}

// New assembles a Bed.
func New(opts Options) *Bed {
	prof := opts.Profile
	if prof == nil {
		prof = radio.ProfileLTE()
	}
	coreDelay := opts.CoreDelay
	if coreDelay == 0 {
		coreDelay = defaultCoreDelay(prof.Tech)
	}
	k := simtime.NewKernel(opts.Seed)
	net := netsim.NewNetwork(k, prof, DeviceAddr, coreDelay)
	servers := serversim.Install(net)
	resolver := netsim.NewResolver(net.Device, netsim.Endpoint{Addr: serversim.DNSAddr, Port: netsim.DNSPort})

	b := &Bed{K: k, Net: net, Servers: servers, Resolver: resolver}
	if !opts.Faults.Empty() {
		b.FaultUL = opts.Faults.Build(k, faults.Uplink, opts.Seed)
		b.FaultDL = opts.Faults.Build(k, faults.Downlink, opts.Seed)
		net.ULQdisc = b.FaultUL
		net.DLQdisc = b.FaultDL
		for _, o := range opts.Faults.Outages {
			net.Bearer.ScheduleOutage(simtime.Time(o.Start), o.Duration)
		}
	}
	if !opts.DisablePcap {
		b.Capture = pcap.NewCapture()
		b.Capture.Attach(net.Device)
	}
	if !opts.DisableQxDM {
		b.QxDM = qxdm.Attach(net.Bearer)
	}

	fbCfg := opts.Facebook
	if fbCfg == (facebook.Config{}) {
		fbCfg = facebook.DefaultConfig()
	}
	b.Facebook = facebook.New(k, net.Device, resolver, fbCfg)
	b.YouTube = youtube.New(k, net.Device, resolver, opts.YouTube)
	brProf := opts.Browser
	if brProf.Name == "" {
		brProf = browser.Chrome()
	}
	b.Browser = browser.New(k, net.Device, resolver, brProf)

	if opts.Trace || opts.Metrics {
		if opts.Trace {
			b.Trace = obs.NewTrace()
			k.SetTrace(b.Trace)
		}
		if opts.Metrics {
			b.Metrics = obs.NewRegistry()
			b.Metrics.GaugeFunc("kernel_events", func() float64 { return float64(k.Processed()) })
			b.Metrics.GaugeFunc("kernel_pending", func() float64 { return float64(k.Pending()) })
			b.Metrics.GaugeFunc("sim_time_s", func() float64 { return time.Duration(k.Now()).Seconds() })
			b.Metrics.GaugeFunc("bearer_outages", func() float64 { return float64(net.Bearer.OutageCount()) })
			if b.FaultUL != nil {
				b.Metrics.GaugeFunc("fault_drops_ul", func() float64 { return float64(b.FaultUL.Dropped()) })
			}
			if b.FaultDL != nil {
				b.Metrics.GaugeFunc("fault_drops_dl", func() float64 { return float64(b.FaultDL.Dropped()) })
			}
		}
		net.SetObs(b.Trace, b.Metrics)
		net.Bearer.SetTrace(b.Trace)
		b.RadioMon = radio.AttachTrace(net.Bearer, b.Trace, b.Metrics)
		b.Facebook.SetObs(b.Trace, b.Metrics)
		b.YouTube.SetObs(b.Trace, b.Metrics)
		b.Browser.SetObs(b.Trace, b.Metrics)
	}
	if opts.Profiler {
		b.Profiler = obs.NewProfiler()
		k.SetProfiler(b.Profiler)
	}
	return b
}

// CloseObs finalizes open observability state (the radio monitor's current
// RRC residency span) at the present virtual time. Call it after the run,
// before exporting the trace.
func (b *Bed) CloseObs() {
	if b.RadioMon != nil {
		b.RadioMon.Close(b.K.Now())
	}
}

// Session packages the bed's collected logs plus a behavior log into the
// analyzer's input bundle.
func (b *Bed) Session(log *qoe.BehaviorLog) *qoe.Session {
	s := &qoe.Session{
		Profile:    b.Net.Bearer.Profile(),
		DeviceAddr: DeviceAddr,
		Behavior:   log,
	}
	if b.Capture != nil {
		s.Packets = b.Capture.Records()
	}
	if b.QxDM != nil {
		s.Radio = b.QxDM.Log()
	}
	if b.Trace != nil {
		s.Trace = b.Trace.Events()
	}
	return s
}

// Analyze runs the cross-layer analyzer over the bed's collected logs.
func (b *Bed) Analyze(log *qoe.BehaviorLog) *analyzer.CrossLayer {
	return analyzer.NewCrossLayer(b.Session(log))
}

// AnalyzeAsync starts the analysis on its own goroutine so the caller can
// overlap it with the next bed's simulation (the sweep pipeline shape);
// Wait on the returned handle for the result.
func (b *Bed) AnalyzeAsync(log *qoe.BehaviorLog) *analyzer.Pending {
	return analyzer.Analyze(b.Session(log))
}

// Throttle installs carrier rate limiting on the downlink: traffic shaping
// (the C1 3G mechanism) or traffic policing (the C1 LTE mechanism, §7.5).
// The shaper buffers deeply (carrier-grade queues), so 3G delivers a smooth
// stream at the cap with few TCP drops; the policer has a shallow token
// bucket, so LTE slow-start bursts overshoot and drop, producing the
// retransmissions, bursty goodput, and higher variance of Finding 7.
func (b *Bed) Throttle(rateBps float64) {
	var q netsim.Qdisc
	if b.Net.Bearer.Profile().Tech == radio.Tech3G {
		// Deeper than the device's TCP receive-window ceiling, so the
		// sender's window fills the queue without overflowing it.
		const queue = 256 * 1024
		s := netsim.NewShaper(b.K, rateBps, 16*1024, queue)
		s.SetObs(b.Trace, b.Metrics, "shape_dl")
		q = s
	} else {
		p := netsim.NewPolicer(b.K, rateBps, 4*1024)
		p.SetObs(b.Trace, b.Metrics, "police_dl")
		q = p
	}
	// Compose with fault injection when present: impairments happen first,
	// then the carrier throttle.
	if b.FaultDL != nil {
		b.FaultDL.SetNext(q)
	} else {
		b.Net.DLQdisc = q
	}
}
