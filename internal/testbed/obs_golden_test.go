package testbed_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/obs"
	"repro/internal/testbed"
)

// obsRun plays one fixed-seed YouTube video with every observability sink
// attached and returns the Chrome-trace export, the metrics NDJSON export,
// and the analyzer's cross-layer view (trace cross-check included).
func obsRun(t *testing.T, seed int64) (chrome, ndjson []byte, cl *analyzer.CrossLayer) {
	t.Helper()
	b := testbed.MustNew(testbed.Options{Seed: seed, Trace: true, Metrics: true})
	b.YouTube.Connect()
	b.K.RunUntil(2 * time.Second)

	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 30 * time.Minute
	c.Instrumentation().SetPollInterval(100 * time.Millisecond)
	d := &controller.YouTubeDriver{C: c}
	done := false
	d.SearchAndPlay("g", 3, func(controller.WatchStats) { done = true })
	b.K.RunUntil(b.K.Now() + 20*time.Minute)
	if !done {
		t.Fatal("playback did not finish")
	}
	b.CloseObs()

	var cbuf, nbuf bytes.Buffer
	if err := obs.WriteChromeTrace(&cbuf, b.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	if err := b.Metrics.Snapshot().WriteNDJSON(&nbuf); err != nil {
		t.Fatal(err)
	}
	return cbuf.Bytes(), nbuf.Bytes(), analyzer.NewCrossLayer(b.Session(log))
}

// TestObsGoldenDeterminism is the determinism guard for the whole obs layer:
// a fixed-seed run must export byte-identical Chrome-trace JSON and metrics
// NDJSON every time.
func TestObsGoldenDeterminism(t *testing.T) {
	chrome1, ndjson1, _ := obsRun(t, 42)
	chrome2, ndjson2, _ := obsRun(t, 42)
	if !bytes.Equal(chrome1, chrome2) {
		t.Error("Chrome trace export differs between identical runs")
	}
	if !bytes.Equal(ndjson1, ndjson2) {
		t.Error("metrics NDJSON export differs between identical runs")
	}
}

// TestObsTraceCoverage checks the acceptance criterion for the trace bus: a
// run emits valid Chrome trace_event JSON holding spans from all five layers,
// with correlation IDs shared across layers.
func TestObsTraceCoverage(t *testing.T) {
	chrome, ndjson, cl := obsRun(t, 42)

	var doc struct {
		TraceEvents []struct {
			Ph   string                 `json:"ph"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}

	spanLayers := map[int]bool{}
	idLayers := map[uint64]map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		if ev.Ph == "X" {
			spanLayers[ev.Tid] = true
		}
		if idv, ok := ev.Args["id"].(float64); ok && idv > 0 {
			id := uint64(idv)
			if idLayers[id] == nil {
				idLayers[id] = map[int]bool{}
			}
			idLayers[id][ev.Tid] = true
		}
	}
	for tid := 1; tid <= 5; tid++ {
		if !spanLayers[tid] {
			t.Errorf("no span from layer track %d in the trace", tid)
		}
	}
	shared := 0
	for _, tids := range idLayers {
		if len(tids) >= 3 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no correlation ID shared by >= 3 layers")
	}

	// The snapshot must carry the core per-layer instruments.
	for _, name := range []string{"kernel_events", "rlc_pdus", "tcp_connects", "ui_draws", "yt_playbacks"} {
		if !bytes.Contains(ndjson, []byte(`"name":"`+name+`"`)) {
			t.Errorf("metrics snapshot missing %s", name)
		}
	}

	// The analyzer's trace cross-check ran against ground truth and must not
	// disagree on a clean fixed-seed run. (Other warnings — e.g. simulated
	// QxDM capture loss — are legitimate data-quality notes, not
	// disagreements.)
	for _, w := range cl.Warnings {
		if strings.HasPrefix(w, "trace cross-check") {
			t.Errorf("trace cross-check disagreement: %s", w)
		}
	}
}
