package testbed

import (
	"testing"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/netsim"
	"repro/internal/radio"
)

func TestDefaultsAndWiring(t *testing.T) {
	b := MustNew(Options{Seed: 1})
	if b.Net.Bearer.Profile().Tech != radio.TechLTE {
		t.Fatal("default profile should be LTE")
	}
	if b.Capture == nil || b.QxDM == nil {
		t.Fatal("collectors missing by default")
	}
	if b.Facebook == nil || b.YouTube == nil || b.Browser == nil {
		t.Fatal("apps missing")
	}
	if b.Servers.Facebook == nil || b.Servers.YouTube == nil || b.Servers.Web == nil {
		t.Fatal("servers missing")
	}
}

func TestDisableCollectors(t *testing.T) {
	b := MustNew(Options{Seed: 2, DisableQxDM: true, DisablePcap: true})
	if b.Capture != nil || b.QxDM != nil {
		t.Fatal("collectors present despite disable flags")
	}
	// Session must tolerate missing collectors.
	s := b.Session(nil)
	if s.Packets != nil || s.Radio != nil {
		t.Fatal("session carries data from disabled collectors")
	}
	if s.Profile == nil || s.DeviceAddr != DeviceAddr {
		t.Fatal("session metadata wrong")
	}
}

func TestCoreDelayDefaultsByTech(t *testing.T) {
	for _, c := range []struct {
		prof *radio.Profile
		want time.Duration
	}{
		{radio.Profile3G(), 35 * time.Millisecond},
		{radio.ProfileLTE(), 20 * time.Millisecond},
		{radio.ProfileWiFi(), 12 * time.Millisecond},
	} {
		b := MustNew(Options{Seed: 3, Profile: c.prof})
		if b.Net.CoreDelay != c.want {
			t.Errorf("%s core delay = %v, want %v", c.prof.Name, b.Net.CoreDelay, c.want)
		}
	}
	b := MustNew(Options{Seed: 4, CoreDelay: 99 * time.Millisecond})
	if b.Net.CoreDelay != 99*time.Millisecond {
		t.Fatal("explicit core delay ignored")
	}
}

func TestThrottleMechanismByTech(t *testing.T) {
	b3 := MustNew(Options{Seed: 5, Profile: radio.Profile3G()})
	b3.Throttle(128e3)
	if _, ok := b3.Net.DLQdisc.(*netsim.Shaper); !ok {
		t.Fatalf("3G throttle is %T, want shaper", b3.Net.DLQdisc)
	}
	bl := MustNew(Options{Seed: 6, Profile: radio.ProfileLTE()})
	bl.Throttle(128e3)
	if _, ok := bl.Net.DLQdisc.(*netsim.Policer); !ok {
		t.Fatalf("LTE throttle is %T, want policer", bl.Net.DLQdisc)
	}
}

func TestDeterminismAcrossBeds(t *testing.T) {
	run := func() (int, int) {
		b := MustNew(Options{Seed: 77, Profile: radio.Profile3G()})
		b.Facebook.Connect()
		b.K.RunUntil(30 * time.Second)
		return b.Capture.Len(), len(b.QxDM.Log().PDUs)
	}
	p1, d1 := run()
	p2, d2 := run()
	if p1 != p2 || d1 != d2 {
		t.Fatalf("same seed diverged: packets %d/%d, PDUs %d/%d", p1, p2, d1, d2)
	}
	if p1 == 0 {
		t.Fatal("no traffic captured during connect")
	}
}

func TestSessionBundlesLogs(t *testing.T) {
	b := MustNew(Options{Seed: 8})
	b.Facebook.Connect()
	b.K.RunUntil(10 * time.Second)
	s := b.Session(nil)
	if len(s.Packets) == 0 {
		t.Fatal("session has no packets")
	}
	if s.Radio == nil || len(s.Radio.PDUs) == 0 {
		t.Fatal("session has no radio log")
	}
	if s.Profile.Name != "C1-LTE" {
		t.Fatalf("profile %q", s.Profile.Name)
	}
	// DNS zone serves the canonical hosts.
	if serversim.FacebookHost == "" {
		t.Fatal("unreachable")
	}
}
