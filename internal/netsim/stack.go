package netsim

import (
	"fmt"
	"net/netip"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// CaptureFunc observes packets at a host's IP layer, exactly where tcpdump
// sits. inbound is true for packets arriving at the host.
type CaptureFunc func(at simtime.Time, pkt *Packet, inbound bool)

// Stack is one host's network stack: TCP connections, UDP handlers, and the
// capture point. Output packets are handed to a routing function installed
// by the network wiring.
type Stack struct {
	k    *simtime.Kernel
	addr netip.Addr

	out       func(*Packet)
	conns     map[FlowKey]*Conn
	listeners map[uint16]func(*Conn)
	udp       map[uint16]func(*Packet)
	captures  []CaptureFunc
	nextPort  uint16

	o stackObs
}

// stackObs holds a stack's observability hooks. The zero value is the
// detached state: a nil trace and nil instruments absorb everything, so
// instrumented paths only pay a pointer nil check.
type stackObs struct {
	tr          *obs.Trace
	connects    *obs.Counter
	retx        *obs.Counter
	rto         *obs.Counter
	aborts      *obs.Counter
	dnsLookups  *obs.Counter
	dnsRetries  *obs.Counter
	dnsTimeouts *obs.Counter
	connectHist *obs.Histogram
}

// SetObs attaches a trace bus and/or metrics registry to this stack. Either
// may be nil; metrics are registered under shared names, so several stacks
// (device and servers) feeding one registry accumulate into the same
// counters.
func (s *Stack) SetObs(tr *obs.Trace, reg *obs.Registry) {
	s.o = stackObs{
		tr:          tr,
		connects:    reg.Counter("tcp_connects"),
		retx:        reg.Counter("tcp_retx"),
		rto:         reg.Counter("tcp_rto"),
		aborts:      reg.Counter("tcp_aborts"),
		dnsLookups:  reg.Counter("dns_lookups"),
		dnsRetries:  reg.Counter("dns_retries"),
		dnsTimeouts: reg.Counter("dns_timeouts"),
		connectHist: reg.Histogram("tcp_connect_ms"),
	}
}

// Trace returns the attached trace bus (nil when detached).
func (s *Stack) Trace() *obs.Trace { return s.o.tr }

// NewStack creates a stack for a host at addr, driven by kernel k.
func NewStack(k *simtime.Kernel, addr netip.Addr) *Stack {
	return &Stack{
		k:         k,
		addr:      addr,
		conns:     make(map[FlowKey]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		udp:       make(map[uint16]func(*Packet)),
		nextPort:  40000,
	}
}

// Kernel returns the driving kernel.
func (s *Stack) Kernel() *simtime.Kernel { return s.k }

// Addr returns the host address.
func (s *Stack) Addr() netip.Addr { return s.addr }

// SetOutput installs the routing function that carries packets off-host.
func (s *Stack) SetOutput(fn func(*Packet)) { s.out = fn }

// AttachCapture adds a tcpdump-style observer seeing every packet that
// enters or leaves this host.
func (s *Stack) AttachCapture(fn CaptureFunc) { s.captures = append(s.captures, fn) }

// send emits a packet from this host.
func (s *Stack) send(p *Packet) {
	for _, c := range s.captures {
		c(s.k.Now(), p, false)
	}
	if s.out == nil {
		panic(fmt.Sprintf("netsim: stack %v has no output route", s.addr))
	}
	s.out(p)
}

// Input delivers a packet arriving at this host. The network wiring calls it.
func (s *Stack) Input(p *Packet) {
	for _, c := range s.captures {
		c(s.k.Now(), p, true)
	}
	switch p.Proto {
	case ProtoTCP:
		s.inputTCP(p)
	case ProtoUDP:
		if h, ok := s.udp[p.Dst.Port]; ok {
			h(p)
		}
	}
}

func (s *Stack) inputTCP(p *Packet) {
	// Existing connection? Keyed by our local->remote direction.
	key := FlowKey{Src: p.Dst, Dst: p.Src, Proto: ProtoTCP}
	if c, ok := s.conns[key]; ok {
		c.input(p)
		return
	}
	// New connection attempt.
	if p.Flags&FlagSYN != 0 && p.Flags&FlagACK == 0 {
		if accept, ok := s.listeners[p.Dst.Port]; ok {
			c := newConn(s, p.Dst, p.Src)
			s.conns[c.key] = c
			c.acceptSYN(p)
			accept(c)
			return
		}
	}
	// No one home: RST anything that is not itself an RST.
	if p.Flags&FlagRST == 0 {
		s.send(&Packet{
			Src: p.Dst, Dst: p.Src, Proto: ProtoTCP,
			Flags: FlagRST | FlagACK, Seq: p.Ack, Ack: p.Seq + 1,
		})
	}
}

// Listen registers an accept callback for a local TCP port.
func (s *Stack) Listen(port uint16, accept func(*Conn)) {
	s.listeners[port] = accept
}

// Dial opens a TCP connection to dst from an ephemeral local port and starts
// the handshake immediately.
func (s *Stack) Dial(dst Endpoint) *Conn {
	local := Endpoint{Addr: s.addr, Port: s.nextPort}
	s.nextPort++
	c := newConn(s, local, dst)
	s.conns[c.key] = c
	c.connect()
	return c
}

// HandleUDP registers a handler for UDP datagrams to a local port.
func (s *Stack) HandleUDP(port uint16, fn func(*Packet)) { s.udp[port] = fn }

// SendUDP emits a UDP datagram from an arbitrary local port.
func (s *Stack) SendUDP(src, dst Endpoint, payload []byte) {
	s.send(&Packet{Src: src, Dst: dst, Proto: ProtoUDP, Payload: payload})
}

// EphemeralPort allocates a fresh local port (for UDP clients).
func (s *Stack) EphemeralPort() uint16 {
	p := s.nextPort
	s.nextPort++
	return p
}

// forget removes a fully closed connection from the demux table.
func (s *Stack) forget(c *Conn) { delete(s.conns, c.key) }
