package netsim

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func ep(a string, port uint16) Endpoint {
	return Endpoint{Addr: netip.MustParseAddr(a), Port: port}
}

func TestPacketMarshalRoundtripTCP(t *testing.T) {
	p := &Packet{
		Src: ep("10.0.0.2", 40001), Dst: ep("31.13.70.1", 443),
		Proto: ProtoTCP, Seq: 12345, Ack: 6789,
		Flags: FlagPSH | FlagACK, Window: 0xffff,
		Payload: []byte("hello facebook"),
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.Proto != p.Proto ||
		got.Seq != p.Seq || got.Ack != p.Ack || got.Flags != p.Flags ||
		got.Window != p.Window || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestPacketMarshalRoundtripUDP(t *testing.T) {
	p := &Packet{
		Src: ep("10.0.0.2", 5353), Dst: ep("8.8.8.8", 53),
		Proto: ProtoUDP, Payload: []byte{1, 2, 3, 4, 5},
	}
	got, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestWireLenMatchesMarshal(t *testing.T) {
	p := &Packet{Src: ep("1.2.3.4", 1), Dst: ep("5.6.7.8", 2), Proto: ProtoTCP, Payload: make([]byte, 100)}
	if got := len(p.Marshal()); got != p.WireLen() {
		t.Fatalf("WireLen %d != marshal %d", p.WireLen(), got)
	}
}

func TestIPChecksumValid(t *testing.T) {
	p := &Packet{Src: ep("10.0.0.2", 1), Dst: ep("10.0.0.3", 2), Proto: ProtoTCP}
	wire := p.Marshal()
	// Recomputing the checksum over the header including the checksum field
	// must give 0 (standard Internet checksum property: sum incl. its own
	// complement folds to 0xffff, whose complement is 0).
	var sum uint32
	for i := 0; i+1 < ipv4HeaderLen; i += 2 {
		sum += uint32(wire[i])<<8 | uint32(wire[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if ^uint16(sum) != 0 {
		t.Fatalf("IP header checksum invalid: folded sum %#x", sum)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10), // too short
		append([]byte{0x65}, make([]byte, 19)...), // IPv6 version nibble
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: Unmarshal accepted bad frame", i)
		}
	}
}

func TestUnmarshalTruncatedTCP(t *testing.T) {
	p := &Packet{Src: ep("1.1.1.1", 1), Dst: ep("2.2.2.2", 2), Proto: ProtoTCP, Payload: []byte("xyz")}
	wire := p.Marshal()
	if _, err := Unmarshal(wire[:ipv4HeaderLen+5]); err == nil {
		t.Fatal("accepted truncated TCP header")
	}
}

func TestFlowKeyReverseCanonical(t *testing.T) {
	k := FlowKey{Src: ep("10.0.0.2", 40001), Dst: ep("31.13.70.1", 443), Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src {
		t.Fatalf("Reverse wrong: %v", r)
	}
	if k.Canonical() != r.Canonical() {
		t.Fatal("Canonical not direction-insensitive")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Src: ep("1.1.1.1", 1), Dst: ep("2.2.2.2", 2), Proto: ProtoTCP, Payload: []byte{1, 2}}
	q := p.Clone()
	q.Payload[0] = 9
	if p.Payload[0] == 9 {
		t.Fatal("Clone shares payload")
	}
}

// Property: marshal/unmarshal roundtrips for arbitrary TCP packets.
func TestQuickMarshalRoundtrip(t *testing.T) {
	f := func(srcIP, dstIP [4]byte, sp, dp uint16, seq, ack uint32, flags uint8, n uint16) bool {
		payload := make([]byte, int(n%3000))
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		p := &Packet{
			Src:   Endpoint{netip.AddrFrom4(srcIP), sp},
			Dst:   Endpoint{netip.AddrFrom4(dstIP), dp},
			Proto: ProtoTCP, Seq: seq, Ack: ack, Flags: flags, Window: 100,
			Payload: payload,
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return got.Src == p.Src && got.Dst == p.Dst && got.Seq == seq &&
			got.Ack == ack && got.Flags == flags && bytes.Equal(got.Payload, payload)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDNSRoundtripQuery(t *testing.T) {
	q := &DNSMessage{ID: 77, Name: "api.facebook.com"}
	got, err := UnmarshalDNS(MarshalDNS(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 77 || got.Response || got.Name != "api.facebook.com" || got.Answer.IsValid() {
		t.Fatalf("bad query roundtrip: %+v", got)
	}
}

func TestDNSRoundtripResponse(t *testing.T) {
	r := &DNSMessage{ID: 5, Response: true, Name: "r1.youtube.com", Answer: netip.MustParseAddr("74.125.1.9")}
	got, err := UnmarshalDNS(MarshalDNS(r))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.Name != r.Name || got.Answer != r.Answer {
		t.Fatalf("bad response roundtrip: %+v", got)
	}
}

func TestDNSNoAnswer(t *testing.T) {
	r := &DNSMessage{ID: 9, Response: true, Name: "nxdomain.example"}
	got, err := UnmarshalDNS(MarshalDNS(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Answer.IsValid() {
		t.Fatal("unexpected answer present")
	}
}
