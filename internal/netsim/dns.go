package netsim

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// DNSPort is the standard DNS UDP port.
const DNSPort = 53

// DNSMessage is a minimal DNS message: one question, at most one A answer.
// It marshals to real DNS wire format so captured traces are authentic and
// the analyzer can recover flow-to-hostname associations the same way the
// paper does (by parsing DNS lookups out of the tcpdump trace).
type DNSMessage struct {
	ID       uint16
	Response bool
	Name     string
	Answer   netip.Addr // zero value = no answer (NXDOMAIN-ish)
}

// MarshalDNS encodes the message in DNS wire format.
func MarshalDNS(m *DNSMessage) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, m.ID)
	var flags uint16
	if m.Response {
		flags |= 0x8000 // QR
		flags |= 0x0400 // AA
	} else {
		flags |= 0x0100 // RD
	}
	ancount := uint16(0)
	if m.Response && m.Answer.IsValid() {
		ancount = 1
	}
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, 1) // QDCOUNT
	b = binary.BigEndian.AppendUint16(b, ancount)
	b = binary.BigEndian.AppendUint16(b, 0) // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0) // ARCOUNT
	// Question.
	for _, label := range strings.Split(strings.TrimSuffix(m.Name, "."), ".") {
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	b = append(b, 0)                        // root
	b = binary.BigEndian.AppendUint16(b, 1) // QTYPE A
	b = binary.BigEndian.AppendUint16(b, 1) // QCLASS IN
	if ancount == 1 {
		b = append(b, 0xC0, 0x0C) // pointer to the question name
		b = binary.BigEndian.AppendUint16(b, 1)
		b = binary.BigEndian.AppendUint16(b, 1)
		b = binary.BigEndian.AppendUint32(b, 300) // TTL
		b = binary.BigEndian.AppendUint16(b, 4)
		a4 := m.Answer.As4()
		b = append(b, a4[:]...)
	}
	return b
}

// UnmarshalDNS decodes a message produced by MarshalDNS (single question,
// optional single A answer with name compression pointer).
func UnmarshalDNS(b []byte) (*DNSMessage, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("netsim: DNS message too short")
	}
	m := &DNSMessage{ID: binary.BigEndian.Uint16(b)}
	flags := binary.BigEndian.Uint16(b[2:])
	m.Response = flags&0x8000 != 0
	qd := binary.BigEndian.Uint16(b[4:])
	an := binary.BigEndian.Uint16(b[6:])
	if qd != 1 {
		return nil, fmt.Errorf("netsim: DNS message with %d questions", qd)
	}
	// Parse QNAME.
	i := 12
	var labels []string
	for {
		if i >= len(b) {
			return nil, fmt.Errorf("netsim: truncated QNAME")
		}
		n := int(b[i])
		i++
		if n == 0 {
			break
		}
		if i+n > len(b) {
			return nil, fmt.Errorf("netsim: truncated label")
		}
		labels = append(labels, string(b[i:i+n]))
		i += n
	}
	m.Name = strings.Join(labels, ".")
	i += 4 // QTYPE + QCLASS
	if an >= 1 {
		// Answer: compressed name pointer (2) + type(2) class(2) ttl(4) rdlen(2).
		if i+12+4 > len(b) {
			return nil, fmt.Errorf("netsim: truncated answer")
		}
		rdlen := int(binary.BigEndian.Uint16(b[i+10:]))
		if rdlen == 4 {
			m.Answer = netip.AddrFrom4([4]byte(b[i+12 : i+16]))
		}
	}
	return m, nil
}

// DNSServer serves A records for a zone over UDP port 53 on a stack.
type DNSServer struct {
	Zone map[string]netip.Addr
}

// AttachDNSServer installs a DNS server on a stack.
func AttachDNSServer(s *Stack, zone map[string]netip.Addr) *DNSServer {
	srv := &DNSServer{Zone: zone}
	s.HandleUDP(DNSPort, func(p *Packet) {
		q, err := UnmarshalDNS(p.Payload)
		if err != nil || q.Response {
			return
		}
		resp := &DNSMessage{ID: q.ID, Response: true, Name: q.Name}
		if a, ok := srv.Zone[q.Name]; ok {
			resp.Answer = a
		}
		s.SendUDP(Endpoint{Addr: s.Addr(), Port: DNSPort}, p.Src, MarshalDNS(resp))
	})
	return srv
}

// Resolver retry behavior: like a real stub resolver, a query that gets no
// response is retransmitted a few times with doubling timeouts before the
// lookup fails. Without this, one dropped UDP packet under fault injection
// would leave the caller waiting forever.
const (
	dnsTimeout    = 3 * time.Second
	dnsMaxRetries = 3 // retransmissions after the initial query
)

// dnsQuery is one in-flight lookup awaiting a response.
type dnsQuery struct {
	name  string
	cb    func(netip.Addr, bool)
	tries int
	timer simtime.Event
}

// Resolver issues DNS queries from a device stack and caches results.
type Resolver struct {
	stack   *Stack
	server  Endpoint
	nextID  uint16
	pending map[uint16]*dnsQuery
	cache   map[string]netip.Addr
	port    uint16
	// Timeouts counts lookups that failed after exhausting retransmissions.
	Timeouts int
}

// NewResolver creates a resolver pointed at a DNS server endpoint.
func NewResolver(s *Stack, server Endpoint) *Resolver {
	r := &Resolver{
		stack:   s,
		server:  server,
		nextID:  1,
		pending: make(map[uint16]*dnsQuery),
		cache:   make(map[string]netip.Addr),
		port:    s.EphemeralPort(),
	}
	s.HandleUDP(r.port, func(p *Packet) {
		m, err := UnmarshalDNS(p.Payload)
		if err != nil || !m.Response {
			return
		}
		q, ok := r.pending[m.ID]
		if !ok {
			return
		}
		delete(r.pending, m.ID)
		q.timer.Cancel()
		if m.Answer.IsValid() {
			r.cache[m.Name] = m.Answer
			q.cb(m.Answer, true)
		} else {
			q.cb(netip.Addr{}, false)
		}
	})
	return r
}

// Resolve looks up name, invoking cb with the result. Cached answers still
// go through the event queue (zero-delay) but generate no traffic, matching
// OS resolver caching. A query lost on an impaired network is retransmitted
// with doubling timeouts; after dnsMaxRetries the lookup fails with ok=false.
func (r *Resolver) Resolve(name string, cb func(addr netip.Addr, ok bool)) {
	if a, ok := r.cache[name]; ok {
		r.stack.k.After(0, func() { cb(a, true) })
		return
	}
	r.stack.o.dnsLookups.Inc()
	if tr := r.stack.o.tr; tr != nil {
		sp := tr.Start(obs.LayerTransport, "dns:"+name, tr.Scope())
		inner := cb
		cb = func(addr netip.Addr, ok bool) {
			if !ok {
				sp.Attr("failed", "true")
			}
			sp.End()
			inner(addr, ok)
		}
	}
	id := r.nextID
	r.nextID++
	q := &dnsQuery{name: name, cb: cb}
	r.pending[id] = q
	r.sendQuery(id, q)
}

func (r *Resolver) sendQuery(id uint16, q *dnsQuery) {
	m := &DNSMessage{ID: id, Name: q.name}
	r.stack.SendUDP(Endpoint{Addr: r.stack.Addr(), Port: r.port}, r.server, MarshalDNS(m))
	timeout := dnsTimeout << q.tries
	q.timer = r.stack.k.After(timeout, func() {
		q.timer = simtime.Event{}
		if r.pending[id] != q {
			return // answered in the meantime
		}
		if q.tries < dnsMaxRetries {
			q.tries++
			r.stack.o.dnsRetries.Inc()
			r.sendQuery(id, q)
			return
		}
		delete(r.pending, id)
		r.Timeouts++
		r.stack.o.dnsTimeouts.Inc()
		q.cb(netip.Addr{}, false)
	})
}

// FlushCache clears cached answers (used between experiment repetitions).
func (r *Resolver) FlushCache() { r.cache = make(map[string]netip.Addr) }
