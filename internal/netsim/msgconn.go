package netsim

import (
	"encoding/binary"
	"fmt"
)

// MsgConn frames tagged messages over a TCP connection: a 1-byte type, a
// 4-byte big-endian length, then the payload. The simulated app protocols
// (Facebook API, YouTube media, HTTP-ish web) all use this framing; the
// payload bytes are deterministic pseudo-random filler so RLC PDU head bytes
// are diverse (which the long-jump mapping relies on).
type MsgConn struct {
	Conn *Conn

	buf   []byte
	onMsg func(kind byte, payload []byte)
}

const msgHeaderLen = 5

// maxMsgLen bounds a single framed message (sanity check against stream
// desync bugs).
const maxMsgLen = 64 << 20

// NewMsgConn wraps an established or connecting TCP connection.
func NewMsgConn(c *Conn) *MsgConn {
	m := &MsgConn{Conn: c}
	c.OnReceive(m.feed)
	return m
}

// OnMessage registers the message callback.
func (m *MsgConn) OnMessage(fn func(kind byte, payload []byte)) { m.onMsg = fn }

// Send frames and sends one message.
func (m *MsgConn) Send(kind byte, payload []byte) {
	if len(payload) > maxMsgLen {
		panic(fmt.Sprintf("netsim: message of %d bytes exceeds limit", len(payload)))
	}
	hdr := make([]byte, msgHeaderLen, msgHeaderLen+len(payload))
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	m.Conn.Send(append(hdr, payload...))
}

// SendFiller sends a message whose payload is n deterministic pseudo-random
// bytes derived from the connection's kernel RNG.
func (m *MsgConn) SendFiller(kind byte, n int) {
	payload := make([]byte, n)
	m.Conn.stack.k.Rand().Read(payload)
	m.Send(kind, payload)
}

func (m *MsgConn) feed(data []byte) {
	m.buf = append(m.buf, data...)
	for len(m.buf) >= msgHeaderLen {
		kind := m.buf[0]
		n := int(binary.BigEndian.Uint32(m.buf[1:]))
		if n > maxMsgLen {
			// Stream desync (corrupt framed length): the connection is
			// unrecoverable — reset it and let the app-level retry logic
			// reconnect rather than crashing the simulation.
			m.buf = nil
			m.Conn.Abort()
			return
		}
		if len(m.buf) < msgHeaderLen+n {
			return
		}
		payload := append([]byte(nil), m.buf[msgHeaderLen:msgHeaderLen+n]...)
		m.buf = m.buf[msgHeaderLen+n:]
		if m.onMsg != nil {
			m.onMsg(kind, payload)
		}
	}
}
