package netsim

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// Qdisc is a queueing discipline applied at the base station, used to model
// carrier rate limiting. Enqueue either forwards the packet (possibly later,
// for a shaper) by calling deliver, or drops it by never calling deliver.
// drop, when non-nil, is invoked on a drop so tests can count losses.
type Qdisc interface {
	Enqueue(wireLen int, deliver func(), drop func())
}

// PassQdisc forwards everything immediately (no throttling).
type PassQdisc struct{}

// Enqueue implements Qdisc.
func (PassQdisc) Enqueue(wireLen int, deliver func(), drop func()) { deliver() }

// bucket is the shared token-bucket core: tokens accumulate at RateBps/8
// bytes per second up to BurstBytes.
type bucket struct {
	k          *simtime.Kernel
	rateBps    float64
	burstBytes float64
	tokens     float64
	last       simtime.Time
}

// bucketMinBytes is the minimum bucket capacity: one full-size packet plus
// headroom. A bucket smaller than the MTU could never pass a full-size
// packet no matter how long tokens accrue.
const bucketMinBytes = 1600

func newBucket(k *simtime.Kernel, rateBps float64, burstBytes int) *bucket {
	if burstBytes < bucketMinBytes {
		burstBytes = bucketMinBytes
	}
	return &bucket{k: k, rateBps: rateBps, burstBytes: float64(burstBytes), tokens: float64(burstBytes)}
}

// refill accrues tokens since the last call.
func (b *bucket) refill() {
	now := b.k.Now()
	elapsed := time.Duration(now - b.last).Seconds()
	b.last = now
	b.tokens += elapsed * b.rateBps / 8
	if b.tokens > b.burstBytes {
		b.tokens = b.burstBytes
	}
}

// tokenEpsilon absorbs float accumulation error so a packet whose tokens
// have "arithmetically" accrued is never spuriously refused (which would
// otherwise cause a zero-delay retry loop in the shaper).
const tokenEpsilon = 1e-6

// take consumes n bytes of tokens if available.
func (b *bucket) take(n int) bool {
	b.refill()
	if b.tokens+tokenEpsilon >= float64(n) {
		b.tokens -= float64(n)
		if b.tokens < 0 {
			b.tokens = 0
		}
		return true
	}
	return false
}

// neverDelay stands in for "tokens will never accrue" (zero or negative
// rate): far enough out that the drain event never fires within any
// experiment, without overflowing the simtime arithmetic the way an Inf
// division would.
const neverDelay = 365 * 24 * time.Hour

// deficitDelay returns how long until n bytes of tokens will have accrued,
// rounded up so that a subsequent take succeeds.
func (b *bucket) deficitDelay(n int) time.Duration {
	b.refill()
	deficit := float64(n) - b.tokens
	if deficit <= 0 {
		return 0
	}
	if b.rateBps <= 0 {
		return neverDelay
	}
	d := time.Duration(deficit/(b.rateBps/8)*float64(time.Second)) + time.Microsecond
	return d
}

// qdiscObs is the drop instrumentation shared by Policer and Shaper: a
// per-qdisc drop counter plus a transport-layer instant carrying the current
// correlation scope. The zero value is detached.
type qdiscObs struct {
	tr    *obs.Trace
	name  string
	drops *obs.Counter
}

func (o *qdiscObs) set(tr *obs.Trace, reg *obs.Registry, name string) {
	o.tr = tr
	o.name = name
	o.drops = reg.Counter("qdisc_" + name + "_drops")
}

func (o *qdiscObs) noteDrop(wireLen int) {
	o.drops.Inc()
	if o.tr != nil {
		o.tr.Instant(obs.LayerTransport, "qdisc:drop", o.tr.Scope(),
			obs.Attr{Key: "qdisc", Val: o.name},
			obs.Attr{Key: "bytes", Val: strconv.Itoa(wireLen)})
	}
}

// Policer drops packets that exceed the token bucket — the C1 LTE throttling
// mechanism (§7.5). Dropped excess traffic triggers TCP retransmissions and
// the bursty goodput the paper observes.
type Policer struct {
	b     *bucket
	o     qdiscObs
	Drops int
}

// SetObs attaches drop instrumentation under the given qdisc name (e.g.
// "police_ul").
func (p *Policer) SetObs(tr *obs.Trace, reg *obs.Registry, name string) {
	p.o.set(tr, reg, name)
}

// NewPolicer creates a policer at rateBps with the given burst allowance.
func NewPolicer(k *simtime.Kernel, rateBps float64, burstBytes int) *Policer {
	return &Policer{b: newBucket(k, rateBps, burstBytes)}
}

// Enqueue implements Qdisc.
func (p *Policer) Enqueue(wireLen int, deliver func(), drop func()) {
	if p.b.take(wireLen) {
		deliver()
		return
	}
	p.Drops++
	p.o.noteDrop(wireLen)
	if drop != nil {
		drop()
	}
}

// Shaper queues packets that exceed the token bucket and releases them as
// tokens accrue — the C1 3G throttling mechanism (§7.5). The queue is
// drop-tail with a byte limit; in steady state the shaper produces a smooth
// rate with few TCP drops.
type Shaper struct {
	k        *simtime.Kernel
	b        *bucket
	o        qdiscObs
	queue    []shaped
	queued   int // bytes in queue
	limit    int // max queued bytes before tail drop
	draining bool
	Drops    int
}

// SetObs attaches drop instrumentation under the given qdisc name (e.g.
// "shape_dl").
func (s *Shaper) SetObs(tr *obs.Trace, reg *obs.Registry, name string) {
	s.o.set(tr, reg, name)
}

type shaped struct {
	wireLen int
	deliver func()
}

// NewShaper creates a shaper at rateBps with the given burst allowance and
// queue byte limit.
func NewShaper(k *simtime.Kernel, rateBps float64, burstBytes, queueLimit int) *Shaper {
	return &Shaper{k: k, b: newBucket(k, rateBps, burstBytes), limit: queueLimit}
}

// Enqueue implements Qdisc.
func (s *Shaper) Enqueue(wireLen int, deliver func(), drop func()) {
	if len(s.queue) == 0 && s.b.take(wireLen) {
		deliver()
		return
	}
	if s.queued+wireLen > s.limit {
		s.Drops++
		s.o.noteDrop(wireLen)
		if drop != nil {
			drop()
		}
		return
	}
	s.queue = append(s.queue, shaped{wireLen, deliver})
	s.queued += wireLen
	s.drain()
}

// QueuedBytes reports the current queue occupancy.
func (s *Shaper) QueuedBytes() int { return s.queued }

func (s *Shaper) drain() {
	if s.draining || len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	delay := s.b.deficitDelay(head.wireLen)
	s.draining = true
	s.k.After(delay, func() {
		s.draining = false
		if len(s.queue) == 0 {
			return
		}
		head := s.queue[0]
		if !s.b.take(head.wireLen) {
			// Tokens raced away (shouldn't happen with one drainer); retry.
			s.drain()
			return
		}
		s.queue = s.queue[1:]
		s.queued -= head.wireLen
		head.deliver()
		s.drain()
	})
}
