package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Network wires one device stack through a cellular (or WiFi) bearer and an
// optional pair of carrier qdiscs to a set of server stacks:
//
//	device <-> RLC/RRC bearer <-> [qdisc] <-> core (fixed delay) <-> servers
//
// The uplink qdisc sits after the bearer (base-station egress), the downlink
// qdisc before it (base-station ingress) — where carrier throttling happens.
type Network struct {
	k      *simtime.Kernel
	Device *Stack
	Bearer *radio.Bearer

	// CoreDelay is the one-way latency between the base station and any
	// server (core network + internet path + server stack).
	CoreDelay time.Duration

	// ULQdisc and DLQdisc model carrier rate limiting. Defaults pass
	// everything.
	ULQdisc Qdisc
	DLQdisc Qdisc

	servers map[netip.Addr]*Stack

	// pathDelays overrides CoreDelay for specific server addresses —
	// e.g. an edge replica closer than the primary CDN node. Nil until
	// SetPathDelay is first called.
	pathDelays map[netip.Addr]time.Duration

	// wireFree recycles Marshal buffers for packets crossing the bearer. The
	// bearer hands each buffer back via its payload-release hook as soon as
	// RLC segmentation has copied the head bytes it keeps, so buffers cycle
	// once per packet instead of allocating per packet.
	wireFree [][]byte

	tr  *obs.Trace
	reg *obs.Registry
}

// NewNetwork builds a network with a device at deviceAddr behind a bearer
// using prof.
func NewNetwork(k *simtime.Kernel, prof *radio.Profile, deviceAddr netip.Addr, coreDelay time.Duration) *Network {
	n := &Network{
		k:         k,
		Device:    NewStack(k, deviceAddr),
		Bearer:    radio.NewBearer(k, prof),
		CoreDelay: coreDelay,
		ULQdisc:   PassQdisc{},
		DLQdisc:   PassQdisc{},
		servers:   make(map[netip.Addr]*Stack),
	}
	n.Device.SetOutput(n.uplink)
	n.Bearer.SetPayloadRelease(n.releaseWire)
	return n
}

// marshalWire serializes p into a recycled wire buffer when one is free.
func (n *Network) marshalWire(p *Packet) []byte {
	if l := len(n.wireFree); l > 0 {
		buf := n.wireFree[l-1]
		n.wireFree[l-1] = nil
		n.wireFree = n.wireFree[:l-1]
		return p.MarshalAppend(buf[:0])
	}
	return p.Marshal()
}

func (n *Network) releaseWire(b []byte) { n.wireFree = append(n.wireFree, b) }

// Kernel returns the driving kernel.
func (n *Network) Kernel() *simtime.Kernel { return n.k }

// SetObs attaches a trace bus and metrics registry to every stack in the
// network — the device and all servers, including ones added later.
func (n *Network) SetObs(tr *obs.Trace, reg *obs.Registry) {
	n.tr, n.reg = tr, reg
	n.Device.SetObs(tr, reg)
	for _, s := range n.servers {
		s.SetObs(tr, reg)
	}
}

// AddServer creates a server stack at addr and attaches it to the core. It
// returns an error if a server is already registered at addr.
func (n *Network) AddServer(addr netip.Addr) (*Stack, error) {
	if _, dup := n.servers[addr]; dup {
		return nil, fmt.Errorf("netsim: duplicate server %v", addr)
	}
	s := NewStack(n.k, addr)
	s.SetOutput(func(p *Packet) { n.fromServer(s, p) })
	if n.tr != nil || n.reg != nil {
		s.SetObs(n.tr, n.reg)
	}
	n.servers[addr] = s
	return s, nil
}

// MustAddServer is AddServer for callers whose addresses are distinct by
// construction (fixed constants); it panics on a duplicate.
func (n *Network) MustAddServer(addr netip.Addr) *Stack {
	s, err := n.AddServer(addr)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Server returns the stack at addr, or nil.
func (n *Network) Server(addr netip.Addr) *Stack { return n.servers[addr] }

// SetPathDelay overrides the one-way device<->server core latency for one
// server address (an edge replica on a shorter path). A non-positive d
// removes the override. Only packets in flight after the call see the new
// delay; server-to-server traffic always uses CoreDelay.
func (n *Network) SetPathDelay(addr netip.Addr, d time.Duration) {
	if d <= 0 {
		delete(n.pathDelays, addr)
		return
	}
	if n.pathDelays == nil {
		n.pathDelays = make(map[netip.Addr]time.Duration)
	}
	n.pathDelays[addr] = d
}

// pathDelay returns the device<->server one-way latency for addr.
func (n *Network) pathDelay(addr netip.Addr) time.Duration {
	if d, ok := n.pathDelays[addr]; ok {
		return d
	}
	return n.CoreDelay
}

// uplink carries a device packet through the bearer and core to its server.
func (n *Network) uplink(p *Packet) {
	wire := n.marshalWire(p)
	n.Bearer.SendUplink(wire, func() {
		n.ULQdisc.Enqueue(len(wire), func() {
			n.k.After(n.pathDelay(p.Dst.Addr), func() {
				if srv, ok := n.servers[p.Dst.Addr]; ok {
					srv.Input(p)
				}
			})
		}, nil)
	})
}

// fromServer routes a server packet: to the device via the downlink path, or
// directly to another server.
func (n *Network) fromServer(from *Stack, p *Packet) {
	if p.Dst.Addr == n.Device.Addr() {
		n.k.After(n.pathDelay(from.Addr()), func() {
			wire := n.marshalWire(p)
			n.DLQdisc.Enqueue(len(wire), func() {
				n.Bearer.SendDownlink(wire, func() {
					n.Device.Input(p)
				})
			}, nil)
		})
		return
	}
	if srv, ok := n.servers[p.Dst.Addr]; ok && srv != from {
		n.k.After(2*n.CoreDelay, func() { srv.Input(p) })
	}
}
