package netsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

type msg struct {
	kind    byte
	payload []byte
}

// msgPair wires a client and server MsgConn over a lossy-capable pipe.
func msgPair(t *testing.T, seed int64, loss float64) (*simtime.Kernel, *MsgConn, *MsgConn, *pipe) {
	t.Helper()
	k := simtime.NewKernel(seed)
	p := newPipe(k, 10*time.Millisecond)
	if loss > 0 {
		rng := rand.New(rand.NewSource(seed))
		p.drop = func(*Packet) bool { return rng.Float64() < loss }
	}
	var server *MsgConn
	p.b.Listen(443, func(c *Conn) { server = NewMsgConn(c) })
	client := NewMsgConn(p.a.Dial(Endpoint{p.b.Addr(), 443}))
	k.Run()
	if server == nil {
		t.Fatal("handshake failed")
	}
	return k, client, server, p
}

func TestMsgConnRoundtrip(t *testing.T) {
	k, client, server, _ := msgPair(t, 1, 0)
	var got []msg
	server.OnMessage(func(kind byte, payload []byte) {
		got = append(got, msg{kind, append([]byte(nil), payload...)})
	})
	client.Send(7, []byte("hello"))
	client.Send(8, nil)
	client.Send(9, bytes.Repeat([]byte{0xEE}, 100_000))
	k.Run()
	if len(got) != 3 {
		t.Fatalf("got %d messages, want 3", len(got))
	}
	if got[0].kind != 7 || string(got[0].payload) != "hello" {
		t.Fatalf("msg 0: %+v", got[0])
	}
	if got[1].kind != 8 || len(got[1].payload) != 0 {
		t.Fatalf("msg 1: %+v", got[1])
	}
	if got[2].kind != 9 || len(got[2].payload) != 100_000 {
		t.Fatalf("msg 2 wrong: kind=%d len=%d", got[2].kind, len(got[2].payload))
	}
}

func TestMsgConnBidirectional(t *testing.T) {
	k, client, server, _ := msgPair(t, 2, 0)
	server.OnMessage(func(kind byte, payload []byte) {
		server.Send(kind+1, payload)
	})
	var reply msg
	client.OnMessage(func(kind byte, payload []byte) {
		reply = msg{kind, append([]byte(nil), payload...)}
	})
	client.Send(10, []byte("ping"))
	k.Run()
	if reply.kind != 11 || string(reply.payload) != "pong"[:0]+"ping" {
		t.Fatalf("reply: %+v", reply)
	}
}

func TestMsgConnFramingSurvivesLoss(t *testing.T) {
	k, client, server, _ := msgPair(t, 3, 0.08)
	var got []msg
	server.OnMessage(func(kind byte, payload []byte) {
		got = append(got, msg{kind, append([]byte(nil), payload...)})
	})
	want := make([]msg, 30)
	rng := rand.New(rand.NewSource(9))
	for i := range want {
		n := rng.Intn(5000)
		payload := make([]byte, n)
		rng.Read(payload)
		want[i] = msg{byte(i), payload}
		client.Send(want[i].kind, want[i].payload)
	}
	k.Run()
	if len(got) != len(want) {
		t.Fatalf("got %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].kind != want[i].kind || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

func TestMsgConnSendFillerDiversity(t *testing.T) {
	k, client, server, _ := msgPair(t, 4, 0)
	var payload []byte
	server.OnMessage(func(kind byte, p []byte) { payload = p })
	client.SendFiller(1, 10_000)
	k.Run()
	if len(payload) != 10_000 {
		t.Fatalf("filler size %d", len(payload))
	}
	// Filler must be byte-diverse (the RLC head-byte mapping depends on it):
	// count distinct values in the first KB.
	seen := map[byte]bool{}
	for _, b := range payload[:1024] {
		seen[b] = true
	}
	if len(seen) < 100 {
		t.Fatalf("filler has only %d distinct bytes per KB", len(seen))
	}
}

// Property: any message sequence is delivered intact and in order.
func TestQuickMsgConnOrdering(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		k, client, server, _ := msgPair(&testing.T{}, seed, 0.03)
		var kinds []byte
		total := 0
		server.OnMessage(func(kind byte, payload []byte) {
			kinds = append(kinds, kind)
			total += len(payload)
		})
		wantTotal := 0
		for i, s := range sizes {
			n := int(s % 8000)
			wantTotal += n
			client.Send(byte(i), make([]byte, n))
		}
		k.Run()
		if len(kinds) != len(sizes) || total != wantTotal {
			return false
		}
		for i, kd := range kinds {
			if kd != byte(i) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
