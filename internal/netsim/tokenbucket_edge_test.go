package netsim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// TestPolicerZeroRate: at rate 0 the initial burst passes and everything
// after it drops — no division-by-zero, no hang.
func TestPolicerZeroRate(t *testing.T) {
	k := simtime.NewKernel(1)
	p := NewPolicer(k, 0, 0) // burst floored to bucketMinBytes
	passed, dropped := 0, 0
	for i := 0; i < 10; i++ {
		p.Enqueue(1400, func() { passed++ }, func() { dropped++ })
	}
	if passed != 1 || dropped != 9 {
		t.Fatalf("zero-rate policer: passed=%d dropped=%d, want 1/9", passed, dropped)
	}
	if p.Drops != 9 {
		t.Fatalf("Drops = %d, want 9", p.Drops)
	}
}

// TestShaperZeroRate: at rate 0 the shaper queues up to its byte limit and
// tail-drops the rest; the drain event must not panic or spin.
func TestShaperZeroRate(t *testing.T) {
	k := simtime.NewKernel(1)
	s := NewShaper(k, 0, 0, 3000)
	passed, dropped := 0, 0
	for i := 0; i < 10; i++ {
		s.Enqueue(1400, func() { passed++ }, func() { dropped++ })
	}
	k.RunUntil(simtime.Time(time.Hour))
	if passed != 1 {
		t.Fatalf("zero-rate shaper passed %d packets, want only the initial burst", passed)
	}
	if s.QueuedBytes() != 2800 {
		t.Fatalf("queued %d bytes, want 2800 (two packets under the 3000 limit)", s.QueuedBytes())
	}
	if dropped != 7 || s.Drops != 7 {
		t.Fatalf("dropped=%d Drops=%d, want 7/7", dropped, s.Drops)
	}
}

// TestBurstBelowPacketSize: a burst allowance smaller than one MTU is
// floored to bucketMinBytes so full-size packets can still ever pass.
func TestBurstBelowPacketSize(t *testing.T) {
	k := simtime.NewKernel(1)
	p := NewPolicer(k, 1e6, 100)
	passed := false
	p.Enqueue(1500, func() { passed = true }, nil)
	if !passed {
		t.Fatal("full-size packet refused by a floored burst bucket")
	}
}

// TestShaperRefillAfterLongIdle: tokens cap at the burst size during idle —
// a long quiet period must not bank unbounded credit.
func TestShaperRefillAfterLongIdle(t *testing.T) {
	k := simtime.NewKernel(1)
	const rate = 8000.0 // 1000 bytes/s
	s := NewShaper(k, rate, 0, 64*1024)

	// Exhaust the initial burst (bucketMinBytes = 1600).
	got := 0
	s.Enqueue(1600, func() { got++ }, nil)
	if got != 1 {
		t.Fatal("initial burst refused")
	}

	// Idle for an hour: only burstBytes of credit may accumulate.
	k.RunUntil(simtime.Time(time.Hour))
	var deliveredAt []simtime.Time
	for i := 0; i < 3; i++ {
		s.Enqueue(1000, func() { deliveredAt = append(deliveredAt, k.Now()) }, nil)
	}
	k.Run()
	if len(deliveredAt) != 3 {
		t.Fatalf("delivered %d of 3 packets", len(deliveredAt))
	}
	// Packet 1 spends the banked 1600 tokens; packet 2 needs 400 more
	// tokens (~0.4s); packet 3 a further full second.
	if deliveredAt[0] != simtime.Time(time.Hour) {
		t.Fatalf("first packet delayed to %v despite banked burst", deliveredAt[0])
	}
	w2 := time.Duration(deliveredAt[1] - deliveredAt[0])
	if w2 < 300*time.Millisecond || w2 > 500*time.Millisecond {
		t.Fatalf("second packet waited %v, want ~400ms (idle must not bank extra credit)", w2)
	}
	w3 := time.Duration(deliveredAt[2] - deliveredAt[1])
	if w3 < 900*time.Millisecond || w3 > 1100*time.Millisecond {
		t.Fatalf("third packet waited %v, want ~1s", w3)
	}
}
