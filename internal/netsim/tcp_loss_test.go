package netsim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/simtime"
)

// lossyTransfer runs a transfer over the pipe with the given drop function
// and returns the received bytes and the client conn.
func lossyTransfer(t *testing.T, seed int64, size int, drop func(p *Packet) bool) ([]byte, []byte, *Conn) {
	t.Helper()
	k := simtime.NewKernel(seed)
	p := newPipe(k, 10*time.Millisecond)
	p.drop = drop
	want := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(want)
	var got []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(want)
	k.Run()
	return got, want, c
}

// TestTCPRetransmitUnderRandomLoss: a seeded 5% random loss still delivers
// the stream intact, and the retransmission counter shows the repair work.
func TestTCPRetransmitUnderRandomLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	got, want, c := lossyTransfer(t, 4, 300_000, func(p *Packet) bool {
		return len(p.Payload) > 0 && rng.Float64() < 0.05
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("stream corrupted under loss: got %d bytes, want %d", len(got), len(want))
	}
	if c.Retransmits() == 0 {
		t.Fatal("no retransmissions recorded under 5% loss")
	}
}

// TestTCPRTOGoBackN drives the RTO path specifically: a total blackhole in
// the middle of the transfer forces the retransmission timer (no dup-ACK
// feedback exists while everything is dark), and recovery must go-back-N
// and resend the whole outstanding window.
func TestTCPRTOGoBackN(t *testing.T) {
	k := simtime.NewKernel(5)
	p := newPipe(k, 10*time.Millisecond)
	dark := false
	p.drop = func(pkt *Packet) bool { return dark }

	want := make([]byte, 400_000)
	rand.New(rand.NewSource(5)).Read(want)
	var got []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(want)

	// Blackhole the pipe for 2 s mid-transfer: every in-flight segment and
	// ACK dies, so only the RTO can restart the flow.
	k.At(simtime.Time(60*time.Millisecond), func() { dark = true })
	k.At(simtime.Time(2060*time.Millisecond), func() { dark = false })
	k.Run()

	if !bytes.Equal(got, want) {
		t.Fatalf("stream corrupted after blackhole: got %d bytes, want %d", len(got), len(want))
	}
	if c.Retransmits() == 0 {
		t.Fatal("blackhole recovery without any retransmission?")
	}
}

// TestTCPLossDeterminism: the same seed gives the same retransmission count
// — loss-path behaviour is as reproducible as the clean path.
func TestTCPLossDeterminism(t *testing.T) {
	run := func() int {
		rng := rand.New(rand.NewSource(23))
		_, _, c := lossyTransfer(t, 6, 200_000, func(p *Packet) bool {
			return len(p.Payload) > 0 && rng.Float64() < 0.03
		})
		return c.Retransmits()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different retransmit counts: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no retransmissions under 3% loss")
	}
}

// TestTCPAckLoss: dropping only ACKs (reverse path) must not corrupt or
// stall the stream; cumulative ACKs repair the gaps.
func TestTCPAckLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	got, want, _ := lossyTransfer(t, 8, 200_000, func(p *Packet) bool {
		return len(p.Payload) == 0 && p.Flags&FlagACK != 0 && p.Flags&FlagSYN == 0 &&
			p.Flags&FlagFIN == 0 && rng.Float64() < 0.2
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("stream corrupted under ACK loss: got %d bytes, want %d", len(got), len(want))
	}
}
