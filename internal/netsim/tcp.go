package netsim

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// TCP tuning constants. MSS is chosen so a full-sized segment plus headers
// is a typical 1440-byte IP packet.
const (
	MSS          = 1400
	initCwndSegs = 10
	// recvWindow caps the sender's effective window, like a 2014 Android
	// tcp_rmem maximum. It matters for Finding 7: the window ceiling keeps
	// cwnd below a deep shaper queue (3G throttling stays smooth and nearly
	// drop-free) but cannot protect against a shallow policer bucket (LTE
	// throttling stays bursty with heavy retransmissions).
	recvWindow     = 128 << 10 // bytes; window scaling is implied, not on the wire
	minRTO         = 200 * time.Millisecond
	maxRTO         = 60 * time.Second
	initialRTO     = 1 * time.Second
	dupAckThresh   = 3
	advertisedWnd  = 0xffff // what goes in the 16-bit header field
	maxSendBacklog = 64 << 20
)

type connState int

const (
	stClosed connState = iota
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait   // we sent FIN, waiting for its ACK (and possibly peer FIN)
	stCloseWait // peer sent FIN, we have not closed yet
	stLastAck   // peer closed, we sent FIN, waiting for final ACK
	stDone
)

// Conn is one TCP connection endpoint. All methods must be called from the
// kernel goroutine.
type Conn struct {
	stack *Stack
	key   FlowKey // local -> remote
	state connState

	// Send side. buf holds the byte stream from sndUna onward: an unacked
	// prefix of length (sndNxt-sndUna) followed by unsent data.
	buf      []byte
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	cwnd     float64
	ssthresh float64
	rwnd     int
	dupAcks  int
	// retransmit state
	rtoTimer    simtime.Event
	rto         time.Duration
	srtt        time.Duration
	rttvar      time.Duration
	sampleSeq   uint32 // end seq whose ACK yields an RTT sample (0 = none pending)
	sampleStart uint32 // start seq of the sampled segment
	sampleAt    simtime.Time
	// recover marks the pre-rollback sndNxt after an RTO: segments below it
	// are go-back-N retransmissions (not RTT-sampled, counted as retx).
	recover    uint32
	retxCount  int  // total segments retransmitted (exposed for tests)
	closeAfter bool // app closed; send FIN once buffer drains

	// Receive side.
	irs    uint32
	rcvNxt uint32
	ooo    map[uint32][]byte

	// App callbacks.
	onEstablished func()
	onRecv        func([]byte)
	onPeerClose   func()
	onClose       func()
	established   bool

	// Observability. obsID is the correlation ID linking this connection's
	// trace events to the user action that opened it (the trace scope at
	// connection creation); connSpan covers SYN to established on the
	// client side.
	obsID    uint64
	connSpan obs.Span
}

func newConn(s *Stack, local, remote Endpoint) *Conn {
	iss := uint32(s.k.Rand().Int63()) | 1
	return &Conn{
		stack:    s,
		key:      FlowKey{Src: local, Dst: remote, Proto: ProtoTCP},
		iss:      iss,
		sndUna:   iss,
		sndNxt:   iss,
		recover:  iss,
		cwnd:     initCwndSegs * MSS,
		ssthresh: 1 << 30,
		rwnd:     recvWindow,
		rto:      initialRTO,
		ooo:      make(map[uint32][]byte),
	}
}

// Local and Remote return the connection endpoints.
func (c *Conn) Local() Endpoint  { return c.key.Src }
func (c *Conn) Remote() Endpoint { return c.key.Dst }

// OnEstablished registers a callback for handshake completion.
func (c *Conn) OnEstablished(fn func()) {
	c.onEstablished = fn
	if c.established && fn != nil {
		fn()
	}
}

// OnReceive registers the in-order data callback.
func (c *Conn) OnReceive(fn func([]byte)) { c.onRecv = fn }

// OnPeerClose registers a callback for the peer's FIN.
func (c *Conn) OnPeerClose(fn func()) { c.onPeerClose = fn }

// OnClose registers a callback for full teardown of the connection.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// Retransmits returns the number of segments this endpoint retransmitted.
func (c *Conn) Retransmits() int { return c.retxCount }

// Outstanding returns unacknowledged bytes in flight.
func (c *Conn) Outstanding() int { return int(c.sndNxt - c.sndUna) }

// Buffered returns bytes accepted from the app but not yet acknowledged.
func (c *Conn) Buffered() int { return len(c.buf) }

// connect starts the client-side handshake.
func (c *Conn) connect() {
	if tr := c.stack.o.tr; tr != nil {
		c.obsID = tr.Scope()
		if c.obsID == 0 {
			c.obsID = tr.NewID() // background flow with no user action in scope
		}
		c.connSpan = tr.Start(obs.LayerTransport, "tcp:connect", c.obsID,
			obs.Attr{Key: "laddr", Val: c.key.Src.String()},
			obs.Attr{Key: "raddr", Val: c.key.Dst.String()})
	}
	c.stack.o.connects.Inc()
	c.state = stSynSent
	c.sndNxt = c.iss + 1 // SYN consumes one sequence number
	c.emit(&Packet{Flags: FlagSYN, Seq: c.iss})
	c.armRTO()
}

// acceptSYN handles the first SYN at a listener-created connection.
func (c *Conn) acceptSYN(p *Packet) {
	c.obsID = c.stack.o.tr.Scope() // correlate server-side events too
	c.state = stSynRcvd
	c.irs = p.Seq
	c.rcvNxt = p.Seq + 1
	c.sndNxt = c.iss + 1
	c.emit(&Packet{Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcvNxt})
	c.armRTO()
}

// Send queues stream data for transmission. Data sent before the handshake
// completes is buffered.
func (c *Conn) Send(data []byte) {
	if c.state == stDone || c.closeAfter {
		return
	}
	if len(c.buf)+len(data) > maxSendBacklog {
		// The flow never drained (e.g. the path is blackholed under fault
		// injection). Reset the connection instead of growing without bound;
		// the app's OnClose callback sees the failure and can retry.
		c.Abort()
		return
	}
	c.buf = append(c.buf, data...)
	c.trySend()
}

// Close closes the sending direction once buffered data drains; the
// connection fully closes when both directions are done.
func (c *Conn) Close() {
	if c.state == stDone || c.closeAfter {
		return
	}
	c.closeAfter = true
	c.trySend()
}

// Abort sends RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.state == stDone {
		return
	}
	c.stack.o.aborts.Inc()
	c.emit(&Packet{Flags: FlagRST | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt})
	c.teardown()
}

func (c *Conn) teardown() {
	if c.connSpan.Active() {
		// Connection died before the handshake completed.
		c.connSpan.Attr("failed", "true")
		c.connSpan.End()
	}
	c.state = stDone
	c.rtoTimer.Cancel()
	c.rtoTimer = simtime.Event{}
	c.stack.forget(c)
	if c.onClose != nil {
		c.onClose()
	}
}

// emit fills in addressing and sends a segment.
func (c *Conn) emit(p *Packet) {
	p.Src = c.key.Src
	p.Dst = c.key.Dst
	p.Proto = ProtoTCP
	p.Window = advertisedWnd
	if p.Flags&FlagSYN == 0 {
		p.Flags |= FlagACK
		p.Ack = c.rcvNxt
	}
	c.stack.send(p)
}

// sentUnsent returns how many queued bytes are already in flight.
func (c *Conn) sentUnsent() (inFlight, unsent int) {
	inFlight = int(c.sndNxt - c.sndUna)
	// The FIN consumes a sequence number but no buffer byte; exclude it.
	if c.finInFlight() {
		inFlight--
	}
	return inFlight, len(c.buf) - inFlight
}

func (c *Conn) finInFlight() bool {
	return (c.state == stFinWait || c.state == stLastAck) && c.sndNxt > c.sndUna+uint32(len(c.buf))
}

// trySend pushes as much data as the congestion and receive windows allow,
// then a FIN if the app has closed and the buffer is empty.
func (c *Conn) trySend() {
	if c.state != stEstablished && c.state != stCloseWait {
		return
	}
	wnd := int(c.cwnd)
	if c.rwnd < wnd {
		wnd = c.rwnd
	}
	inFlight, unsent := c.sentUnsent()
	for unsent > 0 && inFlight < wnd {
		n := unsent
		if n > MSS {
			n = MSS
		}
		if n > wnd-inFlight {
			n = wnd - inFlight
		}
		if n <= 0 {
			break
		}
		off := inFlight
		// Zero-copy: the segment aliases the send buffer. Safe because the
		// buffer's backing array is only ever appended past len (Send) and
		// consumed by forward reslicing (ACKs) — emitted bytes are never
		// overwritten — and every consumer (RLC head copy, wire marshal,
		// receive-side reassembly) copies what it keeps.
		seg := c.buf[off : off+n : off+n]
		seq := c.sndNxt
		c.emit(&Packet{Flags: FlagPSH, Seq: seq, Payload: seg})
		c.sndNxt += uint32(n)
		inFlight += n
		unsent -= n
		if seqLT(seq, c.recover) {
			// Go-back-N retransmission after an RTO rollback.
			c.noteRetx(seq)
		} else if c.sampleSeq == 0 {
			c.sampleSeq = seq + uint32(n)
			c.sampleStart = seq
			c.sampleAt = c.stack.k.Now()
		}
		c.armRTO()
	}
	if c.closeAfter && unsent == 0 && !c.finInFlight() && c.state != stLastAck && c.state != stFinWait {
		// Send FIN.
		if c.state == stCloseWait {
			c.state = stLastAck
		} else {
			c.state = stFinWait
		}
		c.emit(&Packet{Flags: FlagFIN, Seq: c.sndNxt})
		c.sndNxt++
		c.armRTO()
	}
}

func (c *Conn) armRTO() {
	c.rtoTimer.Cancel()
	c.rtoTimer = c.stack.k.After(c.rto, c.onRTO)
}

func (c *Conn) disarmRTO() {
	c.rtoTimer.Cancel()
	c.rtoTimer = simtime.Event{}
}

// onRTO handles a retransmission timeout.
func (c *Conn) onRTO() {
	c.rtoTimer = simtime.Event{}
	if c.state == stDone {
		return
	}
	if c.sndNxt == c.sndUna {
		return // nothing outstanding
	}
	c.stack.o.rto.Inc()
	if tr := c.stack.o.tr; tr != nil {
		tr.Instant(obs.LayerTransport, "tcp:rto", c.obsID,
			obs.Attr{Key: "laddr", Val: c.key.Src.String()},
			obs.Attr{Key: "rto", Val: c.rto.String()})
	}
	switch c.state {
	case stSynSent:
		c.emit(&Packet{Flags: FlagSYN, Seq: c.iss})
		c.noteRetx(c.iss)
	case stSynRcvd:
		c.emit(&Packet{Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcvNxt})
		c.noteRetx(c.iss)
	default:
		// Multiplicative decrease, then go-back-N: roll sndNxt back to
		// sndUna so the whole outstanding window is retransmitted as the
		// window reopens. Without this, a burst of queue-overflow drops
		// (one hole per RTO, exponential backoff) starves the connection.
		flight := float64(c.sndNxt - c.sndUna)
		c.ssthresh = flight / 2
		if c.ssthresh < 2*MSS {
			c.ssthresh = 2 * MSS
		}
		c.cwnd = MSS
		dataInFlight := int(c.sndNxt - c.sndUna)
		if c.finInFlight() {
			dataInFlight--
		}
		if dataInFlight > 0 {
			if seqLT(c.recover, c.sndNxt) {
				c.recover = c.sndNxt
			}
			c.sndNxt = c.sndUna
			c.sampleSeq = 0 // everything outstanding will be retransmitted
			if c.state == stFinWait || c.state == stLastAck {
				// The FIN will be re-sent by trySend after the data drains.
				c.closeAfter = true
				if c.state == stLastAck {
					c.state = stCloseWait
				} else {
					c.state = stEstablished
				}
			}
			c.trySend() // sends one MSS (cwnd was reset)
		} else {
			c.retransmitFirst() // FIN-only retransmission
			c.noteRetx(c.sndNxt - 1)
		}
	}
	c.cancelSampleIfRetransmitted()
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.armRTO()
}

// retransmitFirst resends the earliest unacknowledged segment (or the FIN).
func (c *Conn) retransmitFirst() {
	dataInFlight := int(c.sndNxt - c.sndUna)
	if c.finInFlight() {
		dataInFlight--
	}
	if dataInFlight <= 0 {
		if c.finInFlight() {
			c.emit(&Packet{Flags: FlagFIN, Seq: c.sndNxt - 1})
		}
		return
	}
	n := dataInFlight
	if n > MSS {
		n = MSS
	}
	seg := c.buf[0:n:n] // zero-copy; see trySend
	c.emit(&Packet{Flags: FlagPSH, Seq: c.sndUna, Payload: seg})
}

// input processes an arriving segment.
func (c *Conn) input(p *Packet) {
	if c.state == stDone {
		return
	}
	if p.Flags&FlagRST != 0 {
		c.teardown()
		return
	}
	switch c.state {
	case stSynSent:
		if p.Flags&FlagSYN != 0 && p.Flags&FlagACK != 0 && p.Ack == c.sndNxt {
			c.irs = p.Seq
			c.rcvNxt = p.Seq + 1
			c.sndUna = p.Ack
			c.state = stEstablished
			c.disarmRTO()
			c.rto = initialRTO
			c.emit(&Packet{Flags: 0, Seq: c.sndNxt}) // pure ACK
			c.becomeEstablished()
			c.trySend()
		}
		return
	case stSynRcvd:
		if p.Flags&FlagACK != 0 && p.Ack == c.sndNxt {
			c.sndUna = p.Ack
			c.state = stEstablished
			c.disarmRTO()
			c.rto = initialRTO
			c.becomeEstablished()
			c.trySend()
			// Fall through: the ACK may carry data.
		} else if p.Flags&FlagSYN != 0 {
			// Duplicate SYN: re-ACK.
			c.emit(&Packet{Flags: FlagSYN | FlagACK, Seq: c.iss, Ack: c.rcvNxt})
			return
		} else {
			return
		}
	}

	if p.Flags&FlagACK != 0 {
		c.processAck(p)
	}
	if len(p.Payload) > 0 || p.Flags&FlagFIN != 0 {
		c.processData(p)
	}
}

func (c *Conn) becomeEstablished() {
	c.established = true
	if c.connSpan.Active() {
		elapsed := time.Duration(c.stack.k.Now()) - c.connSpan.StartTime()
		c.stack.o.connectHist.Observe(float64(elapsed) / float64(time.Millisecond))
		c.connSpan.End()
	}
	if c.onEstablished != nil {
		c.onEstablished()
	}
}

// noteRetx records one retransmitted segment on the counters and, when a
// trace is attached, as a transport-layer instant.
func (c *Conn) noteRetx(seq uint32) {
	c.retxCount++
	c.stack.o.retx.Inc()
	if tr := c.stack.o.tr; tr != nil {
		tr.Instant(obs.LayerTransport, "tcp:retx", c.obsID,
			obs.Attr{Key: "laddr", Val: c.key.Src.String()},
			obs.Attr{Key: "seq", Val: strconv.FormatUint(uint64(seq), 10)})
	}
}

// seqLEQ compares sequence numbers with wraparound.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

func (c *Conn) processAck(p *Packet) {
	ack := p.Ack
	if seqLT(c.sndNxt, ack) {
		if seqLT(c.recover, ack) {
			return // acks data we never sent
		}
		// A late ACK for pre-rollback data: fast-forward past the
		// segments the receiver already has.
		c.sndNxt = ack
	}
	if seqLT(c.sndUna, ack) {
		acked := ack - c.sndUna
		// RTT sample (Karn-safe: sampleSeq cleared on retransmit).
		if c.sampleSeq != 0 && !seqLT(ack, c.sampleSeq) {
			c.rttSample(time.Duration(c.stack.k.Now() - c.sampleAt))
			c.sampleSeq = 0
		}
		// Consume buffer, excluding the FIN's phantom byte.
		consume := int(acked)
		if consume > len(c.buf) {
			consume = len(c.buf) // FIN byte acked
		}
		c.buf = c.buf[consume:]
		c.sndUna = ack
		c.dupAcks = 0
		c.rto = c.rtoBase()
		// Congestion window growth.
		if c.cwnd < c.ssthresh {
			c.cwnd += float64(acked) // slow start
			if c.cwnd > c.ssthresh {
				c.cwnd = c.ssthresh
			}
		} else {
			c.cwnd += MSS * MSS / c.cwnd // congestion avoidance
		}
		if c.sndUna == c.sndNxt {
			c.disarmRTO()
			// FIN fully acknowledged?
			if c.state == stFinWait && c.finAcked() {
				// Wait for peer FIN (processData handles it); if it already
				// arrived we are done.
			}
			if c.state == stLastAck && c.finAcked() {
				c.teardown()
				return
			}
		} else {
			c.armRTO()
		}
		c.trySend()
	} else if ack == c.sndUna && len(p.Payload) == 0 && p.Flags&(FlagSYN|FlagFIN) == 0 && c.sndNxt != c.sndUna {
		c.dupAcks++
		if c.dupAcks == dupAckThresh {
			// Fast retransmit + simplified fast recovery.
			flight := float64(c.sndNxt - c.sndUna)
			c.ssthresh = flight / 2
			if c.ssthresh < 2*MSS {
				c.ssthresh = 2 * MSS
			}
			c.cwnd = c.ssthresh
			c.retransmitFirst()
			c.noteRetx(c.sndUna)
			c.cancelSampleIfRetransmitted()
			c.armRTO()
		}
	}
}

// cancelSampleIfRetransmitted applies Karn's rule precisely: the pending
// RTT sample is invalidated only when the sampled segment itself has been
// retransmitted (retransmissions always start at sndUna, so any sample
// whose segment begins at or before sndUna is tainted). Samples of later,
// never-retransmitted segments stay valid — cancelling them too would
// starve SRTT of updates under repeated spurious timeouts and lock the
// connection into an RTO storm when path delay grows (deep shaper queues).
func (c *Conn) cancelSampleIfRetransmitted() {
	if c.sampleSeq != 0 && !seqLT(c.sndUna, c.sampleStart) {
		c.sampleSeq = 0
	}
}

// finAcked reports whether our FIN has been acknowledged.
func (c *Conn) finAcked() bool {
	return len(c.buf) == 0 && c.sndUna == c.sndNxt
}

// rtoBase computes the RTO from smoothed RTT estimates.
func (c *Conn) rtoBase() time.Duration {
	if c.srtt == 0 {
		return initialRTO
	}
	rto := c.srtt + 4*c.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}

func (c *Conn) rttSample(rtt time.Duration) {
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
}

// SRTT exposes the smoothed RTT estimate (zero before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

func (c *Conn) processData(p *Packet) {
	seq := p.Seq
	payload := p.Payload
	fin := p.Flags&FlagFIN != 0

	// Trim already-received prefix.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if int(skip) >= len(payload) {
			if !fin || seqLT(seq+uint32(len(payload)), c.rcvNxt) {
				// Entirely duplicate: re-ACK.
				c.emit(&Packet{Seq: c.sndNxt})
				return
			}
			payload = nil
		} else {
			payload = payload[skip:]
		}
		seq = c.rcvNxt
	}

	if seq == c.rcvNxt {
		// In-order: deliver, then drain any contiguous out-of-order data.
		if len(payload) > 0 {
			c.rcvNxt += uint32(len(payload))
			c.deliver(payload)
		}
		// Drain buffered out-of-order data. Retransmitted segments may not
		// align with the original boundaries, so accept any buffered
		// segment that starts at or before rcvNxt and extends past it.
		for {
			advanced := false
			for start, data := range c.ooo {
				if seqLT(c.rcvNxt, start) {
					continue // still a gap before this segment
				}
				end := start + uint32(len(data))
				if seqLT(c.rcvNxt, end) {
					chunk := data[c.rcvNxt-start:]
					c.rcvNxt = end
					c.deliver(chunk)
				}
				delete(c.ooo, start)
				advanced = true
			}
			if !advanced {
				break
			}
		}
		if fin {
			c.rcvNxt++ // FIN consumes a sequence number
			c.handlePeerFin()
		}
		c.emit(&Packet{Seq: c.sndNxt}) // ACK
	} else {
		// Out of order: buffer and send a duplicate ACK.
		if len(payload) > 0 {
			if _, ok := c.ooo[seq]; !ok {
				c.ooo[seq] = append([]byte(nil), payload...)
			}
		}
		if fin {
			// Rare: FIN ahead of missing data. Ignore; peer will retransmit.
			_ = fin
		}
		c.emit(&Packet{Seq: c.sndNxt}) // dup ACK
	}
}

func (c *Conn) deliver(data []byte) {
	if c.onRecv != nil {
		c.onRecv(data)
	}
}

func (c *Conn) handlePeerFin() {
	switch c.state {
	case stEstablished:
		c.state = stCloseWait
	case stFinWait:
		// Both directions closing. If our FIN is acked we are done;
		// otherwise teardown when that ACK arrives (checked here for the
		// simultaneous case after ack processing).
		if c.finAcked() {
			if c.onPeerClose != nil {
				c.onPeerClose()
			}
			c.teardown()
			return
		}
		c.state = stLastAck // reuse: waiting only for our FIN's ACK
	}
	if c.onPeerClose != nil {
		c.onPeerClose()
	}
}
