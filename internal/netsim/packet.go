// Package netsim simulates the device-visible IP network: TCP endpoints with
// congestion control and retransmission, UDP-based DNS, token-bucket traffic
// shaping and policing (the carrier throttling mechanisms of §7.5), and the
// plumbing that routes device traffic through a cellular bearer to content
// servers.
//
// Packets carry real IPv4/TCP/UDP wire bytes: the pcap capture and the RLC
// segmentation both operate on genuine header+payload serializations, so the
// analyzer's flow extraction and IP-to-RLC long-jump mapping work on the
// same information a real tcpdump/QxDM deployment would see.
package netsim

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Proto is the IP protocol number of a simulated packet.
type Proto uint8

// Wire protocol numbers (the real IANA values, so pcap output is standard).
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	}
	return fmt.Sprintf("Proto(%d)", uint8(p))
}

// Endpoint is one side of a flow: an IPv4 address and port.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// FlowKey identifies a flow by its 4-tuple, direction-sensitive.
type FlowKey struct {
	Src, Dst Endpoint
	Proto    Proto
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey { return FlowKey{Src: k.Dst, Dst: k.Src, Proto: k.Proto} }

// Canonical returns a direction-insensitive key (smaller endpoint first) for
// grouping both directions of a conversation.
func (k FlowKey) Canonical() FlowKey {
	a, b := k.Src, k.Dst
	if less(b, a) {
		a, b = b, a
	}
	return FlowKey{Src: a, Dst: b, Proto: k.Proto}
}

func less(a, b Endpoint) bool {
	if c := a.Addr.Compare(b.Addr); c != 0 {
		return c < 0
	}
	return a.Port < b.Port
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s > %s", k.Proto, k.Src, k.Dst)
}

// TCP header flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Packet is one simulated IP datagram. TCP/UDP specific fields are only
// meaningful for the corresponding Proto.
type Packet struct {
	Src, Dst Endpoint
	Proto    Proto

	// TCP fields.
	Seq, Ack uint32
	Flags    uint8
	Window   uint16

	// Application payload (TCP segment data or UDP datagram body).
	Payload []byte
}

// Key returns the packet's flow key.
func (p *Packet) Key() FlowKey { return FlowKey{Src: p.Src, Dst: p.Dst, Proto: p.Proto} }

const (
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
)

// WireLen returns the packet's on-the-wire size in bytes.
func (p *Packet) WireLen() int {
	switch p.Proto {
	case ProtoTCP:
		return ipv4HeaderLen + tcpHeaderLen + len(p.Payload)
	case ProtoUDP:
		return ipv4HeaderLen + udpHeaderLen + len(p.Payload)
	}
	return ipv4HeaderLen + len(p.Payload)
}

// Marshal serializes the packet as a real IPv4+TCP/UDP wire frame. The IP
// header checksum is computed; transport checksums are zero (tcpdump accepts
// that, and nothing in the simulation corrupts bytes).
func (p *Packet) Marshal() []byte { return p.MarshalAppend(nil) }

// MarshalAppend appends the packet's wire frame to dst (which may be nil or
// a recycled buffer resliced to zero length) and returns the extended slice.
func (p *Packet) MarshalAppend(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, p.WireLen())...)
	buf := dst[start:]
	total := len(buf)
	// IPv4 header.
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:], uint16(total))
	buf[8] = 64 // TTL
	buf[9] = uint8(p.Proto)
	srcA := p.Src.Addr.As4()
	dstA := p.Dst.Addr.As4()
	copy(buf[12:16], srcA[:])
	copy(buf[16:20], dstA[:])
	binary.BigEndian.PutUint16(buf[10:], ipChecksum(buf[:ipv4HeaderLen]))

	switch p.Proto {
	case ProtoTCP:
		t := buf[ipv4HeaderLen:]
		binary.BigEndian.PutUint16(t[0:], p.Src.Port)
		binary.BigEndian.PutUint16(t[2:], p.Dst.Port)
		binary.BigEndian.PutUint32(t[4:], p.Seq)
		binary.BigEndian.PutUint32(t[8:], p.Ack)
		t[12] = (tcpHeaderLen / 4) << 4 // data offset
		t[13] = p.Flags
		binary.BigEndian.PutUint16(t[14:], p.Window)
		copy(t[tcpHeaderLen:], p.Payload)
	case ProtoUDP:
		u := buf[ipv4HeaderLen:]
		binary.BigEndian.PutUint16(u[0:], p.Src.Port)
		binary.BigEndian.PutUint16(u[2:], p.Dst.Port)
		binary.BigEndian.PutUint16(u[4:], uint16(udpHeaderLen+len(p.Payload)))
		copy(u[udpHeaderLen:], p.Payload)
	}
	return dst
}

// Unmarshal parses a wire frame produced by Marshal (or any plain
// IPv4+TCP/UDP frame without IP options).
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < ipv4HeaderLen {
		return nil, fmt.Errorf("netsim: frame too short (%d bytes)", len(buf))
	}
	if buf[0]>>4 != 4 {
		return nil, fmt.Errorf("netsim: not IPv4 (version %d)", buf[0]>>4)
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(buf) < ihl {
		return nil, fmt.Errorf("netsim: bad IHL %d", ihl)
	}
	total := int(binary.BigEndian.Uint16(buf[2:]))
	if total > len(buf) {
		return nil, fmt.Errorf("netsim: truncated frame: total %d > %d", total, len(buf))
	}
	p := &Packet{Proto: Proto(buf[9])}
	p.Src.Addr = netip.AddrFrom4([4]byte(buf[12:16]))
	p.Dst.Addr = netip.AddrFrom4([4]byte(buf[16:20]))
	body := buf[ihl:total]
	switch p.Proto {
	case ProtoTCP:
		if len(body) < tcpHeaderLen {
			return nil, fmt.Errorf("netsim: short TCP header")
		}
		p.Src.Port = binary.BigEndian.Uint16(body[0:])
		p.Dst.Port = binary.BigEndian.Uint16(body[2:])
		p.Seq = binary.BigEndian.Uint32(body[4:])
		p.Ack = binary.BigEndian.Uint32(body[8:])
		off := int(body[12]>>4) * 4
		if off < tcpHeaderLen || off > len(body) {
			return nil, fmt.Errorf("netsim: bad TCP data offset %d", off)
		}
		p.Flags = body[13]
		p.Window = binary.BigEndian.Uint16(body[14:])
		p.Payload = append([]byte(nil), body[off:]...)
	case ProtoUDP:
		if len(body) < udpHeaderLen {
			return nil, fmt.Errorf("netsim: short UDP header")
		}
		p.Src.Port = binary.BigEndian.Uint16(body[0:])
		p.Dst.Port = binary.BigEndian.Uint16(body[2:])
		p.Payload = append([]byte(nil), body[udpHeaderLen:]...)
	default:
		p.Payload = append([]byte(nil), body...)
	}
	return p, nil
}

// ipChecksum computes the standard Internet checksum over hdr with its
// checksum field zeroed.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Clone returns a deep copy of the packet.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}
