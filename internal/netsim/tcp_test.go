package netsim

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

// pipe wires two stacks with a fixed one-way delay and an optional
// per-packet drop function, bypassing the radio bearer so TCP logic is
// tested in isolation.
type pipe struct {
	k     *simtime.Kernel
	a, b  *Stack
	delay time.Duration
	drop  func(p *Packet) bool
	sent  int
}

func newPipe(k *simtime.Kernel, delay time.Duration) *pipe {
	p := &pipe{
		k:     k,
		a:     NewStack(k, netip.MustParseAddr("10.0.0.1")),
		b:     NewStack(k, netip.MustParseAddr("10.0.0.2")),
		delay: delay,
	}
	p.a.SetOutput(func(pkt *Packet) { p.forward(pkt, p.b) })
	p.b.SetOutput(func(pkt *Packet) { p.forward(pkt, p.a) })
	return p
}

func (p *pipe) forward(pkt *Packet, to *Stack) {
	p.sent++
	if p.drop != nil && p.drop(pkt) {
		return
	}
	p.k.After(p.delay, func() { to.Input(pkt) })
}

func TestTCPHandshake(t *testing.T) {
	k := simtime.NewKernel(1)
	p := newPipe(k, 10*time.Millisecond)
	var clientUp, serverUp bool
	p.b.Listen(80, func(c *Conn) { c.OnEstablished(func() { serverUp = true }) })
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.OnEstablished(func() { clientUp = true })
	k.Run()
	if !clientUp || !serverUp {
		t.Fatalf("handshake incomplete: client=%v server=%v", clientUp, serverUp)
	}
	// 3-way handshake over 10ms one-way: established at ~20ms (client).
	if got := c.SRTT(); got != 0 {
		t.Fatalf("unexpected RTT sample before data: %v", got)
	}
}

func TestTCPDataTransferIntegrity(t *testing.T) {
	k := simtime.NewKernel(2)
	p := newPipe(k, 5*time.Millisecond)
	want := make([]byte, 100_000)
	rng := rand.New(rand.NewSource(9))
	rng.Read(want)
	var got []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(want)
	k.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(want))
	}
	if c.Retransmits() != 0 {
		t.Fatalf("retransmits on a lossless pipe: %d", c.Retransmits())
	}
}

func TestTCPBidirectional(t *testing.T) {
	k := simtime.NewKernel(3)
	p := newPipe(k, 5*time.Millisecond)
	var atServer, atClient []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) {
			atServer = append(atServer, d...)
			if len(atServer) == 5000 {
				c.Send(bytes.Repeat([]byte{0xBB}, 20000))
			}
		})
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.OnReceive(func(d []byte) { atClient = append(atClient, d...) })
	c.Send(bytes.Repeat([]byte{0xAA}, 5000))
	k.Run()
	if len(atServer) != 5000 || len(atClient) != 20000 {
		t.Fatalf("transfer incomplete: server=%d client=%d", len(atServer), len(atClient))
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	k := simtime.NewKernel(4)
	p := newPipe(k, 20*time.Millisecond)
	rng := rand.New(rand.NewSource(12))
	p.drop = func(pkt *Packet) bool { return rng.Float64() < 0.05 }
	want := make([]byte, 500_000)
	rand.New(rand.NewSource(1)).Read(want)
	var got []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(want)
	k.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("lossy stream corrupted: got %d bytes, want %d", len(got), len(want))
	}
	if c.Retransmits() == 0 {
		t.Fatal("no retransmissions under 5% loss")
	}
}

func TestTCPCloseHandshake(t *testing.T) {
	k := simtime.NewKernel(5)
	p := newPipe(k, 5*time.Millisecond)
	var serverGot []byte
	var serverPeerClosed, clientClosed, serverClosed bool
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { serverGot = append(serverGot, d...) })
		c.OnPeerClose(func() {
			serverPeerClosed = true
			c.Close()
		})
		c.OnClose(func() { serverClosed = true })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.OnClose(func() { clientClosed = true })
	c.Send([]byte("goodbye"))
	c.Close()
	k.Run()
	if string(serverGot) != "goodbye" {
		t.Fatalf("server got %q", serverGot)
	}
	if !serverPeerClosed || !clientClosed || !serverClosed {
		t.Fatalf("teardown incomplete: peerClose=%v client=%v server=%v",
			serverPeerClosed, clientClosed, serverClosed)
	}
}

func TestTCPCloseFlushesBufferedData(t *testing.T) {
	k := simtime.NewKernel(6)
	p := newPipe(k, 5*time.Millisecond)
	var got []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(make([]byte, 200_000)) // far more than the initial window
	c.Close()                     // FIN must wait for the stream to drain
	k.Run()
	if len(got) != 200_000 {
		t.Fatalf("close lost data: delivered %d of 200000", len(got))
	}
}

func TestTCPRSTOnNoListener(t *testing.T) {
	k := simtime.NewKernel(7)
	p := newPipe(k, 5*time.Millisecond)
	closed := false
	c := p.a.Dial(Endpoint{p.b.Addr(), 9999}) // nothing listening
	c.OnClose(func() { closed = true })
	k.Run()
	if !closed {
		t.Fatal("connection to closed port did not abort")
	}
}

func TestTCPAbortSendsRST(t *testing.T) {
	k := simtime.NewKernel(8)
	p := newPipe(k, 5*time.Millisecond)
	var serverConn *Conn
	serverClosed := false
	p.b.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnClose(func() { serverClosed = true })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	k.Run()
	c.Abort()
	k.Run()
	if serverConn == nil || !serverClosed {
		t.Fatal("RST did not tear down the server side")
	}
}

func TestTCPRTTEstimate(t *testing.T) {
	k := simtime.NewKernel(9)
	p := newPipe(k, 50*time.Millisecond)
	p.b.Listen(80, func(c *Conn) {})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(make([]byte, 1000))
	k.Run()
	if srtt := c.SRTT(); srtt < 90*time.Millisecond || srtt > 120*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~100ms", srtt)
	}
}

func TestTCPSlowStartGrowth(t *testing.T) {
	k := simtime.NewKernel(10)
	p := newPipe(k, 25*time.Millisecond)
	var got int
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got += len(d) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	initial := c.cwnd
	c.Send(make([]byte, 300_000))
	k.Run()
	if got != 300_000 {
		t.Fatalf("delivered %d", got)
	}
	if c.cwnd <= initial {
		t.Fatalf("cwnd did not grow: %v -> %v", initial, c.cwnd)
	}
}

func TestTCPThroughputReasonable(t *testing.T) {
	// 10 MB over a 10ms-RTT lossless pipe should finish in a few seconds of
	// virtual time (not bounded by pathological window behaviour).
	k := simtime.NewKernel(11)
	p := newPipe(k, 5*time.Millisecond)
	total := 10 << 20
	var got int
	var doneAt simtime.Time
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) {
			got += len(d)
			if got == total {
				doneAt = k.Now()
			}
		})
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send(make([]byte, total))
	k.Run()
	if got != total {
		t.Fatalf("delivered %d of %d", got, total)
	}
	if doneAt > 10*time.Second {
		t.Fatalf("10MB took %v, suspiciously slow", doneAt)
	}
}

func TestTCPSendAfterCloseIgnored(t *testing.T) {
	k := simtime.NewKernel(12)
	p := newPipe(k, 5*time.Millisecond)
	var got []byte
	p.b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send([]byte("ok"))
	c.Close()
	c.Send([]byte("dropped"))
	k.Run()
	if string(got) != "ok" {
		t.Fatalf("got %q, want \"ok\"", got)
	}
}

// Property: any payload size and loss rate up to 20% still delivers the
// exact byte stream.
func TestQuickTCPDeliveryUnderLoss(t *testing.T) {
	f := func(seed int64, sizeK uint8, lossPct uint8) bool {
		size := (int(sizeK%60) + 1) * 1000
		loss := float64(lossPct%20) / 100
		k := simtime.NewKernel(seed)
		p := newPipe(k, 15*time.Millisecond)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		p.drop = func(pkt *Packet) bool { return rng.Float64() < loss }
		want := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(want)
		var got []byte
		p.b.Listen(80, func(c *Conn) {
			c.OnReceive(func(d []byte) { got = append(got, d...) })
		})
		c := p.a.Dial(Endpoint{p.b.Addr(), 80})
		c.Send(want)
		k.Run()
		return bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureSeesBothDirections(t *testing.T) {
	k := simtime.NewKernel(13)
	p := newPipe(k, 5*time.Millisecond)
	var in, out int
	p.a.AttachCapture(func(at simtime.Time, pkt *Packet, inbound bool) {
		if inbound {
			in++
		} else {
			out++
		}
	})
	p.b.Listen(80, func(c *Conn) {})
	c := p.a.Dial(Endpoint{p.b.Addr(), 80})
	c.Send([]byte("x"))
	k.Run()
	if in == 0 || out == 0 {
		t.Fatalf("capture missed packets: in=%d out=%d", in, out)
	}
}
