package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/radio"
	"repro/internal/simtime"
)

var (
	deviceAddr = netip.MustParseAddr("10.20.0.2")
	serverAddr = netip.MustParseAddr("31.13.70.36")
	dnsAddr    = netip.MustParseAddr("8.8.8.8")
)

func lteNet(seed int64) (*simtime.Kernel, *Network) {
	k := simtime.NewKernel(seed)
	n := NewNetwork(k, radio.ProfileLTE(), deviceAddr, 20*time.Millisecond)
	return k, n
}

func TestNetworkEndToEndTransfer(t *testing.T) {
	k, n := lteNet(1)
	srv := n.MustAddServer(serverAddr)
	var got []byte
	srv.Listen(443, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	want := bytes.Repeat([]byte{0xC3}, 50_000)
	c := n.Device.Dial(Endpoint{serverAddr, 443})
	c.Send(want)
	k.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(want))
	}
}

func TestNetworkIncludesPromotionDelay(t *testing.T) {
	// First byte over an idle LTE radio pays the 260ms promotion.
	k, n := lteNet(2)
	srv := n.MustAddServer(serverAddr)
	var estAt simtime.Time = -1
	srv.Listen(443, func(c *Conn) {})
	c := n.Device.Dial(Endpoint{serverAddr, 443})
	c.OnEstablished(func() { estAt = k.Now() })
	k.RunUntil(5 * time.Second)
	if estAt < 0 {
		t.Fatal("handshake never completed")
	}
	if estAt < 260*time.Millisecond {
		t.Fatalf("established at %v, before promotion could finish", estAt)
	}
	if estAt > 2*time.Second {
		t.Fatalf("established at %v, too slow", estAt)
	}
}

func TestNetwork3GSlowerThanLTE(t *testing.T) {
	transfer := func(prof *radio.Profile) simtime.Time {
		k := simtime.NewKernel(3)
		n := NewNetwork(k, prof, deviceAddr, 20*time.Millisecond)
		srv := n.MustAddServer(serverAddr)
		var doneAt simtime.Time
		total := 0
		srv.Listen(443, func(c *Conn) {
			c.OnReceive(func(d []byte) {
				total += len(d)
				if total == 200_000 {
					doneAt = k.Now()
				}
			})
		})
		c := n.Device.Dial(Endpoint{serverAddr, 443})
		c.Send(make([]byte, 200_000))
		k.RunUntil(5 * time.Minute)
		if doneAt == 0 {
			t.Fatal("transfer incomplete")
		}
		return doneAt
	}
	t3g, tlte := transfer(radio.Profile3G()), transfer(radio.ProfileLTE())
	if t3g <= tlte {
		t.Fatalf("3G upload (%v) not slower than LTE (%v)", t3g, tlte)
	}
}

func TestDNSResolutionOverNetwork(t *testing.T) {
	k, n := lteNet(4)
	dns := n.MustAddServer(dnsAddr)
	AttachDNSServer(dns, map[string]netip.Addr{"api.facebook.com": serverAddr})
	r := NewResolver(n.Device, Endpoint{dnsAddr, DNSPort})
	var got netip.Addr
	var ok bool
	r.Resolve("api.facebook.com", func(a netip.Addr, k2 bool) { got, ok = a, k2 })
	k.Run()
	if !ok || got != serverAddr {
		t.Fatalf("resolve failed: %v %v", got, ok)
	}
}

func TestDNSNXDomain(t *testing.T) {
	k, n := lteNet(5)
	dns := n.MustAddServer(dnsAddr)
	AttachDNSServer(dns, nil)
	r := NewResolver(n.Device, Endpoint{dnsAddr, DNSPort})
	ok := true
	ran := false
	r.Resolve("missing.example", func(a netip.Addr, k2 bool) { ok, ran = k2, true })
	k.Run()
	if !ran || ok {
		t.Fatalf("NXDOMAIN not reported: ran=%v ok=%v", ran, ok)
	}
}

func TestDNSCacheAvoidsTraffic(t *testing.T) {
	k, n := lteNet(6)
	dns := n.MustAddServer(dnsAddr)
	AttachDNSServer(dns, map[string]netip.Addr{"a.example": serverAddr})
	r := NewResolver(n.Device, Endpoint{dnsAddr, DNSPort})
	queries := 0
	n.Device.AttachCapture(func(at simtime.Time, p *Packet, inbound bool) {
		if !inbound && p.Proto == ProtoUDP && p.Dst.Port == DNSPort {
			queries++
		}
	})
	r.Resolve("a.example", func(netip.Addr, bool) {
		r.Resolve("a.example", func(netip.Addr, bool) {})
	})
	k.Run()
	if queries != 1 {
		t.Fatalf("queries = %d, want 1 (second resolve cached)", queries)
	}
}

func TestPolicerDropsExcess(t *testing.T) {
	k := simtime.NewKernel(7)
	pol := NewPolicer(k, 100e3, 10_000) // 100 kbps, 10KB burst
	delivered, dropped := 0, 0
	// Offer 100 x 1500B instantly: burst allows ~6, the rest drop.
	for i := 0; i < 100; i++ {
		pol.Enqueue(1500, func() { delivered++ }, func() { dropped++ })
	}
	if delivered < 5 || delivered > 8 {
		t.Fatalf("delivered = %d, want ~6 from the burst", delivered)
	}
	if dropped != 100-delivered || pol.Drops != dropped {
		t.Fatalf("dropped = %d (counter %d)", dropped, pol.Drops)
	}
	// After a second the bucket refills, but only up to its 10KB capacity:
	// 6 more full-size packets.
	k.RunUntil(time.Second)
	before := delivered
	for i := 0; i < 20; i++ {
		pol.Enqueue(1500, func() { delivered++ }, nil)
	}
	if gained := delivered - before; gained < 6 || gained > 7 {
		t.Fatalf("after 1s refill delivered %d more, want ~6 (capacity-limited)", gained)
	}
}

func TestShaperDelaysInsteadOfDropping(t *testing.T) {
	k := simtime.NewKernel(8)
	sh := NewShaper(k, 100e3, 10_000, 1<<20)
	var times []simtime.Time
	for i := 0; i < 20; i++ {
		sh.Enqueue(1500, func() { times = append(times, k.Now()) }, nil)
	}
	k.Run()
	if len(times) != 20 {
		t.Fatalf("shaper lost packets: %d of 20 (drops=%d)", len(times), sh.Drops)
	}
	// Packets beyond the burst are spaced at the token rate: 1500B at
	// 100kbps = 120ms apart.
	last := times[len(times)-1]
	if last < time.Second {
		t.Fatalf("last packet released at %v, expected >1s of shaping delay", last)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("shaper reordered packets")
		}
	}
}

func TestShaperTailDrop(t *testing.T) {
	k := simtime.NewKernel(9)
	sh := NewShaper(k, 100e3, 1000, 5000) // tiny queue
	delivered, dropped := 0, 0
	for i := 0; i < 50; i++ {
		sh.Enqueue(1500, func() { delivered++ }, func() { dropped++ })
	}
	k.Run()
	if dropped == 0 {
		t.Fatal("full shaper queue did not tail-drop")
	}
	if delivered+dropped != 50 {
		t.Fatalf("accounting: %d + %d != 50", delivered, dropped)
	}
}

func TestThrottledDownlinkSlowsTransfer(t *testing.T) {
	run := func(throttle bool) simtime.Time {
		k := simtime.NewKernel(10)
		n := NewNetwork(k, radio.ProfileLTE(), deviceAddr, 20*time.Millisecond)
		if throttle {
			n.DLQdisc = NewPolicer(k, 245e3, 32_000)
		}
		srv := n.MustAddServer(serverAddr)
		srv.Listen(80, func(c *Conn) {
			c.OnReceive(func(d []byte) { c.Send(make([]byte, 300_000)) })
		})
		var doneAt simtime.Time
		got := 0
		c := n.Device.Dial(Endpoint{serverAddr, 80})
		c.OnReceive(func(d []byte) {
			got += len(d)
			if got == 300_000 {
				doneAt = k.Now()
			}
		})
		c.Send([]byte("GET"))
		k.RunUntil(5 * time.Minute)
		if doneAt == 0 {
			t.Fatalf("transfer (throttle=%v) incomplete: %d bytes", throttle, got)
		}
		return doneAt
	}
	free, capped := run(false), run(true)
	if capped < 5*free {
		t.Fatalf("throttled transfer (%v) not dramatically slower than unthrottled (%v)", capped, free)
	}
	// 300KB at 245kbps is ~10s minimum.
	if capped < 8*time.Second {
		t.Fatalf("throttled transfer finished in %v, faster than the cap allows", capped)
	}
}

func TestDuplicateServerError(t *testing.T) {
	_, n := lteNet(11)
	if _, err := n.AddServer(serverAddr); err != nil {
		t.Fatalf("first AddServer: %v", err)
	}
	if _, err := n.AddServer(serverAddr); err == nil {
		t.Fatal("duplicate AddServer did not return an error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MustAddServer did not panic")
		}
	}()
	n.MustAddServer(serverAddr)
}

func TestServerToServerRouting(t *testing.T) {
	k, n := lteNet(12)
	a := n.MustAddServer(netip.MustParseAddr("1.1.1.1"))
	b := n.MustAddServer(netip.MustParseAddr("2.2.2.2"))
	var got []byte
	b.Listen(80, func(c *Conn) {
		c.OnReceive(func(d []byte) { got = append(got, d...) })
	})
	c := a.Dial(Endpoint{netip.MustParseAddr("2.2.2.2"), 80})
	c.Send([]byte("inter-server"))
	k.Run()
	if string(got) != "inter-server" {
		t.Fatalf("got %q", got)
	}
}
