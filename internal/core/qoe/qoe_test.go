package qoe

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestBehaviorEntryRawLatency(t *testing.T) {
	e := BehaviorEntry{Start: simtime.Time(time.Second), End: simtime.Time(3 * time.Second)}
	if e.RawLatency() != 2*time.Second {
		t.Fatalf("raw = %v", e.RawLatency())
	}
}

func TestStartKindStrings(t *testing.T) {
	if UserTriggered.String() != "user-triggered" || AppTriggered.String() != "app-triggered" {
		t.Fatal("kind strings wrong")
	}
}

func TestBehaviorLogByAction(t *testing.T) {
	l := &BehaviorLog{}
	l.Add(BehaviorEntry{Action: "a", Note: "1"})
	l.Add(BehaviorEntry{Action: "b", Note: "2"})
	l.Add(BehaviorEntry{Action: "a", Note: "3"})
	got := l.ByAction("a")
	if len(got) != 2 || got[0].Note != "1" || got[1].Note != "3" {
		t.Fatalf("ByAction wrong: %+v", got)
	}
	if len(l.ByAction("c")) != 0 {
		t.Fatal("invented entries")
	}
	if len(l.Entries) != 3 {
		t.Fatal("Add lost entries")
	}
}
