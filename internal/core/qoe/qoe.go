// Package qoe defines the shared vocabulary between QoE Doctor's two halves:
// the online QoE-aware UI controller (which produces an AppBehaviorLog plus
// tcpdump and QxDM logs) and the offline multi-layer analyzer (which turns
// them into QoE metrics). See §3.2 of the paper.
package qoe

import (
	"net/netip"
	"time"

	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// StartKind distinguishes how a waiting period began (§4.1): triggered by
// the user (the controller logs the injection time) or by the app (the
// controller detects a waiting indicator by parsing the tree, so the start
// timestamp carries the same parsing delay as the end).
type StartKind int

const (
	UserTriggered StartKind = iota
	AppTriggered
)

func (s StartKind) String() string {
	if s == UserTriggered {
		return "user-triggered"
	}
	return "app-triggered"
}

// BehaviorEntry is one replayed user interaction and its raw measurement.
type BehaviorEntry struct {
	App    string // "facebook", "youtube", "browser"
	Action string // "upload_post", "pull_to_update", "initial_loading", ...
	Kind   StartKind
	// Start and End are the raw logged timestamps (t_m for parse-observed
	// events). The analyzer applies the §5.1 calibration.
	Start, End simtime.Time
	// Observed is false when the wait timed out.
	Observed bool
	// ParseTime is the per-parse cost at measurement time, needed for
	// calibration.
	ParseTime time.Duration
	// Note carries free-form context (video id, URL, post kind).
	Note string
}

// RawLatency is the uncalibrated End-Start.
func (e BehaviorEntry) RawLatency() time.Duration {
	return time.Duration(e.End - e.Start)
}

// BehaviorLog is the controller's AppBehaviorLog (§4.3.1).
type BehaviorLog struct {
	Entries []BehaviorEntry
}

// Add appends an entry.
func (l *BehaviorLog) Add(e BehaviorEntry) { l.Entries = append(l.Entries, e) }

// ByAction returns entries for one action name.
func (l *BehaviorLog) ByAction(action string) []BehaviorEntry {
	var out []BehaviorEntry
	for _, e := range l.Entries {
		if e.Action == action {
			out = append(out, e)
		}
	}
	return out
}

// Session bundles everything one replay run collected, the input to the
// multi-layer analyzer.
type Session struct {
	Profile    *radio.Profile
	DeviceAddr netip.Addr
	Behavior   *BehaviorLog
	Packets    []pcap.Record
	Radio      *qxdm.Log
	// Trace, when present, holds the run's ground-truth cross-layer trace
	// (spans and instants from every layer). The analyzer cross-checks its
	// pcap/QxDM-derived view against it.
	Trace []obs.TraceEvent
}

// Frame is one recorded screen sample: how visually complete the content on
// screen was at a draw commit, in [0, 1]. Frames feed the analyzer's Speed
// Index computation (the §4.2.3 planned extension: screen-video frame
// analysis instead of progress-bar heuristics).
type Frame struct {
	At       simtime.Time
	Complete float64
}
