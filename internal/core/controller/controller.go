// Package controller implements QoE Doctor's QoE-aware UI controller (§4):
// it replays user behaviour on an app through the instrumentation API using
// the see-interact-wait paradigm, identifies views by signature (class + ID
// + description, never coordinates), and logs the start/end timestamps of
// every waiting period into an AppBehaviorLog.
//
// The controller is app-agnostic: everything it knows about Facebook,
// YouTube, and the browsers is expressed as view signatures and waiting
// conditions in the driver types (Table 1 of the paper).
package controller

import (
	"time"

	"repro/internal/core/qoe"
	"repro/internal/simtime"
	"repro/internal/uisim"
)

// DefaultTimeout bounds any single wait.
const DefaultTimeout = 10 * time.Minute

// Controller drives one app's screen.
type Controller struct {
	k   *simtime.Kernel
	in  *uisim.Instrumentation
	log *qoe.BehaviorLog

	// Timeout bounds each wait (DefaultTimeout when zero).
	Timeout time.Duration
}

// New creates a controller over an app screen, logging into log.
func New(k *simtime.Kernel, screen *uisim.Screen, log *qoe.BehaviorLog) *Controller {
	return &Controller{k: k, in: uisim.NewInstrumentation(k, screen), log: log}
}

// Instrumentation exposes the underlying instrumentation (CPU accounting,
// direct interaction in tests).
func (c *Controller) Instrumentation() *uisim.Instrumentation { return c.in }

// Log returns the behavior log.
func (c *Controller) Log() *qoe.BehaviorLog { return c.log }

func (c *Controller) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// Cond is a waiting condition over a parsed layout-tree snapshot.
type Cond func(*uisim.Snapshot) bool

// VisibleCond waits for a view matching sig to be shown.
func VisibleCond(sig uisim.Signature) Cond {
	return func(s *uisim.Snapshot) bool { return s.VisibleMatch(sig) }
}

// GoneCond waits for no shown view to match sig.
func GoneCond(sig uisim.Signature) Cond {
	return func(s *uisim.Snapshot) bool { return !s.VisibleMatch(sig) }
}

// TextCond waits for any shown view to contain substr.
func TextCond(substr string) Cond {
	return func(s *uisim.Snapshot) bool { return s.ContainsText(substr) }
}

// interactFn performs the user interaction and returns the injection time.
type interactFn func() (simtime.Time, error)

// UserWait runs a user-triggered wait: interact, then poll until cond. The
// logged Start is the interaction injection time; End is the observing
// parse's completion time (t_m).
func (c *Controller) UserWait(app, action, note string, interact interactFn, cond Cond, done func(qoe.BehaviorEntry)) error {
	start, err := interact()
	if err != nil {
		return err
	}
	parseTime := c.in.ParseTime()
	c.in.WaitUntil(cond, c.timeout(), func(r uisim.WaitResult) {
		e := qoe.BehaviorEntry{
			App: app, Action: action, Kind: qoe.UserTriggered,
			Start: start, End: r.At, Observed: r.Observed,
			ParseTime: parseTime, Note: note,
		}
		c.log.Add(e)
		if done != nil {
			done(e)
		}
	})
	return nil
}

// AppWait runs an app-triggered wait: poll until startCond (e.g. a progress
// bar appears), then until endCond (it disappears). Both timestamps carry
// one parsing delay, so the calibration subtracts only t_parsing (§5.1).
func (c *Controller) AppWait(app, action, note string, startCond, endCond Cond, done func(qoe.BehaviorEntry)) {
	parseTime := c.in.ParseTime()
	c.in.WaitUntil(startCond, c.timeout(), func(rs uisim.WaitResult) {
		if !rs.Observed {
			e := qoe.BehaviorEntry{
				App: app, Action: action, Kind: qoe.AppTriggered,
				Start: rs.At, End: rs.At, Observed: false,
				ParseTime: parseTime, Note: note,
			}
			c.log.Add(e)
			if done != nil {
				done(e)
			}
			return
		}
		c.in.WaitUntil(endCond, c.timeout(), func(re uisim.WaitResult) {
			e := qoe.BehaviorEntry{
				App: app, Action: action, Kind: qoe.AppTriggered,
				Start: rs.At, End: re.At, Observed: re.Observed,
				ParseTime: parseTime, Note: note,
			}
			c.log.Add(e)
			if done != nil {
				done(e)
			}
		})
	})
}

// FrameRecorder captures visual-completeness frames at every screen draw —
// the simulation's version of the 60 fps screen recording the paper plans
// to analyze with the Speed Index metric (§4.2.3). The completeness
// function is app-specific (e.g. browser paint progress).
type FrameRecorder struct {
	frames []qoe.Frame
	active bool
}

// NewFrameRecorder attaches a recorder to a screen.
func NewFrameRecorder(screen *uisim.Screen, completeness func() float64) *FrameRecorder {
	fr := &FrameRecorder{}
	screen.OnDraw(func(at simtime.Time) {
		if fr.active {
			fr.frames = append(fr.frames, qoe.Frame{At: at, Complete: completeness()})
		}
	})
	return fr
}

// Start begins a fresh recording.
func (fr *FrameRecorder) Start() {
	fr.frames = nil
	fr.active = true
}

// Stop ends the recording and returns the captured frames.
func (fr *FrameRecorder) Stop() []qoe.Frame {
	fr.active = false
	return fr.frames
}

// Script replays a sequence of steps, optionally preserving the recorded
// think time between user actions (§4.1: "with and without replaying the
// timing between each action").
type Script struct {
	Steps []Step
	// PreserveTiming waits each step's Delay before running it; otherwise
	// steps run back-to-back.
	PreserveTiming bool
	// StepTimeout is a per-step watchdog: a step that has not called next()
	// within this budget is reported failed (its index appended to
	// TimedOut) and the script advances anyway, instead of deadlocking the
	// whole replay when an app hangs under network impairment. Zero
	// disables the watchdog.
	StepTimeout time.Duration
	// TimedOut collects the indexes of steps the watchdog abandoned,
	// in order (filled in by Play).
	TimedOut []int
}

// Step is one scripted action.
type Step struct {
	Delay time.Duration // think time before this step (when preserved)
	Run   func(next func())
}

// Play executes the script; done fires after the last step.
func (s *Script) Play(k *simtime.Kernel, done func()) {
	i := 0
	var advance func()
	advance = func() {
		if i >= len(s.Steps) {
			if done != nil {
				done()
			}
			return
		}
		step := s.Steps[i]
		idx := i
		i++
		delay := time.Duration(0)
		if s.PreserveTiming {
			delay = step.Delay
		}
		k.After(delay, func() {
			// Guard against the step completing after its watchdog fired
			// (or calling next twice): only the first advance counts.
			advanced := false
			var watch simtime.Event
			next := func() {
				if advanced {
					return
				}
				advanced = true
				watch.Cancel()
				watch = simtime.Event{}
				advance()
			}
			if s.StepTimeout > 0 {
				watch = k.After(s.StepTimeout, func() {
					watch = simtime.Event{}
					if advanced {
						return
					}
					advanced = true
					s.TimedOut = append(s.TimedOut, idx)
					advance()
				})
			}
			step.Run(next)
		})
	}
	advance()
}
