package controller

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core/qoe"
)

// The paper's controller replays behaviour from hand-written "control
// specifications" (§4.1): a declarative list of interactions that anyone
// familiar with Android View classes can author. This file implements that
// input format as JSON, compiled onto the app drivers.
//
// Example:
//
//	{
//	  "preserve_timing": true,
//	  "steps": [
//	    {"app": "facebook", "action": "upload_post", "kind": "status", "repeat": 3, "delay_ms": 2000},
//	    {"app": "facebook", "action": "pull_to_update"},
//	    {"app": "browser",  "action": "load_page", "url": "www.example.com/news"},
//	    {"app": "youtube",  "action": "watch_video", "keyword": "a", "index": 1}
//	  ]
//	}

// SpecStep is one declarative interaction.
type SpecStep struct {
	App    string `json:"app"`    // facebook | youtube | browser
	Action string `json:"action"` // see Compile for the per-app verbs

	// Action parameters.
	Kind    string `json:"kind,omitempty"`    // facebook post kind
	URL     string `json:"url,omitempty"`     // browser page
	Keyword string `json:"keyword,omitempty"` // youtube search keyword
	Index   int    `json:"index,omitempty"`   // youtube result index

	// DelayMS is think time before the step (used when the spec preserves
	// timing). Repeat expands the step N times (default 1).
	DelayMS int64 `json:"delay_ms,omitempty"`
	Repeat  int   `json:"repeat,omitempty"`
}

// Spec is a full replay specification.
type Spec struct {
	PreserveTiming bool       `json:"preserve_timing"`
	Steps          []SpecStep `json:"steps"`
}

// ParseSpec reads a JSON control specification.
func ParseSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("controller: parsing spec: %w", err)
	}
	if len(s.Steps) == 0 {
		return nil, fmt.Errorf("controller: spec has no steps")
	}
	return &s, nil
}

// Drivers bundles the app drivers a spec can address. Nil drivers make the
// corresponding app unavailable.
type Drivers struct {
	Facebook *FacebookDriver
	YouTube  *YouTubeDriver
	Browser  *BrowserDriver
}

// Compile lowers the spec onto a Script. Every step is validated up front,
// so replay never fails midway on a typo.
func (s *Spec) Compile(d Drivers) (*Script, error) {
	script := &Script{PreserveTiming: s.PreserveTiming}
	for i, st := range s.Steps {
		run, err := compileStep(d, st)
		if err != nil {
			return nil, fmt.Errorf("controller: spec step %d: %w", i, err)
		}
		repeat := st.Repeat
		if repeat <= 0 {
			repeat = 1
		}
		for r := 0; r < repeat; r++ {
			seq := i*1000 + r // distinct stamp sequence per expansion
			script.Steps = append(script.Steps, Step{
				Delay: time.Duration(st.DelayMS) * time.Millisecond,
				Run:   run(seq),
			})
		}
	}
	return script, nil
}

// compileStep returns a factory producing the step's Run function for a
// given repetition sequence number.
func compileStep(d Drivers, st SpecStep) (func(seq int) func(next func()), error) {
	switch st.App {
	case "facebook":
		if d.Facebook == nil {
			return nil, fmt.Errorf("no facebook driver")
		}
		switch st.Action {
		case "upload_post":
			kind := st.Kind
			if kind == "" {
				kind = "status"
			}
			return func(seq int) func(next func()) {
				return func(next func()) {
					if _, err := d.Facebook.UploadPost(kind, seq, func(qoe.BehaviorEntry) { next() }); err != nil {
						next()
					}
				}
			}, nil
		case "pull_to_update":
			return func(int) func(next func()) {
				return func(next func()) {
					if err := d.Facebook.PullToUpdate(func(qoe.BehaviorEntry) { next() }); err != nil {
						next()
					}
				}
			}, nil
		case "wait_self_update":
			return func(int) func(next func()) {
				return func(next func()) {
					d.Facebook.WaitSelfUpdate(func(qoe.BehaviorEntry) { next() })
				}
			}, nil
		}
		return nil, fmt.Errorf("unknown facebook action %q", st.Action)
	case "youtube":
		if d.YouTube == nil {
			return nil, fmt.Errorf("no youtube driver")
		}
		if st.Action != "watch_video" {
			return nil, fmt.Errorf("unknown youtube action %q", st.Action)
		}
		if st.Keyword == "" {
			return nil, fmt.Errorf("watch_video needs a keyword")
		}
		return func(int) func(next func()) {
			return func(next func()) {
				if err := d.YouTube.SearchAndPlay(st.Keyword, st.Index, func(WatchStats) { next() }); err != nil {
					next()
				}
			}
		}, nil
	case "browser":
		if d.Browser == nil {
			return nil, fmt.Errorf("no browser driver")
		}
		if st.Action != "load_page" {
			return nil, fmt.Errorf("unknown browser action %q", st.Action)
		}
		if st.URL == "" {
			return nil, fmt.Errorf("load_page needs a url")
		}
		return func(int) func(next func()) {
			return func(next func()) {
				if err := d.Browser.LoadPage(st.URL, func(qoe.BehaviorEntry) { next() }); err != nil {
					next()
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("unknown app %q", st.App)
}
