package controller_test

import (
	"testing"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/uisim"
)

func fbBed(t *testing.T, seed int64, cfg facebook.Config) (*testbed.Bed, *controller.Controller, *qoe.BehaviorLog) {
	t.Helper()
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: radio.ProfileLTE(), Facebook: cfg})
	b.Facebook.Connect()
	b.K.RunUntil(2 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	return b, c, log
}

func TestUploadPostStatusMeasurement(t *testing.T) {
	b, c, log := fbBed(t, 1, facebook.DefaultConfig())
	d := controller.NewFacebookDriver(c, false)

	// Ground truth: when the stamped item is actually drawn on screen.
	var screenAt simtime.Time = -1
	entryDone := false
	if _, err := d.UploadPost(facebook.PostStatus, 1, func(e qoe.BehaviorEntry) { entryDone = true }); err != nil {
		t.Fatal(err)
	}
	stamp := log.Entries // not yet populated; watch generically
	_ = stamp
	b.Facebook.Screen.WatchScreen(func(r *uisim.View) bool {
		v := r.Find(uisim.Signature{ID: "com.facebook.katana:id/feed_item"})
		return v != nil
	}, func(at simtime.Time) { screenAt = at })

	b.K.RunUntil(b.K.Now() + 30*time.Second)
	if !entryDone || len(log.Entries) != 1 {
		t.Fatalf("entry not logged: %d", len(log.Entries))
	}
	e := log.Entries[0]
	if !e.Observed || e.Kind != qoe.UserTriggered || e.Action != "upload_post_status" {
		t.Fatalf("bad entry: %+v", e)
	}
	lat := analyzer.Calibrate(e)
	if lat.Calibrated <= 0 || lat.Calibrated > 2*time.Second {
		t.Fatalf("status post latency = %v, want sub-2s local echo", lat.Calibrated)
	}
	// Table 3 claim: the calibrated measurement tracks the true screen time
	// within tens of milliseconds.
	if screenAt < 0 {
		t.Fatal("no screen ground truth")
	}
	truth := time.Duration(screenAt - e.Start)
	diff := lat.Calibrated - truth
	if diff < 0 {
		diff = -diff
	}
	if diff > 40*time.Millisecond {
		t.Fatalf("measurement error %v vs ground truth %v (measured %v)", diff, truth, lat.Calibrated)
	}
}

func TestUploadPhotosSlowerAndNetworkBound(t *testing.T) {
	b, c, log := fbBed(t, 2, facebook.DefaultConfig())
	d := controller.NewFacebookDriver(c, false)
	if _, err := d.UploadPost(facebook.PostPhotos, 1, nil); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(b.K.Now() + 2*time.Minute)
	if len(log.Entries) != 1 || !log.Entries[0].Observed {
		t.Fatal("photo upload not measured")
	}
	sess := b.Session(log)
	cl := analyzer.NewCrossLayer(sess)
	lat := analyzer.Calibrate(log.Entries[0])
	split := cl.SplitDeviceNetwork(lat)
	if split.Flow == nil {
		t.Fatal("no responsible flow for photo upload")
	}
	if split.Network <= 0 || split.Device <= 0 {
		t.Fatalf("split degenerate: %+v", split)
	}
	// Finding 2: network dominates the photo posting latency.
	if split.Network.Seconds()/split.UserPerceived.Seconds() < 0.4 {
		t.Fatalf("network share %.2f too small for a 380KB upload",
			split.Network.Seconds()/split.UserPerceived.Seconds())
	}
}

func TestStatusPostNetworkOffCriticalPath(t *testing.T) {
	b, c, log := fbBed(t, 3, facebook.DefaultConfig())
	d := controller.NewFacebookDriver(c, false)
	if _, err := d.UploadPost(facebook.PostStatus, 1, nil); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(b.K.Now() + 30*time.Second)
	sess := b.Session(log)
	cl := analyzer.NewCrossLayer(sess)
	lat := analyzer.Calibrate(log.Entries[0])
	split := cl.SplitDeviceNetwork(lat)
	// Finding 1: the upload's TCP ACKs fall outside the QoE window; device
	// time dominates.
	if split.Device.Seconds()/split.UserPerceived.Seconds() < 0.8 {
		t.Fatalf("device share %.2f; local echo should dominate (%+v)",
			split.Device.Seconds()/split.UserPerceived.Seconds(), split)
	}
}

func TestPullToUpdateAppTriggered(t *testing.T) {
	b, c, log := fbBed(t, 4, facebook.DefaultConfig())
	d := controller.NewFacebookDriver(c, false)
	doneEntries := 0
	if err := d.PullToUpdate(func(qoe.BehaviorEntry) { doneEntries++ }); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(b.K.Now() + 30*time.Second)
	if doneEntries != 1 || len(log.Entries) != 1 {
		t.Fatalf("entries = %d", len(log.Entries))
	}
	e := log.Entries[0]
	if e.Kind != qoe.AppTriggered || !e.Observed {
		t.Fatalf("bad entry: %+v", e)
	}
	lat := analyzer.Calibrate(e)
	if lat.Calibrated <= 0 || lat.Calibrated > 5*time.Second {
		t.Fatalf("pull-to-update latency = %v", lat.Calibrated)
	}
}

func TestSelfUpdateMeasurement(t *testing.T) {
	b, c, _ := fbBed(t, 5, facebook.DefaultConfig())
	d := controller.NewFacebookDriver(c, false)
	var entry qoe.BehaviorEntry
	got := false
	d.WaitSelfUpdate(func(e qoe.BehaviorEntry) { entry, got = e, true })
	// A friend posts 10s from now; the app self-updates.
	b.K.After(10*time.Second, func() { b.Servers.Facebook.InjectFriendPost("f1", 4000) })
	b.K.RunUntil(b.K.Now() + 2*time.Minute)
	if !got || !entry.Observed {
		t.Fatal("self-update not observed")
	}
	if entry.Start < simtime.Time(10*time.Second) {
		t.Fatalf("update started at %v, before the friend posted", entry.Start)
	}
}

func TestBrowserDriverMeasuresPageLoad(t *testing.T) {
	b := testbed.MustNew(testbed.Options{Seed: 6})
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Browser.Screen, log)
	d := &controller.BrowserDriver{C: c}
	var appDone simtime.Time = -1
	b.Browser.OnLoaded(func(u string, at simtime.Time) { appDone = at })
	urls := []string{serversim.WebHostBase + "/p1", serversim.WebHostBase + "/p2"}
	var entries []qoe.BehaviorEntry
	d.LoadPages(urls, 5*time.Second, func(es []qoe.BehaviorEntry) { entries = es })
	b.K.RunUntil(5 * time.Minute)
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	for _, e := range entries {
		if !e.Observed {
			t.Fatalf("unobserved load: %+v", e)
		}
		lat := analyzer.Calibrate(e)
		if lat.Calibrated <= 0 || lat.Calibrated > time.Minute {
			t.Fatalf("page load latency = %v", lat.Calibrated)
		}
	}
	if appDone < 0 {
		t.Fatal("app never reported loaded")
	}
	// The second load must not have ended instantly on the first page's
	// stale state.
	if entries[1].RawLatency() < 50*time.Millisecond {
		t.Fatalf("second load %v suspiciously fast (stale-state bug)", entries[1].RawLatency())
	}
}

func TestYouTubeDriverThrottledRebuffering(t *testing.T) {
	b := testbed.MustNew(testbed.Options{Seed: 7, DisableQxDM: true})
	b.YouTube.Connect()
	b.K.RunUntil(time.Second)
	b.Throttle(200e3)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 30 * time.Minute
	d := &controller.YouTubeDriver{C: c}
	var stats controller.WatchStats
	finished := false
	if err := d.SearchAndPlay("a", 1, func(s controller.WatchStats) { stats, finished = s, true }); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(90 * time.Minute)
	if !finished {
		t.Fatal("watch did not finish")
	}
	if !stats.InitialLoading.Observed {
		t.Fatal("initial loading not measured")
	}
	if len(stats.Rebuffers) == 0 {
		t.Fatal("no rebuffer events measured under throttling")
	}
	if r := stats.RebufferRatio(); r < 0.05 || r > 1 {
		t.Fatalf("rebuffer ratio = %v", r)
	}
	// The log carries the same events.
	if got := len(log.ByAction("rebuffer")); got != len(stats.Rebuffers) {
		t.Fatalf("log rebuffers %d != stats %d", got, len(stats.Rebuffers))
	}
}

func TestYouTubeDriverUnthrottledCleanPlayback(t *testing.T) {
	b := testbed.MustNew(testbed.Options{Seed: 8, DisableQxDM: true})
	b.YouTube.Connect()
	b.K.RunUntil(time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.YouTube.Screen, log)
	c.Timeout = 10 * time.Minute
	d := &controller.YouTubeDriver{C: c}
	var stats controller.WatchStats
	finished := false
	if err := d.SearchAndPlay("b", 0, func(s controller.WatchStats) { stats, finished = s, true }); err != nil {
		t.Fatal(err)
	}
	b.K.RunUntil(20 * time.Minute)
	if !finished {
		t.Fatal("watch did not finish")
	}
	if len(stats.Rebuffers) != 0 {
		t.Fatalf("%d rebuffers on unthrottled LTE", len(stats.Rebuffers))
	}
	if stats.RebufferRatio() != 0 {
		t.Fatalf("ratio = %v", stats.RebufferRatio())
	}
	il := analyzer.Calibrate(stats.InitialLoading)
	if il.Calibrated <= 0 || il.Calibrated > 15*time.Second {
		t.Fatalf("initial loading = %v", il.Calibrated)
	}
}

func TestScriptTimingModes(t *testing.T) {
	k := simtime.NewKernel(1)
	var times []simtime.Time
	mkScript := func(preserve bool) *controller.Script {
		return &controller.Script{
			PreserveTiming: preserve,
			Steps: []controller.Step{
				{Delay: time.Second, Run: func(next func()) { times = append(times, k.Now()); next() }},
				{Delay: 2 * time.Second, Run: func(next func()) { times = append(times, k.Now()); next() }},
			},
		}
	}
	done := false
	mkScript(true).Play(k, func() { done = true })
	k.Run()
	if !done || len(times) != 2 {
		t.Fatalf("script incomplete: %v", times)
	}
	if times[0] != simtime.Time(time.Second) || times[1] != simtime.Time(3*time.Second) {
		t.Fatalf("preserved timing wrong: %v", times)
	}
	times = nil
	mkScript(false).Play(k, nil)
	k.Run()
	if times[1]-times[0] > simtime.Time(time.Millisecond) {
		t.Fatalf("back-to-back mode waited: %v", times)
	}
}

func TestControllerErrorOnMissingView(t *testing.T) {
	b := testbed.MustNew(testbed.Options{Seed: 9, DisableQxDM: true})
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Browser.Screen, log)
	d := controller.NewFacebookDriver(c, false) // facebook views on a browser screen
	if _, err := d.UploadPost(facebook.PostStatus, 1, nil); err == nil {
		t.Fatal("driver succeeded against the wrong app")
	}
}

func TestSpeedIndexRecordingOverNetworks(t *testing.T) {
	// The Speed Index extension (§4.2.3 future work): progressive paint
	// frames recorded at screen draws. A slower radio must yield a larger
	// Speed Index for the same page.
	run := func(prof *radio.Profile) (time.Duration, int) {
		b := testbed.MustNew(testbed.Options{Seed: 30, Profile: prof, DisableQxDM: true})
		log := &qoe.BehaviorLog{}
		c := controller.New(b.K, b.Browser.Screen, log)
		d := &controller.BrowserDriver{C: c}
		rec := controller.NewFrameRecorder(b.Browser.Screen, b.Browser.Completeness)
		var si time.Duration
		var frames int
		err := d.LoadPageSpeedIndex(serversim.WebHostBase+"/si-test", rec,
			func(e qoe.BehaviorEntry, fs []qoe.Frame) {
				si = analyzer.SpeedIndex(e.Start, fs)
				frames = len(fs)
			})
		if err != nil {
			t.Fatal(err)
		}
		b.K.RunUntil(5 * time.Minute)
		return si, frames
	}
	siWiFi, framesWiFi := run(radio.ProfileWiFi())
	si3G, frames3G := run(radio.Profile3G())
	if framesWiFi < 3 || frames3G < 3 {
		t.Fatalf("too few frames recorded: wifi=%d 3g=%d", framesWiFi, frames3G)
	}
	if siWiFi <= 0 || si3G <= 0 {
		t.Fatalf("speed index not positive: wifi=%v 3g=%v", siWiFi, si3G)
	}
	if si3G <= siWiFi {
		t.Fatalf("3G speed index (%v) not worse than WiFi (%v)", si3G, siWiFi)
	}
	// Frames after Stop must not leak into the next recording.
	siAgain, _ := run(radio.ProfileWiFi())
	if siAgain != siWiFi {
		t.Fatalf("speed index not reproducible: %v vs %v", siAgain, siWiFi)
	}
}
