package controller

import (
	"fmt"
	"time"

	"repro/internal/apps/browser"
	"repro/internal/apps/facebook"
	"repro/internal/apps/youtube"
	"repro/internal/core/qoe"
	"repro/internal/simtime"
	"repro/internal/uisim"
)

// The drivers below encode Table 1 of the paper: for each app, the replayed
// user behaviour and the UI events that delimit the user-perceived latency.
// They reference the target apps only through view signatures.

// ---------- Facebook ----------

// FacebookDriver replays upload-post and pull-to-update.
type FacebookDriver struct {
	C *Controller
	// FeedSig is the feed view to scroll: the ListView in app 5.0, the
	// WebView in app 1.8.3.
	FeedSig uisim.Signature
	// ItemSig matches a posted story: individual list items in app 5.0,
	// the whole WebView (whose text holds the rendered feed) in 1.8.3.
	ItemSig uisim.Signature
}

// NewFacebookDriver builds a driver; webView selects the 1.8.3 layout.
func NewFacebookDriver(c *Controller, webView bool) *FacebookDriver {
	feed := uisim.Signature{ID: facebook.IDFeedList}
	item := uisim.Signature{ID: facebook.IDFeedItem}
	if webView {
		feed = uisim.Signature{ID: facebook.IDFeedWeb}
		item = feed
	}
	return &FacebookDriver{C: c, FeedSig: feed, ItemSig: item}
}

// UploadPost replays posting: type the content (with a stamp string the
// wait component watches for), press "post", and wait until the stamped
// item shows in the feed. Measurement: press "post" -> posted content shown
// (Table 1). The stamp is returned so callers can align external ground
// truth with the measurement.
func (d *FacebookDriver) UploadPost(kind string, seq int, done func(qoe.BehaviorEntry)) (stamp string, err error) {
	stamp = fmt.Sprintf("stamp-%s-%d-%d", kind, seq, d.C.k.Now())
	if _, err := d.C.in.EnterText(uisim.Signature{ID: facebook.IDComposerText}, kind+"|"+stamp); err != nil {
		return "", err
	}
	// The wait watches the *feed*, not the whole tree: the composer itself
	// still shows the stamp text.
	itemSig := d.ItemSig
	err = d.C.UserWait("facebook", "upload_post_"+kind, stamp,
		func() (simtime.Time, error) {
			return d.C.in.Click(uisim.Signature{ID: facebook.IDPostButton})
		},
		func(s *uisim.Snapshot) bool { return s.VisibleTextMatch(itemSig, stamp) },
		done)
	return stamp, err
}

// PullToUpdate replays the pull gesture and waits for the feed progress bar
// to cycle. Measurement: progress bar appears -> disappears (Table 1).
func (d *FacebookDriver) PullToUpdate(done func(qoe.BehaviorEntry)) error {
	barSig := uisim.Signature{ID: facebook.IDFeedProgress}
	if _, err := d.C.in.Scroll(d.FeedSig, 200); err != nil {
		return err
	}
	d.C.AppWait("facebook", "pull_to_update", "gesture",
		VisibleCond(barSig), GoneCond(barSig), done)
	return nil
}

// WaitSelfUpdate passively waits for the app to refresh the feed by itself
// (the §7.4 device-B workload: app 5.0 self-updates on notifications).
func (d *FacebookDriver) WaitSelfUpdate(done func(qoe.BehaviorEntry)) {
	barSig := uisim.Signature{ID: facebook.IDFeedProgress}
	d.C.AppWait("facebook", "pull_to_update", "self-update",
		VisibleCond(barSig), GoneCond(barSig), done)
}

// ---------- YouTube ----------

// YouTubeDriver replays search-and-watch.
type YouTubeDriver struct {
	C *Controller
	// SkipAds clicks the skip button when it appears (the paper's default:
	// 94% of users skip).
	SkipAds bool
}

// WatchStats aggregates the UI-derived playback measurements the driver
// logs: one initial_loading entry plus one rebuffer entry per stall.
type WatchStats struct {
	InitialLoading qoe.BehaviorEntry
	Rebuffers      []qoe.BehaviorEntry
	// PlaybackEnd is when the player view disappeared.
	PlaybackEnd simtime.Time
}

// RebufferRatio computes stall/(play+stall) after initial loading from the
// UI measurements alone, the way the paper's analyzer does.
func (w WatchStats) RebufferRatio() float64 {
	if !w.InitialLoading.Observed || w.PlaybackEnd <= w.InitialLoading.End {
		return 0
	}
	total := time.Duration(w.PlaybackEnd - w.InitialLoading.End)
	var stall time.Duration
	for _, r := range w.Rebuffers {
		stall += r.RawLatency()
	}
	if total <= 0 {
		return 0
	}
	ratio := stall.Seconds() / total.Seconds()
	if ratio < 0 {
		return 0
	}
	if ratio > 1 {
		return 1
	}
	return ratio
}

// SearchAndPlay searches for a keyword, clicks the n-th result, and follows
// the playback to completion: initial loading time is click -> progress bar
// gone; each stall is a progress-bar cycle (Table 1).
func (d *YouTubeDriver) SearchAndPlay(keyword string, index int, done func(WatchStats)) error {
	searchSig := uisim.Signature{ID: youtube.IDSearchBox}
	if _, err := d.C.in.EnterText(searchSig, keyword); err != nil {
		return err
	}
	if _, err := d.C.in.PressEnter(searchSig); err != nil {
		return err
	}
	// See: wait for results, then interact with the chosen entry.
	d.C.in.WaitUntil(VisibleCond(uisim.Signature{ID: youtube.IDResultItem}), d.C.timeout(),
		func(r uisim.WaitResult) {
			if !r.Observed {
				if done != nil {
					done(WatchStats{})
				}
				return
			}
			d.playNth(index, done)
		})
	return nil
}

func (d *YouTubeDriver) playNth(index int, done func(WatchStats)) {
	items := d.C.in.Screen().Root().FindAll(uisim.Signature{ID: youtube.IDResultItem})
	if index < 0 || index >= len(items) {
		if done != nil {
			done(WatchStats{})
		}
		return
	}
	videoID := items[index].Desc
	barSig := uisim.Signature{ID: youtube.IDPlayerProgress}
	playerSig := uisim.Signature{ID: youtube.IDPlayerView}

	if d.SkipAds {
		d.watchForSkipButton()
	}

	var stats WatchStats
	// Accept "bar gone" only after it was seen shown, so the wait cannot
	// end before the click has even been processed.
	seenBar := false
	loaded := func(s *uisim.Snapshot) bool {
		if s.VisibleMatch(barSig) {
			seenBar = true
			return false
		}
		return seenBar
	}
	err := d.C.UserWait("youtube", "initial_loading", videoID,
		func() (simtime.Time, error) {
			return d.C.in.Click(uisim.Signature{ID: youtube.IDResultItem, Desc: videoID})
		},
		loaded,
		func(e qoe.BehaviorEntry) {
			stats.InitialLoading = e
			d.followPlayback(videoID, barSig, playerSig, &stats, done)
		})
	if err != nil && done != nil {
		done(WatchStats{})
	}
}

// watchForSkipButton polls in the background and clicks skip when offered.
func (d *YouTubeDriver) watchForSkipButton() {
	var stop func()
	stop = d.C.k.Ticker(300*time.Millisecond, func() {
		if _, err := d.C.in.Click(uisim.Signature{ID: youtube.IDSkipAd}); err == nil {
			stop()
		}
	})
	// Give up once playback is long over.
	d.C.k.After(d.C.timeout(), func() { stop() })
}

// followPlayback loops: wait for either a stall (progress bar shows) or the
// end of playback (player view gone); log each rebuffer cycle.
func (d *YouTubeDriver) followPlayback(videoID string, barSig, playerSig uisim.Signature, stats *WatchStats, done func(WatchStats)) {
	either := func(s *uisim.Snapshot) bool {
		return s.VisibleMatch(barSig) || !s.VisibleMatch(playerSig)
	}
	d.C.in.WaitUntil(either, d.C.timeout(), func(r uisim.WaitResult) {
		if !r.Observed {
			stats.PlaybackEnd = r.At
			if done != nil {
				done(*stats)
			}
			return
		}
		// Distinguish: playback over, or stall?
		if d.C.in.Screen().Root().Find(playerSig) == nil || !d.C.in.Screen().Root().Find(playerSig).Shown() {
			stats.PlaybackEnd = r.At
			if done != nil {
				done(*stats)
			}
			return
		}
		// Stall: wait for the bar to go away, log the cycle, continue.
		start := r.At
		parseTime := d.C.in.ParseTime()
		d.C.in.WaitUntil(GoneCond(barSig), d.C.timeout(), func(re uisim.WaitResult) {
			e := qoe.BehaviorEntry{
				App: "youtube", Action: "rebuffer", Kind: qoe.AppTriggered,
				Start: start, End: re.At, Observed: re.Observed,
				ParseTime: parseTime, Note: videoID,
			}
			d.C.log.Add(e)
			stats.Rebuffers = append(stats.Rebuffers, e)
			d.followPlayback(videoID, barSig, playerSig, stats, done)
		})
	})
}

// ---------- Web browsing ----------

// BrowserDriver replays page loads.
type BrowserDriver struct {
	C *Controller
}

// LoadPage types the URL, presses ENTER, and waits for the progress bar to
// disappear. Measurement: ENTER press -> progress bar gone (Table 1).
func (d *BrowserDriver) LoadPage(url string, done func(qoe.BehaviorEntry)) error {
	urlSig := uisim.Signature{ID: browser.IDURLBar}
	barSig := uisim.Signature{ID: browser.IDProgress}
	if _, err := d.C.in.EnterText(urlSig, url); err != nil {
		return err
	}
	// The bar must have cycled: only accept "gone" after it was seen shown,
	// so back-to-back loads don't end instantly on the previous page state.
	seenBar := false
	cycled := func(s *uisim.Snapshot) bool {
		if s.VisibleMatch(barSig) {
			seenBar = true
			return false
		}
		return seenBar
	}
	return d.C.UserWait("browser", "load_page", url,
		func() (simtime.Time, error) { return d.C.in.PressEnter(urlSig) },
		cycled, done)
}

// LoadPageSpeedIndex loads a page while recording visual-completeness
// frames; done receives the load measurement plus the recorded frames. The
// caller computes analyzer.SpeedIndex(entry.Start, frames).
func (d *BrowserDriver) LoadPageSpeedIndex(url string, rec *FrameRecorder, done func(qoe.BehaviorEntry, []qoe.Frame)) error {
	rec.Start()
	return d.LoadPage(url, func(e qoe.BehaviorEntry) {
		frames := rec.Stop()
		if done != nil {
			done(e, frames)
		}
	})
}

// LoadPages replays a URL list line by line (§4.2.3), with thinkTime
// between loads.
func (d *BrowserDriver) LoadPages(urls []string, thinkTime time.Duration, done func([]qoe.BehaviorEntry)) {
	var out []qoe.BehaviorEntry
	var next func(i int)
	next = func(i int) {
		if i >= len(urls) {
			if done != nil {
				done(out)
			}
			return
		}
		err := d.LoadPage(urls[i], func(e qoe.BehaviorEntry) {
			out = append(out, e)
			d.C.k.After(thinkTime, func() { next(i + 1) })
		})
		if err != nil {
			if done != nil {
				done(out)
			}
		}
	}
	next(0)
}
