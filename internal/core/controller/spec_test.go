package controller_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/testbed"
)

func TestParseSpecValidAndInvalid(t *testing.T) {
	good := `{"preserve_timing": true, "steps": [
		{"app": "facebook", "action": "upload_post", "kind": "status", "repeat": 2, "delay_ms": 1000},
		{"app": "browser", "action": "load_page", "url": "www.example.com/x"}
	]}`
	s, err := controller.ParseSpec(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if !s.PreserveTiming || len(s.Steps) != 2 || s.Steps[0].Repeat != 2 {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
	for _, bad := range []string{
		``,
		`{}`,
		`{"steps": []}`,
		`{"steps": [{"app": "x"}], "bogus_field": 1}`,
	} {
		if _, err := controller.ParseSpec(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted bad spec %q", bad)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	compile := func(step controller.SpecStep, d controller.Drivers) error {
		spec := &controller.Spec{Steps: []controller.SpecStep{step}}
		_, err := spec.Compile(d)
		return err
	}
	full := controller.Drivers{
		Facebook: &controller.FacebookDriver{},
		YouTube:  &controller.YouTubeDriver{},
		Browser:  &controller.BrowserDriver{},
	}
	cases := []struct {
		step controller.SpecStep
		d    controller.Drivers
	}{
		{controller.SpecStep{App: "nope", Action: "x"}, full},
		{controller.SpecStep{App: "facebook", Action: "nope"}, full},
		{controller.SpecStep{App: "facebook", Action: "upload_post"}, controller.Drivers{}},
		{controller.SpecStep{App: "youtube", Action: "watch_video"}, full}, // missing keyword
		{controller.SpecStep{App: "browser", Action: "load_page"}, full},   // missing url
	}
	for i, c := range cases {
		if err := compile(c.step, c.d); err == nil {
			t.Errorf("case %d: compile accepted invalid step %+v", i, c.step)
		}
	}
}

func TestSpecEndToEndReplay(t *testing.T) {
	b := testbed.MustNew(testbed.Options{Seed: 44, DisableQxDM: true})
	b.Facebook.Connect()
	b.K.RunUntil(2 * time.Second)
	log := &qoe.BehaviorLog{}
	fbCtl := controller.New(b.K, b.Facebook.Screen, log)
	brCtl := controller.New(b.K, b.Browser.Screen, log)
	drivers := controller.Drivers{
		Facebook: controller.NewFacebookDriver(fbCtl, false),
		Browser:  &controller.BrowserDriver{C: brCtl},
	}
	spec, err := controller.ParseSpec(strings.NewReader(`{
		"preserve_timing": true,
		"steps": [
			{"app": "facebook", "action": "upload_post", "kind": "status", "repeat": 2, "delay_ms": 2000},
			{"app": "facebook", "action": "pull_to_update", "delay_ms": 1000},
			{"app": "browser", "action": "load_page", "url": "` + serversim.WebHostBase + `/spec"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	script, err := spec.Compile(drivers)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Steps) != 4 { // upload x2 + update + page
		t.Fatalf("compiled %d steps, want 4", len(script.Steps))
	}
	done := false
	script.Play(b.K, func() { done = true })
	b.K.RunUntil(10 * time.Minute)
	if !done {
		t.Fatal("script did not finish")
	}
	if got := len(log.ByAction("upload_post_status")); got != 2 {
		t.Fatalf("uploads measured = %d", got)
	}
	if got := len(log.ByAction("pull_to_update")); got != 1 {
		t.Fatalf("updates measured = %d", got)
	}
	if got := len(log.ByAction("load_page")); got != 1 {
		t.Fatalf("page loads measured = %d", got)
	}
	for _, e := range log.Entries {
		if !e.Observed {
			t.Fatalf("unobserved entry: %+v", e)
		}
	}
	// Upload stamps must be distinct across repeats.
	ups := log.ByAction("upload_post_status")
	if ups[0].Note == ups[1].Note {
		t.Fatal("repeated steps share a stamp")
	}
}
