package analyzer

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core/qoe"
	"repro/internal/qxdm"
	"repro/internal/simtime"
)

func TestCalibrateUserTriggered(t *testing.T) {
	e := qoe.BehaviorEntry{
		Kind: qoe.UserTriggered, Start: 0, End: simtime.Time(1000 * time.Millisecond),
		Observed: true, ParseTime: 10 * time.Millisecond,
	}
	l := Calibrate(e)
	if l.Raw != time.Second {
		t.Fatalf("raw = %v", l.Raw)
	}
	if want := time.Second - 15*time.Millisecond; l.Calibrated != want {
		t.Fatalf("calibrated = %v, want %v (raw - 3/2 parse)", l.Calibrated, want)
	}
}

func TestCalibrateAppTriggered(t *testing.T) {
	e := qoe.BehaviorEntry{
		Kind: qoe.AppTriggered, Start: 0, End: simtime.Time(500 * time.Millisecond),
		Observed: true, ParseTime: 8 * time.Millisecond,
	}
	l := Calibrate(e)
	if want := 500*time.Millisecond - 8*time.Millisecond; l.Calibrated != want {
		t.Fatalf("calibrated = %v, want %v (raw - parse)", l.Calibrated, want)
	}
}

func TestCalibrateNeverNegative(t *testing.T) {
	e := qoe.BehaviorEntry{Kind: qoe.UserTriggered, End: simtime.Time(time.Millisecond),
		Observed: true, ParseTime: 10 * time.Millisecond}
	if l := Calibrate(e); l.Calibrated < 0 {
		t.Fatalf("negative calibrated latency %v", l.Calibrated)
	}
}

func TestAnalyzeAppSkipsUnobserved(t *testing.T) {
	log := &qoe.BehaviorLog{}
	log.Add(qoe.BehaviorEntry{Action: "a", Observed: true, End: 1000})
	log.Add(qoe.BehaviorEntry{Action: "a", Observed: false, End: 2000})
	r := AnalyzeApp(log)
	if len(r.Latencies) != 1 {
		t.Fatalf("latencies = %d, want 1", len(r.Latencies))
	}
	if got := r.ByAction("a"); len(got) != 1 {
		t.Fatalf("ByAction = %d", len(got))
	}
	if got := r.ByAction("b"); len(got) != 0 {
		t.Fatalf("ByAction(b) = %d", len(got))
	}
}

// --- long-jump mapping unit tests on hand-built PDU streams ---

// segment builds the PDU records QxDM would log for packets laid out
// back-to-back with the given PDU payload size.
func segment(packets [][]byte, payloadSize int) []qxdm.PDURecord {
	var stream []byte
	var boundaries []int // cumulative end offsets
	for _, p := range packets {
		stream = append(stream, p...)
		boundaries = append(boundaries, len(stream))
	}
	var pdus []qxdm.PDURecord
	for off := 0; off < len(stream); off += payloadSize {
		end := off + payloadSize
		if end > len(stream) {
			end = len(stream)
		}
		rec := qxdm.PDURecord{
			Seq:  uint32(len(pdus)),
			Size: end - off,
			At:   simtime.Time(len(pdus)) * simtime.Time(time.Millisecond),
		}
		rec.Head[0] = stream[off]
		if end-off >= 2 {
			rec.Head[1] = stream[off+1]
		}
		for _, b := range boundaries {
			if b > off && b <= end {
				rec.LI = append(rec.LI, b-off)
			}
		}
		pdus = append(pdus, rec)
	}
	return pdus
}

func mkPackets(seed int64, sizes ...int) []MappedPacket {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MappedPacket, len(sizes))
	for i, n := range sizes {
		data := make([]byte, n)
		rng.Read(data)
		out[i] = MappedPacket{At: simtime.Time(i) * simtime.Time(time.Millisecond), Data: data}
	}
	return out
}

func rawData(ps []MappedPacket) [][]byte {
	out := make([][]byte, len(ps))
	for i, p := range ps {
		out[i] = p.Data
	}
	return out
}

func TestLongJumpMapsCleanStream(t *testing.T) {
	packets := mkPackets(1, 100, 50, 40, 7, 1400)
	pdus := segment(rawData(packets), 40)
	res := LongJumpMap(packets, pdus)
	if res.Mapped != len(packets) {
		t.Fatalf("mapped %d of %d", res.Mapped, res.Total)
	}
	if res.Ratio() != 1 {
		t.Fatalf("ratio = %v", res.Ratio())
	}
	// First packet: 100 bytes over 40B PDUs -> PDUs 0..2.
	if m := res.Packets[0]; m.FirstPDU != 0 || m.LastPDU != 2 || m.PDUs != 3 {
		t.Fatalf("packet 0 mapping: %+v", m)
	}
	// Second packet starts mid-PDU 2 (Fig. 5's spanning case).
	if m := res.Packets[1]; m.FirstPDU != 2 {
		t.Fatalf("packet 1 should start in PDU 2: %+v", m)
	}
}

func TestLongJumpLostPDUBreaksOnlyAffectedPackets(t *testing.T) {
	packets := mkPackets(2, 200, 200, 200, 200)
	pdus := segment(rawData(packets), 40)
	// Lose one PDU in the middle of packet 1 (packet 0 occupies PDUs 0-4).
	lost := append(append([]qxdm.PDURecord{}, pdus[:6]...), pdus[7:]...)
	res := LongJumpMap(packets, lost)
	if res.Packets[0].Mapped != true {
		t.Fatal("packet 0 should map")
	}
	if res.Packets[1].Mapped {
		t.Fatal("packet 1 maps despite a lost PDU")
	}
	if !res.Packets[2].Mapped || !res.Packets[3].Mapped {
		t.Fatalf("resync failed: %+v", res.Packets)
	}
	if res.Mapped != 3 {
		t.Fatalf("mapped = %d, want 3", res.Mapped)
	}
}

func TestLongJumpEmptyInputs(t *testing.T) {
	if r := LongJumpMap(nil, nil); r.Total != 0 || r.Ratio() != 0 {
		t.Fatalf("empty mapping: %+v", r)
	}
	packets := mkPackets(3, 100)
	if r := LongJumpMap(packets, nil); r.Mapped != 0 {
		t.Fatal("mapped against empty PDU stream")
	}
}

func TestDedupPDUsKeepsFirstTransmission(t *testing.T) {
	pdus := []qxdm.PDURecord{
		{Seq: 0, At: 1}, {Seq: 1, At: 2}, {Seq: 1, At: 5, Retx: true}, {Seq: 2, At: 6},
	}
	out := dedupPDUs(pdus)
	if len(out) != 3 || out[1].At != 2 {
		t.Fatalf("dedup wrong: %+v", out)
	}
}

// Property: any packet sizes, clean capture -> 100% mapping; the mapping is
// contiguous and ordered.
func TestQuickLongJumpCleanAlwaysMaps(t *testing.T) {
	f := func(seed int64, ns []uint16, payloadSel uint8) bool {
		if len(ns) == 0 || len(ns) > 30 {
			return true
		}
		sizes := make([]int, len(ns))
		for i, n := range ns {
			sizes[i] = int(n%2000) + 1
		}
		payload := []int{40, 128, 480, 1400}[payloadSel%4]
		packets := mkPackets(seed, sizes...)
		pdus := segment(rawData(packets), payload)
		res := LongJumpMap(packets, pdus)
		if res.Mapped != len(packets) {
			return false
		}
		prevLast := -1
		for _, m := range res.Packets {
			if m.FirstPDU < prevLast-1 || m.LastPDU < m.FirstPDU {
				return false
			}
			prevLast = m.LastPDU
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
