package analyzer_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/core/analyzer"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
	"repro/internal/radio"
	"repro/internal/testbed"
)

// uploadSession simulates photo uploads on the given bearer and returns the
// collected session — a QxDM-heavy, uplink-dominated analyzer input.
func uploadSession(seed int64, profile *radio.Profile, posts int, trace bool) *qoe.Session {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: profile, Trace: trace})
	b.Facebook.Connect()
	b.K.RunUntil(3 * time.Second)
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Facebook.Screen, log)
	d := controller.NewFacebookDriver(c, false)
	var run func(i int)
	run = func(i int) {
		if i >= posts {
			return
		}
		d.UploadPost(facebook.PostPhotos, i, func(qoe.BehaviorEntry) {
			b.K.After(time.Second, func() { run(i + 1) })
		})
	}
	run(0)
	b.K.RunUntil(b.K.Now() + 5*time.Minute)
	b.CloseObs()
	return b.Session(log)
}

// browseSession simulates page loads — downlink-dominated, with DNS and
// multiple flows.
func browseSession(seed int64, profile *radio.Profile, pages int, trace bool) *qoe.Session {
	b := testbed.MustNew(testbed.Options{Seed: seed, Profile: profile, Trace: trace})
	log := &qoe.BehaviorLog{}
	c := controller.New(b.K, b.Browser.Screen, log)
	d := &controller.BrowserDriver{C: c}
	urls := make([]string, pages)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/eng-%d", serversim.WebHostBase, i)
	}
	d.LoadPages(urls, 2*time.Second, nil)
	b.K.RunUntil(5 * time.Minute)
	b.CloseObs()
	return b.Session(log)
}

// The parallel engine must produce a CrossLayer deeply equal to the serial
// seed engine — flows, PDU slices, both mappings, and Warnings in the same
// order — on realistic sessions covering both bearers, both traffic
// directions, and the trace cross-check stage.
func TestParallelEngineMatchesSerial(t *testing.T) {
	sessions := map[string]*qoe.Session{
		"3g-upload":     uploadSession(11, radio.Profile3G(), 2, false),
		"3g-browse":     browseSession(12, radio.Profile3G(), 4, false),
		"lte-upload-tr": uploadSession(13, radio.ProfileLTE(), 1, true),
		"lte-browse-tr": browseSession(14, radio.ProfileLTE(), 3, true),
	}
	for name, sess := range sessions {
		t.Run(name, func(t *testing.T) {
			want := analyzer.NewCrossLayerSerialForTest(sess)
			got := analyzer.NewCrossLayerParallelForTest(sess)
			if !reflect.DeepEqual(got.Flows, want.Flows) {
				t.Errorf("Flows diverge")
			}
			if !reflect.DeepEqual(got.ULPDUs, want.ULPDUs) || !reflect.DeepEqual(got.DLPDUs, want.DLPDUs) {
				t.Errorf("PDU streams diverge")
			}
			if !reflect.DeepEqual(got.ULMap, want.ULMap) {
				t.Errorf("ULMap diverges: got %d/%d want %d/%d",
					got.ULMap.Mapped, got.ULMap.Total, want.ULMap.Mapped, want.ULMap.Total)
			}
			if !reflect.DeepEqual(got.DLMap, want.DLMap) {
				t.Errorf("DLMap diverges: got %d/%d want %d/%d",
					got.DLMap.Mapped, got.DLMap.Total, want.DLMap.Mapped, want.DLMap.Total)
			}
			if !reflect.DeepEqual(got.Warnings, want.Warnings) {
				t.Errorf("Warnings diverge:\n got %q\nwant %q", got.Warnings, want.Warnings)
			}
		})
	}
}

// Degenerate inputs must warn identically in both engines.
func TestEngineDegenerateSessions(t *testing.T) {
	empty := &qoe.Session{Profile: radio.ProfileLTE(), DeviceAddr: testbed.DeviceAddr}
	noRadio := browseSession(15, radio.ProfileLTE(), 1, false)
	noRadio.Radio = nil
	for name, sess := range map[string]*qoe.Session{"empty": empty, "no-radio": noRadio} {
		want := analyzer.NewCrossLayerSerialForTest(sess)
		got := analyzer.NewCrossLayerParallelForTest(sess)
		if !reflect.DeepEqual(got.Warnings, want.Warnings) {
			t.Errorf("%s: warnings diverge:\n got %q\nwant %q", name, got.Warnings, want.Warnings)
		}
	}
}

// WithEngine selects the implementation per call: an explicit serial
// selection must reproduce the serial reference exactly, and the default
// (no option) must be the parallel engine.
func TestWithEngineDispatch(t *testing.T) {
	sess := browseSession(16, radio.ProfileLTE(), 2, false)
	serial := analyzer.NewCrossLayer(sess, analyzer.WithEngine(analyzer.EngineSerial))
	want := analyzer.NewCrossLayerSerialForTest(sess)
	if !reflect.DeepEqual(serial.Warnings, want.Warnings) ||
		!reflect.DeepEqual(serial.ULMap, want.ULMap) || !reflect.DeepEqual(serial.DLMap, want.DLMap) {
		t.Fatal("WithEngine(EngineSerial) did not dispatch to the serial engine")
	}
	def := analyzer.NewCrossLayer(sess)
	par := analyzer.NewCrossLayer(sess, analyzer.WithEngine(analyzer.EngineParallel))
	if !reflect.DeepEqual(def.Warnings, par.Warnings) ||
		!reflect.DeepEqual(def.ULMap, par.ULMap) || !reflect.DeepEqual(def.DLMap, par.DLMap) {
		t.Fatal("default engine diverges from explicit WithEngine(EngineParallel)")
	}
}

// Analyze/Wait returns the same analysis as the synchronous call.
func TestAnalyzeAsync(t *testing.T) {
	sess := browseSession(16, radio.Profile3G(), 2, false)
	p := analyzer.Analyze(sess)
	got := p.Wait()
	if got2 := p.Wait(); got2 != got {
		t.Fatal("Wait not idempotent")
	}
	want := analyzer.NewCrossLayer(sess)
	if !reflect.DeepEqual(got.ULMap, want.ULMap) || !reflect.DeepEqual(got.DLMap, want.DLMap) {
		t.Fatal("async analysis diverges from synchronous")
	}
}
