package analyzer

import (
	"sort"
	"time"

	"repro/internal/power"
	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// OTARTTSamples estimates first-hop over-the-air RTTs per §5.3: for each
// STATUS PDU, the nearest preceding polling PDU of the same direction gives
// one sample (the group-acknowledgement mechanism means not every STATUS
// has its own poll).
func OTARTTSamples(log *qxdm.Log, dir radio.Direction) []time.Duration {
	var polls []simtime.Time
	for _, p := range log.PDUs {
		if p.Dir == dir && p.Poll {
			polls = append(polls, p.At)
		}
	}
	var out []time.Duration
	for _, st := range log.Statuses {
		if st.Dir != dir {
			continue
		}
		// Nearest poll at or before the status arrival.
		i := sort.Search(len(polls), func(i int) bool { return polls[i] > st.At })
		if i == 0 {
			continue
		}
		out = append(out, time.Duration(st.At-polls[i-1]))
	}
	return out
}

// MedianOTARTT returns the median sample over both directions, used as the
// burst threshold in the Fig. 9 breakdown. Zero when no samples exist.
func MedianOTARTT(log *qxdm.Log) time.Duration {
	var all []time.Duration
	all = append(all, OTARTTSamples(log, radio.Uplink)...)
	all = append(all, OTARTTSamples(log, radio.Downlink)...)
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all[len(all)/2]
}

// TransitionsIn returns RRC transitions inside [from, to] — overlapping the
// QoE window per §5.4.2, revealing promotions on the latency critical path.
func TransitionsIn(log *qxdm.Log, from, to simtime.Time) []qxdm.TransitionRecord {
	var out []qxdm.TransitionRecord
	for _, tr := range log.Transitions {
		if tr.At >= from && tr.At <= to {
			out = append(out, tr)
		}
	}
	return out
}

// Energy runs the §5.3 energy model over a window.
func Energy(prof *radio.Profile, log *qxdm.Log, from, to simtime.Time) power.Report {
	return power.Analyze(prof, log, from, to)
}

// StateAt reconstructs the RRC state at time t from the transition log
// (base state before the first transition).
func StateAt(prof *radio.Profile, log *qxdm.Log, t simtime.Time) radio.State {
	state := prof.Base
	for _, tr := range log.Transitions {
		if tr.At > t {
			break
		}
		state = tr.To
	}
	return state
}
