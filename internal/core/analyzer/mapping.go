package analyzer

import (
	"sort"

	"repro/internal/qxdm"
	"repro/internal/simtime"
)

// PacketMapping records where one IP packet landed in the RLC PDU stream.
type PacketMapping struct {
	Mapped   bool
	FirstPDU int // index into the deduplicated PDU slice
	LastPDU  int
	PDUs     int // number of PDUs carrying this packet's bytes
}

// MappingResult is the outcome of the long-jump mapping for one direction.
type MappingResult struct {
	Packets []PacketMapping
	Mapped  int
	Total   int
}

// Ratio is the fraction of packets successfully mapped (the Table 3
// metric: 99.52% uplink / 88.83% downlink in the paper).
func (m MappingResult) Ratio() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Mapped) / float64(m.Total)
}

// resyncWindow is a hard cap on how many PDUs the mapper examines when
// re-anchoring after a failed mapping; the effective bound is the time
// window [pkt.At-resyncLead, pkt.At+resyncLag], which must cover multi-
// second RLC queue backlogs (a 3G uplink under load runs ~2500 PDU/s).
const resyncWindow = 100_000

// resyncLead is how far before the packet's capture timestamp the
// re-anchoring search starts. It must cover RLC reassembly and in-order
// head-of-line delays (downlink) and clock slop.
const resyncLead = 3 * simtime.Time(1e9) // 3 s

// resyncLag bounds how far after the capture timestamp a candidate first
// PDU may lie (uplink packets can queue behind a long RLC backlog).
const resyncLag = 20 * simtime.Time(1e9) // 20 s

// MappedPacket pairs an IP packet's wire bytes with its capture timestamp.
type MappedPacket struct {
	At   simtime.Time
	Data []byte
}

// LongJumpMap implements the §5.4.2 algorithm (Fig. 5): QxDM logs only the
// first 2 payload bytes of each PDU, so the mapper matches those 2 bytes at
// every PDU the packet spans, jumps over the rest of each PDU's payload
// ("long jump"), requires sequence-number continuity, and accepts a mapping
// only when a Length Indicator marks the packet's end at the exact
// cumulative offset. Capture-lost PDUs break continuity; the affected
// packets are reported unmapped, matching the paper's <100% mapping ratios.
//
// pdus must be a single direction's data PDUs. Retransmissions (duplicate
// sequence numbers) are ignored, keeping the first transmission of each SN.
//
// The resync path runs over a head-byte/LI candidate index (see pduIndex)
// instead of the seed's linear window walk; the result is bit-identical —
// longJumpMapLinear retains the seed algorithm as the equivalence
// reference for tests and A/B benchmarks.
func LongJumpMap(packets []MappedPacket, pdus []qxdm.PDURecord) MappingResult {
	return mapIndexed(packets, buildPDUIndex(dedupPDUs(pdus)), nil)
}

// mapIndexed is the shared mapping driver: natural-cursor continuation
// first, indexed timestamp-anchored resync on failure. When reasons is
// non-nil it additionally tallies the post-resync outcome per packet —
// "ok" (cursor continuation), "resync" (re-anchored), or the first failed
// check of the cursor attempt for packets that stay unmapped.
func mapIndexed(packets []MappedPacket, ix *pduIndex, reasons map[string]int) MappingResult {
	res := MappingResult{Total: len(packets), Packets: make([]PacketMapping, len(packets))}
	cursorPDU, cursorOff := 0, 0
	for pi, pkt := range packets {
		m, nextPDU, nextOff, ok, reason := tryMapReason(pkt.Data, ix.dedup, cursorPDU, cursorOff)
		if ok {
			res.Packets[pi] = m
			res.Mapped++
			cursorPDU, cursorOff = nextPDU, nextOff
			if reasons != nil {
				reasons["ok"]++
			}
			continue
		}
		// Resync: the packet may start at a later PDU (after capture-lost
		// PDUs) — either at a PDU's payload start, or right after a Length
		// Indicator inside one (the previous packet's tail shares the PDU).
		// The search is anchored to the packet's capture timestamp rather
		// than the cursor: generic packets (pure ACKs share identical head
		// bytes) would otherwise alias to arbitrarily distant slots and
		// poison every subsequent mapping.
		if m, nextPDU, nextOff, ok := ix.resync(pkt); ok {
			res.Packets[pi] = m
			res.Mapped++
			cursorPDU, cursorOff = nextPDU, nextOff
			if reasons != nil {
				reasons["resync"]++
			}
			continue
		}
		res.Packets[pi] = PacketMapping{Mapped: false}
		if reasons != nil {
			reasons[reason]++
		}
	}
	return res
}

// longJumpMapLinear is the seed implementation of LongJumpMap, with the
// O(resyncWindow) linear re-anchoring scan. It is retained verbatim as the
// reference the indexed mapper must match bit-for-bit (property tests,
// the serial analyzer engine, and the BENCH_PR4 A/B benchmarks).
func longJumpMapLinear(packets []MappedPacket, pdus []qxdm.PDURecord) MappingResult {
	dedup := dedupPDUs(pdus)
	res := MappingResult{Total: len(packets), Packets: make([]PacketMapping, len(packets))}

	cursorPDU, cursorOff := 0, 0
	for pi, pkt := range packets {
		if m, nextPDU, nextOff, ok := tryMap(pkt.Data, dedup, cursorPDU, cursorOff); ok {
			res.Packets[pi] = m
			res.Mapped++
			cursorPDU, cursorOff = nextPDU, nextOff
			continue
		}
		found := false
		start := anchorIndex(dedup, pkt.At-resyncLead)
		limit := start + resyncWindow
		if limit > len(dedup) {
			limit = len(dedup)
		}
	scan:
		for j := start; j < limit; j++ {
			if dedup[j].At > pkt.At+resyncLag {
				break
			}
			starts := []int{0}
			for _, li := range dedup[j].LI {
				if li < dedup[j].Size {
					starts = append(starts, li)
				}
			}
			for _, off := range starts {
				if m, nextPDU, nextOff, ok := tryMap(pkt.Data, dedup, j, off); ok {
					res.Packets[pi] = m
					res.Mapped++
					cursorPDU, cursorOff = nextPDU, nextOff
					found = true
					break scan
				}
			}
		}
		if !found {
			res.Packets[pi] = PacketMapping{Mapped: false}
		}
	}
	return res
}

// anchorIndex returns the index of the first deduplicated PDU transmitted
// at or after t. The seq-sorted slice is monotone in time except for
// capture-lost first transmissions replaced by later retransmissions, so
// the binary-search result is padded backwards past any local inversion.
func anchorIndex(dedup []qxdm.PDURecord, t simtime.Time) int {
	i := sort.Search(len(dedup), func(i int) bool { return dedup[i].At >= t })
	for i > 0 && dedup[i-1].At >= t {
		i--
	}
	// Conservative extra padding for inversions just before the anchor.
	const pad = 64
	if i > pad {
		return i - pad
	}
	return 0
}

// dedupPDUs drops ARQ retransmissions, keeping the first captured
// transmission of each sequence number, and returns the records in
// sequence order. (When QxDM misses a first transmission but catches its
// retransmission, the survivor appears late in the time-ordered log, so a
// sort by SN is required for the mapper's continuity walk.)
func dedupPDUs(pdus []qxdm.PDURecord) []qxdm.PDURecord {
	seen := make(map[uint32]bool, len(pdus))
	out := make([]qxdm.PDURecord, 0, len(pdus))
	for _, p := range pdus {
		if seen[p.Seq] {
			continue
		}
		seen[p.Seq] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// tryMap attempts to lay packet data into the PDU stream starting at
// (startPDU, startOff). It returns the mapping and the cursor position for
// the next packet. reason (for diagnostics) names the first check that
// failed: "eof", "cursor", "head", "gap", or "li".
func tryMap(data []byte, pdus []qxdm.PDURecord, startPDU, startOff int) (m PacketMapping, nextPDU, nextOff int, ok bool) {
	m, nextPDU, nextOff, ok, _ = tryMapReason(data, pdus, startPDU, startOff)
	return
}

func tryMapReason(data []byte, pdus []qxdm.PDURecord, startPDU, startOff int) (m PacketMapping, nextPDU, nextOff int, ok bool, reason string) {
	L := len(data)
	if L == 0 || startPDU >= len(pdus) {
		return m, 0, 0, false, "eof"
	}
	idx, off := startPDU, startOff
	consumed := 0
	for {
		if idx >= len(pdus) {
			return m, 0, 0, false, "eof"
		}
		pdu := pdus[idx]
		if off >= pdu.Size {
			return m, 0, 0, false, "cursor"
		}
		// Head check: entering this PDU at its payload start, the logged 2
		// bytes must match the packet bytes at the current offset.
		if off == 0 {
			if pdu.Head[0] != data[consumed] {
				return m, 0, 0, false, "head"
			}
			// The second head byte belongs to this packet only when the
			// packet extends at least two bytes into this PDU.
			if pdu.Size >= 2 && consumed+1 < L && pdu.Head[1] != data[consumed+1] {
				return m, 0, 0, false, "head"
			}
		}
		take := pdu.Size - off
		if take > L-consumed {
			take = L - consumed
		}
		consumed += take
		off += take
		if consumed == L {
			// The packet must end exactly at a Length Indicator.
			if !liAt(pdu, off) {
				return m, 0, 0, false, "li"
			}
			m = PacketMapping{Mapped: true, FirstPDU: startPDU, LastPDU: idx, PDUs: idx - startPDU + 1}
			if off == pdu.Size {
				return m, idx + 1, 0, true, ""
			}
			return m, idx, off, true, ""
		}
		// Advance to the next PDU; require sequence continuity (a capture
		// gap means we cannot account for the missing bytes).
		if idx+1 < len(pdus) && pdus[idx+1].Seq != pdu.Seq+1 {
			return m, 0, 0, false, "gap"
		}
		idx++
		off = 0
	}
}

// DiagnoseMap runs the exact LongJumpMap algorithm — natural cursor plus
// timestamp-anchored resync — and records the post-resync outcome of every
// packet (used by traceview and debugging): "ok" for cursor continuations,
// "resync" for packets recovered by re-anchoring, and the cursor attempt's
// first-failure reason ("eof", "cursor", "head", "gap", "li") for packets
// that stay unmapped. ok + resync always equals LongJumpMap's Mapped count
// on the same inputs; the seed version skipped the resync path entirely,
// so its tallies described a stricter mapper than the one actually used.
func DiagnoseMap(packets []MappedPacket, pdus []qxdm.PDURecord) map[string]int {
	reasons := map[string]int{}
	mapIndexed(packets, buildPDUIndex(dedupPDUs(pdus)), reasons)
	return reasons
}

func liAt(p qxdm.PDURecord, off int) bool {
	for _, li := range p.LI {
		if li == off {
			return true
		}
	}
	return false
}
