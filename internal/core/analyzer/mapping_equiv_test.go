package analyzer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/qxdm"
	"repro/internal/simtime"
)

// damage applies a randomized capture-loss pattern to a clean PDU stream:
// drops PDUs outright (QxDM misses the transmission entirely) and, for
// others, simulates "first transmission lost, retransmission captured" by
// pushing At several milliseconds late — which after the seq-sort leaves
// the local timestamp inversions anchorIndex must tolerate.
func damage(rng *rand.Rand, pdus []qxdm.PDURecord, dropP, lateP float64) []qxdm.PDURecord {
	out := make([]qxdm.PDURecord, 0, len(pdus))
	for _, p := range pdus {
		r := rng.Float64()
		switch {
		case r < dropP:
			continue
		case r < dropP+lateP:
			p.At += simtime.Time(time.Duration(1+rng.Intn(40)) * time.Millisecond)
			p.Retx = true
		}
		out = append(out, p)
	}
	return out
}

func sameMapping(a, b MappingResult) bool {
	if a.Mapped != b.Mapped || a.Total != b.Total {
		return false
	}
	return reflect.DeepEqual(a.Packets, b.Packets)
}

// Property: the indexed resync path is bit-identical to the seed's linear
// window scan — same Mapped/Total and identical per-packet FirstPDU/LastPDU
// — under randomized packet sizes, PDU payload sizes, capture loss, and
// retransmission-induced timestamp inversions.
func TestQuickIndexedMapperMatchesLinear(t *testing.T) {
	f := func(seed int64, ns []uint16, payloadSel, lossSel uint8) bool {
		if len(ns) == 0 || len(ns) > 40 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, len(ns))
		for i, n := range ns {
			sizes[i] = int(n%2000) + 1
		}
		payload := []int{40, 128, 480, 1400}[payloadSel%4]
		drop := []float64{0, 0.01, 0.05, 0.2}[lossSel%4]
		late := []float64{0, 0.02, 0.1}[int(lossSel/4)%3]
		packets := mkPackets(seed, sizes...)
		pdus := damage(rng, segment(rawData(packets), payload), drop, late)
		return sameMapping(LongJumpMap(packets, pdus), longJumpMapLinear(packets, pdus))
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Heavier deterministic sweep over loss rates, including streams long
// enough that the resync search meaningfully exercises the break-by-
// deadline path and the prefix-max fallback.
func TestIndexedMapperMatchesLinearAcrossLossRates(t *testing.T) {
	for _, drop := range []float64{0, 0.005, 0.02, 0.08, 0.3} {
		for _, late := range []float64{0, 0.05} {
			rng := rand.New(rand.NewSource(int64(drop*1000) + int64(late*100)))
			sizes := make([]int, 400)
			for i := range sizes {
				sizes[i] = 1 + rng.Intn(1500)
			}
			packets := mkPackets(7, sizes...)
			pdus := damage(rng, segment(rawData(packets), 40), drop, late)
			got := LongJumpMap(packets, pdus)
			want := longJumpMapLinear(packets, pdus)
			if !sameMapping(got, want) {
				t.Fatalf("drop=%v late=%v: indexed (mapped %d/%d) diverges from linear (mapped %d/%d)",
					drop, late, got.Mapped, got.Total, want.Mapped, want.Total)
			}
		}
	}
}

// Fuzz the indexed mapper against the linear reference with an arbitrary
// loss mask: each mask byte drops (odd) or delays (>=192) one PDU.
func FuzzIndexedMapperEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 0, 3, 0})
	f.Add(int64(9), []byte{1, 1, 1, 1, 1, 1})
	f.Add(int64(3), []byte{192, 0, 1, 200, 0, 0, 1})
	f.Fuzz(func(t *testing.T, seed int64, mask []byte) {
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, 60)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(1200)
		}
		packets := mkPackets(seed, sizes...)
		clean := segment(rawData(packets), 128)
		var pdus []qxdm.PDURecord
		for i, p := range clean {
			if len(mask) > 0 {
				m := mask[i%len(mask)]
				if m%2 == 1 {
					continue
				}
				if m >= 192 {
					p.At += simtime.Time(time.Duration(m) * time.Millisecond)
					p.Retx = true
				}
			}
			pdus = append(pdus, p)
		}
		got := LongJumpMap(packets, pdus)
		want := longJumpMapLinear(packets, pdus)
		if !sameMapping(got, want) {
			t.Fatalf("indexed (mapped %d/%d) diverges from linear (mapped %d/%d)",
				got.Mapped, got.Total, want.Mapped, want.Total)
		}
	})
}

// DiagnoseMap must describe the mapper actually used: cursor continuations
// plus resyncs account for every mapped packet.
func TestDiagnoseMapCountsResyncs(t *testing.T) {
	packets := mkPackets(2, 200, 200, 200, 200)
	pdus := segment(rawData(packets), 40)
	// Lose one PDU in the middle of packet 1 (same shape as
	// TestLongJumpLostPDUBreaksOnlyAffectedPackets): packet 1 stays
	// unmapped, packet 2 recovers via resync, packets 0 and 3 ride the
	// cursor.
	lost := append(append([]qxdm.PDURecord{}, pdus[:6]...), pdus[7:]...)
	reasons := DiagnoseMap(packets, lost)
	if reasons["ok"] != 2 || reasons["resync"] != 1 {
		t.Fatalf("reasons = %v, want ok:2 resync:1", reasons)
	}
	if reasons["ok"]+reasons["resync"] != LongJumpMap(packets, lost).Mapped {
		t.Fatalf("ok+resync != Mapped: %v", reasons)
	}
	unmapped := 0
	for k, v := range reasons {
		if k != "ok" && k != "resync" {
			unmapped += v
		}
	}
	if unmapped != 1 {
		t.Fatalf("want exactly 1 unmapped reason, got %v", reasons)
	}
}

// Invariant on randomized damage: DiagnoseMap's ok+resync always equals
// LongJumpMap's Mapped count, and the reason total equals Total.
func TestQuickDiagnoseMapConsistent(t *testing.T) {
	f := func(seed int64, ns []uint16, lossSel uint8) bool {
		if len(ns) == 0 || len(ns) > 30 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, len(ns))
		for i, n := range ns {
			sizes[i] = int(n%1500) + 1
		}
		drop := []float64{0, 0.05, 0.2}[lossSel%3]
		packets := mkPackets(seed, sizes...)
		pdus := damage(rng, segment(rawData(packets), 128), drop, 0.02)
		reasons := DiagnoseMap(packets, pdus)
		res := LongJumpMap(packets, pdus)
		total := 0
		for _, v := range reasons {
			total += v
		}
		return reasons["ok"]+reasons["resync"] == res.Mapped && total == res.Total
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
