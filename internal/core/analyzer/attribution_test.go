package analyzer_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/radio"
)

func TestAttributionShareAndTop(t *testing.T) {
	a := analyzer.Attribution{
		Total: 10 * time.Second,
		App:   time.Second, Radio: 4 * time.Second,
		Transport: 2 * time.Second, Server: 3 * time.Second,
	}
	for layer, want := range map[string]float64{
		"app": 0.1, "radio": 0.4, "transport": 0.2, "server": 0.3, "bogus": 0,
	} {
		if got := a.Share(layer); got != want {
			t.Errorf("Share(%s) = %v, want %v", layer, got, want)
		}
	}
	if got := a.Top(); got != "radio" {
		t.Errorf("Top() = %q, want radio", got)
	}
	if got := (analyzer.Attribution{}).Share("radio"); got != 0 {
		t.Errorf("zero-total Share = %v, want 0", got)
	}
	// Ties break toward the actionable layer: radio > transport > server > app.
	tie := analyzer.Attribution{Total: 4, App: 1, Radio: 1, Transport: 1, Server: 1}
	if got := tie.Top(); got != "radio" {
		t.Errorf("four-way tie Top() = %q, want radio", got)
	}
	tie.Radio = 0
	if got := tie.Top(); got != "transport" {
		t.Errorf("three-way tie Top() = %q, want transport", got)
	}
}

// TestAttributionsSumAndDeterminism: on a real browsing session every
// incident's layer components sum exactly to its total, and the feed is a
// pure function of the session (identical across analyzer re-runs).
func TestAttributionsSumAndDeterminism(t *testing.T) {
	s := browseSession(7, radio.ProfileLTE(), 3, true)
	atts := analyzer.NewCrossLayer(s).Attributions()
	if len(atts) == 0 {
		t.Fatal("browsing session produced no attributions")
	}
	for _, a := range atts {
		if sum := a.App + a.Radio + a.Transport + a.Server; sum != a.Total {
			t.Errorf("%s@%v: components sum to %v, total %v", a.Action, a.At, sum, a.Total)
		}
		if a.App < 0 || a.Radio < 0 || a.Transport < 0 || a.Server < 0 {
			t.Errorf("%s@%v: negative component: %+v", a.Action, a.At, a)
		}
	}
	if atts2 := analyzer.NewCrossLayer(s).Attributions(); !reflect.DeepEqual(atts, atts2) {
		t.Error("Attributions differ across analyzer re-runs on the same session")
	}
}
