package analyzer

import "repro/internal/qxdm"

// Hooks for external tests (package analyzer_test), which need the seed
// linear mapper and the engine internals to prove equivalence.

// LongJumpMapLinear exposes the seed reference mapper.
func LongJumpMapLinear(packets []MappedPacket, pdus []qxdm.PDURecord) MappingResult {
	return longJumpMapLinear(packets, pdus)
}

// NewCrossLayerSerialForTest runs the seed engine directly, regardless of
// the process-wide engine selection.
var NewCrossLayerSerialForTest = newCrossLayerSerial

// NewCrossLayerParallelForTest runs the indexed concurrent engine directly.
var NewCrossLayerParallelForTest = newCrossLayerParallel

// SplitPacketsForTest exposes the capture UL/DL partition for benchmarks.
var SplitPacketsForTest = splitPackets
