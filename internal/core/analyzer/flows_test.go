package analyzer

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/core/qoe"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

var (
	dev = netip.MustParseAddr("10.20.0.2")
	srv = netip.MustParseAddr("31.13.70.36")
	dns = netip.MustParseAddr("8.8.8.8")
)

// rec builds a pcap record at time t (ms) for a packet.
func rec(tMs int64, p *netsim.Packet) pcap.Record {
	return pcap.Record{At: simtime.Time(tMs) * simtime.Time(time.Millisecond), Data: p.Marshal()}
}

func tcpPkt(up bool, seq, ack uint32, flags uint8, payload int) *netsim.Packet {
	p := &netsim.Packet{
		Proto: netsim.ProtoTCP, Seq: seq, Ack: ack, Flags: flags,
		Payload: make([]byte, payload),
	}
	if up {
		p.Src = netsim.Endpoint{Addr: dev, Port: 40001}
		p.Dst = netsim.Endpoint{Addr: srv, Port: 443}
	} else {
		p.Src = netsim.Endpoint{Addr: srv, Port: 443}
		p.Dst = netsim.Endpoint{Addr: dev, Port: 40001}
	}
	return p
}

func TestExtractFlowsBasics(t *testing.T) {
	records := []pcap.Record{
		rec(0, tcpPkt(true, 100, 0, netsim.FlagSYN, 0)),
		rec(50, tcpPkt(false, 900, 101, netsim.FlagSYN|netsim.FlagACK, 0)),
		rec(100, tcpPkt(true, 101, 901, netsim.FlagACK, 0)),
		rec(110, tcpPkt(true, 101, 901, netsim.FlagACK|netsim.FlagPSH, 500)),
		rec(200, tcpPkt(false, 901, 601, netsim.FlagACK, 0)),
		rec(210, tcpPkt(false, 901, 601, netsim.FlagACK|netsim.FlagPSH, 1200)),
	}
	rep := ExtractFlows(records, dev)
	if len(rep.Flows) != 1 {
		t.Fatalf("flows = %d", len(rep.Flows))
	}
	f := rep.Flows[0]
	if f.Device.Addr != dev || f.Server.Addr != srv {
		t.Fatal("orientation wrong")
	}
	if f.ULPayload != 500 || f.DLPayload != 1200 {
		t.Fatalf("payload bytes: ul=%d dl=%d", f.ULPayload, f.DLPayload)
	}
	if f.Retransmissions != 0 {
		t.Fatalf("retransmissions = %d", f.Retransmissions)
	}
	if f.HandshakeRTT != 50*time.Millisecond {
		t.Fatalf("handshake RTT = %v", f.HandshakeRTT)
	}
	// Data RTT: data at 110ms, covering ACK at 200ms.
	if got := f.MeanRTT(); got != 90*time.Millisecond {
		t.Fatalf("mean RTT = %v", got)
	}
	if f.Duration() != 210*time.Millisecond {
		t.Fatalf("duration = %v", f.Duration())
	}
}

func TestRetransmissionDetection(t *testing.T) {
	records := []pcap.Record{
		rec(0, tcpPkt(true, 1000, 0, netsim.FlagACK|netsim.FlagPSH, 100)),
		rec(10, tcpPkt(true, 1100, 0, netsim.FlagACK|netsim.FlagPSH, 100)),
		rec(500, tcpPkt(true, 1000, 0, netsim.FlagACK|netsim.FlagPSH, 100)), // retx
		rec(600, tcpPkt(true, 1200, 0, netsim.FlagACK|netsim.FlagPSH, 100)), // new
	}
	rep := ExtractFlows(records, dev)
	if rep.Flows[0].Retransmissions != 1 {
		t.Fatalf("retransmissions = %d, want 1", rep.Flows[0].Retransmissions)
	}
}

func TestDNSAssociation(t *testing.T) {
	resp := &netsim.DNSMessage{ID: 9, Response: true, Name: "api.facebook.com", Answer: srv}
	dnsPkt := &netsim.Packet{
		Src: netsim.Endpoint{Addr: dns, Port: netsim.DNSPort}, Dst: netsim.Endpoint{Addr: dev, Port: 40900},
		Proto: netsim.ProtoUDP, Payload: netsim.MarshalDNS(resp),
	}
	records := []pcap.Record{
		rec(0, dnsPkt),
		rec(10, tcpPkt(true, 1, 0, netsim.FlagSYN, 0)),
	}
	rep := ExtractFlows(records, dev)
	if rep.Flows[0].Host != "api.facebook.com" {
		t.Fatalf("host = %q", rep.Flows[0].Host)
	}
	if got := rep.ByHost("api.facebook.com"); len(got) != 1 {
		t.Fatalf("ByHost = %d flows", len(got))
	}
	ul, dl := rep.HostBytes("api.facebook.com")
	if ul == 0 || dl != 0 {
		t.Fatalf("HostBytes = %d/%d", ul, dl)
	}
}

func TestWindowSpanAndOverlap(t *testing.T) {
	records := []pcap.Record{
		rec(100, tcpPkt(true, 1, 0, netsim.FlagACK|netsim.FlagPSH, 10)),
		rec(200, tcpPkt(true, 11, 0, netsim.FlagACK|netsim.FlagPSH, 10)),
		rec(900, tcpPkt(true, 21, 0, netsim.FlagACK|netsim.FlagPSH, 10)),
	}
	f := ExtractFlows(records, dev).Flows[0]
	ms := func(x int64) simtime.Time { return simtime.Time(x) * simtime.Time(time.Millisecond) }
	first, last, n := f.WindowSpan(ms(50), ms(500))
	if n != 2 || first != ms(100) || last != ms(200) {
		t.Fatalf("span = %v..%v n=%d", first, last, n)
	}
	if !f.Overlaps(ms(850), ms(950)) || f.Overlaps(ms(300), ms(800)) {
		t.Fatal("Overlaps wrong")
	}
}

func TestThroughputSeries(t *testing.T) {
	records := []pcap.Record{
		rec(0, tcpPkt(false, 1, 0, netsim.FlagACK|netsim.FlagPSH, 1000)),
		rec(500, tcpPkt(false, 1001, 0, netsim.FlagACK|netsim.FlagPSH, 1000)),
		rec(1500, tcpPkt(false, 2001, 0, netsim.FlagACK|netsim.FlagPSH, 1000)),
	}
	f := ExtractFlows(records, dev).Flows[0]
	bins := f.ThroughputSeries(time.Second, 2*time.Second)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Two 1040B frames in bin 0: 2*1040*8 bps.
	if want := 2 * 1040 * 8.0; bins[0] != want {
		t.Fatalf("bin0 = %v, want %v", bins[0], want)
	}
}

func TestResponsibleFlowPicksBusiest(t *testing.T) {
	// Two flows; flow B carries more bytes inside the window.
	other := netip.MustParseAddr("74.125.65.91")
	mk := func(server netip.Addr, port uint16, tMs int64, payload int) pcap.Record {
		p := &netsim.Packet{
			Src:   netsim.Endpoint{Addr: dev, Port: port},
			Dst:   netsim.Endpoint{Addr: server, Port: 443},
			Proto: netsim.ProtoTCP, Flags: netsim.FlagACK | netsim.FlagPSH,
			Payload: make([]byte, payload),
		}
		return rec(tMs, p)
	}
	records := []pcap.Record{
		mk(srv, 40001, 100, 100),
		mk(srv, 40001, 200, 100),
		mk(other, 40002, 150, 5000),
		mk(other, 40002, 250, 5000),
	}
	sess := &qoe.Session{Profile: radio.ProfileLTE(), DeviceAddr: dev, Packets: records}
	cl := NewCrossLayer(sess)
	w := QoEWindow{From: 0, To: simtime.Time(time.Second)}
	f := cl.ResponsibleFlow(w)
	if f == nil || f.Server.Addr != other {
		t.Fatalf("responsible flow wrong: %+v", f)
	}
}

func TestOTARTTSamplesNearestPoll(t *testing.T) {
	ms := func(x int64) simtime.Time { return simtime.Time(x) * simtime.Time(time.Millisecond) }
	log := &qxdm.Log{
		PDUs: []qxdm.PDURecord{
			{At: ms(10), Dir: radio.Uplink, Seq: 0, Poll: true},
			{At: ms(20), Dir: radio.Uplink, Seq: 1},
			{At: ms(60), Dir: radio.Uplink, Seq: 2, Poll: true},
		},
		Statuses: []qxdm.StatusRecord{
			{At: ms(80), Dir: radio.Uplink},  // nearest poll at 60 -> 20ms
			{At: ms(200), Dir: radio.Uplink}, // nearest poll still 60 -> 140ms
			{At: ms(5), Dir: radio.Uplink},   // no poll before -> skipped
		},
	}
	samples := OTARTTSamples(log, radio.Uplink)
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0] != 20*time.Millisecond || samples[1] != 140*time.Millisecond {
		t.Fatalf("samples = %v", samples)
	}
	if got := OTARTTSamples(log, radio.Downlink); len(got) != 0 {
		t.Fatalf("downlink samples = %d", len(got))
	}
	if m := MedianOTARTT(log); m != 140*time.Millisecond {
		t.Fatalf("median = %v", m)
	}
}

func TestTransitionsInAndStateAt(t *testing.T) {
	sec := func(s int64) simtime.Time { return simtime.Time(s) * simtime.Time(time.Second) }
	prof := radio.Profile3G()
	log := &qxdm.Log{Transitions: []qxdm.TransitionRecord{
		{At: sec(10), From: radio.StatePCH, To: radio.StateDCH, Promotion: true},
		{At: sec(20), From: radio.StateDCH, To: radio.StateFACH},
	}}
	if got := len(TransitionsIn(log, sec(5), sec(15))); got != 1 {
		t.Fatalf("transitions in window = %d", got)
	}
	if StateAt(prof, log, sec(5)) != radio.StatePCH {
		t.Fatal("state before first transition wrong")
	}
	if StateAt(prof, log, sec(15)) != radio.StateDCH {
		t.Fatal("state mid wrong")
	}
	if StateAt(prof, log, sec(25)) != radio.StateFACH {
		t.Fatal("state after wrong")
	}
}
