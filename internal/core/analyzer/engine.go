package analyzer

import (
	"sync"

	"repro/internal/core/qoe"
	"repro/internal/qxdm"
	"repro/internal/radio"
)

// Engine selects the cross-layer analyzer implementation.
type Engine int32

const (
	// EngineParallel is the default: a pipelined, index-backed engine. The
	// capture is decoded exactly once into a shared read-only form, then
	// flow reassembly, PDU dedup/indexing, packet splitting, the radio
	// coverage audit, the two directional long-jump mappings, and the
	// trace cross-check run as concurrent stages joined by a deterministic
	// merge — the per-layer passes of QoE Doctor §5 are independent until
	// the final binding, which is exactly the shape that parallelizes.
	EngineParallel Engine = iota
	// EngineSerial is the seed batch analyzer: one goroutine, linear
	// resync scans. Retained as the equivalence reference for golden
	// tests and A/B benchmarks (qoedoctor -analyzer=serial).
	EngineSerial
)

// Option configures one analysis call.
type Option func(*config)

type config struct {
	engine Engine
}

// WithEngine selects the analyzer implementation for this call only,
// overriding the process-wide default.
func WithEngine(e Engine) Option {
	return func(c *config) { c.engine = e }
}

// NewCrossLayer runs flow extraction and both long-jump mappings. Missing or
// truncated inputs produce Warnings and a partial analysis rather than an
// error: the tool should still explain what it can observe. Both engines
// produce byte-identical results; see DESIGN.md §10 for the determinism
// argument.
func NewCrossLayer(sess *qoe.Session, opts ...Option) *CrossLayer {
	cfg := config{engine: EngineParallel}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engine == EngineSerial {
		return newCrossLayerSerial(sess)
	}
	return newCrossLayerParallel(sess)
}

// newCrossLayerParallel is the indexed concurrent engine.
//
// Stage graph (edges are WaitGroup barriers, so every cross-stage read is
// ordered by a happens-before edge):
//
//	predecode (parallel chunks over the record slice)
//	  ├─ flow reassembly          ─┐
//	  ├─ UL PDU dedup + index      │
//	  ├─ DL PDU dedup + index      ├─ barrier ─┬─ UL long-jump mapping
//	  ├─ packet split (UL/DL)      │           ├─ DL long-jump mapping
//	  └─ radio coverage audit     ─┘           └─ trace cross-check
//	                                                └─ deterministic merge
//
// Determinism: every stage computes a pure function of the session; the
// only order-sensitive output is Warnings, which the final merge assembles
// in the seed engine's fixed order (capture, radio, trace) regardless of
// stage completion order. No stage iterates a map into an output.
func newCrossLayerParallel(sess *qoe.Session) *CrossLayer {
	c := &CrossLayer{Session: sess}
	predecode(sess.Packets)

	var wg sync.WaitGroup
	run := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}

	var ulIx, dlIx *pduIndex
	var covWarns, traceWarns []string
	run(func() { c.Flows = ExtractFlows(sess.Packets, sess.DeviceAddr) })
	if sess.Radio != nil {
		run(func() {
			ulIx = buildPDUIndex(dedupPDUs(directionPDUs(sess.Radio.PDUs, radio.Uplink)))
			c.ULPDUs = ulIx.dedup
		})
		run(func() {
			dlIx = buildPDUIndex(dedupPDUs(directionPDUs(sess.Radio.PDUs, radio.Downlink)))
			c.DLPDUs = dlIx.dedup
		})
		run(func() { c.ulPackets, c.dlPackets = splitPackets(sess) })
		run(func() { covWarns = radioCoverageWarnings(sess) })
	}
	wg.Wait()

	if sess.Radio != nil {
		run(func() { c.ULMap = mapIndexed(c.ulPackets, ulIx, nil) })
		run(func() { c.DLMap = mapIndexed(c.dlPackets, dlIx, nil) })
	}
	if len(sess.Trace) > 0 {
		run(func() { traceWarns = c.crossCheckTrace(sess.Trace) })
	}
	wg.Wait()

	// Deterministic warning merge, in the seed engine's order: capture
	// health, then radio health, then the trace cross-check.
	if len(sess.Packets) == 0 {
		c.warn("packet capture empty or absent; transport-layer analysis unavailable")
	}
	if sess.Radio == nil {
		if len(sess.Packets) > 0 {
			c.warn("QxDM log absent; radio-layer breakdowns unavailable")
		}
	} else {
		c.Warnings = append(c.Warnings, covWarns...)
	}
	c.Warnings = append(c.Warnings, traceWarns...)
	return c
}

// newCrossLayerSerial is the seed analyzer, preserved verbatim (single
// goroutine, linear resync scans) as the reference implementation.
func newCrossLayerSerial(sess *qoe.Session) *CrossLayer {
	c := &CrossLayer{Session: sess}
	defer func() {
		if len(sess.Trace) > 0 {
			c.CrossCheckTrace(sess.Trace)
		}
	}()
	c.Flows = ExtractFlows(sess.Packets, sess.DeviceAddr)
	if len(sess.Packets) == 0 {
		c.warn("packet capture empty or absent; transport-layer analysis unavailable")
	}
	if sess.Radio == nil {
		if len(sess.Packets) > 0 {
			c.warn("QxDM log absent; radio-layer breakdowns unavailable")
		}
		return c
	}
	c.Warnings = append(c.Warnings, radioCoverageWarnings(sess)...)
	c.ULPDUs = dedupPDUs(directionPDUs(sess.Radio.PDUs, radio.Uplink))
	c.DLPDUs = dedupPDUs(directionPDUs(sess.Radio.PDUs, radio.Downlink))
	c.ulPackets, c.dlPackets = splitPackets(sess)
	c.ULMap = longJumpMapLinear(c.ulPackets, c.ULPDUs)
	c.DLMap = longJumpMapLinear(c.dlPackets, c.DLPDUs)
	return c
}

// directionPDUs filters one direction's data PDUs out of the radio log.
func directionPDUs(pdus []qxdm.PDURecord, dir radio.Direction) []qxdm.PDURecord {
	var out []qxdm.PDURecord
	for _, p := range pdus {
		if p.Dir == dir {
			out = append(out, p)
		}
	}
	return out
}

// splitPackets partitions the capture into uplink and downlink mapper
// inputs, in capture order. Undecodable records are skipped, like the seed.
func splitPackets(sess *qoe.Session) (ul, dl []MappedPacket) {
	for i := range sess.Packets {
		rec := &sess.Packets[i]
		p, err := rec.Packet()
		if err != nil {
			continue
		}
		mp := MappedPacket{At: rec.At, Data: rec.Data}
		if p.Src.Addr == sess.DeviceAddr {
			ul = append(ul, mp)
		} else {
			dl = append(dl, mp)
		}
	}
	return ul, dl
}

// Pending is an in-flight cross-layer analysis started by Analyze.
type Pending struct {
	ch chan *CrossLayer
	cl *CrossLayer
}

// Analyze starts NewCrossLayer on its own goroutine and returns a handle,
// so a caller can overlap the analysis of a finished run with the
// simulation of the next one — the pipeline shape sweeps and multi-bed
// experiments want now that analysis, not simulation, dominates a cell.
func Analyze(sess *qoe.Session, opts ...Option) *Pending {
	p := &Pending{ch: make(chan *CrossLayer, 1)}
	go func() { p.ch <- NewCrossLayer(sess, opts...) }()
	return p
}

// Wait blocks until the analysis completes and returns it. Idempotent.
func (p *Pending) Wait() *CrossLayer {
	if p.cl == nil {
		p.cl = <-p.ch
	}
	return p.cl
}
