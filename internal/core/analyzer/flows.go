package analyzer

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/simtime"
)

// FlowPacket is one packet attributed to a flow.
type FlowPacket struct {
	At         simtime.Time
	Uplink     bool // device -> server
	WireLen    int
	PayloadLen int
	Seq, Ack   uint32
	Flags      uint8
	Retransmit bool
}

// Flow is one TCP conversation seen from the device, oriented
// device -> server.
type Flow struct {
	Device Endpoint
	Server Endpoint
	Host   string // DNS name of the server address, when observed

	Packets []FlowPacket

	ULBytes, DLBytes     int // wire bytes
	ULPayload, DLPayload int // TCP payload bytes
	Retransmissions      int
	Start, End           simtime.Time
	HandshakeRTT         time.Duration // SYN -> SYN/ACK at the device

	// Data-to-ACK RTT accounting (running sum, so MeanRTT is O(1) and the
	// flow does not accumulate one allocation per sample).
	rttSum time.Duration
	rttN   int

	// unsorted is set when packets were appended out of capture-time
	// order; window queries then fall back to a linear scan instead of
	// binary search. Capture and libpcap inputs are always time-ordered.
	unsorted bool
}

// Endpoint aliases netsim.Endpoint for the public analyzer API.
type Endpoint = netsim.Endpoint

// Duration is the flow's packet time span.
func (f *Flow) Duration() time.Duration { return time.Duration(f.End - f.Start) }

// MeanRTT returns the average data-to-ACK RTT observed at the device
// (uplink payload to covering downlink ACK), falling back to the handshake
// RTT.
func (f *Flow) MeanRTT() time.Duration {
	if f.rttN == 0 {
		return f.HandshakeRTT
	}
	return f.rttSum / time.Duration(f.rttN)
}

// windowRange returns the half-open packet index range [lo, hi) whose
// capture times fall inside [from, to], by binary search over the
// time-sorted packet slice. ok is false when the flow's packets are not
// time-sorted and callers must scan linearly.
func (f *Flow) windowRange(from, to simtime.Time) (lo, hi int, ok bool) {
	if f.unsorted {
		return 0, 0, false
	}
	lo = sort.Search(len(f.Packets), func(i int) bool { return f.Packets[i].At >= from })
	hi = lo + sort.Search(len(f.Packets)-lo, func(i int) bool { return f.Packets[lo+i].At > to })
	return lo, hi, true
}

// Overlaps reports whether the flow carried any packet inside [from, to].
func (f *Flow) Overlaps(from, to simtime.Time) bool {
	if lo, hi, ok := f.windowRange(from, to); ok {
		return lo < hi
	}
	for _, p := range f.Packets {
		if p.At >= from && p.At <= to {
			return true
		}
	}
	return false
}

// WindowSpan returns the earliest and latest packet times inside the
// window, the paper's per-flow network latency (§7.2): the timestamp
// difference between the first and last packet of the flow in the QoE
// window.
func (f *Flow) WindowSpan(from, to simtime.Time) (first, last simtime.Time, n int) {
	if lo, hi, ok := f.windowRange(from, to); ok {
		if lo >= hi {
			return -1, -1, 0
		}
		return f.Packets[lo].At, f.Packets[hi-1].At, hi - lo
	}
	first, last = -1, -1
	for _, p := range f.Packets {
		if p.At < from || p.At > to {
			continue
		}
		if first < 0 {
			first = p.At
		}
		last = p.At
		n++
	}
	return first, last, n
}

// WindowBytes sums the wire bytes of the flow's packets inside [from, to]
// (the ResponsibleFlow traffic measure).
func (f *Flow) WindowBytes(from, to simtime.Time) int {
	bytes := 0
	if lo, hi, ok := f.windowRange(from, to); ok {
		for i := lo; i < hi; i++ {
			bytes += f.Packets[i].WireLen
		}
		return bytes
	}
	for _, p := range f.Packets {
		if p.At >= from && p.At <= to {
			bytes += p.WireLen
		}
	}
	return bytes
}

// ThroughputSeries bins the flow's downlink wire bytes into width-sized
// bins starting at the flow start, returning bits-per-second per bin
// (Fig. 18's time series).
func (f *Flow) ThroughputSeries(width, horizon time.Duration) []float64 {
	var ts metrics.TimeSeries
	for _, p := range f.Packets {
		if !p.Uplink {
			ts.Add(time.Duration(p.At-f.Start), float64(p.WireLen))
		}
	}
	bins := ts.Bin(width, horizon)
	for i := range bins {
		bins[i] = bins[i] * 8 / width.Seconds()
	}
	return bins
}

// FlowReport is the transport/network layer analysis of a capture.
type FlowReport struct {
	Flows []*Flow
	// DNSNames maps resolved addresses to hostnames, recovered from DNS
	// responses in the trace (§5.2).
	DNSNames map[netip.Addr]string
	// TotalUL and TotalDL are whole-trace wire byte counts (all protocols).
	TotalUL, TotalDL int
}

// ByHost returns flows whose server resolved to host.
func (r *FlowReport) ByHost(host string) []*Flow {
	var out []*Flow
	for _, f := range r.Flows {
		if f.Host == host {
			out = append(out, f)
		}
	}
	return out
}

// HostBytes sums wire bytes of flows to host.
func (r *FlowReport) HostBytes(host string) (ul, dl int) {
	for _, f := range r.ByHost(host) {
		ul += f.ULBytes
		dl += f.DLBytes
	}
	return ul, dl
}

// flowState tracks retransmission and RTT detection per flow.
type flowState struct {
	flow        *Flow
	maxSeqEndUL uint32
	haveSeqUL   bool
	maxSeqEndDL uint32
	haveSeqDL   bool
	synAt       simtime.Time
	synSeen     bool
	// pending RTT sample: uplink payload segment awaiting its ACK.
	sampleEnd uint32
	sampleAt  simtime.Time
	sampleSet bool
}

// ExtractFlows runs the §5.2 analysis: parse the raw trace, extract TCP
// flows keyed by the 4-tuple, associate each flow with a server hostname
// via the DNS lookups in the same trace, and compute byte counts,
// retransmissions, and RTTs. deviceAddr orients each flow.
func ExtractFlows(records []pcap.Record, deviceAddr netip.Addr) *FlowReport {
	report := &FlowReport{DNSNames: make(map[netip.Addr]string)}
	states := make(map[netsim.FlowKey]*flowState)

	for i := range records {
		rec := &records[i]
		p, err := rec.Packet()
		if err != nil {
			continue
		}
		uplink := p.Src.Addr == deviceAddr
		if uplink {
			report.TotalUL += p.WireLen()
		} else {
			report.TotalDL += p.WireLen()
		}
		if p.Proto == netsim.ProtoUDP {
			if m := rec.DNS(); m != nil && m.Response && m.Answer.IsValid() {
				report.DNSNames[m.Answer] = m.Name
			}
			continue
		}
		if p.Proto != netsim.ProtoTCP {
			continue
		}
		dev, srv := p.Src, p.Dst
		if !uplink {
			dev, srv = p.Dst, p.Src
		}
		key := netsim.FlowKey{Src: dev, Dst: srv, Proto: netsim.ProtoTCP}
		st, ok := states[key]
		if !ok {
			st = &flowState{flow: &Flow{Device: dev, Server: srv, Start: rec.At}}
			states[key] = st
			report.Flows = append(report.Flows, st.flow)
		}
		f := st.flow
		fp := FlowPacket{
			At: rec.At, Uplink: uplink, WireLen: p.WireLen(),
			PayloadLen: len(p.Payload), Seq: p.Seq, Ack: p.Ack, Flags: p.Flags,
		}
		// Retransmission detection: payload below the direction's
		// high-water sequence mark.
		if len(p.Payload) > 0 {
			end := p.Seq + uint32(len(p.Payload))
			maxEnd, have := &st.maxSeqEndUL, &st.haveSeqUL
			if !uplink {
				maxEnd, have = &st.maxSeqEndDL, &st.haveSeqDL
			}
			if *have && int32(end-*maxEnd) <= 0 {
				fp.Retransmit = true
				f.Retransmissions++
			}
			if !*have || int32(end-*maxEnd) > 0 {
				*maxEnd = end
				*have = true
			}
		}
		// Handshake RTT: device SYN -> server SYN/ACK.
		if p.Flags&netsim.FlagSYN != 0 {
			if uplink && p.Flags&netsim.FlagACK == 0 {
				st.synAt = rec.At
				st.synSeen = true
			} else if !uplink && p.Flags&netsim.FlagACK != 0 && st.synSeen && f.HandshakeRTT == 0 {
				f.HandshakeRTT = time.Duration(rec.At - st.synAt)
			}
		}
		// Data RTT samples: one outstanding uplink segment at a time.
		if uplink && len(p.Payload) > 0 && !fp.Retransmit && !st.sampleSet {
			st.sampleEnd = p.Seq + uint32(len(p.Payload))
			st.sampleAt = rec.At
			st.sampleSet = true
		} else if !uplink && st.sampleSet && p.Flags&netsim.FlagACK != 0 && int32(p.Ack-st.sampleEnd) >= 0 {
			f.rttSum += time.Duration(rec.At - st.sampleAt)
			f.rttN++
			st.sampleSet = false
		}

		if len(f.Packets) > 0 && fp.At < f.Packets[len(f.Packets)-1].At {
			f.unsorted = true
		}
		f.Packets = append(f.Packets, fp)
		f.End = rec.At
		if uplink {
			f.ULBytes += fp.WireLen
			f.ULPayload += fp.PayloadLen
		} else {
			f.DLBytes += fp.WireLen
			f.DLPayload += fp.PayloadLen
		}
	}

	// Hostname association.
	for _, f := range report.Flows {
		f.Host = report.DNSNames[f.Server.Addr]
	}
	sort.Slice(report.Flows, func(i, j int) bool { return report.Flows[i].Start < report.Flows[j].Start })
	return report
}
