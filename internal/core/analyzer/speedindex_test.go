package analyzer

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core/qoe"
	"repro/internal/simtime"
)

func fr(ms int64, c float64) qoe.Frame {
	return qoe.Frame{At: simtime.Time(ms) * simtime.Time(time.Millisecond), Complete: c}
}

func TestSpeedIndexInstantRender(t *testing.T) {
	// Fully complete at t=0: SI ~ 0.
	if si := SpeedIndex(0, []qoe.Frame{fr(0, 1)}); si != 0 {
		t.Fatalf("SI = %v, want 0", si)
	}
}

func TestSpeedIndexSingleStep(t *testing.T) {
	// Blank until 2 s, then complete: SI = 2 s.
	si := SpeedIndex(0, []qoe.Frame{fr(2000, 1)})
	if si != 2*time.Second {
		t.Fatalf("SI = %v, want 2s", si)
	}
}

func TestSpeedIndexProgressiveBeatsAllAtEnd(t *testing.T) {
	// Same total load time; progressive rendering should score better.
	progressive := []qoe.Frame{fr(500, 0.5), fr(1000, 0.9), fr(2000, 1)}
	allAtEnd := []qoe.Frame{fr(2000, 1)}
	sp := SpeedIndex(0, progressive)
	se := SpeedIndex(0, allAtEnd)
	if sp >= se {
		t.Fatalf("progressive SI (%v) not better than all-at-end (%v)", sp, se)
	}
	// Exact: 0.5s*1 + 0.5s*0.5 + 1s*0.1 = 0.85s.
	if want := 850 * time.Millisecond; sp != want {
		t.Fatalf("progressive SI = %v, want %v", sp, want)
	}
}

func TestSpeedIndexIgnoresPreStartFrames(t *testing.T) {
	frames := []qoe.Frame{fr(-100, 0.2), fr(1000, 1)}
	si := SpeedIndex(0, frames)
	// Pre-start completeness 0.2 carries into the window: 1s * 0.8.
	if want := 800 * time.Millisecond; si != want {
		t.Fatalf("SI = %v, want %v", si, want)
	}
}

func TestSpeedIndexEmptyAndClamping(t *testing.T) {
	if si := SpeedIndex(0, nil); si != 0 {
		t.Fatalf("empty SI = %v", si)
	}
	// Out-of-range completeness values are clamped.
	si := SpeedIndex(0, []qoe.Frame{fr(1000, 2.5)})
	if si != time.Second {
		t.Fatalf("SI = %v, want 1s with clamped completeness", si)
	}
}

// Property: SI is bounded by the time of the first complete frame, and is
// monotone in frame completeness (better frames never hurt).
func TestQuickSpeedIndexBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%10) + 1
		frames := make([]qoe.Frame, count)
		at := int64(0)
		for i := range frames {
			at += rng.Int63n(1000) + 1
			frames[i] = fr(at, rng.Float64())
		}
		frames[count-1].Complete = 1
		si := SpeedIndex(0, frames)
		end := time.Duration(frames[count-1].At)
		if si < 0 || si > end {
			return false
		}
		// Boost every frame to fully complete: SI must not increase.
		boosted := make([]qoe.Frame, count)
		for i, f := range frames {
			boosted[i] = qoe.Frame{At: f.At, Complete: 1}
		}
		return SpeedIndex(0, boosted) <= si
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
