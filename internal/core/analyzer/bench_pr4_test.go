// PR4 analyzer benchmarks: the indexed long-jump mapper against the seed's
// linear resync scan, and the parallel cross-layer engine against the
// serial one, on a mapping-heavy 3G workload (3.9% downlink QxDM capture
// loss drives constant resyncing — the worst case for the linear scan).
//
// TestWriteBenchPR4JSON (gated on BENCH_PR4_JSON, wired to
// `make bench-analyzer`) records the numbers and asserts the >=3x mapping
// speedup target; TestBenchComparePR4 (gated on BENCH_PR4_BASELINE, wired
// to `make bench-compare`) fails when a tracked benchmark regresses >20%
// against the checked-in BENCH_PR4.json.
package analyzer_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core/analyzer"
	"repro/internal/core/qoe"
	"repro/internal/qxdm"
	"repro/internal/radio"
)

// benchState is the shared workload: one deterministic 3G browsing session
// (downlink bulk transfer) built once and reused read-only by every
// benchmark, with the capture pre-split into mapper inputs.
type benchState struct {
	sess   *qoe.Session
	ul, dl []analyzer.MappedPacket
	ulPDUs []qxdm.PDURecord
	dlPDUs []qxdm.PDURecord
}

var (
	benchOnce sync.Once
	bench     benchState
)

func benchWorkload() *benchState {
	benchOnce.Do(func() {
		bench.sess = browseSession(42, radio.Profile3G(), 8, false)
		bench.ul, bench.dl = analyzer.SplitPacketsForTest(bench.sess)
		for _, p := range bench.sess.Radio.PDUs {
			if p.Dir == radio.Uplink {
				bench.ulPDUs = append(bench.ulPDUs, p)
			} else {
				bench.dlPDUs = append(bench.dlPDUs, p)
			}
		}
	})
	return &bench
}

func BenchmarkLongJumpMapLinear3G(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.LongJumpMapLinear(w.dl, w.dlPDUs)
	}
}

func BenchmarkLongJumpMapIndexed3G(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.LongJumpMap(w.dl, w.dlPDUs)
	}
}

func BenchmarkCrossLayerSerial(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.NewCrossLayerSerialForTest(w.sess)
	}
}

func BenchmarkCrossLayerParallel(b *testing.B) {
	w := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.NewCrossLayerParallelForTest(w.sess)
	}
}

type benchRecord struct {
	NsOp     int64 `json:"ns_op"`
	AllocsOp int64 `json:"allocs_op"`
	BytesOp  int64 `json:"bytes_op"`
}

func record(r testing.BenchmarkResult) benchRecord {
	return benchRecord{NsOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), BytesOp: r.AllocedBytesPerOp()}
}

// bestOf interleaves n measurements and keeps the fastest, damping
// scheduler noise the same way the PR2/PR3 bench writers do.
func bestOf(n int, f func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(f)
	for i := 1; i < n; i++ {
		if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

type benchPR4 struct {
	GoMaxProcs int `json:"go_max_procs"`
	Workload   struct {
		ULPackets     int     `json:"ul_packets"`
		DLPackets     int     `json:"dl_packets"`
		ULPDUs        int     `json:"ul_pdus"`
		DLPDUs        int     `json:"dl_pdus"`
		DLMappedRatio float64 `json:"dl_mapped_ratio"`
	} `json:"workload"`
	Mapping struct {
		Linear  benchRecord `json:"linear"`
		Indexed benchRecord `json:"indexed"`
		Speedup float64     `json:"speedup"`
	} `json:"mapping"`
	CrossLayer struct {
		Serial   benchRecord `json:"serial"`
		Parallel benchRecord `json:"parallel"`
		Speedup  float64     `json:"speedup"`
	} `json:"cross_layer"`
}

func TestWriteBenchPR4JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR4_JSON")
	if out == "" {
		t.Skip("BENCH_PR4_JSON not set")
	}
	w := benchWorkload()

	var rec benchPR4
	rec.GoMaxProcs = runtime.GOMAXPROCS(0)
	rec.Workload.ULPackets = len(w.ul)
	rec.Workload.DLPackets = len(w.dl)
	rec.Workload.ULPDUs = len(w.ulPDUs)
	rec.Workload.DLPDUs = len(w.dlPDUs)
	rec.Workload.DLMappedRatio = analyzer.LongJumpMap(w.dl, w.dlPDUs).Ratio()

	linear := bestOf(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzer.LongJumpMapLinear(w.dl, w.dlPDUs)
		}
	})
	indexed := bestOf(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzer.LongJumpMap(w.dl, w.dlPDUs)
		}
	})
	rec.Mapping.Linear = record(linear)
	rec.Mapping.Indexed = record(indexed)
	rec.Mapping.Speedup = float64(linear.NsPerOp()) / float64(indexed.NsPerOp())

	serial := bestOf(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzer.NewCrossLayerSerialForTest(w.sess)
		}
	})
	parallel := bestOf(3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzer.NewCrossLayerParallelForTest(w.sess)
		}
	})
	rec.CrossLayer.Serial = record(serial)
	rec.CrossLayer.Parallel = record(parallel)
	rec.CrossLayer.Speedup = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("mapping: linear %v -> indexed %v (%.1fx); cross-layer: serial %v -> parallel %v (%.2fx on %d procs)",
		rec.Mapping.Linear.NsOp, rec.Mapping.Indexed.NsOp, rec.Mapping.Speedup,
		rec.CrossLayer.Serial.NsOp, rec.CrossLayer.Parallel.NsOp, rec.CrossLayer.Speedup, rec.GoMaxProcs)

	// The PR4 acceptance target: the indexed resync must be at least 3x
	// faster than the seed's linear scan on this mapping-heavy workload.
	if rec.Mapping.Speedup < 3 {
		t.Errorf("indexed mapping speedup %.2fx, want >= 3x", rec.Mapping.Speedup)
	}
}

// TestBenchComparePR4 guards against performance regressions: it re-measures
// the tracked benchmarks and fails when ns/op exceeds the checked-in
// baseline by more than 20%.
func TestBenchComparePR4(t *testing.T) {
	base := os.Getenv("BENCH_PR4_BASELINE")
	if base == "" {
		t.Skip("BENCH_PR4_BASELINE not set")
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var want benchPR4
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	w := benchWorkload()

	check := func(name string, baseline benchRecord, f func(b *testing.B)) {
		if baseline.NsOp == 0 {
			t.Errorf("%s: baseline has no ns/op; regenerate with make bench-analyzer", name)
			return
		}
		got := bestOf(3, f)
		over := 100 * (float64(got.NsPerOp()) - float64(baseline.NsOp)) / float64(baseline.NsOp)
		t.Logf("%s: %d ns/op vs baseline %d (%+.1f%%)", name, got.NsPerOp(), baseline.NsOp, over)
		if over > 20 {
			t.Errorf("%s regressed %.1f%% over baseline (limit 20%%)", name, over)
		}
	}
	check("mapping/indexed", want.Mapping.Indexed, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzer.LongJumpMap(w.dl, w.dlPDUs)
		}
	})
	check("cross_layer/parallel", want.CrossLayer.Parallel, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzer.NewCrossLayerParallelForTest(w.sess)
		}
	})
}
