package analyzer

import (
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// Attribution is the paper's diagnosis turned into a monitoring primitive:
// one QoE incident's user-perceived latency split across the four layers a
// remediation controller could act on. The components always sum to Total.
//
//   - App: device-side time (parsing, rendering, app logic) — the
//     §7.2 device share of the device/network split.
//   - Radio: RLC transmission and first-hop OTA waits from the Fig. 9
//     breakdown, plus loss-induced stall time when the trace shows
//     link-layer drops (fault:drop, rlc:retx) inside the window.
//   - Transport: TCP retransmission/RTO stall time not explained by
//     radio-layer loss evidence, plus carrier-qdisc drops.
//   - Server: the remainder — core network and server processing.
type Attribution struct {
	Action string        `json:"action"`
	At     time.Duration `json:"at_ns"` // incident end, virtual time
	Total  time.Duration `json:"total_ns"`

	App       time.Duration `json:"app_ns"`
	Radio     time.Duration `json:"radio_ns"`
	Transport time.Duration `json:"transport_ns"`
	Server    time.Duration `json:"server_ns"`
}

// Share returns the named layer's fraction of the total (0 when the
// incident had no measured latency).
func (a Attribution) Share(layer string) float64 {
	if a.Total <= 0 {
		return 0
	}
	var d time.Duration
	switch layer {
	case "app":
		d = a.App
	case "radio":
		d = a.Radio
	case "transport":
		d = a.Transport
	case "server":
		d = a.Server
	}
	return float64(d) / float64(a.Total)
}

// Top names the layer with the largest share, breaking ties in the fixed
// order radio > transport > server > app (the actionable-first order: a
// tie should page the team that can actually change something).
func (a Attribution) Top() string {
	top, best := "app", a.App
	for _, c := range []struct {
		name string
		d    time.Duration
	}{{"server", a.Server}, {"transport", a.Transport}, {"radio", a.Radio}} {
		if c.d >= best {
			top, best = c.name, c.d
		}
	}
	return top
}

// lossEvidence counts loss-related trace instants inside [from, to]:
// radio-layer drops (fault chain, RLC retransmissions) versus
// transport-layer ones (TCP retx/RTO, carrier qdisc drops).
type lossEvidence struct {
	radioDrops int // fault:drop instants + rlc:retx
	tcpRetx    int // tcp:retx + tcp:rto
	qdiscDrops int // qdisc:drop (carrier throttle)
}

func (c *CrossLayer) lossEvidenceIn(from, to simtime.Time) lossEvidence {
	var ev lossEvidence
	f, t := time.Duration(from), time.Duration(to)
	for i := range c.Session.Trace {
		e := &c.Session.Trace[i]
		if e.Kind != obs.KindInstant || e.Start < f || e.Start > t {
			continue
		}
		switch e.Name {
		case "fault:drop", "rlc:retx":
			ev.radioDrops++
		case "tcp:retx", "tcp:rto":
			ev.tcpRetx++
		case "qdisc:drop":
			ev.qdiscDrops++
		}
	}
	return ev
}

// handoverStallIn sums the portion of connected-mode handover interruption
// windows (radio-layer "rrc:handover" spans, emitted by the mobility
// roamer) overlapping [from, to]. During those spans the data plane is
// frozen by the RRC procedure, so any user wait they cover is radio time by
// definition.
func (c *CrossLayer) handoverStallIn(from, to simtime.Time) time.Duration {
	f, t := time.Duration(from), time.Duration(to)
	var total time.Duration
	for i := range c.Session.Trace {
		e := &c.Session.Trace[i]
		if e.Kind != obs.KindSpan || e.Layer != obs.LayerRadio || e.Name != "rrc:handover" {
			continue
		}
		s, end := e.Start, e.End
		if s < f {
			s = f
		}
		if end > t {
			end = t
		}
		if end > s {
			total += end - s
		}
	}
	return total
}

// Attribute diagnoses one calibrated QoE incident. The split starts from
// the §7.2 device/network decomposition; the network share is then divided
// by the Fig. 9 breakdown (RLC + OTA + IP-to-RLC → radio) and the
// remainder ("other": retransmission stalls, core network, server think
// time) is allocated using cross-layer loss evidence: stall time
// proportional to observed retransmission events goes to the layer whose
// drops caused them — radio when link-layer drops are present in the
// window, transport otherwise — and what is left is server/core time.
func (c *CrossLayer) Attribute(l Latency) Attribution {
	w := WindowOf(l.Entry)
	a := Attribution{
		Action: l.Entry.Action,
		At:     time.Duration(w.To),
		Total:  l.Calibrated,
	}
	if a.Total <= 0 {
		return a
	}
	split := c.SplitDeviceNetwork(l)
	a.App = split.Device
	network := split.Network
	if network <= 0 {
		// No delivered traffic in the window. Normally that is the
		// Finding-1 signature (network off the critical path, all device
		// time) — but when the window holds retransmission evidence the
		// user was waiting on a stream the network had killed, and calling
		// that wait "app time" would misdirect the on-call. Reassign it to
		// the layer the drop evidence names: link-layer drops → radio,
		// carrier-qdisc drops or bare TCP retx → transport.
		if ho := c.handoverStallIn(w.From, w.To); ho > 0 && a.App > 0 {
			// The user was waiting out a handover interruption, not app
			// logic: that slice of the wait is radio time.
			if ho > a.App {
				ho = a.App
			}
			a.App -= ho
			a.Radio += ho
		}
		ev := c.lossEvidenceIn(w.From, w.To)
		if ev.tcpRetx > 0 && a.App > 0 {
			wait := a.App
			a.App = 0
			if total := ev.radioDrops + ev.qdiscDrops; total > 0 {
				radioPart := time.Duration(float64(wait) * float64(ev.radioDrops) / float64(total))
				a.Radio += radioPart
				a.Transport = wait - radioPart
			} else {
				a.Transport = wait
			}
		}
		return a
	}

	bd := c.BreakdownWindow(w.From, w.To)
	radio := bd.IPToRLC + bd.RLCTransmission + bd.FirstHopOTA
	if radio > network {
		radio = network
	}
	other := network - radio

	// Handover interruptions inside the window are radio time by definition
	// — the RRC procedure froze the data plane — capped at the part of the
	// network share not already explained by the Fig. 9 breakdown.
	if ho := c.handoverStallIn(w.From, w.To); ho > 0 && other > 0 {
		if ho > other {
			ho = other
		}
		radio += ho
		other -= ho
	}

	// Split "other" between loss-induced stall and server/core time. Each
	// TCP retransmission event stands for roughly one RTT of stall; cap at
	// the available budget.
	ev := c.lossEvidenceIn(w.From, w.To)
	var stall time.Duration
	if ev.tcpRetx > 0 && other > 0 {
		rtt := c.Session.Profile.OTARTT
		if split.Flow != nil {
			if m := split.Flow.MeanRTT(); m > 0 {
				rtt = m
			}
		}
		stall = time.Duration(ev.tcpRetx) * rtt
		if stall > other {
			stall = other
		}
		// Allocate the stall across radio and transport in proportion to
		// the drop evidence below and above the IP layer. No drop evidence
		// at all (retransmissions from reordering, say) reads as transport.
		if total := ev.radioDrops + ev.qdiscDrops; total > 0 {
			radioPart := time.Duration(float64(stall) * float64(ev.radioDrops) / float64(total))
			radio += radioPart
			a.Transport += stall - radioPart
		} else {
			a.Transport += stall
		}
	}
	a.Radio = radio
	a.Server = network - radio - a.Transport
	if a.Server < 0 {
		a.Server = 0
	}
	// Rounding slack lands on the server bucket so components sum exactly.
	if diff := a.Total - a.App - a.Radio - a.Transport - a.Server; diff > 0 {
		a.Server += diff
	}
	return a
}

// Attributions diagnoses every observed incident in the session's behavior
// log, in log order — the deterministic feed EmitReport streams into the
// store as attrib_* share events.
func (c *CrossLayer) Attributions() []Attribution {
	app := AnalyzeApp(c.Session.Behavior)
	out := make([]Attribution, 0, len(app.Latencies))
	for _, l := range app.Latencies {
		if !l.Entry.Observed {
			continue
		}
		out = append(out, c.Attribute(l))
	}
	return out
}
