// Package analyzer implements QoE Doctor's multi-layer QoE analyzer (§5):
// application-layer latency calibration, transport/network TCP flow
// analysis, RRC/RLC radio analysis, and the cross-layer machinery — QoE
// windows, the IP-to-RLC long-jump mapping, and the fine-grained network
// latency breakdown of Fig. 9.
package analyzer

import (
	"time"

	"repro/internal/core/qoe"
)

// Latency is one calibrated user-perceived latency measurement.
type Latency struct {
	Entry      qoe.BehaviorEntry
	Raw        time.Duration
	Calibrated time.Duration
}

// Calibrate applies the §5.1 correction to a raw measurement. For
// user-triggered waits the end timestamp carries t_offset + t_parsing with
// E[t_offset] = t_parsing/2, so 3/2 t_parsing is subtracted. For
// app-triggered waits the start timestamp is measured the same way as the
// end, so the offsets cancel and only t_parsing is subtracted.
func Calibrate(e qoe.BehaviorEntry) Latency {
	raw := e.RawLatency()
	var corr time.Duration
	switch e.Kind {
	case qoe.UserTriggered:
		corr = 3 * e.ParseTime / 2
	case qoe.AppTriggered:
		corr = e.ParseTime
	}
	cal := raw - corr
	if cal < 0 {
		cal = 0
	}
	return Latency{Entry: e, Raw: raw, Calibrated: cal}
}

// AppReport is the application-layer analysis of a behavior log.
type AppReport struct {
	Latencies []Latency
}

// AnalyzeApp calibrates every observed entry of the log.
func AnalyzeApp(log *qoe.BehaviorLog) AppReport {
	var r AppReport
	for _, e := range log.Entries {
		if !e.Observed {
			continue
		}
		r.Latencies = append(r.Latencies, Calibrate(e))
	}
	return r
}

// ByAction filters the report to one action.
func (r AppReport) ByAction(action string) []Latency {
	var out []Latency
	for _, l := range r.Latencies {
		if l.Entry.Action == action {
			out = append(out, l)
		}
	}
	return out
}

// CalibratedSeconds extracts the calibrated values (for CDFs and stats).
func CalibratedSeconds(ls []Latency) []float64 {
	out := make([]float64, len(ls))
	for i, l := range ls {
		out[i] = l.Calibrated.Seconds()
	}
	return out
}
