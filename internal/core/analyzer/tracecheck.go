package analyzer

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// traceOverlapSlack pads behavior-entry windows when looking for an
// overlapping app-layer span: controller timestamps include parse delay the
// trace does not, so exact endpoints never align.
const traceOverlapSlack = time.Second

// CrossCheckTrace validates the pcap/QxDM-derived analysis against the
// run's ground-truth trace. The trace sees every event at its source, so
// disagreement beyond the expected direction indicates an analyzer bug or a
// corrupted input; each is reported as a warning.
//
// Checks performed:
//
//   - TCP retransmissions: the device capture can only undercount (a
//     retransmitted segment dropped before the capture point is invisible),
//     so pcap counting MORE retransmissions than the trace is flagged.
//   - RRC residencies: the trace emits one span per contiguous state, so it
//     must hold exactly one more span than the QxDM log has transitions
//     (the initial state has no transition), or match exactly when the final
//     open span was not closed.
//   - App-layer coverage: every observed behavior entry should overlap some
//     app-layer span (the app emitted ground truth for the action the
//     controller measured).
func (c *CrossLayer) CrossCheckTrace(events []obs.TraceEvent) {
	c.Warnings = append(c.Warnings, c.crossCheckTrace(events)...)
}

// crossCheckTrace performs the checks and returns the warnings instead of
// appending them, so the parallel engine can run it as a concurrent stage
// and merge its output at a deterministic position.
func (c *CrossLayer) crossCheckTrace(events []obs.TraceEvent) []string {
	if len(events) == 0 {
		return nil
	}
	var warns []string
	warn := func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}
	var traceRetx, rrcSpans int
	type appSpan struct{ start, end time.Duration }
	var appSpans []appSpan
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Kind == obs.KindInstant && ev.Layer == obs.LayerTransport && ev.Name == "tcp:retx":
			traceRetx++
		case ev.Kind == obs.KindSpan && ev.Layer == obs.LayerRadio && strings.HasPrefix(ev.Name, "rrc:"):
			rrcSpans++
		case ev.Kind == obs.KindSpan && ev.Layer == obs.LayerApp:
			appSpans = append(appSpans, appSpan{ev.Start, ev.End})
		}
	}

	if c.Flows != nil && len(c.Session.Packets) > 0 {
		pcapRetx := 0
		for _, f := range c.Flows.Flows {
			pcapRetx += f.Retransmissions
		}
		if pcapRetx > traceRetx {
			warn("trace cross-check: capture shows %d TCP retransmissions but the trace recorded only %d; the capture should never see more than actually occurred",
				pcapRetx, traceRetx)
		}
	}

	if c.Session.Radio != nil && rrcSpans > 0 {
		transitions := len(c.Session.Radio.Transitions)
		if rrcSpans != transitions && rrcSpans != transitions+1 {
			warn("trace cross-check: QxDM log has %d RRC transitions but the trace has %d state spans (expected %d or %d)",
				transitions, rrcSpans, transitions, transitions+1)
		}
	}

	if c.Session.Behavior != nil && len(appSpans) > 0 {
		for _, e := range c.Session.Behavior.Entries {
			if !e.Observed {
				continue
			}
			from := time.Duration(e.Start) - traceOverlapSlack
			to := time.Duration(e.End) + traceOverlapSlack
			found := false
			for _, s := range appSpans {
				if s.start <= to && s.end >= from {
					found = true
					break
				}
			}
			if !found {
				warn("trace cross-check: behavior entry %s/%s [%v, %v] overlaps no app-layer trace span",
					e.App, e.Action, time.Duration(e.Start), time.Duration(e.End))
			}
		}
	}
	return warns
}
