package analyzer

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

// linearWindow is the seed's O(n) window scan, kept as the reference the
// binary-search path must match.
func linearWindow(f *Flow, from, to simtime.Time) (first, last simtime.Time, n, bytes int) {
	first, last = -1, -1
	for _, p := range f.Packets {
		if p.At < from || p.At > to {
			continue
		}
		if first < 0 {
			first = p.At
		}
		last = p.At
		n++
		bytes += p.WireLen
	}
	return first, last, n, bytes
}

func randomFlow(rng *rand.Rand, n int, sorted bool) *Flow {
	f := &Flow{}
	at := simtime.Time(0)
	for i := 0; i < n; i++ {
		if sorted {
			at += simtime.Time(time.Duration(rng.Intn(50)) * time.Millisecond)
		} else {
			at = simtime.Time(time.Duration(rng.Intn(2000)) * time.Millisecond)
		}
		fp := FlowPacket{At: at, WireLen: 40 + rng.Intn(1460)}
		if len(f.Packets) > 0 && fp.At < f.Packets[len(f.Packets)-1].At {
			f.unsorted = true
		}
		f.Packets = append(f.Packets, fp)
	}
	return f
}

// Property: binary-search window queries agree with the linear reference on
// time-sorted flows (including duplicate timestamps and empty windows), and
// the unsorted fallback agrees trivially.
func TestQuickWindowQueriesMatchLinear(t *testing.T) {
	f := func(seed int64, fromMs, widthMs uint16, nSel uint8, sorted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := randomFlow(rng, int(nSel%64), sorted)
		from := simtime.Time(time.Duration(fromMs%3000) * time.Millisecond)
		to := from + simtime.Time(time.Duration(widthMs%2000)*time.Millisecond)
		wFirst, wLast, wN, wBytes := linearWindow(fl, from, to)
		gFirst, gLast, gN := fl.WindowSpan(from, to)
		if gFirst != wFirst || gLast != wLast || gN != wN {
			return false
		}
		if fl.Overlaps(from, to) != (wN > 0) {
			return false
		}
		return fl.WindowBytes(from, to) == wBytes
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// MeanRTT with the running-sum representation: mean of the samples, with
// the handshake fallback when no sample exists.
func TestMeanRTTRunningSum(t *testing.T) {
	f := &Flow{HandshakeRTT: 80 * time.Millisecond}
	if f.MeanRTT() != 80*time.Millisecond {
		t.Fatalf("no samples: MeanRTT = %v, want handshake fallback", f.MeanRTT())
	}
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 60 * time.Millisecond} {
		f.rttSum += d
		f.rttN++
	}
	if f.MeanRTT() != 30*time.Millisecond {
		t.Fatalf("MeanRTT = %v, want 30ms", f.MeanRTT())
	}
}
