package analyzer

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core/qoe"
	"repro/internal/qxdm"
	"repro/internal/simtime"
)

// qxdmTruncationSlack is how far the packet capture must outlive the last
// radio record before the QxDM log is flagged as truncated. It absorbs the
// normal tail (a final burst's PDUs precede the last ACKs) without hiding a
// real mid-run logging gap.
const qxdmTruncationSlack = 2 * time.Second

// CrossLayer binds one session's layers together: flows from the capture,
// PDU streams from the QxDM log, and the IP-to-RLC mappings.
type CrossLayer struct {
	Session *qoe.Session
	Flows   *FlowReport

	ULPDUs []qxdm.PDURecord // deduplicated, first transmissions only
	DLPDUs []qxdm.PDURecord
	ULMap  MappingResult
	DLMap  MappingResult

	// Warnings lists non-fatal data-quality problems found while binding
	// the layers — absent or truncated logs, capture loss. A warning means
	// the analysis is partial, not wrong: affected breakdown components
	// degrade to coarser buckets instead of failing.
	Warnings []string

	ulPackets []MappedPacket
	dlPackets []MappedPacket
}

func (c *CrossLayer) warn(format string, args ...any) {
	c.Warnings = append(c.Warnings, fmt.Sprintf(format, args...))
}

// radioCoverageWarnings flags a QxDM log that is empty, lossy, or ends well
// before the packet capture does (QxDM killed or disabled mid-run). It is a
// pure function of the session so the parallel engine can run it as an
// independent stage.
func radioCoverageWarnings(sess *qoe.Session) []string {
	log := sess.Radio
	var warns []string
	warn := func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}
	if miss := log.Missed[0] + log.Missed[1]; miss > 0 {
		warn("QxDM capture loss: %d PDUs missing from the radio log; RLC-layer components are underestimates", miss)
	}
	var lastRadio simtime.Time = -1
	for _, tr := range log.Transitions {
		if tr.At > lastRadio {
			lastRadio = tr.At
		}
	}
	for _, p := range log.PDUs {
		if p.At > lastRadio {
			lastRadio = p.At
		}
	}
	for _, st := range log.Statuses {
		if st.At > lastRadio {
			lastRadio = st.At
		}
	}
	if len(sess.Packets) == 0 {
		return warns
	}
	if lastRadio < 0 {
		warn("QxDM log contains no radio records; radio-layer breakdowns unavailable")
		return warns
	}
	cutoff := lastRadio + simtime.Time(qxdmTruncationSlack)
	after := 0
	for i := range sess.Packets {
		if sess.Packets[i].At > cutoff {
			after++
		}
	}
	if after > 0 {
		warn("QxDM log appears truncated: last radio record at %v but %d captured packets follow (logging stopped mid-run?); later radio breakdowns fall back to \"other\"",
			time.Duration(lastRadio), after)
	}
	return warns
}

// QoEWindow is the interval of a user-perceived latency problem (§5.4.1).
type QoEWindow struct {
	From, To simtime.Time
}

// WindowOf derives the QoE window from a behavior entry.
func WindowOf(e qoe.BehaviorEntry) QoEWindow { return QoEWindow{From: e.Start, To: e.End} }

// ResponsibleFlow finds the TCP flow carrying the most traffic inside the
// window — the paper's flow-identification heuristic ("in most cases only
// one flow has traffic during the QoE window").
func (c *CrossLayer) ResponsibleFlow(w QoEWindow) *Flow {
	var best *Flow
	bestBytes := -1
	for _, f := range c.Flows.Flows {
		bytes := f.WindowBytes(w.From, w.To)
		if bytes > bestBytes && bytes > 0 {
			best, bestBytes = f, bytes
		}
	}
	return best
}

// DeviceNetworkSplit implements the §7.2 breakdown: network latency is the
// span between the responsible flow's first and last packet inside the QoE
// window; device latency is the remainder of the user-perceived latency.
// When no flow has traffic in the window, the whole latency is device time
// (the Finding-1 signature: the network is off the critical path).
type DeviceNetworkSplit struct {
	UserPerceived time.Duration
	Network       time.Duration
	Device        time.Duration
	Flow          *Flow // nil when no flow had traffic in the window
}

// SplitDeviceNetwork computes the split for one calibrated measurement.
func (c *CrossLayer) SplitDeviceNetwork(l Latency) DeviceNetworkSplit {
	w := WindowOf(l.Entry)
	s := DeviceNetworkSplit{UserPerceived: l.Calibrated}
	f := c.ResponsibleFlow(w)
	if f == nil {
		s.Device = l.Calibrated
		return s
	}
	first, last, n := f.WindowSpan(w.From, w.To)
	if n < 2 {
		s.Device = l.Calibrated
		return s
	}
	s.Flow = f
	s.Network = time.Duration(last - first)
	if s.Network > s.UserPerceived {
		s.Network = s.UserPerceived
	}
	s.Device = s.UserPerceived - s.Network
	return s
}

// NetworkBreakdown is the Fig. 8/9 fine-grained decomposition of network
// latency inside a QoE window.
type NetworkBreakdown struct {
	Total           time.Duration
	IPToRLC         time.Duration
	RLCTransmission time.Duration
	FirstHopOTA     time.Duration
	Other           time.Duration
	PDUCount        int // data PDUs (incl. retransmissions) in the window
	Bursts          int
}

// BreakdownWindow decomposes the interval [from, to]:
//
//   - RLC transmission delay: the sum of inter-PDU gaps within each RLC
//     burst, where a burst groups PDUs whose spacing is below the estimated
//     first-hop OTA RTT (§7.2's burst analysis).
//   - First-hop OTA delay: STATUS waits the device explicitly blocks on
//     (no data PDU between the polling PDU and its STATUS).
//   - IP-to-RLC delay: for mapped packets whose first PDU starts a burst,
//     the gap between the IP timestamp and that first PDU.
//   - Other: the remainder (core network, server processing, TCP dynamics).
func (c *CrossLayer) BreakdownWindow(from, to simtime.Time) NetworkBreakdown {
	bd := NetworkBreakdown{Total: time.Duration(to - from)}
	if c.Session.Radio == nil || bd.Total <= 0 {
		bd.Other = bd.Total
		return bd
	}
	rtt := MedianOTARTT(c.Session.Radio)
	if rtt <= 0 {
		rtt = c.Session.Profile.OTARTT
	}

	// All data PDU transmissions in the window (retransmissions included:
	// they occupy the channel too).
	var times []simtime.Time
	for _, p := range c.Session.Radio.PDUs {
		if p.At >= from && p.At <= to {
			times = append(times, p.At)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	bd.PDUCount = len(times)

	// Burst analysis.
	burstHeads := make(map[simtime.Time]bool)
	for i, t := range times {
		if i == 0 || time.Duration(t-times[i-1]) >= rtt {
			bd.Bursts++
			burstHeads[t] = true
		} else {
			bd.RLCTransmission += time.Duration(t - times[i-1])
		}
	}

	// Explicit STATUS waits.
	for _, st := range c.Session.Radio.Statuses {
		if st.At < from || st.At > to {
			continue
		}
		// Last polled data PDU before this status.
		var pollAt simtime.Time = -1
		var anyAfterPoll bool
		for _, p := range c.Session.Radio.PDUs {
			if p.At > st.At || p.At < from {
				continue
			}
			if p.Dir == st.Dir && p.Poll {
				pollAt = p.At
				anyAfterPoll = false
			} else if pollAt >= 0 && p.At > pollAt {
				anyAfterPoll = true
			}
		}
		if pollAt >= 0 && !anyAfterPoll {
			bd.FirstHopOTA += time.Duration(st.At - pollAt)
		}
	}

	// IP-to-RLC: burst-starting mapped packets.
	bd.IPToRLC += c.ipToRLC(c.ulPackets, c.ULMap, c.ULPDUs, burstHeads, from, to)
	bd.IPToRLC += c.ipToRLC(c.dlPackets, c.DLMap, c.DLPDUs, burstHeads, from, to)

	used := bd.IPToRLC + bd.RLCTransmission + bd.FirstHopOTA
	if used < bd.Total {
		bd.Other = bd.Total - used
	}
	return bd
}

func (c *CrossLayer) ipToRLC(packets []MappedPacket, m MappingResult, pdus []qxdm.PDURecord, burstHeads map[simtime.Time]bool, from, to simtime.Time) time.Duration {
	var sum time.Duration
	for i, pkt := range packets {
		if pkt.At < from || pkt.At > to || i >= len(m.Packets) || !m.Packets[i].Mapped {
			continue
		}
		first := pdus[m.Packets[i].FirstPDU]
		if !burstHeads[first.At] {
			continue
		}
		if d := time.Duration(first.At - pkt.At); d > 0 {
			sum += d
		}
	}
	return sum
}

// FlowToHostInWindow returns the hostname of the responsible flow, using
// the DNS association (§5.2); empty when unknown.
func (c *CrossLayer) FlowToHostInWindow(w QoEWindow) string {
	if f := c.ResponsibleFlow(w); f != nil {
		return f.Host
	}
	return ""
}

// DataConsumption sums device wire bytes over the capture, optionally
// restricted to flows resolved to host (empty host = everything).
func (c *CrossLayer) DataConsumption(host string) (ul, dl int) {
	if host == "" {
		return c.Flows.TotalUL, c.Flows.TotalDL
	}
	return c.Flows.HostBytes(host)
}
