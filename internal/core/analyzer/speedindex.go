package analyzer

import (
	"sort"
	"time"

	"repro/internal/core/qoe"
	"repro/internal/simtime"
)

// The paper's §4.2.3 notes that progress-bar disappearance is a coarse
// page-load signal and plans "capturing a video of the screen and then
// analyzing the video frames as implemented in [the] Speed Index metric for
// WebPagetest". This file implements that planned extension: the controller
// records visual-completeness frames from screen draws, and SpeedIndex
// integrates them.

// SpeedIndex computes the WebPagetest Speed Index over recorded frames:
// the integral of (1 - visual completeness) dt from start until the first
// fully-complete frame (or the last frame when never complete). Lower is
// better; for an instant render it approaches zero.
func SpeedIndex(start simtime.Time, frames []qoe.Frame) time.Duration {
	if len(frames) == 0 {
		return 0
	}
	fs := append([]qoe.Frame(nil), frames...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].At < fs[j].At })

	var si float64
	prevAt := start
	prevComplete := 0.0
	for _, f := range fs {
		if f.At < start {
			prevComplete = clamp01(f.Complete)
			continue
		}
		si += (1 - prevComplete) * time.Duration(f.At-prevAt).Seconds()
		prevAt = f.At
		prevComplete = clamp01(f.Complete)
		if prevComplete >= 1 {
			break
		}
	}
	return time.Duration(si * float64(time.Second))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
