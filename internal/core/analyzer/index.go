package analyzer

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/pcap"
	"repro/internal/qxdm"
	"repro/internal/simtime"
)

// pduIndex is a parse-once index over one direction's deduplicated PDU
// stream. It exists to make LongJumpMap's resync path O(candidates) instead
// of O(window): the seed analyzer re-anchored by linearly walking up to
// resyncWindow PDUs per unmapped packet, probing every slot; the index
// restricts the probes to the only slots that can possibly succeed.
//
// A resync candidate is either (a) a PDU entered at payload offset 0 —
// which tryMap rejects immediately unless the PDU's first logged head byte
// equals the packet's first byte — or (b) a PDU entered right after a
// Length Indicator (the previous packet's tail shares the PDU), which has
// no head-byte precondition. byHead posts (a) per first byte; liSlots posts
// (b). Both lists are in ascending slot order, so a two-pointer merge
// visits candidates in exactly the order the seed's linear scan would have
// reached them, and the first success is the same success.
type pduIndex struct {
	dedup []qxdm.PDURecord

	// byHead[b] lists the slots whose logged first head byte is b,
	// ascending. Entering such a slot at offset 0 is the only way an
	// offset-0 probe can pass tryMap's head check.
	byHead [256][]int32
	// liSlots lists the slots carrying at least one usable Length
	// Indicator (li < Size), ascending: the mid-PDU resync starts.
	liSlots []int32
	// prefMaxAt[i] is max(dedup[0..i].At). The dedup slice is seq-sorted
	// and therefore only approximately time-sorted (capture-lost first
	// transmissions survive as later retransmissions), so finding the
	// linear scan's break slot — the first slot at or after the anchor
	// whose At exceeds the resync deadline — needs a running maximum:
	// prefMaxAt is monotone, so that slot binary-searches in O(log n).
	prefMaxAt []simtime.Time
	// prefSize[i] is the sum of dedup[0..i-1].Size (len n+1), and runEnd[j]
	// the last slot of the maximal walkable run from j: every slot after j
	// up to runEnd[j] continues the sequence numbering with a non-empty
	// payload. Together they answer "where would a packet laid out at
	// (j, off) end, and could it get there?" in O(log n), which prunes
	// resync candidates without the full per-byte probe (candidate heads
	// are weak discriminators — every IPv4 packet starts 0x45).
	prefSize []int64
	runEnd   []int32
	// liFlat/liIdx are the per-slot Length Indicators in flat form (slot
	// j's LIs are liFlat[liIdx[j]:liIdx[j+1]]), and sizes/head0/head1 the
	// per-slot payload size and logged head bytes: the prune's hot loop
	// reads these dense side arrays instead of chasing each ~80-byte
	// PDURecord, which is most of the per-probe cost.
	liFlat []int32
	liIdx  []int32
	sizes  []int32
	head0  []byte
	head1  []byte
}

// buildPDUIndex indexes an already-deduplicated, seq-sorted PDU stream.
func buildPDUIndex(dedup []qxdm.PDURecord) *pduIndex {
	ix := &pduIndex{dedup: dedup}
	if len(dedup) == 0 {
		return ix
	}
	ix.prefMaxAt = make([]simtime.Time, len(dedup))
	ix.prefSize = make([]int64, len(dedup)+1)
	ix.liIdx = make([]int32, len(dedup)+1)
	ix.sizes = make([]int32, len(dedup))
	ix.head0 = make([]byte, len(dedup))
	ix.head1 = make([]byte, len(dedup))
	mx := dedup[0].At
	for i := range dedup {
		p := &dedup[i]
		ix.byHead[p.Head[0]] = append(ix.byHead[p.Head[0]], int32(i))
		ix.sizes[i] = int32(p.Size)
		ix.head0[i] = p.Head[0]
		ix.head1[i] = p.Head[1]
		usable := false
		for _, li := range p.LI {
			ix.liFlat = append(ix.liFlat, int32(li))
			if li < p.Size {
				usable = true
			}
		}
		if usable {
			ix.liSlots = append(ix.liSlots, int32(i))
		}
		ix.liIdx[i+1] = int32(len(ix.liFlat))
		if p.At > mx {
			mx = p.At
		}
		ix.prefMaxAt[i] = mx
		ix.prefSize[i+1] = ix.prefSize[i] + int64(p.Size)
	}
	ix.runEnd = make([]int32, len(dedup))
	ix.runEnd[len(dedup)-1] = int32(len(dedup) - 1)
	for j := len(dedup) - 2; j >= 0; j-- {
		if dedup[j+1].Seq == dedup[j].Seq+1 && dedup[j+1].Size > 0 {
			ix.runEnd[j] = ix.runEnd[j+1]
		} else {
			ix.runEnd[j] = int32(j)
		}
	}
	return ix
}

// canMap replicates tryMap's accept/reject walk for a resync candidate at
// (j, off) over the dense side arrays: sequence continuity and payload
// space (runEnd/prefSize), head-byte agreement at every offset-0 PDU entry,
// and a Length Indicator at the exact end offset. A false result is
// definitive; a true result still runs the authoritative tryMap — which
// then nearly always succeeds, so the scattered PDURecord loads are paid
// at most once per resync. The head check against the candidate slot
// itself (off == 0) is skipped: byHead posting already guarantees
// Head[0] and the caller's packet can never fail it.
//
// The entry-slot Head[1] byte IS checked here for off == 0 candidates,
// mirroring tryMap exactly; for LI candidates (off > 0) no entry head
// check applies.
func (ix *pduIndex) canMap(j, off, L int, data []byte) bool {
	rem := int(ix.sizes[j]) - off // bytes the entry slot can hold
	if rem >= L {
		// The packet ends inside the entry slot at offset off+L.
		return ix.liHas(j, int32(off+L))
	}
	re := int(ix.runEnd[j])
	if ix.prefSize[re+1]-ix.prefSize[j]-int64(off) < int64(L) {
		return false // sequence gap or empty PDU before the packet ends
	}
	consumed := rem
	for k := j + 1; ; k++ {
		if ix.head0[k] != data[consumed] {
			return false
		}
		sz := int(ix.sizes[k])
		if sz >= 2 && consumed+1 < L && ix.head1[k] != data[consumed+1] {
			return false
		}
		if L-consumed <= sz {
			// Ends inside slot k at offset L-consumed.
			return ix.liHas(k, int32(L-consumed))
		}
		consumed += sz
	}
}

// quickReject is the branch-only (inlinable) prefix of canMap: it applies
// the first one or two byte comparisons of the walk — the entry slot's
// second head byte and the following slot's first — which reject all but
// ~1/65536 of wrong candidates. false means "maybe"; canMap then finishes
// the walk.
func (ix *pduIndex) quickReject(j, off, L int, data []byte) bool {
	sz := int(ix.sizes[j])
	if off == 0 && sz >= 2 && L > 1 && ix.head1[j] != data[1] {
		return true
	}
	rem := sz - off
	if L <= rem {
		return false // ends inside the entry slot; only the LI check remains
	}
	if int(ix.runEnd[j]) == j {
		return true // sequence gap right after the entry slot
	}
	return ix.head0[j+1] != data[rem]
}

// liHas reports whether slot j carries a Length Indicator at off.
func (ix *pduIndex) liHas(j int, off int32) bool {
	for _, li := range ix.liFlat[ix.liIdx[j]:ix.liIdx[j+1]] {
		if li == off {
			return true
		}
	}
	return false
}

// lowerBound32 returns the index of the first element >= v.
func lowerBound32(s []int32, v int) int {
	return sort.Search(len(s), func(i int) bool { return int(s[i]) >= v })
}

// resync re-anchors one unmapped packet, returning the same mapping the
// seed's linear window scan would find. The scan interval and break
// condition are reproduced exactly: candidates start at the padded anchor
// for pkt.At-resyncLead, are capped at resyncWindow slots, and the scan
// stops at the first slot (in slot order, candidate or not) transmitted
// after pkt.At+resyncLag.
func (ix *pduIndex) resync(pkt MappedPacket) (m PacketMapping, nextPDU, nextOff int, ok bool) {
	if len(pkt.Data) == 0 || len(ix.dedup) == 0 {
		return PacketMapping{}, 0, 0, false
	}
	start := anchorIndex(ix.dedup, pkt.At-resyncLead)
	limit := start + resyncWindow
	if limit > len(ix.dedup) {
		limit = len(ix.dedup)
	}
	deadline := pkt.At + resyncLag
	scanEnd := limit
	// First slot anywhere with At > deadline; when it lies at or after the
	// anchor it is exactly where the linear scan would break.
	j0 := sort.Search(len(ix.prefMaxAt), func(i int) bool { return ix.prefMaxAt[i] > deadline })
	switch {
	case j0 >= start:
		if j0 < scanEnd {
			scanEnd = j0
		}
	default:
		// A slot before the anchor already exceeds the deadline (a large
		// time inversion), so the prefix maximum says nothing about
		// [start, limit); recover the exact break slot linearly. This
		// needs a multi-second retransmission delay to trigger at all.
		for j := start; j < limit; j++ {
			if ix.dedup[j].At > deadline {
				scanEnd = j
				break
			}
		}
	}

	L := len(pkt.Data)
	heads := ix.byHead[pkt.Data[0]]
	hi := lowerBound32(heads, start)
	li := lowerBound32(ix.liSlots, start)
	for {
		jh, jl := scanEnd, scanEnd
		if hi < len(heads) && int(heads[hi]) < scanEnd {
			jh = int(heads[hi])
		}
		if li < len(ix.liSlots) && int(ix.liSlots[li]) < scanEnd {
			jl = int(ix.liSlots[li])
		}
		j := min(jh, jl)
		if j >= scanEnd {
			return PacketMapping{}, 0, 0, false
		}
		// Probe offset 0 first, then the LI starts — the seed's order.
		// canMap culls candidates that cannot possibly fit before paying
		// for the authoritative per-byte probe.
		if j == jh {
			hi++
			if !ix.quickReject(j, 0, L, pkt.Data) && ix.canMap(j, 0, L, pkt.Data) {
				if m, np, no, ok := tryMap(pkt.Data, ix.dedup, j, 0); ok {
					return m, np, no, true
				}
			}
		}
		if j == jl {
			li++
			sz := ix.sizes[j]
			for _, off := range ix.liFlat[ix.liIdx[j]:ix.liIdx[j+1]] {
				if off < sz && !ix.quickReject(j, int(off), L, pkt.Data) && ix.canMap(j, int(off), L, pkt.Data) {
					if m, np, no, ok := tryMap(pkt.Data, ix.dedup, j, int(off)); ok {
						return m, np, no, true
					}
				}
			}
		}
	}
}

// predecode decodes every capture record's wire bytes exactly once, in
// parallel chunks. Record.Packet caches its result in the record, so after
// this barrier every later stage — flow reassembly, packet splitting, the
// mappers — reads the decoded form without re-parsing and without writes,
// which is what makes the concurrent stage graph race-free.
func predecode(recs []pcap.Record) {
	n := len(recs)
	// Below a few thousand records the goroutine fan-out costs more than
	// the decode.
	const parallelThreshold = 4096
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers <= 1 {
		for i := range recs {
			recs[i].Packet()
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				recs[i].Packet()
			}
		}(lo, hi)
	}
	wg.Wait()
}
