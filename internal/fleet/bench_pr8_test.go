package fleet_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/radio"
)

// shardedBenchRun simulates the PR 8 scaling workload: n UEs homed
// round-robin on 16 cells, one kernel per cell, arrivals staggered 1.5s
// apart within each shard (so every shard sees the same arrival cadence the
// single-cell record used). Returns the virtual horizon simulated.
func shardedBenchRun(n, workers int) time.Duration {
	const cells = 16
	const stagger = 1500 * time.Millisecond
	ues := fleet.SpreadGains(fleet.UniformUEs(n), 0.7, 1.3)
	for i := range ues {
		ues[i].StartAt = time.Duration(i/cells) * stagger
	}
	horizon := 2*time.Minute + time.Duration(n/cells)*stagger
	scen := fleet.Scenario{
		Seed:     42,
		Cell:     fleet.CellSpec{Policy: radio.SchedRoundRobin},
		Topology: &fleet.TopologySpec{Cells: cells},
		UEs:      ues,
		Workload: fleet.BrowseWorkload{Pages: 2, ThinkTime: 6 * time.Second},
	}
	if _, err := fleet.Run(scen, fleet.WithHorizon(horizon), fleet.WithWorkers(workers)); err != nil {
		panic(err)
	}
	return horizon
}

func BenchmarkShardedFleetUE256(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shardedBenchRun(256, 0)
	}
}

// pr8Size is one measured configuration, normalized per UE and per
// UE-virtual-second (the horizons differ between sizes, so the raw per-UE
// figure alone would conflate simulated time with framework cost).
type pr8Size struct {
	UEs         int     `json:"ues"`
	Cells       int     `json:"cells"`
	Workers     int     `json:"workers"`
	HorizonS    float64 `json:"horizon_s"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerUE     float64 `json:"ns_per_ue"`
	NsPerUESec  float64 `json:"ns_per_ue_vsec"`
	AllocsPerUE float64 `json:"allocs_per_ue"`
}

type pr8Doc struct {
	Workload string    `json:"workload"`
	Cores    int       `json:"cores"`
	Sizes    []pr8Size `json:"sizes"`
	// ScaleSharded is per-UE-virtual-second cost of the sharded N=1024 run
	// over the legacy single-cell N=1 run (budget 2x).
	ScaleSharded float64 `json:"per_ue_vsec_ratio_1024_vs_1"`
	// Speedup is workers=cores wall time over workers=1 on the N=1024 run;
	// gated (>= 2x) only when the machine has >= 4 cores.
	Speedup float64 `json:"speedup_parallel_vs_serial"`
}

// measurePR8 runs fn under testing.Benchmark best-of-`rounds` and fills a
// pr8Size from the fastest round.
func measurePR8(rounds int, fn func()) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				fn()
			}
		})
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// TestWriteBenchPR8JSON measures the sharded multi-cell fleet at N=1024
// against the legacy single-kernel N=1 baseline and writes the file named
// by BENCH_PR8_JSON (skipped when unset; `make bench-fleet` sets it).
// Gates: sharded per-UE-virtual-second cost within 2x of N=1, and — on
// machines with >= 4 cores — parallel shard workers at least 2x faster than
// workers=1.
func TestWriteBenchPR8JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR8_JSON")
	if out == "" {
		t.Skip("BENCH_PR8_JSON not set")
	}
	cores := runtime.NumCPU()
	doc := pr8Doc{
		Workload: "browse 2 pages/UE, rr cells, 16-cell grid, per-shard arrivals staggered 1.5s",
		Cores:    cores,
	}

	// Legacy single-cell, single-kernel baseline.
	legacyHorizon := 2*time.Minute + 1500*time.Millisecond
	r := measurePR8(3, func() { fleetBenchRun(1) })
	doc.Sizes = append(doc.Sizes, pr8Size{
		UEs: 1, Cells: 1, Workers: 1,
		HorizonS:    legacyHorizon.Seconds(),
		NsPerOp:     r.NsPerOp(),
		NsPerUE:     float64(r.NsPerOp()),
		NsPerUESec:  float64(r.NsPerOp()) / legacyHorizon.Seconds(),
		AllocsPerUE: float64(r.AllocsPerOp()),
	})

	// Sharded 1024-UE fleet, serial then parallel workers.
	const bigN = 1024
	var horizon time.Duration
	serial := measurePR8(2, func() { horizon = shardedBenchRun(bigN, 1) })
	add := func(workers int, r testing.BenchmarkResult) {
		doc.Sizes = append(doc.Sizes, pr8Size{
			UEs: bigN, Cells: 16, Workers: workers,
			HorizonS:    horizon.Seconds(),
			NsPerOp:     r.NsPerOp(),
			NsPerUE:     float64(r.NsPerOp()) / bigN,
			NsPerUESec:  float64(r.NsPerOp()) / bigN / horizon.Seconds(),
			AllocsPerUE: float64(r.AllocsPerOp()) / bigN,
		})
	}
	add(1, serial)
	parallel := serial
	if cores > 1 {
		parallel = measurePR8(2, func() { shardedBenchRun(bigN, cores) })
		add(cores, parallel)
	}

	doc.ScaleSharded = doc.Sizes[1].NsPerUESec / doc.Sizes[0].NsPerUESec
	doc.Speedup = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
	if doc.ScaleSharded > 2 {
		t.Errorf("sharded per-UE cost at N=1024 is %.2fx the single-UE cost (budget: 2x)", doc.ScaleSharded)
	}
	if cores >= 4 && doc.Speedup < 2 {
		t.Errorf("parallel shard speedup %.2fx on %d cores (floor: 2x)", doc.Speedup, cores)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sharded scale %.2fx, speedup %.2fx on %d cores", out, doc.ScaleSharded, doc.Speedup, cores)
}

// TestBenchComparePR8 guards the sharded fleet against wall-clock
// regressions: re-measure a smaller sharded run and fail if its ns/op
// exceeds the checked-in BENCH_PR8.json baseline's per-UE-virtual-second
// figure by more than 20%.
func TestBenchComparePR8(t *testing.T) {
	base := os.Getenv("BENCH_PR8_BASELINE")
	if base == "" {
		t.Skip("BENCH_PR8_BASELINE not set")
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var want pr8Doc
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	if len(want.Sizes) < 2 {
		t.Fatalf("baseline has %d sizes, want >= 2", len(want.Sizes))
	}
	// The serial sharded record (index 1) is the tracked figure; re-measure
	// the same configuration (fixed setup cost amortizes differently at
	// other sizes, so a smaller proxy run would not be apples-to-apples).
	const n = 1024
	var horizon time.Duration
	r := measurePR8(2, func() { horizon = shardedBenchRun(n, 1) })
	got := float64(r.NsPerOp()) / n / horizon.Seconds()
	baseline := want.Sizes[1].NsPerUESec
	if baseline <= 0 {
		t.Fatalf("baseline ns_per_ue_vsec = %v", baseline)
	}
	if got > baseline*1.2 {
		t.Errorf("sharded per-UE cost %.0f ns/UE/vsec exceeds baseline %.0f by more than 20%%", got, baseline)
	} else {
		t.Logf("sharded per-UE cost %.0f ns/UE/vsec vs baseline %.0f (within budget)", got, baseline)
	}
}
