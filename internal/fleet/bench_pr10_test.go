package fleet_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/radio"
)

// remedyOverheadRun is the control-plane overhead workload: a 16-UE
// single-cell browse fleet, either controller-free (spec nil) or with the
// controller in the given mode. Observe mode runs the full fold + diagnosis
// pipeline at every control tick but actuates nothing, so the delta over a
// nil spec is pure control-plane cost.
func remedyOverheadRun(spec *fleet.RemedySpec) {
	ues := fleet.SpreadGains(fleet.UniformUEs(16), 0.7, 1.3)
	for i := range ues {
		ues[i].StartAt = time.Duration(i) * 1500 * time.Millisecond
	}
	scen := fleet.Scenario{
		Seed:     42,
		Cell:     fleet.CellSpec{Policy: radio.SchedRoundRobin},
		UEs:      ues,
		Workload: fleet.BrowseWorkload{Pages: 2, ThinkTime: 6 * time.Second},
		Remedy:   spec,
	}
	if _, err := fleet.Run(scen, fleet.WithHorizon(2*time.Minute+16*1500*time.Millisecond)); err != nil {
		panic(err)
	}
}

// remedyStormRun is the actuation-throughput workload: n UEs homed
// round-robin on 16 cells, every downlink throttled to 40 kbit/s so page
// loads stall and the controller has real work at nearly every tick.
// Per-UE packet capture and radio logging are disabled so the measurement
// is dominated by simulation + control plane, not log retention.
func remedyStormRun(n, workers int) (*fleet.Report, time.Duration) {
	const cells = 16
	const stagger = 1500 * time.Millisecond
	ues := fleet.SpreadGains(fleet.UniformUEs(n), 0.7, 1.3)
	for i := range ues {
		ues[i].StartAt = time.Duration(i/cells) * stagger
		ues[i].ThrottleBps = 40e3
		ues[i].DisablePcap = true
		ues[i].DisableQxDM = true
	}
	horizon := 2*time.Minute + time.Duration(n/cells)*stagger
	scen := fleet.Scenario{
		Seed:     42,
		Cell:     fleet.CellSpec{Policy: radio.SchedRoundRobin},
		Topology: &fleet.TopologySpec{Cells: cells},
		UEs:      ues,
		Workload: fleet.BrowseWorkload{Pages: 2, ThinkTime: 6 * time.Second},
		Remedy:   &fleet.RemedySpec{},
	}
	f, err := fleet.Build(scen, fleet.WithHorizon(horizon), fleet.WithWorkers(workers))
	if err != nil {
		panic(err)
	}
	f.Drive()
	f.RunTo(horizon)
	f.CloseObs()
	return f.Report(), horizon
}

func BenchmarkRemedyStormUE256(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		remedyStormRun(256, 1)
	}
}

// pr10Storm is one remediated storm measurement. Interventions is the
// controller's total action count for the run — deterministic for the
// fixed seed, so a drift between machines signals a behavioral change, not
// noise. InterventionsPerSec is normalized by host wall-clock time.
type pr10Storm struct {
	UEs                 int     `json:"ues"`
	Cells               int     `json:"cells"`
	Workers             int     `json:"workers"`
	HorizonS            float64 `json:"horizon_s"`
	NsPerOp             int64   `json:"ns_per_op"`
	NsPerUESec          float64 `json:"ns_per_ue_vsec"`
	Interventions       int     `json:"interventions"`
	InterventionsPerSec float64 `json:"interventions_per_wall_sec"`
}

type pr10Doc struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`
	// Observe-mode control-plane overhead on the 16-UE fleet (budget 1.05x).
	FleetNsPerOp        int64   `json:"fleet_ns_per_op"`
	FleetObserveNsPerOp int64   `json:"fleet_observe_ns_per_op"`
	ObserveOverhead     float64 `json:"observe_overhead_ratio"`
	// Remediated throttled storms; index 0 (N=256) is the figure tracked by
	// the bench-remedy-compare regression gate.
	Storms []pr10Storm `json:"storms"`
}

func countReportInterventions(rep *fleet.Report) int {
	n := 0
	for _, u := range rep.UEs {
		n += len(u.Interventions)
	}
	return n
}

func measureStorm(n, rounds int) pr10Storm {
	var rep *fleet.Report
	var horizon time.Duration
	r := measurePR8(rounds, func() { rep, horizon = remedyStormRun(n, 1) })
	return pr10Storm{
		UEs: n, Cells: 16, Workers: 1,
		HorizonS:            horizon.Seconds(),
		NsPerOp:             r.NsPerOp(),
		NsPerUESec:          float64(r.NsPerOp()) / float64(n) / horizon.Seconds(),
		Interventions:       countReportInterventions(rep),
		InterventionsPerSec: float64(countReportInterventions(rep)) / (float64(r.NsPerOp()) / 1e9),
	}
}

// TestWriteBenchPR10JSON measures the remediation control plane and writes
// the file named by BENCH_PR10_JSON (skipped when unset; `make bench-remedy`
// sets it). Gates: observe-mode controller overhead within 5% of a
// controller-free run, and the controller actually intervening on the
// throttled storms.
func TestWriteBenchPR10JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR10_JSON")
	if out == "" {
		t.Skip("BENCH_PR10_JSON not set")
	}
	doc := pr10Doc{
		Workload: "browse 2 pages/UE; overhead: 16 UEs, 1 cell; storms: 16-cell grid, 40kbps throttle, remedy on",
		Cores:    runtime.NumCPU(),
	}

	base := measurePR8(3, func() { remedyOverheadRun(nil) })
	obs := measurePR8(3, func() { remedyOverheadRun(&fleet.RemedySpec{Observe: true}) })
	doc.FleetNsPerOp = base.NsPerOp()
	doc.FleetObserveNsPerOp = obs.NsPerOp()
	doc.ObserveOverhead = float64(obs.NsPerOp()) / float64(base.NsPerOp())
	if doc.ObserveOverhead > 1.05 {
		t.Errorf("observe-mode controller overhead %.3fx (budget: 1.05x)", doc.ObserveOverhead)
	}

	doc.Storms = append(doc.Storms, measureStorm(256, 2), measureStorm(1024, 1))
	for _, s := range doc.Storms {
		if s.Interventions == 0 {
			t.Errorf("N=%d storm produced no interventions; the throughput figure is vacuous", s.UEs)
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: observe overhead %.3fx, %d interventions at N=1024 (%.0f/s)",
		out, doc.ObserveOverhead, doc.Storms[1].Interventions, doc.Storms[1].InterventionsPerSec)
}

// TestBenchComparePR10 guards the control plane against regressions:
// re-measure the N=256 remediated storm and fail if its per-UE-virtual-
// second cost exceeds the checked-in BENCH_PR10.json figure by more than
// 20%, or if the deterministic intervention count drifted at all.
func TestBenchComparePR10(t *testing.T) {
	base := os.Getenv("BENCH_PR10_BASELINE")
	if base == "" {
		t.Skip("BENCH_PR10_BASELINE not set")
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var want pr10Doc
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	if len(want.Storms) == 0 || want.Storms[0].UEs != 256 {
		t.Fatalf("baseline lacks the N=256 storm record: %+v", want.Storms)
	}
	got := measureStorm(256, 2)
	baseline := want.Storms[0]
	if baseline.NsPerUESec <= 0 {
		t.Fatalf("baseline ns_per_ue_vsec = %v", baseline.NsPerUESec)
	}
	if got.NsPerUESec > baseline.NsPerUESec*1.2 {
		t.Errorf("remediated storm cost %.0f ns/UE/vsec exceeds baseline %.0f by more than 20%%",
			got.NsPerUESec, baseline.NsPerUESec)
	} else {
		t.Logf("remediated storm cost %.0f ns/UE/vsec vs baseline %.0f (within budget)",
			got.NsPerUESec, baseline.NsPerUESec)
	}
	if got.Interventions != baseline.Interventions {
		t.Errorf("intervention count drifted: got %d, baseline %d (same seed — this is behavioral, not noise)",
			got.Interventions, baseline.Interventions)
	}
}
