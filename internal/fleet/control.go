package fleet

import (
	"sort"
	"sync"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/simtime"
)

// This file is the fleet's runtime-control surface: typed remedy.Actions
// applied to live UEs at kernel-safe control points, identically in
// single-kernel and sharded/lockstep runs.
//
// Control hooks fire between kernel events (simtime.Kernel.SetControlHook),
// so a hook that decides nothing schedules nothing — a run with an idle or
// observe-only controller is byte-identical to a controller-free run. When a
// hook does act, the action is applied through a scheduled kernel event
// after ActionLatency (the control loop's sense-decide-actuate delay), so
// actuation composes with the event queue like any other model behaviour.
//
// In a sharded fleet each shard's kernel carries its own hook and a hook
// invocation only sees that shard's UEs, so per-UE decisions stay
// shard-local and goroutine-safe. Actions targeting a UE on another shard
// (the cross-cell coordination path) ride the lockstep epoch barrier: they
// are parked in a mailbox, canonically sorted by the serial coordinator,
// and scheduled on the target kernel at the epoch boundary — the same
// staleness bound the airtime exchange already obeys, so byte-determinism
// at any worker count is preserved.

// Remedy defaults, resolved by RemedySpec.resolved.
const (
	defaultRemedyInterval = 2 * time.Second
	defaultActionLatency  = 100 * time.Millisecond
	defaultActionEnergyJ  = 0.15
)

// RemedySpec enables the built-in root-cause-aware remediation controller
// (internal/remedy) on a scenario. The zero field values select the noted
// defaults.
type RemedySpec struct {
	// Interval is the control period (default 2s).
	Interval time.Duration
	// ActionLatency is the sense-decide-actuate delay between a decision
	// and its effect landing on the UE (default 100ms).
	ActionLatency time.Duration
	// Cooldown is the minimum gap between actions on one UE (default 10s).
	Cooldown time.Duration
	// MaxActionsPerUE is the per-UE intervention budget (default 4).
	MaxActionsPerUE int
	// EnergyPerActionJ charges each applied intervention to the UE's energy
	// account — control traffic and connection churn are not free
	// (default 0.15 J).
	EnergyPerActionJ float64
	// EdgeDelay is the one-way core latency to the edge replicas after a
	// server switch (default: a quarter of the cell's core delay).
	EdgeDelay time.Duration
	// Observe runs the full diagnosis pipeline without actuating — the
	// no-op controller, byte-invisible to the simulation.
	Observe bool
	// Actuator gates (all enabled by default).
	DisableServerSwitch bool
	DisableABR          bool
	DisableRRCRetune    bool
	// Cells restricts remediation to UEs homed on these topology cells
	// (empty = every UE). Only meaningful in multi-cell scenarios.
	Cells []int
}

// resolved returns a copy with defaults filled in.
func (s RemedySpec) resolved() RemedySpec {
	if s.Interval <= 0 {
		s.Interval = defaultRemedyInterval
	}
	if s.ActionLatency <= 0 {
		s.ActionLatency = defaultActionLatency
	}
	if s.EnergyPerActionJ == 0 {
		s.EnergyPerActionJ = defaultActionEnergyJ
	}
	return s
}

// Intervention records one remediation applied (or attempted) on a UE.
type Intervention struct {
	UE        int
	Kind      remedy.ActionKind
	Layer     remedy.Layer // diagnosed root-cause layer
	DecidedAt simtime.Time // control tick that issued the action
	AppliedAt simtime.Time // when the actuator ran (DecidedAt + latency)
	Note      string       // evidence summary from the controller
	EnergyJ   float64      // energy charged for the actuation
	// Applied is false when the actuator found nothing to do (e.g. an ABR
	// step with no active playback by the time the action landed).
	Applied bool
}

// ControlHook is a callback fired at control ticks with the UEs it may
// inspect and actuate. Hooks run between kernel events with the kernel
// clock at the tick time; they must not block and must only touch the UEs
// they are handed (plus ControlTick.Apply for any UE).
type ControlHook func(t ControlTick)

// ControlTick is one control-hook invocation.
type ControlTick struct {
	At simtime.Time
	// Shard is the firing shard (0 in single-kernel mode); UEs are the
	// devices hosted on that shard's kernel (every UE in single-kernel
	// mode).
	Shard int
	UEs   []*UE
	f     *Fleet
}

// Apply schedules action a on ue after the fleet's action latency. A UE on
// the tick's own kernel gets a normal scheduled event; a UE on another
// shard is reached through the epoch-barrier mailbox, landing at the next
// lockstep boundary plus latency — within the same X2-latency staleness
// bound every other cross-shard effect obeys.
func (t ControlTick) Apply(ue *UE, a remedy.Action) {
	lat := t.f.remedySpecResolved().ActionLatency
	if len(t.f.Shards) == 0 || ue.Shard == t.Shard {
		decidedAt := t.At
		ue.K.At(t.At+lat, func() { t.f.applyAction(ue, a, decidedAt) })
		return
	}
	t.f.mailMu.Lock()
	t.f.mailbox = append(t.f.mailbox, mailEntry{ue: ue, a: a, decidedAt: t.At})
	t.f.mailMu.Unlock()
}

// mailEntry is one cross-shard action parked until the epoch barrier.
type mailEntry struct {
	ue        *UE
	a         remedy.Action
	decidedAt simtime.Time
}

// ctlHook is one registered hook with its firing period.
type ctlHook struct {
	every simtime.Time
	fn    ControlHook
}

// controlState is the fleet's runtime-control bookkeeping, embedded in
// Fleet.
type controlState struct {
	hooks        []ctlHook
	ctlInstalled bool
	remCtl       *remedy.Controller

	mailMu  sync.Mutex
	mailbox []mailEntry
}

// OnControl registers a control hook fired every interval of virtual time
// (must be positive). Call it after Build and before RunTo. Multiple hooks
// may coexist; each fires at multiples of its own interval (the kernel hook
// runs at the GCD of all intervals).
func (f *Fleet) OnControl(interval time.Duration, fn ControlHook) {
	if interval <= 0 {
		panic("fleet: control interval must be positive")
	}
	f.hooks = append(f.hooks, ctlHook{every: simtime.Time(interval), fn: fn})
	f.ctlInstalled = false // re-resolve the GCD on next RunTo
}

// ScheduleAction schedules one remedy action on UE ueIndex at virtual time
// at — the scripted-intervention entry point (experiments injecting a known
// remediation at a known time). Call between Build and RunTo.
func (f *Fleet) ScheduleAction(at time.Duration, ueIndex int, a remedy.Action) {
	ue := f.UEs[ueIndex]
	ue.K.At(simtime.Time(at), func() { f.applyAction(ue, a, simtime.Time(at)) })
}

// remedySpecResolved returns the scenario's remedy spec with defaults, or
// all-default when the scenario has none (ScheduleAction on a plain fleet).
func (f *Fleet) remedySpecResolved() RemedySpec {
	if f.scen.Remedy != nil {
		return f.scen.Remedy.resolved()
	}
	return RemedySpec{}.resolved()
}

// installControl arms the kernel control hooks. Idempotent per hook set;
// called by RunTo so hooks registered between runs take effect.
func (f *Fleet) installControl() {
	if f.scen.Remedy != nil && f.remCtl == nil {
		f.installRemedy()
	}
	if f.ctlInstalled {
		return
	}
	f.ctlInstalled = true
	if len(f.hooks) == 0 {
		return
	}
	period := f.hooks[0].every
	for _, h := range f.hooks[1:] {
		period = gcdTime(period, h.every)
	}
	if f.K != nil {
		f.K.SetControlHook(period, func(now simtime.Time) {
			f.fireHooks(0, f.UEs, now)
		})
		return
	}
	for s, sh := range f.Shards {
		s, sh := s, sh
		sh.K.SetControlHook(period, func(now simtime.Time) {
			f.fireHooks(s, sh.UEs, now)
		})
	}
}

func gcdTime(a, b simtime.Time) simtime.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// fireHooks invokes every hook whose period divides now.
func (f *Fleet) fireHooks(shard int, ues []*UE, now simtime.Time) {
	for _, h := range f.hooks {
		if now%h.every == 0 {
			h.fn(ControlTick{At: now, Shard: shard, UEs: ues, f: f})
		}
	}
}

// installRemedy registers the built-in remediation controller as a control
// hook — the same public surface any custom controller would use.
func (f *Fleet) installRemedy() {
	spec := f.scen.Remedy.resolved()
	f.remCtl = remedy.NewController(remedy.Config{
		Interval:            spec.Interval,
		Cooldown:            spec.Cooldown,
		MaxActionsPerUE:     spec.MaxActionsPerUE,
		Observe:             spec.Observe,
		DisableServerSwitch: spec.DisableServerSwitch,
		DisableABR:          spec.DisableABR,
		DisableRRCRetune:    spec.DisableRRCRetune,
	}, len(f.UEs))
	var cellSet map[int]bool
	if len(spec.Cells) > 0 {
		cellSet = make(map[int]bool, len(spec.Cells))
		for _, c := range spec.Cells {
			cellSet[c] = true
		}
	}
	f.OnControl(spec.Interval, func(t ControlTick) {
		// The controller's per-UE state lives in a flat slice indexed by
		// UE, and each shard's hook only presents its own UEs, so
		// concurrent shard goroutines never touch the same element.
		for _, ue := range t.UEs {
			if cellSet != nil && !cellSet[ue.HomeCell] {
				continue
			}
			if a := f.remCtl.Decide(controlSignal(ue, t.At)); a != nil {
				t.Apply(ue, *a)
			}
		}
	})
}

// controlSignal samples one UE's live QoE state into the controller's
// input. Every read is a plain accessor — sampling schedules nothing and
// allocates nothing, keeping the control plane byte-invisible.
func controlSignal(ue *UE, now simtime.Time) remedy.Signal {
	sig := remedy.Signal{
		UE:             ue.Index,
		At:             time.Duration(now),
		VideoActive:    ue.YouTube.Active(),
		VideoStalled:   ue.YouTube.Stalled(),
		VideoStalls:    ue.YouTube.TotalStalls(),
		VideoRung:      ue.YouTube.QualityRung(),
		PageLoadAge:    ue.Browser.ActiveLoadAge(now),
		LoadFailures:   ue.Browser.LoadFailures,
		RRCTransitions: ue.Net.Bearer.RRC().Transitions(),
		ServerSwitched: ue.edgeActive,
		DemotionScale:  ue.Net.Bearer.RRC().DemotionScale(),
	}
	if ue.FaultUL != nil {
		sig.RadioDrops += ue.FaultUL.Dropped()
	}
	if ue.FaultDL != nil {
		sig.RadioDrops += ue.FaultDL.Dropped()
	}
	if ue.Roamer != nil {
		sig.Handovers = ue.Roamer.Handovers()
	}
	return sig
}

// deliverCrossShard drains the epoch mailbox at a lockstep barrier: entries
// are sorted canonically (shard goroutines appended them in racey order)
// and scheduled on their target kernels at the epoch boundary plus action
// latency. Runs serially on the coordinator.
func (f *Fleet) deliverCrossShard(end simtime.Time) {
	f.mailMu.Lock()
	box := f.mailbox
	f.mailbox = nil
	f.mailMu.Unlock()
	if len(box) == 0 {
		return
	}
	sort.Slice(box, func(i, j int) bool {
		a, b := box[i], box[j]
		if a.ue.Index != b.ue.Index {
			return a.ue.Index < b.ue.Index
		}
		if a.a.Kind != b.a.Kind {
			return a.a.Kind < b.a.Kind
		}
		if a.decidedAt != b.decidedAt {
			return a.decidedAt < b.decidedAt
		}
		return a.a.Note < b.a.Note
	})
	lat := f.remedySpecResolved().ActionLatency
	for _, m := range box {
		m := m
		m.ue.K.At(end+lat, func() { f.applyAction(m.ue, m.a, m.decidedAt) })
	}
}

// applyAction runs one actuator on a UE (inside a scheduled kernel event),
// records the Intervention, charges energy, and traces the control loop as
// a span from decision to actuation.
func (f *Fleet) applyAction(ue *UE, a remedy.Action, decidedAt simtime.Time) {
	spec := f.remedySpecResolved()
	now := ue.K.Now()
	applied := false
	switch a.Kind {
	case remedy.ActionServerSwitch:
		applied = f.switchToEdge(ue, spec)
	case remedy.ActionABRStepDown:
		applied = ue.YouTube.StepQuality(1)
	case remedy.ActionABRStepUp:
		applied = ue.YouTube.StepQuality(-1)
	case remedy.ActionRRCRetune:
		ue.Net.Bearer.RRC().SetDemotionScale(a.Scale)
		applied = true
	}
	var energy float64
	if applied {
		energy = spec.EnergyPerActionJ
		ue.RemedyEnergyJ += energy
	}
	ue.Interventions = append(ue.Interventions, Intervention{
		UE: ue.Index, Kind: a.Kind, Layer: a.Diagnosis,
		DecidedAt: decidedAt, AppliedAt: now,
		Note: a.Note, EnergyJ: energy, Applied: applied,
	})
	if ue.Trace != nil {
		ue.Trace.Emit(obs.TraceEvent{
			Kind: obs.KindSpan, Layer: obs.LayerApp,
			Name:  "remedy:" + a.Kind.String(),
			Start: time.Duration(decidedAt), End: time.Duration(now),
			ID: ue.Trace.NewID(),
			Attrs: []obs.Attr{
				{Key: "layer", Val: a.Diagnosis.String()},
				{Key: "note", Val: a.Note},
				{Key: "applied", Val: boolStr(applied)},
			},
		})
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// switchToEdge re-homes the UE's YouTube and web flows onto the edge
// replica cluster: install the replicas (first switch only; installing
// schedules no events), repoint the UE's DNS zone, flush the resolver
// cache, shorten the core path, and restart in-flight transfers so they
// re-resolve onto the edge. Idempotent per UE.
func (f *Fleet) switchToEdge(ue *UE, spec RemedySpec) bool {
	if ue.edgeActive {
		return false
	}
	cl := ue.Servers
	if cl.EdgeYouTube == nil {
		serversim.InstallEdge(ue.Net, cl)
	}
	edgeDelay := spec.EdgeDelay
	if edgeDelay <= 0 {
		edgeDelay = ue.Net.CoreDelay / 4
	}
	cl.DNS.Zone[serversim.YouTubeHost] = serversim.EdgeYouTubeAddr
	cl.DNS.Zone[serversim.WebHostBase] = serversim.EdgeWebAddr
	ue.Resolver.FlushCache()
	ue.Net.SetPathDelay(serversim.EdgeYouTubeAddr, edgeDelay)
	ue.Net.SetPathDelay(serversim.EdgeWebAddr, edgeDelay)
	ue.edgeActive = true
	ue.YouTube.Repath()
	ue.Browser.Repath()
	return true
}
