package fleet

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/qoestore"
)

// appSpanMetrics maps the app-layer trace span names to the qoestore metric
// each one becomes. Spans not listed here (transport, radio, kernel) stay
// local to the trace — the collector gets QoE observables, not the firehose.
var appSpanMetrics = map[string]string{
	"web:pageload":       "pageload_s",
	"yt:initial-loading": "initial_loading_s",
	"yt:rebuffer":        "rebuffer_s",
	"yt:playback":        "playback_s",
	"fb:fetch":           "fetch_s",
	"fb:post":            "post_s",
}

// EmitReport streams a finished fleet run into a qoestore emitter: one event
// per app-layer span on each UE's trace (when WithTrace was on), plus
// end-of-run summary events per UE from the report (rebuffer ratio, RRC
// energy and transitions, mean latency). Events are keyed by the UE's real
// serving cell at the event's virtual time ("cell0", "cell1", ...), so
// qoestore/qoemon series and SLO alerts segment by cell — a handover storm
// on one cell alerts on that cell, not on a fleet-wide constant. Events
// also carry the workload name and each UE's cohort; event time is virtual
// time, so a re-run emits identical events. Returns the number of events
// handed to the emitter (the emitter's own accounting says how many
// survived its bounded queue).
func EmitReport(em *qoestore.Emitter, f *Fleet, r *Report) int {
	n := 0
	emit := func(at time.Duration, cell, cohort, metric string, value float64) {
		em.Emit(qoestore.Event{
			At: at, Cell: cell, Workload: r.Workload, Cohort: cohort,
			Metric: metric, Value: value,
		})
		n++
	}

	for i, ue := range f.UEs {
		cohort := f.scen.UEs[i].Cohort
		if ue.Trace != nil {
			for _, ev := range ue.Trace.Events() {
				if ev.Kind != obs.KindSpan || ev.Layer != obs.LayerApp {
					continue
				}
				metric, ok := appSpanMetrics[ev.Name]
				if !ok {
					continue
				}
				emit(ev.End, cellLabel(ue, ev.End), cohort, metric, (ev.End - ev.Start).Seconds())
			}
		}
		// A hand-built report can cover fewer UEs than the fleet (or none);
		// span events above don't need report rows, summaries do.
		if i >= len(r.UEs) {
			continue
		}
		ur := r.UEs[i]
		// Per-incident layer attribution: four share events per observed
		// action, timestamped at the incident's end. The monitor joins these
		// with QoE windows so every alert names the responsible layer.
		for _, at := range ur.Attributions {
			cell := cellLabel(ue, at.At)
			emit(at.At, cell, cohort, "attrib_app_share", at.Share("app"))
			emit(at.At, cell, cohort, "attrib_radio_share", at.Share("radio"))
			emit(at.At, cell, cohort, "attrib_transport_share", at.Share("transport"))
			emit(at.At, cell, cohort, "attrib_server_share", at.Share("server"))
		}
		// Per-intervention events (controller runs only): the applied
		// remediation as a count keyed by its moment and cell, plus its
		// energy charge — the feed a live dashboard would plot against the
		// QoE series to show each intervention's before/after.
		for _, iv := range ur.Interventions {
			at := time.Duration(iv.AppliedAt)
			cell := cellLabel(ue, at)
			emit(at, cell, cohort, "remedy_"+iv.Kind.String(), 1)
			if iv.EnergyJ > 0 {
				emit(at, cell, cohort, "remedy_energy_j", iv.EnergyJ)
			}
		}
		endCell := cellLabel(ue, r.Horizon)
		emit(r.Horizon, endCell, cohort, "mean_latency_s", ur.MeanLatency.Seconds())
		emit(r.Horizon, endCell, cohort, "rebuffer_ratio", ur.RebufferRatio)
		emit(r.Horizon, endCell, cohort, "rrc_energy_j", ur.EnergyJ)
		emit(r.Horizon, endCell, cohort, "rrc_transitions", float64(ur.RRCTransitions))
	}
	return n
}

// cellLabel is the qoestore cell key for a UE at virtual time t: its real
// serving cell, tracked through handovers.
func cellLabel(ue *UE, t time.Duration) string {
	return fmt.Sprintf("cell%d", ue.ServingCellAt(t))
}
