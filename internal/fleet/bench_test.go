package fleet_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/radio"
)

// fleetBenchRun simulates an N-UE browse fleet — the scaling workload
// behind BENCH_PR5.json. Arrivals are staggered 1.5s apart (real users do
// not act in lockstep), so the record measures the per-UE framework cost
// at moderate contention rather than the physics of a saturated cell; the
// horizon stretches with N to cover the last arrival's session.
func fleetBenchRun(n int) {
	const stagger = 1500 * time.Millisecond
	ues := fleet.SpreadGains(fleet.UniformUEs(n), 0.7, 1.3)
	for i := range ues {
		ues[i].StartAt = time.Duration(i) * stagger
	}
	scen := fleet.Scenario{
		Seed:     42,
		Cell:     fleet.CellSpec{Policy: radio.SchedRoundRobin},
		UEs:      ues,
		Workload: fleet.BrowseWorkload{Pages: 2, ThinkTime: 6 * time.Second},
	}
	if _, err := fleet.Run(scen, fleet.WithHorizon(2*time.Minute+time.Duration(n)*stagger)); err != nil {
		panic(err)
	}
}

func benchFleet(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fleetBenchRun(n)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/UE")
}

func BenchmarkFleetUE1(b *testing.B)  { benchFleet(b, 1) }
func BenchmarkFleetUE8(b *testing.B)  { benchFleet(b, 8) }
func BenchmarkFleetUE64(b *testing.B) { benchFleet(b, 64) }

// perUE is one fleet size's measured cost, normalized per simulated UE.
type perUE struct {
	UEs         int     `json:"ues"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsOp    int64   `json:"allocs_per_op"`
	NsPerUE     float64 `json:"ns_per_ue"`
	AllocsPerUE float64 `json:"allocs_per_ue"`
}

// TestWriteBenchPR5JSON measures the fleet at N=1/8/64 and writes the file
// named by BENCH_PR5_JSON (skipped when unset; `make bench-fleet` sets it).
// It fails if the per-UE cost at N=64 exceeds 2x the N=1 per-UE cost —
// the cell scheduler must scale linearly in fleet size.
func TestWriteBenchPR5JSON(t *testing.T) {
	out := os.Getenv("BENCH_PR5_JSON")
	if out == "" {
		t.Skip("BENCH_PR5_JSON not set")
	}
	measure := func(n int) perUE {
		var best testing.BenchmarkResult
		// Best-of-3 discards scheduler and frequency-scaling noise;
		// allocation counts are deterministic.
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					fleetBenchRun(n)
				}
			})
			if i == 0 || r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return perUE{
			UEs: n, NsPerOp: best.NsPerOp(), AllocsOp: best.AllocsPerOp(),
			NsPerUE:     float64(best.NsPerOp()) / float64(n),
			AllocsPerUE: float64(best.AllocsPerOp()) / float64(n),
		}
	}
	doc := struct {
		Workload string  `json:"workload"`
		Sizes    []perUE `json:"sizes"`
		Scale64  float64 `json:"per_ue_cost_ratio_64_vs_1"`
	}{Workload: "browse 2 pages/UE, rr cell, arrivals staggered 1.5s, horizon 2m + N*1.5s"}
	for _, n := range []int{1, 8, 64} {
		doc.Sizes = append(doc.Sizes, measure(n))
	}
	doc.Scale64 = doc.Sizes[2].NsPerUE / doc.Sizes[0].NsPerUE
	if doc.Scale64 > 2 {
		t.Errorf("per-UE cost at N=64 is %.2fx the N=1 cost (budget: 2x)", doc.Scale64)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: per-UE scale 64-vs-1 = %.2fx", out, doc.Scale64)
}
