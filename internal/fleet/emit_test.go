package fleet_test

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/qoestore"
)

// TestEmitReportIntoStore runs a tiny traced fleet and streams it through a
// real emitter into a real store: per-UE summary events and app-layer span
// events must arrive keyed by cell, workload, and cohort.
func TestEmitReportIntoStore(t *testing.T) {
	ues := fleet.UniformUEs(2)
	ues[1].Cohort = "edge"
	scen := fleet.Scenario{
		Seed:     7,
		UEs:      ues,
		Workload: fleet.BrowseWorkload{Pages: 1, ThinkTime: 5 * time.Second},
	}
	f, err := fleet.Build(scen, fleet.WithHorizon(90*time.Second), fleet.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(90 * time.Second)
	f.CloseObs()
	report := f.Report()

	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "test-fleet"})
	if err != nil {
		t.Fatal(err)
	}
	n := fleet.EmitReport(em, f, report)
	em.Close()

	if st := em.Stats(); st.Delivered != uint64(n) || n == 0 {
		t.Fatalf("emitted %d events but stats = %+v", n, st)
	}
	// Four summary metrics per UE, all stamped at the horizon.
	for _, metric := range []string{"mean_latency_s", "rebuffer_ratio", "rrc_energy_j", "rrc_transitions"} {
		res, err := s.Run(qoestore.Query{Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 2 {
			t.Fatalf("%s count = %d, want one per UE", metric, res.Count)
		}
	}
	// The browse workload's pageloads arrive as span events.
	res, err := s.Run(qoestore.Query{Metric: "pageload_s"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("no pageload_s span events emitted from the traces")
	}
	// Cohort filtering separates the tagged UE from the default cohort.
	edge, err := s.Run(qoestore.Query{Metric: "rrc_energy_j", Cohort: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	if edge.Count != 1 {
		t.Fatalf("cohort=edge energy count = %d, want 1", edge.Count)
	}
}
