package fleet_test

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/qoestore"
)

// TestEmitReportIntoStore runs a tiny traced fleet and streams it through a
// real emitter into a real store: per-UE summary events and app-layer span
// events must arrive keyed by cell, workload, and cohort.
func TestEmitReportIntoStore(t *testing.T) {
	ues := fleet.UniformUEs(2)
	ues[1].Cohort = "edge"
	scen := fleet.Scenario{
		Seed:     7,
		UEs:      ues,
		Workload: fleet.BrowseWorkload{Pages: 1, ThinkTime: 5 * time.Second},
	}
	f, err := fleet.Build(scen, fleet.WithHorizon(90*time.Second), fleet.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(90 * time.Second)
	f.CloseObs()
	report := f.Report()

	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "test-fleet"})
	if err != nil {
		t.Fatal(err)
	}
	n := fleet.EmitReport(em, f, report)
	em.Close()

	if st := em.Stats(); st.Delivered != uint64(n) || n == 0 {
		t.Fatalf("emitted %d events but stats = %+v", n, st)
	}
	// Four summary metrics per UE, all stamped at the horizon.
	for _, metric := range []string{"mean_latency_s", "rebuffer_ratio", "rrc_energy_j", "rrc_transitions"} {
		res, err := s.Run(qoestore.Query{Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 2 {
			t.Fatalf("%s count = %d, want one per UE", metric, res.Count)
		}
	}
	// The browse workload's pageloads arrive as span events.
	res, err := s.Run(qoestore.Query{Metric: "pageload_s"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("no pageload_s span events emitted from the traces")
	}
	// Cohort filtering separates the tagged UE from the default cohort.
	edge, err := s.Run(qoestore.Query{Metric: "rrc_energy_j", Cohort: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	if edge.Count != 1 {
		t.Fatalf("cohort=edge energy count = %d, want 1", edge.Count)
	}

	// Attribution events: four share events per observed incident, cohort
	// tags intact, shares normalized to [0,1].
	var attribTotal uint64
	for _, metric := range []string{"attrib_app_share", "attrib_radio_share", "attrib_transport_share", "attrib_server_share"} {
		res, err := s.Run(qoestore.Query{Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count == 0 {
			t.Fatalf("no %s events emitted", metric)
		}
		attribTotal += res.Count
		eres, err := s.Run(qoestore.Query{Metric: metric, Cohort: "edge"})
		if err != nil {
			t.Fatal(err)
		}
		if eres.Count == 0 || eres.Count >= res.Count {
			t.Fatalf("%s cohort=edge count = %d of %d, want a proper subset", metric, eres.Count, res.Count)
		}
	}
	observed := 0
	for _, u := range report.UEs {
		observed += len(u.Attributions)
		for _, a := range u.Attributions {
			sum := a.App + a.Radio + a.Transport + a.Server
			if sum != a.Total {
				t.Fatalf("attribution components %v do not sum to total %v", sum, a.Total)
			}
		}
	}
	if observed == 0 || attribTotal != uint64(4*observed) {
		t.Fatalf("attrib events = %d, want 4 per incident × %d incidents", attribTotal, observed)
	}
}

// TestEmitReportWithoutTrace: an untraced fleet still emits the per-UE
// summary and attribution events — only the span-level stream needs traces.
func TestEmitReportWithoutTrace(t *testing.T) {
	scen := fleet.Scenario{
		Seed:     3,
		UEs:      fleet.UniformUEs(1),
		Workload: fleet.BrowseWorkload{Pages: 1, ThinkTime: 5 * time.Second},
	}
	f, err := fleet.Build(scen, fleet.WithHorizon(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(60 * time.Second)
	f.CloseObs()
	report := f.Report()

	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "untraced"})
	if err != nil {
		t.Fatal(err)
	}
	n := fleet.EmitReport(em, f, report)
	em.Close()
	if st := em.Stats(); st.Delivered != uint64(n) || n == 0 {
		t.Fatalf("emitted %d, stats %+v", n, st)
	}
	if res, err := s.Run(qoestore.Query{Metric: "pageload_s"}); err != nil || res.Count != 0 {
		t.Fatalf("untraced fleet produced span events: %v res=%+v", err, res)
	}
	if res, err := s.Run(qoestore.Query{Metric: "mean_latency_s"}); err != nil || res.Count != 1 {
		t.Fatalf("summary events missing without trace: %v res=%+v", err, res)
	}
}

// TestEmitReportZeroUEReport: a report covering no UEs (hand-built) emits
// nothing for the summary stream and must not panic on index mismatch.
func TestEmitReportZeroUEReport(t *testing.T) {
	scen := fleet.Scenario{Seed: 1, UEs: fleet.UniformUEs(1)}
	f, err := fleet.Build(scen, fleet.WithHorizon(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	f.K.RunUntil(time.Second)
	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if n := fleet.EmitReport(em, f, &fleet.Report{Workload: "none"}); n != 0 {
		t.Fatalf("zero-UE report emitted %d events, want 0", n)
	}
}

// TestEmitReportClosedEmitter: emitting into a closed emitter is safe; the
// events are handed over but the emitter's accounting shows zero delivered.
func TestEmitReportClosedEmitter(t *testing.T) {
	scen := fleet.Scenario{
		Seed:     5,
		UEs:      fleet.UniformUEs(1),
		Workload: fleet.BrowseWorkload{Pages: 1, ThinkTime: 5 * time.Second},
	}
	f, err := fleet.Build(scen, fleet.WithHorizon(60*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(60 * time.Second)
	f.CloseObs()
	report := f.Report()

	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "closed"})
	if err != nil {
		t.Fatal(err)
	}
	em.Close()
	n := fleet.EmitReport(em, f, report)
	if n == 0 {
		t.Fatal("EmitReport handed no events")
	}
	if st := em.Stats(); st.Delivered != 0 || st.Enqueued != 0 {
		t.Fatalf("closed emitter accepted events: %+v", st)
	}
	if res, err := s.Run(qoestore.Query{Metric: "mean_latency_s"}); err != nil || res.Count != 0 {
		t.Fatalf("closed emitter delivered events: %v res=%+v", err, res)
	}
}
