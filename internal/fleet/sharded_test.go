package fleet_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/qoestore"
	"repro/internal/radio"
)

// stormScenario is the shared multi-cell mobility scenario: 12 UEs driving
// at 20 m/s across a 4-cell grid tight enough to force handovers inside the
// horizon.
func stormScenario(seed int64) fleet.Scenario {
	return fleet.Scenario{
		Seed:     seed,
		Cell:     fleet.CellSpec{Policy: radio.SchedPropFair},
		Topology: &fleet.TopologySpec{Cells: 4, SpacingM: 300},
		Mobility: &fleet.MobilitySpec{SpeedMps: 20, TTT: 240 * time.Millisecond},
		UEs:      fleet.UniformUEs(12),
		Workload: fleet.BrowseWorkload{Pages: 3, ThinkTime: 4 * time.Second},
	}
}

func runSharded(t *testing.T, scen fleet.Scenario, horizon time.Duration, opts ...fleet.Option) (*fleet.Fleet, *fleet.Report) {
	t.Helper()
	f, err := fleet.Build(scen, append(opts, fleet.WithHorizon(horizon))...)
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.RunTo(horizon)
	f.CloseObs()
	return f, f.Report()
}

// TestShardedFleetGolden is the PR's determinism gate: a multi-cell mobile
// fleet renders byte-identically at every worker count and GOMAXPROCS
// setting, and the run actually exercises handovers.
func TestShardedFleetGolden(t *testing.T) {
	const horizon = 2 * time.Minute
	run := func(workers int) (*fleet.Fleet, string) {
		f, rep := runSharded(t, stormScenario(11), horizon, fleet.WithWorkers(workers))
		return f, rep.Render()
	}
	fSerial, golden := run(1)

	// The scenario is not vacuous: mobility produced serving-cell changes,
	// and the QxDM monitor logged them.
	handovers, qxdmRecords := 0, 0
	for _, ue := range fSerial.UEs {
		if ue.Roamer != nil {
			handovers += ue.Roamer.Handovers() + ue.Roamer.Reselections()
		}
		if ue.QxDM != nil {
			qxdmRecords += len(ue.QxDM.Log().Handovers)
		}
	}
	if handovers == 0 {
		t.Fatal("no handovers or reselections in a 20 m/s 4-cell storm run")
	}
	if qxdmRecords != handovers {
		t.Fatalf("QxDM logged %d handover records, roamers counted %d", qxdmRecords, handovers)
	}
	if !strings.Contains(golden, "across 4 cells") {
		t.Fatalf("multi-cell header missing:\n%s", golden)
	}
	if !strings.Contains(golden, "handovers") {
		t.Fatalf("handovers aggregate missing:\n%s", golden)
	}

	for _, workers := range []int{2, 4} {
		if _, got := run(workers); got != golden {
			t.Fatalf("workers=%d render diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, golden, workers, got)
		}
	}
	prev := runtime.GOMAXPROCS(4)
	_, got := run(0) // workers = GOMAXPROCS
	runtime.GOMAXPROCS(prev)
	if got != golden {
		t.Fatalf("GOMAXPROCS=4 render diverged from serial baseline")
	}
}

// TestShardedStaticPinned: a multi-cell fleet without mobility pins each UE
// to its home cell (index mod cells) and reports zero handovers.
func TestShardedStaticPinned(t *testing.T) {
	scen := fleet.Scenario{
		Seed:     5,
		Topology: &fleet.TopologySpec{Cells: 2},
		UEs:      fleet.UniformUEs(4),
		Workload: fleet.BrowseWorkload{Pages: 1, ThinkTime: 5 * time.Second},
	}
	f, rep := runSharded(t, scen, 60*time.Second)
	if len(f.Shards) != 2 || f.Topo == nil {
		t.Fatalf("expected 2 shards, got %d (topo %v)", len(f.Shards), f.Topo)
	}
	for i, u := range rep.UEs {
		if u.Cell != i%2 {
			t.Fatalf("ue%d pinned to cell %d, want %d", i, u.Cell, i%2)
		}
		if u.Handovers+u.Reselections != 0 {
			t.Fatalf("static ue%d reports %d handovers", i, u.Handovers+u.Reselections)
		}
		if u.Observed == 0 {
			t.Fatalf("ue%d observed no actions — shard kernel never served it", i)
		}
	}
	if !strings.Contains(rep.Render(), "across 2 cells") {
		t.Fatal("multi-cell header missing")
	}
}

// TestShardedEmitCellLabels: events from a sharded mobile run land in the
// store keyed by real per-cell labels, not a single constant.
func TestShardedEmitCellLabels(t *testing.T) {
	f, rep := runSharded(t, stormScenario(23), 2*time.Minute, fleet.WithTrace())

	s, err := qoestore.Open(t.TempDir(), qoestore.Config{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	em, err := qoestore.NewEmitter(s, qoestore.EmitterConfig{Source: "sharded"})
	if err != nil {
		t.Fatal(err)
	}
	if n := fleet.EmitReport(em, f, rep); n == 0 {
		t.Fatal("no events emitted")
	}
	em.Close()

	all, err := s.Run(qoestore.Query{Metric: "pageload_s"})
	if err != nil {
		t.Fatal(err)
	}
	if all.Count == 0 {
		t.Fatal("no pageload events")
	}
	// Events must be spread across more than one cell key: with 12 UEs homed
	// round-robin on 4 cells, at least two cells see pageloads.
	cellsSeen := 0
	var perCell uint64
	for _, cell := range []string{"cell0", "cell1", "cell2", "cell3"} {
		res, err := s.Run(qoestore.Query{Metric: "pageload_s", Cell: cell})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count > 0 {
			cellsSeen++
			perCell += res.Count
		}
	}
	if cellsSeen < 2 {
		t.Fatalf("pageload events concentrated in %d cell key(s)", cellsSeen)
	}
	if perCell != all.Count {
		t.Fatalf("per-cell counts sum to %d, total %d — events under unexpected cell keys", perCell, all.Count)
	}
}

// TestShardedValidation: malformed multi-cell scenarios error out cleanly.
func TestShardedValidation(t *testing.T) {
	cases := []struct {
		name string
		scen fleet.Scenario
	}{
		{"zero cells", fleet.Scenario{
			UEs: fleet.UniformUEs(1), Topology: &fleet.TopologySpec{Cells: 0}}},
		{"negative spacing", fleet.Scenario{
			UEs: fleet.UniformUEs(1), Topology: &fleet.TopologySpec{Cells: 2, SpacingM: -1}}},
		{"negative x2", fleet.Scenario{
			UEs: fleet.UniformUEs(1), Topology: &fleet.TopologySpec{Cells: 2, X2Latency: -time.Millisecond}}},
		{"mobility without topology", fleet.Scenario{
			UEs: fleet.UniformUEs(1), Mobility: &fleet.MobilitySpec{SpeedMps: 3}}},
		{"mobility on one cell", fleet.Scenario{
			UEs: fleet.UniformUEs(1), Topology: &fleet.TopologySpec{Cells: 1},
			Mobility: &fleet.MobilitySpec{SpeedMps: 3}}},
		{"negative speed", fleet.Scenario{
			UEs: fleet.UniformUEs(1), Topology: &fleet.TopologySpec{Cells: 2},
			Mobility: &fleet.MobilitySpec{SpeedMps: -1}}},
	}
	for _, tc := range cases {
		if _, err := fleet.Build(tc.scen); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
