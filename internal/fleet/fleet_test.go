package fleet_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/testbed"
)

// TestSingleUEMatchesBed is the PR's golden gate: the legacy Bed path
// (flat Options through testbed.New) and a 1-UE fleet build of the same
// scenario must produce byte-identical outputs — QoE report, Chrome trace
// export, behavior log, and collected radio/packet logs.
func TestSingleUEMatchesBed(t *testing.T) {
	const seed = 7
	const horizon = 90 * time.Second
	wl := fleet.BrowseWorkload{Pages: 2, ThinkTime: 5 * time.Second}

	bed := testbed.MustNew(testbed.Options{Seed: seed, Trace: true, Metrics: true})
	wl.Start(bed.UE)
	bed.K.RunUntil(horizon)
	bed.CloseObs()

	f, err := fleet.Build(fleet.Scenario{Seed: seed, UEs: fleet.UniformUEs(1)},
		fleet.WithTrace(), fleet.WithMetrics(), fleet.WithHorizon(horizon))
	if err != nil {
		t.Fatal(err)
	}
	wl.Start(f.UEs[0])
	f.K.RunUntil(horizon)
	f.CloseObs()
	ue := f.UEs[0]

	if got, want := f.Report().Render(), bed.Fleet().Report().Render(); got != want {
		t.Errorf("QoE reports diverge:\n--- bed ---\n%s\n--- fleet ---\n%s", want, got)
	}
	var bedTrace, fleetTrace bytes.Buffer
	if err := obs.WriteChromeTrace(&bedTrace, bed.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&fleetTrace, ue.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bedTrace.Bytes(), fleetTrace.Bytes()) {
		t.Errorf("trace exports diverge: %d vs %d bytes", bedTrace.Len(), fleetTrace.Len())
	}
	if !reflect.DeepEqual(bed.Log.Entries, ue.Log.Entries) {
		t.Errorf("behavior logs diverge: %d vs %d entries", len(bed.Log.Entries), len(ue.Log.Entries))
	}
	if bed.Capture.Len() != ue.Capture.Len() {
		t.Errorf("capture lengths diverge: %d vs %d", bed.Capture.Len(), ue.Capture.Len())
	}
	if got, want := len(ue.QxDM.Log().PDUs), len(bed.QxDM.Log().PDUs); got != want {
		t.Errorf("radio logs diverge: %d vs %d PDUs", got, want)
	}
}

// TestFleet64Deterministic: a 64-UE contended run yields a byte-identical
// aggregate report across reruns.
func TestFleet64Deterministic(t *testing.T) {
	run := func() string {
		scen := fleet.Scenario{
			Seed:     42,
			Cell:     fleet.CellSpec{Policy: radio.SchedPropFair},
			UEs:      fleet.SpreadGains(fleet.UniformUEs(64), 0.5, 1.5),
			Workload: fleet.BrowseWorkload{Pages: 2, ThinkTime: 6 * time.Second},
		}
		rep, err := fleet.Run(scen, fleet.WithHorizon(3*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("64-UE fleet diverged across reruns:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}

// TestSweepWorkerCountDeterminism: fleet cells as sweep points produce
// identical results regardless of the sweep's -parallel worker count.
func TestSweepWorkerCountDeterminism(t *testing.T) {
	exp, ok := experiments.Lookup("fleet")
	if !ok {
		t.Fatal("fleet experiment not registered")
	}
	cells := sweep.Grid([]experiments.Experiment{exp}, []int64{11, 12, 13})
	render := func(workers int) []string {
		results := sweep.Run(cells, sweep.Options{Workers: workers})
		out := make([]string, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("cell %d failed: %v", i, r.Err)
			}
			out[i] = r.Res.Render()
		}
		return out
	}
	serial := render(1)
	parallel := render(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("fleet sweep results depend on worker count")
	}
}

// TestScenarioValidation: malformed scenarios surface as errors, not
// panics — through both fleet.Build and testbed.New/NewScenario.
func TestScenarioValidation(t *testing.T) {
	if _, err := fleet.Build(fleet.Scenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := fleet.Build(fleet.Scenario{UEs: []fleet.UESpec{{Gain: -1}}}); err == nil {
		t.Error("negative gain accepted")
	}
	if _, err := fleet.Build(fleet.Scenario{UEs: []fleet.UESpec{{ThrottleBps: -5}}}); err == nil {
		t.Error("negative throttle accepted")
	}
	if _, err := fleet.Build(fleet.Scenario{UEs: []fleet.UESpec{{StartAt: -time.Second}}}); err == nil {
		t.Error("negative start offset accepted")
	}
	if _, err := testbed.NewScenario(fleet.Scenario{UEs: fleet.UniformUEs(2)}); err == nil {
		t.Error("testbed accepted a 2-UE scenario")
	}
	if b, err := testbed.NewScenario(fleet.Scenario{UEs: fleet.UniformUEs(1)}); err != nil || b == nil {
		t.Errorf("valid 1-UE scenario rejected: %v", err)
	}
}

// TestCloseObsIdempotent: CloseObs is safe to call repeatedly, with and
// without configured obs sinks (the sweep teardown double-close).
func TestCloseObsIdempotent(t *testing.T) {
	plain := testbed.MustNew(testbed.Options{Seed: 1})
	plain.CloseObs()
	plain.CloseObs()

	traced := testbed.MustNew(testbed.Options{Seed: 1, Trace: true, Metrics: true})
	traced.K.RunUntil(2 * time.Second)
	traced.CloseObs()
	n := traced.Trace.Len()
	traced.CloseObs()
	if traced.Trace.Len() != n {
		t.Fatal("second CloseObs emitted more trace events")
	}
}

// TestStaggeredStarts: UESpec.StartAt delays a UE's workload, so its first
// measurement begins after the offset.
func TestStaggeredStarts(t *testing.T) {
	scen := fleet.Scenario{
		Seed:     5,
		UEs:      []fleet.UESpec{{}, {StartAt: 30 * time.Second}},
		Workload: fleet.BrowseWorkload{Pages: 1},
	}
	f, err := fleet.Build(scen, fleet.WithHorizon(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(2 * time.Minute)
	for i, ue := range f.UEs {
		if len(ue.Log.Entries) == 0 {
			t.Fatalf("UE %d logged nothing", i)
		}
	}
	if first := f.UEs[1].Log.Entries[0].Start; first < 30*time.Second {
		t.Fatalf("staggered UE started at %v, before its 30s offset", first)
	}
	if first := f.UEs[0].Log.Entries[0].Start; first >= 30*time.Second {
		t.Fatalf("unstaggered UE started late at %v", first)
	}
}

// TestChromeTraceMulti: the merged export carries one process per UE with
// its own metadata, and stays parseable as one JSON document.
func TestChromeTraceMulti(t *testing.T) {
	scen := fleet.Scenario{
		Seed:     3,
		UEs:      fleet.UniformUEs(2),
		Workload: fleet.BrowseWorkload{Pages: 1},
	}
	f, err := fleet.Build(scen, fleet.WithTrace(), fleet.WithHorizon(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.K.RunUntil(time.Minute)
	f.CloseObs()
	procs := make([]obs.Process, len(f.UEs))
	for i, ue := range f.UEs {
		procs[i] = obs.Process{Pid: i + 1, Name: ue.Name, Events: ue.Trace.Events()}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceMulti(&buf, procs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"ue0"`, `"ue1"`, `"pid":2`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("multi-process export missing %s", want)
		}
	}
	if out[len(out)-2:] != "}\n" {
		t.Error("export not terminated")
	}
}
