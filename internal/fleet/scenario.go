// Package fleet simulates many UEs sharing one cell: each device gets its
// own RRC machine, network stack, apps, behavior log, and observability
// scope, while a cell-level scheduler multiplexes RLC service among the
// active bearers — so cross-UE contention, queueing delay, and RRC
// promotion storms emerge from the model instead of being scripted.
//
// The package also owns the Scenario description that replaced the flat
// testbed.Options: a Scenario composes a cell, a list of UE specs, and a
// workload, and is consumed both by fleet.Run and by the single-UE
// testbed.Bed (a thin N=1 wrapper around one fleet UE).
package fleet

import (
	"fmt"
	"time"

	"repro/internal/apps/browser"
	"repro/internal/apps/facebook"
	"repro/internal/apps/youtube"
	"repro/internal/core/analyzer"
	"repro/internal/faults"
	"repro/internal/radio"
)

// CellSpec describes the shared cell: the radio technology every bearer
// uses, the scheduling policy dividing the air interface, and the core
// latency behind the base station.
type CellSpec struct {
	// Profile is the radio profile (default: LTE). All UEs in a cell share
	// one technology, as on a real carrier.
	Profile *radio.Profile
	// Policy selects the cell scheduler (round-robin by default).
	Policy radio.SchedPolicy
	// CoreDelay overrides the one-way base-station-to-server latency
	// (zero = technology default).
	CoreDelay time.Duration
}

// UESpec describes one device in the fleet.
type UESpec struct {
	// Name labels the UE in reports; empty defaults to "ue<i>".
	Name string
	// Gain is the UE's link-quality multiplier on the cell's nominal rate
	// (1 or 0 = nominal). Must not be negative.
	Gain float64
	// ThrottleBps installs per-UE carrier rate limiting on the downlink
	// (0 = none): shaping on 3G, policing on LTE — the §7.5 mechanisms.
	ThrottleBps float64
	// Faults injects per-UE network impairments; all randomness derives
	// from the scenario seed, so impaired fleets stay reproducible.
	Faults *faults.Plan
	// StartAt delays this UE's workload start (staggered arrivals).
	StartAt time.Duration
	// Cohort labels this UE's population segment ("premium", "edge-of-cell")
	// in emitted QoE events; empty UEs group under the empty cohort key.
	Cohort string

	Facebook facebook.Config // zero value = facebook.DefaultConfig()
	YouTube  youtube.Config
	Browser  browser.Profile // zero value = Chrome

	// DisableQxDM skips radio logging; DisablePcap skips packet capture
	// (large fleets that only need app-layer QoE).
	DisableQxDM bool
	DisablePcap bool
}

// TopologySpec describes a multi-cell layout. Nil (the default) keeps the
// legacy single shared cell on one kernel; Cells > 1 shards the simulation
// one kernel per cell, advanced in parallel under conservative-lookahead
// synchronization with the X2 latency as the safe window.
type TopologySpec struct {
	// Cells is the number of base-station sites (grid layout). UE i homes
	// on cell i mod Cells.
	Cells int
	// SpacingM is the inter-site distance in meters (0 = 500m).
	SpacingM float64
	// X2Latency is the inter-cell coordination latency — the handover
	// data-forwarding delay and the sharded run's lookahead window
	// (0 = 10ms).
	X2Latency time.Duration
	// PathLossExp overrides the path-loss exponent (0 = 2.6).
	PathLossExp float64
}

// MobilitySpec enables per-UE mobility across a multi-cell topology:
// deterministic random-waypoint movement, signal-strength measurement
// reports, A3-style connected-mode handover, and idle-mode reselection.
type MobilitySpec struct {
	// SpeedMps is the UE speed in meters/second (walking ~1.4, driving ~14).
	SpeedMps float64
	// Interval is the measurement report period (0 = 200ms).
	Interval time.Duration
	// Hysteresis is the neighbor/serving gain ratio arming a handover
	// (0 = 1.25); TTT is the time-to-trigger it must hold (0 = 480ms).
	Hysteresis float64
	TTT        time.Duration
	// Interruption is the connected-mode handover's control-plane break
	// (0 = 50ms); the data plane stalls for Interruption + X2 forwarding.
	Interruption time.Duration
}

// Scenario is a complete, declarative description of a fleet run: one cell
// (or a topology of cells), N UEs, and the workload that drives them. It
// replaces the organically grown flat option set (faults, throttle, obs
// toggles scattered across fields and methods) with one composable value
// that both testbed.New and fleet.Run consume.
type Scenario struct {
	Seed int64
	Cell CellSpec
	// Topology, when non-nil with Cells > 1, replaces the single shared
	// cell with a grid of cells, one event kernel per cell (sharded run).
	// Every cell uses the same CellSpec profile and policy.
	Topology *TopologySpec
	// Mobility, when non-nil, moves every UE through the topology and
	// enables handover/reselection. Requires a multi-cell Topology.
	Mobility *MobilitySpec
	UEs      []UESpec
	// Workload drives every UE (staggered by UESpec.StartAt). Nil means the
	// caller drives the UEs itself (the legacy Bed pattern).
	Workload Workload
	// Remedy, when non-nil, runs the built-in root-cause-aware remediation
	// controller (internal/remedy) over the fleet at control ticks. An
	// Observe-only spec diagnoses without actuating and is byte-invisible
	// to the run.
	Remedy *RemedySpec
}

// sharded reports whether this scenario runs one kernel per cell.
func (s *Scenario) sharded() bool {
	return s.Topology != nil && s.Topology.Cells > 1
}

// UniformUEs returns n identical UE specs with gain 1 — the common
// homogeneous-fleet case.
func UniformUEs(n int) []UESpec {
	ues := make([]UESpec, n)
	return ues
}

// SpreadGains assigns a deterministic gain spread across the specs: gains
// step linearly from lo to hi in attach order, modeling UEs at different
// distances from the base station. The slice is returned for chaining.
func SpreadGains(ues []UESpec, lo, hi float64) []UESpec {
	if len(ues) == 1 {
		ues[0].Gain = (lo + hi) / 2
		return ues
	}
	for i := range ues {
		ues[i].Gain = lo + (hi-lo)*float64(i)/float64(len(ues)-1)
	}
	return ues
}

// validate rejects malformed scenarios with a descriptive error.
func (s *Scenario) validate() error {
	if len(s.UEs) == 0 {
		return fmt.Errorf("fleet: scenario has no UEs")
	}
	for i, ue := range s.UEs {
		if ue.Gain < 0 {
			return fmt.Errorf("fleet: UE %d has negative gain %v", i, ue.Gain)
		}
		if ue.ThrottleBps < 0 {
			return fmt.Errorf("fleet: UE %d has negative throttle %v bps", i, ue.ThrottleBps)
		}
		if ue.StartAt < 0 {
			return fmt.Errorf("fleet: UE %d has negative start offset %v", i, ue.StartAt)
		}
	}
	if s.Cell.CoreDelay < 0 {
		return fmt.Errorf("fleet: negative core delay %v", s.Cell.CoreDelay)
	}
	if t := s.Topology; t != nil {
		if t.Cells < 1 {
			return fmt.Errorf("fleet: topology needs at least 1 cell, got %d", t.Cells)
		}
		if t.SpacingM < 0 {
			return fmt.Errorf("fleet: negative cell spacing %v", t.SpacingM)
		}
		if t.X2Latency < 0 {
			return fmt.Errorf("fleet: negative X2 latency %v", t.X2Latency)
		}
		if t.PathLossExp < 0 {
			return fmt.Errorf("fleet: negative path-loss exponent %v", t.PathLossExp)
		}
		if t.Cells == 1 && (t.SpacingM > 0 || t.X2Latency > 0 || t.PathLossExp > 0) {
			// A 1-cell topology runs on the legacy single-kernel path, where
			// these knobs are silently meaningless — reject instead.
			return fmt.Errorf("fleet: 1-cell topology ignores spacing/X2/path-loss settings; use Cells > 1 or drop them")
		}
	}
	if m := s.Mobility; m != nil {
		if !s.sharded() {
			return fmt.Errorf("fleet: mobility requires a multi-cell topology (got %d cell(s))", s.cellCount())
		}
		if m.SpeedMps < 0 {
			return fmt.Errorf("fleet: negative UE speed %v m/s", m.SpeedMps)
		}
		if m.Interval < 0 || m.TTT < 0 || m.Interruption < 0 {
			return fmt.Errorf("fleet: negative mobility timing (interval %v, TTT %v, interruption %v)", m.Interval, m.TTT, m.Interruption)
		}
		if m.Hysteresis < 0 {
			return fmt.Errorf("fleet: negative handover hysteresis %v", m.Hysteresis)
		}
	}
	if r := s.Remedy; r != nil {
		if r.Interval < 0 || r.ActionLatency < 0 || r.Cooldown < 0 || r.EdgeDelay < 0 {
			return fmt.Errorf("fleet: negative remedy timing (interval %v, latency %v, cooldown %v, edge delay %v)",
				r.Interval, r.ActionLatency, r.Cooldown, r.EdgeDelay)
		}
		if r.MaxActionsPerUE < 0 {
			return fmt.Errorf("fleet: negative remedy action budget %d", r.MaxActionsPerUE)
		}
		if r.EnergyPerActionJ < 0 {
			return fmt.Errorf("fleet: negative remedy action energy %v J", r.EnergyPerActionJ)
		}
		if r.DisableServerSwitch && r.DisableABR && r.DisableRRCRetune && !r.Observe {
			return fmt.Errorf("fleet: remedy enabled with every actuator disabled; set Observe for a measure-only run")
		}
		for _, c := range r.Cells {
			if c < 0 || c >= s.cellCount() {
				return fmt.Errorf("fleet: remedy targets cell %d, but the scenario has %d cell(s)", c, s.cellCount())
			}
		}
	}
	return nil
}

// cellCount returns the number of cells the scenario simulates.
func (s *Scenario) cellCount() int {
	if s.Topology == nil {
		return 1
	}
	return s.Topology.Cells
}

// options collects the run-level functional options.
type options struct {
	trace    bool
	metrics  bool
	profiler bool
	horizon  time.Duration
	workers  int
	analyzer []analyzer.Option
}

// Option is a run-level knob, orthogonal to the Scenario description:
// observability sinks, the analyzer engine, the time horizon.
type Option func(*options)

// DefaultHorizon bounds a fleet run when WithHorizon is not given.
const DefaultHorizon = 30 * time.Minute

func resolveOptions(opts []Option) options {
	o := options{horizon: DefaultHorizon}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithTrace attaches a per-UE cross-layer trace bus to every UE.
func WithTrace() Option { return func(o *options) { o.trace = true } }

// WithMetrics attaches a per-UE metrics registry to every UE.
func WithMetrics() Option { return func(o *options) { o.metrics = true } }

// WithProfiler attaches the wall-clock kernel profiler (non-deterministic
// output; for performance work only).
func WithProfiler() Option { return func(o *options) { o.profiler = true } }

// WithHorizon bounds the virtual-time length of the run.
func WithHorizon(d time.Duration) Option {
	return func(o *options) { o.horizon = d }
}

// WithWorkers caps the goroutines advancing shards in a sharded run
// (<= 0 = GOMAXPROCS, 1 = fully serial). Worker count affects wall clock
// only — results are byte-identical at any setting. No-op for
// single-kernel runs.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithEngine selects the cross-layer analyzer engine for every per-UE
// analysis in this run.
func WithEngine(e analyzer.Engine) Option {
	return func(o *options) { o.analyzer = append(o.analyzer, analyzer.WithEngine(e)) }
}

// WithAnalyzer appends raw analyzer options applied to every per-UE
// analysis in this run — the pass-through form of WithEngine for callers
// already holding []analyzer.Option (the experiment registry's engine
// golden test threads its per-call engine selection here).
func WithAnalyzer(opts ...analyzer.Option) Option {
	return func(o *options) { o.analyzer = append(o.analyzer, opts...) }
}
