package fleet

import (
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Fleet is an assembled multi-UE lab. In the legacy single-cell mode one
// kernel and one shared cell host every UE (K and Cell are set, Shards is
// nil). With a multi-cell Topology the fleet is sharded — one kernel per
// cell, advanced in lockstep epochs (Shards is set, K and Cell are nil).
// Build it from a Scenario, Drive the workload (or drive the UEs
// yourself), RunTo the horizon, then Report.
type Fleet struct {
	K    *simtime.Kernel
	Cell *radio.Cell
	UEs  []*UE
	// Shards and Topo are set for multi-cell scenarios: one shard per
	// topology cell, synchronized at X2Latency lookahead barriers.
	Shards []*Shard
	Topo   *radio.Topology
	// Profiler is the kernel-wide wall-clock profiler (nil unless
	// WithProfiler; sharded runs profile shard 0's kernel).
	Profiler *obs.Profiler

	scen Scenario
	opts options
	// airUL/airDL[c][s] is the barrier scratch for cell c's airtime on
	// shard s over the last epoch.
	airUL, airDL [][]simtime.Time

	// controlState is the runtime-control surface: registered control
	// hooks, the built-in remediation controller, and the cross-shard
	// action mailbox (see control.go).
	controlState
}

// Build assembles a fleet without running it. UEs are constructed in spec
// order; UE i lives at BaseAddr+i and its bearer is attached to the shared
// cell in the same order, which is also the scheduler's tie-break order.
func Build(scen Scenario, opts ...Option) (*Fleet, error) {
	if err := scen.validate(); err != nil {
		return nil, err
	}
	o := resolveOptions(opts)
	if scen.sharded() {
		return buildSharded(scen, o)
	}
	prof := scen.Cell.Profile
	if prof == nil {
		prof = radio.ProfileLTE()
	}
	coreDelay := scen.Cell.CoreDelay
	if coreDelay == 0 {
		coreDelay = defaultCoreDelay(prof.Tech)
	}

	k := simtime.NewKernel(scen.Seed)
	cell := radio.NewCell(k, scen.Cell.Policy)
	f := &Fleet{K: k, Cell: cell, scen: scen, opts: o}
	addr := BaseAddr
	for i, spec := range scen.UEs {
		ue := buildUE(k, cell, prof, coreDelay, i, addr, spec, scen.Seed, o, len(scen.UEs) == 1)
		f.UEs = append(f.UEs, ue)
		addr = addr.Next()
	}
	if o.profiler {
		f.Profiler = obs.NewProfiler()
		k.SetProfiler(f.Profiler)
		for _, ue := range f.UEs {
			ue.Profiler = f.Profiler
		}
	}
	return f, nil
}

// Drive starts the scenario workload on every UE: immediately (in UE
// order) for UEs with no start offset, via a kernel timer otherwise. A nil
// workload is a no-op — the caller drives the UEs itself.
func (f *Fleet) Drive() {
	if f.scen.Workload == nil {
		return
	}
	for i, ue := range f.UEs {
		spec := f.scen.UEs[i]
		if spec.StartAt <= 0 {
			f.scen.Workload.Start(ue)
			continue
		}
		u := ue
		ue.K.At(simtime.Time(spec.StartAt), func() { f.scen.Workload.Start(u) })
	}
}

// RunTo advances the simulation to the horizon: directly on the single
// kernel, or in parallel lockstep epochs (window = X2 latency) across the
// shards. Sharded results are byte-identical at any worker count.
func (f *Fleet) RunTo(horizon time.Duration) {
	f.installControl()
	if len(f.Shards) == 0 {
		f.K.RunUntil(horizon)
		return
	}
	kernels := make([]*simtime.Kernel, len(f.Shards))
	for i, sh := range f.Shards {
		kernels[i] = sh.K
	}
	ls := simtime.NewLockstep(kernels, f.opts.workers)
	defer ls.Close()
	ls.Run(horizon, f.Topo.X2Latency, func(end simtime.Time) {
		f.exchange(end)
		f.deliverCrossShard(end)
	})
}

// now returns the current virtual time across either mode.
func (f *Fleet) now() simtime.Time {
	if f.K != nil {
		return f.K.Now()
	}
	return f.Shards[0].K.Now()
}

// CloseObs finalizes every UE's open observability state. Idempotent.
func (f *Fleet) CloseObs() {
	for _, ue := range f.UEs {
		ue.CloseObs()
	}
}

// Run builds the fleet, drives the workload, runs the kernel to the
// horizon, and analyzes every UE — the one-call entry point behind
// qoefleet and the fleet experiments.
func Run(scen Scenario, opts ...Option) (*Report, error) {
	f, err := Build(scen, opts...)
	if err != nil {
		return nil, err
	}
	f.Drive()
	f.RunTo(f.opts.horizon)
	f.CloseObs()
	return f.Report(), nil
}

// Report analyzes every UE's collected logs (cross-layer analyses fan out
// across goroutines; each is a pure function of its UE's session, so the
// fan-out cannot perturb results) and assembles the fleet report.
func (f *Fleet) Report() *Report {
	pending := make([]*analyzer.Pending, len(f.UEs))
	for i, ue := range f.UEs {
		pending[i] = ue.AnalyzeAsync(ue.Log)
	}
	now := f.now()
	r := &Report{
		Seed:     f.scen.Seed,
		Policy:   f.scen.Cell.Policy,
		Cells:    f.scen.cellCount(),
		Horizon:  now,
		Workload: "(caller-driven)",
	}
	if f.scen.Workload != nil {
		r.Workload = f.scen.Workload.Name()
	}
	for i, ue := range f.UEs {
		r.UEs = append(r.UEs, ueReport(ue, pending[i].Wait(), now))
	}
	r.aggregate()
	return r
}
