package fleet

import (
	"time"

	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Shard is one cell's slice of a sharded fleet: its own event kernel
// hosting the full stacks of every UE homed on the cell, plus a local
// instance of every topology cell so handovers stay kernel-local (a UE's
// stack captures its kernel at construction and cannot migrate).
//
// Cross-shard contention on the same topology cell is modeled at epoch
// granularity: at every lookahead barrier the shards exchange per-cell
// airtime, and each local cell instance gets the capacity fraction its
// peers left free for the next epoch. Within a shard contention stays
// PDU-exact; across shards it is staleness-bounded by the lookahead window
// (the X2 latency — exactly the horizon inside which one cell cannot react
// to another in a real RAN either).
type Shard struct {
	Index int
	K     *simtime.Kernel
	// Cells[c] is this shard's local instance of topology cell c.
	Cells []*radio.Cell
	UEs   []*UE
}

// minCellShare floors the epoch capacity share so a briefly overloaded
// cell slows its bearers instead of freezing them.
const minCellShare = 1.0 / 8

// shardSeed derives shard s's kernel seed from the scenario seed
// (splitmix64 finalizer) so shard RNG streams are independent but fully
// determined by the scenario.
func shardSeed(seed int64, s int) int64 {
	z := uint64(seed) + uint64(s+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// uePos derives UE index's deterministic spawn offsets in [0,1)² from the
// scenario seed, independent of every other randomness stream.
func uePos(seed int64, index int) (u, v float64) {
	z := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(index+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u = float64(z>>11) / float64(1<<53)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	v = float64(z>>11) / float64(1<<53)
	return u, v
}

// buildSharded assembles a multi-cell fleet: one kernel per cell, UE i
// homed on cell i mod Cells, every shard holding local instances of all
// cells for kernel-local handover.
func buildSharded(scen Scenario, o options) (*Fleet, error) {
	ts := scen.Topology
	prof := scen.Cell.Profile
	if prof == nil {
		prof = radio.ProfileLTE()
	}
	coreDelay := scen.Cell.CoreDelay
	if coreDelay == 0 {
		coreDelay = defaultCoreDelay(prof.Tech)
	}

	topo := radio.NewGridTopology(ts.Cells, ts.SpacingM)
	if ts.X2Latency > 0 {
		topo.X2Latency = ts.X2Latency
	}
	if ts.PathLossExp > 0 {
		topo.PathLossExp = ts.PathLossExp
	}

	f := &Fleet{Topo: topo, scen: scen, opts: o}
	ncells := ts.Cells
	for s := 0; s < ncells; s++ {
		sh := &Shard{Index: s, K: simtime.NewKernel(shardSeed(scen.Seed, s))}
		for c := 0; c < ncells; c++ {
			sh.Cells = append(sh.Cells, radio.NewCellID(sh.K, scen.Cell.Policy, c))
		}
		f.Shards = append(f.Shards, sh)
	}

	addr := BaseAddr
	for i, spec := range scen.UEs {
		s := i % ncells
		sh := f.Shards[s]
		home := s

		var mover *radio.Mover
		deviceGain := spec.Gain
		if deviceGain <= 0 {
			deviceGain = 1
		}
		buildSpec := spec
		if scen.Mobility != nil {
			u, v := uePos(scen.Seed, i)
			x, y := topo.HomePos(home, u, v)
			mover = radio.NewMover(scen.Seed, i, topo, scen.Mobility.SpeedMps, x, y)
			// The bearer's initial gain is the path gain at the spawn point
			// composed with the spec's device-quality multiplier; the roamer
			// refreshes it every measurement tick.
			buildSpec.Gain = topo.Gain(home, x, y) * deviceGain
		}

		ue := buildUE(sh.K, sh.Cells[home], prof, coreDelay, i, addr, buildSpec, scen.Seed, o, false)
		ue.Shard = s
		ue.HomeCell = home
		if scen.Mobility != nil {
			m := scen.Mobility
			ue.Roamer = radio.NewRoamer(ue.Net.Bearer, topo, sh.Cells, mover, home, radio.RoamConfig{
				Interval:     m.Interval,
				Hysteresis:   m.Hysteresis,
				TTT:          m.TTT,
				Interruption: m.Interruption,
				DeviceGain:   deviceGain,
			})
			ue.Roamer.SetObs(ue.Trace, ue.Metrics)
			ue.Roamer.Start()
		}
		sh.UEs = append(sh.UEs, ue)
		f.UEs = append(f.UEs, ue)
		addr = addr.Next()
	}

	if o.profiler {
		// Wall-clock profiling is inherently non-deterministic; attach it to
		// shard 0's kernel as a representative sample.
		f.Profiler = obs.NewProfiler()
		f.Shards[0].K.SetProfiler(f.Profiler)
		for _, ue := range f.UEs {
			ue.Profiler = f.Profiler
		}
	}

	f.airUL = make([][]simtime.Time, ncells)
	f.airDL = make([][]simtime.Time, ncells)
	for c := range f.airUL {
		f.airUL[c] = make([]simtime.Time, ncells)
		f.airDL[c] = make([]simtime.Time, ncells)
	}
	return f, nil
}

// exchange is the lockstep barrier: collect every shard's airtime on every
// topology cell over the finished epoch, then give each shard's local cell
// instance the capacity fraction its peers left free for the next epoch.
// It runs serially on the coordinator, iterating shards and cells in index
// order — the only cross-shard data flow, and fully deterministic.
func (f *Fleet) exchange(end simtime.Time) {
	window := f.Topo.X2Latency
	for c := range f.Topo.Sites {
		var totUL, totDL simtime.Time
		for s, sh := range f.Shards {
			ul, dl := sh.Cells[c].TakeAirtime()
			f.airUL[c][s], f.airDL[c][s] = ul, dl
			totUL += ul
			totDL += dl
		}
		for s, sh := range f.Shards {
			sh.Cells[c].SetShares(
				capShare(window, totUL-f.airUL[c][s]),
				capShare(window, totDL-f.airDL[c][s]))
		}
	}
}

// capShare converts the airtime other shards consumed on a cell during one
// lookahead window into this shard's capacity share for the next epoch.
func capShare(window time.Duration, others simtime.Time) float64 {
	if others <= 0 {
		return 1
	}
	share := 1 - float64(others)/float64(window)
	if share < minCellShare {
		return minCellShare
	}
	return share
}
