package fleet

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/core/qoe"

	"repro/internal/apps/browser"
	"repro/internal/apps/facebook"
	"repro/internal/apps/serversim"
	"repro/internal/apps/youtube"
	"repro/internal/core/controller"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/qxdm"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// BaseAddr is the first UE's address on the simulated carrier network;
// UE i gets BaseAddr + i. It matches the single-device testbed address so
// a 1-UE fleet is byte-identical to the legacy Bed.
var BaseAddr = netip.MustParseAddr("10.20.0.2")

// UE is one assembled device: its own network stack, bearer (attached to
// the shared cell), server cluster, apps, collectors, and observability
// scope. It is the per-device half of what testbed.Bed used to assemble;
// Bed now embeds a UE.
type UE struct {
	Index int
	Name  string
	Addr  netip.Addr

	// Shard and HomeCell locate the UE in a sharded multi-cell fleet (both
	// zero in the legacy single-cell mode). Roamer, when set, drives the
	// UE's mobility and handover state machine.
	Shard    int
	HomeCell int
	Roamer   *radio.Roamer

	K        *simtime.Kernel
	Net      *netsim.Network
	Servers  *serversim.Cluster
	Resolver *netsim.Resolver

	Capture *pcap.Capture
	QxDM    *qxdm.Monitor

	Facebook *facebook.App
	YouTube  *youtube.App
	Browser  *browser.App

	// FaultUL and FaultDL are the installed impairment chains (nil when the
	// spec's fault plan was empty). Throttling composes with them: the
	// chain feeds the throttle qdisc.
	FaultUL *faults.Chain
	FaultDL *faults.Chain

	// Trace, Metrics, and Profiler are the attached observability sinks
	// (nil unless requested). Each UE has its own trace bus and registry so
	// concurrent UEs never share a correlation scope; the profiler is
	// kernel-wide and therefore shared.
	Trace    *obs.Trace
	Metrics  *obs.Registry
	Profiler *obs.Profiler
	// RadioMon is the radio trace monitor (nil unless Trace or Metrics);
	// CloseObs finalizes its open RRC state span.
	RadioMon *radio.TraceMonitor

	// Log is the UE's behavior log; workloads append UI measurements to it.
	Log *qoe.BehaviorLog
	// Watch collects the YouTube workload's playback stats for QoE
	// aggregation (rebuffer ratio).
	Watch []controller.WatchStats

	// Interventions records every remediation the control plane applied to
	// this UE (empty without a controller); RemedyEnergyJ is the energy
	// charged for them, and edgeActive marks the UE as re-homed onto the
	// edge replica cluster.
	Interventions []Intervention
	RemedyEnergyJ float64
	edgeActive    bool

	// workState seeds the UE's deterministic workload variety (which video,
	// which page) independently of the kernel's model randomness.
	workState uint64

	analyzerOpts []analyzer.Option
	obsClosed    bool
}

// defaultCoreDelay returns the one-way core latency per technology,
// matching typical measured first-hop-to-server latencies.
func defaultCoreDelay(tech radio.Tech) time.Duration {
	switch tech {
	case radio.Tech3G:
		return 35 * time.Millisecond
	case radio.TechLTE:
		return 20 * time.Millisecond
	default:
		return 12 * time.Millisecond
	}
}

// buildUE assembles one UE on the shared kernel and cell. The construction
// order mirrors the legacy testbed.New exactly — construction-time event
// scheduling (outage timers) determines kernel tie-breaking, so reordering
// would silently change results.
func buildUE(k *simtime.Kernel, cell *radio.Cell, prof *radio.Profile, coreDelay time.Duration, index int, addr netip.Addr, spec UESpec, seed int64, o options, singleUE bool) *UE {
	net := netsim.NewNetwork(k, prof, addr, coreDelay)
	cell.Attach(net.Bearer, spec.Gain)
	servers := serversim.Install(net)
	resolver := netsim.NewResolver(net.Device, netsim.Endpoint{Addr: serversim.DNSAddr, Port: netsim.DNSPort})

	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("ue%d", index)
	}
	ue := &UE{
		Index: index, Name: name, Addr: addr,
		K: k, Net: net, Servers: servers, Resolver: resolver,
		Log:          &qoe.BehaviorLog{},
		workState:    uint64(seed)*0x9e3779b97f4a7c15 + uint64(index+1),
		analyzerOpts: o.analyzer,
	}
	if !spec.Faults.Empty() {
		ue.FaultUL = spec.Faults.Build(k, faults.Uplink, seed)
		ue.FaultDL = spec.Faults.Build(k, faults.Downlink, seed)
		net.ULQdisc = ue.FaultUL
		net.DLQdisc = ue.FaultDL
		for _, out := range spec.Faults.Outages {
			net.Bearer.ScheduleOutage(simtime.Time(out.Start), out.Duration)
		}
	}
	if !spec.DisablePcap {
		ue.Capture = pcap.NewCapture()
		ue.Capture.Attach(net.Device)
	}
	if !spec.DisableQxDM {
		ue.QxDM = qxdm.Attach(net.Bearer)
	}

	fbCfg := spec.Facebook
	if fbCfg == (facebook.Config{}) {
		fbCfg = facebook.DefaultConfig()
	}
	ue.Facebook = facebook.New(k, net.Device, resolver, fbCfg)
	ue.YouTube = youtube.New(k, net.Device, resolver, spec.YouTube)
	brProf := spec.Browser
	if brProf.Name == "" {
		brProf = browser.Chrome()
	}
	ue.Browser = browser.New(k, net.Device, resolver, brProf)

	if o.trace || o.metrics {
		if o.trace {
			ue.Trace = obs.NewTrace()
			if singleUE {
				// One UE: the kernel's own spans belong to it, exactly as
				// in the legacy Bed.
				k.SetTrace(ue.Trace)
			} else {
				ue.Trace.Bind(func() time.Duration { return time.Duration(k.Now()) })
			}
		}
		if o.metrics {
			ue.Metrics = obs.NewRegistry()
			ue.Metrics.GaugeFunc("kernel_events", func() float64 { return float64(k.Processed()) })
			ue.Metrics.GaugeFunc("kernel_pending", func() float64 { return float64(k.Pending()) })
			ue.Metrics.GaugeFunc("sim_time_s", func() float64 { return time.Duration(k.Now()).Seconds() })
			ue.Metrics.GaugeFunc("bearer_outages", func() float64 { return float64(net.Bearer.OutageCount()) })
			if ue.FaultUL != nil {
				ue.Metrics.GaugeFunc("fault_drops_ul", func() float64 { return float64(ue.FaultUL.Dropped()) })
			}
			if ue.FaultDL != nil {
				ue.Metrics.GaugeFunc("fault_drops_dl", func() float64 { return float64(ue.FaultDL.Dropped()) })
			}
		}
		net.SetObs(ue.Trace, ue.Metrics)
		net.Bearer.SetTrace(ue.Trace)
		// Fault-chain drops become radio-layer trace instants: the analyzer's
		// attribution pass needs link-layer loss ground truth inside QoE
		// windows to pin loss stalls on the radio layer.
		if ue.FaultUL != nil {
			ue.FaultUL.SetObs(ue.Trace, ue.Metrics, "ul")
		}
		if ue.FaultDL != nil {
			ue.FaultDL.SetObs(ue.Trace, ue.Metrics, "dl")
		}
		ue.RadioMon = radio.AttachTrace(net.Bearer, ue.Trace, ue.Metrics)
		ue.Facebook.SetObs(ue.Trace, ue.Metrics)
		ue.YouTube.SetObs(ue.Trace, ue.Metrics)
		ue.Browser.SetObs(ue.Trace, ue.Metrics)
	}
	if spec.ThrottleBps > 0 {
		ue.Throttle(spec.ThrottleBps)
	}
	return ue
}

// CloseObs finalizes open observability state (the radio monitor's current
// RRC residency span) at the present virtual time. Call it after the run,
// before exporting the trace. Idempotent, and safe when no obs sinks were
// configured.
func (ue *UE) CloseObs() {
	if ue.obsClosed {
		return
	}
	ue.obsClosed = true
	if ue.Roamer != nil {
		ue.Roamer.Close(ue.K.Now())
	}
	if ue.RadioMon != nil {
		ue.RadioMon.Close(ue.K.Now())
	}
}

// ServingCellAt returns the UE's serving cell ID at virtual time t: the
// roamer's history for mobile UEs, the home cell otherwise (0 in the
// legacy single-cell mode).
func (ue *UE) ServingCellAt(t simtime.Time) int {
	if ue.Roamer != nil {
		return ue.Roamer.ServingAt(t)
	}
	return ue.HomeCell
}

// Session packages the UE's collected logs plus a behavior log into the
// analyzer's input bundle.
func (ue *UE) Session(log *qoe.BehaviorLog) *qoe.Session {
	s := &qoe.Session{
		Profile:    ue.Net.Bearer.Profile(),
		DeviceAddr: ue.Addr,
		Behavior:   log,
	}
	if ue.Capture != nil {
		s.Packets = ue.Capture.Records()
	}
	if ue.QxDM != nil {
		s.Radio = ue.QxDM.Log()
	}
	if ue.Trace != nil {
		s.Trace = ue.Trace.Events()
	}
	return s
}

// Analyze runs the cross-layer analyzer over the UE's collected logs, with
// the engine the run was configured with (plus any per-call overrides).
func (ue *UE) Analyze(log *qoe.BehaviorLog, opts ...analyzer.Option) *analyzer.CrossLayer {
	return analyzer.NewCrossLayer(ue.Session(log), append(ue.analyzerOpts, opts...)...)
}

// AnalyzeAsync starts the analysis on its own goroutine so the caller can
// overlap it with the next run's simulation (the sweep pipeline shape);
// Wait on the returned handle for the result.
func (ue *UE) AnalyzeAsync(log *qoe.BehaviorLog, opts ...analyzer.Option) *analyzer.Pending {
	return analyzer.Analyze(ue.Session(log), append(ue.analyzerOpts, opts...)...)
}

// Throttle installs carrier rate limiting on this UE's downlink: traffic
// shaping (the C1 3G mechanism) or traffic policing (the C1 LTE mechanism,
// §7.5). The shaper buffers deeply (carrier-grade queues), so 3G delivers a
// smooth stream at the cap with few TCP drops; the policer has a shallow
// token bucket, so LTE slow-start bursts overshoot and drop, producing the
// retransmissions, bursty goodput, and higher variance of Finding 7.
func (ue *UE) Throttle(rateBps float64) {
	var q netsim.Qdisc
	if ue.Net.Bearer.Profile().Tech == radio.Tech3G {
		// Deeper than the device's TCP receive-window ceiling, so the
		// sender's window fills the queue without overflowing it.
		const queue = 256 * 1024
		s := netsim.NewShaper(ue.K, rateBps, 16*1024, queue)
		s.SetObs(ue.Trace, ue.Metrics, "shape_dl")
		q = s
	} else {
		p := netsim.NewPolicer(ue.K, rateBps, 4*1024)
		p.SetObs(ue.Trace, ue.Metrics, "police_dl")
		q = p
	}
	// Compose with fault injection when present: impairments happen first,
	// then the carrier throttle.
	if ue.FaultDL != nil {
		ue.FaultDL.SetNext(q)
	} else {
		ue.Net.DLQdisc = q
	}
}

// workNext steps the UE's private xorshift state — workload variety (which
// keyword, which result index) that must not perturb the kernel's model
// randomness stream.
func (ue *UE) workNext() uint64 {
	x := ue.workState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ue.workState = x
	return x
}
