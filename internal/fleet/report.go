package fleet

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// UEReport is one device's QoE summary.
type UEReport struct {
	Index int
	Name  string

	// Cell is the serving cell at the end of the run; Handovers and
	// Reselections count serving-cell changes (all zero outside multi-cell
	// scenarios).
	Cell         int
	Handovers    int
	Reselections int

	// Actions and Observed count the behavior-log measurements (rebuffer
	// cycles excluded from Actions — they are app-triggered sub-events).
	Actions  int
	Observed int
	// MeanLatency is the mean calibrated user-perceived latency across
	// observed user-triggered actions.
	MeanLatency time.Duration
	// PageLoad is the mean calibrated page-load latency (browse workloads).
	PageLoad time.Duration
	// RebufferRatio is stall/(play+stall) after initial loading, summed
	// over every watch (YouTube workloads).
	RebufferRatio float64
	Rebuffers     int
	// EnergyJ is the radio interface's active energy (tail + transfer) over
	// the run; zero when QxDM was disabled.
	EnergyJ float64
	// RRCTransitions counts radio state changes — the promotion-storm
	// signal under contention.
	RRCTransitions int
	Warnings       int

	// Attributions carries the per-incident layer diagnosis (app/radio/
	// transport/server split of each observed action's latency), in
	// behavior-log order. EmitReport streams these as attrib_* share events.
	Attributions []analyzer.Attribution

	// Interventions lists the remediations the control plane applied to
	// this UE (nil without a controller); RemedyEnergyJ is their total
	// energy charge, already included in EnergyJ.
	Interventions []Intervention
	RemedyEnergyJ float64
}

// Aggregate is one fleet-level KPI distribution over UEs.
type Aggregate struct {
	Name                string
	Mean, P50, P95, P99 float64
}

// Report is the fleet run's output: per-UE rows plus fleet-level KPI
// percentiles. Rendering is deterministic: UEs in index order, aggregates
// in fixed order, no map iteration.
type Report struct {
	Seed     int64
	Policy   radio.SchedPolicy
	Workload string
	// Cells is the number of cells simulated (1 = legacy single cell).
	Cells int
	// Horizon is the virtual time the simulation had reached when the
	// report was taken (the last processed event's time).
	Horizon time.Duration

	UEs        []UEReport
	Aggregates []Aggregate
}

// ueReport condenses one UE's logs and analysis into its report row.
func ueReport(ue *UE, cl *analyzer.CrossLayer, end simtime.Time) UEReport {
	r := UEReport{Index: ue.Index, Name: ue.Name, Warnings: len(cl.Warnings)}
	r.Attributions = cl.Attributions()
	r.Cell = ue.ServingCellAt(end)
	if ue.Roamer != nil {
		r.Handovers = ue.Roamer.Handovers()
		r.Reselections = ue.Roamer.Reselections()
	}

	app := analyzer.AnalyzeApp(ue.Log)
	var latSum, loadSum time.Duration
	loads := 0
	for _, l := range app.Latencies {
		if l.Entry.Action == "rebuffer" {
			continue
		}
		r.Actions++
		if !l.Entry.Observed {
			continue
		}
		r.Observed++
		latSum += l.Calibrated
		if l.Entry.Action == "load_page" {
			loadSum += l.Calibrated
			loads++
		}
	}
	if r.Observed > 0 {
		r.MeanLatency = latSum / time.Duration(r.Observed)
	}
	if loads > 0 {
		r.PageLoad = loadSum / time.Duration(loads)
	}

	var stall, total time.Duration
	for _, w := range ue.Watch {
		r.Rebuffers += len(w.Rebuffers)
		if !w.InitialLoading.Observed || w.PlaybackEnd <= w.InitialLoading.End {
			continue
		}
		total += w.PlaybackEnd - w.InitialLoading.End
		for _, reb := range w.Rebuffers {
			stall += reb.RawLatency()
		}
	}
	if total > 0 {
		ratio := stall.Seconds() / total.Seconds()
		if ratio < 0 {
			ratio = 0
		}
		if ratio > 1 {
			ratio = 1
		}
		r.RebufferRatio = ratio
	}

	if ue.QxDM != nil {
		log := ue.QxDM.Log()
		r.RRCTransitions = len(log.Transitions)
		r.EnergyJ = power.Analyze(ue.Net.Bearer.Profile(), log, 0, end).ActiveJ()
	}
	if len(ue.Interventions) > 0 {
		r.Interventions = ue.Interventions
		r.RemedyEnergyJ = ue.RemedyEnergyJ
		r.EnergyJ += ue.RemedyEnergyJ
	}
	return r
}

// aggregate computes the fleet KPI percentiles from the per-UE rows.
func (r *Report) aggregate() {
	over := func(name string, get func(UEReport) float64) {
		xs := make([]float64, len(r.UEs))
		for i, ue := range r.UEs {
			xs[i] = get(ue)
		}
		c := metrics.NewCDF(xs)
		s := metrics.Summarize(xs)
		r.Aggregates = append(r.Aggregates, Aggregate{
			Name: name, Mean: s.Mean,
			P50: c.Quantile(0.50), P95: c.Quantile(0.95), P99: c.Quantile(0.99),
		})
	}
	over("user_latency_s", func(u UEReport) float64 { return u.MeanLatency.Seconds() })
	over("pageload_s", func(u UEReport) float64 { return u.PageLoad.Seconds() })
	over("rebuffer_ratio", func(u UEReport) float64 { return u.RebufferRatio })
	over("rrc_energy_j", func(u UEReport) float64 { return u.EnergyJ })
	over("rrc_transitions", func(u UEReport) float64 { return float64(u.RRCTransitions) })
	if r.Cells > 1 {
		over("handovers", func(u UEReport) float64 { return float64(u.Handovers + u.Reselections) })
	}
}

// Value returns a named aggregate's percentile column ("mean" | "p50" |
// "p95" | "p99"); ok is false for unknown names.
func (r *Report) Value(name, col string) (v float64, ok bool) {
	for _, a := range r.Aggregates {
		if a.Name != name {
			continue
		}
		switch col {
		case "mean":
			return a.Mean, true
		case "p50":
			return a.P50, true
		case "p95":
			return a.P95, true
		case "p99":
			return a.P99, true
		}
		return 0, false
	}
	return 0, false
}

// Render formats the full fleet report deterministically. Single-cell
// reports keep the legacy layout byte-for-byte; multi-cell reports add the
// cell count to the header and per-UE serving-cell/handover columns.
func (r *Report) Render() string {
	multi := r.Cells > 1
	var b strings.Builder
	if multi {
		fmt.Fprintf(&b, "== Fleet: %d UE(s) across %d cells, %s scheduler, workload %s, seed %d, horizon %s ==\n",
			len(r.UEs), r.Cells, r.Policy, r.Workload, r.Seed, r.Horizon)
	} else {
		fmt.Fprintf(&b, "== Fleet: %d UE(s), %s scheduler, workload %s, seed %d, horizon %s ==\n",
			len(r.UEs), r.Policy, r.Workload, r.Seed, r.Horizon)
	}

	headers := []string{"UE"}
	if multi {
		headers = append(headers, "Cell", "HO")
	}
	headers = append(headers, "Actions", "Observed", "Mean latency", "Pageload", "Rebuf ratio", "Rebufs", "RRC trans", "Energy")
	tbl := &metrics.Table{Headers: headers}
	for _, u := range r.UEs {
		row := []string{u.Name}
		if multi {
			row = append(row, fmt.Sprintf("cell%d", u.Cell), fmt.Sprintf("%d", u.Handovers+u.Reselections))
		}
		row = append(row,
			fmt.Sprintf("%d", u.Actions), fmt.Sprintf("%d", u.Observed),
			fmt.Sprintf("%.3fs", u.MeanLatency.Seconds()), fmt.Sprintf("%.3fs", u.PageLoad.Seconds()),
			fmt.Sprintf("%.4f", u.RebufferRatio), fmt.Sprintf("%d", u.Rebuffers),
			fmt.Sprintf("%d", u.RRCTransitions), fmt.Sprintf("%.1fJ", u.EnergyJ))
		tbl.AddRow(row...)
	}
	b.WriteString(tbl.String())

	b.WriteString("\n== Fleet aggregates ==\n")
	atbl := &metrics.Table{Headers: []string{"KPI", "Mean", "p50", "p95", "p99"}}
	for _, a := range r.Aggregates {
		atbl.AddRow(a.Name,
			fmt.Sprintf("%.4f", a.Mean), fmt.Sprintf("%.4f", a.P50),
			fmt.Sprintf("%.4f", a.P95), fmt.Sprintf("%.4f", a.P99))
	}
	b.WriteString(atbl.String())

	// The remediation section appears only when the control plane acted, so
	// controller-free reports stay byte-identical to the legacy layout.
	if n := r.totalInterventions(); n > 0 {
		fmt.Fprintf(&b, "\n== Remediation: %d intervention(s) ==\n", n)
		itbl := &metrics.Table{Headers: []string{"UE", "At", "Action", "Diagnosis", "Applied", "Energy", "Evidence"}}
		for _, u := range r.UEs {
			for _, iv := range u.Interventions {
				itbl.AddRow(u.Name,
					fmt.Sprintf("%.1fs", time.Duration(iv.AppliedAt).Seconds()),
					iv.Kind.String(), iv.Layer.String(),
					fmt.Sprintf("%v", iv.Applied),
					fmt.Sprintf("%.2fJ", iv.EnergyJ), iv.Note)
			}
		}
		b.WriteString(itbl.String())
	}
	return b.String()
}

// totalInterventions counts control-plane actions across the fleet.
func (r *Report) totalInterventions() int {
	n := 0
	for _, u := range r.UEs {
		n += len(u.Interventions)
	}
	return n
}
