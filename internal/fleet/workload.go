package fleet

import (
	"fmt"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/core/controller"
	"repro/internal/core/qoe"
)

// Workload drives one UE's user behaviour. Start is called once per UE (at
// virtual time UESpec.StartAt) and must schedule everything else through
// the UE's kernel — a fleet run has one RunUntil, not per-UE phases.
// Measurements go to ue.Log (and ue.Watch for playback stats).
type Workload interface {
	// Name labels the workload in reports.
	Name() string
	// Start begins driving the UE at the current virtual time.
	Start(ue *UE)
}

// ParseWorkload builds a built-in workload by name ("youtube" | "browse" |
// "facebook") with its default shape.
func ParseWorkload(s string) (Workload, error) {
	switch s {
	case "youtube", "":
		return YouTubeWorkload{}, nil
	case "browse":
		return BrowseWorkload{}, nil
	case "facebook":
		return FacebookWorkload{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown workload %q (youtube | browse | facebook)", s)
}

// YouTubeWorkload replays the paper's search-and-watch behaviour: each UE
// connects, searches a keyword, plays a result, and follows the playback
// (logging initial loading and every rebuffer cycle), repeating Videos
// times with Gap of think time in between. Keyword and result index vary
// per UE and per repetition from the UE's work stream, so a fleet does not
// watch one identical video in lockstep.
type YouTubeWorkload struct {
	// Videos is how many videos each UE watches (default 1).
	Videos int
	// Gap is the think time between watches (default 3s).
	Gap time.Duration
}

// Name implements Workload.
func (w YouTubeWorkload) Name() string { return "youtube" }

// Start implements Workload.
func (w YouTubeWorkload) Start(ue *UE) {
	videos := w.Videos
	if videos <= 0 {
		videos = 1
	}
	gap := w.Gap
	if gap <= 0 {
		gap = 3 * time.Second
	}
	ue.YouTube.Connect()
	ue.K.After(2*time.Second, func() {
		c := controller.New(ue.K, ue.YouTube.Screen, ue.Log)
		c.Timeout = time.Hour
		c.Instrumentation().SetPollInterval(100 * time.Millisecond)
		d := &controller.YouTubeDriver{C: c}
		var run func(i int)
		run = func(i int) {
			if i >= videos {
				return
			}
			draw := ue.workNext()
			kw := string(rune('a' + draw%26))
			idx := int(draw>>8) % 10
			d.SearchAndPlay(kw, idx, func(st controller.WatchStats) {
				ue.Watch = append(ue.Watch, st)
				ue.K.After(gap, func() { run(i + 1) })
			})
		}
		run(0)
	})
}

// BrowseWorkload replays §4.2.3 web browsing: each UE loads Pages pages
// back to back with ThinkTime between loads. Page identity varies per UE.
type BrowseWorkload struct {
	// Pages is how many pages each UE loads (default 3).
	Pages int
	// ThinkTime separates loads (default 10s).
	ThinkTime time.Duration
}

// Name implements Workload.
func (w BrowseWorkload) Name() string { return "browse" }

// Start implements Workload.
func (w BrowseWorkload) Start(ue *UE) {
	pages := w.Pages
	if pages <= 0 {
		pages = 3
	}
	think := w.ThinkTime
	if think <= 0 {
		think = 10 * time.Second
	}
	c := controller.New(ue.K, ue.Browser.Screen, ue.Log)
	d := &controller.BrowserDriver{C: c}
	urls := make([]string, pages)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/page-%d", serversim.WebHostBase, ue.workNext()%64)
	}
	d.LoadPages(urls, think, nil)
}

// FacebookWorkload replays pull-to-update: each UE connects and refreshes
// its feed Updates times with Gap between pulls.
type FacebookWorkload struct {
	// Updates is how many feed refreshes each UE performs (default 3).
	Updates int
	// Gap separates refreshes (default 5s).
	Gap time.Duration
}

// Name implements Workload.
func (w FacebookWorkload) Name() string { return "facebook" }

// Start implements Workload.
func (w FacebookWorkload) Start(ue *UE) {
	updates := w.Updates
	if updates <= 0 {
		updates = 3
	}
	gap := w.Gap
	if gap <= 0 {
		gap = 5 * time.Second
	}
	ue.Facebook.Connect()
	ue.K.After(3*time.Second, func() {
		c := controller.New(ue.K, ue.Facebook.Screen, ue.Log)
		d := controller.NewFacebookDriver(c, false)
		var run func(i int)
		run = func(i int) {
			if i >= updates {
				return
			}
			d.PullToUpdate(func(qoe.BehaviorEntry) {
				ue.K.After(gap, func() { run(i + 1) })
			})
		}
		run(0)
	})
}
