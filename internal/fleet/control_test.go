package fleet_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/serversim"
	"repro/internal/fleet"
	"repro/internal/remedy"
	"repro/internal/simtime"
)

// throttledVideoScenario is the shared remediation scenario: every UE
// streams video through a carrier throttle below the native bitrate, so the
// players stall and the controller has something to diagnose.
func throttledVideoScenario(seed int64, n int) fleet.Scenario {
	ues := fleet.UniformUEs(n)
	for i := range ues {
		ues[i].ThrottleBps = 280e3
	}
	return fleet.Scenario{
		Seed:     seed,
		UEs:      ues,
		Workload: fleet.YouTubeWorkload{},
	}
}

func runControlled(t *testing.T, scen fleet.Scenario, horizon time.Duration, opts ...fleet.Option) (*fleet.Fleet, *fleet.Report) {
	t.Helper()
	f, err := fleet.Build(scen, append(opts, fleet.WithHorizon(horizon))...)
	if err != nil {
		t.Fatal(err)
	}
	f.Drive()
	f.RunTo(horizon)
	f.CloseObs()
	return f, f.Report()
}

func countInterventions(rep *fleet.Report) int {
	n := 0
	for _, u := range rep.UEs {
		n += len(u.Interventions)
	}
	return n
}

// TestObserveControllerByteInvisible: a controller in observe mode runs the
// full sense-and-diagnose pipeline but actuates nothing — the run must be
// byte-identical to a controller-free run in its report AND its traces. This
// is the control-plane-overhead-is-zero guarantee: hooks fire between kernel
// events without consuming event slots, RNG draws, or trace IDs.
func TestObserveControllerByteInvisible(t *testing.T) {
	const horizon = 3 * time.Minute
	plain := throttledVideoScenario(3, 2)
	_, repPlain := runControlled(t, plain, horizon, fleet.WithTrace())

	observed := throttledVideoScenario(3, 2)
	observed.Remedy = &fleet.RemedySpec{Observe: true}
	fObs, repObs := runControlled(t, observed, horizon, fleet.WithTrace())

	if got, want := repObs.Render(), repPlain.Render(); got != want {
		t.Fatalf("observe-mode report diverged:\n--- plain ---\n%s\n--- observe ---\n%s", want, got)
	}
	if n := countInterventions(repObs); n != 0 {
		t.Fatalf("observe mode recorded %d interventions", n)
	}

	// Trace streams must match event for event: the control hook may not
	// emit, reorder, or renumber anything.
	fPlain, _ := fleet.Build(plain, fleet.WithHorizon(horizon), fleet.WithTrace())
	fPlain.Drive()
	fPlain.RunTo(horizon)
	fPlain.CloseObs()
	for i := range fPlain.UEs {
		a := fPlain.UEs[i].Trace.Events()
		b := fObs.UEs[i].Trace.Events()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ue%d trace diverged under observe mode: %d vs %d events", i, len(a), len(b))
		}
	}
}

// TestRemedyRerunByteIdentical: an actively remediated run is a pure
// function of the scenario — rerunning it reproduces the report (including
// the intervention ledger) byte for byte.
func TestRemedyRerunByteIdentical(t *testing.T) {
	const horizon = 4 * time.Minute
	run := func() (*fleet.Report, string) {
		scen := throttledVideoScenario(7, 3)
		scen.Remedy = &fleet.RemedySpec{}
		_, rep := runControlled(t, scen, horizon)
		return rep, rep.Render()
	}
	rep1, golden := run()
	if countInterventions(rep1) == 0 {
		t.Fatal("remediation scenario produced no interventions; the rerun test is vacuous")
	}
	if !strings.Contains(golden, "== Remediation:") {
		t.Fatalf("report lacks the remediation section:\n%s", golden)
	}
	if _, again := run(); again != golden {
		t.Fatalf("remediated rerun diverged:\n--- first ---\n%s\n--- second ---\n%s", golden, again)
	}
}

// TestScheduledABRStep: the ABR actuators take effect exactly at their
// scheduled virtual time — the rung is unchanged one tick before, moved one
// tick after, and the intervention ledger records the actuation instant.
func TestScheduledABRStep(t *testing.T) {
	scen := throttledVideoScenario(7, 1)
	f, err := fleet.Build(scen, fleet.WithHorizon(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	const stepAt = 80 * time.Second
	f.ScheduleAction(stepAt, 0, remedy.Action{UE: 0, Kind: remedy.ActionABRStepDown})
	f.Drive()

	f.RunTo(stepAt - time.Millisecond)
	ue := f.UEs[0]
	if !ue.YouTube.Active() {
		t.Fatal("no active playback at the scheduled step time; pick a different instant")
	}
	if r := ue.YouTube.QualityRung(); r != 0 {
		t.Fatalf("rung = %d before the scheduled step", r)
	}
	f.RunTo(stepAt)
	if r := ue.YouTube.QualityRung(); r != 1 {
		t.Fatalf("rung = %d at the scheduled step time, want 1", r)
	}
	if len(ue.Interventions) != 1 {
		t.Fatalf("interventions = %+v, want exactly one", ue.Interventions)
	}
	iv := ue.Interventions[0]
	if !iv.Applied || time.Duration(iv.AppliedAt) != stepAt {
		t.Fatalf("intervention = %+v, want applied at %v", iv, stepAt)
	}
	if ue.RemedyEnergyJ <= 0 {
		t.Fatal("applied action charged no energy")
	}

	// Step back up: rung returns to native at the second scheduled instant.
	const upAt = 100 * time.Second
	f.ScheduleAction(upAt, 0, remedy.Action{UE: 0, Kind: remedy.ActionABRStepUp})
	f.RunTo(upAt)
	if r := ue.YouTube.QualityRung(); r != 0 {
		t.Fatalf("rung = %d after scheduled step-up, want 0", r)
	}
}

// TestScheduledServerSwitch: the server-switch actuator repoints the UE's
// DNS zone onto the edge replicas at the scheduled time, and a second
// switch is a recorded no-op (idempotence).
func TestScheduledServerSwitch(t *testing.T) {
	scen := throttledVideoScenario(7, 1)
	f, err := fleet.Build(scen, fleet.WithHorizon(3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	const switchAt = 60 * time.Second
	f.ScheduleAction(switchAt, 0, remedy.Action{UE: 0, Kind: remedy.ActionServerSwitch})
	f.ScheduleAction(switchAt+10*time.Second, 0, remedy.Action{UE: 0, Kind: remedy.ActionServerSwitch})
	f.Drive()

	f.RunTo(switchAt - time.Millisecond)
	ue := f.UEs[0]
	if ue.Servers.EdgeYouTube != nil {
		t.Fatal("edge servers installed before the scheduled switch")
	}
	if a := ue.Servers.DNS.Zone[serversim.YouTubeHost]; a == serversim.EdgeYouTubeAddr {
		t.Fatal("DNS repointed before the scheduled switch")
	}
	f.RunTo(switchAt)
	if ue.Servers.EdgeYouTube == nil || ue.Servers.EdgeWeb == nil {
		t.Fatal("edge servers not installed at the scheduled switch time")
	}
	if a := ue.Servers.DNS.Zone[serversim.YouTubeHost]; a != serversim.EdgeYouTubeAddr {
		t.Fatalf("YouTube DNS points at %v, want edge %v", a, serversim.EdgeYouTubeAddr)
	}
	if a := ue.Servers.DNS.Zone[serversim.WebHostBase]; a != serversim.EdgeWebAddr {
		t.Fatalf("web DNS points at %v, want edge %v", a, serversim.EdgeWebAddr)
	}
	if len(ue.Interventions) != 1 || !ue.Interventions[0].Applied {
		t.Fatalf("interventions after first switch = %+v", ue.Interventions)
	}

	f.RunTo(switchAt + 10*time.Second)
	if len(ue.Interventions) != 2 {
		t.Fatalf("second switch not recorded: %+v", ue.Interventions)
	}
	if ue.Interventions[1].Applied {
		t.Fatal("second server switch reported Applied; must be an idempotent no-op")
	}
}

// TestScheduledRRCRetune: the RRC actuator rescales the demotion timers at
// the scheduled virtual time, visible through the machine's accessor.
func TestScheduledRRCRetune(t *testing.T) {
	scen := throttledVideoScenario(7, 1)
	f, err := fleet.Build(scen, fleet.WithHorizon(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	const retuneAt = 30 * time.Second
	f.ScheduleAction(retuneAt, 0, remedy.Action{UE: 0, Kind: remedy.ActionRRCRetune, Scale: 2})
	f.Drive()

	f.RunTo(retuneAt - time.Millisecond)
	ue := f.UEs[0]
	if s := ue.Net.Bearer.RRC().DemotionScale(); s != 0 {
		t.Fatalf("demotion scale = %v before the scheduled retune", s)
	}
	f.RunTo(retuneAt)
	if s := ue.Net.Bearer.RRC().DemotionScale(); s != 2 {
		t.Fatalf("demotion scale = %v at the scheduled retune time, want 2", s)
	}
}

// TestShardedFleetGoldenRemedy extends the sharded determinism gate to an
// actively remediating fleet: the storm scenario with throttled bearers and
// the controller in the loop renders byte-identically at every worker count
// and across reruns, and the run actually intervenes. (The Makefile's
// verify target re-runs every TestShardedFleetGolden* at GOMAXPROCS=1
// and 4.)
func TestShardedFleetGoldenRemedy(t *testing.T) {
	const horizon = 2 * time.Minute
	scenario := func() fleet.Scenario {
		scen := stormScenario(11)
		for i := range scen.UEs {
			scen.UEs[i].ThrottleBps = 40e3 // pageloads crawl past the stall threshold
		}
		scen.Remedy = &fleet.RemedySpec{}
		return scen
	}
	run := func(workers int) (*fleet.Report, string) {
		_, rep := runSharded(t, scenario(), horizon, fleet.WithWorkers(workers))
		return rep, rep.Render()
	}
	rep, golden := run(1)
	if countInterventions(rep) == 0 {
		t.Fatal("remediated storm produced no interventions; the golden is vacuous")
	}
	if !strings.Contains(golden, "== Remediation:") {
		t.Fatalf("report lacks the remediation section:\n%s", golden)
	}
	if _, again := run(1); again != golden {
		t.Fatal("serial remediated rerun diverged from itself")
	}
	for _, workers := range []int{2, 4} {
		if _, got := run(workers); got != golden {
			t.Fatalf("workers=%d remediated render diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, golden, workers, got)
		}
	}
}

// TestCrossShardActionDelivery: a control hook on one shard actuating a UE
// hosted on another shard rides the lockstep epoch barrier — the action
// lands (at an epoch boundary plus latency), and the run stays
// byte-identical at every worker count.
func TestCrossShardActionDelivery(t *testing.T) {
	const horizon = 2 * time.Minute
	run := func(workers int) (*fleet.Report, string) {
		scen := stormScenario(11)
		f, err := fleet.Build(scen, fleet.WithHorizon(horizon), fleet.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		// From shard 0's tick, retune the RRC machine of the last UE — homed
		// on the last cell, i.e. a different shard whenever workers > 1.
		target := f.UEs[len(f.UEs)-1]
		issued := false
		f.OnControl(10*time.Second, func(tick fleet.ControlTick) {
			if tick.Shard != 0 || issued || tick.At < simtime.Time(30*time.Second) {
				return
			}
			issued = true
			tick.Apply(target, remedy.Action{
				UE: target.Index, Kind: remedy.ActionRRCRetune, Scale: 3,
				Note: "cross-shard retune",
			})
		})
		f.Drive()
		f.RunTo(horizon)
		f.CloseObs()
		rep := f.Report()
		if s := target.Net.Bearer.RRC().DemotionScale(); s != 3 {
			t.Fatalf("workers=%d: cross-shard retune not applied (scale=%v)", workers, s)
		}
		return rep, rep.Render()
	}

	_, golden := run(1)
	for _, workers := range []int{2, 4} {
		if _, got := run(workers); got != golden {
			t.Fatalf("workers=%d diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, golden, workers, got)
		}
	}
}
